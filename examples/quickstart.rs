//! Quick start: a 100-node S&F system under 1 % message loss.
//!
//! Run with: `cargo run --example quickstart`

use sandf::sim::topology;
use sandf::{DegreeStats, SfConfig, Simulation, UniformLoss};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Parameters from the paper's running example (Section 6.3): view size
    // s = 40, lower degree threshold d_L = 18, targeting an expected
    // outdegree of about 30.
    let config = SfConfig::new(40, 18)?;

    // Start from a regular ring-like topology; the protocol will randomize
    // it (Properties M2-M4 hold "starting from any initial state"). The
    // paper's analysis assumes n >> s, so give the 40-slot views a
    // thousand nodes to sample from.
    let nodes = topology::circulant(1000, config, 30);
    let mut sim = Simulation::new(nodes, UniformLoss::new(0.01)?, 7);

    println!("running 1000 nodes under 1% uniform loss: 200 burn-in rounds ...");
    sim.run_rounds(200);
    sim.reset_stats(); // measure the steady state, not the transient
    println!("... then 200 measured rounds");
    sim.run_rounds(200);

    let graph = sim.graph();
    let out = DegreeStats::from_samples(&graph.out_degrees());
    let in_ = DegreeStats::from_samples(&graph.in_degrees());
    let dependence = sim.dependence();
    let stats = sim.stats();

    println!("weakly connected: {}", graph.is_weakly_connected());
    println!(
        "outdegree: mean {:.1}, std {:.1}, range [{}, {}]",
        out.mean,
        out.std_dev(),
        out.min,
        out.max
    );
    println!(
        "indegree:  mean {:.1}, std {:.1}, range [{}, {}]  (load balance, Property M2)",
        in_.mean,
        in_.std_dev(),
        in_.min,
        in_.max
    );
    println!(
        "independent view entries: {:.1}%  (Property M4; Lemma 7.9 floor: {:.1}%)",
        dependence.independent_fraction() * 100.0,
        sandf::markov::alpha_lower_bound(0.01, 0.01) * 100.0
    );
    println!(
        "events: {} actions, {} sent, {} lost, {} duplications, {} deletions",
        stats.actions, stats.sent, stats.lost, stats.duplications, stats.deleted
    );
    println!(
        "duplication rate {:.3} vs loss+deletion {:.3}  (Lemma 6.6 says they match)",
        stats.duplication_rate().unwrap_or(0.0),
        stats.loss_rate().unwrap_or(0.0) + stats.deletion_rate().unwrap_or(0.0)
    );
    Ok(())
}
