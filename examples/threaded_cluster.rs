//! S&F for real: 48 threads, a lossy in-memory network, and a UDP pair.
//!
//! The simulator executes the paper's *model*; this example executes the
//! paper's *claim* — that S&F needs no bookkeeping and survives loss on a
//! real concurrent substrate (Section 1, contribution (1)).
//!
//! Run with: `cargo run --example threaded_cluster`

use std::time::Duration;

use sandf::net::{AddressBook, Transport, UdpTransport};
use sandf::runtime::{Cluster, ClusterConfig};
use sandf::{DegreeStats, MembershipGraph, Message, NodeId, SfConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- Part 1: a threaded cluster over a lossy in-memory network. ---
    let cluster = Cluster::launch(ClusterConfig {
        n: 48,
        protocol: SfConfig::new(16, 6)?,
        loss: 0.05,
        tick: Duration::from_millis(2),
        seed: 99,
        initial_out_degree: 6,
    });
    println!("48 threaded nodes gossiping every 2ms under 5% loss ...");
    cluster.run_for(Duration::from_millis(1500));

    let graph = cluster.snapshot_graph();
    let stats = DegreeStats::from_samples(&graph.in_degrees());
    println!(
        "live snapshot: connected={}, indegree {:.1} ± {:.1}",
        graph.is_weakly_connected(),
        stats.mean,
        stats.std_dev()
    );
    println!(
        "network: {} sent, {} dropped ({:.1}% observed loss)",
        cluster.network().expect("memory cluster").sent(),
        cluster.network().expect("memory cluster").dropped(),
        100.0 * cluster.network().expect("memory cluster").dropped() as f64
            / cluster.network().expect("memory cluster").sent() as f64
    );

    let nodes = cluster.shutdown();
    let final_graph = MembershipGraph::from_nodes(&nodes);
    let duplications: u64 = nodes.iter().map(|n| n.stats().duplications).sum();
    let actions: u64 = nodes.iter().map(|n| n.stats().initiated).sum();
    println!(
        "shutdown: {} actions total, {} duplications compensated the loss, still connected: {}",
        actions,
        duplications,
        final_graph.is_weakly_connected()
    );

    // --- Part 2: two nodes exchanging one real UDP datagram. ---
    println!("\nUDP smoke test over loopback:");
    let book = AddressBook::new();
    let mut alice = UdpTransport::bind_loopback(NodeId::new(1000), &book)?;
    let mut bob = UdpTransport::bind_loopback(NodeId::new(1001), &book)?;
    alice.send(NodeId::new(1001), Message::new(NodeId::new(1000), NodeId::new(7), false))?;
    for _ in 0..200 {
        if let Some(msg) = bob.try_recv()? {
            println!(
                "bob received [{} , {}] over UDP from {}",
                msg.sender,
                msg.payload,
                alice.local_addr()?
            );
            return Ok(());
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    Err("udp datagram never arrived".into())
}
