//! Peer sampling in anger: push-sum aggregation over evolving S&F views.
//!
//! The paper motivates membership views as a source of fresh, independent
//! random node samples for applications such as "gathering statistics [and]
//! gossip-based aggregation" (Section 1). This example computes the global
//! average of per-node values with the push-sum protocol, drawing each
//! round's communication partner from the node's *current S&F view* — so
//! aggregation quality directly reflects view uniformity and temporal
//! independence.
//!
//! It runs on the arena fast path: a [`FlatSimulation`] driven through the
//! unified [`Engine`] trait, reading every live node's view in one pass
//! with [`Engine::for_each_live_view`] — the same hook the broadcast layer
//! gossips over (see `examples/broadcast_quickstart.rs`).
//!
//! Run with: `cargo run --example peer_sampling_service`

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use sandf::sim::topology;
use sandf::{Engine, FlatSimulation, SfConfig, UniformLoss};

const N: usize = 200;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = SfConfig::new(16, 6)?;
    let mut sim =
        FlatSimulation::new(topology::circulant(N, config, 10), UniformLoss::new(0.01)?, 11);

    // Let the membership converge first (Section 7: steady state).
    sim.run_rounds(100);

    // Each node holds a value; the true average is known.
    let values: Vec<f64> = (0..N).map(|i| (i * i % 1000) as f64).collect();
    let true_avg = values.iter().sum::<f64>() / N as f64;

    // Push-sum state: (sum, weight) per node.
    let mut sums = values.clone();
    let mut weights = vec![1.0f64; N];
    let mut rng = StdRng::seed_from_u64(99);

    println!("push-sum over S&F views, n={N}, true average {true_avg:.3}");
    println!("round\tmax_relative_error");
    for round in 1..=60 {
        // Keep the membership evolving underneath the aggregation.
        sim.round();
        // One push-sum round: each node halves its mass and ships half to
        // a partner drawn from its *current* S&F view, all views read in
        // a single arena pass.
        let mut inbox: Vec<(f64, f64)> = vec![(0.0, 0.0); N];
        let mut shares: Vec<(usize, f64, f64)> = Vec::with_capacity(N);
        sim.for_each_live_view(&mut |id, view| {
            let i = id.index() % N;
            let target = view.choose(&mut rng).map_or(i, |peer| peer.index() % N);
            sums[i] /= 2.0;
            weights[i] /= 2.0;
            shares.push((target, sums[i], weights[i]));
        });
        for (target, sum, weight) in shares {
            inbox[target].0 += sum;
            inbox[target].1 += weight;
        }
        for i in 0..N {
            sums[i] += inbox[i].0;
            weights[i] += inbox[i].1;
        }
        let worst = (0..N)
            .map(|i| ((sums[i] / weights[i]) - true_avg).abs() / true_avg)
            .fold(0.0f64, f64::max);
        if round % 6 == 0 {
            println!("{round}\t{worst:.2e}");
        }
        if round == 60 {
            assert!(worst < 1e-3, "push-sum should have converged, error {worst}");
            println!("converged: every node's estimate within {worst:.1e} of the true average");
        }
    }
    Ok(())
}
