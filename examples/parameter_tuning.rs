//! Parameter tuning, end to end: from an application requirement to
//! validated protocol parameters.
//!
//! Walks the full Section 6.3 / 7.4 pipeline: pick a target expected
//! outdegree and a duplication budget, derive `(d_L, s)`, check the
//! connectivity condition for the expected loss, then validate the choice
//! with both the degree Markov chain and a simulation.
//!
//! Run with: `cargo run --release --example parameter_tuning`

use sandf::markov::{alpha_lower_bound, min_dl_for_connectivity};
use sandf::sim::experiment::{steady_state_degrees, ExperimentParams};
use sandf::{select_thresholds, DegreeMc, DegreeMcParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Application requirement: roughly 30 gossip partners per node, at
    // most ~1% of actions wasted on duplications/deletions, deployed on a
    // network with up to 2% message loss.
    let d_hat = 30;
    let delta = 0.01;
    let expected_loss = 0.02;

    println!("requirement: E[d] ≈ {d_hat}, budget δ = {delta}, loss ≤ {expected_loss}");

    // Step 1 — Section 6.3: thresholds from the analytical law.
    let sel = select_thresholds(d_hat, delta)?;
    println!(
        "section 6.3 gives d_L = {}, s = {} (P_dup {:.4}, P_del {:.4})",
        sel.d_l, sel.s, sel.duplication_probability, sel.deletion_probability
    );

    // Step 2 — Section 7.4: is d_L large enough to keep the overlay
    // connected at this loss rate?
    let alpha = alpha_lower_bound(expected_loss, delta);
    let needed =
        min_dl_for_connectivity(alpha, 1e-30, 200).ok_or("connectivity condition unachievable")?;
    println!("section 7.4 connectivity (α ≥ {alpha:.3}, ε = 1e-30) needs d_L ≥ {needed}");
    let d_l = sel.d_l.max(needed);
    let config = sandf::SfConfig::new(sel.s, d_l)?;
    println!("chosen configuration: d_L = {d_l}, s = {}", config.view_size());

    // Step 3 — validate with the degree Markov chain.
    let mc = DegreeMc::solve(DegreeMcParams::new(config, expected_loss))?;
    println!(
        "degree MC at ℓ = {expected_loss}: E[d] = {:.2}, indegree {:.2} ± {:.2}, dup {:.4}",
        mc.mean_out(),
        mc.mean_in(),
        mc.std_in(),
        mc.duplication_probability()
    );

    // Step 4 — validate with an independent simulation.
    let sim = steady_state_degrees(
        &ExperimentParams { n: 1500, config, loss: expected_loss, burn_in: 300, seed: 2026 },
        20,
        5,
    );
    println!(
        "simulation (n = 1500): E[d] = {:.2}, indegree {:.2} ± {:.2}",
        sim.out_degrees.mean(),
        sim.in_degrees.mean(),
        sim.in_degrees.variance().sqrt()
    );

    let gap = (mc.mean_out() - sim.out_degrees.mean()).abs();
    println!("chain/simulation agreement on E[d]: |Δ| = {gap:.2}");
    assert!(gap < 1.0, "analysis and simulation disagree");
    println!("configuration validated ✓");
    Ok(())
}
