//! Boot a live S&F membership daemon over real UDP, inject a partition,
//! heal it, and read the verdict from the HTTP endpoint.
//!
//! Run with: `cargo run --example daemon_quickstart`

use std::time::Duration;

use sandf::daemon::{http_get, DaemonConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 128 nodes, each with its own loopback UDP socket, 2% wire loss.
    let daemon = DaemonConfig {
        initial_nodes: 128,
        tick: Duration::from_millis(10),
        base_loss: 0.02,
        ..DaemonConfig::default()
    }
    .spawn()?;
    let addr = daemon.http_addr().expect("HTTP endpoint is on by default");
    println!("daemon up: http://{addr}/membership");

    daemon.join_nodes(32).map_err(std::io::Error::other)?;
    daemon.fault("partition 2 30 1.0").map_err(std::io::Error::other)?;
    println!("160 nodes, regions severed for 30 rounds — soaking ...");
    std::thread::sleep(Duration::from_secs(2));

    let snap = daemon.snapshot();
    println!(
        "round {}: live {}, mean outdegree {:.2}, stale {:.4} ≤ ceiling {:.4}, {} violations",
        snap.round,
        snap.live,
        snap.mean_out,
        snap.stale_fraction,
        snap.stale_ceiling,
        snap.degree_violations + snap.stale_violations,
    );
    let (status, metrics) = http_get(addr, "/metrics")?;
    println!("GET /metrics → {status} ({} bytes of Prometheus exposition)", metrics.len());

    daemon.shutdown();
    Ok(())
}
