//! Rumor-spreading broadcast in five minutes: gossip an application
//! payload over live S&F membership views and compare the measured spread
//! time against the Doerr et al. `log₂ n + ln n` yardstick.
//!
//! The [`BroadcastLayer`] rides on any engine through the unified
//! [`Engine`] trait: after each membership round it walks every live
//! node's current view and pushes the rumor along those edges (here with
//! pull enabled too, so uninformed nodes actively fetch). The rumor
//! channel is faulted independently of the membership channel — this
//! example drops 10 % of rumor messages while the membership loses 1 %.
//!
//! Run with: `cargo run --example broadcast_quickstart`

use sandf::sim::topology;
use sandf::{
    doerr_spread_prediction, BroadcastConfig, BroadcastLayer, Engine, FlatSimulation, RumorChannel,
    SfConfig, UniformLoss,
};

const N: usize = 5_000;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = SfConfig::new(16, 6)?;
    let mut sim =
        FlatSimulation::new(topology::random_iter(N, config, 8, 42), UniformLoss::new(0.01)?, 42);
    // Warm the peer-sampling service up before the rumor starts.
    sim.run_rounds(20);

    let mut layer = BroadcastLayer::with_channel(
        42,
        BroadcastConfig::push_pull(1, u8::MAX),
        RumorChannel::Uniform { rate: 0.10 },
    );
    let origin = Engine::live_ids(&sim).into_iter().min().expect("non-empty system");
    layer.seed_rumor_at(origin);

    println!("rumor broadcast over live S&F views, n={N}, 10% rumor loss");
    println!("round\tinformed\tcoverage");
    for round in 1..=40 {
        sim.round();
        layer.step(&sim);
        if round % 4 == 0 || layer.coverage() >= 1.0 {
            println!("{round}\t{}\t{:.4}", layer.informed_live(), layer.coverage());
        }
        if layer.coverage() >= 1.0 {
            break;
        }
    }

    let report = layer.report();
    let predicted = doerr_spread_prediction(N);
    println!();
    println!("50% coverage at round {:?}", report.to_half);
    println!("99% coverage at round {:?} (log2 n + ln n = {predicted:.1})", report.to_99);
    println!("messages per node: {:.1}", report.messages_per_node);
    assert!(report.coverage >= 0.99, "spread stalled at {:.4}", report.coverage);
    Ok(())
}
