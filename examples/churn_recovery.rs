//! Churn under loss: nodes join and leave while 5 % of messages vanish.
//!
//! Demonstrates the Section 6.5 dynamics end to end: joiners integrate
//! (Corollary 6.14), leavers' ids decay (Lemma 6.10, Figure 6.4), and the
//! surviving system stays connected and balanced.
//!
//! Run with: `cargo run --example churn_recovery`

use sandf::markov::decay;
use sandf::sim::topology;
use sandf::{DegreeStats, NodeId, SfConfig, Simulation, UniformLoss};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = SfConfig::new(40, 18)?;
    let loss = 0.05;
    let nodes = topology::circulant(300, config, 30);
    let mut sim = Simulation::new(nodes, UniformLoss::new(loss)?, 23);

    println!("burn-in: 200 rounds, n=300, 5% loss ...");
    sim.run_rounds(200);

    // --- A wave of churn: 30 nodes leave, 30 join. ---
    let victims: Vec<NodeId> = sim.live_ids().iter().copied().take(30).collect();
    for v in &victims {
        sim.leave(*v);
    }
    let mut joiners = Vec::new();
    for k in 0..30 {
        let sponsor = sim.live_ids()[k % sim.len()];
        joiners.push(sim.join_via(sponsor)?);
    }
    println!("churn applied: 30 leaves + 30 joins (n stays 300)");

    let dead_instances_at_0: usize = victims.iter().map(|v| sim.count_id_instances(*v)).sum();

    // --- Track recovery. ---
    println!("round\tdead_id_instances\tbound\tjoiner_instances\tconnected");
    let survival = decay::leave_survival_bound(loss, 0.01, 18, 40, 200);
    for round in 1..=200usize {
        sim.round();
        if round % 20 == 0 {
            let dead: usize = victims.iter().map(|v| sim.count_id_instances(*v)).sum();
            let joined: usize = joiners.iter().map(|j| sim.count_id_instances(*j)).sum();
            let bound = (dead_instances_at_0 as f64 * survival[round - 1]).ceil();
            println!("{round}\t{dead}\t{bound}\t{joined}\t{}", sim.graph().is_weakly_connected());
        }
    }

    let graph = sim.graph();
    let stats = DegreeStats::from_samples(&graph.in_degrees());
    println!(
        "\nfinal: n={}, weakly connected: {}, indegree {:.1} ± {:.1}",
        graph.node_count(),
        graph.is_weakly_connected(),
        stats.mean,
        stats.std_dev()
    );
    let d_in_joiners: f64 =
        joiners.iter().map(|j| graph.in_degree(*j).unwrap_or(0) as f64).sum::<f64>()
            / joiners.len() as f64;
    println!(
        "joiners' average indegree after 200 rounds: {d_in_joiners:.1} (veterans: {:.1})",
        stats.mean
    );
    assert!(graph.is_weakly_connected(), "churn partitioned the overlay");
    Ok(())
}
