//! Property tests of the Markov-chain machinery against randomly generated
//! chains.

use proptest::prelude::*;
use sandf_markov::{AnalyticalDegrees, SparseChain};

/// Builds a random irreducible-ish lazy chain over `n` states from raw
/// weights: each state keeps probability ½ and spreads ½ over successors
/// (including a forced cycle edge for irreducibility).
fn lazy_chain(n: usize, weights: &[u8]) -> SparseChain {
    let rows = (0..n)
        .map(|i| {
            let mut targets: Vec<(usize, f64)> = vec![((i + 1) % n, 1.0)];
            for k in 0..3 {
                let w = weights[(i * 3 + k) % weights.len()];
                if w > 0 {
                    targets.push(((i + 1 + w as usize) % n, f64::from(w)));
                }
            }
            let total: f64 = targets.iter().map(|&(_, w)| w).sum();
            let mut row: Vec<(usize, f64)> =
                targets.into_iter().map(|(j, w)| (j, 0.5 * w / total)).collect();
            row.push((i, 0.5));
            row
        })
        .collect();
    SparseChain::new(rows)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Generated chains are stochastic, and their stationary distribution
    /// is an actual fixed point of the evolution.
    #[test]
    fn stationary_is_a_fixed_point(
        n in 2usize..12,
        weights in proptest::collection::vec(any::<u8>(), 36),
    ) {
        let chain = lazy_chain(n, &weights);
        chain.check_stochastic(1e-9).unwrap();
        let pi = chain.stationary(1e-13, 500_000).unwrap();
        prop_assert!((pi.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        let next = chain.step_distribution(&pi);
        for (a, b) in pi.iter().zip(&next) {
            prop_assert!((a - b).abs() < 1e-8, "not a fixed point: {a} vs {b}");
        }
    }

    /// The second eigenvalue estimate is a genuine contraction rate: it
    /// never exceeds 1, and the lazy construction keeps it below 1 strictly.
    #[test]
    fn spectral_estimate_is_a_rate(
        n in 3usize..10,
        weights in proptest::collection::vec(1u8..=9, 36),
    ) {
        let chain = lazy_chain(n, &weights);
        let lambda = chain.second_eigenvalue_modulus(4000).unwrap();
        prop_assert!((0.0..=1.0).contains(&lambda));
        // Lazy chains (holding probability ½) have eigenvalues in [0, 1],
        // and irreducibility keeps λ₂ < 1.
        prop_assert!(lambda < 1.0 - 1e-6, "λ₂ = {lambda}");
    }

    /// The Eq. (6.1) law is a probability distribution whose mean
    /// approaches d_m/3 (Lemma 6.3) — the approximation error shrinks like
    /// 1/d_m (at d_m = 6 it is still ~8%), so test the regime the paper
    /// uses it in.
    #[test]
    fn analytical_law_is_sane(half_dm in 8usize..80) {
        let d_m = 2 * half_dm;
        let law = AnalyticalDegrees::new(d_m).unwrap();
        let sum: f64 = law.out_pmf().iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-9);
        let expected = d_m as f64 / 3.0;
        prop_assert!(
            (law.mean_out() - expected).abs() / expected < 0.04,
            "d_m={d_m}: mean {}",
            law.mean_out()
        );
        prop_assert!(law.var_out() > 0.0);
    }
}
