//! # sandf-markov — the paper's analysis, executable
//!
//! Markov-chain numerics reproducing the analytical evaluation of Gurevich &
//! Keidar's S&F membership protocol:
//!
//! * [`SparseChain`] — sparse stationary-distribution machinery (the paper's
//!   "multiply the transition matrix until it converges", Section 6.2);
//! * [`DegreeMc`] — the two-dimensional degree Markov chain of Section 6.2
//!   (Figure 6.2), solved by a self-consistent fixed point; regenerates the
//!   curves of Figures 6.1 and 6.3 and the §6.4 indegree table;
//! * [`AnalyticalDegrees`] — the combinatorial degree law of Eq. (6.1);
//! * [`binomial`] — mean-matched binomial references and extreme-tail
//!   machinery;
//! * [`select_thresholds`] — the Section 6.3 rule for choosing `d_L` and `s`
//!   (reproduces "for `d̂ = 30`, `δ = 0.01`: `d_L = 18`, `s = 40`");
//! * [`DependenceChain`], [`alpha_lower_bound`] — the Section 7.4 spatial
//!   independence analysis (`α ≥ 1 − 2(ℓ+δ)`, Lemma 7.9) and the
//!   connectivity condition (`d_L ≥ 26` for `ℓ = δ = 1 %`, `ε = 10⁻³⁰`);
//! * [`decay`] — the Section 6.5 join/leave bounds (Figure 6.4,
//!   Corollary 6.14);
//! * [`conductance`] — the Section 7.5 expected-conductance and `τ_ε`
//!   bounds (Lemmas 7.14/7.15);
//! * [`ExactGlobalMc`] — exact enumeration of the global chain for tiny
//!   systems, verifying Lemmas A.2, 7.5, and 7.6 exactly.
//!
//! ## Example
//!
//! ```
//! use sandf_markov::{select_thresholds, DegreeMc, DegreeMcParams};
//!
//! // Pick parameters for an expected outdegree of 30 (Section 6.3). The
//! // paper reports (18, 40); the faithful Eq. (6.1) computation gives
//! // (18, 42) — see `select_thresholds` for the tail numbers.
//! let sel = select_thresholds(30, 0.01)?;
//! assert_eq!((sel.d_l, sel.s), (18, 42));
//!
//! // …and solve the degree chain under 1 % loss.
//! let params = DegreeMcParams::new(sel.to_config()?, 0.01);
//! let mc = DegreeMc::solve(params)?;
//! assert!(mc.mean_out() > sel.d_l as f64);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analytical;
pub mod binomial;
mod chain;
pub mod conductance;
pub mod decay;
mod degree_mc;
mod dependence;
mod exact_global;
mod thresholds;

pub use analytical::{AnalyticalDegrees, OddSumDegreeError};
pub use chain::{ChainError, SparseChain};
pub use degree_mc::{DegreeMc, DegreeMcError, DegreeMcParams};
pub use dependence::{
    alpha_lower_bound, dependent_fraction_bound, min_dl_for_connectivity, DependenceChain,
    RateError,
};
pub use exact_global::{ExactGlobalMc, ExactMcError, GlobalState};
pub use thresholds::{select_thresholds, ThresholdError, ThresholdSelection};
