//! Threshold selection (Section 6.3): given a target expected outdegree `d̂`
//! and a duplication/deletion budget `δ`, derive the protocol parameters
//! `d_L` and `s`.
//!
//! The paper's rule, using the Eq. (6.1) law with `d_m = 3·d̂` (Lemma 6.3):
//!
//! ```text
//! d_L = max { d' ∈ {0, 2, …, d̂}     : P(d ≤ d') ≤ δ }
//! s   = min { d' ∈ {d̂, d̂+2, …, d_m} : P(d ≥ d') ≤ δ }
//! ```
//!
//! For the running example `d̂ = 30, δ = 0.01` this yields `d_L = 18` and
//! `s = 40`.

use sandf_core::{ConfigError, SfConfig};

use crate::analytical::AnalyticalDegrees;

/// Error from threshold selection.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum ThresholdError {
    /// The target expected outdegree must be even and positive.
    InvalidTarget {
        /// The offending target.
        d_hat: usize,
    },
    /// `δ` must lie in `(0, 0.5)` (Section 6.3 requires `δ < 1/2`).
    InvalidDelta {
        /// The offending budget.
        delta: f64,
    },
}

impl core::fmt::Display for ThresholdError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match *self {
            Self::InvalidTarget { d_hat } => {
                write!(f, "target outdegree {d_hat} must be even and positive")
            }
            Self::InvalidDelta { delta } => write!(f, "delta {delta} must be in (0, 0.5)"),
        }
    }
}

impl std::error::Error for ThresholdError {}

/// The outcome of Section 6.3 threshold selection.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct ThresholdSelection {
    /// The lower outdegree threshold `d_L`.
    pub d_l: usize,
    /// The view size `s`.
    pub s: usize,
    /// Achieved duplication-probability bound `P(d ≤ d_L)` at zero loss.
    pub duplication_probability: f64,
    /// Achieved deletion-probability bound `P(d ≥ s)` at zero loss.
    pub deletion_probability: f64,
    /// The expected outdegree of the analytical law (≈ `d̂`).
    pub expected_out_degree: f64,
}

impl ThresholdSelection {
    /// Converts the selection into an [`SfConfig`].
    ///
    /// # Errors
    ///
    /// Propagates [`ConfigError`]; only possible when the selected gap
    /// `s − d_L` is below 6 (tiny `d̂` with large `δ`).
    pub fn to_config(&self) -> Result<SfConfig, ConfigError> {
        SfConfig::new(self.s, self.d_l)
    }
}

/// Selects `d_L` and `s` for a target expected outdegree `d̂` and budget
/// `δ`, per Section 6.3.
///
/// # Errors
///
/// Returns [`ThresholdError`] for an odd or zero `d̂`, or `δ ∉ (0, 0.5)`.
///
/// # Examples
///
/// ```
/// use sandf_markov::select_thresholds;
///
/// // The paper reports (18, 40) for d̂ = 30 and δ = 0.01; applying its
/// // stated rule to the Eq. (6.1) law reproduces d_L = 18 exactly, while
/// // the upper threshold lands at 42 because P(d ≥ 40) ≈ 0.025 > δ under
/// // that law (see EXPERIMENTS.md for the discrepancy note).
/// let sel = select_thresholds(30, 0.01)?;
/// assert_eq!((sel.d_l, sel.s), (18, 42));
/// # Ok::<(), sandf_markov::ThresholdError>(())
/// ```
pub fn select_thresholds(d_hat: usize, delta: f64) -> Result<ThresholdSelection, ThresholdError> {
    if d_hat == 0 || !d_hat.is_multiple_of(2) {
        return Err(ThresholdError::InvalidTarget { d_hat });
    }
    if !(delta > 0.0 && delta < 0.5 && delta.is_finite()) {
        return Err(ThresholdError::InvalidDelta { delta });
    }
    let d_m = 3 * d_hat;
    let law = AnalyticalDegrees::new(d_m).expect("3·even is even");

    let mut d_l = 0usize;
    for d in (0..=d_hat).step_by(2) {
        if law.cdf_out_at_most(d) <= delta {
            d_l = d;
        }
    }
    let mut s = d_m;
    for d in (d_hat..=d_m).rev().step_by(2) {
        if law.cdf_out_at_least(d) <= delta {
            s = d;
        }
    }
    Ok(ThresholdSelection {
        d_l,
        s,
        duplication_probability: law.cdf_out_at_most(d_l),
        deletion_probability: law.cdf_out_at_least(s),
        expected_out_degree: law.mean_out(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_the_papers_running_example() {
        // The paper reports (d_L, s) = (18, 40) for d̂ = 30, δ = 0.01. Our
        // faithful application of its stated rule to the Eq. (6.1) law gives
        // d_L = 18 exactly, but s = 42: the analytical tail has
        // P(d ≥ 40) ≈ 0.0255 > δ (and P(d ≥ 42) ≈ 0.0086 ≤ δ). The paper's
        // s = 40 is consistent with the *narrower* degree-MC law rather
        // than Eq. (6.1); the `thresholds` bench binary reports both. See
        // EXPERIMENTS.md.
        let sel = select_thresholds(30, 0.01).unwrap();
        assert_eq!(sel.d_l, 18, "paper: d_L = 18");
        assert_eq!(sel.s, 42, "Eq. (6.1) tail puts s at 42 (paper: 40)");
        assert!(sel.duplication_probability <= 0.01);
        assert!(sel.deletion_probability <= 0.01);
        assert!((sel.expected_out_degree - 30.0).abs() < 1.0);
        assert_eq!(sel.to_config().unwrap(), SfConfig::new(42, 18).unwrap());
    }

    #[test]
    fn documents_the_eq_6_1_tail_at_the_papers_s() {
        // Pin the numbers behind the s = 40 vs 42 discrepancy so a change
        // in the analytical law is caught immediately.
        let law = crate::analytical::AnalyticalDegrees::new(90).unwrap();
        let at_40 = law.cdf_out_at_least(40);
        let at_42 = law.cdf_out_at_least(42);
        assert!((at_40 - 0.02546).abs() < 5e-4, "P(d ≥ 40) = {at_40}");
        assert!((at_42 - 0.00859).abs() < 5e-4, "P(d ≥ 42) = {at_42}");
        assert!((law.cdf_out_at_most(18) - 0.00473).abs() < 5e-4);
    }

    #[test]
    fn probabilities_respect_delta_across_sweep() {
        for d_hat in [10usize, 20, 30, 40, 50] {
            for delta in [0.05, 0.01, 0.001] {
                let sel = select_thresholds(d_hat, delta).unwrap();
                assert!(sel.duplication_probability <= delta, "d̂={d_hat} δ={delta}");
                assert!(sel.deletion_probability <= delta, "d̂={d_hat} δ={delta}");
                assert!(sel.d_l < sel.s);
                assert_eq!(sel.d_l % 2, 0);
                assert_eq!(sel.s % 2, 0);
            }
        }
    }

    #[test]
    fn smaller_delta_widens_the_band() {
        let loose = select_thresholds(30, 0.05).unwrap();
        let tight = select_thresholds(30, 0.001).unwrap();
        assert!(tight.d_l <= loose.d_l);
        assert!(tight.s >= loose.s);
        assert!(tight.s - tight.d_l > loose.s - loose.d_l);
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(matches!(select_thresholds(0, 0.01), Err(ThresholdError::InvalidTarget { .. })));
        assert!(matches!(select_thresholds(31, 0.01), Err(ThresholdError::InvalidTarget { .. })));
        assert!(matches!(select_thresholds(30, 0.0), Err(ThresholdError::InvalidDelta { .. })));
        assert!(matches!(select_thresholds(30, 0.5), Err(ThresholdError::InvalidDelta { .. })));
    }

    #[test]
    fn selection_is_usable_as_config() {
        let sel = select_thresholds(20, 0.01).unwrap();
        let config = sel.to_config().unwrap();
        assert_eq!(config.view_size(), sel.s);
        assert_eq!(config.lower_threshold(), sel.d_l);
    }
}
