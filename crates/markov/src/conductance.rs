//! Temporal independence (Section 7.5): the expected-conductance bound of
//! Lemma 7.14 and the `τ_ε` convergence-time bound of Lemma 7.15.

/// Lemma 7.14: a lower bound on the expected conductance of the global MC
/// graph, `Φ(G) ≥ d_E(d_E − 1)·α / (2·s(s − 1))`, valid for `s ≪ √n`.
///
/// # Panics
///
/// Panics unless `2 ≤ d_E ≤ s` and `0 < α ≤ 1`.
#[must_use]
pub fn expected_conductance_bound(d_e: f64, alpha: f64, s: usize) -> f64 {
    assert!(s >= 2, "view size must be at least 2");
    assert!((2.0..=s as f64).contains(&d_e), "expected outdegree must be in [2, s]");
    assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
    d_e * (d_e - 1.0) * alpha / (2.0 * (s * (s - 1)) as f64)
}

/// Lemma 7.15: the bound on the number of global transformations needed to
/// become `ε`-independent of a *random* (steady-state) starting graph:
///
/// ```text
/// τ_ε(G) ≤ 16·s²(s−1)² / (d_E²(d_E−1)²·α²) · (n·s·ln n + ln(4/ε)).
/// ```
#[must_use]
pub fn tau_epsilon_bound(n: usize, s: usize, d_e: f64, alpha: f64, epsilon: f64) -> f64 {
    assert!(n >= 2, "need at least two nodes");
    assert!(epsilon > 0.0 && epsilon < 1.0, "epsilon must be in (0, 1)");
    let phi = expected_conductance_bound(d_e, alpha, s);
    let entropy = (n * s) as f64 * (n as f64).ln() + (4.0 / epsilon).ln();
    4.0 / (phi * phi) * entropy
}

/// The same bound expressed as *actions initiated per node*: `τ_ε / n`.
/// For zero loss and `α = 1` this is `O(s·log n)` — constant-size views
/// reach temporal independence in `O(log n)` per-node actions, logarithmic
/// views in `O(log² n)` (the paper's closing remark of Section 7.5).
#[must_use]
pub fn actions_per_node_bound(n: usize, s: usize, d_e: f64, alpha: f64, epsilon: f64) -> f64 {
    tau_epsilon_bound(n, s, d_e, alpha, epsilon) / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conductance_matches_formula() {
        let phi = expected_conductance_bound(30.0, 0.96, 40);
        let expected = 30.0 * 29.0 * 0.96 / (2.0 * 40.0 * 39.0);
        assert!((phi - expected).abs() < 1e-12);
    }

    #[test]
    fn conductance_grows_with_alpha_and_degree() {
        let base = expected_conductance_bound(20.0, 0.9, 40);
        assert!(expected_conductance_bound(30.0, 0.9, 40) > base);
        assert!(expected_conductance_bound(20.0, 0.95, 40) > base);
        assert!(expected_conductance_bound(20.0, 0.9, 60) < base);
    }

    #[test]
    fn tau_matches_expanded_formula() {
        let (n, s, d_e, alpha, eps) = (1000usize, 40usize, 30.0, 1.0, 0.01);
        let tau = tau_epsilon_bound(n, s, d_e, alpha, eps);
        let lead = 16.0 * (s * s * (s - 1) * (s - 1)) as f64
            / (d_e * d_e * (d_e - 1.0) * (d_e - 1.0) * alpha * alpha);
        let entropy = (n * s) as f64 * (n as f64).ln() + (4.0 / eps).ln();
        assert!((tau - lead * entropy).abs() / tau < 1e-12);
    }

    #[test]
    fn per_node_actions_scale_as_s_log_n() {
        // Doubling ln n should roughly double the per-node bound (the ln 4/ε
        // term is negligible at this scale).
        let s = 40;
        let a1 = actions_per_node_bound(1_000, s, 30.0, 1.0, 0.01);
        let a2 = actions_per_node_bound(1_000_000, s, 30.0, 1.0, 0.01);
        let ratio = a2 / a1;
        assert!((1.9..=2.1).contains(&ratio), "ln(10^6)/ln(10^3) = 2, got ratio {ratio}");
    }

    #[test]
    fn loss_increases_tau_by_a_constant_factor() {
        // α = 0.96 (1 % loss and δ) vs α = 1: τ grows by 1/α² ≈ 1.085.
        let t_lossless = tau_epsilon_bound(1000, 40, 30.0, 1.0, 0.01);
        let t_lossy = tau_epsilon_bound(1000, 40, 30.0, 0.96, 0.01);
        let ratio = t_lossy / t_lossless;
        assert!((ratio - 1.0 / (0.96 * 0.96)).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn rejects_zero_alpha() {
        let _ = expected_conductance_bound(30.0, 0.0, 40);
    }
}
