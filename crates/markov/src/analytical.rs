//! The analytical degree-distribution approximation of Section 6.1
//! (Eq. 6.1): with no loss, `d_L = 0`, and every node initialized to the
//! same sum degree `d_m`, the protocol reaches every membership graph
//! satisfying the sum-degree invariant equally often (Lemma 7.5), so
//!
//! ```text
//! Pr(d(u) = d*) ≈ a(d*) / Σ_{d' even} a(d'),
//! a(d) = C(d_m, d) · C(d_m − d, (d_m − d)/2),
//! ```
//!
//! and the indegree is determined by `d_in = (d_m − d)/2`.

use crate::binomial::ln_choose;

/// Error returned when the sum degree is odd (outdegrees are always even —
/// Observation 5.1 — and `d_in = (d_m − d)/2` must be integral).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct OddSumDegreeError {
    /// The offending sum degree.
    pub d_m: usize,
}

impl core::fmt::Display for OddSumDegreeError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "sum degree {} must be even", self.d_m)
    }
}

impl std::error::Error for OddSumDegreeError {}

/// The Eq. (6.1) joint law of one node's in/outdegree under the Section 6.1
/// assumptions.
///
/// # Examples
///
/// ```
/// use sandf_markov::AnalyticalDegrees;
///
/// // Figure 6.1's setting: d_m = 90, so E[d] = E[d_in] = 30 (Lemma 6.3).
/// let law = AnalyticalDegrees::new(90)?;
/// assert!((law.mean_out() - 30.0).abs() < 0.5);
/// assert!((law.mean_in() - 30.0).abs() < 0.25);
/// # Ok::<(), sandf_markov::OddSumDegreeError>(())
/// ```
#[derive(Clone, Debug)]
pub struct AnalyticalDegrees {
    d_m: usize,
    out_pmf: Vec<f64>,
}

impl AnalyticalDegrees {
    /// Computes the law for sum degree `d_m`.
    ///
    /// # Errors
    ///
    /// Returns [`OddSumDegreeError`] when `d_m` is odd.
    pub fn new(d_m: usize) -> Result<Self, OddSumDegreeError> {
        if !d_m.is_multiple_of(2) {
            return Err(OddSumDegreeError { d_m });
        }
        // Work in log space and normalize with a shifted softmax: the counts
        // a(d) overflow f64 already for d_m ≈ 60.
        let dm = d_m as u64;
        let ln_a: Vec<(usize, f64)> = (0..=d_m)
            .step_by(2)
            .map(|d| {
                let rest = (dm - d as u64) / 2;
                (d, ln_choose(dm, d as u64) + ln_choose(dm - d as u64, rest))
            })
            .collect();
        let max = ln_a.iter().map(|&(_, x)| x).fold(f64::NEG_INFINITY, f64::max);
        let mut out_pmf = vec![0.0; d_m + 1];
        let mut total = 0.0;
        for &(d, x) in &ln_a {
            let w = (x - max).exp();
            out_pmf[d] = w;
            total += w;
        }
        for p in &mut out_pmf {
            *p /= total;
        }
        Ok(Self { d_m, out_pmf })
    }

    /// The sum degree `d_m`.
    #[must_use]
    pub fn sum_degree(&self) -> usize {
        self.d_m
    }

    /// The outdegree pmf, indexed by outdegree (zero at odd indices).
    #[must_use]
    pub fn out_pmf(&self) -> &[f64] {
        &self.out_pmf
    }

    /// The indegree pmf, indexed by indegree: `P(d_in = k) = P(d = d_m −
    /// 2k)`.
    #[must_use]
    pub fn in_pmf(&self) -> Vec<f64> {
        (0..=self.d_m / 2).map(|k| self.out_pmf[self.d_m - 2 * k]).collect()
    }

    /// Expected outdegree (Lemma 6.3 predicts `d_m / 3`).
    #[must_use]
    pub fn mean_out(&self) -> f64 {
        self.out_pmf.iter().enumerate().map(|(d, &p)| d as f64 * p).sum()
    }

    /// Expected indegree (Lemma 6.3 predicts `d_m / 3`).
    #[must_use]
    pub fn mean_in(&self) -> f64 {
        (self.d_m as f64 - self.mean_out()) / 2.0
    }

    /// Outdegree variance.
    #[must_use]
    pub fn var_out(&self) -> f64 {
        let mean = self.mean_out();
        self.out_pmf.iter().enumerate().map(|(d, &p)| (d as f64 - mean).powi(2) * p).sum()
    }

    /// Indegree variance (`= var_out / 4` by the affine relation).
    #[must_use]
    pub fn var_in(&self) -> f64 {
        self.var_out() / 4.0
    }

    /// The lower cumulative probability `P(d ≤ d*)`.
    #[must_use]
    pub fn cdf_out_at_most(&self, d_star: usize) -> f64 {
        self.out_pmf.iter().take(d_star.min(self.d_m) + 1).sum()
    }

    /// The upper cumulative probability `P(d ≥ d*)`.
    #[must_use]
    pub fn cdf_out_at_least(&self, d_star: usize) -> f64 {
        if d_star > self.d_m {
            return 0.0;
        }
        self.out_pmf.iter().skip(d_star).sum()
    }
}

#[cfg(test)]
mod tests {
    use crate::binomial::binomial_with_mean;

    use super::*;

    #[test]
    fn rejects_odd_sum_degree() {
        let err = AnalyticalDegrees::new(7).unwrap_err();
        assert_eq!(err, OddSumDegreeError { d_m: 7 });
        assert!(err.to_string().contains('7'));
    }

    #[test]
    fn pmf_is_normalized_and_even_supported() {
        let law = AnalyticalDegrees::new(90).unwrap();
        let sum: f64 = law.out_pmf().iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        for d in (1..90).step_by(2) {
            assert_eq!(law.out_pmf()[d], 0.0);
        }
        let in_sum: f64 = law.in_pmf().iter().sum();
        assert!((in_sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn small_case_matches_hand_computation() {
        // d_m = 2: a(0) = C(2,0)·C(2,1) = 2; a(2) = C(2,2)·C(0,0) = 1.
        let law = AnalyticalDegrees::new(2).unwrap();
        assert!((law.out_pmf()[0] - 2.0 / 3.0).abs() < 1e-12);
        assert!((law.out_pmf()[2] - 1.0 / 3.0).abs() < 1e-12);
        // E[d] = 2/3 = d_m/3 exactly (Lemma 6.3).
        assert!((law.mean_out() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn mean_is_close_to_dm_over_3() {
        // Lemma 6.3 is exact for the protocol; the Eq. 6.1 approximation
        // lands close for large d_m.
        for dm in [30, 60, 90, 120] {
            let law = AnalyticalDegrees::new(dm).unwrap();
            let expected = dm as f64 / 3.0;
            assert!(
                (law.mean_out() - expected).abs() / expected < 0.02,
                "dm={dm}: mean {} vs {expected}",
                law.mean_out()
            );
        }
    }

    #[test]
    fn indegree_variance_is_below_matched_binomial() {
        // The headline of Figure 6.1: S&F's degree laws are *tighter* than
        // binomials with the same mean. The indegree comparison is the
        // clean one: integer support, mean 30 → Bin(90, 1/3) has variance
        // 20, while Eq. (6.1)'s indegree variance is about 5.
        let law = AnalyticalDegrees::new(90).unwrap();
        let binom = binomial_with_mean(90, law.mean_in());
        let mean: f64 = binom.iter().enumerate().map(|(k, &p)| k as f64 * p).sum();
        let bin_var: f64 =
            binom.iter().enumerate().map(|(k, &p)| (k as f64 - mean).powi(2) * p).sum();
        assert!(
            law.var_in() < bin_var / 2.0,
            "S&F indegree var {} should be well below binomial var {bin_var}",
            law.var_in()
        );
    }

    #[test]
    fn outdegree_variance_is_below_matched_binomial_on_its_lattice() {
        // The outdegree lives on the even lattice {0, 2, …, d_m}; measured
        // in lattice units (d/2 ∈ 0..=45) its variance must undercut the
        // mean-matched binomial on that support (Bin(45, 2/3), variance 10).
        let law = AnalyticalDegrees::new(90).unwrap();
        let lattice_var = law.var_out() / 4.0;
        let binom = binomial_with_mean(45, law.mean_out() / 2.0);
        let mean: f64 = binom.iter().enumerate().map(|(k, &p)| k as f64 * p).sum();
        let bin_var: f64 =
            binom.iter().enumerate().map(|(k, &p)| (k as f64 - mean).powi(2) * p).sum();
        assert!(
            lattice_var < bin_var,
            "S&F lattice var {lattice_var} should be below binomial var {bin_var}"
        );
    }

    #[test]
    fn cdfs_are_complementary() {
        let law = AnalyticalDegrees::new(60).unwrap();
        for d in [0, 10, 20, 30, 60] {
            let below = law.cdf_out_at_most(d);
            let above = law.cdf_out_at_least(d + 1);
            assert!((below + above - 1.0).abs() < 1e-12);
        }
        assert_eq!(law.cdf_out_at_least(61), 0.0);
        assert!((law.cdf_out_at_most(60) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn in_pmf_mirrors_out_pmf() {
        let law = AnalyticalDegrees::new(10).unwrap();
        let in_pmf = law.in_pmf();
        // P(d_in = 0) = P(d = 10), P(d_in = 5) = P(d = 0).
        assert_eq!(in_pmf[0], law.out_pmf()[10]);
        assert_eq!(in_pmf[5], law.out_pmf()[0]);
        assert!((law.mean_in() - (10.0 - law.mean_out()) / 2.0).abs() < 1e-12);
    }
}
