//! The two-dimensional degree Markov chain of Section 6.2 (Figure 6.2).
//!
//! The chain tracks the joint evolution of a single node's outdegree `d` and
//! indegree `d_in` under the protocol, given the system-wide degree
//! distribution. As in the paper, there is a fixed-point loop: "the degree
//! distributions can be learned from the stationary distribution of the MC,
//! but the transition probabilities, in turn, depend on the degree
//! distributions", so we iterate — compute the stationary distribution,
//! refresh the aggregate quantities, rebuild the chain — until the two agree.
//!
//! ## Transition structure
//!
//! One round means every node initiates one action in expectation. Three
//! event families touch the tracked node `u` (all rates per round):
//!
//! 1. **`u` initiates** (rate 1). With probability `d(d−1)/(s(s−1))` both
//!    selected slots are nonempty. The send duplicates iff `d = d_L`;
//!    otherwise `d` drops by 2. The receiver stores (giving `u` a new
//!    in-neighbor, `d_in + 1`) iff the message is delivered (prob `1 − ℓ`)
//!    and the target is not full.
//! 2. **an in-edge of `u` is chosen as a message target** (rate `d_in·t`,
//!    where `t` is the per-round selection rate of one particular edge).
//!    The holder removes the edge unless it duplicates (`d_in − 1`); `u`
//!    receives the message (prob `1 − ℓ`) and stores two ids (`d + 2`)
//!    unless its view is full.
//! 3. **an in-edge of `u` is chosen as a message payload** (rate `d_in·t`).
//!    The instance moves: removed from the holder unless duplicated, and a
//!    new in-edge of `u` appears at the target if delivered and not full.
//!
//! ## Closure approximations (documented deviations)
//!
//! The paper does not spell out its transition probabilities; ours use the
//! following standard size-biasing arguments, cross-validated against both
//! the Eq. (6.1) analytical law and large simulations (see the workspace
//! integration tests and `EXPERIMENTS.md`):
//!
//! * message *targets* are out-neighbors, i.e. nodes weighted by indegree —
//!   the probability that a target is full is
//!   `q_full = E[d_in·1{d=s}] / E[d_in]`;
//! * the *holder* of a particular edge is outdegree-size-biased, and the
//!   edge is selected with probability `(d−1)/(s(s−1))` per round given the
//!   holder has outdegree `d`, so `t = E[d(d−1)] / (E[d]·s(s−1))`;
//! * conditioned on a particular edge being selected, the holder duplicates
//!   with probability `dup_edge = d_L(d_L−1)·P(d=d_L) / E[d(d−1)]`;
//! * self-edges are ignored (they carry negligible stationary mass);
//! * sum degrees are capped at `3s`, exactly the paper's truncation:
//!   transitions that would exceed the cap become self-loops.

use sandf_core::SfConfig;
use sandf_graph::total_variation;

use crate::chain::{ChainError, SparseChain};

/// Parameters of the degree chain.
#[derive(Clone, Copy, Debug)]
pub struct DegreeMcParams {
    /// Protocol configuration (`s`, `d_L`).
    pub config: SfConfig,
    /// Uniform message-loss rate `ℓ`.
    pub loss: f64,
    /// Sum-degree truncation (the paper uses `3s`; states with
    /// `d + 2·d_in` above this are removed and inbound edges become
    /// self-loops).
    pub sum_degree_cap: usize,
    /// The initial state `(d, d_in)` of the fixed-point iteration. For the
    /// Section 6.1 regime pick a state on the target sum-degree line (e.g.
    /// `(d_m/3, d_m/3)`).
    pub initial_state: (usize, usize),
}

impl DegreeMcParams {
    /// Sensible defaults: cap `3s`, initial state in the middle of the band.
    #[must_use]
    pub fn new(config: SfConfig, loss: f64) -> Self {
        let s = config.view_size();
        let d_l = config.lower_threshold();
        let d0 = ((d_l + (s - d_l) * 3 / 4) & !1).max(d_l);
        Self { config, loss, sum_degree_cap: 3 * s, initial_state: (d0, d0 / 2) }
    }

    /// Sets the initial state (must be a legal state).
    #[must_use]
    pub fn with_initial_state(mut self, d: usize, d_in: usize) -> Self {
        self.initial_state = (d, d_in);
        self
    }
}

/// Aggregate quantities the transitions depend on, recomputed each
/// fixed-point iteration.
#[derive(Clone, Copy, PartialEq, Debug, Default)]
struct Aggregates {
    /// `E[d]`.
    e_d: f64,
    /// `E[d(d−1)]`.
    e_d2: f64,
    /// `E[d_in]`.
    e_din: f64,
    /// Probability a message target (indegree-biased) is full.
    q_full: f64,
    /// Probability a selected edge's holder duplicates.
    dup_edge: f64,
    /// Per-round selection rate of one particular edge.
    t: f64,
}

/// The solved degree chain: stationary joint law of `(d, d_in)` plus the
/// derived event probabilities.
#[derive(Clone, Debug)]
pub struct DegreeMc {
    params: DegreeMcParams,
    states: Vec<(usize, usize)>,
    stationary: Vec<f64>,
    aggregates: Aggregates,
    fixed_point_iterations: usize,
}

/// Error from solving the degree chain.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum DegreeMcError {
    /// The inner power iteration failed.
    Chain(ChainError),
    /// The outer fixed point did not converge.
    NoFixedPoint {
        /// TV distance between the last two outdegree marginals.
        residual: f64,
    },
    /// The requested initial state is not in the state space.
    BadInitialState {
        /// The offending `(d, d_in)`.
        state: (usize, usize),
    },
}

impl core::fmt::Display for DegreeMcError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match *self {
            Self::Chain(e) => write!(f, "degree chain: {e}"),
            Self::NoFixedPoint { residual } => {
                write!(f, "degree-distribution fixed point stalled at {residual}")
            }
            Self::BadInitialState { state } => {
                write!(f, "initial state ({}, {}) is outside the state space", state.0, state.1)
            }
        }
    }
}

impl std::error::Error for DegreeMcError {}

impl From<ChainError> for DegreeMcError {
    fn from(e: ChainError) -> Self {
        Self::Chain(e)
    }
}

impl DegreeMc {
    /// Solves the chain: builds the state space, then runs the fixed-point
    /// loop (stationary distribution ↔ aggregates) to convergence.
    ///
    /// # Errors
    ///
    /// Returns [`DegreeMcError`] if the initial state is illegal or either
    /// iteration fails to converge.
    pub fn solve(params: DegreeMcParams) -> Result<Self, DegreeMcError> {
        let s = params.config.view_size();
        let d_l = params.config.lower_threshold();
        let cap = params.sum_degree_cap;

        let mut states = Vec::new();
        for d in (d_l..=s).step_by(2) {
            let din_max = (cap.saturating_sub(d)) / 2;
            for din in 0..=din_max {
                states.push((d, din));
            }
        }
        let index = |d: usize, din: usize| -> Option<usize> {
            if d < d_l || d > s || !d.is_multiple_of(2) {
                return None;
            }
            if d + 2 * din > cap {
                return None;
            }
            // Offset of the (d, din) state: sum of block sizes before d.
            let mut offset = 0;
            for dd in (d_l..d).step_by(2) {
                offset += (cap - dd) / 2 + 1;
            }
            Some(offset + din)
        };

        let init_idx = index(params.initial_state.0, params.initial_state.1)
            .ok_or(DegreeMcError::BadInitialState { state: params.initial_state })?;

        let mut p = vec![0.0; states.len()];
        p[init_idx] = 1.0;

        // The outer tolerance must sit above what the inner iteration can
        // deliver: the inner loop stops on a successive-iterate residual, so
        // the returned distribution is only accurate to roughly the inner
        // tolerance times the chain's mixing factor. The aggregate update is
        // damped — the raw map oscillates (a chain built with a small
        // duplication probability produces a stationary law with a large
        // one, and vice versa), and averaging breaks the 2-cycle.
        const OUTER_TOL: f64 = 1e-8;
        const INNER_TOL: f64 = 1e-13;
        const MAX_OUTER: usize = 2_000;
        const MAX_INNER: usize = 400_000;
        const DAMPING: f64 = 0.5;

        let mut aggregates = compute_aggregates(&states, &p, s, d_l);
        let mut last_residual = f64::INFINITY;
        for outer in 0..MAX_OUTER {
            let chain = build_chain(&states, &index, &aggregates, &params);
            chain.check_stochastic(1e-9)?;
            let next = chain.stationary_from(&p, INNER_TOL, MAX_INNER)?;
            let fresh = compute_aggregates(&states, &next, s, d_l);
            let dist_residual = total_variation(&p, &next);
            let agg_residual = aggregates.distance(&fresh);
            last_residual = dist_residual.max(agg_residual);
            p = next;
            aggregates = aggregates.blend(&fresh, DAMPING);
            if last_residual < OUTER_TOL {
                return Ok(Self {
                    params,
                    states,
                    stationary: p,
                    aggregates,
                    fixed_point_iterations: outer + 1,
                });
            }
        }
        Err(DegreeMcError::NoFixedPoint { residual: last_residual })
    }

    /// The solved parameters.
    #[must_use]
    pub fn params(&self) -> &DegreeMcParams {
        &self.params
    }

    /// The states `(d, d_in)` in index order.
    #[must_use]
    pub fn states(&self) -> &[(usize, usize)] {
        &self.states
    }

    /// The stationary joint distribution (aligned with [`states`](Self::states)).
    #[must_use]
    pub fn stationary(&self) -> &[f64] {
        &self.stationary
    }

    /// Number of outer fixed-point iterations used.
    #[must_use]
    pub fn fixed_point_iterations(&self) -> usize {
        self.fixed_point_iterations
    }

    /// The stationary outdegree marginal, indexed by outdegree.
    #[must_use]
    pub fn out_pmf(&self) -> Vec<f64> {
        let mut pmf = vec![0.0; self.params.config.view_size() + 1];
        for (&(d, _), &p) in self.states.iter().zip(&self.stationary) {
            pmf[d] += p;
        }
        pmf
    }

    /// The stationary indegree marginal, indexed by indegree.
    #[must_use]
    pub fn in_pmf(&self) -> Vec<f64> {
        let max_din = self.states.iter().map(|&(_, din)| din).max().unwrap_or(0);
        let mut pmf = vec![0.0; max_din + 1];
        for (&(_, din), &p) in self.states.iter().zip(&self.stationary) {
            pmf[din] += p;
        }
        pmf
    }

    /// Expected outdegree `d_E` in the steady state.
    #[must_use]
    pub fn mean_out(&self) -> f64 {
        moment(&self.out_pmf(), 1)
    }

    /// Expected indegree in the steady state.
    #[must_use]
    pub fn mean_in(&self) -> f64 {
        moment(&self.in_pmf(), 1)
    }

    /// Outdegree standard deviation.
    #[must_use]
    pub fn std_out(&self) -> f64 {
        std_of(&self.out_pmf())
    }

    /// Indegree standard deviation.
    #[must_use]
    pub fn std_in(&self) -> f64 {
        std_of(&self.in_pmf())
    }

    /// The Pearson correlation between outdegree and indegree in the
    /// stationary joint law.
    ///
    /// With `ℓ = 0` and `d_L = 0` the sum degree `d + 2·d_in` is conserved
    /// (Lemma 6.2), so the correlation is exactly −1; loss and the
    /// duplication/deletion mechanisms soften it. Returns `None` when
    /// either marginal is degenerate.
    #[must_use]
    pub fn degree_correlation(&self) -> Option<f64> {
        let mut e_d = 0.0;
        let mut e_din = 0.0;
        for (&(d, din), &p) in self.states.iter().zip(&self.stationary) {
            e_d += p * d as f64;
            e_din += p * din as f64;
        }
        let mut cov = 0.0;
        let mut var_d = 0.0;
        let mut var_din = 0.0;
        for (&(d, din), &p) in self.states.iter().zip(&self.stationary) {
            let xd = d as f64 - e_d;
            let xi = din as f64 - e_din;
            cov += p * xd * xi;
            var_d += p * xd * xd;
            var_din += p * xi * xi;
        }
        let denom = (var_d * var_din).sqrt();
        (denom > 1e-12).then(|| cov / denom)
    }

    /// The steady-state duplication probability per non-self-loop action
    /// (Lemma 6.7 bounds this within `[ℓ, ℓ + δ]`).
    #[must_use]
    pub fn duplication_probability(&self) -> f64 {
        self.aggregates.dup_edge
    }

    /// The steady-state deletion probability per non-self-loop action: the
    /// message is delivered (`1 − ℓ`) to a full target (`q_full`).
    #[must_use]
    pub fn deletion_probability(&self) -> f64 {
        (1.0 - self.params.loss) * self.aggregates.q_full
    }
}

fn moment(pmf: &[f64], k: i32) -> f64 {
    pmf.iter().enumerate().map(|(v, &p)| (v as f64).powi(k) * p).sum()
}

fn std_of(pmf: &[f64]) -> f64 {
    let mean = moment(pmf, 1);
    let m2 = moment(pmf, 2);
    (m2 - mean * mean).max(0.0).sqrt()
}

impl Aggregates {
    /// Damped update: `self·(1−w) + fresh·w`.
    fn blend(&self, fresh: &Self, w: f64) -> Self {
        let mix = |a: f64, b: f64| a * (1.0 - w) + b * w;
        Self {
            e_d: mix(self.e_d, fresh.e_d),
            e_d2: mix(self.e_d2, fresh.e_d2),
            e_din: mix(self.e_din, fresh.e_din),
            q_full: mix(self.q_full, fresh.q_full),
            dup_edge: mix(self.dup_edge, fresh.dup_edge),
            t: mix(self.t, fresh.t),
        }
    }

    /// Largest relative field difference, used as the outer residual.
    fn distance(&self, other: &Self) -> f64 {
        let rel = |a: f64, b: f64| (a - b).abs() / a.abs().max(b.abs()).max(1e-12);
        rel(self.e_d, other.e_d)
            .max(rel(self.e_d2, other.e_d2))
            .max(rel(self.e_din, other.e_din))
            .max((self.q_full - other.q_full).abs())
            .max((self.dup_edge - other.dup_edge).abs())
            .max(rel(self.t, other.t))
    }
}

fn compute_aggregates(states: &[(usize, usize)], p: &[f64], s: usize, d_l: usize) -> Aggregates {
    let mut e_d = 0.0;
    let mut e_d2 = 0.0;
    let mut e_din = 0.0;
    let mut full_din_mass = 0.0;
    let mut dup_mass = 0.0;
    for (&(d, din), &prob) in states.iter().zip(p) {
        let df = d as f64;
        e_d += prob * df;
        e_d2 += prob * df * (df - 1.0);
        e_din += prob * din as f64;
        if d == s {
            full_din_mass += prob * din as f64;
        }
        if d == d_l && d_l >= 2 {
            dup_mass += prob * df * (df - 1.0);
        }
    }
    let q_full = if e_din > 0.0 { full_din_mass / e_din } else { 0.0 };
    let dup_edge = if e_d2 > 0.0 { dup_mass / e_d2 } else { 0.0 };
    let t = if e_d > 0.0 { e_d2 / (e_d * (s * (s - 1)) as f64) } else { 0.0 };
    Aggregates { e_d, e_d2, e_din, q_full, dup_edge, t }
}

fn build_chain(
    states: &[(usize, usize)],
    index: &dyn Fn(usize, usize) -> Option<usize>,
    agg: &Aggregates,
    params: &DegreeMcParams,
) -> SparseChain {
    let s = params.config.view_size();
    let d_l = params.config.lower_threshold();
    let loss = params.loss;
    let pair_norm = (s * (s - 1)) as f64;
    let din_max_global = states.iter().map(|&(_, din)| din).max().unwrap_or(0) as f64;
    // Uniformization constant: an upper bound on any state's total event
    // rate (initiate: 1; 2·d_in edge selections at rate t each).
    let lambda = 1.0 + 2.0 * din_max_global * agg.t + 1e-9;

    let deliver_ok = (1.0 - loss) * (1.0 - agg.q_full);

    let rows: Vec<Vec<(usize, f64)>> = states
        .iter()
        .enumerate()
        .map(|(i, &(d, din))| {
            let mut row: Vec<(usize, f64)> = Vec::with_capacity(8);
            let mut leaving = 0.0;
            let mut push = |target: Option<usize>, rate: f64| {
                if rate <= 0.0 {
                    return;
                }
                // Out-of-space targets become self-loops (the paper's cap
                // treatment), i.e. simply not leaving.
                if let Some(j) = target {
                    if j != i {
                        row.push((j, rate / lambda));
                        leaving += rate / lambda;
                    }
                }
            };

            // Event 1: u initiates.
            let act = (d * d.saturating_sub(1)) as f64 / pair_norm;
            if act > 0.0 {
                let dup = d <= d_l;
                if dup {
                    push(index(d, din + 1), act * deliver_ok);
                } else {
                    push(index(d - 2, din + 1), act * deliver_ok);
                    push(index(d - 2, din), act * (1.0 - deliver_ok));
                }
            }

            // Events 2 and 3: each of u's d_in in-edges is selected as a
            // message target or payload at rate t.
            if din > 0 {
                let rate = din as f64 * agg.t;
                let dup = agg.dup_edge;
                // Event 2: edge is the message target; u receives.
                let receives = 1.0 - loss;
                let stores = d < s;
                // (no dup, delivered): d_in−1, d+2 (if room).
                let d_after = if stores { d + 2 } else { d };
                push(index(d_after, din - 1), rate * (1.0 - dup) * receives);
                // (no dup, lost): d_in−1.
                push(index(d, din - 1), rate * (1.0 - dup) * loss);
                // (dup, delivered): d+2 (if room), d_in unchanged.
                if stores {
                    push(index(d + 2, din), rate * dup * receives);
                }
                // (dup, lost): no change.

                // Event 3: edge is the payload; the instance moves.
                // (no dup, recreated elsewhere): net zero.
                // (no dup, lost or deleted): d_in−1.
                push(index(d, din - 1), rate * (1.0 - dup) * (1.0 - deliver_ok));
                // (dup, recreated): d_in+1.
                push(index(d, din + 1), rate * dup * deliver_ok);
                // (dup, lost): no change.
            }

            row.push((i, (1.0 - leaving).max(0.0)));
            row
        })
        .collect();
    SparseChain::new(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn solve(s: usize, d_l: usize, loss: f64) -> DegreeMc {
        let config = SfConfig::new(s, d_l).unwrap();
        DegreeMc::solve(DegreeMcParams::new(config, loss)).unwrap()
    }

    #[test]
    fn stationary_is_a_distribution() {
        let mc = solve(16, 6, 0.01);
        let sum: f64 = mc.stationary().iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        assert!(mc.stationary().iter().all(|&p| p >= 0.0));
        assert!(mc.fixed_point_iterations() >= 1);
    }

    #[test]
    fn outdegree_stays_in_the_legal_band() {
        let mc = solve(16, 6, 0.05);
        let pmf = mc.out_pmf();
        for (d, &p) in pmf.iter().enumerate() {
            if p > 1e-12 {
                assert!((6..=16).contains(&d) && d % 2 == 0, "illegal outdegree {d}");
            }
        }
        let mean = mc.mean_out();
        assert!(mean > 6.0 && mean < 16.0, "mean {mean}");
    }

    #[test]
    fn loss_compensation_identity_holds() {
        // Lemma 6.6: dup = ℓ + del in the steady state. The chain should
        // satisfy this approximately (it is not imposed, it emerges).
        for loss in [0.01, 0.05, 0.1] {
            let mc = solve(16, 6, loss);
            let dup = mc.duplication_probability();
            let del = mc.deletion_probability();
            assert!(
                (dup - (loss + del)).abs() < 0.03,
                "ℓ={loss}: dup {dup} vs ℓ+del {}",
                loss + del
            );
        }
    }

    #[test]
    fn expected_outdegree_decreases_with_loss() {
        // Lemma 6.4.
        let means: Vec<f64> =
            [0.0, 0.01, 0.05, 0.1].iter().map(|&l| solve(16, 6, l).mean_out()).collect();
        for w in means.windows(2) {
            assert!(w[1] < w[0] + 1e-6, "means should decrease: {means:?}");
        }
        // ... but stay well above d_L (Section 6.4's observation).
        assert!(means[3] > 6.5, "mean at 10% loss {}", means[3]);
    }

    #[test]
    fn deletion_probability_decreases_with_loss() {
        // Observation 6.5.
        let dels: Vec<f64> =
            [0.0, 0.05, 0.1].iter().map(|&l| solve(16, 6, l).deletion_probability()).collect();
        assert!(dels[1] <= dels[0] + 1e-9, "{dels:?}");
        assert!(dels[2] <= dels[1] + 1e-9, "{dels:?}");
    }

    #[test]
    fn duplication_within_lemma_6_7_band() {
        // ℓ ≤ dup ≤ ℓ + δ with δ the no-loss duplication probability.
        let delta = solve(16, 6, 0.0).duplication_probability();
        for loss in [0.02, 0.05] {
            let dup = solve(16, 6, loss).duplication_probability();
            assert!(dup >= loss - 0.02, "ℓ={loss}: dup {dup}");
            assert!(dup <= loss + delta + 0.03, "ℓ={loss}: dup {dup} δ={delta}");
        }
    }

    #[test]
    fn marginals_are_normalized() {
        let mc = solve(12, 4, 0.02);
        assert!((mc.out_pmf().iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!((mc.in_pmf().iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(mc.std_out() > 0.0);
        assert!(mc.std_in() > 0.0);
    }

    #[test]
    fn degrees_are_perfectly_anticorrelated_on_the_conserved_line() {
        // Lemma 6.2: with ℓ = 0 and d_L = 0, d = d_m − 2·d_in exactly.
        let config = SfConfig::lossless(12).unwrap();
        let params = DegreeMcParams::new(config, 0.0).with_initial_state(4, 4);
        let mc = DegreeMc::solve(params).unwrap();
        let corr = mc.degree_correlation().unwrap();
        assert!(corr < -0.999, "correlation {corr}");
    }

    #[test]
    fn loss_softens_the_anticorrelation() {
        // With an active duplication floor the conservation coupling is
        // already partial (≈ −0.25 here); loss decouples the degrees almost
        // entirely (the measured value even drifts slightly positive).
        let lossless = solve(16, 6, 0.0).degree_correlation().unwrap();
        let lossy = solve(16, 6, 0.1).degree_correlation().unwrap();
        assert!(lossless < -0.1, "lossless correlation {lossless}");
        assert!(lossy > lossless, "loss should weaken the coupling");
        assert!(lossy.abs() < 0.15, "lossy correlation {lossy}");
    }

    #[test]
    fn rejects_bad_initial_state() {
        let config = SfConfig::new(12, 4).unwrap();
        let params = DegreeMcParams::new(config, 0.0).with_initial_state(5, 0);
        assert!(matches!(DegreeMc::solve(params), Err(DegreeMcError::BadInitialState { .. })));
        let params = DegreeMcParams::new(config, 0.0).with_initial_state(12, 100);
        assert!(matches!(DegreeMc::solve(params), Err(DegreeMcError::BadInitialState { .. })));
    }

    #[test]
    fn lossless_dl_zero_concentrates_near_initial_sum_degree() {
        // With ℓ = 0 and d_L = 0 the chain (like the protocol, Lemma 6.2)
        // essentially conserves d + 2·d_in; starting from (4, 4) the mass
        // stays on the d_s = 12 line.
        let config = SfConfig::lossless(12).unwrap();
        let params = DegreeMcParams::new(config, 0.0).with_initial_state(4, 4);
        let mc = DegreeMc::solve(params).unwrap();
        let on_line: f64 = mc
            .states()
            .iter()
            .zip(mc.stationary())
            .filter(|&(&(d, din), _)| d + 2 * din == 12)
            .map(|(_, &p)| p)
            .sum();
        assert!(on_line > 0.999, "mass on the sum-degree line: {on_line}");
        // Lemma 6.3: E[d] = E[d_in] = d_m/3 = 4.
        assert!((mc.mean_out() - 4.0).abs() < 0.4, "mean out {}", mc.mean_out());
        assert!((mc.mean_in() - 4.0).abs() < 0.2, "mean in {}", mc.mean_in());
    }
}
