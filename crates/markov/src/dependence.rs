//! Spatial independence analysis (Section 7.4): the dependence Markov chain
//! of Figure 7.1, the `α ≥ 1 − 2(ℓ + δ)` bound of Lemma 7.9, and the
//! connectivity condition at the end of Section 7.4.

use crate::binomial::binomial_cdf_below;

/// The two-state dependence Markov chain (Figure 7.1) tracking whether a
/// nonempty view entry is independent or dependent.
///
/// Per non-self-loop transformation (Lemma 7.9's proof):
///
/// * independent → dependent with probability at most `(1 + ½)(ℓ + δ)` —
///   the entry is sent with duplication (≤ `ℓ + δ`, Lemma 6.7) or a
///   previously duplicated copy returns (at most half the creation rate,
///   Lemma 7.8);
/// * dependent → independent with probability at least `(1 − β)(1 − (ℓ+δ))
///   = ⅚·(1 − (ℓ+δ))` — the entry is sent without duplication to a node
///   other than the action initiator (`β ≤ ⅙` bounds self-edges).
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct DependenceChain {
    to_dependent: f64,
    to_independent: f64,
}

/// Error for rates outside the analysis' validity range.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct RateError {
    /// The offending combined rate `ℓ + δ`.
    pub combined: f64,
}

impl core::fmt::Display for RateError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "combined rate l+delta = {} must be in [0, 1)", self.combined)
    }
}

impl std::error::Error for RateError {}

impl DependenceChain {
    /// Builds the chain for loss rate `ℓ` and duplication budget `δ`.
    ///
    /// # Errors
    ///
    /// Returns [`RateError`] unless `0 ≤ ℓ + δ < 1`.
    pub fn new(loss: f64, delta: f64) -> Result<Self, RateError> {
        let combined = loss + delta;
        if !(0.0..1.0).contains(&combined) || !combined.is_finite() || loss < 0.0 || delta < 0.0 {
            return Err(RateError { combined });
        }
        Ok(Self { to_dependent: 1.5 * combined, to_independent: (5.0 / 6.0) * (1.0 - combined) })
    }

    /// The independent → dependent transition probability bound.
    #[must_use]
    pub fn to_dependent(&self) -> f64 {
        self.to_dependent
    }

    /// The dependent → independent transition probability bound.
    #[must_use]
    pub fn to_independent(&self) -> f64 {
        self.to_independent
    }

    /// The stationary dependent fraction of the two-state chain:
    /// `p_d / (p_d + p_i)` — the paper evaluates this to
    /// `(ℓ+δ) / (5/9 + 4/9·(ℓ+δ)) ≤ 2(ℓ+δ)`.
    #[must_use]
    pub fn stationary_dependent_fraction(&self) -> f64 {
        let denom = self.to_dependent + self.to_independent;
        if denom == 0.0 {
            return 0.0;
        }
        self.to_dependent / denom
    }
}

/// The closed-form dependent-fraction bound from Lemma 7.9's final display:
/// `(ℓ+δ) / (5/9 + 4/9·(ℓ+δ))`.
#[must_use]
pub fn dependent_fraction_bound(loss: f64, delta: f64) -> f64 {
    let x = loss + delta;
    x / (5.0 / 9.0 + 4.0 / 9.0 * x)
}

/// Lemma 7.9's headline bound on the expected independent fraction:
/// `α ≥ 1 − 2(ℓ + δ)` (clamped at 0).
#[must_use]
pub fn alpha_lower_bound(loss: f64, delta: f64) -> f64 {
    (1.0 - 2.0 * (loss + delta)).max(0.0)
}

/// The Section 7.4 connectivity condition: the minimal even `d_L` such that
/// a node with `d_L` out-neighbors, each independent with probability `α`,
/// has fewer than three independent out-neighbors with probability at most
/// `ε` — i.e. `P(Bin(d_L, α) < 3) ≤ ε`.
///
/// The paper's example: `ℓ = δ = 1 %` (so `α = 0.96`) and `ε = 10⁻³⁰`
/// require `d_L ≥ 26`.
///
/// Returns `None` when even `d_L = max_d_l` cannot achieve `ε` (e.g. `α`
/// too small).
#[must_use]
pub fn min_dl_for_connectivity(alpha: f64, epsilon: f64, max_d_l: usize) -> Option<usize> {
    assert!((0.0..=1.0).contains(&alpha), "alpha must be a probability");
    assert!(epsilon > 0.0, "epsilon must be positive");
    (4..=max_d_l).step_by(2).find(|&d_l| binomial_cdf_below(d_l as u64, alpha, 3) <= epsilon)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_matches_closed_form() {
        for (l, d) in [(0.0, 0.01), (0.01, 0.01), (0.05, 0.01), (0.1, 0.02)] {
            let chain = DependenceChain::new(l, d).unwrap();
            let closed = dependent_fraction_bound(l, d);
            assert!((chain.stationary_dependent_fraction() - closed).abs() < 1e-12, "l={l} d={d}");
        }
    }

    #[test]
    fn closed_form_is_below_twice_the_rate() {
        // The final inequality of Lemma 7.9.
        for x in [0.001, 0.01, 0.02, 0.05, 0.1, 0.2] {
            let bound = dependent_fraction_bound(x, 0.0);
            assert!(bound <= 2.0 * x + 1e-12, "x={x}: {bound}");
        }
    }

    #[test]
    fn alpha_bound_examples() {
        // ℓ = δ = 1 % → α ≥ 0.96 ("grows about twice as fast as the loss
        // rate").
        assert!((alpha_lower_bound(0.01, 0.01) - 0.96).abs() < 1e-12);
        assert_eq!(alpha_lower_bound(0.6, 0.0), 0.0);
        assert_eq!(alpha_lower_bound(0.0, 0.0), 1.0);
    }

    #[test]
    fn zero_rates_mean_full_independence() {
        let chain = DependenceChain::new(0.0, 0.0).unwrap();
        assert_eq!(chain.stationary_dependent_fraction(), 0.0);
        assert_eq!(chain.to_dependent(), 0.0);
    }

    #[test]
    fn rejects_invalid_rates() {
        assert!(DependenceChain::new(0.9, 0.2).is_err());
        assert!(DependenceChain::new(-0.1, 0.0).is_err());
        assert!(DependenceChain::new(f64::NAN, 0.0).is_err());
    }

    #[test]
    fn connectivity_example_from_the_paper() {
        // "for ℓ = δ = 1 % and ε = 10⁻³⁰, d_L should be set to at least 26."
        let alpha = alpha_lower_bound(0.01, 0.01);
        let d_l = min_dl_for_connectivity(alpha, 1e-30, 100).unwrap();
        assert_eq!(d_l, 26);
    }

    #[test]
    fn connectivity_threshold_shrinks_with_looser_epsilon() {
        let alpha = 0.96;
        let strict = min_dl_for_connectivity(alpha, 1e-30, 100).unwrap();
        let loose = min_dl_for_connectivity(alpha, 1e-10, 100).unwrap();
        assert!(loose < strict);
    }

    #[test]
    fn connectivity_returns_none_when_unachievable() {
        assert_eq!(min_dl_for_connectivity(0.96, 1e-300, 10), None);
    }
}
