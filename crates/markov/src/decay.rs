//! Join/leave dynamics (Section 6.5): the id-instance decay bound for
//! departed nodes (Lemmas 6.9/6.10, Figure 6.4) and the integration bounds
//! for joiners (Lemmas 6.11–6.13, Corollary 6.14).

/// The per-round survival factor of Lemma 6.9: an id instance survives one
/// round with probability at most `1 − (1 − ℓ − δ)·d_L / s²`.
#[must_use]
pub fn survival_factor(loss: f64, delta: f64, d_l: usize, s: usize) -> f64 {
    assert!(s >= 2, "view size must be at least 2");
    1.0 - (1.0 - loss - delta) * d_l as f64 / (s * s) as f64
}

/// The Figure 6.4 curve: the upper bound on the probability that an id
/// instance of a left/failed node remains in the system `i` rounds after
/// the departure, for `i = 1..=rounds`.
#[must_use]
pub fn leave_survival_bound(
    loss: f64,
    delta: f64,
    d_l: usize,
    s: usize,
    rounds: usize,
) -> Vec<f64> {
    let factor = survival_factor(loss, delta, d_l, s);
    let mut out = Vec::with_capacity(rounds);
    let mut p = 1.0;
    for _ in 0..rounds {
        p *= factor;
        out.push(p);
    }
    out
}

/// The number of rounds until the survival bound first drops below `target`
/// (e.g. 0.5 for the paper's "after merely 70 rounds, fewer than 50 % ...
/// remain"). Returns `None` if the factor is 1 (no decay, `d_L = 0`).
#[must_use]
pub fn rounds_until_survival_below(
    loss: f64,
    delta: f64,
    d_l: usize,
    s: usize,
    target: f64,
) -> Option<usize> {
    let factor = survival_factor(loss, delta, d_l, s);
    if factor >= 1.0 || target <= 0.0 || target >= 1.0 {
        return None;
    }
    // factor^i < target ⇔ i > ln(target)/ln(factor).
    Some((target.ln() / factor.ln()).ceil() as usize)
}

/// Lemma 6.11: a lower bound on the expected creation rate `Δ` of new id
/// instances by an average (veteran) node per round, given the expected
/// indegree `D_in`.
#[must_use]
pub fn veteran_creation_rate(loss: f64, delta: f64, d_l: usize, s: usize, d_in: f64) -> f64 {
    (1.0 - loss - delta) * d_l as f64 / (s * s) as f64 * d_in
}

/// Lemma 6.12: a lower bound on the creation rate of a newly joined node
/// (whose outdegree starts at `d_L`): `(d_L/s)² · Δ`.
#[must_use]
pub fn joiner_creation_rate(loss: f64, delta: f64, d_l: usize, s: usize, d_in: f64) -> f64 {
    let ratio = d_l as f64 / s as f64;
    ratio * ratio * veteran_creation_rate(loss, delta, d_l, s, d_in)
}

/// Lemma 6.13's horizon: within `s² / ((1 − ℓ − δ)·d_L)` rounds a joiner is
/// expected to create at least `(d_L/s)² · D_in` id instances.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct JoinBound {
    /// The round horizon `s² / ((1−ℓ−δ)·d_L)`.
    pub rounds: f64,
    /// The expected instances created by then: `(d_L/s)² · D_in`.
    pub expected_instances: f64,
}

/// Computes the Lemma 6.13 join-integration bound.
///
/// # Panics
///
/// Panics if `d_L = 0` (a joiner that duplicates nothing creates no
/// instances on this bound's terms) or `ℓ + δ ≥ 1`.
#[must_use]
pub fn join_integration_bound(loss: f64, delta: f64, d_l: usize, s: usize, d_in: f64) -> JoinBound {
    assert!(d_l > 0, "the join bound requires d_L > 0");
    assert!(loss + delta < 1.0, "the join bound requires l + delta < 1");
    let ratio = d_l as f64 / s as f64;
    JoinBound {
        rounds: (s * s) as f64 / ((1.0 - loss - delta) * d_l as f64),
        expected_instances: ratio * ratio * d_in,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const S: usize = 40;
    const D_L: usize = 18;
    const DELTA: f64 = 0.01;

    #[test]
    fn survival_factor_matches_formula() {
        let f = survival_factor(0.0, DELTA, D_L, S);
        assert!((f - (1.0 - 0.99 * 18.0 / 1600.0)).abs() < 1e-12);
    }

    #[test]
    fn paper_figure_6_4_anchor_point() {
        // "after merely 70 rounds, fewer than 50 % of the id instances of a
        // left/failed node are expected to remain" — for every loss rate
        // shown.
        for loss in [0.0, 0.01, 0.05, 0.1] {
            let rounds = rounds_until_survival_below(loss, DELTA, D_L, S, 0.5).unwrap();
            assert!((55..=75).contains(&rounds), "ℓ={loss}: 50% point at {rounds} rounds");
        }
    }

    #[test]
    fn decay_is_nearly_loss_insensitive() {
        // Figure 6.4's visual: the four curves are almost indistinguishable.
        let low = leave_survival_bound(0.0, DELTA, D_L, S, 500);
        let high = leave_survival_bound(0.1, DELTA, D_L, S, 500);
        for (a, b) in low.iter().zip(&high) {
            assert!((a - b).abs() < 0.06, "curves diverged: {a} vs {b}");
        }
    }

    #[test]
    fn survival_curve_is_decreasing_geometric() {
        let curve = leave_survival_bound(0.01, DELTA, D_L, S, 100);
        assert_eq!(curve.len(), 100);
        for w in curve.windows(2) {
            assert!(w[1] < w[0]);
        }
        let f = survival_factor(0.01, DELTA, D_L, S);
        assert!((curve[0] - f).abs() < 1e-12);
        assert!((curve[9] - f.powi(10)).abs() < 1e-12);
    }

    #[test]
    fn no_decay_without_duplication_floor() {
        assert_eq!(survival_factor(0.0, 0.0, 0, S), 1.0);
        assert_eq!(rounds_until_survival_below(0.0, 0.0, 0, S, 0.5), None);
    }

    #[test]
    fn creation_rates_scale_as_lemmas_6_11_and_6_12() {
        let d_in = 28.0;
        let veteran = veteran_creation_rate(0.01, DELTA, D_L, S, d_in);
        let joiner = joiner_creation_rate(0.01, DELTA, D_L, S, d_in);
        let ratio = (D_L as f64 / S as f64).powi(2);
        assert!((joiner - ratio * veteran).abs() < 1e-12);
        assert!(veteran > 0.0 && joiner < veteran);
    }

    #[test]
    fn corollary_6_14_shape() {
        // For s/d_L = 2 and ℓ+δ ≪ 1: after ~2s rounds the joiner creates at
        // least D_in/4 instances.
        let s = 40;
        let d_l = 20;
        let d_in = 30.0;
        let bound = join_integration_bound(0.0, 0.001, d_l, s, d_in);
        assert!((bound.expected_instances - d_in / 4.0).abs() < 1e-9);
        assert!(
            (bound.rounds - 2.0 * s as f64).abs() / (2.0 * s as f64) < 0.01,
            "horizon {} vs 2s = {}",
            bound.rounds,
            2 * s
        );
    }

    #[test]
    #[should_panic(expected = "d_L > 0")]
    fn join_bound_requires_positive_dl() {
        let _ = join_integration_bound(0.0, 0.0, 0, S, 10.0);
    }
}
