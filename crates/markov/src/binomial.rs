//! Log-space binomial machinery: reference distributions for Figures 6.1 and
//! 6.3, the combinatorial counts of Eq. (6.1), and the binomial tails behind
//! the Section 7.4 connectivity condition.

/// Natural log of `k!`, computed by summation (exact enough for the `k`
/// values used here, and free of special-function dependencies).
#[must_use]
pub fn ln_factorial(k: u64) -> f64 {
    (2..=k).map(|i| (i as f64).ln()).sum()
}

/// Natural log of the binomial coefficient `C(n, k)`; `-∞` when `k > n`.
#[must_use]
pub fn ln_choose(n: u64, k: u64) -> f64 {
    if k > n {
        return f64::NEG_INFINITY;
    }
    ln_factorial(n) - ln_factorial(k) - ln_factorial(n - k)
}

/// The binomial pmf `P(Bin(n, p) = k)`, computed in log space to stay
/// accurate for extreme tails (the Section 7.4 example needs probabilities
/// near 1e-30).
#[must_use]
pub fn binomial_pmf(n: u64, p: f64, k: u64) -> f64 {
    assert!((0.0..=1.0).contains(&p), "p must be a probability");
    if k > n {
        return 0.0;
    }
    if p == 0.0 {
        return if k == 0 { 1.0 } else { 0.0 };
    }
    if p == 1.0 {
        return if k == n { 1.0 } else { 0.0 };
    }
    let ln = ln_choose(n, k) + k as f64 * p.ln() + (n - k) as f64 * (1.0 - p).ln();
    ln.exp()
}

/// The full binomial pmf vector `[P(X = 0), …, P(X = n)]`.
#[must_use]
pub fn binomial_pmf_vec(n: u64, p: f64) -> Vec<f64> {
    (0..=n).map(|k| binomial_pmf(n, p, k)).collect()
}

/// The lower tail `P(Bin(n, p) < k)`, accurate in log space for tiny tails.
#[must_use]
pub fn binomial_cdf_below(n: u64, p: f64, k: u64) -> f64 {
    (0..k.min(n + 1)).map(|i| binomial_pmf(n, p, i)).sum()
}

/// A binomial pmf with the same *mean* as a target distribution, over the
/// same support — the comparison curves of Figure 6.1 ("binomial
/// distributions with the same expectations"). Given support size `n` and
/// mean `m`, returns `Bin(n, m/n)`.
#[must_use]
pub fn binomial_with_mean(n: u64, mean: f64) -> Vec<f64> {
    let p = (mean / n as f64).clamp(0.0, 1.0);
    binomial_pmf_vec(n, p)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factorials_are_exact_for_small_k() {
        assert_eq!(ln_factorial(0), 0.0);
        assert_eq!(ln_factorial(1), 0.0);
        assert!((ln_factorial(5) - 120f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn choose_matches_pascal() {
        assert!((ln_choose(6, 2).exp() - 15.0).abs() < 1e-9);
        assert!((ln_choose(10, 5).exp() - 252.0).abs() < 1e-9);
        assert_eq!(ln_choose(3, 5), f64::NEG_INFINITY);
    }

    #[test]
    fn pmf_sums_to_one() {
        let pmf = binomial_pmf_vec(40, 0.3);
        assert!((pmf.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pmf_handles_degenerate_p() {
        assert_eq!(binomial_pmf(10, 0.0, 0), 1.0);
        assert_eq!(binomial_pmf(10, 0.0, 1), 0.0);
        assert_eq!(binomial_pmf(10, 1.0, 10), 1.0);
        assert_eq!(binomial_pmf(10, 1.0, 9), 0.0);
        assert_eq!(binomial_pmf(10, 0.5, 11), 0.0);
    }

    #[test]
    fn pmf_matches_hand_computation() {
        // P(Bin(4, 0.5) = 2) = 6/16.
        assert!((binomial_pmf(4, 0.5, 2) - 0.375).abs() < 1e-12);
    }

    #[test]
    fn tail_is_accurate_at_extreme_values() {
        // P(Bin(26, 0.96) < 3): each term is ~1e-31; the sum must not
        // underflow to zero.
        let tail = binomial_cdf_below(26, 0.96, 3);
        assert!(tail > 0.0 && tail < 1e-29, "tail {tail}");
    }

    #[test]
    fn mean_matched_binomial_has_requested_mean() {
        let pmf = binomial_with_mean(90, 30.0);
        let mean: f64 = pmf.iter().enumerate().map(|(k, &p)| k as f64 * p).sum();
        assert!((mean - 30.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn pmf_rejects_bad_p() {
        let _ = binomial_pmf(5, 1.5, 2);
    }
}
