//! Sparse finite Markov chains and stationary-distribution computation.
//!
//! The paper computes stationary distributions "numerically by multiplying
//! the transition matrix by itself until it converges" (Section 6.2). We use
//! the mathematically equivalent vector power iteration `p ← pP`, exploiting
//! the sparsity of the degree chain (each state has a handful of successors).

use sandf_graph::total_variation;

/// A row-stochastic sparse transition structure over `0..len()` states.
#[derive(Clone, Debug)]
pub struct SparseChain {
    rows: Vec<Vec<(usize, f64)>>,
}

/// Error from stationary-distribution computation.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum ChainError {
    /// A row's probabilities do not sum to 1 (within tolerance), or an entry
    /// is negative / non-finite.
    NotStochastic {
        /// The offending row.
        row: usize,
        /// The row sum found.
        sum: f64,
    },
    /// Power iteration did not converge within the iteration budget.
    NoConvergence {
        /// Total-variation distance between the last two iterates.
        residual: f64,
    },
}

impl core::fmt::Display for ChainError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match *self {
            Self::NotStochastic { row, sum } => {
                write!(f, "row {row} sums to {sum}, not 1")
            }
            Self::NoConvergence { residual } => {
                write!(f, "power iteration stalled at residual {residual}")
            }
        }
    }
}

impl std::error::Error for ChainError {}

impl SparseChain {
    /// Creates a chain from per-state successor lists. Entries with zero
    /// probability are dropped; duplicate successors are merged.
    #[must_use]
    pub fn new(mut rows: Vec<Vec<(usize, f64)>>) -> Self {
        for row in &mut rows {
            row.retain(|&(_, p)| p != 0.0);
            row.sort_unstable_by_key(|&(j, _)| j);
            let mut merged: Vec<(usize, f64)> = Vec::with_capacity(row.len());
            for &(j, p) in row.iter() {
                match merged.last_mut() {
                    Some(last) if last.0 == j => last.1 += p,
                    _ => merged.push((j, p)),
                }
            }
            *row = merged;
        }
        Self { rows }
    }

    /// Number of states.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the chain has no states.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The successors of `state` as `(state, probability)` pairs.
    #[must_use]
    pub fn row(&self, state: usize) -> &[(usize, f64)] {
        &self.rows[state]
    }

    /// Validates that every row is a probability distribution.
    ///
    /// # Errors
    ///
    /// Returns [`ChainError::NotStochastic`] naming the first offending row.
    pub fn check_stochastic(&self, tol: f64) -> Result<(), ChainError> {
        for (i, row) in self.rows.iter().enumerate() {
            let mut sum = 0.0;
            for &(j, p) in row {
                if !(0.0..=1.0 + tol).contains(&p) || !p.is_finite() || j >= self.rows.len() {
                    return Err(ChainError::NotStochastic { row: i, sum: p });
                }
                sum += p;
            }
            if (sum - 1.0).abs() > tol {
                return Err(ChainError::NotStochastic { row: i, sum });
            }
        }
        Ok(())
    }

    /// One step of the evolution `p ← pP`.
    #[must_use]
    pub fn step_distribution(&self, p: &[f64]) -> Vec<f64> {
        let mut next = vec![0.0; self.rows.len()];
        for (i, row) in self.rows.iter().enumerate() {
            let mass = p[i];
            if mass == 0.0 {
                continue;
            }
            for &(j, prob) in row {
                next[j] += mass * prob;
            }
        }
        next
    }

    /// Computes the stationary distribution by power iteration from `init`,
    /// declaring convergence when the total-variation distance between
    /// consecutive iterates drops below `tol`.
    ///
    /// For an ergodic chain this converges to the unique `π` with `πP = π`
    /// (the fundamental theorem of Section 3.2). For a reducible chain it
    /// converges to a stationary distribution reachable from `init`.
    ///
    /// # Errors
    ///
    /// Returns [`ChainError::NoConvergence`] after `max_iters` steps, or
    /// [`ChainError::NotStochastic`] if `init`'s length mismatches.
    pub fn stationary_from(
        &self,
        init: &[f64],
        tol: f64,
        max_iters: usize,
    ) -> Result<Vec<f64>, ChainError> {
        if init.len() != self.rows.len() {
            return Err(ChainError::NotStochastic { row: usize::MAX, sum: init.len() as f64 });
        }
        let mut p = init.to_vec();
        let mut residual = f64::INFINITY;
        for _ in 0..max_iters {
            let next = self.step_distribution(&p);
            residual = total_variation(&p, &next);
            p = next;
            if residual < tol {
                // Renormalize to wash out accumulated rounding.
                let sum: f64 = p.iter().sum();
                if sum > 0.0 {
                    for x in &mut p {
                        *x /= sum;
                    }
                }
                return Ok(p);
            }
        }
        Err(ChainError::NoConvergence { residual })
    }

    /// Computes the stationary distribution from the uniform initial
    /// distribution.
    ///
    /// # Errors
    ///
    /// See [`stationary_from`](Self::stationary_from).
    pub fn stationary(&self, tol: f64, max_iters: usize) -> Result<Vec<f64>, ChainError> {
        let n = self.rows.len().max(1);
        let init = vec![1.0 / n as f64; self.rows.len()];
        self.stationary_from(&init, tol, max_iters)
    }

    /// Estimates the modulus of the second-largest eigenvalue `|λ₂|` by
    /// power iteration on the mass-free subspace (`Σᵢ vᵢ = 0`, the
    /// complement of the stationary direction for a stochastic matrix).
    ///
    /// The *spectral gap* `1 − |λ₂|` governs mixing: distributions converge
    /// to `π` like `|λ₂|ᵗ`. This is the sharp quantity the conductance
    /// bound of Lemma 7.14 lower-bounds via Cheeger's inequality
    /// (`gap ≥ Φ²/2`), so comparing the two on small chains shows exactly
    /// how conservative the paper's Section 7.5 machinery is.
    ///
    /// Returns `None` for chains with fewer than 2 states or when the
    /// iterate collapses to zero (e.g. a rank-one chain, `λ₂ = 0`).
    #[must_use]
    pub fn second_eigenvalue_modulus(&self, iterations: usize) -> Option<f64> {
        let n = self.rows.len();
        if n < 2 {
            return None;
        }
        // A deterministic, generic start vector (a structured vector like
        // ±1 alternation can be exactly orthogonal to the subdominant
        // eigenvector on symmetric chains), projected to zero sum.
        let mut v: Vec<f64> = (0..n).map(|i| ((i as f64) + 1.0).sin()).collect();
        let total: f64 = v.iter().sum();
        for x in &mut v {
            *x -= total / n as f64;
        }
        let norm = |v: &[f64]| v.iter().map(|x| x * x).sum::<f64>().sqrt();
        let mut rate = 0.0;
        let mut current = norm(&v);
        if current == 0.0 {
            return None;
        }
        for x in &mut v {
            *x /= current;
        }
        for _ in 0..iterations {
            let mut next = self.step_distribution(&v);
            // Rounding reintroduces a component along the eigenvalue-1
            // direction; re-project onto the zero-sum subspace (which holds
            // every non-unit eigenvector) each step or the estimate drifts
            // to 1.
            let mean: f64 = next.iter().sum::<f64>() / next.len() as f64;
            for x in &mut next {
                *x -= mean;
            }
            current = norm(&next);
            if current < 1e-300 {
                return Some(0.0);
            }
            v = next;
            rate = current;
            for x in &mut v {
                *x /= current;
            }
        }
        Some(rate.clamp(0.0, 1.0))
    }

    /// A mixing-time estimate from the spectral gap:
    /// `t_mix(ε) ≈ ln(1/(ε·π_min)) / (1 − |λ₂|)`.
    ///
    /// Returns `None` when the gap cannot be estimated or is zero.
    #[must_use]
    pub fn mixing_time_estimate(&self, pi: &[f64], epsilon: f64) -> Option<f64> {
        let lambda = self.second_eigenvalue_modulus(3000)?;
        let gap = 1.0 - lambda;
        if gap <= 0.0 {
            return None;
        }
        let pi_min = pi.iter().copied().filter(|&p| p > 0.0).fold(f64::INFINITY, f64::min);
        if !pi_min.is_finite() {
            return None;
        }
        Some((1.0 / (epsilon * pi_min)).ln() / gap)
    }

    /// Number of strongly connected components (Tarjan) — irreducibility
    /// means exactly one (Section 3.2). Zero-probability edges are already
    /// dropped at construction.
    #[must_use]
    pub fn strongly_connected_components(&self) -> usize {
        // Iterative Tarjan to survive deep chains.
        let n = self.rows.len();
        let mut index = vec![usize::MAX; n];
        let mut low = vec![0usize; n];
        let mut on_stack = vec![false; n];
        let mut stack: Vec<usize> = Vec::new();
        let mut next_index = 0usize;
        let mut components = 0usize;
        let mut call: Vec<(usize, usize)> = Vec::new();

        for start in 0..n {
            if index[start] != usize::MAX {
                continue;
            }
            call.push((start, 0));
            index[start] = next_index;
            low[start] = next_index;
            next_index += 1;
            stack.push(start);
            on_stack[start] = true;

            while let Some(&mut (v, ref mut edge)) = call.last_mut() {
                if *edge < self.rows[v].len() {
                    let w = self.rows[v][*edge].0;
                    *edge += 1;
                    if index[w] == usize::MAX {
                        index[w] = next_index;
                        low[w] = next_index;
                        next_index += 1;
                        stack.push(w);
                        on_stack[w] = true;
                        call.push((w, 0));
                    } else if on_stack[w] {
                        low[v] = low[v].min(index[w]);
                    }
                } else {
                    call.pop();
                    if let Some(&(parent, _)) = call.last() {
                        low[parent] = low[parent].min(low[v]);
                    }
                    if low[v] == index[v] {
                        components += 1;
                        while let Some(w) = stack.pop() {
                            on_stack[w] = false;
                            if w == v {
                                break;
                            }
                        }
                    }
                }
            }
        }
        components
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_state(p: f64, q: f64) -> SparseChain {
        SparseChain::new(vec![vec![(0, 1.0 - p), (1, p)], vec![(0, q), (1, 1.0 - q)]])
    }

    #[test]
    fn two_state_stationary_is_analytic() {
        let chain = two_state(0.3, 0.1);
        chain.check_stochastic(1e-12).unwrap();
        let pi = chain.stationary(1e-14, 100_000).unwrap();
        // π = (q, p) / (p + q).
        assert!((pi[0] - 0.25).abs() < 1e-10);
        assert!((pi[1] - 0.75).abs() < 1e-10);
    }

    #[test]
    fn doubly_stochastic_chain_is_uniform() {
        // A symmetric random walk on a 4-cycle with holding probability.
        let rows =
            (0..4).map(|i| vec![(i, 0.5), ((i + 1) % 4, 0.25), ((i + 3) % 4, 0.25)]).collect();
        let chain = SparseChain::new(rows);
        let pi = chain.stationary(1e-14, 100_000).unwrap();
        for &x in &pi {
            assert!((x - 0.25).abs() < 1e-10);
        }
    }

    #[test]
    fn detects_non_stochastic_rows() {
        let chain = SparseChain::new(vec![vec![(0, 0.5)]]);
        assert!(matches!(
            chain.check_stochastic(1e-9),
            Err(ChainError::NotStochastic { row: 0, .. })
        ));
    }

    #[test]
    fn merges_duplicate_successors() {
        let chain = SparseChain::new(vec![vec![(0, 0.25), (0, 0.75)]]);
        assert_eq!(chain.row(0), &[(0, 1.0)]);
        chain.check_stochastic(1e-12).unwrap();
    }

    #[test]
    fn drops_zero_probability_edges() {
        let chain = SparseChain::new(vec![vec![(0, 1.0), (1, 0.0)], vec![(1, 1.0)]]);
        assert_eq!(chain.row(0), &[(0, 1.0)]);
        // Two absorbing states → two SCCs.
        assert_eq!(chain.strongly_connected_components(), 2);
    }

    #[test]
    fn scc_of_irreducible_chain_is_one() {
        assert_eq!(two_state(0.3, 0.1).strongly_connected_components(), 1);
    }

    #[test]
    fn scc_handles_long_paths() {
        // A directed cycle of 1000 states: one SCC.
        let n = 1000;
        let rows = (0..n).map(|i| vec![((i + 1) % n, 1.0)]).collect();
        let chain = SparseChain::new(rows);
        assert_eq!(chain.strongly_connected_components(), 1);
    }

    #[test]
    fn periodic_chain_reports_no_convergence() {
        // A deterministic 2-cycle never converges from a point mass.
        let chain = SparseChain::new(vec![vec![(1, 1.0)], vec![(0, 1.0)]]);
        let err = chain.stationary_from(&[1.0, 0.0], 1e-12, 1000).unwrap_err();
        assert!(matches!(err, ChainError::NoConvergence { .. }));
    }

    #[test]
    fn reducible_chain_converges_to_reachable_component() {
        // State 1 is absorbing; state 0 leaks into it.
        let chain = SparseChain::new(vec![vec![(0, 0.5), (1, 0.5)], vec![(1, 1.0)]]);
        let pi = chain.stationary_from(&[1.0, 0.0], 1e-13, 10_000).unwrap();
        assert!(pi[1] > 0.999_999);
    }

    #[test]
    fn step_distribution_conserves_mass() {
        let chain = two_state(0.2, 0.4);
        let p = chain.step_distribution(&[0.6, 0.4]);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn second_eigenvalue_of_two_state_chain_is_exact() {
        // λ₂ = 1 − p − q for the 2-state chain.
        for (p, q) in [(0.3, 0.1), (0.5, 0.5), (0.05, 0.2)] {
            let chain = two_state(p, q);
            let lambda = chain.second_eigenvalue_modulus(2000).unwrap();
            let expected = (1.0 - p - q).abs();
            assert!((lambda - expected).abs() < 1e-6, "p={p} q={q}: λ₂ {lambda} vs {expected}");
        }
    }

    #[test]
    fn second_eigenvalue_of_lazy_cycle() {
        // Lazy symmetric walk on an n-cycle: eigenvalues
        // (1 + cos(2πk/n))/2, so λ₂ = (1 + cos(2π/n))/2.
        for n in [4usize, 6, 8] {
            let rows = (0..n)
                .map(|i| vec![(i, 0.5), ((i + 1) % n, 0.25), ((i + n - 1) % n, 0.25)])
                .collect();
            let chain = SparseChain::new(rows);
            let lambda = chain.second_eigenvalue_modulus(6000).unwrap();
            let expected = (1.0 + (2.0 * std::f64::consts::PI / n as f64).cos()) / 2.0;
            assert!((lambda - expected).abs() < 1e-6, "n={n}: λ₂ {lambda} vs {expected}");
        }
    }

    #[test]
    fn mixing_time_scales_with_the_gap() {
        let fast = two_state(0.5, 0.5); // gap 1
        let slow = two_state(0.05, 0.05); // gap 0.1
        let pi = [0.5, 0.5];
        let t_fast = fast.mixing_time_estimate(&pi, 0.01).unwrap();
        let t_slow = slow.mixing_time_estimate(&pi, 0.01).unwrap();
        assert!(t_slow > 5.0 * t_fast, "fast {t_fast}, slow {t_slow}");
    }

    #[test]
    fn spectral_helpers_reject_degenerate_chains() {
        let chain = SparseChain::new(vec![vec![(0, 1.0)]]);
        assert_eq!(chain.second_eigenvalue_modulus(100), None);
    }
}
