//! Exact enumeration of the *global* Markov chain over membership graphs
//! (Section 7.1) for tiny systems.
//!
//! For systems small enough to enumerate, we build the full MC graph `G`
//! whose vertices are global states (all nodes' views, as multisets) and
//! whose edge weights are the exact S&F transformation probabilities. This
//! lets us verify the paper's structural results *exactly* rather than
//! statistically:
//!
//! * Lemma A.2 / 7.1 — the reachable chain is strongly connected;
//! * Lemma 7.5 — with no loss and `d_L = 0`, the stationary distribution is
//!   **uniform** over all reachable states;
//! * Lemma 7.6 — by symmetry of that uniform law, every `v ≠ u` is equally
//!   likely to appear in `u`'s view.
//!
//! Views are represented as sorted multisets of node indices — the protocol
//! selects slots uniformly at random, so slot order never matters and the
//! multiset quotient is a lossless lumping of the slot-level chain (we
//! cross-validated the enumerated chain against a direct slot-level
//! simulation of `sandf-core`; the stationary laws agree to Monte Carlo
//! precision).
//!
//! ## A finite-`n` refinement of Lemma 7.5
//!
//! Exact enumeration reveals that Lemma 7.5's uniformity claim needs a
//! qualifier at small `n`: over *all* reachable membership graphs the
//! stationary distribution is **not** uniform (TV ≈ 0.30 from uniform for
//! `n = 3, 4`), because the reversibility argument of Lemma 7.3 counts
//! transformations without id multiplicities — a transformation that created
//! a duplicate id is undone by *more* slot pairs than produced it, breaking
//! detailed balance on states with duplicate ids or self-edges. Restricted
//! to **simple** states (no duplicate ids in any view, no self-edges) the
//! stationary distribution *is* exactly uniform
//! ([`conditional_simple_uniformity_tv`](ExactGlobalMc::conditional_simple_uniformity_tv)
//! measures 0 to solver precision). In the paper's asymptotic regime
//! (`n ≫ s`) duplicate ids and self-edges vanish, so the published statement
//! is recovered; node symmetry (Lemma 7.6's uniform marginals) holds exactly
//! at *every* `n`, as the tests verify.

use std::collections::HashMap;

use crate::chain::{ChainError, SparseChain};

/// A global state: for each node, the sorted multiset of ids in its view.
pub type GlobalState = Vec<Vec<u8>>;

/// The exactly enumerated global chain.
#[derive(Clone, Debug)]
pub struct ExactGlobalMc {
    states: Vec<GlobalState>,
    chain: SparseChain,
    s: usize,
    d_l: usize,
    loss: f64,
}

/// Error from building or solving the exact chain.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum ExactMcError {
    /// The state space exceeded the safety budget.
    TooManyStates {
        /// The budget that was exceeded.
        budget: usize,
    },
    /// The stationary computation failed.
    Chain(ChainError),
}

impl core::fmt::Display for ExactMcError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match *self {
            Self::TooManyStates { budget } => {
                write!(f, "state space exceeded the budget of {budget} states")
            }
            Self::Chain(e) => write!(f, "exact global chain: {e}"),
        }
    }
}

impl std::error::Error for ExactMcError {}

impl From<ChainError> for ExactMcError {
    fn from(e: ChainError) -> Self {
        Self::Chain(e)
    }
}

fn remove_instance(view: &mut Vec<u8>, id: u8) {
    let pos = view.iter().position(|&x| x == id).expect("instance must exist");
    view.remove(pos);
}

fn insert_instance(view: &mut Vec<u8>, id: u8) {
    let pos = view.partition_point(|&x| x <= id);
    view.insert(pos, id);
}

impl ExactGlobalMc {
    /// Enumerates all states reachable from `initial` by S&F transformations
    /// with the given parameters, and the exact transition probabilities.
    ///
    /// Each transformation: a uniformly random node `u` (probability `1/n`)
    /// selects an ordered pair of distinct slots (probability `1/(s(s−1))`
    /// per pair); occupied pairs `(v, w)` trigger the Figure 5.1 semantics,
    /// including duplication (`d(u) ≤ d_L`), loss (probability `ℓ`), and
    /// deletion at a full receiver.
    ///
    /// # Errors
    ///
    /// Returns [`ExactMcError::TooManyStates`] if the reachable space
    /// exceeds `budget`.
    ///
    /// # Panics
    ///
    /// Panics if any initial view exceeds `s` entries or `ℓ ∉ [0, 1]`.
    pub fn build(
        initial: GlobalState,
        s: usize,
        d_l: usize,
        loss: f64,
        budget: usize,
    ) -> Result<Self, ExactMcError> {
        assert!((0.0..=1.0).contains(&loss), "loss must be a probability");
        assert!(initial.iter().all(|v| v.len() <= s), "view exceeds capacity");
        let mut canonical = initial;
        for view in &mut canonical {
            view.sort_unstable();
        }

        let mut index: HashMap<GlobalState, usize> = HashMap::new();
        let mut states: Vec<GlobalState> = Vec::new();
        index.insert(canonical.clone(), 0);
        states.push(canonical);
        let mut rows: Vec<Vec<(usize, f64)>> = Vec::new();

        // Breadth-first enumeration: states are processed in discovery
        // order, so `rows` stays aligned with `states`.
        while rows.len() < states.len() {
            let current = rows.len();
            let successors = Self::successors(&states[current], s, d_l, loss);
            let mut row: Vec<(usize, f64)> = Vec::with_capacity(successors.len());
            for (next_state, prob) in successors {
                let next_index = match index.get(&next_state) {
                    Some(&j) => j,
                    None => {
                        let j = states.len();
                        if j >= budget {
                            return Err(ExactMcError::TooManyStates { budget });
                        }
                        index.insert(next_state.clone(), j);
                        states.push(next_state);
                        j
                    }
                };
                row.push((next_index, prob));
            }
            rows.push(row);
        }

        let chain = SparseChain::new(rows);
        Ok(Self { states, chain, s, d_l, loss })
    }

    /// Whether the membership graph of `state` is weakly connected
    /// (self-edges connect nothing).
    fn weakly_connected(state: &GlobalState) -> bool {
        let n = state.len();
        if n <= 1 {
            return true;
        }
        let mut parent: Vec<usize> = (0..n).collect();
        fn find(parent: &mut [usize], x: usize) -> usize {
            let mut root = x;
            while parent[root] != root {
                root = parent[root];
            }
            let mut cur = x;
            while parent[cur] != root {
                let next = parent[cur];
                parent[cur] = root;
                cur = next;
            }
            root
        }
        let mut components = n;
        for (u, view) in state.iter().enumerate() {
            for &v in view {
                let (ru, rv) = (find(&mut parent, u), find(&mut parent, v as usize));
                if ru != rv {
                    parent[ru] = rv;
                    components -= 1;
                }
            }
        }
        components == 1
    }

    /// Exact successor distribution of one global state.
    ///
    /// Transitions into *partitioned* membership graphs are folded into the
    /// self-loop, exactly as the paper's Section 7.1 prescribes ("since
    /// partitioned states are excluded from G, we replace the edges leading
    /// to them ... by self-loops").
    fn successors(state: &GlobalState, s: usize, d_l: usize, loss: f64) -> Vec<(GlobalState, f64)> {
        let n = state.len();
        let pair_norm = (s * (s - 1)) as f64;
        let mut acc: HashMap<GlobalState, f64> = HashMap::new();
        let mut self_loop = 0.0f64;

        for u in 0..n {
            let view = &state[u];
            let d = view.len();
            let node_prob = 1.0 / n as f64;
            // Self-loop share from empty-slot selections.
            self_loop += node_prob * (1.0 - (d * d.saturating_sub(1)) as f64 / pair_norm);
            // Distinct id values in u's view.
            let mut uniq: Vec<u8> = view.clone();
            uniq.dedup();
            let mult = |id: u8| view.iter().filter(|&&x| x == id).count();
            for &v in &uniq {
                for &w in &uniq {
                    let pairs = if v == w {
                        (mult(v) * (mult(v) - 1)) as f64
                    } else {
                        (mult(v) * mult(w)) as f64
                    };
                    if pairs == 0.0 {
                        continue;
                    }
                    let base = node_prob * pairs / pair_norm;
                    let duplicated = d <= d_l;

                    // Sender side.
                    let mut after_send = state.clone();
                    if !duplicated {
                        remove_instance(&mut after_send[u], v);
                        remove_instance(&mut after_send[u], w);
                    }

                    // Lost: the send is the whole story.
                    if loss > 0.0 {
                        if Self::weakly_connected(&after_send) {
                            *acc.entry(after_send.clone()).or_insert(0.0) += base * loss;
                        } else {
                            self_loop += base * loss;
                        }
                    }
                    // Delivered to v (which may be u itself).
                    if loss < 1.0 {
                        let mut delivered = after_send;
                        let receiver = v as usize;
                        if delivered[receiver].len() < s {
                            debug_assert!(
                                delivered[receiver].len() + 2 <= s,
                                "even-degree invariant violated"
                            );
                            insert_instance(&mut delivered[receiver], u as u8);
                            insert_instance(&mut delivered[receiver], w);
                        }
                        if Self::weakly_connected(&delivered) {
                            *acc.entry(delivered).or_insert(0.0) += base * (1.0 - loss);
                        } else {
                            self_loop += base * (1.0 - loss);
                        }
                    }
                }
            }
        }

        let mut out: Vec<(GlobalState, f64)> = acc.into_iter().collect();
        // Merge the accumulated self-loop probability with any transitions
        // that happen to land back on the same state.
        if self_loop > 0.0 {
            out.push((state.clone(), self_loop));
        }
        out
    }

    /// Number of enumerated states.
    #[must_use]
    pub fn state_count(&self) -> usize {
        self.states.len()
    }

    /// The enumerated states.
    #[must_use]
    pub fn states(&self) -> &[GlobalState] {
        &self.states
    }

    /// The transition structure.
    #[must_use]
    pub fn chain(&self) -> &SparseChain {
        &self.chain
    }

    /// Number of strongly connected components (1 = irreducible).
    #[must_use]
    pub fn scc_count(&self) -> usize {
        self.chain.strongly_connected_components()
    }

    /// The stationary distribution over the enumerated states.
    ///
    /// # Errors
    ///
    /// Propagates power-iteration failure.
    pub fn stationary(&self) -> Result<Vec<f64>, ExactMcError> {
        Ok(self.chain.stationary(1e-13, 2_000_000)?)
    }

    /// Total-variation distance between the stationary distribution and the
    /// uniform distribution over the enumerated states. Lemma 7.5 predicts 0
    /// for `ℓ = 0`, `d_L = 0`, `0 < d_s(u) ≤ s`; exact enumeration shows the
    /// prediction only holds on the simple-state stratum at small `n` (see
    /// the module docs), so expect a substantially positive value here for
    /// tiny systems.
    ///
    /// # Errors
    ///
    /// Propagates power-iteration failure.
    pub fn uniformity_tv(&self) -> Result<f64, ExactMcError> {
        let pi = self.stationary()?;
        let uniform = vec![1.0 / self.states.len() as f64; self.states.len()];
        Ok(sandf_graph::total_variation(&pi, &uniform))
    }

    /// Whether a state is *simple*: no view contains a duplicate id or its
    /// owner's own id.
    #[must_use]
    pub fn is_simple(state: &GlobalState) -> bool {
        state.iter().enumerate().all(|(u, view)| {
            let mut dedup = view.clone();
            dedup.dedup();
            dedup.len() == view.len() && !view.contains(&(u as u8))
        })
    }

    /// Number of simple states in the enumerated space.
    #[must_use]
    pub fn simple_state_count(&self) -> usize {
        self.states.iter().filter(|s| Self::is_simple(s)).count()
    }

    /// Total-variation distance between the stationary distribution
    /// *conditioned on simple states* and the uniform distribution over
    /// those states — the finite-`n` form of Lemma 7.5 that exact
    /// enumeration confirms (see module docs). Returns `None` when no
    /// simple state is reachable.
    ///
    /// # Errors
    ///
    /// Propagates power-iteration failure.
    pub fn conditional_simple_uniformity_tv(&self) -> Result<Option<f64>, ExactMcError> {
        let pi = self.stationary()?;
        let probs: Vec<f64> = self
            .states
            .iter()
            .zip(&pi)
            .filter(|(s, _)| Self::is_simple(s))
            .map(|(_, &p)| p)
            .collect();
        if probs.is_empty() {
            return Ok(None);
        }
        let total: f64 = probs.iter().sum();
        if total == 0.0 {
            return Ok(None);
        }
        let conditional: Vec<f64> = probs.iter().map(|&p| p / total).collect();
        let uniform = vec![1.0 / conditional.len() as f64; conditional.len()];
        Ok(Some(sandf_graph::total_variation(&conditional, &uniform)))
    }

    /// The configured view size.
    #[must_use]
    pub fn view_size(&self) -> usize {
        self.s
    }

    /// The configured lower threshold.
    #[must_use]
    pub fn lower_threshold(&self) -> usize {
        self.d_l
    }

    /// The configured loss rate.
    #[must_use]
    pub fn loss(&self) -> f64 {
        self.loss
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Three nodes in a directed triangle with outdegree 2 each:
    /// `d_s(u) = 2 + 2·2 = 6 ≤ s = 6` for every node.
    fn triangle() -> GlobalState {
        vec![vec![1, 2], vec![0, 2], vec![0, 1]]
    }

    #[test]
    fn enumerates_a_nontrivial_space() {
        let mc = ExactGlobalMc::build(triangle(), 6, 0, 0.0, 100_000).unwrap();
        assert!(mc.state_count() > 10, "only {} states", mc.state_count());
        mc.chain().check_stochastic(1e-9).unwrap();
    }

    #[test]
    fn lossless_chain_is_strongly_connected() {
        // Lemma A.2.
        let mc = ExactGlobalMc::build(triangle(), 6, 0, 0.0, 100_000).unwrap();
        assert_eq!(mc.scc_count(), 1);
    }

    #[test]
    fn lossless_stationary_deviates_from_uniform_at_tiny_n() {
        // The finite-n refinement of Lemma 7.5 (see module docs): over all
        // 41 reachable multigraphs the stationary law is NOT uniform — the
        // reversibility argument breaks on states with duplicate ids, which
        // dominate when n is tiny. (Cross-validated against a slot-level
        // protocol simulation: TV(exact, simulated) ≈ 0.003.)
        let mc = ExactGlobalMc::build(triangle(), 6, 0, 0.0, 100_000).unwrap();
        let tv = mc.uniformity_tv().unwrap();
        assert!(tv > 0.2, "expected a substantial deviation, TV = {tv}");
    }

    /// Four nodes, `d_s(u) = 6` each — 885 reachable states, 9 simple ones.
    fn square() -> GlobalState {
        vec![vec![1, 2], vec![2, 3], vec![3, 0], vec![0, 1]]
    }

    #[test]
    #[ignore = "exact n=4 enumeration takes ~a minute; run explicitly or via the exact_uniform bench binary"]
    fn lemma_7_5_holds_exactly_on_simple_states() {
        let mc = ExactGlobalMc::build(square(), 6, 0, 0.0, 3_000_000).unwrap();
        assert_eq!(mc.scc_count(), 1);
        assert!(mc.simple_state_count() >= 9);
        let conditional = mc.conditional_simple_uniformity_tv().unwrap().unwrap();
        assert!(conditional < 1e-6, "conditional TV {conditional}");
        let unconditional = mc.uniformity_tv().unwrap();
        assert!(unconditional > 0.2, "unconditional TV {unconditional}");
    }

    #[test]
    fn simple_state_detection() {
        assert!(ExactGlobalMc::is_simple(&vec![vec![1, 2], vec![0, 2], vec![0, 1]]));
        // Duplicate id.
        assert!(!ExactGlobalMc::is_simple(&vec![vec![1, 1], vec![0], vec![]]));
        // Self-edge.
        assert!(!ExactGlobalMc::is_simple(&vec![vec![0], vec![], vec![]]));
    }

    #[test]
    fn sum_degrees_are_invariant_across_reachable_states() {
        // Lemma 6.2 at the global level.
        let mc = ExactGlobalMc::build(triangle(), 6, 0, 0.0, 100_000).unwrap();
        for state in mc.states() {
            let out: Vec<usize> = state.iter().map(Vec::len).collect();
            let mut sum = vec![0usize; state.len()];
            for (u, view) in state.iter().enumerate() {
                sum[u] += out[u];
                for &t in view {
                    sum[t as usize] += 2;
                }
            }
            assert!(sum.iter().all(|&ds| ds == 6), "sum degrees {sum:?}");
        }
    }

    #[test]
    fn lossy_chain_has_more_reachable_states() {
        // With ℓ > 0 edges can vanish, opening lower-degree states. A small
        // view size (s = 4) keeps the lossy space enumerable in a test.
        let lossless = ExactGlobalMc::build(triangle(), 4, 0, 0.0, 50_000).unwrap();
        let lossy = ExactGlobalMc::build(triangle(), 4, 2, 0.1, 50_000).unwrap();
        assert!(lossy.state_count() > lossless.state_count());
        lossy.chain().check_stochastic(1e-9).unwrap();
    }

    #[test]
    fn lossy_chain_is_strongly_connected() {
        // Lemma 7.1: with 0 < ℓ < 1, the global MC graph stays strongly
        // connected (duplications rebuild what loss destroys).
        let lossy = ExactGlobalMc::build(triangle(), 4, 2, 0.1, 50_000).unwrap();
        assert_eq!(lossy.scc_count(), 1);
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn node_symmetry_of_stationary_marginals() {
        // Lemma 7.6's substance, exactly: P(v ∈ u.lv) equal across v ≠ u.
        let mc = ExactGlobalMc::build(triangle(), 6, 0, 0.0, 100_000).unwrap();
        let pi = mc.stationary().unwrap();
        let n = 3usize;
        let mut occupancy = vec![vec![0.0f64; n]; n];
        for (state, &p) in mc.states().iter().zip(&pi) {
            for (u, view) in state.iter().enumerate() {
                for v in 0..n as u8 {
                    if v as usize != u && view.contains(&v) {
                        occupancy[u][v as usize] += p;
                    }
                }
            }
        }
        let reference = occupancy[0][1];
        for u in 0..n {
            for v in 0..n {
                if u != v {
                    assert!(
                        (occupancy[u][v] - reference).abs() < 1e-8,
                        "occupancy[{u}][{v}] = {} vs {reference}",
                        occupancy[u][v]
                    );
                }
            }
        }
    }

    #[test]
    fn budget_is_enforced() {
        let err = ExactGlobalMc::build(triangle(), 6, 0, 0.0, 5).unwrap_err();
        assert!(matches!(err, ExactMcError::TooManyStates { budget: 5 }));
    }
}
