//! The structured event journal: a bounded ring buffer of protocol events
//! with JSONL export.
//!
//! Every layer of the stack records the same vocabulary of events — the
//! simulator's step stream (self-loops, losses, deliveries, in-flight
//! sends), and the transports' send/drop/deliver taps — so one run's
//! journal can be read end to end, or replayed to debug a divergence.
//!
//! Journal contents are deterministic for a fixed seed in single-threaded
//! simulation runs: entries carry logical times (simulation steps, or a
//! transport's own event index), never wall-clock.

use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::Arc;

use parking_lot::Mutex;
use sandf_core::NodeId;

/// One structured protocol event, the union of what the instrumented
/// layers emit.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum JournalEvent {
    /// A simulation step picked an empty slot; nothing was sent.
    SelfLoop {
        /// The initiating node.
        initiator: NodeId,
    },
    /// A simulation step was skipped by a closed capacity gate (the
    /// node's fault model declined the action for this round).
    Skipped {
        /// The node whose step was skipped.
        initiator: NodeId,
    },
    /// A simulated message was dropped by the loss model.
    Lost {
        /// The initiating node.
        initiator: NodeId,
        /// The intended receiver.
        to: NodeId,
        /// The forwarded id.
        payload: NodeId,
        /// Whether the send duplicated.
        duplicated: bool,
    },
    /// A simulated message was addressed to a departed node.
    DeadLetter {
        /// The initiating node.
        initiator: NodeId,
        /// The departed receiver.
        to: NodeId,
        /// The forwarded id.
        payload: NodeId,
        /// Whether the send duplicated.
        duplicated: bool,
    },
    /// A simulated message was delivered.
    Delivered {
        /// The initiating node.
        initiator: NodeId,
        /// The receiver.
        to: NodeId,
        /// The forwarded id.
        payload: NodeId,
        /// Whether the send duplicated.
        duplicated: bool,
        /// Whether the receiver deleted the ids (full view).
        deleted: bool,
    },
    /// A simulated message was queued for later delivery.
    InFlight {
        /// The initiating node.
        initiator: NodeId,
        /// The receiver.
        to: NodeId,
        /// The forwarded id.
        payload: NodeId,
        /// Whether the send duplicated.
        duplicated: bool,
        /// The global step at which delivery is scheduled.
        deliver_at: u64,
    },
    /// A transport handed a message to the network.
    NetSent {
        /// The sending endpoint.
        from: NodeId,
        /// The destination.
        to: NodeId,
        /// The forwarded id.
        payload: NodeId,
    },
    /// A transport (or network hub) dropped a message.
    NetDropped {
        /// The sending endpoint.
        from: NodeId,
        /// The destination.
        to: NodeId,
        /// The forwarded id.
        payload: NodeId,
    },
    /// A transport delivered a message to its local endpoint.
    NetReceived {
        /// The receiving endpoint.
        to: NodeId,
        /// The original sender (the message's reinforcement id).
        from: NodeId,
        /// The forwarded id.
        payload: NodeId,
    },
    /// A live invariant check found a node outside the Observation 5.1
    /// outdegree bounds (even, within `[d_L, s]`).
    DegreeViolation {
        /// The offending node.
        node: NodeId,
        /// Its observed outdegree.
        degree: u32,
        /// The lower bound `d_L`.
        lo: u32,
        /// The upper bound `s` (view size).
        hi: u32,
    },
    /// A live invariant check found the measured stale-edge fraction above
    /// the Lemma 6.10 decay ceiling.
    StaleViolation {
        /// Measured stale fraction, in parts per million.
        stale_ppm: u64,
        /// The ceiling it exceeded, in parts per million.
        ceiling_ppm: u64,
    },
}

impl JournalEvent {
    /// The event's kind tag, as written to the JSONL `kind` field.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Self::SelfLoop { .. } => "self_loop",
            Self::Skipped { .. } => "skipped",
            Self::Lost { .. } => "lost",
            Self::DeadLetter { .. } => "dead_letter",
            Self::Delivered { .. } => "delivered",
            Self::InFlight { .. } => "in_flight",
            Self::NetSent { .. } => "net_sent",
            Self::NetDropped { .. } => "net_dropped",
            Self::NetReceived { .. } => "net_received",
            Self::DegreeViolation { .. } => "degree_violation",
            Self::StaleViolation { .. } => "stale_violation",
        }
    }
}

/// One journal record: a sequence number, the recorder's logical time, and
/// the event.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct JournalEntry {
    /// Global record index (monotone across the whole journal, including
    /// entries the ring has since evicted).
    pub seq: u64,
    /// The recorder's logical time (simulation step, transport event
    /// index) — never wall-clock, so journals are seed-stable.
    pub time: u64,
    /// The event.
    pub event: JournalEvent,
}

impl JournalEntry {
    /// Renders the entry as one JSON object (one JSONL line, no trailing
    /// newline).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(96);
        let _ = write!(
            out,
            "{{\"seq\":{},\"t\":{},\"kind\":\"{}\"",
            self.seq,
            self.time,
            self.event.kind()
        );
        match self.event {
            JournalEvent::SelfLoop { initiator } | JournalEvent::Skipped { initiator } => {
                let _ = write!(out, ",\"initiator\":{}", initiator.as_u64());
            }
            JournalEvent::Lost { initiator, to, payload, duplicated }
            | JournalEvent::DeadLetter { initiator, to, payload, duplicated } => {
                let _ = write!(
                    out,
                    ",\"initiator\":{},\"to\":{},\"id\":{},\"dup\":{duplicated}",
                    initiator.as_u64(),
                    to.as_u64(),
                    payload.as_u64()
                );
            }
            JournalEvent::Delivered { initiator, to, payload, duplicated, deleted } => {
                let _ = write!(
                    out,
                    ",\"initiator\":{},\"to\":{},\"id\":{},\"dup\":{duplicated},\"del\":{deleted}",
                    initiator.as_u64(),
                    to.as_u64(),
                    payload.as_u64()
                );
            }
            JournalEvent::InFlight { initiator, to, payload, duplicated, deliver_at } => {
                let _ = write!(
                    out,
                    ",\"initiator\":{},\"to\":{},\"id\":{},\"dup\":{duplicated},\"deliver_at\":{deliver_at}",
                    initiator.as_u64(),
                    to.as_u64(),
                    payload.as_u64()
                );
            }
            JournalEvent::NetSent { from, to, payload }
            | JournalEvent::NetDropped { from, to, payload } => {
                let _ = write!(
                    out,
                    ",\"from\":{},\"to\":{},\"id\":{}",
                    from.as_u64(),
                    to.as_u64(),
                    payload.as_u64()
                );
            }
            JournalEvent::NetReceived { to, from, payload } => {
                let _ = write!(
                    out,
                    ",\"to\":{},\"from\":{},\"id\":{}",
                    to.as_u64(),
                    from.as_u64(),
                    payload.as_u64()
                );
            }
            JournalEvent::DegreeViolation { node, degree, lo, hi } => {
                let _ = write!(
                    out,
                    ",\"node\":{},\"degree\":{degree},\"lo\":{lo},\"hi\":{hi}",
                    node.as_u64()
                );
            }
            JournalEvent::StaleViolation { stale_ppm, ceiling_ppm } => {
                let _ = write!(out, ",\"stale_ppm\":{stale_ppm},\"ceiling_ppm\":{ceiling_ppm}");
            }
        }
        out.push('}');
        out
    }
}

#[derive(Debug)]
struct JournalInner {
    capacity: usize,
    next_seq: u64,
    evicted: u64,
    buf: VecDeque<JournalEntry>,
}

/// A bounded ring-buffer journal. Clone-cheap: clones share the buffer,
/// so one journal can collect from several layers (behind a mutex — in
/// single-threaded simulation runs contention is zero and ordering is
/// deterministic).
#[derive(Clone, Debug)]
pub struct EventJournal {
    inner: Arc<Mutex<JournalInner>>,
}

impl EventJournal {
    /// Creates a journal keeping the most recent `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "journal capacity must be positive");
        Self {
            inner: Arc::new(Mutex::new(JournalInner {
                capacity,
                next_seq: 0,
                evicted: 0,
                buf: VecDeque::with_capacity(capacity),
            })),
        }
    }

    /// Appends an event at the given logical time, evicting the oldest
    /// entry if the ring is full.
    pub fn record(&self, time: u64, event: JournalEvent) {
        let mut inner = self.inner.lock();
        if inner.buf.len() == inner.capacity {
            inner.buf.pop_front();
            inner.evicted += 1;
        }
        let seq = inner.next_seq;
        inner.next_seq += 1;
        inner.buf.push_back(JournalEntry { seq, time, event });
    }

    /// Entries currently retained (oldest first).
    #[must_use]
    pub fn entries(&self) -> Vec<JournalEntry> {
        self.inner.lock().buf.iter().copied().collect()
    }

    /// Number of entries currently retained.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.lock().buf.len()
    }

    /// Whether nothing is retained.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.inner.lock().buf.is_empty()
    }

    /// Total events ever recorded (retained + evicted).
    #[must_use]
    pub fn total_recorded(&self) -> u64 {
        self.inner.lock().next_seq
    }

    /// Events evicted by the ring bound.
    #[must_use]
    pub fn evicted(&self) -> u64 {
        self.inner.lock().evicted
    }

    /// Discards all retained entries (sequence numbers keep counting).
    pub fn clear(&self) {
        self.inner.lock().buf.clear();
    }

    /// The retained entries as JSONL (one JSON object per line, oldest
    /// first, trailing newline).
    #[must_use]
    pub fn to_jsonl(&self) -> String {
        let inner = self.inner.lock();
        let mut out = String::with_capacity(inner.buf.len() * 96);
        for entry in &inner.buf {
            out.push_str(&entry.to_json());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(raw: u64) -> NodeId {
        NodeId::new(raw)
    }

    #[test]
    fn records_in_order_with_sequence_numbers() {
        let journal = EventJournal::new(8);
        journal.record(1, JournalEvent::SelfLoop { initiator: id(3) });
        journal.record(2, JournalEvent::NetSent { from: id(0), to: id(1), payload: id(2) });
        let entries = journal.entries();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].seq, 0);
        assert_eq!(entries[1].seq, 1);
        assert_eq!(entries[1].time, 2);
        assert_eq!(journal.total_recorded(), 2);
        assert_eq!(journal.evicted(), 0);
    }

    #[test]
    fn ring_evicts_oldest_beyond_capacity() {
        let journal = EventJournal::new(3);
        for t in 0..5 {
            journal.record(t, JournalEvent::SelfLoop { initiator: id(t) });
        }
        let entries = journal.entries();
        assert_eq!(entries.len(), 3);
        assert_eq!(entries[0].seq, 2, "oldest retained entry is the third recorded");
        assert_eq!(journal.evicted(), 2);
        assert_eq!(journal.total_recorded(), 5);
    }

    #[test]
    fn jsonl_lines_are_valid_objects_per_event_kind() {
        let journal = EventJournal::new(16);
        journal.record(0, JournalEvent::SelfLoop { initiator: id(1) });
        journal.record(
            1,
            JournalEvent::Lost { initiator: id(1), to: id(2), payload: id(3), duplicated: true },
        );
        journal.record(
            2,
            JournalEvent::Delivered {
                initiator: id(1),
                to: id(2),
                payload: id(3),
                duplicated: false,
                deleted: true,
            },
        );
        journal.record(
            3,
            JournalEvent::InFlight {
                initiator: id(1),
                to: id(2),
                payload: id(3),
                duplicated: false,
                deliver_at: 9,
            },
        );
        journal.record(4, JournalEvent::NetDropped { from: id(4), to: id(5), payload: id(6) });
        journal.record(5, JournalEvent::NetReceived { to: id(5), from: id(4), payload: id(6) });
        journal.record(6, JournalEvent::DegreeViolation { node: id(7), degree: 9, lo: 2, hi: 8 });
        journal.record(7, JournalEvent::StaleViolation { stale_ppm: 120_000, ceiling_ppm: 80_000 });
        let jsonl = journal.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 8);
        assert_eq!(lines[0], "{\"seq\":0,\"t\":0,\"kind\":\"self_loop\",\"initiator\":1}");
        assert_eq!(
            lines[1],
            "{\"seq\":1,\"t\":1,\"kind\":\"lost\",\"initiator\":1,\"to\":2,\"id\":3,\"dup\":true}"
        );
        assert!(lines[2].contains("\"kind\":\"delivered\"") && lines[2].contains("\"del\":true"));
        assert!(lines[3].contains("\"deliver_at\":9"));
        assert!(lines[4].contains("\"kind\":\"net_dropped\""));
        assert!(lines[5].ends_with("\"to\":5,\"from\":4,\"id\":6}"));
        assert_eq!(
            lines[6],
            "{\"seq\":6,\"t\":6,\"kind\":\"degree_violation\",\"node\":7,\"degree\":9,\"lo\":2,\"hi\":8}"
        );
        assert_eq!(
            lines[7],
            "{\"seq\":7,\"t\":7,\"kind\":\"stale_violation\",\"stale_ppm\":120000,\"ceiling_ppm\":80000}"
        );
        // Every line is a braced object with balanced quotes.
        for line in lines {
            assert!(line.starts_with('{') && line.ends_with('}'));
            assert_eq!(line.matches('"').count() % 2, 0);
        }
    }

    #[test]
    fn clear_keeps_counting_sequence_numbers() {
        let journal = EventJournal::new(4);
        journal.record(0, JournalEvent::SelfLoop { initiator: id(0) });
        journal.clear();
        assert!(journal.is_empty());
        journal.record(1, JournalEvent::SelfLoop { initiator: id(1) });
        assert_eq!(journal.entries()[0].seq, 1);
    }

    #[test]
    fn clones_share_the_buffer() {
        let journal = EventJournal::new(4);
        let tap = journal.clone();
        tap.record(0, JournalEvent::SelfLoop { initiator: id(7) });
        assert_eq!(journal.len(), 1);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_is_rejected() {
        let _ = EventJournal::new(0);
    }
}
