//! The metrics registry: atomic counters, gauges, and fixed-bucket
//! histograms under hierarchical dotted names.
//!
//! Handles are `Arc`-shared and record through lock-free atomics; the
//! registry lock is touched only at registration and render time. A
//! [disabled](MetricsRegistry::disabled) registry hands out handles whose
//! record path is a single branch, so instrumented code needs no `cfg`
//! gates.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

/// A monotonically increasing event counter.
#[derive(Debug, Default)]
struct Counter {
    value: AtomicU64,
}

/// A cheap, cloneable handle to a registered counter.
///
/// Handles from a disabled registry silently drop increments.
#[derive(Clone, Debug)]
pub struct CounterHandle {
    inner: Arc<Counter>,
    enabled: bool,
}

impl CounterHandle {
    fn detached() -> Self {
        Self { inner: Arc::new(Counter::default()), enabled: false }
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if self.enabled {
            self.inner.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// The current count.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.inner.value.load(Ordering::Relaxed)
    }
}

/// A gauge holding the latest observation of an `f64` quantity.
#[derive(Debug, Default)]
struct Gauge {
    /// `f64` bits, so the atomic store stays lock-free.
    bits: AtomicU64,
}

/// A cheap, cloneable handle to a registered gauge.
#[derive(Clone, Debug)]
pub struct GaugeHandle {
    inner: Arc<Gauge>,
    enabled: bool,
}

impl GaugeHandle {
    fn detached() -> Self {
        Self { inner: Arc::new(Gauge::default()), enabled: false }
    }

    /// Records the latest value.
    #[inline]
    pub fn set(&self, value: f64) {
        if self.enabled {
            self.inner.bits.store(value.to_bits(), Ordering::Relaxed);
        }
    }

    /// The latest recorded value (0.0 before the first `set`).
    #[must_use]
    pub fn get(&self) -> f64 {
        f64::from_bits(self.inner.bits.load(Ordering::Relaxed))
    }
}

/// A histogram over fixed, ascending bucket upper bounds, plus an implicit
/// overflow bucket. Records are lock-free atomic increments; quantiles are
/// answered conservatively as the upper bound of the bucket containing the
/// requested rank (the standard Prometheus-style estimate).
#[derive(Debug)]
struct BucketHistogram {
    bounds: Vec<u64>,
    counts: Vec<AtomicU64>,
    overflow: AtomicU64,
    sum: AtomicU64,
    total: AtomicU64,
}

impl BucketHistogram {
    fn new(bounds: Vec<u64>) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bucket");
        assert!(bounds.windows(2).all(|w| w[0] < w[1]), "bucket bounds must be strictly ascending");
        let counts = bounds.iter().map(|_| AtomicU64::new(0)).collect();
        Self {
            bounds,
            counts,
            overflow: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            total: AtomicU64::new(0),
        }
    }
}

/// A cheap, cloneable handle to a registered histogram.
#[derive(Clone, Debug)]
pub struct HistogramHandle {
    inner: Arc<BucketHistogram>,
    enabled: bool,
}

impl HistogramHandle {
    fn detached() -> Self {
        Self { inner: Arc::new(BucketHistogram::new(vec![1])), enabled: false }
    }

    /// Whether records are kept (handles from a disabled registry drop
    /// them). [`SpanTimer`](crate::SpanTimer) uses this to skip the clock
    /// reads entirely.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records one observation.
    #[inline]
    pub fn record(&self, value: u64) {
        if !self.enabled {
            return;
        }
        let h = &*self.inner;
        match h.bounds.partition_point(|&b| b < value) {
            i if i < h.counts.len() => h.counts[i].fetch_add(1, Ordering::Relaxed),
            _ => h.overflow.fetch_add(1, Ordering::Relaxed),
        };
        h.sum.fetch_add(value, Ordering::Relaxed);
        h.total.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.inner.total.load(Ordering::Relaxed)
    }

    /// Sum of all observations.
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.inner.sum.load(Ordering::Relaxed)
    }

    /// The nearest-rank `q`-quantile as the upper bound of the bucket
    /// holding that rank (`None` with no observations; the largest bound
    /// when the rank falls in the overflow bucket).
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ q ≤ 1`.
    #[must_use]
    pub fn quantile(&self, q: f64) -> Option<u64> {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        let h = &*self.inner;
        let total = h.total.load(Ordering::Relaxed);
        if total == 0 {
            return None;
        }
        #[allow(clippy::cast_sign_loss, clippy::cast_possible_truncation)]
        let rank = ((q * total as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (count, &bound) in h.counts.iter().zip(&h.bounds) {
            seen += count.load(Ordering::Relaxed);
            if seen >= rank {
                return Some(bound);
            }
        }
        Some(*h.bounds.last().expect("nonempty bounds"))
    }

    /// Median estimate (see [`quantile`](Self::quantile)).
    #[must_use]
    pub fn p50(&self) -> Option<u64> {
        self.quantile(0.50)
    }

    /// 95th-percentile estimate.
    #[must_use]
    pub fn p95(&self) -> Option<u64> {
        self.quantile(0.95)
    }

    /// 99th-percentile estimate.
    #[must_use]
    pub fn p99(&self) -> Option<u64> {
        self.quantile(0.99)
    }

    /// Exact arithmetic mean of the observations (`sum / count`; unlike the
    /// quantiles it carries no bucket-resolution error). `None` with no
    /// observations. The `perf_smoke` report uses this for span summaries.
    #[must_use]
    pub fn mean(&self) -> Option<f64> {
        let total = self.count();
        (total > 0).then(|| self.sum() as f64 / total as f64)
    }
}

/// One registered metric.
#[derive(Clone, Debug)]
enum Metric {
    Counter(CounterHandle),
    Gauge(GaugeHandle),
    Histogram(HistogramHandle),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Self::Counter(_) => "counter",
            Self::Gauge(_) => "gauge",
            Self::Histogram(_) => "histogram",
        }
    }
}

#[derive(Debug)]
struct Inner {
    enabled: bool,
    metrics: Mutex<BTreeMap<String, Metric>>,
}

/// A registry of metrics under hierarchical dotted names.
///
/// Clone-cheap: clones share the same metric set, so a registry can be
/// handed to every layer of a run. Names are dotted paths of
/// `[a-zA-Z0-9_]` segments (e.g. `sim.step.lost`, `node.3.deletions`);
/// registration is idempotent — asking twice for the same name and kind
/// returns handles to the same metric.
#[derive(Clone, Debug)]
pub struct MetricsRegistry {
    inner: Arc<Inner>,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl MetricsRegistry {
    /// Creates an enabled registry.
    #[must_use]
    pub fn new() -> Self {
        Self { inner: Arc::new(Inner { enabled: true, metrics: Mutex::new(BTreeMap::new()) }) }
    }

    /// Creates a disabled registry: handles are no-ops, nothing is
    /// registered, and renders are empty. Instrumented code paths can take
    /// a registry unconditionally and stay overhead-free.
    #[must_use]
    pub fn disabled() -> Self {
        Self { inner: Arc::new(Inner { enabled: false, metrics: Mutex::new(BTreeMap::new()) }) }
    }

    /// Whether this registry records anything.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.inner.enabled
    }

    fn validate(name: &str) {
        assert!(!name.is_empty(), "metric name must be nonempty");
        assert!(
            name.split('.')
                .all(|seg| !seg.is_empty()
                    && seg.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')),
            "metric name must be dotted [a-zA-Z0-9_] segments, got {name:?}"
        );
    }

    /// Registers (or retrieves) a counter.
    ///
    /// # Panics
    ///
    /// Panics on a malformed name or if the name is already registered as
    /// a different kind.
    #[must_use]
    pub fn counter(&self, name: &str) -> CounterHandle {
        Self::validate(name);
        if !self.inner.enabled {
            return CounterHandle::detached();
        }
        let mut metrics = self.inner.metrics.lock();
        match metrics.entry(name.to_string()).or_insert_with(|| {
            Metric::Counter(CounterHandle { inner: Arc::new(Counter::default()), enabled: true })
        }) {
            Metric::Counter(handle) => handle.clone(),
            other => panic!("metric {name:?} already registered as a {}", other.kind()),
        }
    }

    /// Registers (or retrieves) a gauge.
    ///
    /// # Panics
    ///
    /// Panics on a malformed name or if the name is already registered as
    /// a different kind.
    #[must_use]
    pub fn gauge(&self, name: &str) -> GaugeHandle {
        Self::validate(name);
        if !self.inner.enabled {
            return GaugeHandle::detached();
        }
        let mut metrics = self.inner.metrics.lock();
        match metrics.entry(name.to_string()).or_insert_with(|| {
            Metric::Gauge(GaugeHandle { inner: Arc::new(Gauge::default()), enabled: true })
        }) {
            Metric::Gauge(handle) => handle.clone(),
            other => panic!("metric {name:?} already registered as a {}", other.kind()),
        }
    }

    /// Registers (or retrieves) a fixed-bucket histogram with the given
    /// ascending bucket upper bounds (an overflow bucket is implicit).
    /// The bounds of an already-registered histogram are kept.
    ///
    /// # Panics
    ///
    /// Panics on a malformed name, empty or non-ascending bounds, or if
    /// the name is already registered as a different kind.
    #[must_use]
    pub fn histogram(&self, name: &str, bounds: Vec<u64>) -> HistogramHandle {
        Self::validate(name);
        if !self.inner.enabled {
            return HistogramHandle::detached();
        }
        let mut metrics = self.inner.metrics.lock();
        match metrics.entry(name.to_string()).or_insert_with(|| {
            Metric::Histogram(HistogramHandle {
                inner: Arc::new(BucketHistogram::new(bounds)),
                enabled: true,
            })
        }) {
            Metric::Histogram(handle) => handle.clone(),
            other => panic!("metric {name:?} already registered as a {}", other.kind()),
        }
    }

    /// The registered metric names, in sorted order. Golden tests pin this
    /// list (names drift loudly; values are run-dependent).
    #[must_use]
    pub fn metric_names(&self) -> Vec<String> {
        self.inner.metrics.lock().keys().cloned().collect()
    }

    /// The current value of a registered counter, if any.
    #[must_use]
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        match self.inner.metrics.lock().get(name) {
            Some(Metric::Counter(handle)) => Some(handle.get()),
            _ => None,
        }
    }

    /// Prometheus-style text exposition. Dots become underscores and every
    /// family is prefixed `sandf_`; histograms render as summaries
    /// (`{quantile="…"}` samples plus `_sum` and `_count`).
    #[must_use]
    pub fn render_prometheus(&self) -> String {
        let metrics = self.inner.metrics.lock();
        let mut out = String::new();
        for (name, metric) in metrics.iter() {
            let flat = format!("sandf_{}", name.replace('.', "_"));
            match metric {
                Metric::Counter(handle) => {
                    let _ = writeln!(out, "# TYPE {flat} counter");
                    let _ = writeln!(out, "{flat} {}", handle.get());
                }
                Metric::Gauge(handle) => {
                    let _ = writeln!(out, "# TYPE {flat} gauge");
                    let _ = writeln!(out, "{flat} {}", handle.get());
                }
                Metric::Histogram(handle) => {
                    let _ = writeln!(out, "# TYPE {flat} summary");
                    for (q, v) in [(0.5, handle.p50()), (0.95, handle.p95()), (0.99, handle.p99())]
                    {
                        let _ = writeln!(
                            out,
                            "{flat}{{quantile=\"{q}\"}} {}",
                            v.map_or_else(|| "NaN".to_string(), |v| v.to_string())
                        );
                    }
                    let _ = writeln!(out, "{flat}_sum {}", handle.sum());
                    let _ = writeln!(out, "{flat}_count {}", handle.count());
                }
            }
        }
        out
    }

    /// A TSV dump: `name<TAB>kind<TAB>value` rows, histograms expanded into
    /// `.count`, `.sum`, `.p50`, `.p95`, `.p99` rows.
    #[must_use]
    pub fn render_tsv(&self) -> String {
        let metrics = self.inner.metrics.lock();
        let mut out = String::from("metric\tkind\tvalue\n");
        for (name, metric) in metrics.iter() {
            match metric {
                Metric::Counter(handle) => {
                    let _ = writeln!(out, "{name}\tcounter\t{}", handle.get());
                }
                Metric::Gauge(handle) => {
                    let _ = writeln!(out, "{name}\tgauge\t{}", handle.get());
                }
                Metric::Histogram(handle) => {
                    let _ = writeln!(out, "{name}.count\thistogram\t{}", handle.count());
                    let _ = writeln!(out, "{name}.sum\thistogram\t{}", handle.sum());
                    for (label, v) in
                        [("p50", handle.p50()), ("p95", handle.p95()), ("p99", handle.p99())]
                    {
                        let _ = writeln!(
                            out,
                            "{name}.{label}\thistogram\t{}",
                            v.map_or_else(|| "-".to_string(), |v| v.to_string())
                        );
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_share() {
        let registry = MetricsRegistry::new();
        let a = registry.counter("sim.step.lost");
        let b = registry.counter("sim.step.lost");
        a.inc();
        b.add(4);
        assert_eq!(a.get(), 5);
        assert_eq!(registry.counter_value("sim.step.lost"), Some(5));
    }

    #[test]
    fn gauges_hold_the_latest_value() {
        let registry = MetricsRegistry::new();
        let g = registry.gauge("sim.graph.mean_out");
        assert_eq!(g.get(), 0.0);
        g.set(27.25);
        assert_eq!(registry.gauge("sim.graph.mean_out").get(), 27.25);
    }

    #[test]
    fn histogram_quantiles_are_bucket_upper_bounds() {
        let registry = MetricsRegistry::new();
        let h = registry.histogram("span.step", vec![10, 100, 1000]);
        for v in [1, 2, 3, 50, 2000] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 2056);
        assert_eq!(h.p50(), Some(10));
        assert_eq!(h.quantile(0.8), Some(100));
        // The overflow record reports the largest finite bound.
        assert_eq!(h.p99(), Some(1000));
    }

    #[test]
    fn empty_histogram_has_no_quantiles() {
        let registry = MetricsRegistry::new();
        let h = registry.histogram("span.empty", vec![1, 2]);
        assert_eq!(h.p50(), None);
    }

    #[test]
    fn disabled_registry_is_a_no_op() {
        let registry = MetricsRegistry::disabled();
        assert!(!registry.is_enabled());
        let c = registry.counter("sim.step.lost");
        c.add(10);
        assert_eq!(c.get(), 0);
        let h = registry.histogram("span.step", vec![1]);
        h.record(5);
        assert_eq!(h.count(), 0);
        let g = registry.gauge("x");
        g.set(1.0);
        assert_eq!(g.get(), 0.0);
        assert!(registry.metric_names().is_empty());
        assert!(registry.render_prometheus().is_empty());
    }

    #[test]
    fn prometheus_exposition_has_type_lines_and_flat_names() {
        let registry = MetricsRegistry::new();
        registry.counter("net.udp.sent").add(3);
        registry.gauge("sim.nodes").set(24.0);
        let h = registry.histogram("sim.profile.step_ns", vec![8, 64]);
        h.record(5);
        let text = registry.render_prometheus();
        assert!(text.contains("# TYPE sandf_net_udp_sent counter"));
        assert!(text.contains("sandf_net_udp_sent 3"));
        assert!(text.contains("sandf_sim_nodes 24"));
        assert!(text.contains("sandf_sim_profile_step_ns{quantile=\"0.5\"} 8"));
        assert!(text.contains("sandf_sim_profile_step_ns_count 1"));
    }

    #[test]
    fn tsv_dump_lists_every_metric_sorted() {
        let registry = MetricsRegistry::new();
        registry.counter("b.two").inc();
        registry.counter("a.one").inc();
        let tsv = registry.render_tsv();
        let lines: Vec<&str> = tsv.lines().collect();
        assert_eq!(lines[0], "metric\tkind\tvalue");
        assert_eq!(lines[1], "a.one\tcounter\t1");
        assert_eq!(lines[2], "b.two\tcounter\t1");
    }

    #[test]
    fn hierarchical_numeric_segments_are_legal() {
        let registry = MetricsRegistry::new();
        registry.counter("node.3.deletions").inc();
        assert_eq!(registry.counter_value("node.3.deletions"), Some(1));
    }

    #[test]
    #[should_panic(expected = "dotted")]
    fn malformed_names_are_rejected() {
        let _ = MetricsRegistry::new().counter("sim..lost");
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let registry = MetricsRegistry::new();
        let _ = registry.counter("x.y");
        let _ = registry.gauge("x.y");
    }

    #[test]
    fn handles_work_across_threads() {
        let registry = MetricsRegistry::new();
        let c = registry.counter("t.hits");
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let c = c.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.get(), 4000);
    }
}
