//! # sandf-obs — observability for the S&F stack
//!
//! The paper's evaluation (Sections 6–7) lives on per-event accounting:
//! duplication vs. deletion vs. loss rates (Lemmas 6.6/6.7), degree
//! trajectories, overlap decay. This crate is the uniform measurement
//! layer those signals flow through, across every layer of the workspace
//! (`sim`, `runtime`, `net`, `bench`):
//!
//! * a [`MetricsRegistry`] of cheap atomic [`CounterHandle`]s,
//!   [`GaugeHandle`]s, and fixed-bucket [`HistogramHandle`]s, registered
//!   under hierarchical dotted names (`sim.step.lost`, `net.udp.sent`,
//!   `node.3.deletions`), with a Prometheus-style text exposition
//!   ([`MetricsRegistry::render_prometheus`]) and a TSV dump
//!   ([`MetricsRegistry::render_tsv`]);
//! * a bounded ring-buffer [`EventJournal`] of structured
//!   [`JournalEvent`]s with JSONL export, so any run can be replayed for
//!   debugging;
//! * RAII profiling spans ([`SpanTimer`]) feeding per-span duration
//!   histograms, so perf work has baseline numbers.
//!
//! Everything record-side is overhead-conscious: handles are `Arc`-shared
//! atomics, a handle from a [disabled](MetricsRegistry::disabled) registry
//! is a no-op behind a single branch, and the instrumented layers skip
//! their hooks entirely when no recorder is attached.
//!
//! Counter and journal contents are **deterministic** for a fixed seed in
//! single-threaded simulation runs — only span histograms carry wall-clock
//! values. Golden tests therefore pin metric *names* and counter values,
//! never span durations.
//!
//! ## Example
//!
//! ```
//! use sandf_obs::MetricsRegistry;
//!
//! let registry = MetricsRegistry::new();
//! let lost = registry.counter("sim.step.lost");
//! lost.inc();
//! lost.add(2);
//! assert_eq!(lost.get(), 3);
//! assert!(registry.render_prometheus().contains("sandf_sim_step_lost 3"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod journal;
pub mod profile;
pub mod registry;

pub use journal::{EventJournal, JournalEntry, JournalEvent};
pub use profile::{duration_buckets, Profiler, SpanTimer, Stopwatch};
pub use registry::{CounterHandle, GaugeHandle, HistogramHandle, MetricsRegistry};
