//! RAII profiling spans feeding per-span duration histograms.
//!
//! A [`SpanTimer`] reads the monotonic clock on creation and records the
//! elapsed nanoseconds into a [`HistogramHandle`] on drop. When the handle
//! comes from a disabled registry the clock is never read, so instrumented
//! hot loops pay a single branch.
//!
//! Span durations are wall-clock and therefore **not** deterministic —
//! golden tests must pin span *names* only, never values.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;

use crate::registry::{HistogramHandle, MetricsRegistry};

/// Exponential bucket upper bounds for durations in nanoseconds: 256 ns
/// doubling up to ~17 s. Sub-microsecond steps resolve the engine's hot
/// paths; the top buckets absorb whole-replicate spans.
#[must_use]
pub fn duration_buckets() -> Vec<u64> {
    (0..27).map(|i| 256u64 << i).collect()
}

/// An RAII scope timer: created via [`HistogramHandle`]-based helpers,
/// records elapsed nanoseconds on drop.
#[derive(Debug)]
pub struct SpanTimer {
    hist: HistogramHandle,
    start: Option<Instant>,
}

impl SpanTimer {
    /// Starts a span recording into `hist` on drop. No clock is read when
    /// the handle is disabled.
    #[must_use]
    pub fn start(hist: &HistogramHandle) -> Self {
        let start = hist.is_enabled().then(Instant::now);
        Self { hist: hist.clone(), start }
    }
}

impl Drop for SpanTimer {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            let nanos = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            self.hist.record(nanos);
        }
    }
}

/// A plain elapsed-time reader for code that wants the duration as a value
/// (e.g. the sweep executor's per-cell wall-clock columns) rather than a
/// histogram record.
#[derive(Clone, Copy, Debug)]
pub struct Stopwatch {
    start: Instant,
}

impl Stopwatch {
    /// Starts the watch.
    #[must_use]
    pub fn start() -> Self {
        Self { start: Instant::now() }
    }

    /// Elapsed nanoseconds since start.
    #[must_use]
    pub fn elapsed_ns(&self) -> u64 {
        u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

/// A cache of named span histograms over one registry, so call sites can
/// say `profiler.span("sim.step")` without re-locking the registry per
/// span.
#[derive(Clone, Debug)]
pub struct Profiler {
    registry: MetricsRegistry,
    prefix: String,
    cache: Arc<Mutex<HashMap<String, HistogramHandle>>>,
}

impl Profiler {
    /// Creates a profiler registering spans under `<prefix>.<name>_ns`.
    #[must_use]
    pub fn new(registry: &MetricsRegistry, prefix: &str) -> Self {
        Self {
            registry: registry.clone(),
            prefix: prefix.to_string(),
            cache: Arc::new(Mutex::new(HashMap::new())),
        }
    }

    /// The histogram behind a span name (registered on first use).
    #[must_use]
    pub fn histogram(&self, name: &str) -> HistogramHandle {
        let mut cache = self.cache.lock();
        if let Some(handle) = cache.get(name) {
            return handle.clone();
        }
        let handle =
            self.registry.histogram(&format!("{}.{name}_ns", self.prefix), duration_buckets());
        cache.insert(name.to_string(), handle.clone());
        handle
    }

    /// Opens an RAII span; elapsed nanoseconds are recorded when the
    /// returned guard drops.
    #[must_use]
    pub fn span(&self, name: &str) -> SpanTimer {
        SpanTimer::start(&self.histogram(name))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_records_on_drop() {
        let registry = MetricsRegistry::new();
        let profiler = Profiler::new(&registry, "sim.profile");
        {
            let _guard = profiler.span("step");
        }
        let hist = profiler.histogram("step");
        assert_eq!(hist.count(), 1);
        assert!(registry.metric_names().contains(&"sim.profile.step_ns".to_string()));
    }

    #[test]
    fn nested_spans_record_independently() {
        let registry = MetricsRegistry::new();
        let profiler = Profiler::new(&registry, "p");
        {
            let _outer = profiler.span("outer");
            for _ in 0..3 {
                let _inner = profiler.span("inner");
            }
        }
        assert_eq!(profiler.histogram("outer").count(), 1);
        assert_eq!(profiler.histogram("inner").count(), 3);
    }

    #[test]
    fn disabled_registry_skips_the_clock() {
        let registry = MetricsRegistry::disabled();
        let profiler = Profiler::new(&registry, "p");
        {
            let guard = profiler.span("step");
            assert!(guard.start.is_none(), "no clock read on disabled registry");
        }
        assert_eq!(profiler.histogram("step").count(), 0);
    }

    #[test]
    fn stopwatch_is_monotone() {
        let watch = Stopwatch::start();
        let a = watch.elapsed_ns();
        let b = watch.elapsed_ns();
        assert!(b >= a);
    }

    #[test]
    fn duration_buckets_are_ascending() {
        let buckets = duration_buckets();
        assert!(buckets.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(buckets[0], 256);
    }
}
