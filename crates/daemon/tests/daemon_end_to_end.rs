//! End-to-end test: boot a real daemon on loopback UDP, drive it through
//! joins, leaves, and a partition + heal entirely over its HTTP endpoint,
//! and assert the paper's invariants held.

use std::time::{Duration, Instant};

use sandf_daemon::soak::{run_soak, SoakConfig};
use sandf_daemon::{http_get, http_post, DaemonConfig};

fn fast_config(nodes: usize, seed: u64) -> DaemonConfig {
    DaemonConfig {
        initial_nodes: nodes,
        tick: Duration::from_millis(5),
        base_loss: 0.02,
        seed,
        check_every: 4,
        http_port: Some(0),
        ..DaemonConfig::default()
    }
}

fn wait_rounds(addr: std::net::SocketAddr, rounds: u64) {
    let (_, body) = http_get(addr, "/membership").unwrap();
    let start = extract(&body, "round");
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        std::thread::sleep(Duration::from_millis(20));
        let (_, body) = http_get(addr, "/membership").unwrap();
        if extract(&body, "round") >= start + rounds {
            return;
        }
        assert!(Instant::now() < deadline, "no round progress within 60s");
    }
}

fn extract(body: &str, key: &str) -> u64 {
    let needle = format!("\"{key}\":");
    let at =
        body.find(&needle).unwrap_or_else(|| panic!("{key:?} missing in {body}")) + needle.len();
    let rest = &body[at..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse::<f64>().expect("numeric field") as u64
}

#[test]
fn http_surface_serves_all_routes() {
    let daemon = fast_config(32, 1).spawn().unwrap();
    let addr = daemon.http_addr().unwrap();

    let (status, body) = http_get(addr, "/healthz").unwrap();
    assert_eq!(status, 200);
    assert!(body.contains("\"status\":\"ok\""), "healthz body: {body}");

    let (status, body) = http_get(addr, "/metrics").unwrap();
    assert_eq!(status, 200);
    assert!(body.contains("sandf_daemon_net_sent"), "metrics body lacks wire counters");
    assert!(body.contains("sandf_daemon_nodes"), "metrics body lacks the nodes gauge");

    let (status, body) = http_get(addr, "/membership").unwrap();
    assert_eq!(status, 200);
    assert_eq!(extract(&body, "live"), 32);

    let (status, _) = http_get(addr, "/journal").unwrap();
    assert_eq!(status, 200);

    let (status, _) = http_get(addr, "/nope").unwrap();
    assert_eq!(status, 404);
    let (status, _) = http_post(addr, "/ctl/join?n=bogus", "").unwrap();
    assert_eq!(status, 400);
    let (status, body) = http_post(addr, "/ctl/fault", "uniform 7").unwrap();
    assert_eq!(status, 400);
    assert!(body.contains("probability"), "fault error should name the field: {body}");

    daemon.shutdown();
}

#[test]
fn join_leave_partition_heal_over_http() {
    let daemon = fast_config(32, 2).spawn().unwrap();
    let addr = daemon.http_addr().unwrap();

    // Flash-crowd join, then a partial leave, all over HTTP.
    let (status, body) = http_post(addr, "/ctl/join?n=16", "").unwrap();
    assert_eq!(status, 200, "join failed: {body}");
    assert_eq!(extract(&body, "nodes"), 48);

    let (status, body) = http_post(addr, "/ctl/leave?n=12", "").unwrap();
    assert_eq!(status, 200, "leave failed: {body}");
    assert_eq!(extract(&body, "nodes"), 36);

    // Sever the regions completely for 20 rounds, then heal.
    let (status, body) = http_post(addr, "/ctl/fault", "partition 2 20 1.0").unwrap();
    assert_eq!(status, 200, "fault failed: {body}");
    let (_, snap) = http_get(addr, "/membership").unwrap();
    assert!(snap.contains("\"fault\":\"partition\""), "snapshot: {snap}");

    wait_rounds(addr, 24);
    let (status, _) = http_post(addr, "/ctl/fault", "none").unwrap();
    assert_eq!(status, 200);

    // Let the fleet re-converge, then check the verdict.
    wait_rounds(addr, 16);
    let (_, body) = http_get(addr, "/membership").unwrap();
    assert_eq!(extract(&body, "live"), 36);
    assert_eq!(
        extract(&body, "degree_violations"),
        0,
        "Observation 5.1 must hold through churn and partition: {body}"
    );
    assert_eq!(extract(&body, "departed"), 12);
    assert!(extract(&body, "checks") >= 2);

    daemon.shutdown();
}

#[test]
fn soak_harness_passes_against_a_small_fleet() {
    let daemon = fast_config(40, 3).spawn().unwrap();
    let addr = daemon.http_addr().unwrap();
    let soak = SoakConfig {
        flash_join: 16,
        churn_iters: 2,
        churn_batch: 4,
        mass_leave_fraction: 0.2,
        partition_rounds: 16,
        settle_rounds: 10,
        poll: Duration::from_millis(20),
        ..SoakConfig::default()
    };
    let report = run_soak(addr, &soak).expect("soak must complete");
    assert!(report.rows.iter().any(|r| r.name == "post_heal"), "gated phase must run");
    assert_eq!(
        report.post_heal_violations(),
        0,
        "post-heal violations; report:\n{}",
        report.to_tsv()
    );
    let tsv = report.to_tsv();
    for phase in ["warmup", "flash_join", "churn", "mass_leave", "partition", "heal"] {
        assert!(tsv.contains(phase), "missing phase {phase} in:\n{tsv}");
    }
    daemon.shutdown();
}
