//! The soak harness: drives a live daemon through flash-crowd joins,
//! sustained churn, a mass leave, and a regional partition + heal, sampling
//! membership health throughout and gating on post-heal invariant
//! violations.
//!
//! The harness talks to the daemon exclusively over its HTTP endpoint, so
//! the same code soaks an embedded daemon (spawned in-process) or a remote
//! one (`soak_run --connect host:port`). Phase rows aggregate the sampled
//! stale fraction and mean outdegree with 95% confidence bands in the
//! `sandf_bench` [`Summary`] style, and the report renders as TSV (one row
//! per phase) or JSON.

use std::net::SocketAddr;
use std::time::{Duration, Instant};

use sandf_bench::sweep::Summary;

use crate::http::{http_get, http_post};

/// Soak-scenario parameters, all denominated in protocol rounds so the
/// scenario scales with the daemon's tick length.
#[derive(Clone, Debug)]
pub struct SoakConfig {
    /// Nodes joined in one burst during the flash-crowd phase.
    pub flash_join: usize,
    /// Join+leave batches applied during the churn phase.
    pub churn_iters: usize,
    /// Nodes per churn batch (joined, then an equal count leaves).
    pub churn_batch: usize,
    /// Fraction of the live fleet removed in the mass-leave phase.
    pub mass_leave_fraction: f64,
    /// Regional-partition window length, in rounds.
    pub partition_rounds: u64,
    /// Cross-region severance probability during the partition.
    pub partition_sever: f64,
    /// Rounds each measurement phase observes before moving on.
    pub settle_rounds: u64,
    /// Sampling interval while a phase runs.
    pub poll: Duration,
    /// Abort if a phase sees no round progress for this long.
    pub stall_timeout: Duration,
}

impl Default for SoakConfig {
    fn default() -> Self {
        Self {
            flash_join: 32,
            churn_iters: 4,
            churn_batch: 8,
            mass_leave_fraction: 0.25,
            partition_rounds: 30,
            partition_sever: 1.0,
            settle_rounds: 20,
            poll: Duration::from_millis(50),
            stall_timeout: Duration::from_secs(60),
        }
    }
}

/// One membership sample, extracted from a `/membership` JSON body.
#[derive(Clone, Copy, Debug)]
struct Sample {
    round: u64,
    live: u64,
    stale_fraction: f64,
    mean_out: f64,
    degree_violations: u64,
    stale_violations: u64,
    window_loss: f64,
}

/// Aggregates for one soak phase.
#[derive(Clone, Debug)]
pub struct PhaseRow {
    /// Phase name (`warmup`, `flash_join`, …).
    pub name: &'static str,
    /// Round at phase start.
    pub round_start: u64,
    /// Round at phase end.
    pub round_end: u64,
    /// Live nodes at phase end.
    pub live_end: u64,
    /// Sampled stale-edge fraction over the phase.
    pub stale: Summary,
    /// Sampled mean outdegree over the phase.
    pub mean_out: Summary,
    /// Sampled realized window loss over the phase.
    pub window_loss: Summary,
    /// New Observation 5.1 offenders during the phase.
    pub degree_violations: u64,
    /// New Lemma 6.10 ceiling breaches during the phase.
    pub stale_violations: u64,
}

/// The full soak outcome.
#[derive(Clone, Debug)]
pub struct SoakReport {
    /// Per-phase aggregates, in execution order.
    pub rows: Vec<PhaseRow>,
}

impl SoakReport {
    /// Invariant violations observed in the `post_heal` phase — the soak
    /// gate: the paper's invariants must hold again once faults clear.
    #[must_use]
    pub fn post_heal_violations(&self) -> u64 {
        self.rows
            .iter()
            .filter(|r| r.name == "post_heal")
            .map(|r| r.degree_violations + r.stale_violations)
            .sum()
    }

    /// Renders one TSV row per phase (tab-separated, header first).
    #[must_use]
    pub fn to_tsv(&self) -> String {
        let mut out = String::from(
            "phase\trounds\tlive\tstale_mean\tstale_ci95\tmean_out\tmean_out_ci95\t\
             loss_mean\tdegree_viol\tstale_viol\n",
        );
        for row in &self.rows {
            out.push_str(&format!(
                "{}\t{}..{}\t{}\t{:.6}\t{:.6}\t{:.3}\t{:.3}\t{:.4}\t{}\t{}\n",
                row.name,
                row.round_start,
                row.round_end,
                row.live_end,
                row.stale.mean,
                row.stale.ci95,
                row.mean_out.mean,
                row.mean_out.ci95,
                row.window_loss.mean,
                row.degree_violations,
                row.stale_violations,
            ));
        }
        out
    }

    /// Renders the report as one JSON object.
    #[must_use]
    pub fn to_json(&self) -> String {
        let rows: Vec<String> = self
            .rows
            .iter()
            .map(|row| {
                format!(
                    concat!(
                        "{{\"phase\":\"{}\",\"round_start\":{},\"round_end\":{},",
                        "\"live\":{},\"stale_mean\":{:.6},\"stale_ci95\":{:.6},",
                        "\"mean_out\":{:.3},\"mean_out_ci95\":{:.3},",
                        "\"loss_mean\":{:.4},\"degree_violations\":{},",
                        "\"stale_violations\":{}}}"
                    ),
                    row.name,
                    row.round_start,
                    row.round_end,
                    row.live_end,
                    row.stale.mean,
                    row.stale.ci95,
                    row.mean_out.mean,
                    row.mean_out.ci95,
                    row.window_loss.mean,
                    row.degree_violations,
                    row.stale_violations,
                )
            })
            .collect();
        format!(
            "{{\"phases\":[{}],\"post_heal_violations\":{}}}",
            rows.join(","),
            self.post_heal_violations()
        )
    }
}

/// Extracts a numeric field from a flat JSON object body. Good enough for
/// the daemon's own hand-rolled JSON; not a general parser.
pub(crate) fn json_number(body: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = body.find(&needle)? + needle.len();
    let rest = &body[at..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

fn fetch_sample(addr: SocketAddr) -> Result<Sample, String> {
    let (status, body) = http_get(addr, "/membership").map_err(|e| e.to_string())?;
    if status != 200 {
        return Err(format!("/membership returned {status}"));
    }
    let field = |key: &str| {
        json_number(&body, key).ok_or_else(|| format!("/membership body lacks {key:?}: {body}"))
    };
    Ok(Sample {
        round: field("round")? as u64,
        live: field("live")? as u64,
        stale_fraction: field("stale_fraction")?,
        mean_out: field("mean_out")?,
        degree_violations: field("degree_violations")? as u64,
        stale_violations: field("stale_violations")? as u64,
        window_loss: field("window_loss")?,
    })
}

fn post_ok(addr: SocketAddr, path: &str, body: &str) -> Result<String, String> {
    let (status, reply) = http_post(addr, path, body).map_err(|e| e.to_string())?;
    if status != 200 {
        return Err(format!("POST {path} returned {status}: {reply}"));
    }
    Ok(reply)
}

/// Observes the daemon for `rounds` rounds, sampling every `poll`.
fn sample_phase(
    addr: SocketAddr,
    name: &'static str,
    rounds: u64,
    config: &SoakConfig,
) -> Result<PhaseRow, String> {
    let first = fetch_sample(addr)?;
    let target = first.round + rounds;
    let mut samples = vec![first];
    let mut last_progress = (Instant::now(), first.round);
    loop {
        let latest = *samples.last().expect("seeded with one sample");
        if latest.round >= target {
            break;
        }
        if latest.round > last_progress.1 {
            last_progress = (Instant::now(), latest.round);
        } else if last_progress.0.elapsed() > config.stall_timeout {
            return Err(format!(
                "phase {name}: no round progress past {} for {:?}",
                latest.round, config.stall_timeout
            ));
        }
        std::thread::sleep(config.poll);
        samples.push(fetch_sample(addr)?);
    }
    let last = *samples.last().expect("non-empty");
    let collect =
        |f: fn(&Sample) -> f64| Summary::from_samples(&samples.iter().map(f).collect::<Vec<f64>>());
    Ok(PhaseRow {
        name,
        round_start: first.round,
        round_end: last.round,
        live_end: last.live,
        stale: collect(|s| s.stale_fraction),
        mean_out: collect(|s| s.mean_out),
        window_loss: collect(|s| s.window_loss),
        degree_violations: last.degree_violations.saturating_sub(first.degree_violations),
        stale_violations: last.stale_violations.saturating_sub(first.stale_violations),
    })
}

/// Runs the full soak scenario against the daemon at `addr`:
/// warmup → flash-crowd join → sustained churn → mass leave → regional
/// partition → heal → post-heal measurement (the gate).
///
/// # Errors
///
/// Returns a message on HTTP failures, rejected control commands, or a
/// stalled daemon.
pub fn run_soak(addr: SocketAddr, config: &SoakConfig) -> Result<SoakReport, String> {
    let (status, _) = http_get(addr, "/healthz").map_err(|e| e.to_string())?;
    if status != 200 {
        return Err(format!("/healthz returned {status}"));
    }
    let mut rows = Vec::new();

    rows.push(sample_phase(addr, "warmup", config.settle_rounds, config)?);

    if config.flash_join > 0 {
        post_ok(addr, &format!("/ctl/join?n={}", config.flash_join), "")?;
        rows.push(sample_phase(addr, "flash_join", config.settle_rounds, config)?);
    }

    if config.churn_iters > 0 && config.churn_batch > 0 {
        for _ in 0..config.churn_iters {
            post_ok(addr, &format!("/ctl/join?n={}", config.churn_batch), "")?;
            post_ok(addr, &format!("/ctl/leave?n={}", config.churn_batch), "")?;
        }
        rows.push(sample_phase(addr, "churn", config.settle_rounds, config)?);
    }

    let live = fetch_sample(addr)?.live;
    let mass = ((live as f64 * config.mass_leave_fraction) as u64).min(live.saturating_sub(4));
    if mass > 0 {
        post_ok(addr, &format!("/ctl/leave?n={mass}"), "")?;
        rows.push(sample_phase(addr, "mass_leave", config.settle_rounds, config)?);
    }

    post_ok(
        addr,
        "/ctl/fault",
        &format!("partition 2 {} {}", config.partition_rounds, config.partition_sever),
    )?;
    rows.push(sample_phase(addr, "partition", config.partition_rounds, config)?);

    // Clear the fault explicitly (the window also expires on its own) and
    // let the fleet re-converge before measuring the gated phase.
    post_ok(addr, "/ctl/fault", "none")?;
    rows.push(sample_phase(addr, "heal", config.settle_rounds, config)?);
    rows.push(sample_phase(addr, "post_heal", config.settle_rounds, config)?);

    Ok(SoakReport { rows })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_number_extracts_flat_fields() {
        let body = "{\"round\":42,\"stale_fraction\":0.125,\"fault\":\"none\",\"live\":9}";
        assert_eq!(json_number(body, "round"), Some(42.0));
        assert_eq!(json_number(body, "stale_fraction"), Some(0.125));
        assert_eq!(json_number(body, "live"), Some(9.0));
        assert_eq!(json_number(body, "missing"), None);
        assert_eq!(json_number(body, "fault"), None, "strings are not numbers");
    }

    #[test]
    fn report_renders_tsv_and_json() {
        let summary = Summary::from_samples(&[0.1, 0.2]);
        let row = PhaseRow {
            name: "post_heal",
            round_start: 10,
            round_end: 30,
            live_end: 64,
            stale: summary,
            mean_out: summary,
            window_loss: summary,
            degree_violations: 0,
            stale_violations: 0,
        };
        let report = SoakReport { rows: vec![row] };
        assert_eq!(report.post_heal_violations(), 0);
        let tsv = report.to_tsv();
        assert!(tsv.starts_with("phase\t"));
        assert!(tsv.contains("post_heal\t10..30\t64\t"));
        let json = report.to_json();
        assert!(json.contains("\"post_heal_violations\":0"));
        assert_eq!(json_number(&json, "post_heal_violations"), Some(0.0));
    }

    #[test]
    fn violations_in_other_phases_do_not_gate() {
        let summary = Summary::from_samples(&[0.0]);
        let mk = |name: &'static str, sv: u64| PhaseRow {
            name,
            round_start: 0,
            round_end: 1,
            live_end: 1,
            stale: summary,
            mean_out: summary,
            window_loss: summary,
            degree_violations: 0,
            stale_violations: sv,
        };
        let report = SoakReport { rows: vec![mk("partition", 3), mk("post_heal", 0)] };
        assert_eq!(report.post_heal_violations(), 0);
        let report = SoakReport { rows: vec![mk("post_heal", 2)] };
        assert_eq!(report.post_heal_violations(), 2);
    }
}
