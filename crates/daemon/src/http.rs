//! A hand-rolled HTTP/1.1 endpoint over [`TcpListener`] — no async
//! runtime, no external deps, serial request handling.
//!
//! Routes:
//!
//! | Method | Path          | Body                                         |
//! |--------|---------------|----------------------------------------------|
//! | GET    | `/metrics`    | Prometheus exposition of the daemon registry |
//! | GET    | `/healthz`    | `{"status":"ok","round":…,"nodes":…}`        |
//! | GET    | `/membership` | JSON [`MembershipSnapshot`]                  |
//! | GET    | `/journal`    | JSONL event journal (violations included)    |
//! | POST   | `/ctl/join?n=K`  | joins `K` nodes via the Section 5 rule    |
//! | POST   | `/ctl/leave?n=K` | removes `K` random nodes                  |
//! | POST   | `/ctl/fault`  | body = one fault line (see [`parse_fault_command`]) |
//!
//! Control routes forward to the event loop over the daemon's command
//! channel and block (with a timeout) for the reply, so a `200` means the
//! command was *applied*, not merely enqueued. Serial handling is fine for
//! the intended clients — a scrape loop and the soak harness.
//!
//! [`MembershipSnapshot`]: crate::service::MembershipSnapshot
//! [`parse_fault_command`]: crate::fault::parse_fault_command

use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Sender};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;
use sandf_obs::{EventJournal, MetricsRegistry};

use crate::service::{Control, MembershipSnapshot};

/// Everything the HTTP thread needs, shared with the event loop.
#[derive(Clone)]
pub(crate) struct HttpContext {
    pub registry: MetricsRegistry,
    pub journal: EventJournal,
    pub snapshot: Arc<Mutex<MembershipSnapshot>>,
    pub ctl: Sender<Control>,
    pub shutdown: Arc<AtomicBool>,
}

const REPLY_TIMEOUT: Duration = Duration::from_secs(10);

/// Binds `127.0.0.1:port` and serves requests until shutdown. Returns the
/// bound address and the server thread handle.
pub(crate) fn serve(
    port: u16,
    ctx: HttpContext,
) -> std::io::Result<(SocketAddr, std::thread::JoinHandle<()>)> {
    let listener = TcpListener::bind(("127.0.0.1", port))?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let handle = std::thread::Builder::new()
        .name("sandf-daemon-http".into())
        .spawn(move || accept_loop(&listener, &ctx))
        .expect("spawning the http thread");
    Ok((addr, handle))
}

fn accept_loop(listener: &TcpListener, ctx: &HttpContext) {
    while !ctx.shutdown.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _)) => {
                // Errors on one connection must not take the server down.
                let _ = handle_connection(stream, ctx);
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}

fn handle_connection(mut stream: TcpStream, ctx: &HttpContext) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_millis(2000)))?;
    stream.set_write_timeout(Some(Duration::from_millis(2000)))?;
    let request = read_request(&mut stream)?;
    let (status, content_type, body) = route(&request, ctx);
    write_response(&mut stream, status, content_type, &body)
}

struct Request {
    method: String,
    path: String,
    query: String,
    body: String,
}

fn read_request(stream: &mut TcpStream) -> std::io::Result<Request> {
    // Read the head (request line + headers) byte-wise-ish until CRLFCRLF,
    // then exactly Content-Length body bytes.
    let mut head = Vec::with_capacity(512);
    let mut buf = [0u8; 512];
    let body_start;
    loop {
        let n = stream.read(&mut buf)?;
        if n == 0 {
            return Err(std::io::Error::new(ErrorKind::UnexpectedEof, "closed mid-request"));
        }
        head.extend_from_slice(&buf[..n]);
        if let Some(pos) = find_header_end(&head) {
            body_start = pos;
            break;
        }
        if head.len() > 64 * 1024 {
            return Err(std::io::Error::new(ErrorKind::InvalidData, "oversized request head"));
        }
    }
    let head_text = String::from_utf8_lossy(&head[..body_start]).into_owned();
    let mut lines = head_text.split("\r\n");
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or_default().to_string();
    let target = parts.next().unwrap_or_default();
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q.to_string()),
        None => (target.to_string(), String::new()),
    };
    let content_length = lines
        .filter_map(|l| l.split_once(':'))
        .find(|(k, _)| k.eq_ignore_ascii_case("content-length"))
        .and_then(|(_, v)| v.trim().parse::<usize>().ok())
        .unwrap_or(0)
        .min(64 * 1024);

    let mut body_bytes = head[body_start + 4..].to_vec();
    while body_bytes.len() < content_length {
        let n = stream.read(&mut buf)?;
        if n == 0 {
            break;
        }
        body_bytes.extend_from_slice(&buf[..n]);
    }
    body_bytes.truncate(content_length);
    Ok(Request { method, path, query, body: String::from_utf8_lossy(&body_bytes).into_owned() })
}

fn find_header_end(bytes: &[u8]) -> Option<usize> {
    bytes.windows(4).position(|w| w == b"\r\n\r\n")
}

fn query_count(query: &str) -> Result<usize, String> {
    for pair in query.split('&') {
        if let Some((k, v)) = pair.split_once('=') {
            if k == "n" {
                return v.parse::<usize>().map_err(|_| format!("bad count {v:?}"));
            }
        }
    }
    Err("missing ?n=<count>".into())
}

type Response = (u16, &'static str, String);

fn json_error(status: u16, message: &str) -> Response {
    (status, "application/json", format!("{{\"error\":\"{}\"}}", escape_json(message)))
}

/// Escapes a string for embedding in a JSON value.
pub(crate) fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn control_roundtrip<T: Send + 'static>(
    ctl: &Sender<Control>,
    build: impl FnOnce(Sender<Result<T, String>>) -> Control,
) -> Result<T, Response> {
    let (tx, rx) = channel();
    ctl.send(build(tx)).map_err(|_| json_error(503, "daemon loop is gone"))?;
    match rx.recv_timeout(REPLY_TIMEOUT) {
        Ok(Ok(value)) => Ok(value),
        Ok(Err(message)) => Err(json_error(400, &message)),
        Err(_) => Err(json_error(504, "daemon loop did not reply in time")),
    }
}

fn route(request: &Request, ctx: &HttpContext) -> Response {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/metrics") => (200, "text/plain; version=0.0.4", ctx.registry.render_prometheus()),
        ("GET", "/healthz") => {
            let snap = ctx.snapshot.lock().clone();
            (
                200,
                "application/json",
                format!("{{\"status\":\"ok\",\"round\":{},\"nodes\":{}}}", snap.round, snap.live),
            )
        }
        ("GET", "/membership") => (200, "application/json", ctx.snapshot.lock().to_json()),
        ("GET", "/journal") => (200, "application/x-ndjson", ctx.journal.to_jsonl()),
        ("POST", "/ctl/join") => match query_count(&request.query) {
            Ok(count) => {
                match control_roundtrip(&ctx.ctl, |reply| Control::Join { count, reply }) {
                    Ok(live) => (
                        200,
                        "application/json",
                        format!("{{\"joined\":{count},\"nodes\":{live}}}"),
                    ),
                    Err(resp) => resp,
                }
            }
            Err(message) => json_error(400, &message),
        },
        ("POST", "/ctl/leave") => match query_count(&request.query) {
            Ok(count) => {
                match control_roundtrip(&ctx.ctl, |reply| Control::Leave { count, reply }) {
                    Ok(live) => {
                        (200, "application/json", format!("{{\"left\":{count},\"nodes\":{live}}}"))
                    }
                    Err(resp) => resp,
                }
            }
            Err(message) => json_error(400, &message),
        },
        ("POST", "/ctl/fault") => {
            let line = request.body.trim().to_string();
            match control_roundtrip(&ctx.ctl, |reply| Control::Fault { line, reply }) {
                Ok(kind) => (200, "application/json", format!("{{\"fault\":\"{kind}\"}}")),
                Err(resp) => resp,
            }
        }
        ("GET", _) | ("POST", _) => json_error(404, "no such route"),
        _ => json_error(405, "method not allowed"),
    }
}

fn write_response(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "",
    };
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// A minimal blocking HTTP/1.1 client request, for the soak harness and
/// smoke tests. Returns `(status, body)`.
///
/// # Errors
///
/// Returns an [`std::io::Error`] on connect/read/write failures or an
/// unparsable response head.
pub fn http_request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: &str,
) -> std::io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(15)))?;
    stream.set_write_timeout(Some(Duration::from_secs(15)))?;
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    let text = String::from_utf8_lossy(&raw);
    let mut parts = text.splitn(2, "\r\n\r\n");
    let head = parts.next().unwrap_or_default();
    let payload = parts.next().unwrap_or_default().to_string();
    let status = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| std::io::Error::new(ErrorKind::InvalidData, "bad response head"))?;
    Ok((status, payload))
}

/// `GET path` against a daemon endpoint.
///
/// # Errors
///
/// See [`http_request`].
pub fn http_get(addr: SocketAddr, path: &str) -> std::io::Result<(u16, String)> {
    http_request(addr, "GET", path, "")
}

/// `POST path` with `body` against a daemon endpoint.
///
/// # Errors
///
/// See [`http_request`].
pub fn http_post(addr: SocketAddr, path: &str, body: &str) -> std::io::Result<(u16, String)> {
    http_request(addr, "POST", path, body)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_end_detection() {
        assert_eq!(find_header_end(b"GET / HTTP/1.1\r\n\r\nbody"), Some(14));
        assert_eq!(find_header_end(b"partial\r\n"), None);
    }

    #[test]
    fn query_count_parses() {
        assert_eq!(query_count("n=128"), Ok(128));
        assert_eq!(query_count("a=1&n=5"), Ok(5));
        assert!(query_count("").is_err());
        assert!(query_count("n=x").is_err());
    }

    #[test]
    fn json_escaping() {
        assert_eq!(escape_json("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape_json("plain"), "plain");
    }
}
