//! `sandf-daemon`: a long-running S&F membership service over real UDP.
//!
//! One process multiplexes thousands of S&F nodes, each with its own
//! loopback UDP socket, on a single-threaded event loop (a timer wheel for
//! action ticks plus batched non-blocking socket drains — no async
//! runtime). Around that loop the crate layers:
//!
//! - a **wire-level fault injector** ([`fault`]) reusing the simulation
//!   fault zoo (uniform, Gilbert–Elliott bursts, regional partitions,
//!   per-link, capacity, victim sets) at the socket boundary, runtime
//!   reconfigurable via `POST /ctl/fault`;
//! - a **live invariant checker** ([`invariants`]) asserting Observation
//!   5.1 outdegree bounds exactly and the Lemma 6.10 stale-fraction
//!   ceiling in banded form, against realized (measured) loss so fault
//!   windows slow the expected decay instead of firing false alarms;
//! - an **HTTP observability endpoint** ([`http`]) serving Prometheus
//!   metrics, health, a JSON membership snapshot, the violation journal,
//!   and the control routes;
//! - a **soak harness** ([`soak`]) driving flash-crowd joins, churn, mass
//!   leaves, and partition + heal over HTTP, reporting per-phase confidence
//!   bands and gating on post-heal violations.
//!
//! ```no_run
//! use sandf_daemon::DaemonConfig;
//!
//! let daemon = DaemonConfig { initial_nodes: 128, ..DaemonConfig::default() }
//!     .spawn()
//!     .expect("boot");
//! println!("metrics at http://{}/metrics", daemon.http_addr().unwrap());
//! daemon.join_nodes(64).unwrap();
//! daemon.fault("partition 2 50 1.0").unwrap();
//! # daemon.shutdown();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fault;
pub mod http;
pub mod invariants;
pub mod service;
pub mod soak;
pub mod wheel;

pub use fault::{parse_fault_command, FaultCommand, FaultInjector, FaultedTransport};
pub use http::{http_get, http_post, http_request};
pub use invariants::{CheckOutcome, InvariantChecker, WireTotals};
pub use service::{Control, DaemonConfig, DaemonHandle, MembershipSnapshot};
pub use soak::{run_soak, PhaseRow, SoakConfig, SoakReport};
pub use wheel::{TimerWheel, WheelItem};
