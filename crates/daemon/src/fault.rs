//! The daemon's wire-level fault injector: the PR6 fault zoo applied at
//! the socket boundary, reconfigurable at runtime.
//!
//! The injector sits between each node's [`LossyTransport`] base-loss layer
//! and its UDP socket: every outgoing datagram is offered to the currently
//! installed [`PhaseFault`] (uniform, Gilbert–Elliott, regional partition,
//! per-link, capacity, victim set), and the model is shared by all nodes in
//! the process so one `POST /ctl/fault` retargets the whole fleet. Capacity
//! models additionally gate node *ticks* via
//! [`FaultInjector::node_acts`] — the daemon skips the initiate step of a
//! slow node's round, exactly like the simulation engines do.
//!
//! [`LossyTransport`]: sandf_net::LossyTransport

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sandf_core::{Message, NodeId};
use sandf_net::{AddressBook, Transport, TransportError};
use sandf_obs::{CounterHandle, MetricsRegistry};
use sandf_sim::{
    FaultCtx, FaultModel, GilbertElliott, NodeCapacity, PerLinkLoss, PhaseFault, RegionalPartition,
    UniformLoss, VictimLoss,
};

/// A parsed `/ctl/fault` command.
#[derive(Clone, PartialEq, Debug)]
pub enum FaultCommand {
    /// Remove the injected fault (base [`LossyTransport`] loss remains).
    ///
    /// [`LossyTransport`]: sandf_net::LossyTransport
    Clear,
    /// Install a concrete fault model.
    Set {
        /// The model to install.
        fault: PhaseFault,
        /// A short lowercase tag for snapshots/metrics (`"uniform"`, …).
        kind: String,
    },
    /// Install a [`VictimLoss`] aimed at the current top-indegree nodes;
    /// the daemon resolves the victim set from its latest graph snapshot.
    VictimsTop {
        /// How many of the highest-indegree nodes to target.
        count: usize,
        /// Inbound loss rate on the victims.
        rate: f64,
        /// Loss rate for everyone else.
        base: f64,
    },
}

fn parse_rate(word: &str, what: &str) -> Result<f64, String> {
    let value: f64 =
        word.parse().map_err(|_| format!("{what}: expected a number, got {word:?}"))?;
    if !(0.0..=1.0).contains(&value) || !value.is_finite() {
        return Err(format!("{what}: {value} is not a probability in [0, 1]"));
    }
    Ok(value)
}

fn parse_int<T: std::str::FromStr>(word: &str, what: &str) -> Result<T, String> {
    word.parse().map_err(|_| format!("{what}: expected an integer, got {word:?}"))
}

/// Parses one fault-command line. `now_round` anchors window-based models
/// (a partition starts at the next round). Grammar, one command per line:
///
/// ```text
/// none
/// uniform <rate>
/// bursty <to_bad> <to_good> <loss_good> <loss_bad>
/// partition <regions> <duration_rounds> <sever> [base]
/// perlink <salt> <bad_fraction> <good_rate> <bad_rate>
/// capacity <salt> <slow_fraction> <period> [base]
/// victims top <count> <rate> [base]
/// victims <id,id,...> <rate> [base]
/// ```
///
/// # Errors
///
/// Returns a message naming the offending field (served as HTTP 400).
pub fn parse_fault_command(line: &str, now_round: u64) -> Result<FaultCommand, String> {
    let words: Vec<&str> = line.split_whitespace().collect();
    let usage = "usage: none | uniform <rate> | bursty <to_bad> <to_good> <loss_good> <loss_bad> \
                 | partition <regions> <duration_rounds> <sever> [base] \
                 | perlink <salt> <bad_fraction> <good_rate> <bad_rate> \
                 | capacity <salt> <slow_fraction> <period> [base] \
                 | victims top <count> <rate> [base] | victims <id,id,...> <rate> [base]";
    let arity = |want: std::ops::RangeInclusive<usize>, name: &str| {
        if want.contains(&(words.len() - 1)) {
            Ok(())
        } else {
            Err(format!("{name} takes {want:?} arguments; {usage}"))
        }
    };
    match words.first().copied() {
        None => Err(format!("empty fault command; {usage}")),
        Some("none") => {
            arity(0..=0, "none")?;
            Ok(FaultCommand::Clear)
        }
        Some("uniform") => {
            arity(1..=1, "uniform")?;
            let rate = parse_rate(words[1], "uniform rate")?;
            Ok(FaultCommand::Set {
                fault: PhaseFault::Uniform(UniformLoss::new(rate).map_err(|e| e.to_string())?),
                kind: "uniform".into(),
            })
        }
        Some("bursty") => {
            arity(4..=4, "bursty")?;
            let to_bad = parse_rate(words[1], "bursty to_bad")?;
            let to_good = parse_rate(words[2], "bursty to_good")?;
            let loss_good = parse_rate(words[3], "bursty loss_good")?;
            let loss_bad = parse_rate(words[4], "bursty loss_bad")?;
            let model = GilbertElliott::new(to_bad, to_good, loss_good, loss_bad)
                .map_err(|e| e.to_string())?;
            Ok(FaultCommand::Set { fault: PhaseFault::Bursty(model), kind: "bursty".into() })
        }
        Some("partition") => {
            arity(3..=4, "partition")?;
            let regions: u64 = parse_int(words[1], "partition regions")?;
            if regions < 2 {
                return Err("partition regions: need at least 2".into());
            }
            let duration: u64 = parse_int(words[2], "partition duration_rounds")?;
            if duration == 0 {
                return Err("partition duration_rounds: must be positive".into());
            }
            let sever = parse_rate(words[3], "partition sever")?;
            let base = if words.len() > 4 { parse_rate(words[4], "partition base")? } else { 0.0 };
            let model = RegionalPartition::new(regions, now_round + 1, duration, sever, base)
                .map_err(|e| e.to_string())?;
            Ok(FaultCommand::Set { fault: PhaseFault::Partition(model), kind: "partition".into() })
        }
        Some("perlink") => {
            arity(4..=4, "perlink")?;
            let salt: u64 = parse_int(words[1], "perlink salt")?;
            let bad_fraction = parse_rate(words[2], "perlink bad_fraction")?;
            let good = parse_rate(words[3], "perlink good_rate")?;
            let bad = parse_rate(words[4], "perlink bad_rate")?;
            let model =
                PerLinkLoss::new(salt, bad_fraction, good, bad).map_err(|e| e.to_string())?;
            Ok(FaultCommand::Set { fault: PhaseFault::PerLink(model), kind: "perlink".into() })
        }
        Some("capacity") => {
            arity(3..=4, "capacity")?;
            let salt: u64 = parse_int(words[1], "capacity salt")?;
            let slow_fraction = parse_rate(words[2], "capacity slow_fraction")?;
            let period: u64 = parse_int(words[3], "capacity period")?;
            if period < 2 {
                return Err("capacity period: must be at least 2".into());
            }
            let base = if words.len() > 4 { parse_rate(words[4], "capacity base")? } else { 0.0 };
            let model =
                NodeCapacity::new(salt, slow_fraction, period, base).map_err(|e| e.to_string())?;
            Ok(FaultCommand::Set { fault: PhaseFault::Capacity(model), kind: "capacity".into() })
        }
        Some("victims") => {
            if words.get(1).copied() == Some("top") {
                arity(3..=4, "victims top")?;
                let count: usize = parse_int(words[2], "victims top count")?;
                if count == 0 {
                    return Err("victims top count: must be positive".into());
                }
                let rate = parse_rate(words[3], "victims rate")?;
                let base =
                    if words.len() > 4 { parse_rate(words[4], "victims base")? } else { 0.0 };
                Ok(FaultCommand::VictimsTop { count, rate, base })
            } else {
                arity(2..=3, "victims")?;
                let mut ids = Vec::new();
                for part in words[1].split(',') {
                    ids.push(NodeId::new(parse_int(part, "victims id list")?));
                }
                let rate = parse_rate(words[2], "victims rate")?;
                let base =
                    if words.len() > 3 { parse_rate(words[3], "victims base")? } else { 0.0 };
                let mut model = VictimLoss::new(rate, base).map_err(|e| e.to_string())?;
                model.set_victims(&ids);
                Ok(FaultCommand::Set { fault: PhaseFault::Victims(model), kind: "victims".into() })
            }
        }
        Some(other) => Err(format!("unknown fault model {other:?}; {usage}")),
    }
}

#[derive(Debug)]
struct InjectorState {
    fault: Option<PhaseFault>,
    kind: String,
}

/// The shared, runtime-reconfigurable fault state: one per daemon,
/// referenced by every node's [`FaultedTransport`].
///
/// Shared-model semantics: stateful models (Gilbert–Elliott's channel
/// state) evolve across *all* senders' messages rather than per channel —
/// the burst correlation becomes process-global, which is the interesting
/// adversarial regime for a single-process fleet anyway.
#[derive(Clone, Debug)]
pub struct FaultInjector {
    state: Arc<Mutex<InjectorState>>,
    round: Arc<AtomicU64>,
    dropped: CounterHandle,
    dead_letters: CounterHandle,
}

impl FaultInjector {
    /// Creates an injector with no fault installed, registering
    /// `daemon.fault.dropped` and `daemon.net.dead_letters` counters.
    #[must_use]
    pub fn new(registry: &MetricsRegistry) -> Self {
        Self {
            state: Arc::new(Mutex::new(InjectorState { fault: None, kind: "none".into() })),
            round: Arc::new(AtomicU64::new(0)),
            dropped: registry.counter("daemon.fault.dropped"),
            dead_letters: registry.counter("daemon.net.dead_letters"),
        }
    }

    /// Installs (or clears) the fault model.
    pub fn install(&self, fault: Option<PhaseFault>, kind: &str) {
        let mut state = self.state.lock();
        state.fault = fault;
        state.kind = kind.to_string();
    }

    /// The installed model's tag (`"none"` when clear).
    #[must_use]
    pub fn kind(&self) -> String {
        self.state.lock().kind.clone()
    }

    /// Publishes the daemon's current round, used as the [`FaultCtx`]
    /// round for window-based models.
    pub fn set_round(&self, round: u64) {
        self.round.store(round, Ordering::Relaxed);
    }

    /// The round last published via [`set_round`](Self::set_round).
    #[must_use]
    pub fn round(&self) -> u64 {
        self.round.load(Ordering::Relaxed)
    }

    /// Whether `node` initiates this round (capacity models gate ticks).
    #[must_use]
    pub fn node_acts(&self, node: NodeId, round: u64) -> bool {
        match &self.state.lock().fault {
            Some(fault) => fault.node_acts(node, round),
            None => true,
        }
    }

    /// Messages dropped by the injected model so far.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped.get()
    }

    /// Messages addressed to departed (unresolvable) peers so far.
    #[must_use]
    pub fn dead_letters(&self) -> u64 {
        self.dead_letters.get()
    }

    fn drops(&self, from: NodeId, to: NodeId, rng: &mut StdRng) -> bool {
        let mut state = self.state.lock();
        let Some(fault) = state.fault.as_mut() else {
            return false;
        };
        let ctx = FaultCtx { from, to, round: self.round.load(Ordering::Relaxed) };
        fault.drops(ctx, rng)
    }
}

/// A transport decorator applying the daemon's shared [`FaultInjector`] to
/// every outgoing datagram, and counting dead letters (sends to peers no
/// longer in the [`AddressBook`]) so the live invariant checker can fold
/// them into the realized loss rate.
#[derive(Debug)]
pub struct FaultedTransport<T> {
    inner: T,
    injector: FaultInjector,
    book: AddressBook,
    rng: StdRng,
}

impl<T: Transport> FaultedTransport<T> {
    /// Wraps `inner`; `seed` decorrelates this sender's fault draws.
    #[must_use]
    pub fn new(inner: T, injector: FaultInjector, book: AddressBook, seed: u64) -> Self {
        Self { inner, injector, book, rng: StdRng::seed_from_u64(seed) }
    }

    /// The wrapped transport.
    #[must_use]
    pub fn inner(&self) -> &T {
        &self.inner
    }
}

impl<T: Transport> Transport for FaultedTransport<T> {
    fn local_id(&self) -> NodeId {
        self.inner.local_id()
    }

    fn send(&mut self, to: NodeId, message: Message) -> Result<(), TransportError> {
        if self.injector.drops(self.local_id(), to, &mut self.rng) {
            self.injector.dropped.inc();
            return Ok(());
        }
        if self.book.resolve(to).is_none() {
            // The peer left; the datagram goes nowhere. Counted so the
            // checker's realized loss includes churn-induced loss.
            self.injector.dead_letters.inc();
        }
        self.inner.send(to, message)
    }

    fn try_recv(&mut self) -> Result<Option<Message>, TransportError> {
        self.inner.try_recv()
    }

    fn recv_batch(&mut self, out: &mut Vec<Message>, max: usize) -> Result<usize, TransportError> {
        self.inner.recv_batch(out, max)
    }
}

#[cfg(test)]
mod tests {
    use sandf_net::UdpTransport;

    use super::*;

    #[test]
    fn parse_roundtrips_every_model() {
        for (line, kind) in [
            ("uniform 0.25", "uniform"),
            ("bursty 0.1 0.5 0.01 0.8", "bursty"),
            ("partition 2 50 1.0", "partition"),
            ("partition 3 10 0.9 0.05", "partition"),
            ("perlink 7 0.2 0.01 0.9", "perlink"),
            ("capacity 7 0.3 4", "capacity"),
            ("victims 1,2,3 0.9", "victims"),
            ("victims 4 0.9 0.1", "victims"),
        ] {
            match parse_fault_command(line, 10).unwrap() {
                FaultCommand::Set { kind: k, .. } => assert_eq!(k, kind, "line {line:?}"),
                other => panic!("line {line:?} parsed to {other:?}"),
            }
        }
        assert_eq!(parse_fault_command("none", 0).unwrap(), FaultCommand::Clear);
        assert_eq!(
            parse_fault_command("victims top 8 0.9 0.05", 0).unwrap(),
            FaultCommand::VictimsTop { count: 8, rate: 0.9, base: 0.05 }
        );
    }

    #[test]
    fn parse_rejections_name_the_field() {
        for (line, fragment) in [
            ("", "empty fault command"),
            ("wibble 0.5", "unknown fault model"),
            ("uniform", "uniform takes"),
            ("uniform 1.5", "not a probability"),
            ("uniform x", "expected a number"),
            ("partition 1 10 1.0", "at least 2"),
            ("partition 2 0 1.0", "must be positive"),
            ("capacity 1 0.5 1", "at least 2"),
            ("victims top 0 0.5", "must be positive"),
            ("victims a,b 0.5", "expected an integer"),
        ] {
            let err = parse_fault_command(line, 0).unwrap_err();
            assert!(err.contains(fragment), "line {line:?}: error {err:?} lacks {fragment:?}");
        }
    }

    #[test]
    fn partition_command_starts_at_the_next_round() {
        let FaultCommand::Set { fault: PhaseFault::Partition(p), .. } =
            parse_fault_command("partition 2 50 1.0", 41).unwrap()
        else {
            panic!("expected a partition");
        };
        assert!(!p.active_in(41));
        assert!(p.active_in(42));
        assert!(p.active_in(91));
        assert!(!p.active_in(92));
    }

    #[test]
    fn injector_drops_cross_region_messages_during_partition() {
        let registry = MetricsRegistry::new();
        let injector = FaultInjector::new(&registry);
        let book = AddressBook::new();
        let mut a = FaultedTransport::new(
            UdpTransport::bind_loopback(NodeId::new(0), &book).unwrap(),
            injector.clone(),
            book.clone(),
            7,
        );
        let mut b = UdpTransport::bind_loopback(NodeId::new(1), &book).unwrap();

        let cmd = parse_fault_command("partition 2 100 1.0", 0).unwrap();
        let FaultCommand::Set { fault, kind } = cmd else { unreachable!() };
        injector.install(Some(fault), &kind);
        injector.set_round(5);

        // 0 and 1 are in different regions (id mod 2): everything drops.
        for k in 0..20 {
            a.send(NodeId::new(1), Message::new(NodeId::new(0), NodeId::new(k), false)).unwrap();
        }
        assert_eq!(injector.dropped(), 20);
        std::thread::sleep(std::time::Duration::from_millis(10));
        assert_eq!(b.try_recv().unwrap(), None);

        // After the window the wire heals.
        injector.set_round(200);
        let msg = Message::new(NodeId::new(0), NodeId::new(9), false);
        a.send(NodeId::new(1), msg).unwrap();
        let mut got = None;
        for _ in 0..200 {
            if let Some(m) = b.try_recv().unwrap() {
                got = Some(m);
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert_eq!(got, Some(msg));
        assert_eq!(injector.dropped(), 20);
    }

    #[test]
    fn dead_letters_count_unresolvable_peers() {
        let registry = MetricsRegistry::new();
        let injector = FaultInjector::new(&registry);
        let book = AddressBook::new();
        let mut a = FaultedTransport::new(
            UdpTransport::bind_loopback(NodeId::new(0), &book).unwrap(),
            injector.clone(),
            book.clone(),
            8,
        );
        a.send(NodeId::new(99), Message::new(NodeId::new(0), NodeId::new(1), false)).unwrap();
        assert_eq!(injector.dead_letters(), 1);
        assert_eq!(registry.counter_value("daemon.net.dead_letters"), Some(1));
    }
}
