//! A single-rotation timer wheel for per-node action ticks.
//!
//! The daemon multiplexes thousands of nodes in one thread; each node must
//! initiate once per protocol round (Section 6.5 defines a round as every
//! node acting once). A heap of `Instant`s would cost `O(log n)` per tick
//! and allocate per reschedule; this wheel is `O(1)` amortized: one
//! rotation equals one round, node `k` lives in slot `k mod W`, and firing
//! a tick pops one slot.
//!
//! Items are generation-tagged so churn cannot resurrect a timer: when a
//! node slot is vacated (leave) or reused (join), the daemon bumps the
//! slot's generation and stale items are discarded on fire. The wheel is
//! driven by an external tick counter (`advance_to`), which keeps it pure
//! and deterministic for tests — no clocks inside.

/// One scheduled item: an opaque key (the daemon's node-slot index) plus
/// the generation it was scheduled under.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct WheelItem {
    /// The scheduler's key for this timer (a node-slot index).
    pub key: usize,
    /// Generation tag; the scheduler discards items whose generation no
    /// longer matches the slot's.
    pub generation: u64,
}

/// A fixed-size timer wheel whose rotation period is one protocol round.
#[derive(Clone, Debug)]
pub struct TimerWheel {
    slots: Vec<Vec<WheelItem>>,
    /// The next tick to fire (ticks already fired are `< current_tick`).
    current_tick: u64,
}

impl TimerWheel {
    /// Creates a wheel with `slot_count` ticks per rotation.
    ///
    /// # Panics
    ///
    /// Panics if `slot_count < 2`.
    #[must_use]
    pub fn new(slot_count: usize) -> Self {
        assert!(slot_count >= 2, "a wheel needs at least 2 slots");
        Self { slots: vec![Vec::new(); slot_count], current_tick: 0 }
    }

    /// Ticks per rotation.
    #[must_use]
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// The next tick that will fire.
    #[must_use]
    pub fn current_tick(&self) -> u64 {
        self.current_tick
    }

    /// Completed rotations — the daemon's protocol-round counter.
    #[must_use]
    pub fn rounds(&self) -> u64 {
        self.current_tick / self.slots.len() as u64
    }

    /// Schedules `item` to fire `delay` ticks from now (`0` = at the next
    /// [`advance_to`](Self::advance_to) that covers the current tick).
    ///
    /// # Panics
    ///
    /// Panics if `delay` is not below the slot count — a single-rotation
    /// wheel cannot represent a longer horizon.
    pub fn schedule(&mut self, delay: u64, item: WheelItem) {
        assert!(
            delay < self.slots.len() as u64,
            "delay {delay} does not fit a {}-slot rotation",
            self.slots.len()
        );
        let slot = ((self.current_tick + delay) % self.slots.len() as u64) as usize;
        self.slots[slot].push(item);
    }

    /// Fires every tick up to and including `tick`, appending due items to
    /// `due` in fire order. Ticks earlier than the cursor are a no-op, so
    /// callers can pass a wall-clock-derived tick index unconditionally.
    pub fn advance_to(&mut self, tick: u64, due: &mut Vec<WheelItem>) {
        while self.current_tick <= tick {
            let slot = (self.current_tick % self.slots.len() as u64) as usize;
            due.append(&mut self.slots[slot]);
            self.current_tick += 1;
        }
    }

    /// Total items currently scheduled (for diagnostics).
    #[must_use]
    pub fn scheduled(&self) -> usize {
        self.slots.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn item(key: usize) -> WheelItem {
        WheelItem { key, generation: 0 }
    }

    #[test]
    fn fires_in_tick_order() {
        let mut wheel = TimerWheel::new(8);
        wheel.schedule(3, item(3));
        wheel.schedule(1, item(1));
        wheel.schedule(5, item(5));
        let mut due = Vec::new();
        wheel.advance_to(7, &mut due);
        assert_eq!(due.iter().map(|i| i.key).collect::<Vec<_>>(), vec![1, 3, 5]);
        assert_eq!(wheel.current_tick(), 8);
        assert_eq!(wheel.scheduled(), 0);
    }

    #[test]
    fn rescheduling_after_fire_lands_one_rotation_later() {
        let mut wheel = TimerWheel::new(4);
        wheel.schedule(0, item(9));
        let mut due = Vec::new();
        wheel.advance_to(0, &mut due);
        assert_eq!(due.len(), 1);
        // The cursor moved past the fired slot; a (W-1)-delay reschedule
        // fires exactly one rotation after the original tick.
        wheel.schedule(3, due[0]);
        due.clear();
        wheel.advance_to(2, &mut due);
        assert!(due.is_empty(), "must not fire early");
        wheel.advance_to(4, &mut due);
        assert_eq!(due.len(), 1);
    }

    #[test]
    fn advance_is_idempotent_for_past_ticks() {
        let mut wheel = TimerWheel::new(4);
        wheel.schedule(0, item(1));
        let mut due = Vec::new();
        wheel.advance_to(1, &mut due);
        let fired = due.len();
        wheel.advance_to(1, &mut due);
        wheel.advance_to(0, &mut due);
        assert_eq!(due.len(), fired);
    }

    #[test]
    fn rounds_count_rotations() {
        let mut wheel = TimerWheel::new(4);
        let mut due = Vec::new();
        assert_eq!(wheel.rounds(), 0);
        wheel.advance_to(3, &mut due);
        assert_eq!(wheel.rounds(), 1);
        wheel.advance_to(11, &mut due);
        assert_eq!(wheel.rounds(), 3);
    }

    #[test]
    fn many_items_share_a_slot() {
        let mut wheel = TimerWheel::new(2);
        for k in 0..10 {
            wheel.schedule(k % 2, item(k as usize));
        }
        let mut due = Vec::new();
        wheel.advance_to(1, &mut due);
        assert_eq!(due.len(), 10);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn overlong_delay_is_rejected() {
        let mut wheel = TimerWheel::new(4);
        wheel.schedule(4, item(0));
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn tiny_wheel_is_rejected() {
        let _ = TimerWheel::new(1);
    }
}
