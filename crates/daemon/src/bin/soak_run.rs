//! The `soak_run` binary: soaks a live daemon and gates on post-heal
//! invariant violations.
//!
//! ```text
//! soak_run [--connect HOST:PORT | --nodes N] [--tick-ms MS] [--loss L]
//!          [--seed S] [--flash K] [--churn I] [--churn-batch B]
//!          [--partition-rounds R] [--settle-rounds R] [--out PREFIX]
//! ```
//!
//! Without `--connect` an embedded daemon is spawned on an ephemeral
//! loopback port and soaked in-process. The TSV report goes to stdout; with
//! `--out PREFIX`, `PREFIX.tsv` and `PREFIX.json` are written too. Exit
//! status is 0 only if the post-heal phase has zero Observation 5.1 and
//! Lemma 6.10 violations, `/healthz` answers 200, and `/metrics` exposes
//! the daemon's wire counters.

use std::net::SocketAddr;
use std::time::Duration;

use sandf_daemon::{http_get, run_soak, DaemonConfig, SoakConfig};

struct Args {
    connect: Option<SocketAddr>,
    daemon: DaemonConfig,
    soak: SoakConfig,
    out: Option<String>,
}

fn parse<T: std::str::FromStr>(word: &str) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    word.parse().map_err(|e| format!("bad value {word:?}: {e}"))
}

fn parse_args() -> Result<Args, String> {
    let mut parsed = Args {
        connect: None,
        daemon: DaemonConfig::default(),
        soak: SoakConfig::default(),
        out: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |what: &str| args.next().ok_or_else(|| format!("{what} needs a value"));
        match flag.as_str() {
            "--connect" => parsed.connect = Some(parse(&value("--connect")?)?),
            "--nodes" => parsed.daemon.initial_nodes = parse(&value("--nodes")?)?,
            "--tick-ms" => {
                parsed.daemon.tick = Duration::from_millis(parse(&value("--tick-ms")?)?);
            }
            "--loss" => parsed.daemon.base_loss = parse(&value("--loss")?)?,
            "--seed" => parsed.daemon.seed = parse(&value("--seed")?)?,
            "--flash" => parsed.soak.flash_join = parse(&value("--flash")?)?,
            "--churn" => parsed.soak.churn_iters = parse(&value("--churn")?)?,
            "--churn-batch" => parsed.soak.churn_batch = parse(&value("--churn-batch")?)?,
            "--partition-rounds" => {
                parsed.soak.partition_rounds = parse(&value("--partition-rounds")?)?;
            }
            "--settle-rounds" => parsed.soak.settle_rounds = parse(&value("--settle-rounds")?)?,
            "--out" => parsed.out = Some(value("--out")?),
            "--help" | "-h" => {
                println!(
                    "usage: soak_run [--connect HOST:PORT | --nodes N] [--tick-ms MS] \
                     [--loss L] [--seed S] [--flash K] [--churn I] [--churn-batch B] \
                     [--partition-rounds R] [--settle-rounds R] [--out PREFIX]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other:?} (try --help)")),
        }
    }
    Ok(parsed)
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("soak_run: {message}");
            std::process::exit(2);
        }
    };

    // Spawn an embedded daemon unless pointed at a live one.
    let mut embedded = None;
    let addr = match args.connect {
        Some(addr) => addr,
        None => {
            let daemon = match args.daemon.spawn() {
                Ok(daemon) => daemon,
                Err(e) => {
                    eprintln!("soak_run: failed to boot embedded daemon: {e}");
                    std::process::exit(1);
                }
            };
            let addr = daemon.http_addr().expect("embedded daemon always serves HTTP");
            eprintln!("soak_run: embedded daemon at http://{addr}");
            embedded = Some(daemon);
            addr
        }
    };

    let report = match run_soak(addr, &args.soak) {
        Ok(report) => report,
        Err(message) => {
            eprintln!("soak_run: soak failed: {message}");
            std::process::exit(1);
        }
    };

    print!("{}", report.to_tsv());
    if let Some(prefix) = &args.out {
        for (ext, body) in [("tsv", report.to_tsv()), ("json", report.to_json())] {
            let path = format!("{prefix}.{ext}");
            if let Err(e) = std::fs::write(&path, body) {
                eprintln!("soak_run: cannot write {path}: {e}");
                std::process::exit(1);
            }
        }
    }

    // The gate: healthy endpoint, wire counters exposed, zero post-heal
    // invariant violations.
    let healthz = http_get(addr, "/healthz").map(|(s, _)| s).unwrap_or(0);
    let metrics_ok = http_get(addr, "/metrics")
        .map(|(s, body)| s == 200 && body.contains("sandf_daemon_net_sent"))
        .unwrap_or(false);
    let violations = report.post_heal_violations();
    if let Some(daemon) = embedded {
        daemon.shutdown();
    }

    if healthz != 200 {
        eprintln!("soak_run: FAIL — /healthz returned {healthz}");
        std::process::exit(1);
    }
    if !metrics_ok {
        eprintln!("soak_run: FAIL — /metrics lacks sandf_daemon_net_sent");
        std::process::exit(1);
    }
    if violations > 0 {
        eprintln!("soak_run: FAIL — {violations} post-heal invariant violations");
        std::process::exit(1);
    }
    eprintln!("soak_run: PASS — zero post-heal invariant violations");
}
