//! The `sandf-daemon` binary: boots a fleet and serves the HTTP endpoint.
//!
//! ```text
//! sandf-daemon [--nodes N] [--port P] [--tick-ms MS] [--loss L]
//!              [--seed S] [--check-every R] [--secs T]
//! ```
//!
//! `--secs 0` (the default) runs until killed. Status lines are printed at
//! every invariant-check cadence.

use std::time::Duration;

use sandf_daemon::DaemonConfig;

struct Args {
    config: DaemonConfig,
    secs: u64,
}

fn parse_args() -> Result<Args, String> {
    let mut config = DaemonConfig::default();
    let mut secs = 0u64;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |what: &str| args.next().ok_or_else(|| format!("{what} needs a value"));
        match flag.as_str() {
            "--nodes" => config.initial_nodes = parse(&value("--nodes")?)?,
            "--port" => config.http_port = Some(parse(&value("--port")?)?),
            "--tick-ms" => config.tick = Duration::from_millis(parse(&value("--tick-ms")?)?),
            "--loss" => config.base_loss = parse(&value("--loss")?)?,
            "--seed" => config.seed = parse(&value("--seed")?)?,
            "--check-every" => config.check_every = parse(&value("--check-every")?)?,
            "--secs" => secs = parse(&value("--secs")?)?,
            "--help" | "-h" => {
                println!(
                    "usage: sandf-daemon [--nodes N] [--port P] [--tick-ms MS] [--loss L] \
                     [--seed S] [--check-every R] [--secs T]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other:?} (try --help)")),
        }
    }
    Ok(Args { config, secs })
}

fn parse<T: std::str::FromStr>(word: &str) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    word.parse().map_err(|e| format!("bad value {word:?}: {e}"))
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("sandf-daemon: {message}");
            std::process::exit(2);
        }
    };
    let tick = args.config.tick;
    let check_every = args.config.check_every;
    let daemon = match args.config.spawn() {
        Ok(daemon) => daemon,
        Err(e) => {
            eprintln!("sandf-daemon: failed to boot: {e}");
            std::process::exit(1);
        }
    };
    match daemon.http_addr() {
        Some(addr) => eprintln!(
            "sandf-daemon: serving http://{addr} (metrics, healthz, membership, journal, ctl)"
        ),
        None => eprintln!("sandf-daemon: running without an HTTP endpoint"),
    }

    let status_every = tick * u32::try_from(check_every).unwrap_or(u32::MAX).max(1);
    let started = std::time::Instant::now();
    let mut last_round = u64::MAX;
    loop {
        std::thread::sleep(status_every.max(Duration::from_millis(200)));
        let snap = daemon.snapshot();
        if snap.round != last_round {
            last_round = snap.round;
            eprintln!(
                "round {:>6}  live {:>5}  out {:>5.2}  stale {:.4} (ceil {:.4})  \
                 comps {}  loss {:.3}  fault {}  viol {}/{}",
                snap.round,
                snap.live,
                snap.mean_out,
                snap.stale_fraction,
                snap.stale_ceiling,
                snap.components,
                snap.window_loss,
                snap.fault,
                snap.degree_violations,
                snap.stale_violations,
            );
        }
        if args.secs > 0 && started.elapsed() >= Duration::from_secs(args.secs) {
            break;
        }
    }
    let snap = daemon.snapshot();
    daemon.shutdown();
    eprintln!(
        "sandf-daemon: stopped after {} rounds; {} checks, {} degree violations, {} stale violations",
        snap.round, snap.checks, snap.degree_violations, snap.stale_violations
    );
    if snap.degree_violations + snap.stale_violations > 0 {
        std::process::exit(1);
    }
}
