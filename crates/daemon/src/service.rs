//! The daemon's event loop: thousands of S&F nodes multiplexed on one
//! thread over real UDP sockets.
//!
//! # Design
//!
//! Each node owns a loopback UDP socket wrapped in the daemon transport
//! stack `LossyTransport<FaultedTransport<UdpTransport>>` — base Section
//! 4.1 loss outermost, then the runtime-reconfigurable fault injector, then
//! the wire. Sockets are non-blocking; instead of a readiness API the loop
//! drains each node's socket in a batch ([`Transport::recv_batch`]) exactly
//! when that node's action timer fires, so a node's receive step and
//! initiate step happen back-to-back at a quiescent point.
//!
//! Timers live on a single-rotation [`TimerWheel`] whose rotation period is
//! one protocol round: `W` ticks per rotation, node slot `k` parked at tick
//! `k mod W`, refired one rotation later. The wheel is driven from wall
//! clock but never advanced more than one rotation per loop iteration, so a
//! stalled process slows rounds down rather than skipping actions — the
//! round counter stays consistent with "every node acted once per round",
//! which the Lemma 6.10 decay accounting relies on.
//!
//! Control (join / leave / fault) arrives on an mpsc channel, serviced
//! between ticks; each command carries a reply sender so the HTTP layer can
//! report *applied* rather than *enqueued*.

use std::io;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use sandf_core::{InitiateOutcome, Message, NodeId, SfConfig, SfNode};
use sandf_graph::MembershipGraph;
use sandf_net::{AddressBook, LossyTransport, Transport, UdpTransport};
use sandf_obs::{CounterHandle, EventJournal, GaugeHandle, JournalEvent, MetricsRegistry};
use sandf_sim::{topology, PhaseFault, VictimLoss};

use crate::fault::{parse_fault_command, FaultCommand, FaultInjector, FaultedTransport};
use crate::http::{escape_json, serve, HttpContext};
use crate::invariants::{CheckOutcome, InvariantChecker, WireTotals};
use crate::wheel::{TimerWheel, WheelItem};

/// Ticks per wheel rotation (= per protocol round). Nodes are spread
/// across the rotation so socket drains stay small.
pub const WHEEL_SLOTS: usize = 64;

/// Max datagrams drained from one node's socket per tick.
const RECV_BATCH_MAX: usize = 4096;

/// The metric prefix shared by every node's loss layer; the registry
/// dedupes by name, so the whole fleet shares `daemon.net.*` counters.
const NET_PREFIX: &str = "daemon.net";

/// Configuration for a daemon process.
#[derive(Clone, Debug)]
pub struct DaemonConfig {
    /// Nodes bootstrapped at start (circulant topology).
    pub initial_nodes: usize,
    /// View size `s` (even, ≥ 6).
    pub view_size: usize,
    /// Duplication threshold `d_L` (even, ≤ s − 6).
    pub lower_threshold: usize,
    /// Bootstrap outdegree `d0` for the circulant (even, ≤ s).
    pub initial_degree: usize,
    /// Wall-clock duration of one protocol round.
    pub tick: Duration,
    /// Base message-loss probability (the `LossyTransport` layer).
    pub base_loss: f64,
    /// Master seed; all per-node RNGs derive from it.
    pub seed: u64,
    /// Rounds between invariant checks.
    pub check_every: u64,
    /// Bounded event-journal capacity.
    pub journal_capacity: usize,
    /// HTTP port (`Some(0)` = ephemeral, `None` = no endpoint).
    pub http_port: Option<u16>,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        Self {
            initial_nodes: 64,
            view_size: 12,
            lower_threshold: 4,
            initial_degree: 6,
            tick: Duration::from_millis(20),
            base_loss: 0.05,
            seed: 42,
            check_every: 5,
            journal_capacity: 1024,
            http_port: Some(0),
        }
    }
}

impl DaemonConfig {
    /// Boots the service: binds sockets, bootstraps the fleet, starts the
    /// event-loop thread (and the HTTP thread when a port is configured).
    ///
    /// # Errors
    ///
    /// Returns [`io::Error`] on invalid protocol parameters, socket bind
    /// failures, or HTTP listener failures.
    pub fn spawn(self) -> io::Result<DaemonHandle> {
        spawn_daemon(self)
    }
}

/// A control command for the event loop. Replies report the command as
/// *applied* (or rejected), not merely enqueued.
pub enum Control {
    /// Join `count` fresh nodes via the Section 5 joining rule; replies
    /// with the live node count afterwards.
    Join {
        /// Nodes to add.
        count: usize,
        /// Receives the post-join live count.
        reply: Sender<Result<usize, String>>,
    },
    /// Remove `count` random live nodes (crash-stop; no goodbye message);
    /// replies with the live node count afterwards.
    Leave {
        /// Nodes to remove.
        count: usize,
        /// Receives the post-leave live count.
        reply: Sender<Result<usize, String>>,
    },
    /// Parse and install a fault command line; replies with the installed
    /// model's tag.
    Fault {
        /// One [`parse_fault_command`] line.
        line: String,
        /// Receives the installed fault kind.
        reply: Sender<Result<String, String>>,
    },
    /// Stop the event loop.
    Shutdown,
}

/// A point-in-time public view of the daemon, refreshed at every invariant
/// check and after every control command.
#[derive(Clone, Debug, Default)]
pub struct MembershipSnapshot {
    /// Completed protocol rounds.
    pub round: u64,
    /// Live nodes.
    pub live: usize,
    /// Cumulative departed nodes.
    pub departed: u64,
    /// Mean outdegree at the last check.
    pub mean_out: f64,
    /// Minimum outdegree at the last check.
    pub min_out: usize,
    /// Maximum outdegree at the last check.
    pub max_out: usize,
    /// Stale-edge fraction at the last check.
    pub stale_fraction: f64,
    /// Lemma 6.10 ceiling at the last check.
    pub stale_ceiling: f64,
    /// Weakly connected components at the last check.
    pub components: usize,
    /// Invariant checks run so far.
    pub checks: u64,
    /// Cumulative Observation 5.1 offenders across checks.
    pub degree_violations: u64,
    /// Cumulative Lemma 6.10 ceiling breaches across checks.
    pub stale_violations: u64,
    /// Realized loss rate over the last check window.
    pub window_loss: f64,
    /// The installed fault model's tag.
    pub fault: String,
}

impl MembershipSnapshot {
    /// Renders the snapshot as a JSON object.
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"round\":{},\"live\":{},\"departed\":{},",
                "\"mean_out\":{:.4},\"min_out\":{},\"max_out\":{},",
                "\"stale_fraction\":{:.6},\"stale_ceiling\":{:.6},",
                "\"components\":{},\"checks\":{},",
                "\"degree_violations\":{},\"stale_violations\":{},",
                "\"window_loss\":{:.6},\"fault\":\"{}\"}}"
            ),
            self.round,
            self.live,
            self.departed,
            self.mean_out,
            self.min_out,
            self.max_out,
            self.stale_fraction,
            self.stale_ceiling,
            self.components,
            self.checks,
            self.degree_violations,
            self.stale_violations,
            self.window_loss,
            escape_json(&self.fault),
        )
    }
}

type NodeTransport = LossyTransport<FaultedTransport<UdpTransport>>;

struct NodeSlot {
    node: SfNode,
    transport: NodeTransport,
    rng: StdRng,
}

/// A handle to a running daemon. Dropping it shuts the daemon down.
pub struct DaemonHandle {
    ctl: Sender<Control>,
    snapshot: Arc<Mutex<MembershipSnapshot>>,
    registry: MetricsRegistry,
    journal: EventJournal,
    http_addr: Option<SocketAddr>,
    shutdown: Arc<AtomicBool>,
    loop_thread: Option<JoinHandle<()>>,
    http_thread: Option<JoinHandle<()>>,
}

impl DaemonHandle {
    /// The HTTP endpoint's bound address, when one was configured.
    #[must_use]
    pub fn http_addr(&self) -> Option<SocketAddr> {
        self.http_addr
    }

    /// The latest published [`MembershipSnapshot`].
    #[must_use]
    pub fn snapshot(&self) -> MembershipSnapshot {
        self.snapshot.lock().clone()
    }

    /// The daemon's metrics registry (shared with the event loop).
    #[must_use]
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// The daemon's event journal (violations land here).
    #[must_use]
    pub fn journal(&self) -> &EventJournal {
        &self.journal
    }

    /// Joins `count` fresh nodes; returns the live count afterwards.
    ///
    /// # Errors
    ///
    /// Returns the loop's rejection message, or a transport message when
    /// the loop is gone.
    pub fn join_nodes(&self, count: usize) -> Result<usize, String> {
        self.roundtrip(|reply| Control::Join { count, reply })
    }

    /// Removes `count` random live nodes; returns the live count afterwards.
    ///
    /// # Errors
    ///
    /// See [`join_nodes`](Self::join_nodes).
    pub fn leave_nodes(&self, count: usize) -> Result<usize, String> {
        self.roundtrip(|reply| Control::Leave { count, reply })
    }

    /// Installs a fault from a command line; returns the installed tag.
    ///
    /// # Errors
    ///
    /// Returns the parse/rejection message.
    pub fn fault(&self, line: &str) -> Result<String, String> {
        self.roundtrip(|reply| Control::Fault { line: line.to_string(), reply })
    }

    fn roundtrip<T>(
        &self,
        build: impl FnOnce(Sender<Result<T, String>>) -> Control,
    ) -> Result<T, String> {
        let (tx, rx) = channel();
        self.ctl.send(build(tx)).map_err(|_| "daemon loop is gone".to_string())?;
        rx.recv_timeout(Duration::from_secs(30))
            .map_err(|_| "daemon loop did not reply".to_string())?
    }

    /// Stops the event loop and the HTTP thread, waiting for both.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        let _ = self.ctl.send(Control::Shutdown);
        if let Some(handle) = self.loop_thread.take() {
            let _ = handle.join();
        }
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(handle) = self.http_thread.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for DaemonHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Everything the event loop owns.
struct ServiceState {
    config: DaemonConfig,
    sf: SfConfig,
    slots: Vec<Option<NodeSlot>>,
    generations: Vec<u64>,
    free: Vec<usize>,
    wheel: TimerWheel,
    book: AddressBook,
    injector: FaultInjector,
    checker: InvariantChecker,
    registry: MetricsRegistry,
    journal: EventJournal,
    snapshot: Arc<Mutex<MembershipSnapshot>>,
    rng: StdRng,
    next_id: u64,
    departed: u64,
    /// Stats of departed nodes, folded in at leave time so window deltas
    /// never run backwards.
    retired_actions: u64,
    retired_duplications: u64,
    checks: u64,
    degree_violations_total: u64,
    stale_violations_total: u64,
    last_outcome: Option<CheckOutcome>,
    nodes_gauge: GaugeHandle,
    round_gauge: GaugeHandle,
    stale_gauge: GaugeHandle,
    checks_counter: CounterHandle,
    degree_viol_counter: CounterHandle,
    stale_viol_counter: CounterHandle,
    recv_errors: CounterHandle,
}

fn invalid<E: std::fmt::Display>(e: E) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidInput, e.to_string())
}

fn spawn_daemon(config: DaemonConfig) -> io::Result<DaemonHandle> {
    let sf = SfConfig::new(config.view_size, config.lower_threshold).map_err(invalid)?;
    if config.initial_nodes == 0 {
        return Err(invalid("initial_nodes must be positive"));
    }
    if !config.initial_degree.is_multiple_of(2)
        || config.initial_degree > sf.view_size()
        || config.initial_degree >= config.initial_nodes
    {
        return Err(invalid("initial_degree must be even, ≤ s, and < initial_nodes"));
    }
    if !(0.0..=1.0).contains(&config.base_loss) {
        return Err(invalid("base_loss must be a probability"));
    }
    if config.tick.is_zero() || config.check_every == 0 {
        return Err(invalid("tick and check_every must be positive"));
    }

    let registry = MetricsRegistry::new();
    let journal = EventJournal::new(config.journal_capacity.max(64));
    let book = AddressBook::new();
    let injector = FaultInjector::new(&registry);
    let snapshot = Arc::new(Mutex::new(MembershipSnapshot {
        live: config.initial_nodes,
        fault: "none".into(),
        ..MembershipSnapshot::default()
    }));

    let mut state = ServiceState {
        sf,
        slots: Vec::with_capacity(config.initial_nodes),
        generations: Vec::with_capacity(config.initial_nodes),
        free: Vec::new(),
        wheel: TimerWheel::new(WHEEL_SLOTS),
        book: book.clone(),
        injector: injector.clone(),
        checker: InvariantChecker::new(sf),
        registry: registry.clone(),
        journal: journal.clone(),
        snapshot: Arc::clone(&snapshot),
        rng: StdRng::seed_from_u64(config.seed),
        next_id: 0,
        departed: 0,
        retired_actions: 0,
        retired_duplications: 0,
        checks: 0,
        degree_violations_total: 0,
        stale_violations_total: 0,
        last_outcome: None,
        nodes_gauge: registry.gauge("daemon.nodes"),
        round_gauge: registry.gauge("daemon.round"),
        stale_gauge: registry.gauge("daemon.stale_fraction"),
        checks_counter: registry.counter("daemon.checks"),
        degree_viol_counter: registry.counter("daemon.violations.degree"),
        stale_viol_counter: registry.counter("daemon.violations.stale"),
        recv_errors: registry.counter("daemon.net.recv_errors"),
        config,
    };

    // Bootstrap the fleet synchronously so bind failures surface here.
    for node in topology::circulant(state.config.initial_nodes, sf, state.config.initial_degree) {
        let slot = state.build_slot(node).map_err(|e| io::Error::other(e.to_string()))?;
        let key = state.slots.len();
        state.slots.push(Some(slot));
        state.generations.push(0);
        state.wheel.schedule((key % WHEEL_SLOTS) as u64, WheelItem { key, generation: 0 });
    }
    state.next_id = state.config.initial_nodes as u64;
    state.nodes_gauge.set(state.config.initial_nodes as f64);

    let (ctl_tx, ctl_rx) = channel();
    let shutdown = Arc::new(AtomicBool::new(false));

    let mut http_addr = None;
    let mut http_thread = None;
    if let Some(port) = state.config.http_port {
        let ctx = HttpContext {
            registry: registry.clone(),
            journal: journal.clone(),
            snapshot: Arc::clone(&snapshot),
            ctl: ctl_tx.clone(),
            shutdown: Arc::clone(&shutdown),
        };
        let (addr, thread) = serve(port, ctx)?;
        http_addr = Some(addr);
        http_thread = Some(thread);
    }

    let loop_thread = std::thread::Builder::new()
        .name("sandf-daemon-loop".into())
        .spawn(move || run_loop(state, &ctl_rx))?;

    Ok(DaemonHandle {
        ctl: ctl_tx,
        snapshot,
        registry,
        journal,
        http_addr,
        shutdown,
        loop_thread: Some(loop_thread),
        http_thread: Some(http_thread.unwrap_or_else(|| {
            // No HTTP thread; park a no-op handle so Drop stays uniform.
            std::thread::spawn(|| {})
        })),
    })
}

fn run_loop(mut state: ServiceState, ctl: &Receiver<Control>) {
    let start = Instant::now();
    let granularity = (state.config.tick.as_nanos() as u64 / WHEEL_SLOTS as u64).max(1);
    let mut due: Vec<WheelItem> = Vec::new();
    let mut inbox: Vec<Message> = Vec::new();
    let mut next_check = state.config.check_every;

    'outer: loop {
        // Service control commands, waiting until the next wheel tick.
        loop {
            let now = start.elapsed().as_nanos() as u64;
            let tick_at = state.wheel.current_tick().saturating_mul(granularity);
            if now >= tick_at {
                break;
            }
            match ctl.recv_timeout(Duration::from_nanos(tick_at - now)) {
                Ok(Control::Shutdown) => break 'outer,
                Ok(command) => state.handle_control(command),
                Err(RecvTimeoutError::Timeout) => break,
                Err(RecvTimeoutError::Disconnected) => break 'outer,
            }
        }
        while let Ok(command) = ctl.try_recv() {
            match command {
                Control::Shutdown => break 'outer,
                other => state.handle_control(other),
            }
        }

        // Advance at most one rotation per iteration: a stalled loop slows
        // rounds down instead of skipping node actions (see module docs).
        let now_tick = start.elapsed().as_nanos() as u64 / granularity;
        let target = now_tick.min(state.wheel.current_tick() + WHEEL_SLOTS as u64);
        due.clear();
        state.wheel.advance_to(target, &mut due);
        let round = state.wheel.rounds();
        state.injector.set_round(round);
        for item in &due {
            if state.generations[item.key] == item.generation {
                state.tick_node(item.key, round, &mut inbox);
                state.wheel.schedule(WHEEL_SLOTS as u64 - 1, *item);
            }
        }
        state.round_gauge.set(round as f64);

        if round >= next_check {
            state.run_check(round);
            next_check = round + state.config.check_every;
        }
    }
    // Final check so short-lived daemons still publish one verdict.
    let round = state.wheel.rounds();
    state.run_check(round.max(1));
}

impl ServiceState {
    fn build_slot(&mut self, node: SfNode) -> Result<NodeSlot, String> {
        let id = node.id();
        let udp = UdpTransport::bind_loopback(id, &self.book)
            .map_err(|e| format!("binding node {}: {e}", id.as_u64()))?;
        let faulted = FaultedTransport::new(
            udp,
            self.injector.clone(),
            self.book.clone(),
            self.config.seed ^ id.as_u64().wrapping_mul(0x9e37_79b9_7f4a_7c15),
        );
        let transport = LossyTransport::with_metrics(
            faulted,
            self.config.base_loss,
            self.config.seed ^ id.as_u64().wrapping_mul(0xd134_2543_de82_ef95),
            &self.registry,
            NET_PREFIX,
        );
        let rng = StdRng::seed_from_u64(
            self.config.seed ^ id.as_u64().wrapping_mul(0x2545_f491_4f6c_dd1d),
        );
        Ok(NodeSlot { node, transport, rng })
    }

    fn live_keys(&self) -> Vec<usize> {
        (0..self.slots.len()).filter(|&k| self.slots[k].is_some()).collect()
    }

    fn live_nodes(&self) -> impl Iterator<Item = &SfNode> + Clone {
        self.slots.iter().filter_map(|slot| slot.as_ref().map(|s| &s.node))
    }

    fn tick_node(&mut self, key: usize, round: u64, inbox: &mut Vec<Message>) {
        let injector = self.injector.clone();
        let Some(slot) = self.slots[key].as_mut() else {
            return;
        };
        inbox.clear();
        if slot.transport.recv_batch(inbox, RECV_BATCH_MAX).is_err() {
            self.recv_errors.inc();
        }
        for message in inbox.drain(..) {
            let _ = slot.node.receive(message, &mut slot.rng);
        }
        if injector.node_acts(slot.node.id(), round) {
            if let InitiateOutcome::Sent { to, message, .. } = slot.node.initiate(&mut slot.rng) {
                // Loss (base or injected) is the protocol's whole subject;
                // a socket error is treated as one more lost message.
                let _ = slot.transport.send(to, message);
            }
        }
    }

    fn handle_control(&mut self, command: Control) {
        // The snapshot is refreshed before the reply is sent, so a caller
        // that got a reply observes its own command's effect.
        match command {
            Control::Join { count, reply } => {
                let result = self.handle_join(count);
                self.publish_light_snapshot();
                let _ = reply.send(result);
            }
            Control::Leave { count, reply } => {
                let result = self.handle_leave(count);
                self.publish_light_snapshot();
                let _ = reply.send(result);
            }
            Control::Fault { line, reply } => {
                let result = self.handle_fault(&line);
                self.publish_light_snapshot();
                let _ = reply.send(result);
            }
            Control::Shutdown => unreachable!("handled by the loop"),
        }
    }

    /// The Section 5 joining rule: ask a random live sponsor for ids, take
    /// `d_L` of them at random. Sponsors with sparse views are topped up
    /// from other live nodes' own ids (also legitimate member ids).
    fn handle_join(&mut self, count: usize) -> Result<usize, String> {
        if count == 0 {
            return Err("join count must be positive".into());
        }
        for _ in 0..count {
            let live = self.live_keys();
            if live.is_empty() {
                return Err("no live sponsor to join through".into());
            }
            let id = NodeId::new(self.next_id);
            let d_l = self.sf.lower_threshold();
            let sponsor_key = live[self.rng.gen_range(0..live.len())];
            let mut ids: Vec<NodeId> = Vec::with_capacity(d_l);
            let sponsor = &self.slots[sponsor_key].as_ref().expect("live key").node;
            let mut pool: Vec<NodeId> = sponsor.view().ids().collect();
            pool.push(sponsor.id());
            pool.sort_unstable();
            pool.dedup();
            pool.shuffle(&mut self.rng);
            for candidate in pool {
                if ids.len() == d_l {
                    break;
                }
                if candidate != id && self.book.resolve(candidate).is_some() {
                    ids.push(candidate);
                }
            }
            if ids.len() < d_l {
                // Top up with other live nodes' own ids.
                let mut extra = live.clone();
                extra.shuffle(&mut self.rng);
                for key in extra {
                    if ids.len() == d_l {
                        break;
                    }
                    let nid = self.slots[key].as_ref().expect("live key").node.id();
                    if nid != id && !ids.contains(&nid) {
                        ids.push(nid);
                    }
                }
            }
            if ids.len() < d_l {
                return Err(format!(
                    "cannot gather {d_l} sponsor ids from {} live nodes",
                    live.len()
                ));
            }
            let node = SfNode::with_view(id, self.sf, &ids).map_err(|e| e.to_string())?;
            let slot = self.build_slot(node)?;
            self.next_id += 1;
            let key = match self.free.pop() {
                Some(key) => {
                    self.slots[key] = Some(slot);
                    key
                }
                None => {
                    self.slots.push(Some(slot));
                    self.generations.push(0);
                    self.slots.len() - 1
                }
            };
            let generation = self.generations[key];
            let delay = self.rng.gen_range(0..WHEEL_SLOTS as u64);
            self.wheel.schedule(delay, WheelItem { key, generation });
        }
        let live = self.live_keys().len();
        self.nodes_gauge.set(live as f64);
        Ok(live)
    }

    fn handle_leave(&mut self, count: usize) -> Result<usize, String> {
        let mut live = self.live_keys();
        if count == 0 {
            return Err("leave count must be positive".into());
        }
        if count >= live.len() {
            return Err(format!("refusing to remove all {} live nodes", live.len()));
        }
        live.shuffle(&mut self.rng);
        for &key in live.iter().take(count) {
            let slot = self.slots[key].take().expect("live key");
            self.book.remove(slot.node.id());
            self.retired_actions += slot.node.stats().sent;
            self.retired_duplications += slot.node.stats().duplications;
            // Invalidate the parked wheel item; the slot index is reusable.
            self.generations[key] += 1;
            self.free.push(key);
        }
        self.checker.record_leaves(count);
        self.departed += count as u64;
        let remaining = live.len() - count;
        self.nodes_gauge.set(remaining as f64);
        Ok(remaining)
    }

    fn handle_fault(&mut self, line: &str) -> Result<String, String> {
        match parse_fault_command(line, self.wheel.rounds())? {
            FaultCommand::Clear => {
                self.injector.install(None, "none");
                Ok("none".into())
            }
            FaultCommand::Set { fault, kind } => {
                self.injector.install(Some(fault), &kind);
                Ok(kind)
            }
            FaultCommand::VictimsTop { count, rate, base } => {
                let graph = MembershipGraph::from_nodes(self.live_nodes());
                let mut ranked: Vec<(usize, NodeId)> =
                    graph.in_degrees().into_iter().zip(graph.ids().iter().copied()).collect();
                ranked.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
                let victims: Vec<NodeId> =
                    ranked.into_iter().take(count).map(|(_, id)| id).collect();
                if victims.is_empty() {
                    return Err("no live nodes to victimize".into());
                }
                let mut model = VictimLoss::new(rate, base).map_err(|e| e.to_string())?;
                model.set_victims(&victims);
                self.injector.install(Some(PhaseFault::Victims(model)), "victims");
                Ok("victims".into())
            }
        }
    }

    fn wire_totals(&self) -> WireTotals {
        let sent = self.registry.counter_value("daemon.net.sent").unwrap_or(0);
        let base_dropped = self.registry.counter_value("daemon.net.dropped").unwrap_or(0);
        let mut actions = self.retired_actions;
        let mut duplications = self.retired_duplications;
        for node in self.live_nodes() {
            actions += node.stats().sent;
            duplications += node.stats().duplications;
        }
        WireTotals {
            sent,
            dropped: base_dropped + self.injector.dropped() + self.injector.dead_letters(),
            actions,
            duplications,
        }
    }

    fn run_check(&mut self, round: u64) {
        let totals = self.wire_totals();
        let outcome = {
            let nodes = self.slots.iter().filter_map(|slot| slot.as_ref().map(|s| &s.node));
            self.checker.check(round, nodes, totals)
        };
        self.checks += 1;
        self.checks_counter.inc();
        self.degree_violations_total += outcome.degree_violation_count as u64;
        self.degree_viol_counter.add(outcome.degree_violation_count as u64);
        if outcome.stale_violation {
            self.stale_violations_total += 1;
            self.stale_viol_counter.inc();
        }
        self.stale_gauge.set(outcome.stale_fraction);
        let (lo, hi) = (self.sf.lower_threshold() as u32, self.sf.view_size() as u32);
        for &(node, degree) in &outcome.degree_violations {
            self.journal.record(
                round,
                JournalEvent::DegreeViolation { node, degree: degree as u32, lo, hi },
            );
        }
        if outcome.stale_violation {
            self.journal.record(
                round,
                JournalEvent::StaleViolation {
                    stale_ppm: (outcome.stale_fraction * 1e6) as u64,
                    ceiling_ppm: (outcome.stale_ceiling * 1e6) as u64,
                },
            );
        }
        self.publish_snapshot(&outcome);
        self.last_outcome = Some(outcome);
    }

    fn publish_snapshot(&self, outcome: &CheckOutcome) {
        *self.snapshot.lock() = MembershipSnapshot {
            round: outcome.round,
            live: outcome.live,
            departed: self.departed,
            mean_out: outcome.mean_out,
            min_out: outcome.min_out,
            max_out: outcome.max_out,
            stale_fraction: outcome.stale_fraction,
            stale_ceiling: outcome.stale_ceiling,
            components: outcome.components,
            checks: self.checks,
            degree_violations: self.degree_violations_total,
            stale_violations: self.stale_violations_total,
            window_loss: outcome.window_loss,
            fault: self.injector.kind(),
        };
    }

    /// Refresh the cheap fields after a control command, keeping the last
    /// check's measured stats.
    fn publish_light_snapshot(&self) {
        let mut snap = self.snapshot.lock();
        snap.round = self.wheel.rounds();
        snap.live = self.live_keys().len();
        snap.departed = self.departed;
        snap.fault = self.injector.kind();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> DaemonConfig {
        DaemonConfig {
            initial_nodes: 16,
            tick: Duration::from_millis(4),
            base_loss: 0.02,
            check_every: 3,
            http_port: None,
            ..DaemonConfig::default()
        }
    }

    #[test]
    fn daemon_boots_runs_rounds_and_shuts_down() {
        let daemon = tiny_config().spawn().unwrap();
        std::thread::sleep(Duration::from_millis(120));
        let snap = daemon.snapshot();
        assert_eq!(snap.live, 16);
        assert!(snap.round >= 2, "round {} after 120ms of 4ms ticks", snap.round);
        assert!(snap.checks >= 1);
        assert_eq!(snap.degree_violations, 0, "healthy boot must not violate Obs 5.1");
        daemon.shutdown();
    }

    #[test]
    fn join_and_leave_change_the_live_count() {
        let daemon = tiny_config().spawn().unwrap();
        assert_eq!(daemon.join_nodes(8), Ok(24));
        assert_eq!(daemon.leave_nodes(10), Ok(14));
        let snap = daemon.snapshot();
        assert_eq!(snap.live, 14);
        assert_eq!(snap.departed, 10);
        assert!(daemon.leave_nodes(14).is_err(), "removing the whole fleet is refused");
        daemon.shutdown();
    }

    #[test]
    fn fault_commands_install_and_clear() {
        let daemon = tiny_config().spawn().unwrap();
        assert_eq!(daemon.fault("uniform 0.5"), Ok("uniform".into()));
        assert_eq!(daemon.snapshot().fault, "uniform");
        assert!(daemon.fault("uniform 2.0").is_err());
        assert_eq!(daemon.fault("victims top 4 0.9"), Ok("victims".into()));
        assert_eq!(daemon.fault("none"), Ok("none".into()));
        assert_eq!(daemon.snapshot().fault, "none");
        daemon.shutdown();
    }

    #[test]
    fn snapshot_json_is_well_formed() {
        let snap = MembershipSnapshot { fault: "uni\"form".into(), ..Default::default() };
        let json = snap.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"fault\":\"uni\\\"form\""));
        assert!(json.contains("\"live\":0"));
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let bad = DaemonConfig { view_size: 7, ..tiny_config() };
        assert!(bad.spawn().is_err());
        let bad = DaemonConfig { initial_degree: 3, ..tiny_config() };
        assert!(bad.spawn().is_err());
        let bad = DaemonConfig { base_loss: 1.5, ..tiny_config() };
        assert!(bad.spawn().is_err());
        let bad = DaemonConfig { initial_nodes: 0, ..tiny_config() };
        assert!(bad.spawn().is_err());
    }
}
