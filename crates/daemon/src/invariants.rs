//! The live invariant checker: Observation 5.1 outdegree bounds and the
//! Lemma 6.10 stale-fraction ceiling, evaluated against wall-clock rounds.
//!
//! # Observation 5.1 (exact)
//!
//! Every live node's outdegree must be even and within `[d_L, s]` at every
//! quiescent point. The daemon's event loop runs protocol steps atomically
//! in one thread, so every check sees a quiescent state and any violation
//! is a real protocol bug — the check has no tolerance.
//!
//! # Lemma 6.10 (banded)
//!
//! Id instances of a departed node decay per round by at least the
//! survival factor `1 − (1 − ℓ − δ)·d_L/s²`. The lemma's `ℓ` is the
//! *actual* message-loss probability, which for a live daemon varies as
//! faults are injected and healed — a partition raises `ℓ` to near 1 for
//! its window, slowing decay. A ceiling computed from the configured base
//! loss would therefore under-estimate survivors during and after a
//! partition and fire false alarms precisely in the scenario the soak
//! harness drives. Instead the checker advances each departure cohort's
//! bound incrementally, one check window at a time, using the **realized**
//! loss of that window: `(base drops + injected drops + dead letters) /
//! sends`, measured from the wire counters, and the realized duplication
//! fraction `δ` from the node stats. The ceiling is then the cohorts'
//! total surviving instances (≤ `leaves · s · bound`) over the measured
//! edge count, with a multiplicative headroom and small additive slack for
//! sampling noise (the same banded-verdict style as
//! `sandf_bench::scenario`).

use sandf_core::{NodeId, SfConfig, SfNode};
use sandf_graph::MembershipGraph;
use sandf_markov::decay::survival_factor;

/// Multiplicative headroom on the Lemma 6.10 ceiling. The lemma bounds
/// expectations; a live run is one sample path.
pub const STALE_HEADROOM: f64 = 1.5;

/// Additive slack on the ceiling, absorbing measurement granularity at
/// small edge counts.
pub const STALE_SLACK: f64 = 0.02;

/// One departure cohort: `leaves` nodes that left in the same window, and
/// the current Lemma 6.10 survival bound on their id instances.
#[derive(Clone, Copy, Debug)]
struct Cohort {
    leaves: f64,
    bound: f64,
}

/// Cumulative wire counters at a check point. All fields are totals since
/// daemon start; the checker differences them internally.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct WireTotals {
    /// Messages handed to the send path (outermost layer).
    pub sent: u64,
    /// Drops by every loss source: base loss + injected faults + dead
    /// letters to departed peers.
    pub dropped: u64,
    /// Protocol sends (successful initiate actions), from node stats.
    pub actions: u64,
    /// Duplicating sends among them, from node stats.
    pub duplications: u64,
}

/// The result of one invariant check.
#[derive(Clone, Debug)]
pub struct CheckOutcome {
    /// The round the check ran at.
    pub round: u64,
    /// Live node count.
    pub live: usize,
    /// Mean outdegree over live nodes.
    pub mean_out: f64,
    /// Minimum outdegree.
    pub min_out: usize,
    /// Maximum outdegree.
    pub max_out: usize,
    /// Nodes violating Observation 5.1, with their outdegrees (truncated
    /// to the first [`MAX_REPORTED_VIOLATIONS`]).
    pub degree_violations: Vec<(NodeId, usize)>,
    /// Total Observation 5.1 offenders (may exceed the reported list).
    pub degree_violation_count: usize,
    /// Measured stale-edge fraction: dangling edges / total edges.
    pub stale_fraction: f64,
    /// The banded Lemma 6.10 ceiling (headroom and slack applied).
    pub stale_ceiling: f64,
    /// Whether the stale fraction exceeded the ceiling.
    pub stale_violation: bool,
    /// Weakly connected components of the live overlay.
    pub components: usize,
    /// Realized message-loss rate over the window ending at this check.
    pub window_loss: f64,
    /// Realized duplication fraction over the window.
    pub window_delta: f64,
}

/// Cap on per-check reported degree offenders (the journal is bounded).
pub const MAX_REPORTED_VIOLATIONS: usize = 16;

/// The checker's persistent state across checks.
#[derive(Clone, Debug)]
pub struct InvariantChecker {
    config: SfConfig,
    cohorts: Vec<Cohort>,
    last_round: u64,
    last: WireTotals,
}

impl InvariantChecker {
    /// Creates a checker for a daemon using `config`.
    #[must_use]
    pub fn new(config: SfConfig) -> Self {
        Self { config, cohorts: Vec::new(), last_round: 0, last: WireTotals::default() }
    }

    /// Records a departure of `count` nodes; their survival bound starts
    /// at 1 and begins decaying from the next check window (conservative:
    /// the partial current window is not credited).
    pub fn record_leaves(&mut self, count: usize) {
        if count > 0 {
            self.cohorts.push(Cohort { leaves: count as f64, bound: 1.0 });
        }
    }

    /// Sum over cohorts of the bounded surviving instance count.
    #[must_use]
    pub fn surviving_instances_bound(&self) -> f64 {
        let s = self.config.view_size() as f64;
        self.cohorts.iter().map(|c| c.leaves * s * c.bound).sum()
    }

    /// Runs one check at `round` over the live nodes, with cumulative wire
    /// totals. Nodes must be sampled at a quiescent point (no step in
    /// flight), which the single-threaded event loop guarantees.
    pub fn check<'a, I>(&mut self, round: u64, nodes: I, totals: WireTotals) -> CheckOutcome
    where
        I: IntoIterator<Item = &'a SfNode>,
        I::IntoIter: Clone,
    {
        let nodes = nodes.into_iter();
        let d_l = self.config.lower_threshold();
        let s = self.config.view_size();

        // Observation 5.1, per node, exact.
        let mut degree_violations = Vec::new();
        let mut degree_violation_count = 0;
        let (mut live, mut sum_out, mut min_out, mut max_out) = (0usize, 0usize, usize::MAX, 0);
        for node in nodes.clone() {
            let d = node.out_degree();
            live += 1;
            sum_out += d;
            min_out = min_out.min(d);
            max_out = max_out.max(d);
            if !d.is_multiple_of(2) || d < d_l || d > s {
                degree_violation_count += 1;
                if degree_violations.len() < MAX_REPORTED_VIOLATIONS {
                    degree_violations.push((node.id(), d));
                }
            }
        }
        if live == 0 {
            min_out = 0;
        }

        // Realized per-window loss and duplication rates.
        let d_sent = totals.sent.saturating_sub(self.last.sent);
        let d_dropped = totals.dropped.saturating_sub(self.last.dropped);
        let d_actions = totals.actions.saturating_sub(self.last.actions);
        let d_dup = totals.duplications.saturating_sub(self.last.duplications);
        let window_loss =
            if d_sent == 0 { 0.0 } else { (d_dropped.min(d_sent)) as f64 / d_sent as f64 };
        let window_delta =
            if d_actions == 0 { 0.0 } else { (d_dup.min(d_actions)) as f64 / d_actions as f64 };

        // Advance every cohort's Lemma 6.9/6.10 bound across the window.
        let elapsed = round.saturating_sub(self.last_round);
        if elapsed > 0 {
            // `ℓ + δ` capped below 1 so the factor stays a probability.
            let (l, d) = if window_loss + window_delta >= 1.0 {
                (window_loss.min(0.999), (1.0 - window_loss.min(0.999)).min(window_delta))
            } else {
                (window_loss, window_delta)
            };
            let factor = survival_factor(l, d, d_l, s).clamp(0.0, 1.0);
            let step = factor.powi(i32::try_from(elapsed.min(1 << 30)).unwrap_or(i32::MAX));
            for cohort in &mut self.cohorts {
                cohort.bound *= step;
            }
            // Prune cohorts whose bounded contribution is below one-tenth
            // of an edge; they can no longer move the ceiling.
            let s_f = s as f64;
            self.cohorts.retain(|c| c.leaves * s_f * c.bound >= 0.1);
        }
        self.last_round = round;
        self.last = totals;

        // Lemma 6.10 ceiling against the measured overlay.
        let graph = MembershipGraph::from_nodes(nodes);
        let total_edges = graph.edge_count();
        let stale_fraction = if total_edges == 0 {
            0.0
        } else {
            graph.dangling_edge_count() as f64 / total_edges as f64
        };
        let raw_ceiling = if total_edges == 0 {
            1.0
        } else {
            (self.surviving_instances_bound() / total_edges as f64).min(1.0)
        };
        let stale_ceiling = (raw_ceiling * STALE_HEADROOM + STALE_SLACK).min(1.0);
        let stale_violation = stale_fraction > stale_ceiling;

        CheckOutcome {
            round,
            live,
            mean_out: if live == 0 { 0.0 } else { sum_out as f64 / live as f64 },
            min_out,
            max_out,
            degree_violations,
            degree_violation_count,
            stale_fraction,
            stale_ceiling,
            stale_violation,
            components: graph.weakly_connected_components(),
            window_loss,
            window_delta,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> SfConfig {
        SfConfig::new(12, 4).unwrap()
    }

    fn nodes(n: u64, degree: u64) -> Vec<SfNode> {
        (0..n)
            .map(|i| {
                let ids: Vec<NodeId> = (1..=degree).map(|k| NodeId::new((i + k) % n)).collect();
                SfNode::with_view(NodeId::new(i), config(), &ids).unwrap()
            })
            .collect()
    }

    fn totals(sent: u64, dropped: u64) -> WireTotals {
        WireTotals { sent, dropped, actions: sent, duplications: 0 }
    }

    #[test]
    fn healthy_fleet_passes_both_invariants() {
        let fleet = nodes(32, 6);
        let mut checker = InvariantChecker::new(config());
        let outcome = checker.check(10, fleet.iter(), totals(1000, 50));
        assert_eq!(outcome.live, 32);
        assert!(outcome.degree_violations.is_empty());
        assert_eq!(outcome.degree_violation_count, 0);
        assert!(!outcome.stale_violation);
        assert_eq!(outcome.stale_fraction, 0.0);
        assert!((outcome.mean_out - 6.0).abs() < 1e-9);
        assert_eq!(outcome.components, 1);
        assert!((outcome.window_loss - 0.05).abs() < 1e-9);
    }

    #[test]
    fn odd_and_out_of_band_degrees_are_flagged() {
        let mut fleet = nodes(8, 6);
        // Violate parity on node 0 and the lower bound on node 1 (cleared
        // to degree 0 < d_L = 4, which is even but out of band).
        fleet[0].view_mut().insert_at_first_empty(NodeId::new(3)).unwrap();
        let slots: Vec<usize> =
            (0..config().view_size()).filter(|&i| fleet[1].view().entry(i).is_some()).collect();
        for i in slots {
            fleet[1].view_mut().clear_slot(i);
        }
        let mut checker = InvariantChecker::new(config());
        let outcome = checker.check(1, fleet.iter(), totals(10, 0));
        assert_eq!(outcome.degree_violation_count, 2);
        let flagged: Vec<u64> =
            outcome.degree_violations.iter().map(|(id, _)| id.as_u64()).collect();
        assert!(flagged.contains(&0) && flagged.contains(&1));
    }

    #[test]
    fn fresh_departure_cohort_allows_its_stale_edges() {
        // 24 nodes, each pointing at the next 6; drop the last 4 nodes so
        // a sixth of edges dangle.
        let fleet = nodes(24, 6);
        let live: Vec<SfNode> = fleet[..20].to_vec();
        let mut checker = InvariantChecker::new(config());
        checker.record_leaves(4);
        let outcome = checker.check(1, live.iter(), totals(100, 0));
        assert!(outcome.stale_fraction > 0.0);
        // Ceiling bound: 4 leavers × s=12 instances ≥ their actual ≤ 24
        // dangling edges; with headroom the measured fraction must pass.
        assert!(
            !outcome.stale_violation,
            "stale {} vs ceiling {}",
            outcome.stale_fraction, outcome.stale_ceiling
        );
    }

    #[test]
    fn unexplained_stale_edges_violate_the_ceiling() {
        // Same dangling edges but no recorded departures: nothing licenses
        // the staleness, so the ceiling (just the slack) is exceeded.
        let fleet = nodes(24, 6);
        let live: Vec<SfNode> = fleet[..20].to_vec();
        let mut checker = InvariantChecker::new(config());
        let outcome = checker.check(1, live.iter(), totals(100, 0));
        assert!(outcome.stale_fraction > STALE_SLACK);
        assert!(outcome.stale_violation);
    }

    #[test]
    fn high_loss_windows_slow_the_bound_decay() {
        let fleet = nodes(16, 6);
        let mut lossy = InvariantChecker::new(config());
        let mut clean = InvariantChecker::new(config());
        lossy.record_leaves(8);
        clean.record_leaves(8);
        // 100 rounds at 90% realized loss vs 0% loss.
        let _ = lossy.check(100, fleet.iter(), totals(1000, 900));
        let _ = clean.check(100, fleet.iter(), totals(1000, 0));
        assert!(
            lossy.surviving_instances_bound() > clean.surviving_instances_bound() * 2.0,
            "lossy {} vs clean {}",
            lossy.surviving_instances_bound(),
            clean.surviving_instances_bound()
        );
    }

    #[test]
    fn cohorts_decay_toward_zero_and_are_pruned() {
        let fleet = nodes(16, 6);
        let mut checker = InvariantChecker::new(config());
        checker.record_leaves(4);
        let mut round = 0;
        let mut sent = 0;
        for _ in 0..60 {
            round += 50;
            sent += 1000;
            let _ = checker.check(round, fleet.iter(), totals(sent, 0));
        }
        assert_eq!(checker.surviving_instances_bound(), 0.0, "cohort must be pruned");
    }

    #[test]
    fn window_rates_are_deltas_not_totals() {
        let fleet = nodes(8, 6);
        let mut checker = InvariantChecker::new(config());
        let o1 = checker.check(10, fleet.iter(), totals(1000, 500));
        assert!((o1.window_loss - 0.5).abs() < 1e-9);
        // Second window: 1000 more sends, zero more drops.
        let o2 = checker.check(20, fleet.iter(), totals(2000, 500));
        assert_eq!(o2.window_loss, 0.0);
    }
}
