//! # sandf-runtime — S&F end-to-end on real threads and transports
//!
//! The paper argues S&F is "practical, in that it can be implemented in
//! fault-prone networks without any bookkeeping" (Section 1). This crate is
//! that implementation: each node is a thread that drains its transport
//! (receive steps) and fires an action on a periodic tick (the loose
//! synchronization assumed in Section 4.1), over any
//! [`sandf_net::Transport`] — in-memory lossy channels or UDP.
//!
//! Unlike the `sandf-sim` simulator, execution here is genuinely
//! concurrent: messages interleave, ticks drift, and losses come from the
//! transport. The protocol's invariants (Observation 5.1) and convergence
//! behavior must — and, per the tests, do — survive that.
//!
//! ## Example
//!
//! ```no_run
//! use std::time::Duration;
//! use sandf_core::SfConfig;
//! use sandf_runtime::{Cluster, ClusterConfig};
//!
//! let cluster = Cluster::launch(ClusterConfig {
//!     n: 32,
//!     protocol: SfConfig::new(16, 6)?,
//!     loss: 0.05,
//!     tick: Duration::from_millis(5),
//!     seed: 42,
//!     initial_out_degree: 6,
//! });
//! cluster.run_for(Duration::from_secs(1));
//! assert!(cluster.snapshot_graph().is_weakly_connected());
//! let _final_states = cluster.shutdown();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cluster;
mod node;

pub use cluster::{Cluster, ClusterConfig};
pub use node::{NodeCounters, NodeHandle, RuntimeConfig};
