//! A whole-cluster harness: `n` threaded nodes over a lossy in-memory
//! network.

use std::time::Duration;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use sandf_core::{NodeId, NodeStats, SfConfig, SfNode};
use sandf_graph::MembershipGraph;
use sandf_net::{AddressBook, InMemoryNetwork, LossyTransport, TransportError, UdpTransport};
use sandf_obs::MetricsRegistry;

use crate::node::{NodeCounters, NodeHandle, RuntimeConfig};

/// Parameters for launching a cluster.
#[derive(Clone, Copy, Debug)]
pub struct ClusterConfig {
    /// Number of nodes.
    pub n: usize,
    /// Protocol parameters.
    pub protocol: SfConfig,
    /// Uniform message-loss rate of the in-memory network.
    pub loss: f64,
    /// Per-node action interval.
    pub tick: Duration,
    /// Base RNG seed (node `i` gets `seed + i + 1`; the network gets
    /// `seed`).
    pub seed: u64,
    /// Initial outdegree of the circulant bootstrap topology (even).
    pub initial_out_degree: usize,
}

/// A running cluster of threaded S&F nodes.
///
/// Execution is genuinely concurrent, so runs are *not* bit-reproducible
/// like the `sandf-sim` simulator — this harness exists to demonstrate the
/// protocol end-to-end on a real (if in-process) network, including under
/// loss.
#[derive(Debug)]
pub struct Cluster {
    handles: Vec<NodeHandle>,
    net: ClusterNet,
    config: ClusterConfig,
    next_id: u64,
    churn_rng: StdRng,
    /// Shared `runtime.node.*` counters, when launched observed. Joiners
    /// inherit them.
    counters: Option<NodeCounters>,
}

/// The substrate a cluster runs over.
#[derive(Debug)]
enum ClusterNet {
    Memory(InMemoryNetwork),
    Udp { book: AddressBook, loss: f64 },
}

impl Cluster {
    /// Launches the cluster with a circulant bootstrap topology (node `i`
    /// initially knows `i+1 … i+d0 mod n`).
    ///
    /// # Panics
    ///
    /// Panics on invalid parameters (odd or oversized initial outdegree,
    /// `n` too small, loss outside `[0, 1]`).
    #[must_use]
    pub fn launch(config: ClusterConfig) -> Self {
        Self::launch_inner(config, None)
    }

    /// Launches the cluster like [`launch`](Self::launch), additionally
    /// recording observability counters in `registry`: the in-memory hub's
    /// `net.memory.*` triple and cluster-wide `runtime.node.*` counters
    /// shared by every node (joiners included). After
    /// [`shutdown`](Self::shutdown) the `runtime.node.*` counters equal the
    /// summed per-node [`NodeStats`] exactly.
    ///
    /// # Panics
    ///
    /// Panics on the same parameter conditions as [`launch`](Self::launch).
    #[must_use]
    pub fn launch_observed(config: ClusterConfig, registry: &MetricsRegistry) -> Self {
        Self::launch_inner(config, Some(registry))
    }

    fn launch_inner(config: ClusterConfig, registry: Option<&MetricsRegistry>) -> Self {
        assert!(config.n >= 3, "cluster needs at least 3 nodes");
        assert!(config.initial_out_degree.is_multiple_of(2), "initial outdegree must be even");
        assert!(config.initial_out_degree < config.n, "initial outdegree too large");
        let network = match registry {
            None => InMemoryNetwork::new(config.loss, config.seed),
            Some(r) => InMemoryNetwork::with_metrics(config.loss, config.seed, r),
        };
        let counters = registry.map(|r| NodeCounters::register(r, "runtime.node"));
        let handles = (0..config.n as u64)
            .map(|i| {
                let bootstrap: Vec<NodeId> = (1..=config.initial_out_degree as u64)
                    .map(|k| NodeId::new((i + k) % config.n as u64))
                    .collect();
                let node = SfNode::with_view(NodeId::new(i), config.protocol, &bootstrap)
                    .expect("circulant bootstrap satisfies the joining rule");
                let transport = network.endpoint(NodeId::new(i));
                let runtime = RuntimeConfig { tick: config.tick, seed: config.seed + i + 1 };
                match &counters {
                    None => NodeHandle::spawn(node, transport, runtime),
                    Some(c) => NodeHandle::spawn_observed(node, transport, runtime, c.clone()),
                }
            })
            .collect();
        Self {
            handles,
            net: ClusterNet::Memory(network),
            next_id: config.n as u64,
            churn_rng: StdRng::seed_from_u64(config.seed ^ 0x5f5f_5f5f),
            config,
            counters,
        }
    }

    /// Launches the cluster over real UDP loopback sockets. Loopback itself
    /// is effectively lossless, so the configured loss rate is injected on
    /// the send path ([`LossyTransport`]).
    ///
    /// # Errors
    ///
    /// Returns [`TransportError`] if a socket cannot be bound.
    ///
    /// # Panics
    ///
    /// Panics on the same parameter conditions as [`launch`](Self::launch).
    pub fn launch_udp(config: ClusterConfig) -> Result<Self, TransportError> {
        assert!(config.n >= 3, "cluster needs at least 3 nodes");
        assert!(config.initial_out_degree.is_multiple_of(2), "initial outdegree must be even");
        assert!(config.initial_out_degree < config.n, "initial outdegree too large");
        let book = AddressBook::new();
        let mut handles = Vec::with_capacity(config.n);
        for i in 0..config.n as u64 {
            let bootstrap: Vec<NodeId> = (1..=config.initial_out_degree as u64)
                .map(|k| NodeId::new((i + k) % config.n as u64))
                .collect();
            let node = SfNode::with_view(NodeId::new(i), config.protocol, &bootstrap)
                .expect("circulant bootstrap satisfies the joining rule");
            let udp = UdpTransport::bind_loopback(NodeId::new(i), &book)?;
            let transport = LossyTransport::new(udp, config.loss, config.seed + 7 * i);
            handles.push(NodeHandle::spawn(
                node,
                transport,
                RuntimeConfig { tick: config.tick, seed: config.seed + i + 1 },
            ));
        }
        Ok(Self {
            handles,
            net: ClusterNet::Udp { book, loss: config.loss },
            next_id: config.n as u64,
            churn_rng: StdRng::seed_from_u64(config.seed ^ 0x5f5f_5f5f),
            config,
            counters: None,
        })
    }

    /// Admits a new node at runtime, bootstrapped with `d_L` ids copied
    /// from a random live node's snapshot (the Section 5 joining rule).
    /// Returns the joiner's id.
    ///
    /// # Errors
    ///
    /// Returns [`TransportError`] if a UDP socket cannot be bound; the
    /// in-memory substrate never fails.
    ///
    /// # Panics
    ///
    /// Panics if the cluster is empty or no sponsor has `d_L` live ids.
    pub fn join(&mut self) -> Result<NodeId, TransportError> {
        assert!(!self.handles.is_empty(), "cannot join an empty cluster");
        let sponsor_idx = self.churn_rng.gen_range(0..self.handles.len());
        let snapshot = self.handles[sponsor_idx].snapshot();
        let mut pool: Vec<NodeId> = snapshot.view().ids().collect();
        pool.shuffle(&mut self.churn_rng);
        let d_l = self.config.protocol.lower_threshold();
        assert!(pool.len() >= d_l, "sponsor has too few ids to satisfy the joining rule");
        let bootstrap: Vec<NodeId> = pool.into_iter().take(d_l).collect();

        let id = NodeId::new(self.next_id);
        self.next_id += 1;
        let node = SfNode::with_view(id, self.config.protocol, &bootstrap)
            .expect("bootstrap satisfies the joining rule");
        let runtime =
            RuntimeConfig { tick: self.config.tick, seed: self.config.seed + id.as_u64() + 1 };
        let handle = match &self.net {
            ClusterNet::Memory(network) => match &self.counters {
                None => NodeHandle::spawn(node, network.endpoint(id), runtime),
                Some(c) => {
                    NodeHandle::spawn_observed(node, network.endpoint(id), runtime, c.clone())
                }
            },
            ClusterNet::Udp { book, loss } => {
                let udp = UdpTransport::bind_loopback(id, book)?;
                let transport = LossyTransport::new(udp, *loss, self.config.seed + 7 * id.as_u64());
                NodeHandle::spawn(node, transport, runtime)
            }
        };
        self.handles.push(handle);
        Ok(id)
    }

    /// Crashes the node with the given id (stops its thread and removes it
    /// from the network). Its id lingers in other views until the protocol
    /// purges it (Section 6.5.2). Returns the final state, or `None` if the
    /// id is not running here.
    pub fn kill(&mut self, id: NodeId) -> Option<SfNode> {
        let pos = self.handles.iter().position(|h| h.id() == id)?;
        let handle = self.handles.swap_remove(pos);
        match &self.net {
            ClusterNet::Memory(network) => network.disconnect(id),
            ClusterNet::Udp { book, .. } => book.remove(id),
        }
        Some(handle.stop())
    }

    /// The ids of the currently running nodes.
    #[must_use]
    pub fn ids(&self) -> Vec<NodeId> {
        self.handles.iter().map(NodeHandle::id).collect()
    }

    /// Lets the cluster run for the given wall-clock duration.
    pub fn run_for(&self, duration: Duration) {
        std::thread::sleep(duration);
    }

    /// The underlying in-memory network (for loss counters), if this
    /// cluster runs on one.
    #[must_use]
    pub fn network(&self) -> Option<&InMemoryNetwork> {
        match &self.net {
            ClusterNet::Memory(network) => Some(network),
            ClusterNet::Udp { .. } => None,
        }
    }

    /// Number of nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.handles.len()
    }

    /// Whether the cluster has no nodes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.handles.is_empty()
    }

    /// Consistent-per-node snapshots of all protocol states.
    #[must_use]
    pub fn snapshot_nodes(&self) -> Vec<SfNode> {
        self.handles.iter().map(NodeHandle::snapshot).collect()
    }

    /// Sum of the running nodes' per-node counters (snapshot-based, so the
    /// total is taken node by node while the cluster keeps running).
    #[must_use]
    pub fn aggregate_stats(&self) -> NodeStats {
        let mut total = NodeStats::new();
        for handle in &self.handles {
            total.merge(handle.snapshot().stats());
        }
        total
    }

    /// A membership-graph snapshot of the running cluster.
    #[must_use]
    pub fn snapshot_graph(&self) -> MembershipGraph {
        MembershipGraph::from_nodes(&self.snapshot_nodes())
    }

    /// Stops every node and returns the final protocol states.
    #[must_use]
    pub fn shutdown(self) -> Vec<SfNode> {
        self.handles.into_iter().map(NodeHandle::stop).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(loss: f64) -> ClusterConfig {
        ClusterConfig {
            n: 16,
            protocol: SfConfig::new(12, 4).unwrap(),
            loss,
            tick: Duration::from_millis(1),
            seed: 7,
            initial_out_degree: 4,
        }
    }

    #[test]
    fn cluster_runs_and_stays_connected() {
        let cluster = Cluster::launch(config(0.0));
        cluster.run_for(Duration::from_millis(300));
        let graph = cluster.snapshot_graph();
        assert_eq!(graph.node_count(), 16);
        assert!(graph.is_weakly_connected(), "cluster partitioned");
        let nodes = cluster.shutdown();
        let total_actions: u64 = nodes.iter().map(|n| n.stats().initiated).sum();
        assert!(total_actions > 16 * 50, "only {total_actions} actions");
        for node in &nodes {
            assert_eq!(node.out_degree() % 2, 0);
            assert!(node.out_degree() >= 4);
            assert!(node.out_degree() <= 12);
        }
    }

    #[test]
    fn cluster_survives_heavy_loss() {
        let cluster = Cluster::launch(config(0.2));
        cluster.run_for(Duration::from_millis(300));
        let network = cluster.network().expect("memory cluster");
        let dropped = network.dropped();
        let sent = network.sent();
        assert!(dropped > 0, "loss process never fired");
        let rate = dropped as f64 / sent as f64;
        assert!((rate - 0.2).abs() < 0.07, "observed loss {rate}");
        let nodes = cluster.shutdown();
        // The duplication floor must have kept every node in the band.
        for node in &nodes {
            assert!(node.out_degree() >= 4, "node fell below d_L");
        }
        let duplications: u64 = nodes.iter().map(|n| n.stats().duplications).sum();
        assert!(duplications > 0, "loss compensation never kicked in");
    }

    #[test]
    fn snapshots_do_not_disturb_the_run() {
        let cluster = Cluster::launch(config(0.05));
        for _ in 0..10 {
            let _ = cluster.snapshot_graph();
            std::thread::sleep(Duration::from_millis(10));
        }
        let nodes = cluster.shutdown();
        assert_eq!(nodes.len(), 16);
    }

    #[test]
    fn runtime_churn_join_and_kill() {
        let mut cluster = Cluster::launch(config(0.02));
        cluster.run_for(Duration::from_millis(200));
        let joiner = cluster.join().expect("memory join cannot fail");
        assert_eq!(cluster.len(), 17);
        let victim = cluster.ids()[0];
        let final_state = cluster.kill(victim).expect("victim was running");
        assert_eq!(final_state.id(), victim);
        assert_eq!(cluster.len(), 16);
        assert!(cluster.kill(victim).is_none(), "double kill must be None");
        cluster.run_for(Duration::from_millis(300));
        // The joiner integrates: someone should know it by now.
        let graph = cluster.snapshot_graph();
        let joiner_in = graph.in_degree(joiner).unwrap_or(0);
        let nodes = cluster.shutdown();
        assert_eq!(nodes.len(), 16);
        assert!(
            joiner_in > 0 || nodes.iter().any(|n| n.view().contains(joiner)),
            "joiner never got represented"
        );
    }

    #[test]
    fn udp_cluster_end_to_end() {
        let cluster = Cluster::launch_udp(ClusterConfig {
            n: 8,
            protocol: SfConfig::new(12, 4).unwrap(),
            loss: 0.05,
            tick: Duration::from_millis(2),
            seed: 77,
            initial_out_degree: 4,
        })
        .expect("loopback sockets bind");
        cluster.run_for(Duration::from_millis(500));
        assert!(cluster.network().is_none(), "udp cluster has no memory hub");
        let nodes = cluster.shutdown();
        let graph = MembershipGraph::from_nodes(&nodes);
        assert!(graph.is_weakly_connected(), "udp cluster partitioned");
        let stored: u64 = nodes.iter().map(|n| n.stats().stored).sum();
        assert!(stored > 0, "no UDP datagram was ever delivered");
        for node in &nodes {
            assert_eq!(node.out_degree() % 2, 0);
            assert!(node.out_degree() >= 4 && node.out_degree() <= 12);
        }
    }
}
