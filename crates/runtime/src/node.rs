//! A threaded runtime for one protocol node.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sandf_core::{InitiateOutcome, NodeId, ReceiveOutcome, SfNode};
use sandf_net::Transport;
use sandf_obs::{CounterHandle, MetricsRegistry};

/// Per-node runtime parameters.
#[derive(Clone, Copy, Debug)]
pub struct RuntimeConfig {
    /// Interval between initiated actions. The paper assumes nodes are
    /// "loosely synchronized among themselves, so that they may all
    /// independently invoke actions at a similar rate" (Section 4.1) —
    /// every node runs the same tick.
    pub tick: Duration,
    /// Seed for this node's RNG.
    pub seed: u64,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        Self { tick: Duration::from_millis(10), seed: 0 }
    }
}

/// Live `sandf-obs` counters for a node's event loop, mirroring
/// [`sandf_core::NodeStats`] field for field. Counters update inside the
/// node thread as events happen, so a scraper can watch a running node (or,
/// with shared handles, a whole cluster) without taking snapshots; after
/// the thread joins they equal the final `NodeStats` exactly.
#[derive(Clone, Debug)]
pub struct NodeCounters {
    /// Initiate steps executed (`NodeStats::initiated`).
    pub initiated: CounterHandle,
    /// Initiations that were self-loops (`NodeStats::self_loops`).
    pub self_loops: CounterHandle,
    /// Messages sent (`NodeStats::sent`).
    pub sent: CounterHandle,
    /// Sends that duplicated (`NodeStats::duplications`).
    pub duplications: CounterHandle,
    /// Received messages stored (`NodeStats::stored`).
    pub stored: CounterHandle,
    /// Received messages deleted (`NodeStats::deletions`).
    pub deletions: CounterHandle,
}

impl NodeCounters {
    /// Registers `<prefix>.initiated`, `.self_loops`, `.sent`,
    /// `.duplications`, `.stored`, and `.deletions` in `registry`. Use a
    /// shared prefix (e.g. `runtime.node`) for cluster-wide aggregates, or
    /// a per-node prefix (e.g. `node.3`) for individual accounting.
    #[must_use]
    pub fn register(registry: &MetricsRegistry, prefix: &str) -> Self {
        Self {
            initiated: registry.counter(&format!("{prefix}.initiated")),
            self_loops: registry.counter(&format!("{prefix}.self_loops")),
            sent: registry.counter(&format!("{prefix}.sent")),
            duplications: registry.counter(&format!("{prefix}.duplications")),
            stored: registry.counter(&format!("{prefix}.stored")),
            deletions: registry.counter(&format!("{prefix}.deletions")),
        }
    }
}

/// A handle to a running protocol node.
///
/// The thread alternates between draining the transport (executing
/// `S&F-Receive` steps) and firing `S&F-InitiateAction` on its tick. All
/// protocol state lives behind a mutex so tests and applications can take
/// consistent [`snapshot`](Self::snapshot)s while the node runs.
#[derive(Debug)]
pub struct NodeHandle {
    id: NodeId,
    state: Arc<Mutex<SfNode>>,
    shutdown: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl NodeHandle {
    /// Spawns the node's event loop on a dedicated thread.
    #[must_use]
    pub fn spawn<T>(node: SfNode, transport: T, config: RuntimeConfig) -> Self
    where
        T: Transport + Send + 'static,
    {
        Self::spawn_inner(node, transport, config, None)
    }

    /// Spawns the node's event loop with live [`NodeCounters`] updated from
    /// inside the thread as events happen.
    #[must_use]
    pub fn spawn_observed<T>(
        node: SfNode,
        transport: T,
        config: RuntimeConfig,
        counters: NodeCounters,
    ) -> Self
    where
        T: Transport + Send + 'static,
    {
        Self::spawn_inner(node, transport, config, Some(counters))
    }

    fn spawn_inner<T>(
        node: SfNode,
        mut transport: T,
        config: RuntimeConfig,
        counters: Option<NodeCounters>,
    ) -> Self
    where
        T: Transport + Send + 'static,
    {
        let id = node.id();
        let state = Arc::new(Mutex::new(node));
        let shutdown = Arc::new(AtomicBool::new(false));
        let thread_state = Arc::clone(&state);
        let thread_shutdown = Arc::clone(&shutdown);
        let thread = std::thread::Builder::new()
            .name(format!("sandf-{id}"))
            .spawn(move || {
                let mut rng = StdRng::seed_from_u64(config.seed);
                let mut next_tick = Instant::now() + config.tick;
                let mut inbox = Vec::new();
                while !thread_shutdown.load(Ordering::Relaxed) {
                    // Receive steps: drain everything pending in one
                    // batched wakeup (one syscall sweep on UDP transports).
                    inbox.clear();
                    let _ = transport.recv_batch(&mut inbox, usize::MAX);
                    for message in inbox.drain(..) {
                        let outcome = thread_state.lock().receive(message, &mut rng);
                        if let Some(c) = &counters {
                            match outcome {
                                ReceiveOutcome::Stored { .. } => c.stored.inc(),
                                ReceiveOutcome::Deleted => c.deletions.inc(),
                            }
                        }
                    }
                    // Initiate step on the tick.
                    if Instant::now() >= next_tick {
                        let outcome = thread_state.lock().initiate(&mut rng);
                        if let Some(c) = &counters {
                            c.initiated.inc();
                            match &outcome {
                                InitiateOutcome::SelfLoop => c.self_loops.inc(),
                                InitiateOutcome::Sent { duplicated, .. } => {
                                    c.sent.inc();
                                    if *duplicated {
                                        c.duplications.inc();
                                    }
                                }
                            }
                        }
                        if let InitiateOutcome::Sent { to, message, .. } = outcome {
                            // Send & forget: errors are indistinguishable
                            // from loss as far as the protocol cares.
                            let _ = transport.send(to, message);
                        }
                        next_tick += config.tick;
                    }
                    std::thread::sleep(Duration::from_micros(200));
                }
            })
            .expect("failed to spawn node thread");
        Self { id, state, shutdown, thread: Some(thread) }
    }

    /// This node's id.
    #[must_use]
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// A consistent snapshot of the node's current state.
    #[must_use]
    pub fn snapshot(&self) -> SfNode {
        self.state.lock().clone()
    }

    /// Signals shutdown, joins the thread, and returns the final state.
    ///
    /// # Panics
    ///
    /// Panics if the node thread itself panicked.
    pub fn stop(mut self) -> SfNode {
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(thread) = self.thread.take() {
            thread.join().expect("node thread panicked");
        }
        let state = self.state.lock().clone();
        state
    }
}

impl Drop for NodeHandle {
    fn drop(&mut self) {
        // Never leave a detached runaway thread behind; joining here is
        // cheap because the loop polls the flag every 200 µs.
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use sandf_core::SfConfig;
    use sandf_net::InMemoryNetwork;

    use super::*;

    fn id(raw: u64) -> NodeId {
        NodeId::new(raw)
    }

    #[test]
    fn two_nodes_exchange_ids() {
        let config = SfConfig::new(8, 2).unwrap();
        let net = InMemoryNetwork::new(0.0, 1);
        let a = SfNode::with_view(id(0), config, &[id(1), id(1)]).unwrap();
        let b = SfNode::with_view(id(1), config, &[id(0), id(0)]).unwrap();
        let ha = NodeHandle::spawn(
            a,
            net.endpoint(id(0)),
            RuntimeConfig { tick: Duration::from_millis(1), seed: 10 },
        );
        let hb = NodeHandle::spawn(
            b,
            net.endpoint(id(1)),
            RuntimeConfig { tick: Duration::from_millis(1), seed: 11 },
        );
        std::thread::sleep(Duration::from_millis(150));
        let fa = ha.stop();
        let fb = hb.stop();
        assert!(fa.stats().initiated > 20, "node a barely ran");
        assert!(fa.stats().stored + fb.stats().stored > 0, "no message was ever delivered");
        // Observation 5.1 must hold at whatever instant we stopped.
        assert_eq!(fa.out_degree() % 2, 0);
        assert_eq!(fb.out_degree() % 2, 0);
        assert!(fa.out_degree() >= 2 && fa.out_degree() <= 8);
    }

    #[test]
    fn snapshot_works_while_running() {
        let config = SfConfig::new(8, 2).unwrap();
        let net = InMemoryNetwork::new(0.0, 2);
        let a = SfNode::with_view(id(0), config, &[id(1), id(1)]).unwrap();
        let _ep1 = net.endpoint(id(1));
        let handle = NodeHandle::spawn(
            a,
            net.endpoint(id(0)),
            RuntimeConfig { tick: Duration::from_millis(1), seed: 3 },
        );
        std::thread::sleep(Duration::from_millis(50));
        let snap = handle.snapshot();
        assert_eq!(snap.id(), id(0));
        assert!(snap.stats().initiated > 0);
        drop(handle); // Drop must not hang.
    }

    #[test]
    fn observed_counters_equal_final_stats() {
        let config = SfConfig::new(8, 2).unwrap();
        let net = InMemoryNetwork::new(0.0, 4);
        let registry = MetricsRegistry::new();
        let a = SfNode::with_view(id(0), config, &[id(1), id(1)]).unwrap();
        let b = SfNode::with_view(id(1), config, &[id(0), id(0)]).unwrap();
        let ha = NodeHandle::spawn_observed(
            a,
            net.endpoint(id(0)),
            RuntimeConfig { tick: Duration::from_millis(1), seed: 20 },
            NodeCounters::register(&registry, "node.0"),
        );
        let hb = NodeHandle::spawn_observed(
            b,
            net.endpoint(id(1)),
            RuntimeConfig { tick: Duration::from_millis(1), seed: 21 },
            NodeCounters::register(&registry, "node.1"),
        );
        std::thread::sleep(Duration::from_millis(150));
        let fa = ha.stop();
        let fb = hb.stop();
        for (prefix, stats) in [("node.0", fa.stats()), ("node.1", fb.stats())] {
            let counter = |field: &str| {
                registry.counter_value(&format!("{prefix}.{field}")).expect("registered")
            };
            assert_eq!(counter("initiated"), stats.initiated);
            assert_eq!(counter("self_loops"), stats.self_loops);
            assert_eq!(counter("sent"), stats.sent);
            assert_eq!(counter("duplications"), stats.duplications);
            assert_eq!(counter("stored"), stats.stored);
            assert_eq!(counter("deletions"), stats.deletions);
        }
    }

    #[test]
    fn drop_joins_the_thread() {
        let config = SfConfig::new(8, 2).unwrap();
        let net = InMemoryNetwork::new(0.0, 3);
        let a = SfNode::new(id(0), SfConfig::lossless(8).unwrap());
        let _ = config;
        let handle = NodeHandle::spawn(a, net.endpoint(id(0)), RuntimeConfig::default());
        drop(handle);
        // Reaching here without deadlock is the assertion.
    }
}
