//! Property tests of the wire codec: total decode, exact roundtrip.

use proptest::prelude::*;
use sandf_core::{Message, NodeId};
use sandf_net::codec::{decode, encode, WIRE_LEN};

proptest! {
    /// Every message roundtrips bit-exactly.
    #[test]
    fn roundtrip(sender in any::<u64>(), payload in any::<u64>(), dependent in any::<bool>()) {
        let msg = Message::new(NodeId::new(sender), NodeId::new(payload), dependent);
        let bytes = encode(msg);
        prop_assert_eq!(bytes.len(), WIRE_LEN);
        prop_assert_eq!(decode(&bytes).unwrap(), msg);
    }

    /// Decoding arbitrary bytes never panics, and succeeds only for
    /// well-formed datagrams.
    #[test]
    fn decode_is_total(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        match decode(&bytes) {
            Ok(msg) => {
                prop_assert_eq!(bytes.len(), WIRE_LEN);
                // A successful decode must re-encode to the same bytes.
                let reencoded = encode(msg);
                prop_assert_eq!(reencoded.as_ref(), &bytes[..]);
            }
            Err(_) => {
                // Errors are expected for wrong lengths or bad flags.
            }
        }
    }

    /// Any 17-byte datagram with a clean flags byte decodes.
    #[test]
    fn clean_flag_datagrams_decode(head in proptest::collection::vec(any::<u8>(), 16), flag in 0u8..=1) {
        let mut bytes = head;
        bytes.push(flag);
        let msg = decode(&bytes).unwrap();
        prop_assert_eq!(msg.dependent, flag == 1);
    }
}
