//! Property tests of the wire codec: total decode, exact roundtrip.

use proptest::prelude::*;
use sandf_core::{Message, NodeId};
use sandf_net::codec::{decode, encode, WIRE_LEN};

proptest! {
    /// Every message roundtrips bit-exactly.
    #[test]
    fn roundtrip(sender in any::<u64>(), payload in any::<u64>(), dependent in any::<bool>()) {
        let msg = Message::new(NodeId::new(sender), NodeId::new(payload), dependent);
        let bytes = encode(msg);
        prop_assert_eq!(bytes.len(), WIRE_LEN);
        prop_assert_eq!(decode(&bytes).unwrap(), msg);
    }

    /// Decoding arbitrary bytes never panics, and succeeds only for
    /// well-formed datagrams.
    #[test]
    fn decode_is_total(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        match decode(&bytes) {
            Ok(msg) => {
                prop_assert_eq!(bytes.len(), WIRE_LEN);
                // A successful decode must re-encode to the same bytes.
                let reencoded = encode(msg);
                prop_assert_eq!(reencoded.as_ref(), &bytes[..]);
            }
            Err(_) => {
                // Errors are expected for wrong lengths or bad flags.
            }
        }
    }

    /// Any 17-byte datagram with a clean flags byte decodes.
    #[test]
    fn clean_flag_datagrams_decode(head in proptest::collection::vec(any::<u8>(), 16), flag in 0u8..=1) {
        let mut bytes = head;
        bytes.push(flag);
        let msg = decode(&bytes).unwrap();
        prop_assert_eq!(msg.dependent, flag == 1);
    }

    /// Truncating a valid frame at any point yields `BadLength`, never a
    /// panic or a bogus message.
    #[test]
    fn truncated_frames_are_rejected(
        sender in any::<u64>(),
        payload in any::<u64>(),
        dependent in any::<bool>(),
        cut in 0usize..WIRE_LEN,
    ) {
        let bytes = encode(Message::new(NodeId::new(sender), NodeId::new(payload), dependent));
        prop_assert!(decode(&bytes[..cut]).is_err(), "len {} must be rejected", cut);
    }

    /// Extending a valid frame with trailing garbage yields `BadLength`.
    #[test]
    fn oversized_frames_are_rejected(
        sender in any::<u64>(),
        payload in any::<u64>(),
        dependent in any::<bool>(),
        tail in proptest::collection::vec(any::<u8>(), 1..32),
    ) {
        let mut bytes = encode(Message::new(NodeId::new(sender), NodeId::new(payload), dependent)).to_vec();
        bytes.extend_from_slice(&tail);
        prop_assert!(decode(&bytes).is_err(), "len {} must be rejected", bytes.len());
    }

    /// Fuzz-ish mutation sweep: take a valid frame and flip one byte to an
    /// arbitrary value. The result must either decode (re-encoding to the
    /// mutated bytes exactly) or be rejected — no panics, no silent
    /// canonicalisation.
    #[test]
    fn mutated_valid_frames_never_panic(
        sender in any::<u64>(),
        payload in any::<u64>(),
        dependent in any::<bool>(),
        pos in 0usize..WIRE_LEN,
        value in any::<u8>(),
    ) {
        let mut bytes =
            encode(Message::new(NodeId::new(sender), NodeId::new(payload), dependent)).to_vec();
        bytes[pos] = value;
        match decode(&bytes) {
            Ok(msg) => {
                // Id-field mutations always stay decodable; a flags-byte
                // mutation decodes only if it landed on a clean flag value.
                let reencoded = encode(msg);
                prop_assert_eq!(reencoded.as_ref(), &bytes[..]);
                if pos == WIRE_LEN - 1 {
                    prop_assert!(value <= 1, "dirty flags {:#04x} must not decode", value);
                }
            }
            Err(_) => {
                // Only the flags byte can make a 17-byte frame invalid.
                prop_assert_eq!(pos, WIRE_LEN - 1);
                prop_assert!(value > 1);
            }
        }
    }

    /// Single-bit flips across a corpus of valid frames: decode stays total
    /// and the bit either survives a roundtrip or is rejected outright.
    #[test]
    fn bitflipped_frames_roundtrip_or_reject(
        sender in any::<u64>(),
        payload in any::<u64>(),
        dependent in any::<bool>(),
        bit in 0usize..(WIRE_LEN * 8),
    ) {
        let mut bytes =
            encode(Message::new(NodeId::new(sender), NodeId::new(payload), dependent)).to_vec();
        bytes[bit / 8] ^= 1 << (bit % 8);
        if let Ok(msg) = decode(&bytes) {
            let reencoded = encode(msg);
            prop_assert_eq!(reencoded.as_ref(), &bytes[..]);
        }
    }
}

/// A deterministic mutation loop over every byte position and a spread of
/// overwrite values — denser than the sampled property above, and pins the
/// exact accept/reject boundary of the flags byte.
#[test]
fn exhaustive_single_byte_mutation_sweep() {
    let base =
        encode(Message::new(NodeId::new(0x0123_4567_89ab_cdef), NodeId::new(42), true)).to_vec();
    for pos in 0..WIRE_LEN {
        for value in [0u8, 1, 2, 3, 0x7f, 0x80, 0xfe, 0xff] {
            let mut bytes = base.clone();
            bytes[pos] = value;
            match decode(&bytes) {
                Ok(msg) => assert_eq!(
                    encode(msg).as_ref(),
                    &bytes[..],
                    "decode/encode must be exact at pos {pos} value {value:#04x}"
                ),
                Err(_) => assert!(
                    pos == WIRE_LEN - 1 && value > 1,
                    "only dirty flags may reject (pos {pos}, value {value:#04x})"
                ),
            }
        }
    }
}
