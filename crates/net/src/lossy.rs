//! A loss-injecting transport decorator.
//!
//! Wraps any [`Transport`] and drops each outgoing message independently
//! with probability `ℓ` — the Section 4.1 loss model layered onto an
//! otherwise reliable channel (e.g. UDP over loopback, which in practice
//! loses nothing). Drops happen on the *send* side, which is
//! indistinguishable from network loss to a protocol that gets no delivery
//! feedback.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sandf_core::{Message, NodeId};
use sandf_obs::MetricsRegistry;

use crate::instrument::TransportMetrics;
use crate::transport::{Transport, TransportError};

/// A transport that loses a fraction of outgoing messages.
#[derive(Debug)]
pub struct LossyTransport<T> {
    inner: T,
    rate: f64,
    rng: StdRng,
    dropped: u64,
    sent: u64,
    metrics: Option<TransportMetrics>,
}

impl<T: Transport> LossyTransport<T> {
    /// Wraps `inner`, dropping each message with probability `rate`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ rate ≤ 1`.
    #[must_use]
    pub fn new(inner: T, rate: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "loss rate must be a probability");
        Self { inner, rate, rng: StdRng::seed_from_u64(seed), dropped: 0, sent: 0, metrics: None }
    }

    /// Wraps `inner` like [`new`](Self::new), additionally recording
    /// `<prefix>.sent` / `<prefix>.dropped` / `<prefix>.delivered` counters
    /// in `registry` (`delivered` counts messages that passed the injector).
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ rate ≤ 1`.
    #[must_use]
    pub fn with_metrics(
        inner: T,
        rate: f64,
        seed: u64,
        registry: &MetricsRegistry,
        prefix: &str,
    ) -> Self {
        let mut lossy = Self::new(inner, rate, seed);
        lossy.metrics = Some(TransportMetrics::register(registry, prefix));
        lossy
    }

    /// The wrapped transport.
    #[must_use]
    pub fn inner(&self) -> &T {
        &self.inner
    }

    /// Messages handed to `send` so far.
    #[must_use]
    pub fn sent(&self) -> u64 {
        self.sent
    }

    /// Messages dropped by the injector so far.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

impl<T: Transport> Transport for LossyTransport<T> {
    fn local_id(&self) -> NodeId {
        self.inner.local_id()
    }

    fn send(&mut self, to: NodeId, message: Message) -> Result<(), TransportError> {
        self.sent += 1;
        if let Some(m) = &self.metrics {
            m.sent.inc();
        }
        if self.rate > 0.0 && self.rng.gen_bool(self.rate) {
            self.dropped += 1;
            if let Some(m) = &self.metrics {
                m.dropped.inc();
            }
            return Ok(());
        }
        if let Some(m) = &self.metrics {
            m.delivered.inc();
        }
        self.inner.send(to, message)
    }

    fn try_recv(&mut self) -> Result<Option<Message>, TransportError> {
        self.inner.try_recv()
    }

    fn recv_batch(&mut self, out: &mut Vec<Message>, max: usize) -> Result<usize, TransportError> {
        // Loss applies to sends only; delegate so the inner transport's
        // batched drain (e.g. UDP's) stays reachable through the stack.
        self.inner.recv_batch(out, max)
    }
}

#[cfg(test)]
mod tests {
    use crate::memory::InMemoryNetwork;

    use super::*;

    fn msg(k: u64) -> Message {
        Message::new(NodeId::new(0), NodeId::new(k), false)
    }

    #[test]
    fn zero_rate_passes_everything_through() {
        let net = InMemoryNetwork::new(0.0, 1);
        let mut tx = LossyTransport::new(net.endpoint(NodeId::new(0)), 0.0, 2);
        let mut rx = net.endpoint(NodeId::new(1));
        for k in 0..50 {
            tx.send(NodeId::new(1), msg(k)).unwrap();
        }
        let mut received = 0;
        while rx.try_recv().unwrap().is_some() {
            received += 1;
        }
        assert_eq!(received, 50);
        assert_eq!(tx.dropped(), 0);
    }

    #[test]
    fn unit_rate_drops_everything() {
        let net = InMemoryNetwork::new(0.0, 3);
        let mut tx = LossyTransport::new(net.endpoint(NodeId::new(0)), 1.0, 4);
        let mut rx = net.endpoint(NodeId::new(1));
        for k in 0..50 {
            tx.send(NodeId::new(1), msg(k)).unwrap();
        }
        assert_eq!(rx.try_recv().unwrap(), None);
        assert_eq!(tx.dropped(), 50);
        assert_eq!(tx.sent(), 50);
    }

    #[test]
    fn empirical_rate_matches() {
        let net = InMemoryNetwork::new(0.0, 5);
        let mut tx = LossyTransport::new(net.endpoint(NodeId::new(0)), 0.3, 6);
        let _rx = net.endpoint(NodeId::new(1));
        for k in 0..20_000 {
            tx.send(NodeId::new(1), msg(k)).unwrap();
        }
        let rate = tx.dropped() as f64 / tx.sent() as f64;
        assert!((rate - 0.3).abs() < 0.02, "empirical {rate}");
    }

    #[test]
    fn metrics_mirror_internal_counters() {
        use sandf_obs::MetricsRegistry;
        let registry = MetricsRegistry::new();
        let net = InMemoryNetwork::new(0.0, 9);
        let mut tx = LossyTransport::with_metrics(
            net.endpoint(NodeId::new(0)),
            0.3,
            10,
            &registry,
            "net.lossy",
        );
        let _rx = net.endpoint(NodeId::new(1));
        for k in 0..2_000 {
            tx.send(NodeId::new(1), msg(k)).unwrap();
        }
        assert_eq!(registry.counter_value("net.lossy.sent"), Some(tx.sent()));
        assert_eq!(registry.counter_value("net.lossy.dropped"), Some(tx.dropped()));
        assert_eq!(registry.counter_value("net.lossy.delivered"), Some(tx.sent() - tx.dropped()));
    }

    #[test]
    fn receive_path_is_untouched() {
        let net = InMemoryNetwork::new(0.0, 7);
        let mut a = net.endpoint(NodeId::new(0));
        let mut b = LossyTransport::new(net.endpoint(NodeId::new(1)), 1.0, 8);
        a.send(NodeId::new(1), msg(9)).unwrap();
        assert_eq!(b.try_recv().unwrap(), Some(msg(9)));
        assert_eq!(b.local_id(), NodeId::new(1));
    }
}
