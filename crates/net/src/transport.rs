//! The transport abstraction the runtime drives the protocol over.

use sandf_core::{Message, NodeId};

/// Transport failure.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum TransportError {
    /// The destination is not known to this transport.
    UnknownPeer {
        /// The unresolvable destination.
        to: NodeId,
    },
    /// The transport endpoint is closed.
    Closed,
    /// An I/O error (UDP transports).
    Io {
        /// The underlying error rendered as text (keeps the error `Clone`).
        message: String,
    },
}

impl core::fmt::Display for TransportError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::UnknownPeer { to } => write!(f, "unknown peer {to}"),
            Self::Closed => write!(f, "transport closed"),
            Self::Io { message } => write!(f, "transport i/o: {message}"),
        }
    }
}

impl std::error::Error for TransportError {}

/// A best-effort, unordered, lossy datagram transport — the network model
/// of Section 4.1. An implementation may drop messages arbitrarily; it must
/// never duplicate or corrupt them.
///
/// S&F needs nothing more: every protocol step is atomic at a single node,
/// so the runtime just pumps `try_recv` and fires `send` on a timer.
pub trait Transport {
    /// This endpoint's node id.
    fn local_id(&self) -> NodeId;

    /// Sends `message` toward `to`. A `Ok(())` means the message was handed
    /// to the network, not that it will arrive ("send & forget").
    ///
    /// # Errors
    ///
    /// Returns [`TransportError`] when the peer is unknown or the endpoint
    /// is closed; loss is *not* an error.
    fn send(&mut self, to: NodeId, message: Message) -> Result<(), TransportError>;

    /// Receives a pending message, if any, without blocking.
    ///
    /// # Errors
    ///
    /// Returns [`TransportError::Closed`] when the endpoint is shut down.
    fn try_recv(&mut self) -> Result<Option<Message>, TransportError>;

    /// Drains up to `max` pending messages into `out` without blocking,
    /// returning how many were appended. Event loops that poll many
    /// endpoints per wakeup (the daemon multiplexes thousands) should use
    /// this instead of repeated [`try_recv`](Self::try_recv) calls so one
    /// readiness sweep empties a backlogged endpoint in one pass.
    ///
    /// The default implementation loops `try_recv`; implementations with a
    /// cheaper bulk path (e.g. a UDP socket) may override it.
    ///
    /// # Errors
    ///
    /// Returns the first [`TransportError`] the underlying receive path
    /// reports; messages drained before the error stay in `out`.
    fn recv_batch(&mut self, out: &mut Vec<Message>, max: usize) -> Result<usize, TransportError> {
        let mut drained = 0;
        while drained < max {
            match self.try_recv()? {
                Some(message) => {
                    out.push(message);
                    drained += 1;
                }
                None => break,
            }
        }
        Ok(drained)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render() {
        assert!(TransportError::UnknownPeer { to: NodeId::new(3) }.to_string().contains("n3"));
        assert!(!TransportError::Closed.to_string().is_empty());
        assert!(TransportError::Io { message: "boom".into() }.to_string().contains("boom"));
    }
}
