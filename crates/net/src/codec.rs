//! Wire codec for S&F messages.
//!
//! A message `[u, w]` is 17 bytes: the sender id, the payload id (both
//! big-endian `u64`), and one flags byte carrying the dependence-label bit.
//! S&F's entire protocol state fits in this single datagram type — no
//! sessions, no retransmission, no bookkeeping (Section 5: "after it sends
//! a message, it forgets about it").

use bytes::{Buf, BufMut, Bytes, BytesMut};
use sandf_core::{Message, NodeId};

/// Encoded message length in bytes.
pub const WIRE_LEN: usize = 17;

const FLAG_DEPENDENT: u8 = 0b0000_0001;

/// Error from decoding a datagram.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum WireError {
    /// The datagram is not exactly [`WIRE_LEN`] bytes.
    BadLength {
        /// Received length.
        len: usize,
    },
    /// The flags byte has bits outside the defined set.
    BadFlags {
        /// Received flags byte.
        flags: u8,
    },
}

impl core::fmt::Display for WireError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match *self {
            Self::BadLength { len } => write!(f, "datagram length {len}, expected {WIRE_LEN}"),
            Self::BadFlags { flags } => write!(f, "unknown flag bits in {flags:#010b}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Encodes a message into its 17-byte wire form.
#[must_use]
pub fn encode(message: Message) -> Bytes {
    let mut buf = BytesMut::with_capacity(WIRE_LEN);
    buf.put_u64(message.sender.as_u64());
    buf.put_u64(message.payload.as_u64());
    buf.put_u8(if message.dependent { FLAG_DEPENDENT } else { 0 });
    buf.freeze()
}

/// Decodes a datagram produced by [`encode`].
///
/// # Errors
///
/// Returns [`WireError`] for a wrong length or undefined flag bits.
pub fn decode(mut datagram: &[u8]) -> Result<Message, WireError> {
    if datagram.len() != WIRE_LEN {
        return Err(WireError::BadLength { len: datagram.len() });
    }
    let sender = NodeId::new(datagram.get_u64());
    let payload = NodeId::new(datagram.get_u64());
    let flags = datagram.get_u8();
    if flags & !FLAG_DEPENDENT != 0 {
        return Err(WireError::BadFlags { flags });
    }
    Ok(Message::new(sender, payload, flags & FLAG_DEPENDENT != 0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        for dependent in [false, true] {
            let msg = Message::new(NodeId::new(7), NodeId::new(u64::MAX), dependent);
            let bytes = encode(msg);
            assert_eq!(bytes.len(), WIRE_LEN);
            assert_eq!(decode(&bytes).unwrap(), msg);
        }
    }

    #[test]
    fn rejects_wrong_length() {
        assert_eq!(decode(&[0u8; 16]), Err(WireError::BadLength { len: 16 }));
        assert_eq!(decode(&[0u8; 18]), Err(WireError::BadLength { len: 18 }));
        assert_eq!(decode(&[]), Err(WireError::BadLength { len: 0 }));
    }

    #[test]
    fn rejects_unknown_flags() {
        let mut bytes = encode(Message::new(NodeId::new(1), NodeId::new(2), false)).to_vec();
        bytes[16] = 0b1000_0000;
        assert_eq!(decode(&bytes), Err(WireError::BadFlags { flags: 0b1000_0000 }));
    }

    #[test]
    fn encoding_is_big_endian() {
        let bytes = encode(Message::new(NodeId::new(1), NodeId::new(256), true));
        assert_eq!(bytes[7], 1);
        assert_eq!(bytes[14], 1);
        assert_eq!(bytes[16], 1);
    }
}
