//! Transport instrumentation: `sandf-obs` counter taps and journal taps
//! for any [`Transport`].
//!
//! Two layers use this module:
//!
//! * [`TransportMetrics`] is the shared counter triple
//!   (`<prefix>.sent` / `<prefix>.dropped` / `<prefix>.delivered`) that the
//!   in-memory hub ([`InMemoryNetwork::with_metrics`]) and the loss
//!   injector ([`LossyTransport::with_metrics`]) record into;
//! * [`InstrumentedTransport`] wraps any endpoint and counts its local
//!   sends/receives, optionally mirroring them into an [`EventJournal`].
//!
//! [`InMemoryNetwork::with_metrics`]: crate::InMemoryNetwork::with_metrics
//! [`LossyTransport::with_metrics`]: crate::LossyTransport::with_metrics

use sandf_core::{Message, NodeId};
use sandf_obs::{CounterHandle, EventJournal, JournalEvent, MetricsRegistry};

use crate::transport::{Transport, TransportError};

/// The counter triple every instrumented transport layer records into.
#[derive(Clone, Debug)]
pub struct TransportMetrics {
    /// Messages handed to the layer's `send`.
    pub sent: CounterHandle,
    /// Messages the layer itself dropped (loss injection, central hub
    /// loss). Pass-through wrappers never move this counter.
    pub dropped: CounterHandle,
    /// Messages the layer handed onward (hub: pushed to an inbox;
    /// endpoint wrapper: returned from `try_recv`).
    pub delivered: CounterHandle,
}

impl TransportMetrics {
    /// Registers `<prefix>.sent`, `<prefix>.dropped`, and
    /// `<prefix>.delivered` in `registry`.
    #[must_use]
    pub fn register(registry: &MetricsRegistry, prefix: &str) -> Self {
        Self {
            sent: registry.counter(&format!("{prefix}.sent")),
            dropped: registry.counter(&format!("{prefix}.dropped")),
            delivered: registry.counter(&format!("{prefix}.delivered")),
        }
    }
}

/// A counting (and optionally journaling) wrapper around any transport.
///
/// `sent` counts calls into [`Transport::send`]; `delivered` counts
/// messages surfaced by [`Transport::try_recv`]. Drops happen inside the
/// wrapped stack and are invisible here — instrument the dropping layer
/// (hub or injector) for those. Journal times are the endpoint's own event
/// index (sends + receives observed so far), never wall-clock.
#[derive(Debug)]
pub struct InstrumentedTransport<T> {
    inner: T,
    metrics: TransportMetrics,
    journal: Option<EventJournal>,
    events: u64,
}

impl<T: Transport> InstrumentedTransport<T> {
    /// Wraps `inner`, recording into `metrics`.
    #[must_use]
    pub fn new(inner: T, metrics: TransportMetrics) -> Self {
        Self { inner, metrics, journal: None, events: 0 }
    }

    /// Wraps `inner`, recording into `metrics` and mirroring every
    /// send/receive into `journal`.
    #[must_use]
    pub fn with_journal(inner: T, metrics: TransportMetrics, journal: EventJournal) -> Self {
        Self { inner, metrics, journal: Some(journal), events: 0 }
    }

    /// The wrapped transport.
    #[must_use]
    pub fn inner(&self) -> &T {
        &self.inner
    }

    fn record(&mut self, event: JournalEvent) {
        if let Some(journal) = &self.journal {
            journal.record(self.events, event);
        }
        self.events += 1;
    }
}

impl<T: Transport> Transport for InstrumentedTransport<T> {
    fn local_id(&self) -> NodeId {
        self.inner.local_id()
    }

    fn send(&mut self, to: NodeId, message: Message) -> Result<(), TransportError> {
        self.metrics.sent.inc();
        self.record(JournalEvent::NetSent {
            from: self.inner.local_id(),
            to,
            payload: message.payload,
        });
        self.inner.send(to, message)
    }

    fn try_recv(&mut self) -> Result<Option<Message>, TransportError> {
        let received = self.inner.try_recv()?;
        if let Some(message) = received {
            self.metrics.delivered.inc();
            self.record(JournalEvent::NetReceived {
                to: self.inner.local_id(),
                from: message.sender,
                payload: message.payload,
            });
        }
        Ok(received)
    }
}

#[cfg(test)]
mod tests {
    use sandf_obs::MetricsRegistry;

    use crate::memory::InMemoryNetwork;

    use super::*;

    fn msg(k: u64) -> Message {
        Message::new(NodeId::new(0), NodeId::new(k), false)
    }

    #[test]
    fn counts_sends_and_receives() {
        let registry = MetricsRegistry::new();
        let net = InMemoryNetwork::new(0.0, 1);
        let metrics = TransportMetrics::register(&registry, "net.endpoint");
        let mut a = InstrumentedTransport::new(net.endpoint(NodeId::new(0)), metrics.clone());
        let mut b = InstrumentedTransport::new(net.endpoint(NodeId::new(1)), metrics);
        for k in 0..10 {
            a.send(NodeId::new(1), msg(k)).unwrap();
        }
        let mut received = 0;
        while b.try_recv().unwrap().is_some() {
            received += 1;
        }
        assert_eq!(received, 10);
        assert_eq!(registry.counter_value("net.endpoint.sent"), Some(10));
        assert_eq!(registry.counter_value("net.endpoint.delivered"), Some(10));
        assert_eq!(registry.counter_value("net.endpoint.dropped"), Some(0));
    }

    #[test]
    fn journal_tap_sees_both_directions() {
        let registry = MetricsRegistry::new();
        let net = InMemoryNetwork::new(0.0, 2);
        let journal = EventJournal::new(64);
        let metrics = TransportMetrics::register(&registry, "net.endpoint");
        let mut a = InstrumentedTransport::with_journal(
            net.endpoint(NodeId::new(0)),
            metrics.clone(),
            journal.clone(),
        );
        let mut b = InstrumentedTransport::with_journal(
            net.endpoint(NodeId::new(1)),
            metrics,
            journal.clone(),
        );
        a.send(NodeId::new(1), msg(7)).unwrap();
        let _ = b.try_recv().unwrap();
        let kinds: Vec<&str> = journal.entries().iter().map(|e| e.event.kind()).collect();
        assert_eq!(kinds, vec!["net_sent", "net_received"]);
    }

    #[test]
    fn disabled_registry_is_a_no_op_tap() {
        let registry = MetricsRegistry::disabled();
        let net = InMemoryNetwork::new(0.0, 3);
        let metrics = TransportMetrics::register(&registry, "net.endpoint");
        let mut a = InstrumentedTransport::new(net.endpoint(NodeId::new(0)), metrics);
        let _b = net.endpoint(NodeId::new(1));
        a.send(NodeId::new(1), msg(1)).unwrap();
        assert_eq!(registry.counter_value("net.endpoint.sent"), None);
        assert!(registry.metric_names().is_empty());
    }
}
