//! A UDP transport: S&F over real sockets.
//!
//! UDP *is* the paper's network model — unordered, unreliable datagrams
//! with no delivery feedback — so the protocol runs on it without any
//! additional machinery. Peers are resolved through a shared
//! [`AddressBook`] (in a real deployment this would be seeded the same way
//! bootstrap views are).

use std::collections::HashMap;
use std::io::ErrorKind;
use std::net::{SocketAddr, UdpSocket};
use std::sync::{Arc, RwLock};

use sandf_core::{Message, NodeId};

use crate::codec::{decode, encode, WIRE_LEN};
use crate::transport::{Transport, TransportError};

/// A shared map from node ids to socket addresses.
#[derive(Clone, Debug, Default)]
pub struct AddressBook {
    map: Arc<RwLock<HashMap<NodeId, SocketAddr>>>,
}

impl AddressBook {
    /// Creates an empty address book.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or updates) a peer's address.
    pub fn register(&self, id: NodeId, addr: SocketAddr) {
        self.map.write().expect("address book poisoned").insert(id, addr);
    }

    /// Resolves a peer.
    #[must_use]
    pub fn resolve(&self, id: NodeId) -> Option<SocketAddr> {
        self.map.read().expect("address book poisoned").get(&id).copied()
    }

    /// Removes a peer.
    pub fn remove(&self, id: NodeId) {
        self.map.write().expect("address book poisoned").remove(&id);
    }

    /// Number of registered peers.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.read().expect("address book poisoned").len()
    }

    /// Whether the book is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A nonblocking UDP endpoint.
#[derive(Debug)]
pub struct UdpTransport {
    id: NodeId,
    socket: UdpSocket,
    book: AddressBook,
    buf: [u8; WIRE_LEN + 16],
}

impl UdpTransport {
    /// Binds a loopback socket on an ephemeral port and registers it in the
    /// address book.
    ///
    /// # Errors
    ///
    /// Returns [`TransportError::Io`] if binding fails.
    pub fn bind_loopback(id: NodeId, book: &AddressBook) -> Result<Self, TransportError> {
        let socket = UdpSocket::bind(("127.0.0.1", 0)).map_err(io_err)?;
        socket.set_nonblocking(true).map_err(io_err)?;
        let addr = socket.local_addr().map_err(io_err)?;
        book.register(id, addr);
        Ok(Self { id, socket, book: book.clone(), buf: [0u8; WIRE_LEN + 16] })
    }

    /// The bound socket address.
    ///
    /// # Errors
    ///
    /// Returns [`TransportError::Io`] if the socket is in a bad state.
    pub fn local_addr(&self) -> Result<SocketAddr, TransportError> {
        self.socket.local_addr().map_err(io_err)
    }
}

fn io_err(e: std::io::Error) -> TransportError {
    TransportError::Io { message: e.to_string() }
}

impl Transport for UdpTransport {
    fn local_id(&self) -> NodeId {
        self.id
    }

    fn send(&mut self, to: NodeId, message: Message) -> Result<(), TransportError> {
        let Some(addr) = self.book.resolve(to) else {
            // A vanished peer is indistinguishable from loss to S&F.
            return Ok(());
        };
        match self.socket.send_to(&encode(message), addr) {
            Ok(_) => Ok(()),
            // Full buffers are loss, which the protocol tolerates.
            Err(e) if e.kind() == ErrorKind::WouldBlock => Ok(()),
            Err(e) => Err(io_err(e)),
        }
    }

    fn try_recv(&mut self) -> Result<Option<Message>, TransportError> {
        loop {
            match self.socket.recv_from(&mut self.buf) {
                Ok((len, _)) => match decode(&self.buf[..len]) {
                    Ok(msg) => return Ok(Some(msg)),
                    // Malformed datagrams are dropped, like line noise.
                    Err(_) => continue,
                },
                Err(e) if e.kind() == ErrorKind::WouldBlock => return Ok(None),
                Err(e) => return Err(io_err(e)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sends_and_receives_over_loopback() {
        let book = AddressBook::new();
        let mut a = UdpTransport::bind_loopback(NodeId::new(0), &book).unwrap();
        let mut b = UdpTransport::bind_loopback(NodeId::new(1), &book).unwrap();
        assert_eq!(book.len(), 2);

        let msg = Message::new(NodeId::new(0), NodeId::new(7), true);
        a.send(NodeId::new(1), msg).unwrap();

        // UDP over loopback is effectively reliable, but give it a moment.
        let mut got = None;
        for _ in 0..200 {
            if let Some(m) = b.try_recv().unwrap() {
                got = Some(m);
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert_eq!(got, Some(msg));
    }

    #[test]
    fn unknown_peer_is_treated_as_loss() {
        let book = AddressBook::new();
        let mut a = UdpTransport::bind_loopback(NodeId::new(0), &book).unwrap();
        assert_eq!(
            a.send(NodeId::new(42), Message::new(NodeId::new(0), NodeId::new(1), false)),
            Ok(())
        );
    }

    #[test]
    fn malformed_datagrams_are_skipped() {
        let book = AddressBook::new();
        let mut b = UdpTransport::bind_loopback(NodeId::new(1), &book).unwrap();
        let addr = b.local_addr().unwrap();
        let raw = UdpSocket::bind(("127.0.0.1", 0)).unwrap();
        raw.send_to(&[1, 2, 3], addr).unwrap();
        let msg = Message::new(NodeId::new(9), NodeId::new(8), false);
        raw.send_to(&encode(msg), addr).unwrap();
        let mut got = None;
        for _ in 0..200 {
            if let Some(m) = b.try_recv().unwrap() {
                got = Some(m);
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert_eq!(got, Some(msg), "the well-formed datagram must survive");
    }

    #[test]
    fn address_book_updates() {
        let book = AddressBook::new();
        assert!(book.is_empty());
        let addr: SocketAddr = "127.0.0.1:9000".parse().unwrap();
        book.register(NodeId::new(1), addr);
        assert_eq!(book.resolve(NodeId::new(1)), Some(addr));
        book.remove(NodeId::new(1));
        assert_eq!(book.resolve(NodeId::new(1)), None);
    }
}
