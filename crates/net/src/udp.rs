//! A UDP transport: S&F over real sockets.
//!
//! UDP *is* the paper's network model — unordered, unreliable datagrams
//! with no delivery feedback — so the protocol runs on it without any
//! additional machinery. Peers are resolved through a shared
//! [`AddressBook`] (in a real deployment this would be seeded the same way
//! bootstrap views are).

use std::collections::HashMap;
use std::io::ErrorKind;
use std::net::{SocketAddr, UdpSocket};
use std::sync::{Arc, PoisonError, RwLock};

use sandf_core::{Message, NodeId};

use crate::codec::{decode, encode, WIRE_LEN};
use crate::transport::{Transport, TransportError};

/// A shared map from node ids to socket addresses.
///
/// All accessors recover from lock poisoning: the map holds plain value
/// types, so a panic mid-operation cannot leave it logically torn, and a
/// daemon multiplexing thousands of nodes must not let one panicked thread
/// cascade into every other node's sends.
#[derive(Clone, Debug, Default)]
pub struct AddressBook {
    map: Arc<RwLock<HashMap<NodeId, SocketAddr>>>,
}

impl AddressBook {
    /// Creates an empty address book.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or updates) a peer's address.
    pub fn register(&self, id: NodeId, addr: SocketAddr) {
        self.map.write().unwrap_or_else(PoisonError::into_inner).insert(id, addr);
    }

    /// Resolves a peer.
    #[must_use]
    pub fn resolve(&self, id: NodeId) -> Option<SocketAddr> {
        self.map.read().unwrap_or_else(PoisonError::into_inner).get(&id).copied()
    }

    /// Removes a peer.
    pub fn remove(&self, id: NodeId) {
        self.map.write().unwrap_or_else(PoisonError::into_inner).remove(&id);
    }

    /// Number of registered peers.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.read().unwrap_or_else(PoisonError::into_inner).len()
    }

    /// Whether the book is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A nonblocking UDP endpoint.
#[derive(Debug)]
pub struct UdpTransport {
    id: NodeId,
    socket: UdpSocket,
    book: AddressBook,
    buf: [u8; WIRE_LEN + 16],
}

impl UdpTransport {
    /// Binds a loopback socket on an ephemeral port and registers it in the
    /// address book.
    ///
    /// # Errors
    ///
    /// Returns [`TransportError::Io`] if binding fails.
    pub fn bind_loopback(id: NodeId, book: &AddressBook) -> Result<Self, TransportError> {
        let socket = UdpSocket::bind(("127.0.0.1", 0)).map_err(io_err)?;
        socket.set_nonblocking(true).map_err(io_err)?;
        let addr = socket.local_addr().map_err(io_err)?;
        book.register(id, addr);
        Ok(Self { id, socket, book: book.clone(), buf: [0u8; WIRE_LEN + 16] })
    }

    /// The bound socket address.
    ///
    /// # Errors
    ///
    /// Returns [`TransportError::Io`] if the socket is in a bad state.
    pub fn local_addr(&self) -> Result<SocketAddr, TransportError> {
        self.socket.local_addr().map_err(io_err)
    }
}

fn io_err(e: std::io::Error) -> TransportError {
    TransportError::Io { message: e.to_string() }
}

impl Transport for UdpTransport {
    fn local_id(&self) -> NodeId {
        self.id
    }

    fn send(&mut self, to: NodeId, message: Message) -> Result<(), TransportError> {
        let Some(addr) = self.book.resolve(to) else {
            // A vanished peer is indistinguishable from loss to S&F.
            return Ok(());
        };
        match self.socket.send_to(&encode(message), addr) {
            Ok(_) => Ok(()),
            // Full buffers are loss, which the protocol tolerates.
            Err(e) if e.kind() == ErrorKind::WouldBlock => Ok(()),
            Err(e) => Err(io_err(e)),
        }
    }

    fn try_recv(&mut self) -> Result<Option<Message>, TransportError> {
        loop {
            match self.socket.recv_from(&mut self.buf) {
                Ok((len, _)) => match decode(&self.buf[..len]) {
                    Ok(msg) => return Ok(Some(msg)),
                    // Malformed datagrams are dropped, like line noise.
                    Err(_) => continue,
                },
                Err(e) if e.kind() == ErrorKind::WouldBlock => return Ok(None),
                Err(e) => return Err(io_err(e)),
            }
        }
    }

    /// Drains every pending datagram in one readiness wakeup (until
    /// `WouldBlock` or `max`), so an event loop sweeping thousands of
    /// sockets empties each backlog in a single pass instead of leaving
    /// all but one datagram queued until the next sweep.
    fn recv_batch(&mut self, out: &mut Vec<Message>, max: usize) -> Result<usize, TransportError> {
        let mut drained = 0;
        while drained < max {
            match self.socket.recv_from(&mut self.buf) {
                Ok((len, _)) => {
                    if let Ok(msg) = decode(&self.buf[..len]) {
                        out.push(msg);
                        drained += 1;
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) => return Err(io_err(e)),
            }
        }
        Ok(drained)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sends_and_receives_over_loopback() {
        let book = AddressBook::new();
        let mut a = UdpTransport::bind_loopback(NodeId::new(0), &book).unwrap();
        let mut b = UdpTransport::bind_loopback(NodeId::new(1), &book).unwrap();
        assert_eq!(book.len(), 2);

        let msg = Message::new(NodeId::new(0), NodeId::new(7), true);
        a.send(NodeId::new(1), msg).unwrap();

        // UDP over loopback is effectively reliable, but give it a moment.
        let mut got = None;
        for _ in 0..200 {
            if let Some(m) = b.try_recv().unwrap() {
                got = Some(m);
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert_eq!(got, Some(msg));
    }

    #[test]
    fn unknown_peer_is_treated_as_loss() {
        let book = AddressBook::new();
        let mut a = UdpTransport::bind_loopback(NodeId::new(0), &book).unwrap();
        assert_eq!(
            a.send(NodeId::new(42), Message::new(NodeId::new(0), NodeId::new(1), false)),
            Ok(())
        );
    }

    #[test]
    fn malformed_datagrams_are_skipped() {
        let book = AddressBook::new();
        let mut b = UdpTransport::bind_loopback(NodeId::new(1), &book).unwrap();
        let addr = b.local_addr().unwrap();
        let raw = UdpSocket::bind(("127.0.0.1", 0)).unwrap();
        raw.send_to(&[1, 2, 3], addr).unwrap();
        let msg = Message::new(NodeId::new(9), NodeId::new(8), false);
        raw.send_to(&encode(msg), addr).unwrap();
        let mut got = None;
        for _ in 0..200 {
            if let Some(m) = b.try_recv().unwrap() {
                got = Some(m);
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert_eq!(got, Some(msg), "the well-formed datagram must survive");
    }

    #[test]
    fn recv_batch_drains_all_pending_datagrams_in_one_wakeup() {
        let book = AddressBook::new();
        let mut a = UdpTransport::bind_loopback(NodeId::new(0), &book).unwrap();
        let mut b = UdpTransport::bind_loopback(NodeId::new(1), &book).unwrap();

        const PENDING: usize = 64;
        for i in 0..PENDING {
            let msg = Message::new(NodeId::new(0), NodeId::new(i as u64), i % 2 == 0);
            a.send(NodeId::new(1), msg).unwrap();
        }

        // Loopback UDP is effectively reliable but asynchronous; wait until
        // the whole burst is queued, then assert a single batch call drains
        // it (the old recv path returned at most one message per call).
        let mut got = Vec::new();
        for _ in 0..500 {
            b.recv_batch(&mut got, PENDING * 2).unwrap();
            if got.len() >= PENDING {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert_eq!(got.len(), PENDING, "burst must be fully drained");
        let payloads: std::collections::HashSet<u64> =
            got.iter().map(|m| m.payload.as_u64()).collect();
        assert_eq!(payloads.len(), PENDING, "no datagram duplicated or corrupted");

        // Once the backlog exists, one call must take it all: re-send and
        // poll with a zero-work probe until readiness, then batch once.
        for i in 0..PENDING {
            a.send(NodeId::new(1), Message::new(NodeId::new(0), NodeId::new(i as u64), false))
                .unwrap();
        }
        std::thread::sleep(std::time::Duration::from_millis(20));
        let mut second = Vec::new();
        let drained = b.recv_batch(&mut second, usize::MAX).unwrap();
        assert!(drained >= PENDING / 2, "a single wakeup should drain the backlog, got {drained}");
        assert_eq!(drained, second.len());
    }

    #[test]
    fn recv_batch_respects_max() {
        let book = AddressBook::new();
        let mut a = UdpTransport::bind_loopback(NodeId::new(0), &book).unwrap();
        let mut b = UdpTransport::bind_loopback(NodeId::new(1), &book).unwrap();
        for i in 0..8 {
            a.send(NodeId::new(1), Message::new(NodeId::new(0), NodeId::new(i), false)).unwrap();
        }
        let mut got = Vec::new();
        let mut calls = 0;
        for _ in 0..2000 {
            let before = got.len();
            let drained = b.recv_batch(&mut got, 3).unwrap();
            assert!(drained <= 3, "cap must bound a single batch, got {drained}");
            assert_eq!(got.len(), before + drained, "return value matches appended count");
            if drained > 0 {
                calls += 1;
            }
            if got.len() == 8 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert_eq!(got.len(), 8, "every datagram eventually drains");
        assert!(calls >= 3, "8 messages at cap 3 need at least 3 draining calls");
    }

    #[test]
    fn address_book_recovers_from_poisoned_lock() {
        let book = AddressBook::new();
        let addr: SocketAddr = "127.0.0.1:9100".parse().unwrap();
        book.register(NodeId::new(5), addr);

        // Poison the inner lock by panicking while holding the write guard.
        let poisoner = book.clone();
        let _ = std::thread::spawn(move || {
            let _guard = poisoner.map.write().unwrap();
            panic!("poison the address book on purpose");
        })
        .join();

        // Every accessor must keep working instead of propagating the panic.
        assert_eq!(book.resolve(NodeId::new(5)), Some(addr));
        assert_eq!(book.len(), 1);
        let addr2: SocketAddr = "127.0.0.1:9101".parse().unwrap();
        book.register(NodeId::new(6), addr2);
        assert_eq!(book.resolve(NodeId::new(6)), Some(addr2));
        book.remove(NodeId::new(5));
        assert_eq!(book.resolve(NodeId::new(5)), None);
        assert!(!book.is_empty());
    }

    #[test]
    fn address_book_updates() {
        let book = AddressBook::new();
        assert!(book.is_empty());
        let addr: SocketAddr = "127.0.0.1:9000".parse().unwrap();
        book.register(NodeId::new(1), addr);
        assert_eq!(book.resolve(NodeId::new(1)), Some(addr));
        book.remove(NodeId::new(1));
        assert_eq!(book.resolve(NodeId::new(1)), None);
    }
}
