//! # sandf-net — transports for running S&F on real channels
//!
//! The paper's network model (Section 4.1) is best-effort datagrams with
//! uniform i.i.d. loss and no delivery feedback. This crate provides that
//! model as a [`Transport`] trait with two implementations:
//!
//! * [`InMemoryNetwork`] — crossbeam channels between threads with a
//!   seeded, injectable loss process (real concurrency, controlled loss);
//! * [`UdpTransport`] — actual UDP sockets over loopback or a LAN (real
//!   loss, real reordering).
//!
//! The 17-byte wire [`codec`] is total: S&F has exactly one message type
//! and needs no connection state, which is the "practical, no bookkeeping"
//! half of the paper's thesis.
//!
//! ## Example
//!
//! ```
//! use sandf_core::{Message, NodeId};
//! use sandf_net::{InMemoryNetwork, Transport};
//!
//! let net = InMemoryNetwork::new(0.0, 7);
//! let mut alice = net.endpoint(NodeId::new(0));
//! let mut bob = net.endpoint(NodeId::new(1));
//!
//! alice.send(NodeId::new(1), Message::new(NodeId::new(0), NodeId::new(9), false))?;
//! assert!(bob.try_recv()?.is_some());
//! # Ok::<(), sandf_net::TransportError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
mod instrument;
mod lossy;
mod memory;
mod transport;
mod udp;

pub use instrument::{InstrumentedTransport, TransportMetrics};
pub use lossy::LossyTransport;
pub use memory::{InMemoryNetwork, InMemoryTransport};
pub use transport::{Transport, TransportError};
pub use udp::{AddressBook, UdpTransport};
