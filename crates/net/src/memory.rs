//! An in-process network of crossbeam channels with injectable uniform
//! loss — a real concurrent transport (threads, interleaving, races) with a
//! controlled Section 4.1 loss model.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, PoisonError, RwLock};

use crossbeam::channel::{unbounded, Receiver, Sender, TryRecvError};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sandf_core::{Message, NodeId};
use sandf_obs::MetricsRegistry;

use crate::instrument::TransportMetrics;
use crate::transport::{Transport, TransportError};

#[derive(Debug)]
struct Shared {
    inboxes: RwLock<HashMap<NodeId, Sender<Message>>>,
    /// Loss decisions are centralized so the network-wide loss process is a
    /// single seeded i.i.d. sequence.
    loss: Mutex<LossState>,
    /// Hub-level `net.memory.*` counters, when built via `with_metrics`.
    metrics: Option<TransportMetrics>,
}

#[derive(Debug)]
struct LossState {
    rate: f64,
    rng: StdRng,
    dropped: u64,
    sent: u64,
}

/// A hub for an in-memory lossy network. Clone-cheap handle.
#[derive(Clone, Debug)]
pub struct InMemoryNetwork {
    shared: Arc<Shared>,
}

impl InMemoryNetwork {
    /// Creates a network dropping each message independently with
    /// probability `loss`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ loss ≤ 1`.
    #[must_use]
    pub fn new(loss: f64, seed: u64) -> Self {
        Self::build(loss, seed, None)
    }

    /// Creates a network that additionally records hub-level counters
    /// (`net.memory.sent` / `net.memory.dropped` / `net.memory.delivered`)
    /// in `registry`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ loss ≤ 1`.
    #[must_use]
    pub fn with_metrics(loss: f64, seed: u64, registry: &MetricsRegistry) -> Self {
        Self::build(loss, seed, Some(TransportMetrics::register(registry, "net.memory")))
    }

    fn build(loss: f64, seed: u64, metrics: Option<TransportMetrics>) -> Self {
        assert!((0.0..=1.0).contains(&loss), "loss must be a probability");
        Self {
            shared: Arc::new(Shared {
                inboxes: RwLock::new(HashMap::new()),
                loss: Mutex::new(LossState {
                    rate: loss,
                    rng: StdRng::seed_from_u64(seed),
                    dropped: 0,
                    sent: 0,
                }),
                metrics,
            }),
        }
    }

    /// Registers a node and returns its endpoint.
    ///
    /// # Panics
    ///
    /// Panics if `id` is already registered.
    #[must_use]
    pub fn endpoint(&self, id: NodeId) -> InMemoryTransport {
        let (tx, rx) = unbounded();
        // Lock recovery throughout this module: a worker that panics while
        // holding a hub lock leaves plain counters/maps in a consistent
        // state, so readers recover the value instead of cascading the
        // panic (which would wedge every surviving endpoint).
        let mut inboxes = self.shared.inboxes.write().unwrap_or_else(PoisonError::into_inner);
        let prev = inboxes.insert(id, tx);
        assert!(prev.is_none(), "node {id} registered twice");
        InMemoryTransport { id, shared: Arc::clone(&self.shared), inbox: rx }
    }

    /// Unregisters a node (its endpoint keeps draining already-queued
    /// messages; new sends to it become unknown-peer errors).
    pub fn disconnect(&self, id: NodeId) {
        self.shared.inboxes.write().unwrap_or_else(PoisonError::into_inner).remove(&id);
    }

    /// Total messages handed to the network so far.
    #[must_use]
    pub fn sent(&self) -> u64 {
        self.shared.loss.lock().unwrap_or_else(PoisonError::into_inner).sent
    }

    /// Messages dropped by the loss process so far.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.shared.loss.lock().unwrap_or_else(PoisonError::into_inner).dropped
    }
}

/// One node's endpoint on an [`InMemoryNetwork`].
#[derive(Debug)]
pub struct InMemoryTransport {
    id: NodeId,
    shared: Arc<Shared>,
    inbox: Receiver<Message>,
}

impl Transport for InMemoryTransport {
    fn local_id(&self) -> NodeId {
        self.id
    }

    fn send(&mut self, to: NodeId, message: Message) -> Result<(), TransportError> {
        let metrics = self.shared.metrics.as_ref();
        if let Some(m) = metrics {
            m.sent.inc();
        }
        {
            let mut loss = self.shared.loss.lock().unwrap_or_else(PoisonError::into_inner);
            loss.sent += 1;
            let rate = loss.rate;
            if rate > 0.0 && loss.rng.gen_bool(rate) {
                loss.dropped += 1;
                if let Some(m) = metrics {
                    m.dropped.inc();
                }
                return Ok(()); // lost in transit; sender cannot tell
            }
        }
        let inboxes = self.shared.inboxes.read().unwrap_or_else(PoisonError::into_inner);
        match inboxes.get(&to) {
            // A send to a departed node is indistinguishable from loss.
            None => Ok(()),
            Some(tx) => {
                // A closed inbox means the peer dropped its endpoint.
                if tx.send(message).is_ok() {
                    if let Some(m) = metrics {
                        m.delivered.inc();
                    }
                }
                Ok(())
            }
        }
    }

    fn try_recv(&mut self) -> Result<Option<Message>, TransportError> {
        match self.inbox.try_recv() {
            Ok(msg) => Ok(Some(msg)),
            Err(TryRecvError::Empty) => Ok(None),
            Err(TryRecvError::Disconnected) => Err(TransportError::Closed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(a: u64, b: u64) -> Message {
        Message::new(NodeId::new(a), NodeId::new(b), false)
    }

    #[test]
    fn delivers_between_endpoints() {
        let net = InMemoryNetwork::new(0.0, 1);
        let mut a = net.endpoint(NodeId::new(0));
        let mut b = net.endpoint(NodeId::new(1));
        a.send(NodeId::new(1), msg(0, 5)).unwrap();
        assert_eq!(b.try_recv().unwrap(), Some(msg(0, 5)));
        assert_eq!(b.try_recv().unwrap(), None);
        assert_eq!(net.sent(), 1);
        assert_eq!(net.dropped(), 0);
    }

    #[test]
    fn loss_rate_one_drops_everything() {
        let net = InMemoryNetwork::new(1.0, 2);
        let mut a = net.endpoint(NodeId::new(0));
        let mut b = net.endpoint(NodeId::new(1));
        for k in 0..100 {
            a.send(NodeId::new(1), msg(0, k)).unwrap();
        }
        assert_eq!(b.try_recv().unwrap(), None);
        assert_eq!(net.dropped(), 100);
    }

    #[test]
    fn empirical_loss_matches_rate() {
        let net = InMemoryNetwork::new(0.2, 3);
        let mut a = net.endpoint(NodeId::new(0));
        let _b = net.endpoint(NodeId::new(1));
        for k in 0..10_000 {
            a.send(NodeId::new(1), msg(0, k)).unwrap();
        }
        let rate = net.dropped() as f64 / net.sent() as f64;
        assert!((rate - 0.2).abs() < 0.02, "empirical loss {rate}");
    }

    #[test]
    fn send_to_departed_peer_is_silent() {
        let net = InMemoryNetwork::new(0.0, 4);
        let mut a = net.endpoint(NodeId::new(0));
        let b = net.endpoint(NodeId::new(1));
        net.disconnect(NodeId::new(1));
        drop(b);
        assert_eq!(a.send(NodeId::new(1), msg(0, 1)), Ok(()));
    }

    #[test]
    fn hub_metrics_track_sent_dropped_delivered() {
        use sandf_obs::MetricsRegistry;
        let registry = MetricsRegistry::new();
        let net = InMemoryNetwork::with_metrics(0.5, 11, &registry);
        let mut a = net.endpoint(NodeId::new(0));
        let _b = net.endpoint(NodeId::new(1));
        for k in 0..1_000 {
            a.send(NodeId::new(1), msg(0, k)).unwrap();
        }
        assert_eq!(registry.counter_value("net.memory.sent"), Some(net.sent()));
        assert_eq!(registry.counter_value("net.memory.dropped"), Some(net.dropped()));
        assert_eq!(
            registry.counter_value("net.memory.delivered"),
            Some(net.sent() - net.dropped()),
            "every non-dropped message goes to a registered inbox here"
        );
        // Sends to unknown peers count as sent but not delivered.
        a.send(NodeId::new(99), msg(0, 0)).unwrap();
        assert_eq!(registry.counter_value("net.memory.sent"), Some(net.sent()));
        assert!(registry.counter_value("net.memory.delivered").unwrap() < net.sent());
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn double_registration_panics() {
        let net = InMemoryNetwork::new(0.0, 5);
        let _a = net.endpoint(NodeId::new(0));
        let _b = net.endpoint(NodeId::new(0));
    }

    #[test]
    fn panicked_worker_does_not_wedge_the_counters() {
        let net = InMemoryNetwork::new(0.0, 7);
        let mut a = net.endpoint(NodeId::new(0));
        let mut b = net.endpoint(NodeId::new(1));
        a.send(NodeId::new(1), msg(0, 1)).unwrap();

        // A worker dies while holding both hub locks, poisoning them.
        let shared = Arc::clone(&net.shared);
        let worker = std::thread::spawn(move || {
            let _loss = shared.loss.lock().unwrap();
            let _inboxes = shared.inboxes.write().unwrap();
            panic!("worker crashed mid-update");
        });
        assert!(worker.join().is_err(), "worker must have panicked");

        // Counters, sends, and (de)registration all recover.
        assert_eq!(net.sent(), 1);
        assert_eq!(net.dropped(), 0);
        a.send(NodeId::new(1), msg(0, 2)).unwrap();
        assert_eq!(b.try_recv().unwrap(), Some(msg(0, 1)));
        assert_eq!(b.try_recv().unwrap(), Some(msg(0, 2)));
        let _c = net.endpoint(NodeId::new(2));
        net.disconnect(NodeId::new(2));
        assert_eq!(net.sent(), 2);
    }

    #[test]
    fn concurrent_senders_are_safe() {
        let net = InMemoryNetwork::new(0.0, 6);
        let mut rx = net.endpoint(NodeId::new(99));
        let handles: Vec<_> = (0..4u64)
            .map(|t| {
                let net = net.clone();
                std::thread::spawn(move || {
                    let mut ep = net.endpoint(NodeId::new(t));
                    for k in 0..250 {
                        ep.send(NodeId::new(99), msg(t, k)).unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let mut count = 0;
        while rx.try_recv().unwrap().is_some() {
            count += 1;
        }
        assert_eq!(count, 1000);
    }
}
