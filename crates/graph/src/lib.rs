//! # sandf-graph — membership-graph analytics
//!
//! The views of all nodes induce a directed *membership multigraph*
//! (Section 4 of Gurevich & Keidar): an edge `(u, v)` for every occurrence
//! of `v` in `u`'s local view. This crate snapshots protocol state into a
//! [`MembershipGraph`] and computes the quantities the paper's evaluation is
//! stated in terms of:
//!
//! * in/out/sum degrees and their distributions ([`DegreeStats`],
//!   [`Histogram`]) — Properties M1/M2, Figures 6.1 and 6.3;
//! * weak connectivity and component counts — the standing assumption of
//!   Sections 4–7;
//! * the Section 2 dependence labeling ([`DependenceReport`]) — Property M4,
//!   Lemma 7.9;
//! * edge-multiset overlap between snapshots ([`edge_jaccard`]) — Property
//!   M5, Section 7.5;
//! * distribution distances ([`total_variation`], [`chi_square_uniform`]) —
//!   Property M3, Lemmas 7.5/7.6.
//!
//! ## Example
//!
//! ```
//! use sandf_core::NodeId;
//! use sandf_graph::{DegreeStats, MembershipGraph};
//!
//! let views = (0u64..8).map(|u| {
//!     let targets = vec![NodeId::new((u + 1) % 8), NodeId::new((u + 2) % 8)];
//!     (NodeId::new(u), targets)
//! });
//! let graph = MembershipGraph::from_views(views);
//! assert!(graph.is_weakly_connected());
//! let stats = DegreeStats::from_samples(&graph.in_degrees());
//! assert_eq!(stats.mean, 2.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dependency;
mod expander;
mod multigraph;
mod overlap;
mod stats;

pub use dependency::DependenceReport;
pub use expander::{clustering_coefficient, degree_assortativity, distance_stats, DistanceStats};
pub use multigraph::{DisjointSets, MembershipGraph};
pub use overlap::{baseline_jaccard, edge_intersection, edge_jaccard};
pub use stats::{chi_square_uniform, total_variation, DegreeStats, Histogram};
