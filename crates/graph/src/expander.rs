//! Expander-quality metrics of the membership graph.
//!
//! The paper's motivation for uniform independent views is that they
//! "result in an expander graph, with good connectivity, robustness, and
//! low diameter" (Section 1, citing Fenner & Frieze). These metrics
//! quantify that claim on snapshots: a converged S&F overlay should show a
//! near-zero clustering coefficient, logarithmic distances, and near-zero
//! degree assortativity — while the poor initial topologies (rings, hub
//! clusters) score very differently.
//!
//! All metrics treat the membership graph as **undirected and simple**
//! (communication flows both ways along an edge: `v ∈ u.lv` lets `u`
//! message `v`, and the reinforcement component immediately creates the
//! reverse edge).

use std::collections::VecDeque;

use crate::multigraph::MembershipGraph;

/// Builds the undirected simple adjacency (indices into `graph.ids()`).
fn undirected_adjacency(graph: &MembershipGraph) -> Vec<Vec<usize>> {
    let n = graph.node_count();
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (u, targets) in graph.out_edge_indices().iter().enumerate() {
        for &v in targets.iter().flatten() {
            if u != v {
                adj[u].push(v);
                adj[v].push(u);
            }
        }
    }
    for list in &mut adj {
        list.sort_unstable();
        list.dedup();
    }
    adj
}

/// The average local clustering coefficient: for each node with degree ≥ 2,
/// the fraction of its neighbor pairs that are themselves adjacent,
/// averaged over all such nodes. Random sparse graphs score `O(d/n)`;
/// lattices and cliques score `Θ(1)`.
///
/// Returns `None` when no node has two neighbors.
#[must_use]
pub fn clustering_coefficient(graph: &MembershipGraph) -> Option<f64> {
    let adj = undirected_adjacency(graph);
    let mut total = 0.0;
    let mut counted = 0usize;
    for neighbors in &adj {
        let k = neighbors.len();
        if k < 2 {
            continue;
        }
        let mut closed = 0usize;
        for (a_pos, &a) in neighbors.iter().enumerate() {
            for &b in &neighbors[a_pos + 1..] {
                if adj[a].binary_search(&b).is_ok() {
                    closed += 1;
                }
            }
        }
        total += closed as f64 / (k * (k - 1) / 2) as f64;
        counted += 1;
    }
    (counted > 0).then(|| total / counted as f64)
}

/// Distance statistics from breadth-first searches.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct DistanceStats {
    /// Mean shortest-path length over all reachable ordered pairs sampled.
    pub mean: f64,
    /// The largest distance observed (a lower bound on the diameter).
    pub max: usize,
    /// Number of (source, target) pairs that contributed.
    pub pairs: usize,
    /// Number of unreachable pairs encountered.
    pub unreachable: usize,
}

/// BFS distance statistics from the given source indices (use all nodes for
/// exact values, or a sample for large graphs).
///
/// # Panics
///
/// Panics if a source index is out of range.
#[must_use]
pub fn distance_stats(graph: &MembershipGraph, sources: &[usize]) -> DistanceStats {
    let adj = undirected_adjacency(graph);
    let n = adj.len();
    let mut sum = 0usize;
    let mut pairs = 0usize;
    let mut max = 0usize;
    let mut unreachable = 0usize;
    let mut dist = vec![usize::MAX; n];
    let mut queue = VecDeque::new();
    for &s in sources {
        assert!(s < n, "source index out of range");
        dist.fill(usize::MAX);
        dist[s] = 0;
        queue.clear();
        queue.push_back(s);
        while let Some(u) = queue.pop_front() {
            for &v in &adj[u] {
                if dist[v] == usize::MAX {
                    dist[v] = dist[u] + 1;
                    queue.push_back(v);
                }
            }
        }
        for (v, &d) in dist.iter().enumerate() {
            if v == s {
                continue;
            }
            if d == usize::MAX {
                unreachable += 1;
            } else {
                sum += d;
                pairs += 1;
                max = max.max(d);
            }
        }
    }
    DistanceStats {
        mean: if pairs == 0 { 0.0 } else { sum as f64 / pairs as f64 },
        max,
        pairs,
        unreachable,
    }
}

/// Degree assortativity: the Pearson correlation of endpoint degrees over
/// the undirected edges. Near 0 for uniform random graphs; strongly
/// negative for hub-and-spoke topologies.
///
/// Returns `None` when the graph has no edges or zero degree variance.
#[must_use]
pub fn degree_assortativity(graph: &MembershipGraph) -> Option<f64> {
    let adj = undirected_adjacency(graph);
    let degrees: Vec<f64> = adj.iter().map(|a| a.len() as f64).collect();
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for (u, neighbors) in adj.iter().enumerate() {
        for &v in neighbors {
            if u < v {
                // Count each undirected edge once, symmetrized.
                xs.push(degrees[u]);
                ys.push(degrees[v]);
                xs.push(degrees[v]);
                ys.push(degrees[u]);
            }
        }
    }
    if xs.is_empty() {
        return None;
    }
    let m = xs.len() as f64;
    let mean_x = xs.iter().sum::<f64>() / m;
    let mean_y = ys.iter().sum::<f64>() / m;
    let mut cov = 0.0;
    let mut var_x = 0.0;
    let mut var_y = 0.0;
    for (x, y) in xs.iter().zip(&ys) {
        cov += (x - mean_x) * (y - mean_y);
        var_x += (x - mean_x).powi(2);
        var_y += (y - mean_y).powi(2);
    }
    let denom = (var_x * var_y).sqrt();
    (denom > 0.0).then(|| cov / denom)
}

#[cfg(test)]
mod tests {
    use sandf_core::NodeId;

    use super::*;

    fn id(raw: u64) -> NodeId {
        NodeId::new(raw)
    }

    fn ring(n: u64) -> MembershipGraph {
        MembershipGraph::from_views((0..n).map(|i| (id(i), vec![id((i + 1) % n)])))
    }

    fn clique(n: u64) -> MembershipGraph {
        MembershipGraph::from_views((0..n).map(|i| {
            let targets = (0..n).filter(|&j| j != i).map(id).collect();
            (id(i), targets)
        }))
    }

    #[test]
    fn clique_clusters_fully() {
        let g = clique(5);
        assert!((clustering_coefficient(&g).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ring_has_zero_clustering() {
        let g = ring(8);
        assert_eq!(clustering_coefficient(&g), Some(0.0));
    }

    #[test]
    fn clustering_none_without_two_neighbor_nodes() {
        let g = MembershipGraph::from_views([(id(0), vec![id(1)]), (id(1), vec![])]);
        assert_eq!(clustering_coefficient(&g), None);
    }

    #[test]
    fn ring_distances_scale_linearly() {
        let g = ring(16);
        let sources: Vec<usize> = (0..16).collect();
        let stats = distance_stats(&g, &sources);
        assert_eq!(stats.max, 8, "ring diameter is n/2");
        assert_eq!(stats.unreachable, 0);
        assert!((stats.mean - 64.0 / 15.0).abs() < 1e-9, "mean {}", stats.mean);
    }

    #[test]
    fn clique_distances_are_one() {
        let g = clique(6);
        let stats = distance_stats(&g, &[0, 3]);
        assert_eq!(stats.max, 1);
        assert_eq!(stats.mean, 1.0);
        assert_eq!(stats.pairs, 10);
    }

    #[test]
    fn disconnected_pairs_are_reported() {
        let g =
            MembershipGraph::from_views([(id(0), vec![id(1)]), (id(1), vec![]), (id(2), vec![])]);
        let stats = distance_stats(&g, &[0]);
        assert_eq!(stats.unreachable, 1);
        assert_eq!(stats.pairs, 1);
    }

    #[test]
    fn star_is_disassortative() {
        let g = MembershipGraph::from_views(
            (1..8).map(|i| (id(i), vec![id(0)])).chain([(id(0), vec![])]),
        );
        let r = degree_assortativity(&g).unwrap();
        assert!(r < -0.9, "star assortativity {r}");
    }

    #[test]
    fn regular_graph_assortativity_is_degenerate() {
        // All degrees equal → zero variance → None.
        assert_eq!(degree_assortativity(&ring(8)), None);
    }

    #[test]
    fn empty_graph_yields_none() {
        let g = MembershipGraph::from_views([(id(0), vec![]), (id(1), vec![])]);
        assert_eq!(degree_assortativity(&g), None);
        assert_eq!(clustering_coefficient(&g), None);
    }
}
