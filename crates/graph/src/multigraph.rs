//! The membership multigraph (Section 4): vertices are nodes, and there is an
//! edge `(u, v)` with the multiplicity of `v` in `u`'s view.

use std::collections::HashMap;

use sandf_core::{NodeId, SfNode};

/// A snapshot of the global membership graph `G = (V, E)`.
///
/// `V` is the set of *live* nodes whose views were captured; `E` is a
/// multiset with an edge `(u, v)` for every occurrence of `v` in `u.lv`.
/// Edges pointing at ids outside `V` (nodes that left or failed, whose ids
/// still linger in views — Section 6.5) are retained and reported as
/// [`dangling_edge_count`](Self::dangling_edge_count), but do not participate
/// in connectivity or indegree computations.
///
/// # Examples
///
/// ```
/// use sandf_core::NodeId;
/// use sandf_graph::MembershipGraph;
///
/// let a = NodeId::new(0);
/// let b = NodeId::new(1);
/// let graph = MembershipGraph::from_views([(a, vec![b, b]), (b, vec![a])]);
/// assert_eq!(graph.node_count(), 2);
/// assert_eq!(graph.edge_count(), 3);
/// assert_eq!(graph.out_degree(a), Some(2));
/// assert_eq!(graph.in_degree(a), Some(1));
/// assert!(graph.is_weakly_connected());
/// ```
#[derive(Clone, Debug)]
pub struct MembershipGraph {
    ids: Vec<NodeId>,
    index: HashMap<NodeId, usize>,
    /// Out-edges per node, as indices into `ids`; `None` marks a dangling
    /// target (an id outside the captured node set).
    out_edges: Vec<Vec<Option<usize>>>,
    in_degrees: Vec<usize>,
    dangling: usize,
}

impl MembershipGraph {
    /// Builds a graph from `(node, out-neighbor multiset)` pairs.
    pub fn from_views<I>(views: I) -> Self
    where
        I: IntoIterator<Item = (NodeId, Vec<NodeId>)>,
    {
        let collected: Vec<(NodeId, Vec<NodeId>)> = views.into_iter().collect();
        let ids: Vec<NodeId> = collected.iter().map(|(id, _)| *id).collect();
        let index: HashMap<NodeId, usize> =
            ids.iter().enumerate().map(|(i, &id)| (id, i)).collect();
        assert_eq!(index.len(), ids.len(), "duplicate node id in graph snapshot");
        let mut in_degrees = vec![0usize; ids.len()];
        let mut dangling = 0usize;
        let out_edges: Vec<Vec<Option<usize>>> = collected
            .iter()
            .map(|(_, targets)| {
                targets
                    .iter()
                    .map(|t| {
                        let resolved = index.get(t).copied();
                        match resolved {
                            Some(k) => in_degrees[k] += 1,
                            None => dangling += 1,
                        }
                        resolved
                    })
                    .collect()
            })
            .collect();
        Self { ids, index, out_edges, in_degrees, dangling }
    }

    /// Builds a graph by snapshotting the views of live protocol nodes.
    pub fn from_nodes<'a, I>(nodes: I) -> Self
    where
        I: IntoIterator<Item = &'a SfNode>,
    {
        Self::from_views(nodes.into_iter().map(|n| (n.id(), n.view().ids().collect())))
    }

    /// Number of live nodes `|V|`.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.ids.len()
    }

    /// Total number of edges (with multiplicity), including dangling ones.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.out_edges.iter().map(Vec::len).sum()
    }

    /// Number of edges whose target is not a live node (ids of left/failed
    /// nodes still present in views).
    #[must_use]
    pub fn dangling_edge_count(&self) -> usize {
        self.dangling
    }

    /// The node ids in this snapshot.
    #[must_use]
    pub fn ids(&self) -> &[NodeId] {
        &self.ids
    }

    /// Outdegree `d(u)`, or `None` if `u` is not in the snapshot.
    #[must_use]
    pub fn out_degree(&self, u: NodeId) -> Option<usize> {
        self.index.get(&u).map(|&i| self.out_edges[i].len())
    }

    /// Indegree `d_in(u)` counting only edges from live nodes, or `None` if
    /// `u` is not in the snapshot.
    #[must_use]
    pub fn in_degree(&self, u: NodeId) -> Option<usize> {
        self.index.get(&u).map(|&i| self.in_degrees[i])
    }

    /// All outdegrees, in `ids()` order.
    #[must_use]
    pub fn out_degrees(&self) -> Vec<usize> {
        self.out_edges.iter().map(Vec::len).collect()
    }

    /// All indegrees, in `ids()` order.
    #[must_use]
    pub fn in_degrees(&self) -> Vec<usize> {
        self.in_degrees.clone()
    }

    /// Sum degree `d_s(u) = d(u) + 2·d_in(u)` (Definition 6.1) for every
    /// node, in `ids()` order.
    #[must_use]
    pub fn sum_degrees(&self) -> Vec<usize> {
        self.out_edges.iter().zip(&self.in_degrees).map(|(out, &din)| out.len() + 2 * din).collect()
    }

    /// The out-neighbors of `u` (live targets only, with multiplicity), or
    /// `None` if `u` is not in the snapshot.
    #[must_use]
    pub fn out_neighbors(&self, u: NodeId) -> Option<Vec<NodeId>> {
        let &i = self.index.get(&u)?;
        Some(self.out_edges[i].iter().flatten().map(|&j| self.ids[j]).collect())
    }

    /// Internal index-based adjacency (live targets), for analytics in this
    /// crate.
    pub(crate) fn out_edge_indices(&self) -> &[Vec<Option<usize>>] {
        &self.out_edges
    }

    /// The multiplicity of the edge `(u, v)`.
    #[must_use]
    pub fn edge_multiplicity(&self, u: NodeId, v: NodeId) -> usize {
        let (Some(&ui), target) = (self.index.get(&u), self.index.get(&v).copied()) else {
            return 0;
        };
        match target {
            Some(vi) => self.out_edges[ui].iter().filter(|&&t| t == Some(vi)).count(),
            None => 0,
        }
    }

    /// Number of self-edges `(u, u)` in the graph.
    #[must_use]
    pub fn self_edge_count(&self) -> usize {
        self.out_edges
            .iter()
            .enumerate()
            .map(|(i, targets)| targets.iter().filter(|&&t| t == Some(i)).count())
            .sum()
    }

    /// Number of *redundant parallel* edges: for every ordered pair `(u, v)`
    /// with multiplicity `m ≥ 2`, the `m − 1` extra copies. The Section 2
    /// labeling counts these as dependent (duplicate ids in a view convey no
    /// new information).
    #[must_use]
    pub fn parallel_edge_count(&self) -> usize {
        let mut extra = 0usize;
        let mut seen: HashMap<usize, usize> = HashMap::new();
        for targets in &self.out_edges {
            seen.clear();
            for t in targets.iter().flatten() {
                *seen.entry(*t).or_insert(0) += 1;
            }
            extra += seen.values().map(|&m| m - 1).sum::<usize>();
        }
        extra
    }

    /// Whether the live subgraph is weakly connected: there is an undirected
    /// path between every pair of live nodes (Section 4). An empty graph is
    /// considered connected; dangling edges are ignored.
    #[must_use]
    pub fn is_weakly_connected(&self) -> bool {
        self.weakly_connected_components() <= 1
    }

    /// Number of weakly connected components of the live subgraph.
    #[must_use]
    pub fn weakly_connected_components(&self) -> usize {
        let n = self.ids.len();
        if n == 0 {
            return 0;
        }
        let mut dsu = DisjointSets::new(n);
        for (u, targets) in self.out_edges.iter().enumerate() {
            for &v in targets.iter().flatten() {
                dsu.union(u, v);
            }
        }
        dsu.count()
    }
}

/// A minimal union-find (disjoint-set) structure with path compression and
/// union by size.
#[derive(Clone, Debug)]
pub struct DisjointSets {
    parent: Vec<usize>,
    size: Vec<usize>,
    components: usize,
}

impl DisjointSets {
    /// Creates `n` singleton sets.
    #[must_use]
    pub fn new(n: usize) -> Self {
        Self { parent: (0..n).collect(), size: vec![1; n], components: n }
    }

    /// Finds the representative of `x`'s set.
    pub fn find(&mut self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] != root {
            root = self.parent[root];
        }
        let mut cur = x;
        while self.parent[cur] != root {
            let next = self.parent[cur];
            self.parent[cur] = root;
            cur = next;
        }
        root
    }

    /// Merges the sets containing `a` and `b`. Returns `true` if they were
    /// distinct.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        if self.size[ra] < self.size[rb] {
            core::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb] = ra;
        self.size[ra] += self.size[rb];
        self.components -= 1;
        true
    }

    /// Current number of disjoint sets.
    #[must_use]
    pub fn count(&self) -> usize {
        self.components
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(raw: u64) -> NodeId {
        NodeId::new(raw)
    }

    #[test]
    fn counts_edges_with_multiplicity() {
        let g = MembershipGraph::from_views([
            (id(0), vec![id(1), id(1), id(2)]),
            (id(1), vec![id(0)]),
            (id(2), vec![]),
        ]);
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.edge_multiplicity(id(0), id(1)), 2);
        assert_eq!(g.edge_multiplicity(id(0), id(2)), 1);
        assert_eq!(g.edge_multiplicity(id(2), id(0)), 0);
        assert_eq!(g.parallel_edge_count(), 1);
    }

    #[test]
    fn degrees_match_views() {
        let g = MembershipGraph::from_views([
            (id(0), vec![id(1), id(2)]),
            (id(1), vec![id(2)]),
            (id(2), vec![]),
        ]);
        assert_eq!(g.out_degree(id(0)), Some(2));
        assert_eq!(g.in_degree(id(2)), Some(2));
        assert_eq!(g.in_degree(id(0)), Some(0));
        assert_eq!(g.out_degree(id(9)), None);
        assert_eq!(g.sum_degrees(), vec![2, 1 + 2, 4]);
    }

    #[test]
    fn dangling_edges_are_counted_but_ignored_for_degrees() {
        let g = MembershipGraph::from_views([(id(0), vec![id(1), id(99)]), (id(1), vec![])]);
        assert_eq!(g.dangling_edge_count(), 1);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.in_degree(id(1)), Some(1));
    }

    #[test]
    fn self_edges_are_detected() {
        let g = MembershipGraph::from_views([(id(0), vec![id(0), id(1)]), (id(1), vec![])]);
        assert_eq!(g.self_edge_count(), 1);
    }

    #[test]
    fn weak_connectivity_ignores_direction() {
        let g = MembershipGraph::from_views([
            (id(0), vec![id(1)]),
            (id(1), vec![]),
            (id(2), vec![id(1)]),
        ]);
        assert!(g.is_weakly_connected());
        let g =
            MembershipGraph::from_views([(id(0), vec![id(1)]), (id(1), vec![]), (id(2), vec![])]);
        assert_eq!(g.weakly_connected_components(), 2);
        assert!(!g.is_weakly_connected());
    }

    #[test]
    fn dangling_edges_do_not_connect() {
        let g = MembershipGraph::from_views([(id(0), vec![id(99)]), (id(1), vec![id(99)])]);
        assert_eq!(g.weakly_connected_components(), 2);
    }

    #[test]
    fn empty_graph_is_connected() {
        let g = MembershipGraph::from_views(std::iter::empty());
        assert!(g.is_weakly_connected());
        assert_eq!(g.weakly_connected_components(), 0);
    }

    #[test]
    #[should_panic(expected = "duplicate node id")]
    fn rejects_duplicate_ids() {
        let _ = MembershipGraph::from_views([(id(0), vec![]), (id(0), vec![])]);
    }

    #[test]
    fn disjoint_sets_union_find() {
        let mut dsu = DisjointSets::new(4);
        assert_eq!(dsu.count(), 4);
        assert!(dsu.union(0, 1));
        assert!(!dsu.union(1, 0));
        assert!(dsu.union(2, 3));
        assert_eq!(dsu.count(), 2);
        dsu.union(0, 3);
        assert_eq!(dsu.count(), 1);
        assert_eq!(dsu.find(2), dsu.find(1));
    }

    #[test]
    fn from_nodes_snapshots_views() {
        use sandf_core::SfConfig;
        let config = SfConfig::lossless(6).unwrap();
        let nodes = vec![
            SfNode::with_view(id(0), config, &[id(1), id(1)]).unwrap(),
            SfNode::with_view(id(1), config, &[id(0), id(0)]).unwrap(),
        ];
        let g = MembershipGraph::from_nodes(&nodes);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.edge_multiplicity(id(0), id(1)), 2);
        assert!(g.is_weakly_connected());
    }
}
