//! Edge-multiset overlap between two membership graphs.
//!
//! The temporal-independence experiment (Property M5, Section 7.5) tracks how
//! quickly the membership graph "forgets" its initial state: starting from a
//! steady-state graph `G(0)`, the overlap between `G(0)` and `G(t)` should
//! decay to the baseline overlap of two *independent* steady-state graphs
//! after each node initiates `O(s log n)` actions.

use std::collections::HashMap;

use sandf_core::NodeId;

use crate::multigraph::MembershipGraph;

fn edge_multiset(g: &MembershipGraph) -> HashMap<(NodeId, NodeId), usize> {
    let mut edges = HashMap::new();
    for &u in g.ids() {
        for &v in g.ids() {
            let m = g.edge_multiplicity(u, v);
            if m > 0 {
                edges.insert((u, v), m);
            }
        }
    }
    edges
}

/// The size of the multiset intersection of the two graphs' edge sets:
/// `Σ_{(u,v)} min(m₁(u,v), m₂(u,v))`.
#[must_use]
pub fn edge_intersection(a: &MembershipGraph, b: &MembershipGraph) -> usize {
    let ea = edge_multiset(a);
    let eb = edge_multiset(b);
    ea.iter().map(|(edge, &ma)| ma.min(eb.get(edge).copied().unwrap_or(0))).sum()
}

/// Jaccard similarity of the two edge multisets: `|∩| / |∪|`, in `[0, 1]`.
/// Two empty graphs have similarity 1.
#[must_use]
pub fn edge_jaccard(a: &MembershipGraph, b: &MembershipGraph) -> f64 {
    let inter = edge_intersection(a, b) as f64;
    // |A ∪ B| = |A| + |B| − |A ∩ B| for multisets under min/max semantics.
    let union = (a.edge_count() - a.dangling_edge_count()) as f64
        + (b.edge_count() - b.dangling_edge_count()) as f64
        - inter;
    if union == 0.0 {
        return 1.0;
    }
    inter / union
}

/// The expected Jaccard similarity of two independent uniformly random edge
/// sets of `edges` directed edges over `n` nodes — the baseline that
/// [`edge_jaccard`] should decay *to* once temporal independence is reached.
///
/// Each of the `n(n−1)` possible directed non-self edges is present in a
/// random graph with probability `p = edges / (n(n−1))`; for small `p` the
/// expected Jaccard is approximately `p / (2 − p)`.
#[must_use]
pub fn baseline_jaccard(n: usize, edges: usize) -> f64 {
    if n < 2 {
        return 1.0;
    }
    let slots = (n * (n - 1)) as f64;
    let p = (edges as f64 / slots).min(1.0);
    p / (2.0 - p)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(raw: u64) -> NodeId {
        NodeId::new(raw)
    }

    fn graph(views: &[(u64, &[u64])]) -> MembershipGraph {
        MembershipGraph::from_views(
            views.iter().map(|&(u, targets)| (id(u), targets.iter().map(|&t| id(t)).collect())),
        )
    }

    #[test]
    fn identical_graphs_overlap_fully() {
        let g = graph(&[(0, &[1, 2]), (1, &[0]), (2, &[])]);
        assert_eq!(edge_intersection(&g, &g), 3);
        assert_eq!(edge_jaccard(&g, &g), 1.0);
    }

    #[test]
    fn disjoint_graphs_do_not_overlap() {
        let a = graph(&[(0, &[1]), (1, &[]), (2, &[])]);
        let b = graph(&[(0, &[2]), (1, &[]), (2, &[])]);
        assert_eq!(edge_intersection(&a, &b), 0);
        assert_eq!(edge_jaccard(&a, &b), 0.0);
    }

    #[test]
    fn multiplicities_use_min() {
        let a = graph(&[(0, &[1, 1, 1]), (1, &[])]);
        let b = graph(&[(0, &[1]), (1, &[])]);
        assert_eq!(edge_intersection(&a, &b), 1);
        // |∪| = 3 + 1 - 1 = 3.
        assert!((edge_jaccard(&a, &b) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_graphs_are_similar() {
        let a = graph(&[(0, &[]), (1, &[])]);
        assert_eq!(edge_jaccard(&a, &a), 1.0);
    }

    #[test]
    fn baseline_jaccard_is_small_for_sparse_graphs() {
        let b = baseline_jaccard(1000, 30_000);
        assert!(b > 0.0 && b < 0.02, "baseline {b}");
        // Degenerate cases.
        assert_eq!(baseline_jaccard(1, 0), 1.0);
        assert!(baseline_jaccard(2, 10) <= 1.0);
    }

    #[test]
    fn baseline_matches_p_over_two_minus_p() {
        let n = 100;
        let edges = 990; // p = 0.1
        let p = 0.1;
        assert!((baseline_jaccard(n, edges) - p / (2.0 - p)).abs() < 1e-12);
    }
}
