//! Descriptive statistics and distribution helpers used across experiments.

/// Summary statistics of a sample of non-negative integers (degrees).
///
/// Section 6.4 reports node indegrees as `mean ± std` (e.g. `28 ± 3.4` for
/// `ℓ = 0`); Property M2 (load balance) asks for bounded indegree variance.
///
/// # Examples
///
/// ```
/// use sandf_graph::DegreeStats;
///
/// let stats = DegreeStats::from_samples(&[2, 4, 4, 4, 5, 5, 7, 9]);
/// assert_eq!(stats.mean, 5.0);
/// assert_eq!(stats.variance, 4.0);
/// assert_eq!(stats.min, 2);
/// assert_eq!(stats.max, 9);
/// ```
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct DegreeStats {
    /// Sample mean.
    pub mean: f64,
    /// Population variance (divides by `n`, matching the paper's usage).
    pub variance: f64,
    /// Smallest sample.
    pub min: usize,
    /// Largest sample.
    pub max: usize,
    /// Number of samples.
    pub count: usize,
}

impl DegreeStats {
    /// Computes statistics over a sample. Returns all-zero statistics for an
    /// empty sample.
    #[must_use]
    pub fn from_samples(samples: &[usize]) -> Self {
        if samples.is_empty() {
            return Self { mean: 0.0, variance: 0.0, min: 0, max: 0, count: 0 };
        }
        let n = samples.len() as f64;
        let mean = samples.iter().map(|&x| x as f64).sum::<f64>() / n;
        let variance = samples.iter().map(|&x| (x as f64 - mean).powi(2)).sum::<f64>() / n;
        Self {
            mean,
            variance,
            min: *samples.iter().min().expect("nonempty"),
            max: *samples.iter().max().expect("nonempty"),
            count: samples.len(),
        }
    }

    /// Population standard deviation.
    #[must_use]
    pub fn std_dev(&self) -> f64 {
        self.variance.sqrt()
    }
}

/// A histogram over non-negative integers, convertible to an empirical
/// probability mass function.
///
/// Used to compare simulated degree distributions against the paper's degree
/// Markov chain and against binomial references (Figures 6.1 and 6.3).
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Histogram {
    counts: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// Creates an empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a histogram from samples.
    #[must_use]
    pub fn from_samples(samples: &[usize]) -> Self {
        let mut h = Self::new();
        for &x in samples {
            h.record(x);
        }
        h
    }

    /// Records one observation of `value`.
    pub fn record(&mut self, value: usize) {
        if value >= self.counts.len() {
            self.counts.resize(value + 1, 0);
        }
        self.counts[value] += 1;
        self.total += 1;
    }

    /// The number of observations of `value`.
    #[must_use]
    pub fn count(&self, value: usize) -> u64 {
        self.counts.get(value).copied().unwrap_or(0)
    }

    /// Total number of observations.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The empirical probability mass function, indexed by value. Empty when
    /// no observation was recorded.
    #[must_use]
    pub fn pmf(&self) -> Vec<f64> {
        if self.total == 0 {
            return Vec::new();
        }
        let n = self.total as f64;
        self.counts.iter().map(|&c| c as f64 / n).collect()
    }

    /// Empirical mean.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        self.counts.iter().enumerate().map(|(v, &c)| v as f64 * c as f64).sum::<f64>()
            / self.total as f64
    }

    /// Empirical (population) variance.
    #[must_use]
    pub fn variance(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let mean = self.mean();
        self.counts
            .iter()
            .enumerate()
            .map(|(v, &c)| (v as f64 - mean).powi(2) * c as f64)
            .sum::<f64>()
            / self.total as f64
    }

    /// The `q`-quantile by the nearest-rank method: the smallest recorded
    /// value such that at least `⌈q·n⌉` observations are `≤` it. Returns
    /// `None` for an empty histogram.
    ///
    /// Nearest-rank always returns an actually-observed value (on a
    /// singleton histogram every quantile is that value), is monotone in
    /// `q`, and depends only on the multiset of samples — the three
    /// properties pinned by this crate's property tests.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < q ≤ 1`.
    #[must_use]
    pub fn quantile(&self, q: f64) -> Option<usize> {
        assert!(q > 0.0 && q <= 1.0, "quantile must be in (0, 1]");
        if self.total == 0 {
            return None;
        }
        // ⌈q·n⌉ computed in f64 is exact here: totals are far below 2^52.
        let rank = (q * self.total as f64).ceil() as u64;
        let mut cumulative = 0;
        for (value, &count) in self.counts.iter().enumerate() {
            cumulative += count;
            if cumulative >= rank {
                return Some(value);
            }
        }
        // Unreachable: cumulative reaches `total ≥ rank` on the last bucket.
        Some(self.counts.len() - 1)
    }

    /// The median (nearest-rank 0.5-quantile).
    #[must_use]
    pub fn p50(&self) -> Option<usize> {
        self.quantile(0.5)
    }

    /// The nearest-rank 0.95-quantile.
    #[must_use]
    pub fn p95(&self) -> Option<usize> {
        self.quantile(0.95)
    }

    /// The nearest-rank 0.99-quantile.
    #[must_use]
    pub fn p99(&self) -> Option<usize> {
        self.quantile(0.99)
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Self) {
        if other.counts.len() > self.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (dst, &src) in self.counts.iter_mut().zip(&other.counts) {
            *dst += src;
        }
        self.total += other.total;
    }
}

/// Total variation distance between two probability mass functions (padded
/// with zeros to the longer length): `½ Σ |p_i − q_i|`.
///
/// The fundamental theorem of ergodic Markov chains (Section 3.2) is stated
/// in terms of this distance; the exact-enumeration experiment (Lemma 7.5)
/// asserts it is negligible between the computed stationary distribution and
/// the uniform one.
#[must_use]
pub fn total_variation(p: &[f64], q: &[f64]) -> f64 {
    let len = p.len().max(q.len());
    let mut sum = 0.0;
    for i in 0..len {
        let pi = p.get(i).copied().unwrap_or(0.0);
        let qi = q.get(i).copied().unwrap_or(0.0);
        sum += (pi - qi).abs();
    }
    sum / 2.0
}

/// Pearson χ² statistic of observed counts against a uniform expectation.
///
/// Used by the uniformity experiment (Lemma 7.6 / Property M3): over a long
/// run, every id `v ≠ u` should appear in `u`'s view equally often.
///
/// Returns `None` when there are fewer than two categories or no
/// observations.
#[must_use]
pub fn chi_square_uniform(observed: &[u64]) -> Option<f64> {
    if observed.len() < 2 {
        return None;
    }
    let total: u64 = observed.iter().sum();
    if total == 0 {
        return None;
    }
    let expected = total as f64 / observed.len() as f64;
    Some(
        observed
            .iter()
            .map(|&o| {
                let diff = o as f64 - expected;
                diff * diff / expected
            })
            .sum(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degree_stats_handles_empty() {
        let s = DegreeStats::from_samples(&[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn degree_stats_single_sample() {
        let s = DegreeStats::from_samples(&[7]);
        assert_eq!(s.mean, 7.0);
        assert_eq!(s.variance, 0.0);
        assert_eq!((s.min, s.max), (7, 7));
    }

    #[test]
    fn std_dev_is_sqrt_variance() {
        let s = DegreeStats::from_samples(&[2, 4, 4, 4, 5, 5, 7, 9]);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_records_and_normalizes() {
        let mut h = Histogram::new();
        h.record(0);
        h.record(2);
        h.record(2);
        h.record(5);
        assert_eq!(h.total(), 4);
        assert_eq!(h.count(2), 2);
        assert_eq!(h.count(1), 0);
        assert_eq!(h.count(99), 0);
        let pmf = h.pmf();
        assert_eq!(pmf.len(), 6);
        assert!((pmf.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert_eq!(pmf[2], 0.5);
    }

    #[test]
    fn histogram_moments() {
        let h = Histogram::from_samples(&[1, 3]);
        assert_eq!(h.mean(), 2.0);
        assert_eq!(h.variance(), 1.0);
    }

    #[test]
    fn histogram_merge_adds_counts() {
        let mut a = Histogram::from_samples(&[1, 1]);
        let b = Histogram::from_samples(&[3]);
        a.merge(&b);
        assert_eq!(a.total(), 3);
        assert_eq!(a.count(1), 2);
        assert_eq!(a.count(3), 1);
    }

    #[test]
    fn empty_histogram_pmf_is_empty() {
        assert!(Histogram::new().pmf().is_empty());
        assert_eq!(Histogram::new().mean(), 0.0);
        assert_eq!(Histogram::new().variance(), 0.0);
    }

    #[test]
    fn total_variation_of_identical_is_zero() {
        assert_eq!(total_variation(&[0.5, 0.5], &[0.5, 0.5]), 0.0);
    }

    #[test]
    fn total_variation_of_disjoint_is_one() {
        assert!((total_variation(&[1.0, 0.0], &[0.0, 1.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn total_variation_pads_lengths() {
        assert!((total_variation(&[1.0], &[0.5, 0.5]) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn chi_square_uniform_is_zero_for_uniform_counts() {
        assert_eq!(chi_square_uniform(&[5, 5, 5, 5]), Some(0.0));
    }

    #[test]
    fn chi_square_uniform_grows_with_imbalance() {
        let balanced = chi_square_uniform(&[10, 10, 10, 10]).unwrap();
        let skewed = chi_square_uniform(&[40, 0, 0, 0]).unwrap();
        assert!(skewed > balanced);
        assert!((skewed - 120.0).abs() < 1e-12);
    }

    #[test]
    fn chi_square_uniform_rejects_degenerate_inputs() {
        assert_eq!(chi_square_uniform(&[]), None);
        assert_eq!(chi_square_uniform(&[3]), None);
        assert_eq!(chi_square_uniform(&[0, 0]), None);
    }
}
