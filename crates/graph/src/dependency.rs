//! Spatial-dependence accounting (Section 2 labeling, Property M4).

use std::collections::HashMap;

use sandf_core::{NodeId, SfNode};

/// Breakdown of dependent view entries across a set of nodes.
///
/// An entry is labeled **dependent** when any of the Section 2 rules apply:
///
/// 1. it is a *self-edge* (`u.lv[i] = u`) — always dependent;
/// 2. it carries the duplication tag maintained by the protocol (an id
///    instance created by or received after a duplication, Section 7.4);
/// 3. it is a redundant duplicate: of `m` occurrences of the same id in one
///    view, at least `m − 1` are dependent ("all but one of these edges are
///    considered dependent").
///
/// The expected fraction of *independent* entries is the paper's `α`;
/// Lemma 7.9 bounds it from below by `1 − 2(ℓ + δ)`.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct DependenceReport {
    /// Total nonempty view entries inspected.
    pub total_entries: usize,
    /// Entries labeled dependent by the rules above.
    pub dependent_entries: usize,
    /// Of the dependent entries, how many are self-edges.
    pub self_edges: usize,
    /// Of the dependent entries, how many carry the duplication tag (and are
    /// not self-edges).
    pub tagged: usize,
}

impl DependenceReport {
    /// Measures dependence across the views of the given nodes.
    pub fn measure<'a, I>(nodes: I) -> Self
    where
        I: IntoIterator<Item = &'a SfNode>,
    {
        let mut report = Self::default();
        let mut groups: HashMap<NodeId, (usize, usize)> = HashMap::new();
        for node in nodes {
            groups.clear();
            for entry in node.view().entries() {
                report.total_entries += 1;
                if entry.id == node.id() {
                    report.self_edges += 1;
                    continue; // counted below via the self-edge rule
                }
                let group = groups.entry(entry.id).or_insert((0, 0));
                group.0 += 1;
                if entry.dependent {
                    group.1 += 1;
                }
            }
            for &(m, t) in groups.values() {
                // All but one duplicate are dependent; explicit tags can only
                // raise the count.
                let dependent = t.max(m.saturating_sub(1));
                report.dependent_entries += dependent;
                report.tagged += t.min(dependent);
            }
        }
        report.dependent_entries += report.self_edges;
        report
    }

    /// The measured independent fraction `α`. Returns 1.0 for an empty
    /// sample (vacuously independent).
    #[must_use]
    pub fn independent_fraction(&self) -> f64 {
        if self.total_entries == 0 {
            return 1.0;
        }
        1.0 - self.dependent_entries as f64 / self.total_entries as f64
    }
}

#[cfg(test)]
mod tests {
    use sandf_core::SfConfig;

    use super::*;

    fn id(raw: u64) -> NodeId {
        NodeId::new(raw)
    }

    fn node_with(owner: u64, ids: &[u64]) -> SfNode {
        let config = SfConfig::lossless(8).unwrap();
        let ids: Vec<NodeId> = ids.iter().map(|&r| id(r)).collect();
        let mut node = SfNode::new(id(owner), config);
        for target in ids {
            node.view_mut().insert_at_first_empty(target).unwrap();
        }
        node
    }

    #[test]
    fn clean_views_are_fully_independent() {
        let nodes = vec![node_with(0, &[1, 2]), node_with(1, &[0, 2])];
        let report = DependenceReport::measure(&nodes);
        assert_eq!(report.total_entries, 4);
        assert_eq!(report.dependent_entries, 0);
        assert_eq!(report.independent_fraction(), 1.0);
    }

    #[test]
    fn self_edges_are_dependent() {
        let nodes = vec![node_with(0, &[0, 1])];
        let report = DependenceReport::measure(&nodes);
        assert_eq!(report.self_edges, 1);
        assert_eq!(report.dependent_entries, 1);
        assert!((report.independent_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn duplicates_count_all_but_one() {
        let nodes = vec![node_with(0, &[5, 5, 5, 7])];
        let report = DependenceReport::measure(&nodes);
        assert_eq!(report.total_entries, 4);
        assert_eq!(report.dependent_entries, 2);
    }

    #[test]
    fn tags_raise_the_count_beyond_duplicates() {
        let mut node = node_with(0, &[5, 5, 7]);
        // Tag both copies of 5: tags (2) exceed the duplicate rule (1).
        node.view_mut().set_dependent(0, true);
        node.view_mut().set_dependent(1, true);
        let report = DependenceReport::measure(std::iter::once(&node));
        assert_eq!(report.dependent_entries, 2);
        assert_eq!(report.tagged, 2);
    }

    #[test]
    fn tags_below_duplicate_rule_do_not_double_count() {
        let mut node = node_with(0, &[5, 5, 5]);
        node.view_mut().set_dependent(0, true);
        // Duplicate rule demands 2 dependents; one of them is the tagged one.
        let report = DependenceReport::measure(std::iter::once(&node));
        assert_eq!(report.dependent_entries, 2);
        assert_eq!(report.tagged, 1);
    }

    #[test]
    fn empty_sample_is_vacuously_independent() {
        let report = DependenceReport::measure(std::iter::empty());
        assert_eq!(report.independent_fraction(), 1.0);
    }
}
