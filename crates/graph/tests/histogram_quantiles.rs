//! Property tests of `Histogram`'s nearest-rank quantile helpers.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use sandf_graph::Histogram;

fn arb_samples() -> impl Strategy<Value = Vec<usize>> {
    proptest::collection::vec(0usize..512, 1..128)
}

proptest! {
    /// Quantiles are monotone in `q`: a higher quantile can never return a
    /// smaller value.
    #[test]
    fn monotone_in_quantile(samples in arb_samples(), a in 1u32..=100, b in 1u32..=100) {
        let h = Histogram::from_samples(&samples);
        let (lo, hi) = (a.min(b), a.max(b));
        let at_lo = h.quantile(f64::from(lo) / 100.0).expect("nonempty");
        let at_hi = h.quantile(f64::from(hi) / 100.0).expect("nonempty");
        prop_assert!(at_lo <= at_hi, "q{lo} = {at_lo} > q{hi} = {at_hi}");
    }

    /// On a singleton histogram every quantile is the lone sample, exactly.
    #[test]
    fn exact_on_singletons(x in 0usize..512, q in 1u32..=100) {
        let h = Histogram::from_samples(&[x]);
        prop_assert_eq!(h.quantile(f64::from(q) / 100.0), Some(x));
        prop_assert_eq!(h.p50(), Some(x));
        prop_assert_eq!(h.p95(), Some(x));
        prop_assert_eq!(h.p99(), Some(x));
    }

    /// Quantiles depend only on the multiset of samples, not the order in
    /// which they were recorded.
    #[test]
    fn permutation_invariant(samples in arb_samples(), seed in any::<u64>(), q in 1u32..=100) {
        let reference = Histogram::from_samples(&samples);
        let mut shuffled = samples;
        shuffled.shuffle(&mut StdRng::seed_from_u64(seed));
        let permuted = Histogram::from_samples(&shuffled);
        let q = f64::from(q) / 100.0;
        prop_assert_eq!(reference.quantile(q), permuted.quantile(q));
    }

    /// Nearest-rank quantiles always return an actually-observed value
    /// bounded by the sample extremes, and the 1.0-quantile IS the maximum.
    #[test]
    fn returns_observed_values(samples in arb_samples(), q in 1u32..=100) {
        let h = Histogram::from_samples(&samples);
        let value = h.quantile(f64::from(q) / 100.0).expect("nonempty");
        prop_assert!(h.count(value) > 0, "q returned unobserved value {value}");
        prop_assert!(value >= *samples.iter().min().expect("nonempty"));
        prop_assert!(value <= *samples.iter().max().expect("nonempty"));
        prop_assert_eq!(h.quantile(1.0), samples.iter().max().copied());
    }
}

#[test]
fn empty_histogram_has_no_quantiles() {
    let h = Histogram::new();
    assert_eq!(h.quantile(0.5), None);
    assert_eq!(h.p50(), None);
    assert_eq!(h.p95(), None);
    assert_eq!(h.p99(), None);
}

#[test]
fn median_of_known_sample() {
    // 10 samples: rank ⌈0.5·10⌉ = 5 → the 5th smallest (1-indexed).
    let h = Histogram::from_samples(&[1, 2, 3, 4, 5, 6, 7, 8, 9, 10]);
    assert_eq!(h.p50(), Some(5));
    assert_eq!(h.p95(), Some(10));
    assert_eq!(h.quantile(0.1), Some(1));
}

#[test]
#[should_panic(expected = "quantile")]
fn zero_quantile_is_rejected() {
    let _ = Histogram::from_samples(&[1]).quantile(0.0);
}
