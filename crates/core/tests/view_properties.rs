//! Property tests of the view slot algebra.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sandf_core::{Entry, LocalView, NodeId};

#[derive(Clone, Debug)]
enum Op {
    Insert(u64),
    ClearSlot(usize),
    RemoveOne(u64),
    SetEntry(usize, u64),
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u64..32).prop_map(Op::Insert),
        (0usize..16).prop_map(Op::ClearSlot),
        (0u64..32).prop_map(Op::RemoveOne),
        ((0usize..16), (0u64..32)).prop_map(|(s, id)| Op::SetEntry(s, id)),
    ]
}

proptest! {
    /// The cached occupancy always matches a recount, and multiplicities
    /// sum to the occupancy, under arbitrary operation sequences.
    #[test]
    fn occupancy_is_consistent(ops in proptest::collection::vec(arb_op(), 0..200), seed in any::<u64>()) {
        let s = 16usize;
        let mut view = LocalView::new(s);
        let mut rng = StdRng::seed_from_u64(seed);
        for op in ops {
            match op {
                Op::Insert(id) => {
                    let _ = view.insert_into_random_empty(&mut rng, Entry::independent(NodeId::new(id)));
                }
                Op::ClearSlot(slot) => {
                    let _ = view.clear_slot(slot % s);
                }
                Op::RemoveOne(id) => {
                    let _ = view.remove_one(NodeId::new(id));
                }
                Op::SetEntry(slot, id) => {
                    let _ = view.set_entry(slot % s, Entry::independent(NodeId::new(id)));
                }
            }
            let recount = view.slots().flatten().count();
            prop_assert_eq!(view.out_degree(), recount);
            prop_assert!(view.out_degree() <= s);
            let mult_sum: usize = (0..32u64)
                .map(|id| view.multiplicity(NodeId::new(id)))
                .sum();
            prop_assert_eq!(mult_sum, recount);
            prop_assert_eq!(view.is_full(), recount == s);
        }
    }

    /// `insert_into_random_empty` succeeds exactly when the view is not
    /// full, and never overwrites an occupied slot.
    #[test]
    fn insert_fills_only_empty_slots(prefill in 0usize..=16, id in any::<u64>(), seed in any::<u64>()) {
        let s = 16usize;
        let mut view = LocalView::new(s);
        for k in 0..prefill {
            view.insert_at_first_empty(NodeId::new(k as u64 + 1000)).unwrap();
        }
        let before: Vec<Option<Entry>> = view.slots().collect();
        let mut rng = StdRng::seed_from_u64(seed);
        let result = view.insert_into_random_empty(&mut rng, Entry::independent(NodeId::new(id)));
        if prefill == s {
            prop_assert!(result.is_err());
        } else {
            let slot = result.unwrap();
            prop_assert!(before[slot].is_none());
            prop_assert_eq!(view.entry(slot).unwrap().id, NodeId::new(id));
            // Every other slot is untouched.
            for (k, prev) in before.iter().enumerate() {
                if k != slot {
                    prop_assert_eq!(view.entry(k), *prev);
                }
            }
        }
    }

    /// Slot-pair selection is always a valid distinct pair.
    #[test]
    fn pick_pairs_are_distinct(seed in any::<u64>(), s in 2usize..64) {
        let view = LocalView::new(s);
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..64 {
            let (i, j) = view.pick_two_distinct_slots(&mut rng);
            prop_assert!(i < s && j < s && i != j);
        }
    }

    /// The dependence count never exceeds the occupancy.
    #[test]
    fn dependence_bounded_by_occupancy(ids in proptest::collection::vec((0u64..8, any::<bool>()), 0..16)) {
        let mut view = LocalView::new(16);
        for &(id, dep) in &ids {
            let slot = view.insert_at_first_empty(NodeId::new(id)).unwrap();
            view.set_dependent(slot, dep);
        }
        let owner = NodeId::new(3);
        prop_assert!(view.dependent_entries(owner) <= view.out_degree());
    }
}
