//! # sandf-core — the Send & Forget membership protocol
//!
//! Core implementation of the **S&F** (*send & forget*) gossip-based
//! membership protocol from Gurevich & Keidar, *Correctness of Gossip-Based
//! Membership Under Message Loss* (PODC 2009; SICOMP 39(8), 2010).
//!
//! Each node maintains a [`LocalView`] of `s` slots holding node ids. An
//! *action* consists of at most two single-node *steps*:
//!
//! 1. [`SfNode::initiate`] — the initiator picks two distinct slots
//!    uniformly at random; if both hold ids `v` and `w`, it sends `[u, w]`
//!    to `v` and clears both slots (or *duplicates* them when its outdegree
//!    is at the lower threshold `d_L`, compensating for message loss).
//! 2. [`SfNode::receive`] — the target stores both received ids into empty
//!    slots (or *deletes* them when its view is full).
//!
//! Because each step runs at a single node, the protocol needs no
//! bookkeeping, tolerates message loss, and its actions trivially never
//! overlap — the properties that make it analyzable (Sections 4–5 of the
//! paper).
//!
//! This crate is deliberately transport-free: `initiate` *returns* the
//! message, and the embedding (the `sandf-sim` simulator or the
//! `sandf-runtime` network runtime) decides its fate. All randomness flows
//! through a caller-supplied [`rand::Rng`], so runs are reproducible.
//!
//! ## Example
//!
//! ```
//! use rand::SeedableRng;
//! use rand::rngs::StdRng;
//! use sandf_core::{InitiateOutcome, NodeId, SfConfig, SfNode};
//!
//! // Paper parameters for an expected outdegree of 30 (Section 6.3).
//! let config = SfConfig::new(40, 18)?;
//! let bootstrap: Vec<NodeId> = (1..=18).map(NodeId::new).collect();
//! let mut node = SfNode::with_view(NodeId::new(0), config, &bootstrap)?;
//!
//! let mut rng = StdRng::seed_from_u64(7);
//! match node.initiate(&mut rng) {
//!     InitiateOutcome::Sent { to, message, .. } => {
//!         // Hand `message` to your transport, addressed to `to`.
//!         assert_eq!(message.sender, NodeId::new(0));
//!         assert_ne!(to, message.sender);
//!     }
//!     InitiateOutcome::SelfLoop => { /* nothing to send this round */ }
//! }
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod error;
mod event;
mod id;
mod message;
mod metrics;
mod protocol;
mod view;

pub use config::SfConfig;
pub use error::{ConfigError, JoinError};
pub use event::{InitiateOutcome, ReceiveOutcome};
pub use id::NodeId;
pub use message::Message;
pub use metrics::NodeStats;
pub use protocol::SfNode;
pub use view::{Entry, LocalView};
