//! Local views: fixed arrays of `s` id slots (Section 2).

use rand::Rng;

use crate::id::NodeId;

/// One occupied view slot.
///
/// Besides the stored [`NodeId`], an entry carries a *dependence tag* used to
/// measure Property M4 (spatial independence). The tag mirrors the paper's
/// edge labeling of Section 2 and the dependence Markov chain of Section 7.4
/// (Figure 7.1): an id *instance* becomes dependent when it is sent with
/// duplication or received after having been duplicated, and becomes
/// independent again when it is sent without duplication. The tag never
/// influences protocol behavior — it exists purely so experiments can count
/// dependent entries without instrumenting the protocol externally.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Entry {
    /// The stored node id.
    pub id: NodeId,
    /// Whether this id instance is labeled dependent (Section 2 labeling).
    pub dependent: bool,
}

impl Entry {
    /// Creates an independent (untagged) entry.
    #[must_use]
    pub const fn independent(id: NodeId) -> Self {
        Self { id, dependent: false }
    }

    /// Creates a dependent (tagged) entry.
    #[must_use]
    pub const fn dependent(id: NodeId) -> Self {
        Self { id, dependent: true }
    }
}

/// A node's local view: an array of `s` slots, each empty (`⊥`) or holding a
/// node id (Figure 5.1).
///
/// The view is a *multiset* — duplicate ids are allowed and are accounted for
/// as dependencies by the analysis (Section 2). The number of occupied slots
/// is the node's outdegree `d(u)`.
///
/// # Examples
///
/// ```
/// use sandf_core::{LocalView, NodeId};
///
/// let mut view = LocalView::new(6);
/// assert_eq!(view.out_degree(), 0);
/// view.insert_at_first_empty(NodeId::new(1)).unwrap();
/// view.insert_at_first_empty(NodeId::new(2)).unwrap();
/// assert_eq!(view.out_degree(), 2);
/// assert!(view.contains(NodeId::new(1)));
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct LocalView {
    slots: Vec<Option<Entry>>,
    occupied: usize,
}

impl LocalView {
    /// Creates an all-empty view with `s` slots.
    #[must_use]
    pub fn new(s: usize) -> Self {
        Self { slots: vec![None; s], occupied: 0 }
    }

    /// Creates a view of `s` slots pre-filled with `ids` (in slot order,
    /// remaining slots empty), each tagged with the given dependence.
    ///
    /// # Panics
    ///
    /// Panics if `ids.len() > s`; construction paths in
    /// [`SfNode`](crate::SfNode) validate sizes beforehand.
    #[must_use]
    pub fn from_ids(s: usize, ids: &[NodeId], dependent: bool) -> Self {
        assert!(ids.len() <= s, "more bootstrap ids than view slots");
        let mut slots = vec![None; s];
        for (slot, &id) in slots.iter_mut().zip(ids) {
            *slot = Some(Entry { id, dependent });
        }
        Self { slots, occupied: ids.len() }
    }

    /// Creates a view directly from a slot array (empty slots as `None`).
    ///
    /// This is the bridge back from flat struct-of-arrays engines
    /// (`sandf-sim`'s large-n fast path stores all views in one contiguous
    /// arena and reconstitutes `LocalView`s on demand for snapshots and
    /// measurement). The occupancy count is derived from the slots, so the
    /// result is indistinguishable from a view that reached the same state
    /// through protocol steps.
    #[must_use]
    pub fn from_slots(slots: Vec<Option<Entry>>) -> Self {
        let occupied = slots.iter().flatten().count();
        Self { slots, occupied }
    }

    /// The view size `s` (number of slots, occupied or not).
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// The outdegree `d(u)`: the number of occupied slots.
    #[must_use]
    pub const fn out_degree(&self) -> usize {
        self.occupied
    }

    /// Whether every slot is occupied (`d(u) = s`), in which case received
    /// ids are deleted (Figure 5.1, receive step).
    #[must_use]
    pub fn is_full(&self) -> bool {
        self.occupied == self.slots.len()
    }

    /// The entry at `slot`, or `None` if the slot is empty.
    ///
    /// # Panics
    ///
    /// Panics if `slot >= s`.
    #[must_use]
    pub fn entry(&self, slot: usize) -> Option<Entry> {
        self.slots[slot]
    }

    /// Iterates over all slots in order, yielding `None` for empty slots.
    pub fn slots(&self) -> impl Iterator<Item = Option<Entry>> + '_ {
        self.slots.iter().copied()
    }

    /// Iterates over the occupied entries, in slot order.
    pub fn entries(&self) -> impl Iterator<Item = Entry> + '_ {
        self.slots.iter().flatten().copied()
    }

    /// Iterates over the stored ids (with multiplicity), in slot order.
    pub fn ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.entries().map(|e| e.id)
    }

    /// Whether `id` occurs in some slot.
    #[must_use]
    pub fn contains(&self, id: NodeId) -> bool {
        self.ids().any(|stored| stored == id)
    }

    /// The multiplicity of `id` in the view (0 when absent).
    #[must_use]
    pub fn multiplicity(&self, id: NodeId) -> usize {
        self.ids().filter(|&stored| stored == id).count()
    }

    /// Selects two *distinct slot indices* `1 ≤ i ≠ j ≤ s` uniformly at
    /// random, exactly as `S&F-InitiateAction` does (Figure 5.1, line 2).
    ///
    /// The slots may be empty — the protocol treats that as a self-loop
    /// transformation.
    pub fn pick_two_distinct_slots<R: Rng + ?Sized>(&self, rng: &mut R) -> (usize, usize) {
        let s = self.slots.len();
        debug_assert!(s >= 2, "view must have at least two slots");
        let i = rng.gen_range(0..s);
        let mut j = rng.gen_range(0..s - 1);
        if j >= i {
            j += 1;
        }
        (i, j)
    }

    /// Empties `slot`, returning the entry that was stored there (if any).
    ///
    /// # Panics
    ///
    /// Panics if `slot >= s`.
    pub fn clear_slot(&mut self, slot: usize) -> Option<Entry> {
        let prev = self.slots[slot].take();
        if prev.is_some() {
            self.occupied -= 1;
        }
        prev
    }

    /// Overwrites `slot` with `entry`, returning the previous occupant.
    ///
    /// # Panics
    ///
    /// Panics if `slot >= s`.
    pub fn set_entry(&mut self, slot: usize, entry: Entry) -> Option<Entry> {
        let prev = self.slots[slot].replace(entry);
        if prev.is_none() {
            self.occupied += 1;
        }
        prev
    }

    /// Stores `entry` into an empty slot chosen uniformly at random, as
    /// `S&F-Receive` does (Figure 5.1, lines 3–4). Returns the chosen slot
    /// index, or `Err(entry)` when the view is full.
    pub fn insert_into_random_empty<R: Rng + ?Sized>(
        &mut self,
        rng: &mut R,
        entry: Entry,
    ) -> Result<usize, Entry> {
        let empty = self.slots.len() - self.occupied;
        if empty == 0 {
            return Err(entry);
        }
        let mut nth = rng.gen_range(0..empty);
        for (i, slot) in self.slots.iter_mut().enumerate() {
            if slot.is_none() {
                if nth == 0 {
                    *slot = Some(entry);
                    self.occupied += 1;
                    return Ok(i);
                }
                nth -= 1;
            }
        }
        unreachable!("an empty slot was counted but not found");
    }

    /// Stores `id` (independent) into the first empty slot. Returns the slot
    /// index, or `Err(id)` when the view is full.
    ///
    /// This deterministic variant is convenient for constructing initial
    /// topologies; slot position never influences protocol semantics.
    pub fn insert_at_first_empty(&mut self, id: NodeId) -> Result<usize, NodeId> {
        match self.slots.iter().position(Option::is_none) {
            Some(i) => {
                self.slots[i] = Some(Entry::independent(id));
                self.occupied += 1;
                Ok(i)
            }
            None => Err(id),
        }
    }

    /// Removes one occurrence of `id` (the first in slot order). Returns the
    /// removed entry, or `None` if `id` is absent.
    ///
    /// Not part of the S&F action set; used by churn bootstrapping and tests.
    pub fn remove_one(&mut self, id: NodeId) -> Option<Entry> {
        let slot = self.slots.iter().position(|s| s.map(|e| e.id) == Some(id))?;
        self.clear_slot(slot)
    }

    /// Sets the dependence tag of the entry in `slot`.
    ///
    /// # Panics
    ///
    /// Panics if the slot is empty or out of range.
    pub fn set_dependent(&mut self, slot: usize, dependent: bool) {
        self.slots[slot].as_mut().expect("cannot tag an empty slot").dependent = dependent;
    }

    /// Counts entries labeled dependent by the Section 2 rules: entries whose
    /// tag is set, plus *self-edges* (entries equal to `owner`), which are
    /// always considered dependent.
    #[must_use]
    pub fn dependent_entries(&self, owner: NodeId) -> usize {
        self.entries().filter(|e| e.dependent || e.id == owner).count()
    }
}

#[cfg(test)]
mod tests {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    use super::*;

    fn id(raw: u64) -> NodeId {
        NodeId::new(raw)
    }

    #[test]
    fn new_view_is_empty() {
        let v = LocalView::new(8);
        assert_eq!(v.capacity(), 8);
        assert_eq!(v.out_degree(), 0);
        assert!(!v.is_full());
        assert_eq!(v.ids().count(), 0);
    }

    #[test]
    fn from_ids_fills_prefix() {
        let v = LocalView::from_ids(6, &[id(1), id(2)], false);
        assert_eq!(v.out_degree(), 2);
        assert_eq!(v.entry(0).unwrap().id, id(1));
        assert_eq!(v.entry(1).unwrap().id, id(2));
        assert!(v.entry(2).is_none());
    }

    #[test]
    fn from_ids_respects_dependence_tag() {
        let v = LocalView::from_ids(6, &[id(1)], true);
        assert!(v.entry(0).unwrap().dependent);
        assert_eq!(v.dependent_entries(id(99)), 1);
    }

    #[test]
    #[should_panic(expected = "more bootstrap ids")]
    fn from_ids_panics_on_overflow() {
        let ids: Vec<NodeId> = (0..7).map(id).collect();
        let _ = LocalView::from_ids(6, &ids, false);
    }

    #[test]
    fn multiplicity_counts_duplicates() {
        let v = LocalView::from_ids(6, &[id(3), id(3), id(4)], false);
        assert_eq!(v.multiplicity(id(3)), 2);
        assert_eq!(v.multiplicity(id(4)), 1);
        assert_eq!(v.multiplicity(id(5)), 0);
        assert!(v.contains(id(4)));
        assert!(!v.contains(id(5)));
    }

    #[test]
    fn clear_and_set_maintain_occupancy() {
        let mut v = LocalView::from_ids(6, &[id(1), id(2)], false);
        assert_eq!(v.clear_slot(0).unwrap().id, id(1));
        assert_eq!(v.out_degree(), 1);
        assert!(v.clear_slot(0).is_none());
        assert_eq!(v.out_degree(), 1);
        assert!(v.set_entry(0, Entry::independent(id(7))).is_none());
        assert_eq!(v.out_degree(), 2);
        assert_eq!(v.set_entry(0, Entry::independent(id(8))).unwrap().id, id(7));
        assert_eq!(v.out_degree(), 2);
    }

    #[test]
    fn pick_two_distinct_slots_never_collides() {
        let v = LocalView::new(6);
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let (i, j) = v.pick_two_distinct_slots(&mut rng);
            assert_ne!(i, j);
            assert!(i < 6 && j < 6);
        }
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn pick_two_distinct_slots_is_uniform_over_ordered_pairs() {
        let v = LocalView::new(4);
        let mut rng = StdRng::seed_from_u64(42);
        let mut counts = [[0u32; 4]; 4];
        let trials = 120_000;
        for _ in 0..trials {
            let (i, j) = v.pick_two_distinct_slots(&mut rng);
            counts[i][j] += 1;
        }
        let expected = trials as f64 / 12.0;
        for i in 0..4 {
            for j in 0..4 {
                if i == j {
                    assert_eq!(counts[i][j], 0);
                } else {
                    let ratio = f64::from(counts[i][j]) / expected;
                    assert!((0.9..1.1).contains(&ratio), "pair ({i},{j}) frequency off: {ratio}");
                }
            }
        }
    }

    #[test]
    fn insert_into_random_empty_fills_and_rejects_when_full() {
        let mut v = LocalView::new(4);
        let mut rng = StdRng::seed_from_u64(1);
        for k in 0..4 {
            let slot = v.insert_into_random_empty(&mut rng, Entry::independent(id(k))).unwrap();
            assert_eq!(v.entry(slot).unwrap().id, id(k));
        }
        assert!(v.is_full());
        let rejected = v.insert_into_random_empty(&mut rng, Entry::independent(id(9))).unwrap_err();
        assert_eq!(rejected.id, id(9));
    }

    #[test]
    fn insert_into_random_empty_is_uniform_over_empty_slots() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut counts = [0u32; 3];
        for _ in 0..30_000 {
            let mut v = LocalView::new(4);
            v.set_entry(1, Entry::independent(id(0)));
            let slot = v.insert_into_random_empty(&mut rng, Entry::independent(id(1))).unwrap();
            match slot {
                0 => counts[0] += 1,
                2 => counts[1] += 1,
                3 => counts[2] += 1,
                other => panic!("filled occupied slot {other}"),
            }
        }
        for &c in &counts {
            let ratio = f64::from(c) / 10_000.0;
            assert!((0.9..1.1).contains(&ratio), "slot frequency off: {ratio}");
        }
    }

    #[test]
    fn remove_one_takes_a_single_instance() {
        let mut v = LocalView::from_ids(6, &[id(3), id(3)], false);
        assert!(v.remove_one(id(3)).is_some());
        assert_eq!(v.multiplicity(id(3)), 1);
        assert!(v.remove_one(id(9)).is_none());
    }

    #[test]
    fn dependent_entries_counts_tags_and_self_edges() {
        let mut v = LocalView::from_ids(6, &[id(1), id(2), id(5)], false);
        v.set_dependent(0, true);
        // Entry id(5) is a self-edge for owner 5: always dependent.
        assert_eq!(v.dependent_entries(id(5)), 2);
        assert_eq!(v.dependent_entries(id(99)), 1);
    }

    #[test]
    fn from_slots_roundtrips_and_counts_occupancy() {
        let mut v = LocalView::from_ids(6, &[id(1), id(2), id(2)], false);
        v.set_dependent(1, true);
        v.clear_slot(0);
        let rebuilt = LocalView::from_slots(v.slots().collect());
        assert_eq!(rebuilt, v);
        assert_eq!(rebuilt.out_degree(), 2);
        assert!(rebuilt.entry(1).unwrap().dependent);
        assert!(rebuilt.entry(0).is_none());
    }

    #[test]
    fn insert_at_first_empty_reports_full() {
        let mut v = LocalView::new(2);
        v.insert_at_first_empty(id(1)).unwrap();
        v.insert_at_first_empty(id(2)).unwrap();
        assert_eq!(v.insert_at_first_empty(id(3)), Err(id(3)));
    }
}
