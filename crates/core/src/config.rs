//! Protocol configuration: view size `s` and lower degree threshold `d_L`.

use crate::error::ConfigError;

/// S&F protocol parameters (Section 5 of the paper).
///
/// * `s` — the view size. Every node maintains an array of `s` slots, so the
///   outdegree is bounded by `s` at all times (Property M1, small views).
///   Must be even and at least 6.
/// * `d_L` — the lower outdegree threshold. When a node's outdegree is at
///   `d_L` it *duplicates* sent entries instead of clearing them, which is
///   how the protocol compensates for message loss. Must be even and at most
///   `s − 6`.
///
/// The gap between `d_L` and `s` gives the outdegree enough flexibility for
/// the protocol to be effective; Section 6.3 derives concrete values from a
/// target expected outdegree `d̂` and a duplication/deletion budget `δ`
/// (implemented in `sandf-markov`'s threshold module).
///
/// # Examples
///
/// ```
/// use sandf_core::SfConfig;
///
/// // The paper's running example (Section 6.3): d̂ = 30, δ = 0.01.
/// let config = SfConfig::new(40, 18)?;
/// assert_eq!(config.view_size(), 40);
/// assert_eq!(config.lower_threshold(), 18);
/// # Ok::<(), sandf_core::ConfigError>(())
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct SfConfig {
    s: usize,
    d_l: usize,
}

impl SfConfig {
    /// Creates a configuration with view size `s` and lower threshold `d_l`.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if `s < 6`, `s` is odd, `d_l` is odd, or
    /// `d_l > s − 6`.
    pub fn new(s: usize, d_l: usize) -> Result<Self, ConfigError> {
        if s < 6 {
            return Err(ConfigError::ViewSizeTooSmall { s });
        }
        if !s.is_multiple_of(2) {
            return Err(ConfigError::ViewSizeOdd { s });
        }
        if !d_l.is_multiple_of(2) {
            return Err(ConfigError::ThresholdOdd { d_l });
        }
        if d_l > s - 6 {
            return Err(ConfigError::ThresholdTooLarge { d_l, s });
        }
        Ok(Self { s, d_l })
    }

    /// Creates a loss-free configuration (`d_L = 0`), disabling duplications.
    ///
    /// Section 6.1 analyzes the protocol in this regime, where the sum degree
    /// `d(u) + 2·d_in(u)` of every node is invariant (Lemma 6.2).
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if `s` is below 6 or odd.
    pub fn lossless(s: usize) -> Result<Self, ConfigError> {
        Self::new(s, 0)
    }

    /// The view size `s`.
    #[must_use]
    pub const fn view_size(&self) -> usize {
        self.s
    }

    /// The lower outdegree threshold `d_L`.
    #[must_use]
    pub const fn lower_threshold(&self) -> usize {
        self.d_l
    }
}

impl Default for SfConfig {
    /// The paper's running example: `s = 40`, `d_L = 18` (Section 6.3, for a
    /// target expected outdegree of 30 and `δ = 0.01`).
    fn default() -> Self {
        Self { s: 40, d_l: 18 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_paper_parameters() {
        let c = SfConfig::new(40, 18).unwrap();
        assert_eq!(c.view_size(), 40);
        assert_eq!(c.lower_threshold(), 18);
        let c = SfConfig::new(90, 0).unwrap();
        assert_eq!(c.lower_threshold(), 0);
    }

    #[test]
    fn rejects_small_view() {
        assert_eq!(SfConfig::new(4, 0), Err(ConfigError::ViewSizeTooSmall { s: 4 }));
    }

    #[test]
    fn rejects_odd_view() {
        assert_eq!(SfConfig::new(7, 0), Err(ConfigError::ViewSizeOdd { s: 7 }));
    }

    #[test]
    fn rejects_odd_threshold() {
        assert_eq!(SfConfig::new(10, 3), Err(ConfigError::ThresholdOdd { d_l: 3 }));
    }

    #[test]
    fn rejects_threshold_above_s_minus_6() {
        assert_eq!(SfConfig::new(10, 6), Err(ConfigError::ThresholdTooLarge { d_l: 6, s: 10 }));
        // s - 6 exactly is allowed.
        assert!(SfConfig::new(10, 4).is_ok());
    }

    #[test]
    fn minimum_legal_config() {
        let c = SfConfig::new(6, 0).unwrap();
        assert_eq!(c.view_size(), 6);
    }

    #[test]
    fn default_matches_section_6_3_example() {
        let c = SfConfig::default();
        assert_eq!((c.view_size(), c.lower_threshold()), (40, 18));
    }

    #[test]
    fn lossless_zeroes_the_threshold() {
        assert_eq!(SfConfig::lossless(90).unwrap().lower_threshold(), 0);
    }
}
