//! Per-node event counters.

/// Counters of protocol events at a single node.
///
/// These are the quantities Section 6.4 relates to the loss rate: in the
/// steady state the duplication probability equals the loss rate plus the
/// deletion probability (Lemma 6.6), and lies in `[ℓ, ℓ + δ]` (Lemma 6.7).
/// The simulator aggregates these counters across nodes to verify both.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct NodeStats {
    /// Actions initiated (calls to `initiate`).
    pub initiated: u64,
    /// Actions that were self-loop transformations (an empty slot selected).
    pub self_loops: u64,
    /// Messages produced (non-self-loop actions).
    pub sent: u64,
    /// Sends that duplicated instead of clearing (`d(u) = d_L`).
    pub duplications: u64,
    /// Messages received and stored.
    pub stored: u64,
    /// Messages received but deleted because the view was full (`d(u) = s`).
    pub deletions: u64,
}

impl NodeStats {
    /// Creates zeroed counters.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Resets every counter to zero.
    pub fn reset(&mut self) {
        *self = Self::default();
    }

    /// Fraction of non-self-loop sends that duplicated, or `None` if no
    /// message was sent yet.
    #[must_use]
    pub fn duplication_rate(&self) -> Option<f64> {
        (self.sent > 0).then(|| self.duplications as f64 / self.sent as f64)
    }

    /// Fraction of received messages that were deleted, or `None` if nothing
    /// was received yet.
    #[must_use]
    pub fn deletion_rate(&self) -> Option<f64> {
        let received = self.stored + self.deletions;
        (received > 0).then(|| self.deletions as f64 / received as f64)
    }

    /// Adds another node's counters into this one (for system-wide totals).
    pub fn merge(&mut self, other: &Self) {
        self.initiated += other.initiated;
        self.self_loops += other.self_loops;
        self.sent += other.sent;
        self.duplications += other.duplications;
        self.stored += other.stored;
        self.deletions += other.deletions;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_are_none_without_events() {
        let stats = NodeStats::new();
        assert_eq!(stats.duplication_rate(), None);
        assert_eq!(stats.deletion_rate(), None);
    }

    #[test]
    fn rates_divide_correctly() {
        let stats = NodeStats {
            initiated: 10,
            self_loops: 2,
            sent: 8,
            duplications: 2,
            stored: 3,
            deletions: 1,
        };
        assert_eq!(stats.duplication_rate(), Some(0.25));
        assert_eq!(stats.deletion_rate(), Some(0.25));
    }

    #[test]
    fn merge_adds_fields() {
        let mut a = NodeStats { initiated: 1, sent: 2, ..NodeStats::default() };
        let b = NodeStats { initiated: 3, deletions: 4, ..NodeStats::default() };
        a.merge(&b);
        assert_eq!(a.initiated, 4);
        assert_eq!(a.sent, 2);
        assert_eq!(a.deletions, 4);
    }

    #[test]
    fn reset_zeroes_everything() {
        let mut stats = NodeStats { initiated: 5, ..NodeStats::default() };
        stats.reset();
        assert_eq!(stats, NodeStats::default());
    }
}
