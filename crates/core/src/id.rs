//! Node identifiers.

use core::fmt;

/// An opaque node identifier.
///
/// In the paper a node id is "for example, an IP address and port"
/// (Section 1). The protocol only ever compares ids for equality and copies
/// them between views, so a compact integer newtype suffices; the
/// [`sandf-net`](https://example.org/sandf) transports map `NodeId`s to real
/// socket addresses.
///
/// # Examples
///
/// ```
/// use sandf_core::NodeId;
///
/// let a = NodeId::new(7);
/// assert_eq!(a.as_u64(), 7);
/// assert_eq!(a.to_string(), "n7");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct NodeId(u64);

impl NodeId {
    /// Creates a node id from a raw integer.
    #[must_use]
    pub const fn new(raw: u64) -> Self {
        Self(raw)
    }

    /// Returns the raw integer backing this id.
    #[must_use]
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Returns the raw integer as a `usize`.
    ///
    /// Convenient for indexing dense per-node tables in simulations where ids
    /// are assigned contiguously from zero.
    ///
    /// # Panics
    ///
    /// Panics if the id does not fit in a `usize` (only possible on 16/32-bit
    /// targets).
    #[must_use]
    pub fn index(self) -> usize {
        usize::try_from(self.0).expect("node id exceeds usize")
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<u64> for NodeId {
    fn from(raw: u64) -> Self {
        Self::new(raw)
    }
}

impl From<NodeId> for u64 {
    fn from(id: NodeId) -> Self {
        id.as_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_through_u64() {
        let id = NodeId::new(42);
        assert_eq!(u64::from(id), 42);
        assert_eq!(NodeId::from(42u64), id);
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(NodeId::new(0).to_string(), "n0");
        assert_eq!(NodeId::new(123).to_string(), "n123");
    }

    #[test]
    fn ordering_follows_raw_value() {
        assert!(NodeId::new(1) < NodeId::new(2));
        assert_eq!(NodeId::new(5).max(NodeId::new(9)), NodeId::new(9));
    }

    #[test]
    fn index_matches_raw() {
        assert_eq!(NodeId::new(17).index(), 17);
    }

    #[test]
    fn debug_is_nonempty() {
        assert!(!format!("{:?}", NodeId::default()).is_empty());
    }
}
