//! Outcomes of the two protocol steps, with enough detail for external
//! observers (simulators, provenance trackers) to mirror every state change.

use crate::id::NodeId;
use crate::message::Message;

/// Outcome of `S&F-InitiateAction` (Figure 5.1, left).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum InitiateOutcome {
    /// One of the two selected slots was empty; views are unchanged. The
    /// paper calls the corresponding graph transformation a *self-loop
    /// transformation* (Section 6.2).
    SelfLoop,
    /// A message was produced and must be delivered (or lost) by the caller.
    Sent {
        /// The message target `v = u.lv[i]`.
        to: NodeId,
        /// The message `[u, w]` to deliver to `to`.
        message: Message,
        /// Whether the sender kept its entries (outdegree was at `d_L`),
        /// i.e. the action performed a *duplication*.
        duplicated: bool,
        /// The selected slot indices `(i, j)` — `i` held the target, `j` the
        /// payload. Exposed so observers can track id-instance provenance.
        slots: (usize, usize),
    },
}

impl InitiateOutcome {
    /// The message produced, if any.
    #[must_use]
    pub fn message(&self) -> Option<Message> {
        match *self {
            Self::SelfLoop => None,
            Self::Sent { message, .. } => Some(message),
        }
    }

    /// Whether this outcome was a self-loop (no message sent).
    #[must_use]
    pub fn is_self_loop(&self) -> bool {
        matches!(self, Self::SelfLoop)
    }
}

/// Outcome of `S&F-Receive` (Figure 5.1, right).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ReceiveOutcome {
    /// Both received ids were stored into empty slots.
    Stored {
        /// Slot that now holds the sender's id (`v1` in Figure 5.1).
        sender_slot: usize,
        /// Slot that now holds the payload id (`v2` in Figure 5.1).
        payload_slot: usize,
    },
    /// The view was full (`d(u) = s`); the received ids were *deleted*.
    Deleted,
}

impl ReceiveOutcome {
    /// Whether the received ids were deleted.
    #[must_use]
    pub fn is_deleted(&self) -> bool {
        matches!(self, Self::Deleted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn self_loop_has_no_message() {
        assert_eq!(InitiateOutcome::SelfLoop.message(), None);
        assert!(InitiateOutcome::SelfLoop.is_self_loop());
    }

    #[test]
    fn sent_exposes_message() {
        let msg = Message::new(NodeId::new(1), NodeId::new(2), false);
        let outcome = InitiateOutcome::Sent {
            to: NodeId::new(3),
            message: msg,
            duplicated: false,
            slots: (0, 1),
        };
        assert_eq!(outcome.message(), Some(msg));
        assert!(!outcome.is_self_loop());
    }

    #[test]
    fn deleted_flag() {
        assert!(ReceiveOutcome::Deleted.is_deleted());
        assert!(!ReceiveOutcome::Stored { sender_slot: 0, payload_slot: 1 }.is_deleted());
    }
}
