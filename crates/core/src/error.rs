//! Error types for protocol configuration and node construction.

use core::fmt;

/// Error returned when an [`SfConfig`](crate::SfConfig) would violate the
/// constraints of the paper's Section 5 (`s ≥ 6` even, `0 ≤ d_L ≤ s − 6`
/// even).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ConfigError {
    /// The view size `s` is below the minimum of 6 required by the
    /// reachability argument (Lemma A.3).
    ViewSizeTooSmall {
        /// The offending view size.
        s: usize,
    },
    /// The view size `s` must be even so outdegrees can stay even
    /// (Observation 5.1).
    ViewSizeOdd {
        /// The offending view size.
        s: usize,
    },
    /// The lower degree threshold `d_L` must be even.
    ThresholdOdd {
        /// The offending threshold.
        d_l: usize,
    },
    /// The lower degree threshold exceeds `s − 6`, leaving the outdegree too
    /// little slack for the protocol to be effective (Section 5).
    ThresholdTooLarge {
        /// The offending threshold.
        d_l: usize,
        /// The configured view size.
        s: usize,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Self::ViewSizeTooSmall { s } => {
                write!(f, "view size s={s} is below the minimum of 6")
            }
            Self::ViewSizeOdd { s } => write!(f, "view size s={s} must be even"),
            Self::ThresholdOdd { d_l } => {
                write!(f, "degree threshold d_L={d_l} must be even")
            }
            Self::ThresholdTooLarge { d_l, s } => {
                write!(f, "degree threshold d_L={d_l} exceeds s-6={}", s.saturating_sub(6))
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Error returned when constructing a node with an invalid bootstrap view.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum JoinError {
    /// A joining node must know at least `d_L` live ids (Section 5).
    TooFewIds {
        /// Number of ids supplied.
        supplied: usize,
        /// The configured lower threshold `d_L`.
        d_l: usize,
    },
    /// The bootstrap view holds more ids than the view size `s`.
    TooManyIds {
        /// Number of ids supplied.
        supplied: usize,
        /// The configured view size `s`.
        s: usize,
    },
    /// Outdegrees must be even at all times (Observation 5.1), so the
    /// bootstrap view must contain an even number of ids.
    OddIdCount {
        /// Number of ids supplied.
        supplied: usize,
    },
    /// The engine's id allocator ran out of representable ids. The slot
    /// arenas store ids as `u32` words (with `u32::MAX` reserved as the
    /// empty sentinel), so joiners beyond that space are rejected rather
    /// than silently aliased.
    IdSpaceExhausted {
        /// The id the allocator would have handed out.
        next: u64,
        /// The first unrepresentable id (exclusive upper bound).
        limit: u64,
    },
}

impl fmt::Display for JoinError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Self::TooFewIds { supplied, d_l } => {
                write!(f, "bootstrap view holds {supplied} ids, below d_L={d_l}")
            }
            Self::TooManyIds { supplied, s } => {
                write!(f, "bootstrap view holds {supplied} ids, above s={s}")
            }
            Self::OddIdCount { supplied } => {
                write!(f, "bootstrap view holds an odd number of ids ({supplied})")
            }
            Self::IdSpaceExhausted { next, limit } => {
                write!(f, "node id {next} exceeds the arena id space (ids must stay below {limit})")
            }
        }
    }
}

impl std::error::Error for JoinError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_error_messages_are_lowercase_and_nonempty() {
        let errors = [
            ConfigError::ViewSizeTooSmall { s: 4 },
            ConfigError::ViewSizeOdd { s: 7 },
            ConfigError::ThresholdOdd { d_l: 3 },
            ConfigError::ThresholdTooLarge { d_l: 10, s: 12 },
        ];
        for err in errors {
            let msg = err.to_string();
            assert!(!msg.is_empty());
            assert!(msg.chars().next().unwrap().is_lowercase());
            assert!(!msg.ends_with('.'));
        }
    }

    #[test]
    fn join_error_messages_mention_counts() {
        assert!(JoinError::TooFewIds { supplied: 1, d_l: 4 }.to_string().contains("d_L=4"));
        assert!(JoinError::TooManyIds { supplied: 9, s: 8 }.to_string().contains("s=8"));
        assert!(JoinError::OddIdCount { supplied: 3 }.to_string().contains('3'));
        let exhausted = JoinError::IdSpaceExhausted { next: 1 << 40, limit: u64::from(u32::MAX) };
        assert!(exhausted.to_string().contains(&(1u64 << 40).to_string()));
        assert!(exhausted.to_string().contains(&u64::from(u32::MAX).to_string()));
    }

    #[test]
    fn join_error_messages_are_lowercase_and_nonempty() {
        let errors = [
            JoinError::TooFewIds { supplied: 1, d_l: 4 },
            JoinError::TooManyIds { supplied: 9, s: 8 },
            JoinError::OddIdCount { supplied: 3 },
            JoinError::IdSpaceExhausted { next: 5, limit: 4 },
        ];
        for err in errors {
            let msg = err.to_string();
            assert!(!msg.is_empty());
            assert!(msg.chars().next().unwrap().is_lowercase());
            assert!(!msg.ends_with('.'));
        }
    }

    #[test]
    fn errors_are_std_errors() {
        fn assert_error<E: std::error::Error + Send + Sync + 'static>() {}
        assert_error::<ConfigError>();
        assert_error::<JoinError>();
    }
}
