//! The single message type of the S&F protocol.

use crate::id::NodeId;

/// An S&F protocol message `[u, w]` (Figure 5.1, line 6): the initiator `u`
/// sends its own id together with one id `w` taken from its view.
///
/// `u` is the *reinforcement* component (the receiver learns about `u`
/// directly) and `w` is the *mixing* component (membership information
/// spreads between views) — see Section 3.1.
///
/// The `dependent` flag is measurement metadata mirroring the paper's edge
/// labeling (Section 2, Section 7.4): it is set when the send performed a
/// *duplication*, in which case the transmitted id instances are labeled
/// dependent (the sender kept the representative copies). It never influences
/// protocol behavior.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Message {
    /// The initiator's own id (`u`).
    pub sender: NodeId,
    /// The forwarded id (`w`), drawn from the initiator's view.
    pub payload: NodeId,
    /// Whether the transmitted instances are labeled dependent (the send
    /// duplicated instead of clearing).
    pub dependent: bool,
}

impl Message {
    /// Creates a message with the given dependence label.
    #[must_use]
    pub const fn new(sender: NodeId, payload: NodeId, dependent: bool) -> Self {
        Self { sender, payload, dependent }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructor_stores_fields() {
        let m = Message::new(NodeId::new(1), NodeId::new(2), true);
        assert_eq!(m.sender, NodeId::new(1));
        assert_eq!(m.payload, NodeId::new(2));
        assert!(m.dependent);
    }

    #[test]
    fn message_is_copy_and_comparable() {
        let m = Message::new(NodeId::new(1), NodeId::new(2), false);
        let n = m;
        assert_eq!(m, n);
    }
}
