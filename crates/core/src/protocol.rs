//! The S&F node state machine (Figure 5.1).

use rand::Rng;

use crate::config::SfConfig;
use crate::error::JoinError;
use crate::event::{InitiateOutcome, ReceiveOutcome};
use crate::id::NodeId;
use crate::message::Message;
use crate::metrics::NodeStats;
use crate::view::{Entry, LocalView};

/// A single S&F protocol participant.
///
/// The node owns its local view and implements the two atomic *steps* of the
/// protocol (Section 4.1): [`initiate`](Self::initiate) and
/// [`receive`](Self::receive). Each step touches only this node's state, so a
/// step can execute atomically even when messages are lost — the caller (a
/// simulator or a network runtime) decides whether the produced message is
/// delivered, reordered, or dropped.
///
/// # Examples
///
/// Two nodes exchanging one message by hand:
///
/// ```
/// use rand::SeedableRng;
/// use rand::rngs::StdRng;
/// use sandf_core::{InitiateOutcome, NodeId, SfConfig, SfNode};
///
/// let config = SfConfig::lossless(6)?;
/// let a = NodeId::new(0);
/// let b = NodeId::new(1);
/// let mut alice = SfNode::with_view(a, config, &[b, b])?;
/// let mut bob = SfNode::with_view(b, config, &[a, a])?;
///
/// let mut rng = StdRng::seed_from_u64(1);
/// if let InitiateOutcome::Sent { to, message, .. } = alice.initiate(&mut rng) {
///     assert_eq!(to, b);
///     bob.receive(message, &mut rng);
/// }
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SfNode {
    id: NodeId,
    config: SfConfig,
    view: LocalView,
    stats: NodeStats,
}

impl SfNode {
    /// Creates a node with an empty view.
    ///
    /// A node with an empty view never produces messages (every action is a
    /// self-loop) but can still receive. With `d_L > 0`, prefer
    /// [`with_view`](Self::with_view), which enforces the paper's joining
    /// rule: a joiner must know at least `d_L` live ids (Section 5).
    #[must_use]
    pub fn new(id: NodeId, config: SfConfig) -> Self {
        Self { id, config, view: LocalView::new(config.view_size()), stats: NodeStats::new() }
    }

    /// Creates a node bootstrapped with the given ids, validating the
    /// Section 5 joining rule.
    ///
    /// The bootstrap entries are tagged *dependent*: a joiner typically
    /// copies another node's view, so its initial entries convey duplicated
    /// information (this keeps Assumption 7.7 accounting honest).
    ///
    /// # Errors
    ///
    /// Returns [`JoinError`] when fewer than `d_L` ids or more than `s` ids
    /// are supplied, or when the count is odd (outdegrees must stay even,
    /// Observation 5.1).
    pub fn with_view(id: NodeId, config: SfConfig, ids: &[NodeId]) -> Result<Self, JoinError> {
        if ids.len() < config.lower_threshold() {
            return Err(JoinError::TooFewIds {
                supplied: ids.len(),
                d_l: config.lower_threshold(),
            });
        }
        if ids.len() > config.view_size() {
            return Err(JoinError::TooManyIds { supplied: ids.len(), s: config.view_size() });
        }
        if !ids.len().is_multiple_of(2) {
            return Err(JoinError::OddIdCount { supplied: ids.len() });
        }
        Ok(Self {
            id,
            config,
            view: LocalView::from_ids(config.view_size(), ids, true),
            stats: NodeStats::new(),
        })
    }

    /// Creates a node from a pre-built view, for constructing synthetic
    /// initial topologies in simulations and tests.
    ///
    /// # Panics
    ///
    /// Panics if the view's capacity differs from the configured view size.
    #[must_use]
    pub fn from_view(id: NodeId, config: SfConfig, view: LocalView) -> Self {
        assert_eq!(
            view.capacity(),
            config.view_size(),
            "view capacity must equal the configured view size"
        );
        Self { id, config, view, stats: NodeStats::new() }
    }

    /// This node's id.
    #[must_use]
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The protocol configuration.
    #[must_use]
    pub fn config(&self) -> SfConfig {
        self.config
    }

    /// The local view.
    #[must_use]
    pub fn view(&self) -> &LocalView {
        &self.view
    }

    /// Mutable access to the local view.
    ///
    /// Intended for simulation harnesses that rewire topologies (churn
    /// bootstrapping, initial-state construction); the protocol itself never
    /// needs it. Mutating the view mid-run invalidates none of the protocol's
    /// invariant *checks*, but may of course violate Observation 5.1 if used
    /// carelessly.
    pub fn view_mut(&mut self) -> &mut LocalView {
        &mut self.view
    }

    /// The node's outdegree `d(u)` — its number of occupied view slots.
    #[must_use]
    pub fn out_degree(&self) -> usize {
        self.view.out_degree()
    }

    /// Event counters accumulated so far.
    #[must_use]
    pub fn stats(&self) -> &NodeStats {
        &self.stats
    }

    /// Resets the event counters (e.g. after a burn-in period).
    pub fn reset_stats(&mut self) {
        self.stats.reset();
    }

    /// Executes `S&F-InitiateAction` (Figure 5.1, left).
    ///
    /// Selects two distinct slots `i ≠ j` uniformly at random. If either is
    /// empty the action is a self-loop and the view is unchanged. Otherwise
    /// the node produces a message `[u, w]` addressed to `v = lv[i]` carrying
    /// `w = lv[j]`, and clears both slots — unless its outdegree is at most
    /// `d_L`, in which case the entries are *duplicated* (kept).
    ///
    /// The caller is responsible for delivering (or losing) the returned
    /// message; the node deliberately keeps no record of it ("send &
    /// forget").
    pub fn initiate<R: Rng + ?Sized>(&mut self, rng: &mut R) -> InitiateOutcome {
        self.stats.initiated += 1;
        let (i, j) = self.view.pick_two_distinct_slots(rng);
        let (Some(target), Some(payload)) = (self.view.entry(i), self.view.entry(j)) else {
            self.stats.self_loops += 1;
            return InitiateOutcome::SelfLoop;
        };
        let duplicated = self.view.out_degree() <= self.config.lower_threshold();
        if duplicated {
            self.stats.duplications += 1;
        } else {
            self.view.clear_slot(i);
            self.view.clear_slot(j);
        }
        self.stats.sent += 1;
        InitiateOutcome::Sent {
            to: target.id,
            message: Message::new(self.id, payload.id, duplicated),
            duplicated,
            slots: (i, j),
        }
    }

    /// Executes `S&F-Receive` (Figure 5.1, right).
    ///
    /// Stores both received ids (the sender's own id and the payload) into
    /// empty slots chosen uniformly at random — unless the view is full
    /// (`d(u) = s`), in which case both are deleted.
    pub fn receive<R: Rng + ?Sized>(&mut self, message: Message, rng: &mut R) -> ReceiveOutcome {
        if self.view.out_degree() >= self.config.view_size() {
            self.stats.deletions += 1;
            return ReceiveOutcome::Deleted;
        }
        let sender_slot = self
            .view
            .insert_into_random_empty(
                rng,
                Entry { id: message.sender, dependent: message.dependent },
            )
            .expect("outdegree below s implies an empty slot");
        let payload_slot = self
            .view
            .insert_into_random_empty(
                rng,
                Entry { id: message.payload, dependent: message.dependent },
            )
            .expect("even outdegrees below even s leave two empty slots");
        self.stats.stored += 1;
        ReceiveOutcome::Stored { sender_slot, payload_slot }
    }
}

#[cfg(test)]
mod tests {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    use super::*;

    fn id(raw: u64) -> NodeId {
        NodeId::new(raw)
    }

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    fn full_node(owner: u64, config: SfConfig) -> SfNode {
        let ids: Vec<NodeId> = (0..config.view_size() as u64).map(|k| id(100 + k)).collect();
        SfNode::with_view(id(owner), config, &ids).unwrap()
    }

    #[test]
    fn with_view_enforces_joining_rule() {
        let config = SfConfig::new(10, 4).unwrap();
        assert_eq!(
            SfNode::with_view(id(0), config, &[id(1), id(2)]),
            Err(JoinError::TooFewIds { supplied: 2, d_l: 4 })
        );
        let eleven: Vec<NodeId> = (1..=11).map(id).collect();
        assert!(matches!(
            SfNode::with_view(id(0), config, &eleven),
            Err(JoinError::TooManyIds { .. })
        ));
        assert_eq!(
            SfNode::with_view(id(0), config, &[id(1), id(2), id(3), id(4), id(5)]),
            Err(JoinError::OddIdCount { supplied: 5 })
        );
        assert!(SfNode::with_view(id(0), config, &[id(1), id(2), id(3), id(4)]).is_ok());
    }

    #[test]
    fn bootstrap_entries_are_tagged_dependent() {
        let config = SfConfig::new(6, 0).unwrap();
        let node = SfNode::with_view(id(0), config, &[id(1), id(2)]).unwrap();
        assert!(node.view().entries().all(|e| e.dependent));
    }

    #[test]
    fn empty_view_always_self_loops() {
        let config = SfConfig::lossless(6).unwrap();
        let mut node = SfNode::new(id(0), config);
        let mut r = rng(3);
        for _ in 0..50 {
            assert!(node.initiate(&mut r).is_self_loop());
        }
        assert_eq!(node.stats().self_loops, 50);
        assert_eq!(node.stats().sent, 0);
    }

    #[test]
    fn initiate_clears_both_slots_above_threshold() {
        let config = SfConfig::new(6, 0).unwrap();
        let mut node =
            SfNode::with_view(id(0), config, &[id(1), id(2), id(3), id(4), id(5), id(6)]).unwrap();
        let mut r = rng(11);
        let outcome = node.initiate(&mut r);
        let InitiateOutcome::Sent { to, message, duplicated, slots } = outcome else {
            panic!("full view cannot self-loop");
        };
        assert!(!duplicated);
        assert_eq!(node.out_degree(), 4);
        assert!(node.view().entry(slots.0).is_none());
        assert!(node.view().entry(slots.1).is_none());
        assert_eq!(message.sender, id(0));
        assert_ne!(to, message.sender);
        assert!(!message.dependent);
    }

    #[test]
    fn initiate_duplicates_at_threshold() {
        let config = SfConfig::new(8, 2).unwrap();
        let mut node = SfNode::with_view(id(0), config, &[id(1), id(2)]).unwrap();
        let mut r = rng(5);
        // Outdegree equals d_L = 2: a successful action must duplicate.
        let outcome = loop {
            match node.initiate(&mut r) {
                InitiateOutcome::SelfLoop => continue,
                sent => break sent,
            }
        };
        let InitiateOutcome::Sent { duplicated, message, .. } = outcome else { unreachable!() };
        assert!(duplicated);
        assert!(message.dependent);
        assert_eq!(node.out_degree(), 2, "duplication keeps both entries");
        assert_eq!(node.stats().duplications, 1);
    }

    #[test]
    fn receive_stores_both_ids() {
        let config = SfConfig::lossless(6).unwrap();
        let mut node = SfNode::new(id(9), config);
        let mut r = rng(2);
        let outcome = node.receive(Message::new(id(1), id(2), false), &mut r);
        let ReceiveOutcome::Stored { sender_slot, payload_slot } = outcome else {
            panic!("empty view must store");
        };
        assert_ne!(sender_slot, payload_slot);
        assert_eq!(node.view().entry(sender_slot).unwrap().id, id(1));
        assert_eq!(node.view().entry(payload_slot).unwrap().id, id(2));
        assert_eq!(node.out_degree(), 2);
        assert_eq!(node.stats().stored, 1);
    }

    #[test]
    fn receive_deletes_when_full() {
        let config = SfConfig::new(6, 0).unwrap();
        let mut node = full_node(9, config);
        let mut r = rng(2);
        let outcome = node.receive(Message::new(id(1), id(2), false), &mut r);
        assert!(outcome.is_deleted());
        assert_eq!(node.out_degree(), 6);
        assert_eq!(node.stats().deletions, 1);
    }

    #[test]
    fn receive_propagates_dependence_tag() {
        let config = SfConfig::lossless(6).unwrap();
        let mut node = SfNode::new(id(9), config);
        let mut r = rng(2);
        node.receive(Message::new(id(1), id(2), true), &mut r);
        assert!(node.view().entries().all(|e| e.dependent));
        node.receive(Message::new(id(3), id(4), false), &mut r);
        assert_eq!(node.view().entries().filter(|e| e.dependent).count(), 2);
    }

    #[test]
    fn outdegree_parity_is_preserved() {
        // Observation 5.1: outdegrees stay even under any mix of steps.
        let config = SfConfig::new(8, 2).unwrap();
        let mut node = SfNode::with_view(id(0), config, &[id(1), id(2), id(3), id(4)]).unwrap();
        let mut r = rng(77);
        for step in 0..2_000 {
            if step % 3 == 0 {
                node.receive(Message::new(id(step), id(step + 1), false), &mut r);
            } else {
                node.initiate(&mut r);
            }
            assert_eq!(node.out_degree() % 2, 0, "odd outdegree after step {step}");
            assert!(node.out_degree() <= config.view_size());
        }
    }

    #[test]
    fn outdegree_never_falls_below_threshold() {
        let config = SfConfig::new(10, 4).unwrap();
        let mut node =
            SfNode::with_view(id(0), config, &[id(1), id(2), id(3), id(4), id(5), id(6)]).unwrap();
        let mut r = rng(13);
        for _ in 0..2_000 {
            node.initiate(&mut r);
            assert!(node.out_degree() >= config.lower_threshold());
        }
    }

    #[test]
    fn sent_message_carries_cleared_payload() {
        let config = SfConfig::new(6, 0).unwrap();
        let mut node =
            SfNode::with_view(id(0), config, &[id(1), id(2), id(3), id(4), id(5), id(6)]).unwrap();
        let before: Vec<NodeId> = node.view().ids().collect();
        let mut r = rng(21);
        let InitiateOutcome::Sent { to, message, .. } = node.initiate(&mut r) else {
            unreachable!()
        };
        assert!(before.contains(&to));
        assert!(before.contains(&message.payload));
        // Exactly the target and payload instances were removed.
        assert_eq!(node.view().ids().count(), 4);
    }

    #[test]
    fn from_view_panics_on_capacity_mismatch() {
        let config = SfConfig::new(8, 0).unwrap();
        let view = LocalView::new(6);
        let result = std::panic::catch_unwind(|| SfNode::from_view(id(0), config, view));
        assert!(result.is_err());
    }

    #[test]
    fn reset_stats_clears_counters() {
        let config = SfConfig::lossless(6).unwrap();
        let mut node = SfNode::new(id(0), config);
        let mut r = rng(1);
        node.initiate(&mut r);
        assert_eq!(node.stats().initiated, 1);
        node.reset_stats();
        assert_eq!(node.stats().initiated, 0);
    }
}
