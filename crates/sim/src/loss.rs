//! Message-loss models (Section 4.1).
//!
//! The paper analyzes *uniform i.i.d. loss*: every message is lost with the
//! same probability `ℓ`, independently of all other messages, and the sender
//! cannot detect the loss. [`UniformLoss`] implements exactly that model.
//! Because nonuniform loss "occurs in practice" (the paper cites Tölgyesi &
//! Jelasity) but is out of the paper's analytical scope, we also provide a
//! [`GilbertElliott`] bursty-loss model as an ablation: experiments can check
//! how far the i.i.d. assumption carries.

use rand::Rng;
use sandf_core::NodeId;

/// Decides the fate of each sent message.
///
/// Implementations may keep state (e.g. a burst channel state); the decision
/// must depend only on that state, the destination, and the supplied RNG,
/// never on message contents — the paper's model gives the adversary no
/// content visibility.
pub trait LossModel {
    /// Returns `true` if the next message is lost.
    fn is_lost<R: Rng + ?Sized>(&mut self, rng: &mut R) -> bool;

    /// Returns `true` if the next message *to the given destination* is
    /// lost. The default ignores the destination (the paper's uniform
    /// model); spatially heterogeneous models ([`TargetedLoss`]) override
    /// it.
    fn is_lost_to<R: Rng + ?Sized>(&mut self, _to: NodeId, rng: &mut R) -> bool {
        self.is_lost(rng)
    }

    /// The long-run average loss rate of this model, used by analyses that
    /// need a scalar `ℓ` (e.g. comparing against Lemma 6.7 bounds).
    fn average_rate(&self) -> f64;
}

/// Uniform i.i.d. loss with probability `ℓ` (the paper's model).
///
/// # Examples
///
/// ```
/// use sandf_sim::{LossModel, UniformLoss};
///
/// let model = UniformLoss::new(0.01)?;
/// assert_eq!(model.average_rate(), 0.01);
/// # Ok::<(), sandf_sim::LossRateError>(())
/// ```
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct UniformLoss {
    rate: f64,
}

/// Error returned for loss rates outside `[0, 1]`.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct LossRateError {
    /// The offending rate.
    pub rate: f64,
}

impl core::fmt::Display for LossRateError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "loss rate {} is outside [0, 1]", self.rate)
    }
}

impl std::error::Error for LossRateError {}

impl UniformLoss {
    /// Creates a uniform loss model with rate `ℓ`.
    ///
    /// # Errors
    ///
    /// Returns [`LossRateError`] unless `0 ≤ ℓ ≤ 1` and `ℓ` is finite.
    pub fn new(rate: f64) -> Result<Self, LossRateError> {
        if !(0.0..=1.0).contains(&rate) || !rate.is_finite() {
            return Err(LossRateError { rate });
        }
        Ok(Self { rate })
    }

    /// A lossless channel (`ℓ = 0`).
    #[must_use]
    pub fn none() -> Self {
        Self { rate: 0.0 }
    }
}

impl LossModel for UniformLoss {
    fn is_lost<R: Rng + ?Sized>(&mut self, rng: &mut R) -> bool {
        self.rate > 0.0 && rng.gen_bool(self.rate)
    }

    fn average_rate(&self) -> f64 {
        self.rate
    }
}

/// Two-state Gilbert–Elliott bursty loss: the channel alternates between a
/// *good* and a *bad* state with given transition probabilities, and loses
/// messages at a state-dependent rate. Used as an ablation of the paper's
/// i.i.d. assumption — its long-run average rate is comparable to a
/// [`UniformLoss`] of the same magnitude, but losses arrive in bursts.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct GilbertElliott {
    to_bad: f64,
    to_good: f64,
    loss_good: f64,
    loss_bad: f64,
    in_bad: bool,
}

impl GilbertElliott {
    /// Creates a Gilbert–Elliott channel starting in the good state.
    ///
    /// # Errors
    ///
    /// Returns [`LossRateError`] if any probability lies outside `[0, 1]`.
    pub fn new(
        to_bad: f64,
        to_good: f64,
        loss_good: f64,
        loss_bad: f64,
    ) -> Result<Self, LossRateError> {
        for &p in &[to_bad, to_good, loss_good, loss_bad] {
            if !(0.0..=1.0).contains(&p) || !p.is_finite() {
                return Err(LossRateError { rate: p });
            }
        }
        Ok(Self { to_bad, to_good, loss_good, loss_bad, in_bad: false })
    }

    /// Whether the channel is currently in the bad (bursty) state.
    #[must_use]
    pub fn in_bad_state(&self) -> bool {
        self.in_bad
    }
}

impl LossModel for GilbertElliott {
    fn is_lost<R: Rng + ?Sized>(&mut self, rng: &mut R) -> bool {
        // Advance the channel state, then sample the loss for this message.
        let flip = if self.in_bad { self.to_good } else { self.to_bad };
        if flip > 0.0 && rng.gen_bool(flip) {
            self.in_bad = !self.in_bad;
        }
        let rate = if self.in_bad { self.loss_bad } else { self.loss_good };
        rate > 0.0 && rng.gen_bool(rate)
    }

    fn average_rate(&self) -> f64 {
        // Stationary split of the two-state chain.
        let denom = self.to_bad + self.to_good;
        if denom == 0.0 {
            // The chain never leaves its initial (good) state.
            return self.loss_good;
        }
        let p_bad = self.to_bad / denom;
        (1.0 - p_bad) * self.loss_good + p_bad * self.loss_bad
    }
}

/// Spatially heterogeneous loss: a base rate for everyone, with per-node
/// overrides on the *inbound* path (messages addressed to those nodes).
///
/// The paper restricts its analysis to uniform loss and notes that
/// "nonuniform loss occurs in practice … \[and\] is more difficult to model
/// and analyze" (Section 4.1). This model is the spatial flavor of that
/// nonuniformity — e.g. one peer behind a terrible link — complementing the
/// temporal flavor ([`GilbertElliott`]). The `loss_ablation` bench measures
/// how a badly connected node fares: its indegree shrinks toward `d_L`
/// while the rest of the system is unaffected.
#[derive(Clone, Debug)]
pub struct TargetedLoss {
    base: UniformLoss,
    overrides: Vec<(NodeId, f64)>,
}

impl TargetedLoss {
    /// Creates a targeted model with the given base rate.
    ///
    /// # Errors
    ///
    /// Returns [`LossRateError`] for a base rate outside `[0, 1]`.
    pub fn new(base_rate: f64) -> Result<Self, LossRateError> {
        Ok(Self { base: UniformLoss::new(base_rate)?, overrides: Vec::new() })
    }

    /// Sets the inbound loss rate for one node (replacing any previous
    /// override).
    ///
    /// # Errors
    ///
    /// Returns [`LossRateError`] for a rate outside `[0, 1]`.
    pub fn set_target(&mut self, node: NodeId, rate: f64) -> Result<(), LossRateError> {
        if !(0.0..=1.0).contains(&rate) || !rate.is_finite() {
            return Err(LossRateError { rate });
        }
        self.overrides.retain(|&(id, _)| id != node);
        self.overrides.push((node, rate));
        Ok(())
    }

    fn rate_for(&self, to: NodeId) -> f64 {
        self.overrides
            .iter()
            .find(|&&(id, _)| id == to)
            .map_or(self.base.average_rate(), |&(_, rate)| rate)
    }
}

impl LossModel for TargetedLoss {
    fn is_lost<R: Rng + ?Sized>(&mut self, rng: &mut R) -> bool {
        self.base.is_lost(rng)
    }

    fn is_lost_to<R: Rng + ?Sized>(&mut self, to: NodeId, rng: &mut R) -> bool {
        let rate = self.rate_for(to);
        rate > 0.0 && rng.gen_bool(rate)
    }

    fn average_rate(&self) -> f64 {
        self.base.average_rate()
    }
}

#[cfg(test)]
mod tests {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    use super::*;

    #[test]
    fn uniform_rejects_out_of_range() {
        assert!(UniformLoss::new(-0.1).is_err());
        assert!(UniformLoss::new(1.1).is_err());
        assert!(UniformLoss::new(f64::NAN).is_err());
        assert!(UniformLoss::new(0.0).is_ok());
        assert!(UniformLoss::new(1.0).is_ok());
    }

    #[test]
    fn uniform_zero_never_loses() {
        let mut model = UniformLoss::none();
        let mut rng = StdRng::seed_from_u64(1);
        assert!((0..1000).all(|_| !model.is_lost(&mut rng)));
    }

    #[test]
    fn uniform_one_always_loses() {
        let mut model = UniformLoss::new(1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        assert!((0..1000).all(|_| model.is_lost(&mut rng)));
    }

    #[test]
    fn uniform_empirical_rate_matches() {
        let mut model = UniformLoss::new(0.05).unwrap();
        let mut rng = StdRng::seed_from_u64(99);
        let losses = (0..200_000).filter(|_| model.is_lost(&mut rng)).count();
        let rate = losses as f64 / 200_000.0;
        assert!((rate - 0.05).abs() < 0.005, "empirical {rate}");
    }

    #[test]
    fn gilbert_elliott_average_rate() {
        let model = GilbertElliott::new(0.1, 0.3, 0.0, 0.2).unwrap();
        // p_bad = 0.1 / 0.4 = 0.25; rate = 0.25 · 0.2 = 0.05.
        assert!((model.average_rate() - 0.05).abs() < 1e-12);
    }

    #[test]
    fn gilbert_elliott_empirical_rate_matches_average() {
        let mut model = GilbertElliott::new(0.05, 0.2, 0.001, 0.25).unwrap();
        let expected = model.average_rate();
        let mut rng = StdRng::seed_from_u64(7);
        let losses = (0..400_000).filter(|_| model.is_lost(&mut rng)).count();
        let rate = losses as f64 / 400_000.0;
        assert!((rate - expected).abs() < 0.01, "empirical {rate} vs {expected}");
    }

    #[test]
    fn gilbert_elliott_bursts() {
        // With sticky states, losses should cluster: the variance of the gap
        // between losses exceeds the geometric model's.
        let mut model = GilbertElliott::new(0.01, 0.05, 0.0, 0.5).unwrap();
        let mut rng = StdRng::seed_from_u64(21);
        let mut consecutive = 0u32;
        let mut max_run = 0u32;
        for _ in 0..100_000 {
            if model.is_lost(&mut rng) {
                consecutive += 1;
                max_run = max_run.max(consecutive);
            } else {
                consecutive = 0;
            }
        }
        assert!(max_run >= 3, "expected bursty losses, max run {max_run}");
    }

    #[test]
    fn gilbert_elliott_frozen_chain_average() {
        let model = GilbertElliott::new(0.0, 0.0, 0.02, 0.9).unwrap();
        assert_eq!(model.average_rate(), 0.02);
    }

    #[test]
    fn targeted_loss_uses_overrides() {
        let mut model = TargetedLoss::new(0.0).unwrap();
        model.set_target(NodeId::new(7), 1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        assert!((0..100).all(|_| model.is_lost_to(NodeId::new(7), &mut rng)));
        assert!((0..100).all(|_| !model.is_lost_to(NodeId::new(8), &mut rng)));
        assert!(!model.is_lost(&mut rng));
        assert_eq!(model.average_rate(), 0.0);
    }

    #[test]
    fn targeted_loss_overrides_replace() {
        let mut model = TargetedLoss::new(0.1).unwrap();
        model.set_target(NodeId::new(1), 0.9).unwrap();
        model.set_target(NodeId::new(1), 0.0).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        assert!((0..200).all(|_| !model.is_lost_to(NodeId::new(1), &mut rng)));
    }

    #[test]
    fn targeted_loss_rejects_bad_rates() {
        assert!(TargetedLoss::new(1.5).is_err());
        let mut model = TargetedLoss::new(0.0).unwrap();
        assert!(model.set_target(NodeId::new(1), -0.1).is_err());
    }

    #[test]
    fn default_is_lost_to_matches_is_lost() {
        let mut a = UniformLoss::new(0.3).unwrap();
        let mut b = UniformLoss::new(0.3).unwrap();
        let mut ra = StdRng::seed_from_u64(9);
        let mut rb = StdRng::seed_from_u64(9);
        for k in 0..1000 {
            assert_eq!(a.is_lost(&mut ra), b.is_lost_to(NodeId::new(k), &mut rb));
        }
    }

    #[test]
    fn gilbert_elliott_rejects_bad_probabilities() {
        assert!(GilbertElliott::new(1.5, 0.0, 0.0, 0.0).is_err());
        assert!(GilbertElliott::new(0.0, 0.0, 0.0, f64::INFINITY).is_err());
    }
}
