//! The engine/protocol unification layer.
//!
//! Three simulation engines grew up in this crate sharing an API by
//! convention — [`Simulation`](crate::Simulation) (per-node reference),
//! [`FlatSimulation`](crate::FlatSimulation) (struct-of-arrays fast path),
//! and [`ParSimulation`](crate::ParSimulation) (sharded rounds) — while the
//! baseline and variant protocol zoos ran on separate hand-rolled
//! harnesses that could not reach the system sizes where the paper's
//! mean-field contrasts become sharp. This module turns both conventions
//! into traits:
//!
//! * [`Engine`] — the round-granular driving surface every engine
//!   implements (rounds, settle, churn, faults, graph + stats readers), so
//!   differential tests and sweeps are written once and instantiated per
//!   engine;
//! * [`ProtocolBehavior`] — a membership protocol expressed over one
//!   node's slot window ([`SlotView`]): an initiate action, a receive
//!   handler that may produce one reply, and the bootstrap/visibility
//!   hooks churn and measurement need. The flat and par engines are
//!   generic over a behavior (defaulting to [`SfBehavior`], the paper's
//!   S&F protocol), which is how push-only, push-pull, shuffle, and the
//!   S&F variants run at multi-million-steps/sec scale.
//!
//! # Draw-order contract
//!
//! [`SfBehavior`] performs **exactly** the RNG draws the engines performed
//! before the unification, in the same order with the same bounds
//! (slot pick `i`, distinct slot pick `j`, then per delivered message the
//! nth-empty-slot placement draws). S&F never replies, so the reply
//! machinery below consumes zero draws for it — the
//! `flat_equals_classic_*` lockstep tests and the bench goldens pin this.
//! Protocols other than S&F make no byte-identity promise across engines;
//! they agree statistically (see `tests/protocol_conformance.rs`).
//!
//! The engines draw message loss **at send time, before the receiver's
//! liveness is known** — a message to a departed node consumes a loss draw
//! and is then counted as a dead letter, never as lost. That order is part
//! of the byte-identity contract between the engines and is therefore
//! pinned here rather than "fixed": a dead letter is a property of the
//! receiver discovered at delivery, while loss is a property of the
//! channel decided at send. (The retired `BaselineHarness` did the
//! opposite and checked liveness first; its RNG stream shifted under churn
//! — see `sandf-baselines` for the regression test.)

use std::fmt;

use rand::rngs::StdRng;
use rand::Rng;
use sandf_core::{JoinError, Message, NodeId, NodeStats, SfConfig};
use sandf_graph::MembershipGraph;

use crate::degree::DegreeStats;
use crate::engine::{SimStats, StepSubscriber};

/// Empty-slot sentinel in the slot arenas. The arenas store ids as `u32`
/// words (half the footprint of the public `u64` id space), so real node
/// ids must stay below this sentinel; the engines reject ids at or above
/// [`ARENA_ID_LIMIT`] at construction and join time.
pub const EMPTY_SLOT: u32 = u32::MAX;

/// Exclusive upper bound on node ids representable in the slot arenas
/// (`u32::MAX` itself is the [`EMPTY_SLOT`] sentinel).
pub const ARENA_ID_LIMIT: u64 = u32::MAX as u64;

/// Narrows a node id to its arena slot word. The engines guarantee every
/// admitted id sits below [`ARENA_ID_LIMIT`], so the narrowing is
/// lossless; debug builds assert it.
#[inline]
#[must_use]
pub fn slot_word(id: NodeId) -> u32 {
    debug_assert!(id.as_u64() < ARENA_ID_LIMIT, "node id {id} exceeds the u32 arena id space");
    #[allow(clippy::cast_possible_truncation)]
    {
        id.as_u64() as u32
    }
}

/// Slot-flag bit: the entry is dependent (a duplicated id, in the paper's
/// sense).
pub const FLAG_DEPENDENT: u8 = 1;

/// Slot-flag bit: the entry is a tombstone — protocol-defined dead state
/// (used by the undelete variant). Tombstoned slots count as unoccupied
/// for degree purposes and are hidden from the graph readers.
pub const FLAG_TOMBSTONE: u8 = 2;

/// A mutable window over one node's slots in an engine's arena, handed to
/// [`ProtocolBehavior`] callbacks.
///
/// `ids[off] == EMPTY_SLOT` marks an empty slot; `flags` carries the
/// per-slot [`FLAG_DEPENDENT`] / [`FLAG_TOMBSTONE`] bits; `degree` is the
/// node's live outdegree ledger (the engine's graph readers trust it);
/// `stats` the per-node counters.
pub struct SlotView<'a> {
    /// The node that owns this window.
    pub id: NodeId,
    /// Slot ids as arena words (`EMPTY_SLOT` = empty).
    pub ids: &'a mut [u32],
    /// Per-slot flag bits, parallel to `ids`.
    pub flags: &'a mut [u8],
    /// The node's outdegree ledger (live entries only — excludes
    /// tombstones).
    pub degree: &'a mut u32,
    /// The node's event counters.
    pub stats: &'a mut NodeStats,
}

impl SlotView<'_> {
    /// Number of slots (the view size `s`).
    #[must_use]
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the window has zero slots (never true for a legal config).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Raw slot content (`EMPTY_SLOT` when empty).
    #[inline]
    #[must_use]
    pub fn raw(&self, off: usize) -> u32 {
        self.ids[off]
    }

    /// The id in a slot, or `None` when the slot is empty.
    #[inline]
    #[must_use]
    pub fn id_at(&self, off: usize) -> Option<NodeId> {
        (self.ids[off] != EMPTY_SLOT).then(|| NodeId::new(u64::from(self.ids[off])))
    }

    /// Whether a slot holds a live (non-empty, non-tombstone) entry.
    #[inline]
    #[must_use]
    pub fn is_live(&self, off: usize) -> bool {
        self.ids[off] != EMPTY_SLOT && self.flags[off] & FLAG_TOMBSTONE == 0
    }

    /// Empties a slot (does not touch the degree ledger).
    #[inline]
    pub fn clear(&mut self, off: usize) {
        self.ids[off] = EMPTY_SLOT;
        self.flags[off] = 0;
    }

    /// Writes a slot (does not touch the degree ledger).
    #[inline]
    pub fn set(&mut self, off: usize, id: NodeId, flags: u8) {
        self.ids[off] = slot_word(id);
        self.flags[off] = flags;
    }

    /// Stores `id` into the `nth` empty slot with `nth` drawn uniformly —
    /// the exact draw (`gen_range(0..empty)`) and slot-order scan of
    /// `LocalView::insert_into_random_empty`, which the byte-identity
    /// contract pins. Increments the degree ledger.
    ///
    /// # Panics
    ///
    /// Panics (debug) when no slot is empty; callers check capacity first.
    #[inline]
    pub fn insert_into_random_empty(&mut self, id: NodeId, flags: u8, rng: &mut StdRng) {
        let s = self.len();
        let empty = s - *self.degree as usize;
        debug_assert!(empty > 0, "outdegree below s implies an empty slot");
        let nth = rng.gen_range(0..empty);
        let off = crate::scan::nth_match(self.ids, EMPTY_SLOT, nth)
            .expect("an empty slot was counted but not found");
        self.ids[off] = slot_word(id);
        self.flags[off] = flags;
        *self.degree += 1;
    }

    /// Offsets of the occupied (non-empty, non-tombstone) slots, in slot
    /// order.
    #[must_use]
    pub fn occupied_offsets(&self) -> Vec<usize> {
        (0..self.len()).filter(|&off| self.is_live(off)).collect()
    }
}

/// The outcome of delivering one message to a node: whether the payload
/// was discarded (full view / displacement), and at most one reply.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Receipt<M> {
    /// The delivered ids were discarded rather than stored.
    pub deleted: bool,
    /// A reply to route back through the channel (loss applies per hop).
    pub reply: Option<(NodeId, M)>,
}

impl<M> Receipt<M> {
    /// The ids were stored; no reply.
    #[must_use]
    pub fn stored() -> Self {
        Self { deleted: false, reply: None }
    }

    /// The ids were discarded; no reply.
    #[must_use]
    pub fn deleted() -> Self {
        Self { deleted: true, reply: None }
    }

    /// The ids were stored and the node replies to `to`.
    #[must_use]
    pub fn stored_with_reply(to: NodeId, msg: M) -> Self {
        Self { deleted: false, reply: Some((to, msg)) }
    }
}

/// A membership protocol expressed over one node's slot window, executable
/// on any arena engine ([`FlatSimulation`](crate::FlatSimulation),
/// [`ParSimulation`](crate::ParSimulation)).
///
/// The engine owns scheduling, the channel (loss, delay, dead letters),
/// churn bookkeeping, and the stats ledgers; the behavior owns the view
/// algebra. Reply chains are capped at
/// [`MAX_REPLY_CHAIN`](crate::MAX_REPLY_CHAIN) hops per delivery.
pub trait ProtocolBehavior: Clone + Send + Sync {
    /// The wire message. `Copy` so the engines' ring buffers and shard
    /// queues stay allocation-free.
    type Msg: Copy + Send + Sync + PartialEq + fmt::Debug;

    /// The message's originator (dead letters and delivery routing are
    /// attributed to it).
    fn sender(msg: &Self::Msg) -> NodeId;

    /// Whether the message carries duplicated ids (drives the engines'
    /// duplication counter; protocols without the concept keep the
    /// default).
    fn duplicated(_msg: &Self::Msg) -> bool {
        false
    }

    /// One action step at `view`'s node: `None` is a self-loop (no
    /// message), `Some((to, msg))` sends. Must maintain `view.degree` and
    /// the per-node counters.
    fn initiate(
        &self,
        config: SfConfig,
        view: SlotView<'_>,
        rng: &mut StdRng,
    ) -> Option<(NodeId, Self::Msg)>;

    /// Delivers `msg` at `view`'s node; may produce one reply.
    fn receive(
        &self,
        config: SfConfig,
        view: SlotView<'_>,
        msg: Self::Msg,
        rng: &mut StdRng,
    ) -> Receipt<Self::Msg>;

    /// Validates a bootstrap view of `supplied` ids for a joining node.
    /// The default accepts any non-empty set that fits the view.
    ///
    /// # Errors
    ///
    /// [`JoinError`] describing the violated constraint.
    fn validate_bootstrap(&self, config: SfConfig, supplied: usize) -> Result<(), JoinError> {
        if supplied == 0 {
            return Err(JoinError::TooFewIds { supplied, d_l: 1 });
        }
        if supplied > config.view_size() {
            return Err(JoinError::TooManyIds { supplied, s: config.view_size() });
        }
        Ok(())
    }

    /// How many sponsor-view ids `join_via` seeds a joiner with.
    fn join_seed_size(&self, config: SfConfig) -> usize {
        config.lower_threshold()
    }

    /// Whether a slot's entry is visible to the graph readers
    /// (`graph()` / `count_id_instances`). The default hides tombstones.
    fn slot_visible(flags: u8) -> bool {
        flags & FLAG_TOMBSTONE == 0
    }
}

/// Maximum reply hops processed per delivered message (matching the old
/// baseline harness's chain cap). Push-pull and shuffle use one reply;
/// the cap only guards against a misbehaving protocol.
pub const MAX_REPLY_CHAIN: usize = 8;

/// The paper's S&F protocol as a [`ProtocolBehavior`] — the default
/// behavior of the flat and par engines.
///
/// This is a verbatim extraction of the engines' previous inline
/// initiate/receive code: identical draws, identical order, identical
/// counter updates. It never replies, so the generic reply machinery is
/// dead code on the S&F path.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SfBehavior;

impl ProtocolBehavior for SfBehavior {
    type Msg = Message;

    #[inline]
    fn sender(msg: &Message) -> NodeId {
        msg.sender
    }

    #[inline]
    fn duplicated(msg: &Message) -> bool {
        msg.dependent
    }

    #[inline]
    fn initiate(
        &self,
        config: SfConfig,
        view: SlotView<'_>,
        rng: &mut StdRng,
    ) -> Option<(NodeId, Message)> {
        let SlotView { id, ids, flags, degree, stats } = view;
        stats.initiated += 1;
        let s = ids.len();
        debug_assert!(s >= 2, "view must have at least two slots");
        let i = rng.gen_range(0..s);
        let mut j = rng.gen_range(0..s - 1);
        if j >= i {
            j += 1;
        }
        let target = ids[i];
        let payload = ids[j];
        if target == EMPTY_SLOT || payload == EMPTY_SLOT {
            stats.self_loops += 1;
            return None;
        }
        let duplicated = (*degree as usize) <= config.lower_threshold();
        if duplicated {
            stats.duplications += 1;
        } else {
            ids[i] = EMPTY_SLOT;
            flags[i] = 0;
            ids[j] = EMPTY_SLOT;
            flags[j] = 0;
            *degree -= 2;
        }
        stats.sent += 1;
        let message = Message::new(id, NodeId::new(u64::from(payload)), duplicated);
        Some((NodeId::new(u64::from(target)), message))
    }

    #[inline]
    fn receive(
        &self,
        _config: SfConfig,
        mut view: SlotView<'_>,
        msg: Message,
        rng: &mut StdRng,
    ) -> Receipt<Message> {
        if *view.degree as usize >= view.len() {
            view.stats.deletions += 1;
            return Receipt::deleted();
        }
        let flags = if msg.dependent { FLAG_DEPENDENT } else { 0 };
        view.insert_into_random_empty(msg.sender, flags, rng);
        view.insert_into_random_empty(msg.payload, flags, rng);
        view.stats.stored += 1;
        Receipt::stored()
    }

    /// The protocol's own bootstrap checks, in the order
    /// `SfNode::with_view` performs them.
    fn validate_bootstrap(&self, config: SfConfig, supplied: usize) -> Result<(), JoinError> {
        let d_l = config.lower_threshold();
        let s = config.view_size();
        if supplied < d_l {
            return Err(JoinError::TooFewIds { supplied, d_l });
        }
        if supplied > s {
            return Err(JoinError::TooManyIds { supplied, s });
        }
        if !supplied.is_multiple_of(2) {
            return Err(JoinError::OddIdCount { supplied });
        }
        Ok(())
    }
}

/// A compact multi-id wire message for the protocol zoo: a sender, a
/// protocol-defined discriminant, and up to [`IdBatch::CAPACITY`] id
/// payloads with per-id dependence bits. `Copy`, so engine queues stay
/// allocation-free.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IdBatch {
    /// The originator.
    pub sender: NodeId,
    /// Protocol-defined message kind (request/reply/push…).
    pub kind: u8,
    /// Number of valid entries in `ids`.
    pub len: u8,
    /// Id payloads (`ids[..len as usize]` are valid).
    pub ids: [u64; Self::CAPACITY],
    /// Per-payload dependence bits (bit `k` ↔ `ids[k]`).
    pub dep: u8,
}

impl IdBatch {
    /// Maximum payload ids per message.
    pub const CAPACITY: usize = 8;

    /// An empty batch from `sender` with the given kind.
    #[must_use]
    pub fn new(sender: NodeId, kind: u8) -> Self {
        Self { sender, kind, len: 0, ids: [0; Self::CAPACITY], dep: 0 }
    }

    /// Appends a payload id.
    ///
    /// # Panics
    ///
    /// Panics when the batch is full.
    pub fn push(&mut self, id: NodeId, dependent: bool) {
        let k = self.len as usize;
        assert!(k < Self::CAPACITY, "IdBatch overflow");
        self.ids[k] = id.as_u64();
        if dependent {
            self.dep |= 1 << k;
        }
        self.len += 1;
    }

    /// The valid payloads as `(id, dependent)` pairs.
    pub fn entries(&self) -> impl Iterator<Item = (NodeId, bool)> + '_ {
        (0..self.len as usize).map(|k| (NodeId::new(self.ids[k]), self.dep & (1 << k) != 0))
    }
}

/// The round-granular surface shared by all three engines, for generic
/// differential tests and sweeps.
///
/// Engines keep their richer inherent APIs (per-step execution, typed
/// `leave` returns, protocol-specific readers); this trait is the common
/// denominator a test can drive without knowing which engine — or which
/// protocol — it holds.
pub trait Engine {
    /// The wire message type flowing through the engine's subscribers.
    type Msg: Copy + Send + Sync + PartialEq + fmt::Debug;
    /// The fault/loss model steering the channel.
    type Fault;

    /// Number of live nodes.
    fn len(&self) -> usize;

    /// Whether no node is live.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The live node ids (owned; engines differ in their internal storage).
    fn live_ids(&self) -> Vec<NodeId>;

    /// The shared protocol configuration.
    fn config(&self) -> SfConfig;

    /// Accumulated system-wide counters.
    fn stats(&self) -> SimStats;

    /// Resets system-wide and per-node counters (e.g. after burn-in).
    fn reset_stats(&mut self);

    /// Sum of all live nodes' per-node counters.
    fn aggregate_node_stats(&self) -> NodeStats;

    /// Executes one round (`n` scheduled steps).
    fn round(&mut self);

    /// Executes `rounds` rounds.
    fn run_rounds(&mut self, rounds: usize) {
        for _ in 0..rounds {
            self.round();
        }
    }

    /// Completed rounds — the time base round-indexed fault models see.
    fn rounds_run(&self) -> u64;

    /// Messages currently in flight (0 under immediate delivery).
    fn in_flight(&self) -> usize;

    /// Delivers everything still in flight.
    fn settle(&mut self);

    /// Adds a node bootstrapped from a random sample of `sponsor`'s view.
    ///
    /// # Errors
    ///
    /// [`JoinError`] when the sponsor cannot seed a legal bootstrap.
    fn join_via(&mut self, sponsor: NodeId) -> Result<NodeId, JoinError>;

    /// Removes a node; `true` if it was live.
    fn leave(&mut self, id: NodeId) -> bool;

    /// A live node's outdegree, or `None` when departed.
    fn out_degree_of(&self, id: NodeId) -> Option<usize>;

    /// Total multiplicity of `id` across all live views.
    fn count_id_instances(&self, id: NodeId) -> usize;

    /// Streaming degree statistics: the live outdegree histogram the
    /// engine maintains incrementally at store/delete time. An `O(s)`
    /// snapshot — no arena scan — equal to a from-scratch rebuild over
    /// the live degree ledgers at all times.
    fn degree_stats(&self) -> DegreeStats;

    /// Snapshots the membership graph.
    fn graph(&self) -> MembershipGraph;

    /// Visits every live node's current view as `(viewer, neighbour_ids)`,
    /// in the engine's deterministic live order. The slice holds exactly
    /// the protocol-visible occupied slots (tombstones hidden) — the same
    /// edges [`Engine::graph`] would record for that node — and is only
    /// valid for the duration of the callback (one shared buffer is reused
    /// across nodes, so a full pass does no per-node allocation).
    ///
    /// This is the per-round piggyback hook for layers that consume the
    /// peer-sampling service rather than only measure it, e.g.
    /// [`crate::broadcast::BroadcastLayer`].
    fn for_each_live_view(&self, visit: &mut dyn FnMut(NodeId, &[NodeId]));

    /// Applies `f` to the fault model.
    fn update_fault(&mut self, f: impl FnMut(&mut Self::Fault));

    /// Registers a step-event observer.
    fn subscribe(&mut self, subscriber: Box<dyn StepSubscriber<Self::Msg>>);
}

impl<L: crate::fault::FaultModel> Engine for crate::Simulation<L> {
    type Msg = Message;
    type Fault = L;

    fn len(&self) -> usize {
        Self::len(self)
    }

    fn live_ids(&self) -> Vec<NodeId> {
        Self::live_ids(self).to_vec()
    }

    fn config(&self) -> SfConfig {
        Self::config(self)
    }

    fn stats(&self) -> SimStats {
        *Self::stats(self)
    }

    fn reset_stats(&mut self) {
        Self::reset_stats(self);
    }

    fn aggregate_node_stats(&self) -> NodeStats {
        Self::aggregate_node_stats(self)
    }

    fn round(&mut self) {
        Self::round(self);
    }

    fn rounds_run(&self) -> u64 {
        Self::rounds_run(self)
    }

    fn in_flight(&self) -> usize {
        Self::in_flight(self)
    }

    fn settle(&mut self) {
        Self::settle(self);
    }

    fn join_via(&mut self, sponsor: NodeId) -> Result<NodeId, JoinError> {
        Self::join_via(self, sponsor)
    }

    fn leave(&mut self, id: NodeId) -> bool {
        Self::leave(self, id).is_some()
    }

    fn out_degree_of(&self, id: NodeId) -> Option<usize> {
        self.node(id).map(sandf_core::SfNode::out_degree)
    }

    fn count_id_instances(&self, id: NodeId) -> usize {
        Self::count_id_instances(self, id)
    }

    fn degree_stats(&self) -> DegreeStats {
        Self::degree_stats(self).clone()
    }

    fn graph(&self) -> MembershipGraph {
        Self::graph(self)
    }

    fn for_each_live_view(&self, visit: &mut dyn FnMut(NodeId, &[NodeId])) {
        let mut buf: Vec<NodeId> = Vec::new();
        for &id in Self::live_ids(self) {
            let node = self.node(id).expect("live id resolves to a node");
            buf.clear();
            buf.extend(node.view().ids());
            visit(id, &buf);
        }
    }

    fn update_fault(&mut self, f: impl FnMut(&mut L)) {
        Self::update_fault(self, f);
    }

    fn subscribe(&mut self, subscriber: Box<dyn StepSubscriber<Message>>) {
        Self::subscribe(self, subscriber);
    }
}

#[cfg(test)]
mod tests {
    use rand::SeedableRng;

    use super::*;

    fn window<'a>(
        ids: &'a mut [u32],
        flags: &'a mut [u8],
        degree: &'a mut u32,
        stats: &'a mut NodeStats,
    ) -> SlotView<'a> {
        SlotView { id: NodeId::new(9), ids, flags, degree, stats }
    }

    #[test]
    fn insert_into_random_empty_scans_in_slot_order() {
        let mut ids = [7u32, EMPTY_SLOT, 3, EMPTY_SLOT];
        let mut flags = [0u8; 4];
        let mut degree = 2u32;
        let mut stats = NodeStats::new();
        let mut rng = StdRng::seed_from_u64(1);
        let mut view = window(&mut ids, &mut flags, &mut degree, &mut stats);
        view.insert_into_random_empty(NodeId::new(5), FLAG_DEPENDENT, &mut rng);
        assert_eq!(degree, 3);
        assert_eq!(ids.iter().filter(|&&x| x == 5).count(), 1);
        let off = ids.iter().position(|&x| x == 5).unwrap();
        assert_eq!(flags[off], FLAG_DEPENDENT);
    }

    #[test]
    fn sf_behavior_bootstrap_checks_match_the_protocol_order() {
        let config = SfConfig::new(12, 4).unwrap();
        let b = SfBehavior;
        assert_eq!(
            b.validate_bootstrap(config, 2),
            Err(JoinError::TooFewIds { supplied: 2, d_l: 4 })
        );
        assert_eq!(
            b.validate_bootstrap(config, 14),
            Err(JoinError::TooManyIds { supplied: 14, s: 12 })
        );
        assert_eq!(b.validate_bootstrap(config, 5), Err(JoinError::OddIdCount { supplied: 5 }));
        assert!(b.validate_bootstrap(config, 6).is_ok());
    }

    #[test]
    fn id_batch_roundtrips_entries() {
        let mut batch = IdBatch::new(NodeId::new(3), 1);
        batch.push(NodeId::new(10), true);
        batch.push(NodeId::new(11), false);
        let entries: Vec<(NodeId, bool)> = batch.entries().collect();
        assert_eq!(entries, vec![(NodeId::new(10), true), (NodeId::new(11), false)]);
        assert_eq!(batch.sender, NodeId::new(3));
    }

    #[test]
    fn tombstones_are_invisible_by_default() {
        assert!(SfBehavior::slot_visible(FLAG_DEPENDENT));
        assert!(!SfBehavior::slot_visible(FLAG_TOMBSTONE));
    }
}
