//! The multi-threaded fast path: a sharded, round-based simulation engine.
//!
//! [`FlatSimulation`](crate::FlatSimulation) is bound by single-thread
//! throughput: one RNG stream forces every step to happen in sequence. The
//! sharded engine removes that bottleneck by changing *where randomness
//! comes from*: instead of one stream whose draw order serializes the run,
//! every `(node, round)` pair derives its own short-lived RNG from the
//! simulation seed with FNV-1a — the same per-task derivation scheme the
//! sweep executor in `sandf_bench::sweep` uses for replicate seeds. A
//! node's behavior in a round then depends only on `(seed, node id,
//! round)` and its own view, never on which thread ran it, so the arena
//! can be split into `T` contiguous shards and processed concurrently
//! while staying **byte-identical for any thread count**.
//!
//! Each round executes three phases:
//!
//! 1. **action phase (parallel)** — every live node initiates exactly
//!    once, in dense arena order within each shard, using its private
//!    per-`(seed, node, round)` RNG stream; outbound messages are
//!    buffered per shard;
//! 2. **merge phase (sequential, deterministic)** — the per-shard send
//!    buffers are concatenated in shard order (= global dense order, for
//!    every `T`) into the ring-buffer in-flight queue;
//! 3. **delivery phase (parallel)** — the bucket due this round is
//!    stably ordered by `(deliver_time, sender, slot)` (one bucket holds
//!    exactly one delivery time; each node sends at most one message — a
//!    single slot — per round, so ties fall back to send-round order),
//!    dead letters are counted sequentially, and the surviving messages
//!    are partitioned by receiver shard and applied concurrently, each
//!    receive drawing from a per-message RNG derived from
//!    `(seed, deliver_time, bucket position)`. Replies produced by a
//!    [`ProtocolBehavior`] receive (push-pull, shuffle — never S&F) are
//!    collected in bucket order and routed sequentially afterwards, in
//!    waves, each hop drawing from its own
//!    `(seed, deliver_time, wave, bucket position)` stream — so the reply
//!    traffic is thread-count-independent too.
//!
//! # A distinct — but valid — statistical mode
//!
//! The classic and flat engines are seed-for-seed identical to each other
//! and follow the paper's central-entity model: one uniformly random node
//! steps at a time, with one global RNG. `ParSimulation` is **not**
//! lockstep-equivalent to them — it is a round-based engine (every live
//! node initiates exactly once per round, like
//! [`round_permuted`](crate::FlatSimulation::round_permuted)), message
//! delays are drawn in *rounds* rather than steps, and each sender owns a
//! private loss channel (relevant for stateful models like
//! [`GilbertElliott`](crate::GilbertElliott)). All protocol transitions
//! (initiate, receive, duplication threshold, deletion-on-full) are the
//! same machine, so steady-state statistics — degree distributions,
//! duplication/deletion/loss rates — agree with the sequential engines
//! within sampling error; `crates/bench/tests/par_statistics.rs` checks
//! this against the classic engine at matched parameters.
//!
//! Like the flat engine, `ParSimulation` is generic over a
//! [`ProtocolBehavior`] (defaulting to [`SfBehavior`], the paper's S&F
//! protocol), which is how the baseline and variant protocol zoos reach
//! round-based multi-core scale; see the [`crate::traits`] module docs for
//! the byte-identity and draw-order contracts.
//!
//! ```
//! use sandf_core::SfConfig;
//! use sandf_sim::{topology, ParSimulation, UniformLoss};
//!
//! let config = SfConfig::new(16, 6)?;
//! let nodes = topology::circulant(10_000, config, 8);
//! let mut eight = ParSimulation::new(nodes.clone(), UniformLoss::new(0.01)?, 42, 8);
//! let mut one = ParSimulation::new(nodes, UniformLoss::new(0.01)?, 42, 1);
//! eight.run_rounds(5);
//! one.run_rounds(5);
//! assert_eq!(eight.stats(), one.stats()); // byte-identical for any thread count
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use std::fmt;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use sandf_core::{Entry, JoinError, LocalView, NodeId, NodeStats, SfConfig, SfNode};
use sandf_graph::{DependenceReport, MembershipGraph};
use sandf_obs::{duration_buckets, GaugeHandle, HistogramHandle, MetricsRegistry, SpanTimer};

use crate::degree::DegreeStats;
use crate::engine::{DelayModel, SimStats, StepEvent, StepPhase, StepReport, StepSubscriber};
use crate::fault::{FaultCtx, FaultModel};
use crate::traits::{
    slot_word, ProtocolBehavior, SfBehavior, SlotView, ARENA_ID_LIMIT, FLAG_DEPENDENT,
    MAX_REPLY_CHAIN,
};

/// Empty-slot sentinel in the arena. Real node ids must stay below it.
const EMPTY: u32 = crate::traits::EMPTY_SLOT;

/// "Not live" sentinel in the id → dense-index table.
const DEAD: u32 = u32::MAX;

/// 64-bit FNV-1a offset basis.
const FNV_OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;

/// 64-bit FNV-1a prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over `bytes` — the same hash `sandf_bench::sweep` uses to derive
/// per-replicate seeds, applied here to per-`(node, round)` and
/// per-message streams.
#[inline]
pub(crate) fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = FNV_OFFSET_BASIS;
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// Derives one stream seed from the simulation seed, a stream tag, and two
/// stream coordinates, hashed as little-endian bytes (a fixed 25-byte
/// layout: seed ‖ tag ‖ a ‖ b — no allocation on the hot path).
#[inline]
pub(crate) fn stream_seed(seed: u64, tag: u8, a: u64, b: u64) -> u64 {
    let mut buf = [0u8; 25];
    buf[..8].copy_from_slice(&seed.to_le_bytes());
    buf[8] = tag;
    buf[9..17].copy_from_slice(&a.to_le_bytes());
    buf[17..].copy_from_slice(&b.to_le_bytes());
    fnv1a64(&buf)
}

/// The action-phase RNG stream of `node` in `round`: tag `b'a'`.
#[inline]
fn action_seed(seed: u64, node: u64, round: u64) -> u64 {
    stream_seed(seed, b'a', node, round)
}

/// The delivery RNG stream of the message at sorted bucket position `pos`
/// delivered at time `at`: tag `b'd'`.
#[inline]
fn delivery_seed(seed: u64, at: u64, pos: u64) -> u64 {
    stream_seed(seed, b'd', at, pos)
}

/// The RNG stream of the reply hop in `wave` (1-based) descending from
/// sorted bucket position `pos` of the bucket delivered at `at`: tag
/// `b'r'`. `at·16 + wave` is injective because the wave counter is capped
/// at [`MAX_REPLY_CHAIN`] `< 16`.
#[inline]
fn reply_seed(seed: u64, at: u64, wave: u64, pos: u64) -> u64 {
    stream_seed(seed, b'r', at * 16 + wave, pos)
}

/// The control-plane RNG stream (sponsor-view shuffles in
/// [`ParSimulation::join_via`]): tag `b'c'`.
#[inline]
fn control_seed(seed: u64) -> u64 {
    stream_seed(seed, b'c', 0, 0)
}

/// Adds every counter of `delta` into `total`.
fn merge_stats(total: &mut SimStats, delta: &SimStats) {
    total.actions += delta.actions;
    total.self_loops += delta.self_loops;
    total.sent += delta.sent;
    total.replies += delta.replies;
    total.lost += delta.lost;
    total.dead_letters += delta.dead_letters;
    total.stored += delta.stored;
    total.deleted += delta.deleted;
    total.duplications += delta.duplications;
    total.skipped += delta.skipped;
}

/// Per-round span histograms and the shard-balance gauge, when a profiler
/// is attached.
#[derive(Clone, Debug)]
struct ParProfile {
    action: HistogramHandle,
    merge: HistogramHandle,
    deliver: HistogramHandle,
    imbalance: GaugeHandle,
}

/// Read-only context shared by all action-phase shard workers.
#[derive(Clone, Copy)]
struct ActionCtx<'a> {
    s: usize,
    config: SfConfig,
    seed: u64,
    round: u64,
    delay: DelayModel,
    dense_id: &'a [NodeId],
    index: &'a [u32],
    observed: bool,
}

/// What one action-phase shard worker produced.
struct ActionShardOut<M> {
    stats: SimStats,
    live: u64,
    /// Outbound messages as `(deliver_round, to, message)`, in dense order.
    sends: Vec<(u64, NodeId, M)>,
    /// Action reports in dense order (`step` assigned during the merge).
    reports: Vec<StepReport<M>>,
    /// Signed per-bucket movement of the live-outdegree histogram
    /// (addition commutes, so the sequential merge is shard-order
    /// independent).
    hist: Vec<i64>,
}

/// Read-only context shared by all delivery-phase shard workers.
#[derive(Clone, Copy)]
struct DeliveryCtx {
    s: usize,
    config: SfConfig,
    seed: u64,
    /// The delivery time of the drained bucket.
    at: u64,
    /// The step stamped on delivery reports (end of the current round).
    end_step: u64,
    observed: bool,
}

/// One delivered message, routed to its receiver shard: the sorted bucket
/// position (drives the per-message RNG stream and the report order), the
/// receiver's dense index and id, and the message itself.
#[derive(Clone, Copy)]
struct RoutedMessage<M> {
    pos: usize,
    dense: usize,
    to: NodeId,
    message: M,
}

/// What one delivery-phase shard worker produced.
struct DeliveryShardOut<M> {
    stored: u64,
    deleted: u64,
    /// Delivery reports keyed by sorted bucket position.
    reports: Vec<(usize, StepReport<M>)>,
    /// Replies the receives produced, keyed by sorted bucket position;
    /// routed sequentially after the shards merge (empty for S&F).
    replies: Vec<(usize, NodeId, M)>,
    /// Signed per-bucket movement of the live-outdegree histogram.
    hist: Vec<i64>,
}

impl<M> DeliveryShardOut<M> {
    fn new(s: usize) -> Self {
        Self {
            stored: 0,
            deleted: 0,
            reports: Vec::new(),
            replies: Vec::new(),
            hist: vec![0; s + 1],
        }
    }
}

/// The sharded, multi-threaded fast path of the simulation stack.
///
/// Same arena layout as [`FlatSimulation`](crate::FlatSimulation) (one
/// contiguous `n × s` slot arena, dense ledgers, ring-buffer in-flight
/// queue), driven by round-based three-phase execution — parallel actions,
/// deterministic merge, parallel delivery — with per-`(seed, node, round)`
/// FNV-1a-derived RNG streams. Results are **byte-identical for any thread
/// count**; see the module docs for the scheme and for why this engine is
/// a distinct-but-valid statistical mode relative to
/// [`Simulation`](crate::Simulation).
///
/// The engine is generic over a [`ProtocolBehavior`] `B` (defaulting to
/// [`SfBehavior`]); build zoo instances with
/// [`from_views`](Self::from_views).
///
/// Under [`DelayModel::UniformSteps`] the bound is interpreted in
/// *rounds*: each message arrives `1..=max` rounds after it was sent.
/// Under [`DelayModel::Immediate`] messages are delivered in the same
/// round's delivery phase (after every node has acted).
pub struct ParSimulation<L, B: ProtocolBehavior = SfBehavior> {
    config: SfConfig,
    /// View size, cached out of `config` for the hot loops.
    s: usize,
    /// The protocol executing over the arena.
    behavior: B,
    /// Slot arena: node `k` owns `slot_ids[k·s .. (k+1)·s]`. Ids are
    /// stored as `u32` words (see [`ARENA_ID_LIMIT`]); the public API
    /// widens at the boundary.
    slot_ids: Vec<u32>,
    /// Per-slot flag bits, parallel to `slot_ids` (meaningless on `EMPTY`).
    slot_flags: Vec<u8>,
    /// Outdegree ledger, indexed by dense node index.
    degree: Vec<u32>,
    /// Streaming live-outdegree histogram, maintained at store/delete
    /// time alongside `degree` (shards report signed deltas, merged
    /// commutatively).
    degree_hist: DegreeStats,
    /// Per-node event counters, indexed by dense node index.
    node_stats: Vec<NodeStats>,
    /// Dense index → node id (grows on join, never shrinks).
    dense_id: Vec<NodeId>,
    /// Raw id → dense index (`DEAD` for departed or never-assigned ids).
    index: Vec<u32>,
    /// Number of live nodes (the dense arena also carries departed ones).
    live_count: usize,
    /// Per-sender loss channels, indexed by dense node index. Stateful
    /// models ([`GilbertElliott`](crate::GilbertElliott)) advance
    /// per-sender, which keeps loss decisions shard-independent.
    loss: Vec<L>,
    /// Prototype channel cloned for nodes that join later.
    loss_proto: L,
    delay: DelayModel,
    /// Rounds executed so far (drives RNG stream derivation).
    round: u64,
    /// Global action counter (one per live node per round), stamped on
    /// reports for parity with the sequential engines.
    step_counter: u64,
    /// Delivery ring: bucket `t % ring.len()` holds the messages due at
    /// round `t`. A single bucket in immediate mode.
    ring: Vec<Vec<(NodeId, B::Msg)>>,
    /// Messages currently in flight across all ring buckets.
    in_flight_count: usize,
    seed: u64,
    /// Control-plane RNG (join_via shuffles) — deterministic and separate
    /// from the per-node streams.
    ctl_rng: StdRng,
    stats: SimStats,
    next_id: u64,
    threads: usize,
    /// Shard balance of the last executed round: max shard live count over
    /// the perfectly balanced share (1.0 = balanced).
    last_imbalance: f64,
    /// Registered step-event observers (not carried across clones).
    subscribers: Vec<Box<dyn StepSubscriber<B::Msg>>>,
    /// Per-phase span histograms, when a profiler is attached.
    profile: Option<ParProfile>,
}

impl<L: Clone, B: ProtocolBehavior> Clone for ParSimulation<L, B> {
    /// Clones the simulation state. As with the other engines, subscribers
    /// are **not** cloned and an attached profiler is shared.
    fn clone(&self) -> Self {
        Self {
            config: self.config,
            s: self.s,
            behavior: self.behavior.clone(),
            slot_ids: self.slot_ids.clone(),
            slot_flags: self.slot_flags.clone(),
            degree: self.degree.clone(),
            degree_hist: self.degree_hist.clone(),
            node_stats: self.node_stats.clone(),
            dense_id: self.dense_id.clone(),
            index: self.index.clone(),
            live_count: self.live_count,
            loss: self.loss.clone(),
            loss_proto: self.loss_proto.clone(),
            delay: self.delay,
            round: self.round,
            step_counter: self.step_counter,
            ring: self.ring.clone(),
            in_flight_count: self.in_flight_count,
            seed: self.seed,
            ctl_rng: self.ctl_rng.clone(),
            stats: self.stats,
            next_id: self.next_id,
            threads: self.threads,
            last_imbalance: self.last_imbalance,
            subscribers: Vec::new(),
            profile: self.profile.clone(),
        }
    }
}

impl<L: fmt::Debug, B: ProtocolBehavior> fmt::Debug for ParSimulation<L, B> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ParSimulation")
            .field("config", &self.config)
            .field("live", &self.live_count)
            .field("loss", &self.loss_proto)
            .field("delay", &self.delay)
            .field("round", &self.round)
            .field("threads", &self.threads)
            .field("in_flight", &self.in_flight_count)
            .field("stats", &self.stats)
            .field("subscribers", &self.subscribers.len())
            .field("profiled", &self.profile.is_some())
            .finish_non_exhaustive()
    }
}

impl<L: FaultModel + Clone + Send> ParSimulation<L, SfBehavior> {
    /// Creates a sharded S&F simulation over the given nodes. `threads` is
    /// the number of contiguous arena shards processed concurrently; it
    /// affects wall-clock only, never results.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is empty, contains duplicate ids, mixes
    /// configurations, uses ids at or beyond [`ARENA_ID_LIMIT`], or if
    /// `threads` is zero.
    #[must_use]
    pub fn new(
        nodes: impl IntoIterator<Item = SfNode>,
        loss: L,
        seed: u64,
        threads: usize,
    ) -> Self {
        let mut nodes = nodes.into_iter();
        let hint = nodes.size_hint().0;
        let first = nodes.next();
        assert!(first.is_some(), "simulation needs at least one node");
        let first = first.expect("checked above");
        let config = first.config();
        let s = config.view_size();
        let mut dense_id: Vec<NodeId> = Vec::with_capacity(hint);
        let mut slot_ids = Vec::with_capacity(hint.saturating_mul(s));
        let mut slot_flags = Vec::with_capacity(hint.saturating_mul(s));
        let mut degree = Vec::with_capacity(hint);
        let mut node_stats = Vec::with_capacity(hint);
        // One streaming pass: at large `n` the caller can feed
        // `topology::circulant_iter` and construction never materializes
        // the boxed node set — the peak footprint is the arena itself.
        for node in std::iter::once(first).chain(nodes) {
            assert!(node.config() == config, "all nodes must share one configuration");
            let base = slot_ids.len();
            slot_ids.resize(base + s, EMPTY);
            slot_flags.resize(base + s, 0u8);
            let mut deg = 0u32;
            for (off, slot) in node.view().slots().enumerate() {
                if let Some(entry) = slot {
                    slot_ids[base + off] = slot_word(entry.id);
                    slot_flags[base + off] = if entry.dependent { FLAG_DEPENDENT } else { 0 };
                    deg += 1;
                }
            }
            degree.push(deg);
            node_stats.push(*node.stats());
            dense_id.push(node.id());
        }
        Self::from_arena(
            SfBehavior, config, dense_id, slot_ids, slot_flags, degree, node_stats, loss, seed,
            threads,
        )
    }

    /// Creates a sharded simulation with a message-delay model. Under
    /// [`DelayModel::UniformSteps`] the bound `max` is interpreted in
    /// **rounds** (the engine's time unit): each message arrives
    /// `1..=max` rounds after the round that sent it.
    ///
    /// # Panics
    ///
    /// Panics on the same conditions as [`new`](Self::new), or when the
    /// delay bound is zero.
    #[must_use]
    pub fn with_delay(
        nodes: impl IntoIterator<Item = SfNode>,
        loss: L,
        delay: DelayModel,
        seed: u64,
        threads: usize,
    ) -> Self {
        Self::new(nodes, loss, seed, threads).delayed(delay)
    }
}

impl<L: FaultModel + Clone + Send, B: ProtocolBehavior> ParSimulation<L, B> {
    /// Creates a sharded simulation of an arbitrary [`ProtocolBehavior`]
    /// from explicit initial views (each `(node, neighbors)` pair fills the
    /// node's slots in order, untagged) — the zoo counterpart of
    /// [`new`](Self::new), mirroring
    /// [`FlatSimulation::from_views`](crate::FlatSimulation::from_views).
    ///
    /// # Panics
    ///
    /// Panics if `views` is empty, contains duplicate or reserved ids, a
    /// view exceeds the configured view size, or `threads` is zero.
    #[must_use]
    pub fn from_views(
        behavior: B,
        config: SfConfig,
        views: Vec<(NodeId, Vec<NodeId>)>,
        loss: L,
        seed: u64,
        threads: usize,
    ) -> Self {
        assert!(!views.is_empty(), "simulation needs at least one node");
        let s = config.view_size();
        let n = views.len();
        let dense_id: Vec<NodeId> = views.iter().map(|(id, _)| *id).collect();
        let mut slot_ids = vec![EMPTY; n * s];
        let mut degree = vec![0u32; n];
        for (k, (_, view)) in views.iter().enumerate() {
            assert!(view.len() <= s, "initial view exceeds the view size");
            let base = k * s;
            for (off, entry) in view.iter().enumerate() {
                slot_ids[base + off] = slot_word(*entry);
            }
            degree[k] = u32::try_from(view.len()).expect("view size exceeds u32");
        }
        let n = dense_id.len();
        Self::from_arena(
            behavior,
            config,
            dense_id,
            slot_ids,
            vec![0u8; n * s],
            degree,
            vec![NodeStats::new(); n],
            loss,
            seed,
            threads,
        )
    }

    /// The shared constructor core: dense ledgers, id index, loss
    /// channels. The public constructors hand over the fully built slot
    /// arena (no throwaway zeroed copies — at `n = 10⁷` a discarded
    /// `n·s` slot array would cost ~640 MB of transient peak RSS).
    #[allow(clippy::too_many_arguments)]
    fn from_arena(
        behavior: B,
        config: SfConfig,
        dense_id: Vec<NodeId>,
        slot_ids: Vec<u32>,
        slot_flags: Vec<u8>,
        degree: Vec<u32>,
        node_stats: Vec<NodeStats>,
        loss: L,
        seed: u64,
        threads: usize,
    ) -> Self {
        assert!(threads > 0, "thread count must be positive");
        let s = config.view_size();
        let n = dense_id.len();
        let next_id = dense_id.iter().map(|id| id.as_u64() + 1).max().unwrap_or(0);
        let max_raw = dense_id.iter().map(|id| id.index()).max().unwrap_or(0);
        assert!(
            (max_raw as u64) < ARENA_ID_LIMIT,
            "node id {max_raw} exceeds the u32 arena id space (ids must stay below u32::MAX)"
        );
        let mut index = vec![DEAD; max_raw + 1];
        for (k, id) in dense_id.iter().enumerate() {
            assert!(index[id.index()] == DEAD, "duplicate node ids");
            index[id.index()] = u32::try_from(k).expect("node count exceeds the dense index space");
        }
        debug_assert_eq!(slot_ids.len(), n * s);
        debug_assert_eq!(slot_flags.len(), n * s);
        debug_assert_eq!(degree.len(), n);
        debug_assert_eq!(node_stats.len(), n);
        Self {
            config,
            s,
            behavior,
            degree_hist: DegreeStats::rebuild(s, degree.iter().copied()),
            slot_ids,
            slot_flags,
            degree,
            node_stats,
            dense_id,
            index,
            live_count: n,
            loss: vec![loss.clone(); n],
            loss_proto: loss,
            delay: DelayModel::Immediate,
            round: 0,
            step_counter: 0,
            ring: vec![Vec::new()],
            in_flight_count: 0,
            seed,
            ctl_rng: StdRng::seed_from_u64(control_seed(seed)),
            stats: SimStats::default(),
            next_id,
            threads,
            last_imbalance: 1.0,
            subscribers: Vec::new(),
            profile: None,
        }
    }

    /// Installs a message-delay model on a freshly built simulation
    /// (builder-style, shared by all constructors). Under
    /// [`DelayModel::UniformSteps`] the bound is interpreted in rounds.
    ///
    /// # Panics
    ///
    /// Panics when called after the first round, or when the delay bound
    /// is zero.
    #[must_use]
    pub fn delayed(mut self, delay: DelayModel) -> Self {
        assert!(self.round == 0, "the delay model must be installed before the first round");
        if let DelayModel::UniformSteps { max } = delay {
            assert!(max > 0, "delay bound must be positive");
            let buckets = usize::try_from(max + 1).expect("delay bound exceeds address space");
            self.ring = vec![Vec::new(); buckets];
        }
        self.delay = delay;
        self
    }

    /// Registers a step-event observer. The report stream is itself
    /// deterministic and thread-count-independent: action reports arrive
    /// in dense arena order, delivery reports in sorted bucket order,
    /// reply reports in wave order.
    pub fn subscribe(&mut self, subscriber: Box<dyn StepSubscriber<B::Msg>>) {
        self.subscribers.push(subscriber);
    }

    /// Number of registered step-event observers.
    #[must_use]
    pub fn subscriber_count(&self) -> usize {
        self.subscribers.len()
    }

    /// Attaches per-phase profiling: `sim.profile.par.{action,merge,deliver}_ns`
    /// span histograms (one sample per round each) and the
    /// `sim.par.shard_imbalance` gauge (max shard live count over the
    /// balanced share; 1.0 = perfectly balanced).
    pub fn attach_profiler(&mut self, registry: &MetricsRegistry) {
        self.profile = Some(ParProfile {
            action: registry.histogram("sim.profile.par.action_ns", duration_buckets()),
            merge: registry.histogram("sim.profile.par.merge_ns", duration_buckets()),
            deliver: registry.histogram("sim.profile.par.deliver_ns", duration_buckets()),
            imbalance: registry.gauge("sim.par.shard_imbalance"),
        });
    }

    /// Reports `report` to every subscriber; out of line so the
    /// subscriber-free path stays compact.
    #[cold]
    #[inline(never)]
    fn notify(&mut self, report: &StepReport<B::Msg>) {
        let mut subs = std::mem::take(&mut self.subscribers);
        for sub in &mut subs {
            sub.on_step(report);
        }
        subs.append(&mut self.subscribers);
        self.subscribers = subs;
    }

    /// The shared protocol configuration.
    #[must_use]
    pub fn config(&self) -> SfConfig {
        self.config
    }

    /// The behavior executing over the arena.
    #[must_use]
    pub fn behavior(&self) -> &B {
        &self.behavior
    }

    /// The configured shard/thread count.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Reconfigures the shard/thread count. Results are unaffected — this
    /// trades wall-clock only, which is exactly the determinism contract
    /// the `par_determinism` golden tests pin.
    pub fn set_threads(&mut self, threads: usize) {
        assert!(threads > 0, "thread count must be positive");
        self.threads = threads;
    }

    /// Number of live nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.live_count
    }

    /// Whether no node is live.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.live_count == 0
    }

    /// The ids of the live nodes, in dense arena order (the engine's
    /// deterministic iteration order).
    #[must_use]
    pub fn live_ids(&self) -> Vec<NodeId> {
        self.dense_id
            .iter()
            .enumerate()
            .filter(|&(k, id)| self.index[id.index()] == k as u32)
            .map(|(_, &id)| id)
            .collect()
    }

    /// Number of messages currently in flight (0 after any complete round
    /// under [`DelayModel::Immediate`]).
    #[must_use]
    pub fn in_flight(&self) -> usize {
        self.in_flight_count
    }

    /// Rounds executed so far.
    #[must_use]
    pub fn rounds_run(&self) -> u64 {
        self.round
    }

    /// The prototype fault channel, for measurement-time inspection
    /// (per-sender clones may have diverged for stateful models).
    #[must_use]
    pub fn fault(&self) -> &L {
        &self.loss_proto
    }

    /// Applies `f` to the prototype channel **and** every per-sender
    /// clone, so a mid-run retarget (e.g. aiming a
    /// [`VictimLoss`](crate::VictimLoss) at the current hubs) reaches all
    /// senders — the par counterpart of
    /// [`Simulation::update_fault`](crate::Simulation::update_fault).
    pub fn update_fault(&mut self, mut f: impl FnMut(&mut L)) {
        f(&mut self.loss_proto);
        for channel in &mut self.loss {
            f(channel);
        }
    }

    /// Accumulated system-wide counters.
    #[must_use]
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// Shard balance of the most recent round: the largest shard's live
    /// count divided by the perfectly balanced share (1.0 = balanced; 1.0
    /// before any round has run).
    #[must_use]
    pub fn shard_imbalance(&self) -> f64 {
        self.last_imbalance
    }

    /// Resets system-wide and per-node counters (e.g. after burn-in).
    pub fn reset_stats(&mut self) {
        self.stats = SimStats::default();
        let live: Vec<usize> = self.live_dense().collect();
        for k in live {
            self.node_stats[k].reset();
        }
    }

    /// Sum of all live nodes' per-node counters.
    #[must_use]
    pub fn aggregate_node_stats(&self) -> NodeStats {
        let mut total = NodeStats::new();
        for k in self.live_dense() {
            total.merge(&self.node_stats[k]);
        }
        total
    }

    /// Dense indices of the live nodes, in arena order.
    fn live_dense(&self) -> impl Iterator<Item = usize> + '_ {
        self.dense_id
            .iter()
            .enumerate()
            .filter(|&(k, id)| self.index[id.index()] == k as u32)
            .map(|(k, _)| k)
    }

    /// The dense arena index of a live node, or `None` when departed.
    #[inline]
    fn dense_of(&self, id: NodeId) -> Option<usize> {
        match self.index.get(id.index()) {
            Some(&k) if k != DEAD => Some(k as usize),
            _ => None,
        }
    }

    /// Splits the engine into the disjoint parts a sequential behavior
    /// callback needs: node `k`'s slot window and the behavior.
    #[inline]
    fn parts(&mut self, k: usize) -> (SlotView<'_>, &B) {
        let base = k * self.s;
        let view = SlotView {
            id: self.dense_id[k],
            ids: &mut self.slot_ids[base..base + self.s],
            flags: &mut self.slot_flags[base..base + self.s],
            degree: &mut self.degree[k],
            stats: &mut self.node_stats[k],
        };
        (view, &self.behavior)
    }

    /// A live node's outdegree, or `None` when departed.
    #[must_use]
    pub fn out_degree_of(&self, id: NodeId) -> Option<usize> {
        self.dense_of(id).map(|k| self.degree[k] as usize)
    }

    /// Reconstitutes a live node's [`LocalView`] from the arena (slot
    /// positions, ids, and dependence tags all preserved), or `None` when
    /// departed. Intended for snapshots and tests, not hot paths.
    #[must_use]
    pub fn node_view(&self, id: NodeId) -> Option<LocalView> {
        let k = self.dense_of(id)?;
        Some(self.view_at(k))
    }

    fn view_at(&self, k: usize) -> LocalView {
        let base = k * self.s;
        LocalView::from_slots(
            (base..base + self.s)
                .map(|i| {
                    (self.slot_ids[i] != EMPTY).then(|| Entry {
                        id: NodeId::new(u64::from(self.slot_ids[i])),
                        dependent: self.slot_flags[i] & FLAG_DEPENDENT != 0,
                    })
                })
                .collect(),
        )
    }

    /// Reconstitutes every live node as an [`SfNode`], in dense arena
    /// order. Views carry over exactly; per-node counters are zeroed
    /// (read [`aggregate_node_stats`](Self::aggregate_node_stats) from
    /// the engine instead).
    #[must_use]
    pub fn to_nodes(&self) -> Vec<SfNode> {
        self.live_dense()
            .map(|k| SfNode::from_view(self.dense_id[k], self.config, self.view_at(k)))
            .collect()
    }

    /// Executes one three-phase round: every live node initiates exactly
    /// once (parallel, per-node RNG streams), sends are merged
    /// deterministically into the in-flight ring, and the messages due
    /// this round are delivered (parallel).
    pub fn round(&mut self) {
        let arena = self.dense_id.len();
        let threads = self.threads.min(arena).max(1);
        let shard_len = arena.div_ceil(threads);
        let round = self.round;
        let observed = !self.subscribers.is_empty();

        // --- Phase 1: parallel per-shard actions. ---
        let outs = {
            let _span = self.profile.as_ref().map(|p| SpanTimer::start(&p.action));
            let ctx = ActionCtx {
                s: self.s,
                config: self.config,
                seed: self.seed,
                round,
                delay: self.delay,
                dense_id: &self.dense_id,
                index: &self.index,
                observed,
            };
            let behavior = &self.behavior;
            let shards = self
                .slot_ids
                .chunks_mut(shard_len * self.s)
                .zip(self.slot_flags.chunks_mut(shard_len * self.s))
                .zip(self.degree.chunks_mut(shard_len))
                .zip(self.node_stats.chunks_mut(shard_len))
                .zip(self.loss.chunks_mut(shard_len));
            if threads == 1 {
                shards
                    .enumerate()
                    .map(|(j, ((((slots, flags), degs), nstats), losses))| {
                        run_action_shard(
                            ctx,
                            behavior,
                            j * shard_len,
                            slots,
                            flags,
                            degs,
                            nstats,
                            losses,
                        )
                    })
                    .collect::<Vec<_>>()
            } else {
                std::thread::scope(|scope| {
                    let handles: Vec<_> = shards
                        .enumerate()
                        .map(|(j, ((((slots, flags), degs), nstats), losses))| {
                            scope.spawn(move || {
                                run_action_shard(
                                    ctx,
                                    behavior,
                                    j * shard_len,
                                    slots,
                                    flags,
                                    degs,
                                    nstats,
                                    losses,
                                )
                            })
                        })
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| h.join().expect("action shard worker panicked"))
                        .collect::<Vec<_>>()
                })
            }
        };

        // Shard balance, from the live counts the workers gathered anyway.
        let live_total: u64 = outs.iter().map(|o| o.live).sum();
        let max_shard = outs.iter().map(|o| o.live).max().unwrap_or(0);
        self.last_imbalance = if live_total == 0 {
            1.0
        } else {
            max_shard as f64 * outs.len() as f64 / live_total as f64
        };
        if let Some(profile) = &self.profile {
            profile.imbalance.set(self.last_imbalance);
        }

        // --- Phase 2: deterministic merge, in shard (= dense) order. ---
        let mut action_reports: Vec<StepReport<B::Msg>> = Vec::new();
        {
            let _span = self.profile.as_ref().map(|p| SpanTimer::start(&p.merge));
            let ring_len = self.ring.len() as u64;
            for out in outs {
                merge_stats(&mut self.stats, &out.stats);
                self.degree_hist.apply_deltas(&out.hist);
                for (deliver_round, to, message) in out.sends {
                    let bucket = (deliver_round % ring_len) as usize;
                    self.ring[bucket].push((to, message));
                    self.in_flight_count += 1;
                }
                if observed {
                    action_reports.extend(out.reports);
                }
            }
        }
        if observed {
            let mut step = self.step_counter;
            for report in &mut action_reports {
                step += 1;
                report.step = step;
            }
            for report in &action_reports {
                self.notify(report);
            }
        }
        self.step_counter += live_total;
        let end_step = self.step_counter;

        // --- Phase 3: deliver the bucket due this round. ---
        {
            let _span = self.profile.as_ref().map(|p| SpanTimer::start(&p.deliver));
            self.deliver_bucket(round, shard_len, threads, end_step);
        }
        self.round += 1;
    }

    /// Drains the ring bucket due at time `at`: stably orders it by
    /// `(deliver_time, sender, slot)` (see the module docs), counts dead
    /// letters sequentially, applies the surviving receives in parallel
    /// per receiver shard, then routes any replies sequentially in waves.
    fn deliver_bucket(&mut self, at: u64, shard_len: usize, threads: usize, end_step: u64) {
        let bucket = (at % self.ring.len() as u64) as usize;
        if self.ring[bucket].is_empty() {
            return;
        }
        let mut batch = std::mem::take(&mut self.ring[bucket]);
        self.in_flight_count -= batch.len();
        // One bucket holds exactly one delivery time, and a sender emits at
        // most one message (one slot) per round, so a stable sort by sender
        // realizes the (deliver_time, sender, slot) order with send-round
        // ties resolved by insertion order — which the merge phase made
        // thread-count-independent.
        batch.sort_by_key(|(_, message)| B::sender(message));
        let observed = !self.subscribers.is_empty();

        // Route to receiver shards; count dead letters in bucket order.
        let shard_count = self.dense_id.len().div_ceil(shard_len);
        let mut per_shard: Vec<Vec<RoutedMessage<B::Msg>>> = vec![Vec::new(); shard_count];
        let mut reports: Vec<(usize, StepReport<B::Msg>)> = Vec::new();
        for (pos, &(to, message)) in batch.iter().enumerate() {
            match self.dense_of(to) {
                None => {
                    self.stats.dead_letters += 1;
                    if observed {
                        reports.push((
                            pos,
                            StepReport {
                                initiator: B::sender(&message),
                                event: StepEvent::DeadLetter {
                                    to,
                                    message,
                                    duplicated: B::duplicated(&message),
                                },
                                phase: StepPhase::Delivery,
                                step: end_step,
                            },
                        ));
                    }
                }
                Some(k) => {
                    per_shard[k / shard_len].push(RoutedMessage { pos, dense: k, to, message })
                }
            }
        }

        let ctx =
            DeliveryCtx { s: self.s, config: self.config, seed: self.seed, at, end_step, observed };
        let behavior = &self.behavior;
        let shards = self
            .slot_ids
            .chunks_mut(shard_len * self.s)
            .zip(self.slot_flags.chunks_mut(shard_len * self.s))
            .zip(self.degree.chunks_mut(shard_len))
            .zip(self.node_stats.chunks_mut(shard_len))
            .zip(per_shard.iter());
        let outs = if threads == 1 {
            shards
                .enumerate()
                .map(|(j, ((((slots, flags), degs), nstats), items))| {
                    run_delivery_shard(
                        ctx,
                        behavior,
                        j * shard_len,
                        slots,
                        flags,
                        degs,
                        nstats,
                        items,
                    )
                })
                .collect::<Vec<_>>()
        } else {
            std::thread::scope(|scope| {
                let handles: Vec<_> = shards
                    .enumerate()
                    .map(|(j, ((((slots, flags), degs), nstats), items))| {
                        scope.spawn(move || {
                            run_delivery_shard(
                                ctx,
                                behavior,
                                j * shard_len,
                                slots,
                                flags,
                                degs,
                                nstats,
                                items,
                            )
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("delivery shard worker panicked"))
                    .collect::<Vec<_>>()
            })
        };
        let mut replies: Vec<(usize, NodeId, B::Msg)> = Vec::new();
        for out in outs {
            self.stats.stored += out.stored;
            self.stats.deleted += out.deleted;
            self.degree_hist.apply_deltas(&out.hist);
            if observed {
                reports.extend(out.reports);
            }
            replies.extend(out.replies);
        }
        if observed {
            reports.sort_by_key(|&(pos, _)| pos);
            for (_, report) in &reports {
                let report = *report;
                self.notify(&report);
            }
        }
        batch.clear();
        // Restore the allocation before routing replies: delayed replies
        // land `1..=max` rounds later, never back in this bucket (the ring
        // has `max + 1` buckets).
        self.ring[bucket] = batch;
        if !replies.is_empty() {
            replies.sort_by_key(|&(pos, _, _)| pos);
            self.process_reply_waves(replies, at, end_step);
        }
    }

    /// Routes the replies a drained bucket produced, sequentially and in
    /// waves: wave `w` holds the replies triggered by wave `w − 1` (wave 0
    /// being the parallel bucket delivery), each hop drawing loss and
    /// placement from its private `(seed, at, wave, pos)` stream — so the
    /// whole cascade is thread-count-independent. Chains stop after
    /// [`MAX_REPLY_CHAIN`] waves (excess replies dropped uncounted, like
    /// the flat engine's cap). Out of line — S&F never replies.
    #[cold]
    #[inline(never)]
    fn process_reply_waves(
        &mut self,
        mut pending: Vec<(usize, NodeId, B::Msg)>,
        at: u64,
        end_step: u64,
    ) {
        let observed = !self.subscribers.is_empty();
        let mut wave: u64 = 0;
        while !pending.is_empty() {
            wave += 1;
            if wave > MAX_REPLY_CHAIN as u64 {
                break;
            }
            let mut next: Vec<(usize, NodeId, B::Msg)> = Vec::new();
            for (pos, to, message) in std::mem::take(&mut pending) {
                let from = B::sender(&message);
                let duplicated = B::duplicated(&message);
                self.stats.sent += 1;
                self.stats.replies += 1;
                if duplicated {
                    self.stats.duplications += 1;
                }
                let mut rng = StdRng::seed_from_u64(reply_seed(self.seed, at, wave, pos as u64));
                let fctx = FaultCtx { from, to, round: self.round };
                let dropped = match self.dense_of(from) {
                    Some(k) => self.loss[k].drops(fctx, &mut rng),
                    // The replier departed between hops (possible only
                    // through an exotic behavior); fall back to the
                    // prototype channel.
                    None => self.loss_proto.drops(fctx, &mut rng),
                };
                let event = if dropped {
                    self.stats.lost += 1;
                    StepEvent::Lost { to, message, duplicated }
                } else {
                    match self.delay {
                        DelayModel::Immediate => match self.dense_of(to) {
                            None => {
                                self.stats.dead_letters += 1;
                                StepEvent::DeadLetter { to, message, duplicated }
                            }
                            Some(k) => {
                                let config = self.config;
                                let deg_before = self.degree[k];
                                let receipt = {
                                    let (view, behavior) = self.parts(k);
                                    behavior.receive(config, view, message, &mut rng)
                                };
                                self.degree_hist.shift(deg_before, self.degree[k]);
                                if receipt.deleted {
                                    self.stats.deleted += 1;
                                } else {
                                    self.stats.stored += 1;
                                }
                                if let Some((reply_to, reply_msg)) = receipt.reply {
                                    next.push((pos, reply_to, reply_msg));
                                }
                                StepEvent::Delivered {
                                    to,
                                    message,
                                    duplicated,
                                    deleted: receipt.deleted,
                                }
                            }
                        },
                        DelayModel::UniformSteps { max } => {
                            let deliver_round = at + rng.gen_range(1..=max);
                            let bucket = (deliver_round % self.ring.len() as u64) as usize;
                            self.ring[bucket].push((to, message));
                            self.in_flight_count += 1;
                            StepEvent::InFlight {
                                to,
                                message,
                                duplicated,
                                deliver_at: deliver_round,
                            }
                        }
                    }
                };
                if observed {
                    let report = StepReport {
                        initiator: from,
                        event,
                        phase: StepPhase::Delivery,
                        step: end_step,
                    };
                    self.notify(&report);
                }
            }
            pending = next;
        }
    }

    /// Delivers every message still in flight, draining buckets in
    /// increasing delivery-time order (without executing further actions)
    /// until the ring is empty — replies scheduled mid-drain extend the
    /// sweep.
    pub fn settle(&mut self) {
        if self.in_flight_count == 0 {
            return;
        }
        let arena = self.dense_id.len();
        let threads = self.threads.min(arena).max(1);
        let shard_len = arena.div_ceil(threads);
        let end_step = self.step_counter;
        // Pending deliveries all lie in [round, round + ring.len()): sends
        // from round r target r..=r+max and the last executed round was
        // round − 1. Draining in increasing time order keeps that window
        // invariant even when replies push messages further out.
        let mut at = self.round;
        while self.in_flight_count > 0 {
            self.deliver_bucket(at, shard_len, threads, end_step);
            at += 1;
        }
    }

    /// Runs `rounds` three-phase rounds.
    pub fn run_rounds(&mut self, rounds: usize) {
        for _ in 0..rounds {
            self.round();
        }
    }

    /// Runs one measurement replicate: burn-in, stats reset, measurement —
    /// the parallel counterpart of
    /// [`Simulation::run_replicate`](crate::Simulation::run_replicate).
    #[must_use]
    pub fn run_replicate(mut self, burn_in: usize, measure: usize) -> Self {
        self.run_rounds(burn_in);
        self.reset_stats();
        self.run_rounds(measure);
        self
    }

    /// Adds a new node bootstrapped with ids copied from a random
    /// position in `sponsor`'s view (the behavior's
    /// [`join_seed_size`](ProtocolBehavior::join_seed_size) many; `d_L`
    /// for S&F). The shuffle draws from the engine's dedicated
    /// control-plane RNG stream, so churn schedules stay deterministic and
    /// thread-count-independent.
    ///
    /// # Errors
    ///
    /// Returns [`JoinError::TooFewIds`] if the sponsor's view holds fewer
    /// visible ids than the seed size.
    ///
    /// # Panics
    ///
    /// Panics if `sponsor` is not live.
    pub fn join_via(&mut self, sponsor: NodeId) -> Result<NodeId, JoinError> {
        let want = self.behavior.join_seed_size(self.config);
        let k = self.dense_of(sponsor).expect("sponsor must be live");
        let base = k * self.s;
        let mut pool: Vec<NodeId> = (0..self.s)
            .filter(|&off| {
                self.slot_ids[base + off] != EMPTY && B::slot_visible(self.slot_flags[base + off])
            })
            .map(|off| NodeId::new(u64::from(self.slot_ids[base + off])))
            .collect();
        if pool.len() < want {
            return Err(JoinError::TooFewIds { supplied: pool.len(), d_l: want });
        }
        pool.shuffle(&mut self.ctl_rng);
        let bootstrap: Vec<NodeId> = pool.into_iter().take(want).collect();
        self.join_with(&bootstrap)
    }

    /// Adds a new node bootstrapped with the given ids (tagged dependent,
    /// filled in slot order — exactly like [`SfNode::with_view`] for the
    /// S&F behavior; other behaviors validate with their own
    /// [`validate_bootstrap`](ProtocolBehavior::validate_bootstrap)).
    ///
    /// # Errors
    ///
    /// Returns the [`JoinError`] the behavior's bootstrap validation
    /// produces, or [`JoinError::IdSpaceExhausted`] when the id allocator
    /// has reached the arena's `u32` id limit.
    pub fn join_with(&mut self, bootstrap: &[NodeId]) -> Result<NodeId, JoinError> {
        self.behavior.validate_bootstrap(self.config, bootstrap.len())?;
        if self.next_id >= ARENA_ID_LIMIT {
            return Err(JoinError::IdSpaceExhausted { next: self.next_id, limit: ARENA_ID_LIMIT });
        }
        let id = NodeId::new(self.next_id);
        self.next_id += 1;
        let k = self.dense_id.len();
        let dense = u32::try_from(k).expect("node count exceeds the dense index space");
        assert!(dense != DEAD, "dense index space exhausted");
        let base = self.slot_ids.len();
        self.slot_ids.resize(base + self.s, EMPTY);
        self.slot_flags.resize(base + self.s, 0);
        for (off, b) in bootstrap.iter().enumerate() {
            self.slot_ids[base + off] = slot_word(*b);
            self.slot_flags[base + off] = FLAG_DEPENDENT;
        }
        let deg = u32::try_from(bootstrap.len()).expect("bootstrap exceeds u32");
        self.degree.push(deg);
        self.degree_hist.add(deg);
        self.node_stats.push(NodeStats::new());
        self.dense_id.push(id);
        self.loss.push(self.loss_proto.clone());
        let raw = id.index();
        if raw >= self.index.len() {
            self.index.resize(raw + 1, DEAD);
        }
        self.index[raw] = dense;
        self.live_count += 1;
        Ok(id)
    }

    /// Removes a node (leave/crash). Returns the departed node rebuilt
    /// from the arena with zeroed per-node counters, like
    /// [`FlatSimulation::leave`](crate::FlatSimulation::leave).
    pub fn leave(&mut self, id: NodeId) -> Option<SfNode> {
        let k = self.dense_of(id)?;
        let node = SfNode::from_view(id, self.config, self.view_at(k));
        self.index[id.index()] = DEAD;
        self.degree_hist.remove(self.degree[k]);
        self.live_count -= 1;
        Some(node)
    }

    /// Total multiplicity of `id` across all live, behavior-visible slots.
    /// Ids at or beyond [`ARENA_ID_LIMIT`] trivially count zero (the
    /// widening boundary never aliases them onto arena words).
    ///
    /// Windows are scanned two slots per u64 word; the per-slot
    /// visibility check only runs on the rare windows with a raw match.
    #[must_use]
    pub fn count_id_instances(&self, id: NodeId) -> usize {
        if id.as_u64() >= ARENA_ID_LIMIT {
            return 0;
        }
        let needle = slot_word(id);
        self.live_dense()
            .map(|k| {
                let base = k * self.s;
                let window = &self.slot_ids[base..base + self.s];
                let raw = crate::scan::count_matches(window, needle);
                if raw == 0 {
                    return 0;
                }
                window
                    .iter()
                    .enumerate()
                    .filter(|&(off, &slot)| {
                        slot == needle && B::slot_visible(self.slot_flags[base + off])
                    })
                    .count()
            })
            .sum()
    }

    /// Streaming degree statistics — the live outdegree histogram,
    /// maintained incrementally at store/delete time (`O(s)` snapshot, no
    /// arena scan; shards report signed per-bucket deltas, merged
    /// commutatively, so the histogram is thread-count-independent like
    /// everything else).
    #[must_use]
    pub fn degree_stats(&self) -> &DegreeStats {
        &self.degree_hist
    }

    /// Snapshots the membership graph (dense arena order, behavior-visible
    /// slots only).
    #[must_use]
    pub fn graph(&self) -> MembershipGraph {
        MembershipGraph::from_views(self.live_dense().map(|k| {
            let base = k * self.s;
            let targets: Vec<NodeId> = (0..self.s)
                .filter(|&off| {
                    self.slot_ids[base + off] != EMPTY
                        && B::slot_visible(self.slot_flags[base + off])
                })
                .map(|off| NodeId::new(u64::from(self.slot_ids[base + off])))
                .collect();
            (self.dense_id[k], targets)
        }))
    }

    /// Measures spatial dependence across all live views (Property M4).
    /// Reconstitutes the nodes first, so this is a measurement-time
    /// convenience, not a hot path.
    #[must_use]
    pub fn dependence(&self) -> DependenceReport {
        let nodes = self.to_nodes();
        DependenceReport::measure(nodes.iter())
    }
}

impl<L: FaultModel + Clone + Send, B: ProtocolBehavior> crate::traits::Engine
    for ParSimulation<L, B>
{
    type Msg = B::Msg;
    type Fault = L;

    fn len(&self) -> usize {
        Self::len(self)
    }

    fn live_ids(&self) -> Vec<NodeId> {
        Self::live_ids(self)
    }

    fn config(&self) -> SfConfig {
        Self::config(self)
    }

    fn stats(&self) -> SimStats {
        *Self::stats(self)
    }

    fn reset_stats(&mut self) {
        Self::reset_stats(self);
    }

    fn aggregate_node_stats(&self) -> NodeStats {
        Self::aggregate_node_stats(self)
    }

    fn round(&mut self) {
        Self::round(self);
    }

    fn rounds_run(&self) -> u64 {
        Self::rounds_run(self)
    }

    fn in_flight(&self) -> usize {
        Self::in_flight(self)
    }

    fn settle(&mut self) {
        Self::settle(self);
    }

    fn join_via(&mut self, sponsor: NodeId) -> Result<NodeId, JoinError> {
        Self::join_via(self, sponsor)
    }

    fn leave(&mut self, id: NodeId) -> bool {
        Self::leave(self, id).is_some()
    }

    fn out_degree_of(&self, id: NodeId) -> Option<usize> {
        Self::out_degree_of(self, id)
    }

    fn count_id_instances(&self, id: NodeId) -> usize {
        Self::count_id_instances(self, id)
    }

    fn degree_stats(&self) -> DegreeStats {
        Self::degree_stats(self).clone()
    }

    fn graph(&self) -> MembershipGraph {
        Self::graph(self)
    }

    fn for_each_live_view(&self, visit: &mut dyn FnMut(NodeId, &[NodeId])) {
        let mut buf: Vec<NodeId> = Vec::with_capacity(self.s);
        for k in self.live_dense() {
            let base = k * self.s;
            buf.clear();
            for off in 0..self.s {
                let id = self.slot_ids[base + off];
                if id != EMPTY && B::slot_visible(self.slot_flags[base + off]) {
                    buf.push(NodeId::new(u64::from(id)));
                }
            }
            visit(self.dense_id[k], &buf);
        }
    }

    fn update_fault(&mut self, f: impl FnMut(&mut L)) {
        Self::update_fault(self, f);
    }

    fn subscribe(&mut self, subscriber: Box<dyn StepSubscriber<B::Msg>>) {
        Self::subscribe(self, subscriber);
    }
}

/// Executes the action phase over one shard: every live node in the dense
/// range `[lo, lo + degs.len())` initiates once with its private
/// per-`(seed, node, round)` RNG stream. All slices are the shard's window
/// into the global arrays; `ctx.dense_id`/`ctx.index` stay global (shared,
/// read-only).
#[allow(clippy::too_many_arguments)]
fn run_action_shard<L: FaultModel, B: ProtocolBehavior>(
    ctx: ActionCtx<'_>,
    behavior: &B,
    lo: usize,
    slots: &mut [u32],
    flags: &mut [u8],
    degs: &mut [u32],
    nstats: &mut [NodeStats],
    losses: &mut [L],
) -> ActionShardOut<B::Msg> {
    let s = ctx.s;
    let mut out = ActionShardOut {
        stats: SimStats::default(),
        live: 0,
        sends: Vec::new(),
        reports: Vec::new(),
        hist: vec![0; s + 1],
    };
    // One contiguous seed fill per shard per round: the FNV-1a stream
    // derivation is a pure hash of `(seed, node id, round)`, so batching
    // it into a single pass changes no draw and keeps the hot loop free
    // of the 25-byte hash setup. Departed and capacity-skipped nodes
    // simply never consume their seed.
    let seeds: Vec<u64> = (0..degs.len())
        .map(|r| action_seed(ctx.seed, ctx.dense_id[lo + r].as_u64(), ctx.round))
        .collect();
    for r in 0..degs.len() {
        let k = lo + r;
        let id = ctx.dense_id[k];
        if ctx.index[id.index()] != k as u32 {
            continue; // departed
        }
        out.live += 1;
        if !losses[r].node_acts(id, ctx.round) {
            // Capacity gate closed: the node's step is skipped before any
            // RNG is seeded, so the skip is thread-count-independent.
            out.stats.skipped += 1;
            if ctx.observed {
                out.reports.push(StepReport {
                    initiator: id,
                    event: StepEvent::Skipped,
                    phase: StepPhase::Action,
                    step: 0,
                });
            }
            continue;
        }
        out.stats.actions += 1;
        let mut rng = StdRng::seed_from_u64(seeds[r]);
        let base = r * s;
        let deg_before = degs[r];
        let view = SlotView {
            id,
            ids: &mut slots[base..base + s],
            flags: &mut flags[base..base + s],
            degree: &mut degs[r],
            stats: &mut nstats[r],
        };
        let event = match behavior.initiate(ctx.config, view, &mut rng) {
            None => {
                out.stats.self_loops += 1;
                StepEvent::SelfLoop
            }
            Some((to, message)) => {
                let duplicated = B::duplicated(&message);
                if duplicated {
                    out.stats.duplications += 1;
                }
                out.stats.sent += 1;
                let fctx = FaultCtx { from: id, to, round: ctx.round };
                if losses[r].drops(fctx, &mut rng) {
                    out.stats.lost += 1;
                    StepEvent::Lost { to, message, duplicated }
                } else {
                    let deliver_round = match ctx.delay {
                        DelayModel::Immediate => ctx.round,
                        DelayModel::UniformSteps { max } => ctx.round + rng.gen_range(1..=max),
                    };
                    out.sends.push((deliver_round, to, message));
                    StepEvent::InFlight { to, message, duplicated, deliver_at: deliver_round }
                }
            }
        };
        let deg_after = degs[r];
        if deg_before != deg_after {
            out.hist[deg_before as usize] -= 1;
            out.hist[deg_after as usize] += 1;
        }
        if ctx.observed {
            // `step` is assigned during the sequential merge, once the
            // preceding shards' live counts are known.
            out.reports.push(StepReport {
                initiator: id,
                event,
                phase: StepPhase::Action,
                step: 0,
            });
        }
    }
    out
}

/// Applies one shard's share of a drained delivery bucket. `items` arrive
/// in bucket order; the per-message RNG is derived from
/// `(seed, deliver_time, sorted bucket position)`. Replies are collected
/// (keyed by bucket position) for the sequential wave router.
#[allow(clippy::too_many_arguments)]
fn run_delivery_shard<B: ProtocolBehavior>(
    ctx: DeliveryCtx,
    behavior: &B,
    lo: usize,
    slots: &mut [u32],
    flags: &mut [u8],
    degs: &mut [u32],
    nstats: &mut [NodeStats],
    items: &[RoutedMessage<B::Msg>],
) -> DeliveryShardOut<B::Msg> {
    let s = ctx.s;
    let mut out = DeliveryShardOut::new(s);
    // One contiguous seed fill per shard per drained bucket (pure hash;
    // see the action-phase counterpart).
    let seeds: Vec<u64> =
        items.iter().map(|m| delivery_seed(ctx.seed, ctx.at, m.pos as u64)).collect();
    for (i, &RoutedMessage { pos, dense, to, message }) in items.iter().enumerate() {
        let r = dense - lo;
        let mut rng = StdRng::seed_from_u64(seeds[i]);
        let base = r * s;
        let deg_before = degs[r];
        let view = SlotView {
            id: to,
            ids: &mut slots[base..base + s],
            flags: &mut flags[base..base + s],
            degree: &mut degs[r],
            stats: &mut nstats[r],
        };
        let receipt = behavior.receive(ctx.config, view, message, &mut rng);
        let deg_after = degs[r];
        if deg_before != deg_after {
            out.hist[deg_before as usize] -= 1;
            out.hist[deg_after as usize] += 1;
        }
        if receipt.deleted {
            out.deleted += 1;
        } else {
            out.stored += 1;
        }
        if let Some((reply_to, reply_msg)) = receipt.reply {
            out.replies.push((pos, reply_to, reply_msg));
        }
        if ctx.observed {
            out.reports.push((
                pos,
                StepReport {
                    initiator: B::sender(&message),
                    event: StepEvent::Delivered {
                        to,
                        message,
                        duplicated: B::duplicated(&message),
                        deleted: receipt.deleted,
                    },
                    phase: StepPhase::Delivery,
                    step: ctx.end_step,
                },
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use crate::engine::Simulation;
    use crate::loss::{GilbertElliott, TargetedLoss, UniformLoss};
    use crate::telemetry::SimRecorder;
    use crate::topology;

    use super::*;

    fn config() -> SfConfig {
        SfConfig::new(12, 4).unwrap()
    }

    fn nodes() -> Vec<SfNode> {
        topology::circulant(24, config(), 4)
    }

    /// Asserts full observable equality of two par engines: stats, live
    /// set, per-node views (slots, ids, dependence tags), aggregates.
    fn assert_par_equal<L: FaultModel + Clone + Send>(a: &ParSimulation<L>, b: &ParSimulation<L>) {
        assert_eq!(a.stats(), b.stats(), "SimStats diverged");
        assert_eq!(a.len(), b.len(), "live count diverged");
        assert_eq!(a.in_flight(), b.in_flight(), "in-flight count diverged");
        assert_eq!(a.live_ids(), b.live_ids(), "live set diverged");
        assert_eq!(
            a.aggregate_node_stats(),
            b.aggregate_node_stats(),
            "aggregate NodeStats diverged"
        );
        for id in a.live_ids() {
            assert_eq!(a.node_view(id), b.node_view(id), "view of {id} diverged");
        }
    }

    #[test]
    fn identical_across_thread_counts_uniform() {
        let build =
            |threads| ParSimulation::new(nodes(), UniformLoss::new(0.1).unwrap(), 42, threads);
        let mut one = build(1);
        one.run_rounds(40);
        // More shards than nodes (64 > 24) must also be byte-identical.
        for threads in [2, 3, 8, 24, 64] {
            let mut other = build(threads);
            other.run_rounds(40);
            assert_par_equal(&one, &other);
        }
        // And round by round, so divergence can't cancel out.
        let mut a = build(1);
        let mut b = build(8);
        for _ in 0..40 {
            a.round();
            b.round();
            assert_par_equal(&a, &b);
        }
    }

    #[test]
    fn identical_across_thread_counts_with_delay_churn_and_settle() {
        let run = |threads: usize| {
            let mut sim = ParSimulation::with_delay(
                nodes(),
                GilbertElliott::new(0.05, 0.2, 0.01, 0.5).unwrap(),
                DelayModel::UniformSteps { max: 6 },
                2009,
                threads,
            );
            sim.run_rounds(10);
            for round in 0..20 {
                let victim = sim.live_ids()[round % sim.len()];
                assert!(sim.leave(victim).is_some());
                let sponsor = sim.live_ids()[0];
                sim.join_via(sponsor).unwrap();
                sim.round();
            }
            sim.settle();
            assert_eq!(sim.in_flight(), 0);
            sim
        };
        let one = run(1);
        for threads in [2, 5, 8] {
            let other = run(threads);
            assert_par_equal(&one, &other);
        }
        assert!(one.stats().dead_letters > 0, "churn should produce dead letters");
    }

    #[test]
    fn report_streams_are_thread_count_independent() {
        use std::sync::{Arc, Mutex};
        let collect = |threads: usize| {
            let log: Arc<Mutex<Vec<StepReport>>> = Arc::new(Mutex::new(Vec::new()));
            let sink = Arc::clone(&log);
            let mut sim = ParSimulation::with_delay(
                nodes(),
                UniformLoss::new(0.05).unwrap(),
                DelayModel::UniformSteps { max: 4 },
                23,
                threads,
            );
            sim.subscribe(Box::new(move |r: &StepReport| sink.lock().unwrap().push(*r)));
            sim.run_rounds(30);
            sim.settle();
            drop(sim);
            Arc::try_unwrap(log).map_err(|_| ()).unwrap().into_inner().unwrap()
        };
        let one = collect(1);
        assert!(!one.is_empty());
        assert_eq!(collect(2), one, "2-thread report stream diverged");
        assert_eq!(collect(8), one, "8-thread report stream diverged");
    }

    #[test]
    fn recorder_ledger_matches_stats() {
        let registry = MetricsRegistry::new();
        let mut sim = ParSimulation::new(nodes(), UniformLoss::new(0.1).unwrap(), 41, 3);
        sim.subscribe(Box::new(SimRecorder::new(&registry)));
        sim.run_rounds(30);
        let s = *sim.stats();
        let counter = |name: &str| registry.counter_value(name).unwrap();
        assert_eq!(counter("sim.step.actions"), s.actions);
        assert_eq!(counter("sim.step.self_loops"), s.self_loops);
        assert_eq!(counter("sim.step.sent"), s.sent);
        assert_eq!(counter("sim.step.lost"), s.lost);
        assert_eq!(counter("sim.step.dead_letters"), s.dead_letters);
        assert_eq!(counter("sim.step.stored"), s.stored);
        assert_eq!(counter("sim.step.deleted"), s.deleted);
        assert_eq!(counter("sim.step.duplications"), s.duplications);
    }

    #[test]
    fn immediate_rounds_leave_nothing_in_flight() {
        let mut sim = ParSimulation::new(nodes(), UniformLoss::new(0.1).unwrap(), 7, 4);
        for _ in 0..25 {
            sim.round();
            assert_eq!(sim.in_flight(), 0, "immediate mode must drain every round");
        }
        let s = sim.stats();
        assert_eq!(s.actions, 25 * 24);
        assert_eq!(s.actions, s.self_loops + s.sent);
        assert_eq!(s.sent, s.lost + s.dead_letters + s.stored + s.deleted);
    }

    #[test]
    fn delayed_messages_conserve_the_ledger() {
        let mut sim = ParSimulation::with_delay(
            nodes(),
            UniformLoss::new(0.05).unwrap(),
            DelayModel::UniformSteps { max: 8 },
            3,
            2,
        );
        sim.run_rounds(50);
        let s = *sim.stats();
        assert_eq!(
            s.sent,
            s.lost + s.dead_letters + s.stored + s.deleted + sim.in_flight() as u64,
            "message ledger out of balance"
        );
        sim.settle();
        assert_eq!(sim.in_flight(), 0);
        let s = sim.stats();
        assert_eq!(s.sent, s.lost + s.dead_letters + s.stored + s.deleted);
        // Rounds executed after a settle stay consistent too.
        sim.run_rounds(10);
        sim.settle();
        let s = sim.stats();
        assert_eq!(s.sent, s.lost + s.dead_letters + s.stored + s.deleted);
    }

    #[test]
    fn degrees_stay_in_the_legal_band() {
        let mut sim = ParSimulation::new(nodes(), UniformLoss::new(0.1).unwrap(), 9, 4);
        for _ in 0..60 {
            sim.round();
            for id in sim.live_ids() {
                let d = sim.out_degree_of(id).unwrap();
                assert_eq!(d % 2, 0, "odd outdegree at {id}");
                assert!((4..=12).contains(&d), "outdegree {d} outside [d_L, s]");
            }
        }
    }

    #[test]
    fn steady_state_rates_track_the_classic_engine() {
        // Not lockstep — a distinct statistical mode — but the loss
        // compensation identity (Lemma 6.6: dup ≈ ℓ + del) and the mean
        // degree must land in the same place.
        let nodes_big = topology::circulant(256, SfConfig::new(16, 6).unwrap(), 10);
        let mut par = ParSimulation::new(nodes_big.clone(), UniformLoss::new(0.05).unwrap(), 5, 4)
            .run_replicate(80, 200);
        let mut classic = Simulation::new(nodes_big, UniformLoss::new(0.05).unwrap(), 5);
        classic.run_rounds(80);
        classic.reset_stats();
        classic.run_rounds(200);
        let (p, c) = (par.stats(), classic.stats());
        let dup_p = p.duplication_rate().unwrap();
        let dup_c = c.duplication_rate().unwrap();
        assert!((dup_p - dup_c).abs() < 0.02, "duplication rates diverged: {dup_p} vs {dup_c}");
        let mean_p = par.graph().out_degrees().iter().sum::<usize>() as f64 / 256.0;
        let mean_c = classic.graph().out_degrees().iter().sum::<usize>() as f64 / 256.0;
        assert!((mean_p - mean_c).abs() < 1.0, "mean degrees diverged: {mean_p} vs {mean_c}");
        par.round(); // the moved-out engine keeps working
    }

    #[test]
    fn profiler_records_spans_and_imbalance() {
        let registry = MetricsRegistry::new();
        let mut sim = ParSimulation::new(nodes(), UniformLoss::none(), 31, 3);
        sim.attach_profiler(&registry);
        sim.run_rounds(4);
        for name in
            ["sim.profile.par.action_ns", "sim.profile.par.merge_ns", "sim.profile.par.deliver_ns"]
        {
            let hist = registry.histogram(name, duration_buckets());
            assert_eq!(hist.count(), 4, "{name} should record one span per round");
        }
        let gauge = registry.gauge("sim.par.shard_imbalance");
        assert!(gauge.get() >= 1.0, "imbalance gauge not recorded");
        assert!((sim.shard_imbalance() - gauge.get()).abs() < 1e-12);
    }

    #[test]
    fn imbalance_reflects_uneven_shards() {
        // 24 nodes in 3 shards of 8; kill every live node of the last
        // shard and the max/mean live ratio rises above 1.
        let mut sim = ParSimulation::new(nodes(), UniformLoss::none(), 1, 3);
        for id in sim.live_ids().into_iter().skip(16) {
            sim.leave(id);
        }
        sim.round();
        assert!(sim.shard_imbalance() > 1.0, "imbalance {}", sim.shard_imbalance());
    }

    #[test]
    fn join_with_validates_like_the_protocol() {
        let mut sim = ParSimulation::new(nodes(), UniformLoss::none(), 1, 2);
        let two: Vec<NodeId> = (0..2).map(NodeId::new).collect();
        assert_eq!(sim.join_with(&two), Err(JoinError::TooFewIds { supplied: 2, d_l: 4 }));
        let five: Vec<NodeId> = (0..5).map(NodeId::new).collect();
        assert_eq!(sim.join_with(&five), Err(JoinError::OddIdCount { supplied: 5 }));
        let too_many: Vec<NodeId> = (0..14).map(NodeId::new).collect();
        assert_eq!(sim.join_with(&too_many), Err(JoinError::TooManyIds { supplied: 14, s: 12 }));
        let id = sim.join_with(&(0..4).map(NodeId::new).collect::<Vec<_>>()).unwrap();
        assert_eq!(sim.out_degree_of(id), Some(4));
        assert_eq!(sim.len(), 25);
    }

    #[test]
    fn join_is_rejected_once_the_u32_id_space_is_exhausted() {
        let mut sim = ParSimulation::new(nodes(), UniformLoss::none(), 1, 2);
        // Reaching the limit organically needs ~4.3 billion joins (and a
        // 17 GB id → dense table); the guard only reads the counter, so
        // pin it at the boundary directly.
        sim.next_id = ARENA_ID_LIMIT;
        let bootstrap: Vec<NodeId> = (0..4).map(NodeId::new).collect();
        assert_eq!(
            sim.join_with(&bootstrap),
            Err(JoinError::IdSpaceExhausted { next: ARENA_ID_LIMIT, limit: ARENA_ID_LIMIT })
        );
        assert_eq!(sim.len(), 24, "a rejected join must not touch the arena");
        assert_eq!(sim.degree_stats().live_nodes(), 24);
    }

    #[test]
    #[should_panic(expected = "exceeds the u32 arena id space")]
    fn construction_rejects_ids_at_the_slot_sentinel() {
        // `u32::MAX` is the empty-slot sentinel; a node with that id
        // would be indistinguishable from an empty slot.
        let node = SfNode::new(NodeId::new(u64::from(u32::MAX)), config());
        let _ = ParSimulation::new(vec![node], UniformLoss::none(), 1, 1);
    }

    #[test]
    fn queries_beyond_the_widening_boundary_never_alias() {
        let sim = ParSimulation::new(nodes(), UniformLoss::none(), 1, 2);
        // Congruent to a live id modulo 2^32 — a truncating comparison
        // would alias it onto node 3.
        let wide = NodeId::new((1u64 << 32) + 3);
        assert_eq!(sim.count_id_instances(wide), 0);
        assert_eq!(sim.out_degree_of(wide), None);
        assert!(sim.count_id_instances(NodeId::new(3)) > 0, "node 3 is referenced in the ring");
        assert_eq!(sim.out_degree_of(NodeId::new(3)), Some(4));
    }

    #[test]
    fn identical_across_thread_counts_under_scheduled_faults() {
        use crate::fault::{
            NodeCapacity, PerLinkLoss, PhaseFault, RegionalPartition, ScheduledFault, VictimLoss,
        };
        let schedule = || {
            let mut victims = VictimLoss::new(0.9, 0.01).unwrap();
            victims.set_victims(&[NodeId::new(1), NodeId::new(2)]);
            ScheduledFault::new(vec![
                (8, PhaseFault::Uniform(UniformLoss::new(0.05).unwrap())),
                (16, PhaseFault::Partition(RegionalPartition::new(2, 8, 8, 1.0, 0.05).unwrap())),
                (24, PhaseFault::Capacity(NodeCapacity::new(5, 0.4, 3, 0.02).unwrap())),
                (32, PhaseFault::PerLink(PerLinkLoss::new(9, 0.3, 0.0, 1.0).unwrap())),
                (u64::MAX, PhaseFault::Victims(victims)),
            ])
        };
        let build = |threads| ParSimulation::new(nodes(), schedule(), 42, threads);
        let mut one = build(1);
        one.run_rounds(40);
        let s = *one.stats();
        assert!(s.skipped > 0, "capacity phase never skipped a step");
        assert!(s.lost > 0, "schedule never lost a message");
        assert_eq!(s.actions + s.skipped, 40 * 24, "every live node acts or skips each round");
        for threads in [2, 3, 8, 64] {
            let mut other = build(threads);
            other.run_rounds(40);
            assert_par_equal(&one, &other);
        }
    }

    #[test]
    fn update_fault_reaches_every_sender_channel() {
        use crate::fault::VictimLoss;
        let victim = NodeId::new(5);
        let mut sim = ParSimulation::new(nodes(), VictimLoss::new(1.0, 0.0).unwrap(), 23, 4);
        sim.run_rounds(10);
        assert_eq!(sim.stats().lost, 0, "empty victim set must lose nothing");
        sim.update_fault(|f| f.set_victims(&[victim]));
        assert!(sim.fault().is_victim(victim));
        sim.run_rounds(30);
        assert!(sim.stats().lost > 0, "victim loss never fired after retarget");
    }

    #[test]
    fn targeted_loss_is_supported() {
        let mut loss = TargetedLoss::new(0.0).unwrap();
        loss.set_target(NodeId::new(3), 1.0).unwrap();
        let mut sim = ParSimulation::new(nodes(), loss, 11, 4);
        sim.run_rounds(40);
        assert!(sim.stats().lost > 0, "targeted loss never fired");
        // The victim's indegree should have drained relative to the mean.
        let graph = sim.graph();
        let in_degrees = graph.in_degrees();
        let mean = in_degrees.iter().sum::<usize>() as f64 / in_degrees.len() as f64;
        let victim = sim.count_id_instances(NodeId::new(3)) as f64;
        assert!(victim < mean, "victim indegree {victim} not below mean {mean}");
    }

    #[test]
    fn clones_do_not_carry_subscribers() {
        let mut sim = ParSimulation::new(nodes(), UniformLoss::none(), 1, 2);
        sim.subscribe(Box::new(|_: &StepReport| {}));
        assert_eq!(sim.subscriber_count(), 1);
        assert_eq!(sim.clone().subscriber_count(), 0);
    }

    #[test]
    fn to_nodes_roundtrips() {
        let mut sim = ParSimulation::new(nodes(), UniformLoss::new(0.1).unwrap(), 77, 3);
        sim.run_rounds(25);
        let rebuilt = sim.to_nodes();
        assert_eq!(rebuilt.len(), sim.len());
        for node in &rebuilt {
            assert_eq!(
                Some(node.view().clone()),
                sim.node_view(node.id()),
                "rebuilt view diverged"
            );
        }
    }

    #[test]
    fn set_threads_changes_nothing_but_wall_clock() {
        let mut a = ParSimulation::new(nodes(), UniformLoss::new(0.1).unwrap(), 13, 1);
        let mut b = a.clone();
        a.run_rounds(10);
        b.set_threads(6);
        b.run_rounds(10);
        assert_par_equal(&a, &b);
        assert_eq!(b.threads(), 6);
    }

    #[test]
    #[should_panic(expected = "thread count must be positive")]
    fn rejects_zero_threads() {
        let _ = ParSimulation::new(nodes(), UniformLoss::none(), 0, 0);
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn rejects_empty_node_set() {
        let _ = ParSimulation::new(Vec::new(), UniformLoss::none(), 0, 1);
    }

    #[test]
    #[should_panic(expected = "delay bound")]
    fn zero_delay_bound_is_rejected() {
        let _ = ParSimulation::with_delay(
            nodes(),
            UniformLoss::none(),
            DelayModel::UniformSteps { max: 0 },
            0,
            1,
        );
    }
}
