//! Rumor-spreading broadcast over live membership views — the first layer
//! that *consumes* the peer-sampling service instead of only measuring it.
//!
//! [`BroadcastLayer`] piggybacks a push (optionally push-pull) rumor on
//! top of any [`Engine`]: after each membership round, [`BroadcastLayer::step`]
//! walks every live node's current view via
//! [`Engine::for_each_live_view`] and gossips an application payload along
//! those edges. Per-node rumor state lives in a dense arena — `u8` age
//! counters, `u64`-word informed/channel bitsets — so the layer scales to
//! n = 10⁶ on `FlatSimulation`/`ParSimulation` without perturbing the
//! engines' own RNG streams or their byte-identical-across-threads
//! contract.
//!
//! # Determinism
//!
//! Every random draw a node makes in a broadcast round comes from its own
//! counter-based stream, derived exactly like the parallel engine's
//! per-`(seed, node, round)` streams (FNV-1a over the fixed 25-byte
//! `seed ‖ tag ‖ node ‖ round` layout) with two new tags:
//!
//! * [`RUMOR_TAG`] (`b'g'`) — gossip draws: push targets, pull partner,
//!   per-message loss;
//! * [`RUMOR_CHANNEL_TAG`] (`b'h'`) — the per-round Gilbert–Elliott
//!   channel-state transition.
//!
//! Draws therefore never depend on view-iteration order, and newly
//! informed nodes are committed through a double buffer, so the layer is
//! bit-identical across engines in lockstep (classic ↔ flat) and across
//! thread counts (par), inheriting whatever determinism contract the
//! underlying engine offers.
//!
//! # Channels
//!
//! The rumor channel is faulted independently of the membership channel
//! by a [`RumorChannel`], mirroring the PR 6 fault zoo: uniform loss,
//! per-node Gilbert–Elliott bursts, regional partition (`id % regions`),
//! and victim loss. Loss applies per message at the *receiver*, after the
//! sender has paid for the send — lost rumors still count toward message
//! complexity, exactly like `SimStats::lost`.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sandf_core::NodeId;
use sandf_obs::{CounterHandle, MetricsRegistry};

use crate::par::{fnv1a64, stream_seed};
use crate::traits::Engine;

/// Stream tag for gossip draws (push targets, pull partner, loss).
pub const RUMOR_TAG: u8 = b'g';

/// Stream tag for the per-round rumor-channel state transition.
pub const RUMOR_CHANNEL_TAG: u8 = b'h';

/// Push / push-pull rumor parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BroadcastConfig {
    /// Push targets an informed node draws from its view per round (≥ 1).
    pub fanout: usize,
    /// An informed node pushes while its age (rounds since it learned the
    /// rumor) is ≤ `max_age`; `u8::MAX` effectively never retires.
    pub max_age: u8,
    /// Push-pull: uninformed nodes also draw one partner per round and
    /// pull the rumor if the partner is informed (request + reply each
    /// traverse the lossy channel).
    pub pull: bool,
}

impl BroadcastConfig {
    /// A push-only configuration.
    ///
    /// # Panics
    ///
    /// Panics when `fanout` is zero.
    #[must_use]
    pub fn push(fanout: usize, max_age: u8) -> Self {
        assert!(fanout >= 1, "broadcast fanout must be at least 1");
        Self { fanout, max_age, pull: false }
    }

    /// The same, with pull enabled.
    ///
    /// # Panics
    ///
    /// Panics when `fanout` is zero.
    #[must_use]
    pub fn push_pull(fanout: usize, max_age: u8) -> Self {
        Self { pull: true, ..Self::push(fanout, max_age) }
    }
}

impl Default for BroadcastConfig {
    /// Fanout-1 push with an effectively unbounded age — the setting the
    /// Doerr et al. `log₂ n + ln n` spread prediction is stated for.
    fn default() -> Self {
        Self::push(1, u8::MAX)
    }
}

/// Loss model for the rumor channel, independent of the membership
/// channel. All rates are probabilities in `[0, 1]`.
#[derive(Clone, Debug, PartialEq)]
pub enum RumorChannel {
    /// Every rumor arrives.
    Lossless,
    /// Each message drops i.i.d. with `rate`.
    Uniform {
        /// Per-message drop probability.
        rate: f64,
    },
    /// Per-receiver two-state Gilbert–Elliott channel: each node's state
    /// advances once per broadcast round from its own
    /// [`RUMOR_CHANNEL_TAG`] stream; inbound messages drop at `loss_good`
    /// or `loss_bad` depending on the receiver's state.
    Bursty {
        /// P(good → bad) per round.
        to_bad: f64,
        /// P(bad → good) per round.
        to_good: f64,
        /// Drop probability while the receiver is in the good state.
        loss_good: f64,
        /// Drop probability while the receiver is in the bad state.
        loss_bad: f64,
    },
    /// Regional partition: node `v` belongs to region `v.as_u64() % regions`;
    /// cross-region messages drop with `sever`, intra-region with `base`.
    Partition {
        /// Number of regions (≥ 1).
        regions: u64,
        /// Cross-region drop probability (1.0 = hard partition).
        sever: f64,
        /// Intra-region drop probability.
        base: f64,
    },
    /// Victim loss: messages *to* a victim drop with `victim_rate`,
    /// everything else with `base`. The victim list is sorted and deduped
    /// on construction ([`BroadcastLayer::set_channel`]).
    Victims {
        /// Inbound drop probability at a victim.
        victim_rate: f64,
        /// Drop probability elsewhere.
        base: f64,
        /// The victims (kept sorted for binary search).
        victims: Vec<NodeId>,
    },
}

impl RumorChannel {
    /// Validates rates and normalizes internal invariants (sorts victims).
    ///
    /// # Panics
    ///
    /// Panics when any probability is outside `[0, 1]` or `regions == 0`.
    fn normalize(&mut self) {
        let ok = |p: f64| (0.0..=1.0).contains(&p);
        match self {
            Self::Lossless => {}
            Self::Uniform { rate } => assert!(ok(*rate), "rumor loss rate {rate} not in [0,1]"),
            Self::Bursty { to_bad, to_good, loss_good, loss_bad } => {
                for p in [*to_bad, *to_good, *loss_good, *loss_bad] {
                    assert!(ok(p), "rumor channel probability {p} not in [0,1]");
                }
            }
            Self::Partition { regions, sever, base } => {
                assert!(*regions >= 1, "partition needs at least one region");
                assert!(ok(*sever) && ok(*base), "partition rates must be in [0,1]");
            }
            Self::Victims { victim_rate, base, victims } => {
                assert!(ok(*victim_rate) && ok(*base), "victim rates must be in [0,1]");
                victims.sort_unstable();
                victims.dedup();
            }
        }
    }
}

/// System-wide rumor counters. All fields are order-independent sums, so
/// they are part of the layer's determinism contract (and of the golden
/// fingerprints in the test suite).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BroadcastStats {
    /// Push messages emitted.
    pub sent: u64,
    /// Push messages dropped by the rumor channel.
    pub lost: u64,
    /// Push messages addressed to a stale view entry (target not live).
    pub dead_letters: u64,
    /// Push messages that arrived at a live target.
    pub delivered: u64,
    /// Arrivals at a target already informed at the start of the round.
    pub duplicates: u64,
    /// Pull requests emitted by uninformed nodes.
    pub pull_requests: u64,
    /// Pull replies emitted by informed partners (request survived).
    pub pull_replies: u64,
    /// Pull exchanges that informed the requester (reply survived too).
    pub pull_hits: u64,
}

impl BroadcastStats {
    /// Every message the rumor layer put on the wire: pushes, pull
    /// requests, and pull replies.
    #[must_use]
    pub fn messages(&self) -> u64 {
        self.sent + self.pull_requests + self.pull_replies
    }
}

/// One provenance-trace edge: `to` learned the rumor from `from` in
/// broadcast round `round` (1-based), over an edge present in `from`'s
/// (push) or `to`'s (pull) view that round.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEdge {
    /// Broadcast round of the delivery (1-based).
    pub round: u64,
    /// The informed endpoint that supplied the rumor.
    pub from: NodeId,
    /// The node that became informed.
    pub to: NodeId,
}

/// End-of-run summary: spread time to coverage milestones plus message
/// complexity.
#[derive(Clone, Debug, PartialEq)]
pub struct SpreadReport {
    /// Broadcast rounds executed.
    pub rounds: u64,
    /// Live nodes at the last step.
    pub live: usize,
    /// Informed live nodes at the last step.
    pub informed: usize,
    /// `informed / live` at the last step.
    pub coverage: f64,
    /// First round with coverage ≥ 50 %.
    pub to_half: Option<u64>,
    /// First round with coverage ≥ 99 %.
    pub to_99: Option<u64>,
    /// First round with coverage = 100 %.
    pub to_full: Option<u64>,
    /// Total rumor messages per live node.
    pub messages_per_node: f64,
    /// The raw counters behind the summary.
    pub stats: BroadcastStats,
}

/// `sim.broadcast.*` counter handles (registered lazily by
/// [`BroadcastLayer::attach_metrics`]).
struct BroadcastMetrics {
    sent: CounterHandle,
    lost: CounterHandle,
    dead_letters: CounterHandle,
    delivered: CounterHandle,
    duplicates: CounterHandle,
    pull_requests: CounterHandle,
    pull_replies: CounterHandle,
    pull_hits: CounterHandle,
    rounds: CounterHandle,
    informed: CounterHandle,
}

impl BroadcastMetrics {
    fn register(registry: &MetricsRegistry) -> Self {
        Self {
            sent: registry.counter("sim.broadcast.sent"),
            lost: registry.counter("sim.broadcast.lost"),
            dead_letters: registry.counter("sim.broadcast.dead_letters"),
            delivered: registry.counter("sim.broadcast.delivered"),
            duplicates: registry.counter("sim.broadcast.duplicates"),
            pull_requests: registry.counter("sim.broadcast.pull_requests"),
            pull_replies: registry.counter("sim.broadcast.pull_replies"),
            pull_hits: registry.counter("sim.broadcast.pull_hits"),
            rounds: registry.counter("sim.broadcast.rounds"),
            informed: registry.counter("sim.broadcast.informed"),
        }
    }
}

/// The rumor layer. See the module docs for the model; drive it with
/// [`BroadcastLayer::run`] (membership round + rumor round interleaved) or
/// call [`BroadcastLayer::step`] after each engine round yourself.
pub struct BroadcastLayer {
    seed: u64,
    config: BroadcastConfig,
    channel: RumorChannel,
    round: u64,
    /// Dense rumor arena: id → slot plus per-slot columns.
    slot_of: HashMap<NodeId, u32>,
    ids: Vec<NodeId>,
    /// Rounds since the slot became informed (saturating).
    age: Vec<u8>,
    /// Informed flags, one bit per slot. Monotone: bits are set, never
    /// cleared.
    informed: Vec<u64>,
    /// Gilbert–Elliott bad-state flags, one bit per slot.
    bad_state: Vec<u64>,
    /// Last round (as `round + 1`) each slot was observed live; 0 = never.
    live_epoch: Vec<u64>,
    stats: BroadcastStats,
    live_count: usize,
    informed_live: usize,
    to_half: Option<u64>,
    to_99: Option<u64>,
    to_full: Option<u64>,
    trace: Option<Vec<TraceEdge>>,
    metrics: Option<BroadcastMetrics>,
    /// Double buffer: slots informed during the current step.
    newly: Vec<u32>,
}

impl BroadcastLayer {
    /// A lossless-channel layer sharing the engine's `seed` (streams stay
    /// disjoint from the engine's via [`RUMOR_TAG`]/[`RUMOR_CHANNEL_TAG`]).
    #[must_use]
    pub fn new(seed: u64, config: BroadcastConfig) -> Self {
        Self::with_channel(seed, config, RumorChannel::Lossless)
    }

    /// A layer with an explicit rumor channel.
    ///
    /// # Panics
    ///
    /// Panics when `config.fanout` is zero or a channel rate is invalid.
    #[must_use]
    pub fn with_channel(seed: u64, config: BroadcastConfig, mut channel: RumorChannel) -> Self {
        assert!(config.fanout >= 1, "broadcast fanout must be at least 1");
        channel.normalize();
        Self {
            seed,
            config,
            channel,
            round: 0,
            slot_of: HashMap::new(),
            ids: Vec::new(),
            age: Vec::new(),
            informed: Vec::new(),
            bad_state: Vec::new(),
            live_epoch: Vec::new(),
            stats: BroadcastStats::default(),
            live_count: 0,
            informed_live: 0,
            to_half: None,
            to_99: None,
            to_full: None,
            trace: None,
            metrics: None,
            newly: Vec::new(),
        }
    }

    /// Swaps the rumor channel (e.g. between scenario phases). Channel
    /// state (Gilbert–Elliott bits) is preserved across swaps.
    ///
    /// # Panics
    ///
    /// Panics when a channel rate is invalid.
    pub fn set_channel(&mut self, mut channel: RumorChannel) {
        channel.normalize();
        self.channel = channel;
    }

    /// The current rumor channel.
    #[must_use]
    pub fn channel(&self) -> &RumorChannel {
        &self.channel
    }

    /// The rumor parameters.
    #[must_use]
    pub fn config(&self) -> BroadcastConfig {
        self.config
    }

    /// Marks `id` as an initial rumor holder (age 0).
    pub fn seed_rumor_at(&mut self, id: NodeId) {
        let slot = self.slot_for(id);
        if !bit(&self.informed, slot) {
            set_bit(&mut self.informed, slot);
            self.age[slot as usize] = 0;
            if let Some(m) = &self.metrics {
                m.informed.inc();
            }
        }
    }

    /// Starts recording `(round, from, to)` infection edges for
    /// provenance checks.
    pub fn enable_trace(&mut self) {
        self.trace.get_or_insert_with(Vec::new);
    }

    /// The recorded infection edges (empty unless
    /// [`BroadcastLayer::enable_trace`] was called first).
    #[must_use]
    pub fn trace(&self) -> &[TraceEdge] {
        self.trace.as_deref().unwrap_or(&[])
    }

    /// Registers the `sim.broadcast.*` counters on `registry` and streams
    /// all subsequent events into them.
    pub fn attach_metrics(&mut self, registry: &MetricsRegistry) {
        self.metrics = Some(BroadcastMetrics::register(registry));
    }

    /// Broadcast rounds executed so far.
    #[must_use]
    pub fn rounds(&self) -> u64 {
        self.round
    }

    /// Accumulated rumor counters.
    #[must_use]
    pub fn stats(&self) -> BroadcastStats {
        self.stats
    }

    /// Whether `id` holds the rumor.
    #[must_use]
    pub fn is_informed(&self, id: NodeId) -> bool {
        self.slot_of.get(&id).is_some_and(|&slot| bit(&self.informed, slot))
    }

    /// Live nodes observed at the last step.
    #[must_use]
    pub fn live_seen(&self) -> usize {
        self.live_count
    }

    /// Informed nodes among those live at the last step.
    #[must_use]
    pub fn informed_live(&self) -> usize {
        self.informed_live
    }

    /// `informed_live / live_seen` after the last step (0.0 before any).
    #[must_use]
    pub fn coverage(&self) -> f64 {
        if self.live_count == 0 {
            0.0
        } else {
            self.informed_live as f64 / self.live_count as f64
        }
    }

    /// Informed ids among the nodes live at the last step, sorted.
    #[must_use]
    pub fn informed_ids(&self) -> Vec<NodeId> {
        let mark = self.round;
        let mut out: Vec<NodeId> = self
            .ids
            .iter()
            .enumerate()
            .filter(|&(slot, _)| self.live_epoch[slot] == mark && bit(&self.informed, slot as u32))
            .map(|(_, &id)| id)
            .collect();
        out.sort_unstable();
        out
    }

    /// Order-independent FNV-1a digest of the layer's observable state:
    /// round, ledger, milestones, counters, and every node's
    /// `(id, informed, age, live)` tuple in sorted-id order. Equal
    /// fingerprints mean bit-identical broadcast state — the quantity the
    /// cross-engine and cross-thread-count determinism tests (and the
    /// golden files) pin.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        let mut bytes: Vec<u8> = Vec::with_capacity(64 + self.ids.len() * 11);
        let sentinel = |m: Option<u64>| m.unwrap_or(u64::MAX);
        for word in [
            self.round,
            self.live_count as u64,
            self.informed_live as u64,
            sentinel(self.to_half),
            sentinel(self.to_99),
            sentinel(self.to_full),
            self.stats.sent,
            self.stats.lost,
            self.stats.dead_letters,
            self.stats.delivered,
            self.stats.duplicates,
            self.stats.pull_requests,
            self.stats.pull_replies,
            self.stats.pull_hits,
        ] {
            bytes.extend_from_slice(&word.to_le_bytes());
        }
        let mut order: Vec<u32> = (0..self.ids.len() as u32).collect();
        order.sort_unstable_by_key(|&slot| self.ids[slot as usize]);
        for slot in order {
            bytes.extend_from_slice(&self.ids[slot as usize].as_u64().to_le_bytes());
            bytes.push(u8::from(bit(&self.informed, slot)));
            bytes.push(self.age[slot as usize]);
            bytes.push(u8::from(self.live_epoch[slot as usize] == self.round));
        }
        fnv1a64(&bytes)
    }

    /// The end-of-run summary.
    #[must_use]
    pub fn report(&self) -> SpreadReport {
        let per_node = if self.live_count == 0 {
            0.0
        } else {
            self.stats.messages() as f64 / self.live_count as f64
        };
        SpreadReport {
            rounds: self.round,
            live: self.live_count,
            informed: self.informed_live,
            coverage: self.coverage(),
            to_half: self.to_half,
            to_99: self.to_99,
            to_full: self.to_full,
            messages_per_node: per_node,
            stats: self.stats,
        }
    }

    /// Interleaves `rounds` membership rounds with one rumor round each:
    /// `engine.round()` then [`BroadcastLayer::step`].
    pub fn run<E: Engine>(&mut self, engine: &mut E, rounds: usize) {
        for _ in 0..rounds {
            engine.round();
            self.step(engine);
        }
    }

    /// Executes one broadcast round over the engine's current live views.
    ///
    /// Pass A walks the live set: registers arena slots, stamps the
    /// liveness epoch, and advances per-node channel state. Pass B walks
    /// the views once via [`Engine::for_each_live_view`]: informed,
    /// un-retired nodes push `fanout` targets; with pull enabled,
    /// uninformed nodes draw one partner and pull against the *start of
    /// round* informed set. Newly informed slots commit after the pass
    /// (synchronous double buffer), then ages advance and coverage
    /// milestones update.
    pub fn step<E: Engine>(&mut self, engine: &E) {
        let round = self.round;
        let mark = round + 1;
        let live = engine.live_ids();
        let before = self.stats;

        // Pass A: liveness epochs + channel state.
        let bursty = matches!(self.channel, RumorChannel::Bursty { .. });
        for &id in &live {
            let slot = self.slot_for(id);
            self.live_epoch[slot as usize] = mark;
            if bursty {
                let (to_bad, to_good) = match self.channel {
                    RumorChannel::Bursty { to_bad, to_good, .. } => (to_bad, to_good),
                    _ => unreachable!(),
                };
                let mut rng = StdRng::seed_from_u64(stream_seed(
                    self.seed,
                    RUMOR_CHANNEL_TAG,
                    id.as_u64(),
                    round,
                ));
                let next = if bit(&self.bad_state, slot) {
                    !rng.gen_bool(to_good)
                } else {
                    rng.gen_bool(to_bad)
                };
                assign_bit(&mut self.bad_state, slot, next);
            }
        }

        // Pass B: gossip over the live views. All reads of the informed
        // set go through the start-of-round buffer; discoveries land in
        // `newly` and commit afterwards, so results are independent of
        // the engine's iteration order.
        let mut newly = std::mem::take(&mut self.newly);
        newly.clear();
        let this = &mut *self;
        engine.for_each_live_view(&mut |id, view| {
            let slot = this.slot_of[&id];
            let informed = bit(&this.informed, slot);
            if view.is_empty() {
                return;
            }
            if informed && this.age[slot as usize] <= this.config.max_age {
                let mut rng =
                    StdRng::seed_from_u64(stream_seed(this.seed, RUMOR_TAG, id.as_u64(), round));
                for _ in 0..this.config.fanout {
                    let target = view[rng.gen_range(0..view.len())];
                    this.stats.sent += 1;
                    let drop_p = this.loss_rate(id, target);
                    let dropped = rng.gen_bool(drop_p);
                    let target_slot = this
                        .slot_of
                        .get(&target)
                        .copied()
                        .filter(|&s| this.live_epoch[s as usize] == mark);
                    let Some(target_slot) = target_slot else {
                        this.stats.dead_letters += 1;
                        continue;
                    };
                    if dropped {
                        this.stats.lost += 1;
                        continue;
                    }
                    this.stats.delivered += 1;
                    if bit(&this.informed, target_slot) {
                        this.stats.duplicates += 1;
                    } else {
                        newly.push(target_slot);
                        if let Some(trace) = &mut this.trace {
                            trace.push(TraceEdge { round: mark, from: id, to: target });
                        }
                    }
                }
            } else if !informed && this.config.pull {
                let mut rng =
                    StdRng::seed_from_u64(stream_seed(this.seed, RUMOR_TAG, id.as_u64(), round));
                let partner = view[rng.gen_range(0..view.len())];
                this.stats.pull_requests += 1;
                let request_dropped = rng.gen_bool(this.loss_rate(id, partner));
                let partner_slot = this
                    .slot_of
                    .get(&partner)
                    .copied()
                    .filter(|&s| this.live_epoch[s as usize] == mark);
                let Some(partner_slot) = partner_slot else {
                    return;
                };
                if request_dropped || !bit(&this.informed, partner_slot) {
                    return;
                }
                this.stats.pull_replies += 1;
                if rng.gen_bool(this.loss_rate(partner, id)) {
                    this.stats.lost += 1;
                    return;
                }
                this.stats.pull_hits += 1;
                newly.push(slot);
                if let Some(trace) = &mut this.trace {
                    trace.push(TraceEdge { round: mark, from: partner, to: id });
                }
            }
        });

        // Ages advance for everyone informed at the start of the round…
        for (widx, word) in self.informed.iter().enumerate() {
            let mut w = *word;
            while w != 0 {
                let slot = widx * 64 + w.trailing_zeros() as usize;
                self.age[slot] = self.age[slot].saturating_add(1);
                w &= w - 1;
            }
        }
        // …then discoveries commit at age 0 (monotone: set, never cleared).
        let mut fresh = 0u64;
        for &slot in &newly {
            if !bit(&self.informed, slot) {
                set_bit(&mut self.informed, slot);
                self.age[slot as usize] = 0;
                fresh += 1;
            }
        }
        self.newly = newly;

        // Ledger + milestones.
        self.live_count = live.len();
        self.informed_live = live.iter().filter(|id| bit(&self.informed, self.slot_of[id])).count();
        self.round = mark;
        let coverage = self.coverage();
        if self.to_half.is_none() && coverage >= 0.5 {
            self.to_half = Some(mark);
        }
        if self.to_99.is_none() && coverage >= 0.99 {
            self.to_99 = Some(mark);
        }
        if self.to_full.is_none() && self.live_count > 0 && self.informed_live == self.live_count {
            self.to_full = Some(mark);
        }

        if let Some(m) = &self.metrics {
            let d = &self.stats;
            m.sent.add(d.sent - before.sent);
            m.lost.add(d.lost - before.lost);
            m.dead_letters.add(d.dead_letters - before.dead_letters);
            m.delivered.add(d.delivered - before.delivered);
            m.duplicates.add(d.duplicates - before.duplicates);
            m.pull_requests.add(d.pull_requests - before.pull_requests);
            m.pull_replies.add(d.pull_replies - before.pull_replies);
            m.pull_hits.add(d.pull_hits - before.pull_hits);
            m.rounds.inc();
            m.informed.add(fresh);
        }
    }

    /// Drop probability for one message `from → to` under the current
    /// channel (receiver-side, like the engines' loss models).
    fn loss_rate(&self, from: NodeId, to: NodeId) -> f64 {
        match &self.channel {
            RumorChannel::Lossless => 0.0,
            RumorChannel::Uniform { rate } => *rate,
            RumorChannel::Bursty { loss_good, loss_bad, .. } => match self.slot_of.get(&to) {
                Some(&slot) if bit(&self.bad_state, slot) => *loss_bad,
                _ => *loss_good,
            },
            RumorChannel::Partition { regions, sever, base } => {
                if from.as_u64() % regions == to.as_u64() % regions {
                    *base
                } else {
                    *sever
                }
            }
            RumorChannel::Victims { victim_rate, base, victims } => {
                if victims.binary_search(&to).is_ok() {
                    *victim_rate
                } else {
                    *base
                }
            }
        }
    }

    /// The arena slot for `id`, growing all columns on first sight.
    fn slot_for(&mut self, id: NodeId) -> u32 {
        if let Some(&slot) = self.slot_of.get(&id) {
            return slot;
        }
        let slot = u32::try_from(self.ids.len()).expect("rumor arena outgrew u32 slots");
        self.slot_of.insert(id, slot);
        self.ids.push(id);
        self.age.push(0);
        self.live_epoch.push(0);
        let words = self.ids.len().div_ceil(64);
        if self.informed.len() < words {
            self.informed.push(0);
            self.bad_state.push(0);
        }
        slot
    }
}

/// Tests one bit of a slot bitset.
#[inline]
fn bit(words: &[u64], slot: u32) -> bool {
    words[slot as usize / 64] & (1u64 << (slot % 64)) != 0
}

/// Sets one bit of a slot bitset.
#[inline]
fn set_bit(words: &mut [u64], slot: u32) {
    words[slot as usize / 64] |= 1u64 << (slot % 64);
}

/// Writes one bit of a slot bitset.
#[inline]
fn assign_bit(words: &mut [u64], slot: u32, value: bool) {
    if value {
        words[slot as usize / 64] |= 1u64 << (slot % 64);
    } else {
        words[slot as usize / 64] &= !(1u64 << (slot % 64));
    }
}

/// The Doerr et al. spread-time yardstick for fanout-1 push on good
/// expander-like views: `log₂ n + ln n` rounds to full coverage
/// (Frieze–Grimmett / Pittel; Doerr, Doerr & Kötzing's robust variant
/// matches it up to additive constants under constant message loss).
#[must_use]
pub fn doerr_spread_prediction(n: usize) -> f64 {
    #[allow(clippy::cast_precision_loss)]
    let n = n as f64;
    n.log2() + n.ln()
}

#[cfg(test)]
mod tests {
    use sandf_core::SfConfig;

    use super::*;
    use crate::{topology, FlatSimulation, SfBehavior, UniformLoss};

    fn flat(n: usize, seed: u64) -> FlatSimulation<UniformLoss, SfBehavior> {
        let config = SfConfig::new(16, 6).unwrap();
        let nodes = topology::circulant(n, config, 8);
        FlatSimulation::new(nodes, UniformLoss::new(0.0).unwrap(), seed)
    }

    #[test]
    fn lossless_push_reaches_everyone() {
        let mut sim = flat(256, 7);
        sim.run_rounds(20);
        let mut layer = BroadcastLayer::new(7, BroadcastConfig::default());
        layer.seed_rumor_at(NodeId::new(0));
        layer.run(&mut sim, 60);
        let report = layer.report();
        assert_eq!(report.live, 256);
        assert_eq!(report.informed, 256);
        assert_eq!(report.coverage, 1.0);
        let full = report.to_full.expect("should finish in 60 rounds");
        assert!(report.to_half.unwrap() <= report.to_99.unwrap());
        assert!(report.to_99.unwrap() <= full);
        assert_eq!(report.stats.dead_letters, 0);
        assert_eq!(report.stats.lost, 0);
        assert_eq!(report.stats.messages(), report.stats.sent);
    }

    #[test]
    fn total_loss_never_spreads() {
        let mut sim = flat(64, 3);
        sim.run_rounds(10);
        let mut layer = BroadcastLayer::with_channel(
            3,
            BroadcastConfig::default(),
            RumorChannel::Uniform { rate: 1.0 },
        );
        layer.seed_rumor_at(NodeId::new(5));
        layer.run(&mut sim, 20);
        assert_eq!(layer.informed_live(), 1);
        assert_eq!(layer.stats().delivered, 0);
        assert_eq!(layer.stats().lost, layer.stats().sent);
    }

    #[test]
    fn replays_are_bit_identical() {
        let run = || {
            let mut sim = flat(128, 11);
            sim.run_rounds(10);
            let mut layer = BroadcastLayer::with_channel(
                11,
                BroadcastConfig::push_pull(2, 4),
                RumorChannel::Bursty { to_bad: 0.1, to_good: 0.3, loss_good: 0.02, loss_bad: 0.7 },
            );
            layer.seed_rumor_at(NodeId::new(1));
            layer.run(&mut sim, 25);
            (layer.report(), layer.informed_ids())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn informed_set_is_monotone_and_ledger_balances() {
        let mut sim = flat(96, 5);
        sim.run_rounds(10);
        let mut layer = BroadcastLayer::with_channel(
            5,
            BroadcastConfig::default(),
            RumorChannel::Uniform { rate: 0.3 },
        );
        layer.seed_rumor_at(NodeId::new(2));
        let mut prev: Vec<NodeId> = Vec::new();
        for _ in 0..30 {
            sim.round();
            layer.step(&sim);
            let now = layer.informed_ids();
            assert!(prev.iter().all(|id| now.contains(id)), "informed set shrank");
            assert_eq!(layer.live_seen(), Engine::len(&sim));
            assert!(layer.informed_live() <= layer.live_seen());
            prev = now;
        }
    }

    #[test]
    fn hard_partition_confines_the_rumor() {
        let mut sim = flat(128, 9);
        sim.run_rounds(20);
        let mut layer = BroadcastLayer::with_channel(
            9,
            BroadcastConfig::default(),
            RumorChannel::Partition { regions: 2, sever: 1.0, base: 0.0 },
        );
        layer.seed_rumor_at(NodeId::new(0)); // region 0 = even ids
        layer.run(&mut sim, 60);
        assert!(layer.informed_ids().iter().all(|id| id.as_u64() % 2 == 0));
        assert!(layer.coverage() <= 0.5 + f64::EPSILON);
    }

    #[test]
    fn victims_stay_dark_under_total_victim_loss() {
        let victims: Vec<NodeId> = (10..20).map(NodeId::new).collect();
        let mut sim = flat(64, 13);
        sim.run_rounds(10);
        let mut layer = BroadcastLayer::with_channel(
            13,
            BroadcastConfig::default(),
            RumorChannel::Victims { victim_rate: 1.0, base: 0.0, victims: victims.clone() },
        );
        layer.seed_rumor_at(NodeId::new(0));
        layer.run(&mut sim, 60);
        for v in victims {
            assert!(!layer.is_informed(v), "{v:?} should never learn the rumor");
        }
        assert_eq!(layer.informed_live(), 64 - 10);
    }

    #[test]
    fn trace_edges_cover_every_informed_node() {
        let mut sim = flat(128, 21);
        sim.run_rounds(15);
        let mut layer = BroadcastLayer::new(21, BroadcastConfig::default());
        layer.enable_trace();
        let origin = NodeId::new(3);
        layer.seed_rumor_at(origin);
        layer.run(&mut sim, 50);
        let informed = layer.informed_ids();
        let traced: std::collections::HashSet<NodeId> =
            layer.trace().iter().map(|e| e.to).collect();
        for id in informed {
            assert!(id == origin || traced.contains(&id), "{id:?} informed without a trace edge");
        }
    }

    #[test]
    fn prediction_is_log_shaped() {
        assert!(doerr_spread_prediction(1_000) > 16.0);
        assert!(doerr_spread_prediction(1_000) < 18.0);
        assert!(doerr_spread_prediction(10_000) < 23.5);
    }

    #[test]
    #[should_panic(expected = "not in [0,1]")]
    fn bad_rate_is_rejected() {
        let _ = BroadcastLayer::with_channel(
            1,
            BroadcastConfig::default(),
            RumorChannel::Uniform { rate: 1.5 },
        );
    }
}
