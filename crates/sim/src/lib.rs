//! # sandf-sim — deterministic simulation of S&F under message loss
//!
//! The paper models the network as asynchronous with *uniform i.i.d.
//! message loss* (Section 4.1) and analyzes executions in which "a central
//! entity repeatedly selects a random node \[and\] invokes its
//! `S&F-InitiateAction()` method" (Section 5). This crate is that model,
//! executable: a seeded discrete-event [`Simulation`] over
//! [`sandf_core::SfNode`]s, with pluggable [`LossModel`]s, churn
//! (join/leave), initial [`topology`] builders, measurement
//! [`observer`]s, and ready-made [`experiment`] runners for every empirical
//! result in the paper's evaluation.
//!
//! Everything is reproducible: the same seed yields the same execution.
//!
//! ## Example
//!
//! ```
//! use sandf_core::SfConfig;
//! use sandf_sim::{topology, Simulation, UniformLoss};
//!
//! let config = SfConfig::new(16, 6)?;
//! let nodes = topology::random(128, config, 8, &mut rand::thread_rng());
//! let mut sim = Simulation::new(nodes, UniformLoss::new(0.05)?, 7);
//! sim.run_rounds(100);
//!
//! // Under 5% loss the duplication floor keeps everyone connected.
//! assert!(sim.graph().is_weakly_connected());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod broadcast;
mod degree;
mod engine;
pub mod experiment;
pub mod fault;
mod flat;
mod loss;
pub mod observer;
mod par;
pub mod scan;
pub mod telemetry;
pub mod topology;
mod traits;

pub use broadcast::{
    doerr_spread_prediction, BroadcastConfig, BroadcastLayer, BroadcastStats, RumorChannel,
    SpreadReport, TraceEdge,
};
pub use degree::DegreeStats;
pub use engine::{
    DelayModel, SimStats, Simulation, StepEvent, StepPhase, StepReport, StepSubscriber,
};
pub use fault::{
    FaultCtx, FaultModel, NodeCapacity, PerLinkLoss, PhaseFault, RegionalPartition, ScheduledFault,
    VictimLoss,
};
pub use flat::FlatSimulation;
pub use loss::{GilbertElliott, LossModel, LossRateError, TargetedLoss, UniformLoss};
pub use par::ParSimulation;
pub use telemetry::SimRecorder;
pub use traits::{
    slot_word, Engine, IdBatch, ProtocolBehavior, Receipt, SfBehavior, SlotView, ARENA_ID_LIMIT,
    EMPTY_SLOT, FLAG_DEPENDENT, FLAG_TOMBSTONE, MAX_REPLY_CHAIN,
};
