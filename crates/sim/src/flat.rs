//! The large-`n` fast path: a struct-of-arrays simulation engine.
//!
//! [`Simulation`](crate::Simulation) keeps one heap-allocated
//! [`SfNode`] per participant behind a `HashMap`, which is the right shape
//! for protocol-level tests but collapses under cache pressure at
//! `n ≥ 10⁵`: every step chases a hash bucket, a node box, and a slot
//! vector. [`FlatSimulation`] is the same machine laid out flat:
//!
//! * **slot arena** — all views live in one contiguous `Vec<u32>` of
//!   `n · s` slots; node `k` owns `arena[k·s .. (k+1)·s]`, with
//!   `u32::MAX` as the empty-slot sentinel and a parallel `Vec<u8>` for
//!   the per-slot flag bits (dependence, tombstones). Ids are stored as
//!   `u32` words — half the footprint of the public `u64` id space, so an
//!   `s = 16` window is exactly one cache line — with a checked widening
//!   boundary at the `u64`-id API (ids at or above `u32::MAX` are
//!   rejected at construction and join time);
//! * **flat ledgers** — outdegrees and per-node [`NodeStats`] are dense
//!   arrays indexed by the node's arena slot, not fields of a boxed node,
//!   and the live list packs each node's raw id next to its dense arena
//!   index so the hot stepping path never touches the id → dense table;
//! * **ring-buffer delivery** — under [`DelayModel::UniformSteps`] the
//!   in-flight queue is a preallocated ring of `max + 1` buckets reused
//!   round after round, replacing the classic engine's
//!   `BTreeMap<u64, Vec<…>>` that allocates per delivery time;
//! * **branch-light stepping** — the subscriber-free delivery drain is a
//!   single counter check per step, and the observed paths stay out of
//!   line exactly as in the classic engine.
//!
//! # Protocol genericity
//!
//! The engine is generic over a [`ProtocolBehavior`] `B`, defaulting to
//! [`SfBehavior`] — the paper's S&F protocol. The behavior owns the view
//! algebra (initiate / receive over a [`SlotView`] window into the arena);
//! the engine owns scheduling, the lossy channel, churn bookkeeping, and
//! the stats ledgers. Protocols that reply (push-pull, shuffle) route the
//! reply back through the channel: a loss draw per hop, delay-model
//! scheduling, and a [`MAX_REPLY_CHAIN`] hop cap per delivery. S&F never
//! replies, so the reply machinery is dead code on the default path.
//!
//! # Equivalence contract
//!
//! With the default [`SfBehavior`], the fast path is **seed-for-seed
//! byte-identical** to the classic engine: it performs the same RNG draws
//! in the same order with the same bounds (initiator pick,
//! two-distinct-slot pick, loss decision, delay sampling, nth-empty-slot
//! receive placement), so for any seed and any [`LossModel`] the two
//! engines produce equal [`SimStats`], equal views (including dependence
//! tags), equal membership graphs, and equal [`StepReport`] streams —
//! which in turn makes the [`SimRecorder`](crate::SimRecorder) obs
//! exposition byte-identical. The `flat_equals_classic_*` tests below and
//! the golden regression in `crates/bench/tests/flat_equivalence.rs`
//! enforce this; any change to one engine's draw sequence must be
//! mirrored in the other. Non-default behaviors make no byte-identity
//! promise (there is no classic counterpart to compare against); they are
//! validated statistically in `tests/protocol_conformance.rs`.
//!
//! # Scope
//!
//! Ids are used as dense table indices (the id → node map is a flat
//! `Vec`, not a hash map), so memory is proportional to the *largest raw
//! id*, not the live count. The in-repo topology builders assign
//! contiguous ids from zero and joins extend them by one, which is the
//! intended regime. Memory for the delay ring is `O(max)` buckets.
//!
//! ```
//! use sandf_core::SfConfig;
//! use sandf_sim::{topology, FlatSimulation, UniformLoss};
//!
//! let config = SfConfig::new(16, 6)?;
//! let nodes = topology::circulant(10_000, config, 8);
//! let mut sim = FlatSimulation::new(nodes, UniformLoss::new(0.01)?, 42);
//! sim.run_rounds(5);
//! assert_eq!(sim.stats().actions, 50_000);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use std::fmt;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use sandf_core::{Entry, JoinError, LocalView, NodeId, NodeStats, SfConfig, SfNode};
use sandf_graph::{DependenceReport, MembershipGraph};
use sandf_obs::{duration_buckets, HistogramHandle, MetricsRegistry, SpanTimer};

use crate::degree::DegreeStats;
use crate::engine::{DelayModel, SimStats, StepEvent, StepPhase, StepReport, StepSubscriber};
use crate::fault::{FaultCtx, FaultModel};
use crate::traits::{
    slot_word, ProtocolBehavior, SfBehavior, SlotView, ARENA_ID_LIMIT, FLAG_DEPENDENT,
    MAX_REPLY_CHAIN,
};

/// A delivery hop's outcome: the step event, plus a protocol reply
/// (receiver, message) still to be routed.
type HopOutcome<M> = (StepEvent<M>, Option<(NodeId, M)>);

/// Empty-slot sentinel in the arena. Real node ids must stay below it.
const EMPTY: u32 = crate::traits::EMPTY_SLOT;

/// "Not live" sentinel in the id → dense-index table.
const DEAD: u32 = u32::MAX;

/// One live-list entry: a node's raw id packed next to its dense arena
/// index, so resolving a drawn initiator costs no extra random read of
/// the id → dense table. Dense indices are stable (the arena never
/// compacts), so the pairing cannot go stale.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
struct LiveRef {
    id: u32,
    dense: u32,
}

impl LiveRef {
    #[inline]
    fn node_id(self) -> NodeId {
        NodeId::new(u64::from(self.id))
    }
}

/// Span histograms for the engine's hot paths (same metric names as the
/// classic engine, so profiled runs are comparable across engines).
#[derive(Clone, Debug)]
struct FlatProfile {
    step: HistogramHandle,
    deliver: HistogramHandle,
}

/// The struct-of-arrays fast path of [`Simulation`](crate::Simulation),
/// generic over a [`ProtocolBehavior`] (default: [`SfBehavior`]).
///
/// Construction, stepping, churn, and measurement mirror the classic
/// engine's API; the module-level comment at the top of `flat.rs` spells
/// out the storage layout, the protocol genericity, and the equivalence
/// contract.
///
/// All views live in one contiguous `n × s` slot arena (`u64::MAX` marks
/// an empty slot, a parallel byte array carries the per-slot flag bits),
/// outdegrees and per-node [`NodeStats`] are dense arrays, and the
/// delayed in-flight queue is a preallocated ring of `max + 1` buckets.
/// With the default behavior the fast path is **seed-for-seed
/// byte-identical** to [`Simulation`](crate::Simulation): identical RNG
/// draws in identical order, hence identical [`SimStats`], views, report
/// streams, and obs exposition for any seed and loss model.
///
/// ```
/// use sandf_core::SfConfig;
/// use sandf_sim::{topology, FlatSimulation, UniformLoss};
///
/// let config = SfConfig::new(16, 6)?;
/// let nodes = topology::circulant(10_000, config, 8);
/// let mut sim = FlatSimulation::new(nodes, UniformLoss::new(0.01)?, 42);
/// sim.run_rounds(5);
/// assert_eq!(sim.stats().actions, 50_000);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct FlatSimulation<L, B: ProtocolBehavior = SfBehavior> {
    config: SfConfig,
    /// View size, cached out of `config` for the hot loops.
    s: usize,
    /// The protocol executed over the arena.
    behavior: B,
    /// Slot arena: node `k` owns `slot_ids[k·s .. (k+1)·s]`.
    slot_ids: Vec<u32>,
    /// Per-slot flag bits, parallel to `slot_ids` (meaningless on `EMPTY`).
    slot_flags: Vec<u8>,
    /// Outdegree ledger, indexed by dense node index.
    degree: Vec<u32>,
    /// Streaming live-outdegree histogram, maintained at store/delete
    /// time alongside `degree`.
    degree_hist: DegreeStats,
    /// Per-node event counters, indexed by dense node index.
    node_stats: Vec<NodeStats>,
    /// Dense index → node id (grows on join, never shrinks).
    dense_id: Vec<NodeId>,
    /// Raw id → dense index (`DEAD` for departed or never-assigned ids).
    index: Vec<u32>,
    /// Live (id, dense) pairs in the classic engine's order (insertion
    /// order with `swap_remove` on leave) — the initiator-sampling
    /// population.
    live: Vec<LiveRef>,
    loss: L,
    delay: DelayModel,
    /// Global step counter (drives in-flight delivery times).
    now: u64,
    /// Completed rounds — the time base for round-indexed fault models.
    rounds: u64,
    /// Delivery ring: bucket `t % ring.len()` holds the messages due at
    /// step `t` (each entry carries its exact due time, since replies
    /// scheduled mid-drain can transiently alias a residue to a later
    /// lap). Empty in immediate mode.
    ring: Vec<Vec<(u64, NodeId, B::Msg)>>,
    /// Messages currently in flight across all ring buckets.
    in_flight_count: usize,
    /// All delivery times `≤ drained_to` have been drained.
    drained_to: u64,
    rng: StdRng,
    stats: SimStats,
    next_id: u64,
    /// Registered step-event observers (not carried across clones).
    subscribers: Vec<Box<dyn StepSubscriber<B::Msg>>>,
    /// Hot-path span histograms, when a profiler is attached.
    profile: Option<FlatProfile>,
}

impl<L: Clone, B: ProtocolBehavior> Clone for FlatSimulation<L, B> {
    /// Clones the simulation state. As with the classic engine,
    /// subscribers are **not** cloned and an attached profiler is shared.
    fn clone(&self) -> Self {
        Self {
            config: self.config,
            s: self.s,
            behavior: self.behavior.clone(),
            slot_ids: self.slot_ids.clone(),
            slot_flags: self.slot_flags.clone(),
            degree: self.degree.clone(),
            degree_hist: self.degree_hist.clone(),
            node_stats: self.node_stats.clone(),
            dense_id: self.dense_id.clone(),
            index: self.index.clone(),
            live: self.live.clone(),
            loss: self.loss.clone(),
            delay: self.delay,
            now: self.now,
            rounds: self.rounds,
            ring: self.ring.clone(),
            in_flight_count: self.in_flight_count,
            drained_to: self.drained_to,
            rng: self.rng.clone(),
            stats: self.stats,
            next_id: self.next_id,
            subscribers: Vec::new(),
            profile: self.profile.clone(),
        }
    }
}

impl<L: fmt::Debug, B: ProtocolBehavior> fmt::Debug for FlatSimulation<L, B> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FlatSimulation")
            .field("config", &self.config)
            .field("live", &self.live.len())
            .field("loss", &self.loss)
            .field("delay", &self.delay)
            .field("now", &self.now)
            .field("in_flight", &self.in_flight_count)
            .field("stats", &self.stats)
            .field("subscribers", &self.subscribers.len())
            .field("profiled", &self.profile.is_some())
            .finish_non_exhaustive()
    }
}

impl<L: FaultModel> FlatSimulation<L, SfBehavior> {
    /// Creates a flat S&F simulation over the given nodes with a seeded
    /// RNG — the drop-in counterpart of
    /// [`Simulation::new`](crate::Simulation::new).
    ///
    /// Accepts any node iterator and builds the arena in one streaming
    /// pass, so at large `n` (e.g. `topology::circulant_iter` at 10⁷
    /// nodes) construction never materializes the boxed node set — the
    /// peak footprint is the arena itself, not `n` heap nodes.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is empty, contains duplicate ids, mixes
    /// configurations, or uses an id at or above `u32::MAX` (the arena
    /// stores ids as `u32` words with `u32::MAX` reserved for empty
    /// slots).
    #[must_use]
    pub fn new(nodes: impl IntoIterator<Item = SfNode>, loss: L, seed: u64) -> Self {
        let mut nodes = nodes.into_iter();
        let hint = nodes.size_hint().0;
        let first = nodes.next();
        assert!(first.is_some(), "simulation needs at least one node");
        let first = first.expect("checked above");
        let config = first.config();
        let s = config.view_size();
        let mut index: Vec<u32> = Vec::new();
        let mut slot_ids = Vec::with_capacity(hint.saturating_mul(s));
        let mut slot_flags = Vec::with_capacity(hint.saturating_mul(s));
        let mut degree = Vec::with_capacity(hint);
        let mut node_stats = Vec::with_capacity(hint);
        let mut ids: Vec<NodeId> = Vec::with_capacity(hint);
        let mut live = Vec::with_capacity(hint);
        let mut next_id = 0u64;
        for node in std::iter::once(first).chain(nodes) {
            assert!(node.config() == config, "all nodes must share one configuration");
            let id = node.id();
            let raw = id.index();
            assert!(
                (raw as u64) < ARENA_ID_LIMIT,
                "node id {raw} exceeds the u32 arena id space (ids must stay below u32::MAX)"
            );
            if raw >= index.len() {
                index.resize(raw + 1, DEAD);
            }
            assert!(index[raw] == DEAD, "duplicate node ids");
            let dense = u32::try_from(ids.len()).expect("node count exceeds the dense index space");
            index[raw] = dense;
            live.push(LiveRef { id: slot_word(id), dense });
            next_id = next_id.max(id.as_u64() + 1);
            let base = slot_ids.len();
            slot_ids.resize(base + s, EMPTY);
            slot_flags.resize(base + s, 0u8);
            let mut deg = 0u32;
            for (off, slot) in node.view().slots().enumerate() {
                if let Some(entry) = slot {
                    slot_ids[base + off] = slot_word(entry.id);
                    slot_flags[base + off] = if entry.dependent { FLAG_DEPENDENT } else { 0 };
                    deg += 1;
                }
            }
            degree.push(deg);
            node_stats.push(*node.stats());
            ids.push(id);
        }
        let degree_hist = DegreeStats::rebuild(s, degree.iter().copied());
        Self {
            config,
            s,
            behavior: SfBehavior,
            slot_ids,
            slot_flags,
            degree,
            degree_hist,
            node_stats,
            dense_id: ids,
            index,
            live,
            loss,
            delay: DelayModel::Immediate,
            now: 0,
            rounds: 0,
            ring: Vec::new(),
            in_flight_count: 0,
            drained_to: 0,
            rng: StdRng::seed_from_u64(seed),
            stats: SimStats::default(),
            next_id,
            subscribers: Vec::new(),
            profile: None,
        }
    }

    /// Creates a flat S&F simulation with a message-delay model; the
    /// counterpart of [`Simulation::with_delay`](crate::Simulation::with_delay).
    /// The in-flight queue becomes a preallocated ring of `max + 1`
    /// buckets, so steady-state stepping performs no queue allocation.
    ///
    /// # Panics
    ///
    /// Panics on the same conditions as [`new`](Self::new), or when the
    /// delay bound is zero.
    #[must_use]
    pub fn with_delay(
        nodes: impl IntoIterator<Item = SfNode>,
        loss: L,
        delay: DelayModel,
        seed: u64,
    ) -> Self {
        Self::new(nodes, loss, seed).delayed(delay)
    }
}

impl<L: FaultModel, B: ProtocolBehavior> FlatSimulation<L, B> {
    /// Creates a flat simulation running an arbitrary
    /// [`ProtocolBehavior`] over initial views given as id lists (filled
    /// in slot order, untagged). `config` supplies the view size `s` and
    /// — through the behavior's hooks — the bootstrap parameters.
    ///
    /// This is the protocol zoo's entry point; the S&F constructors
    /// ([`new`](FlatSimulation::new) /
    /// [`with_delay`](FlatSimulation::with_delay)) remain the byte-identical
    /// fast path for the paper's protocol.
    ///
    /// # Panics
    ///
    /// Panics if `views` is empty, contains duplicate ids, uses an id at
    /// or above `u32::MAX`, or a view wider than `s`.
    #[must_use]
    pub fn from_views(
        behavior: B,
        config: SfConfig,
        views: Vec<(NodeId, Vec<NodeId>)>,
        loss: L,
        seed: u64,
    ) -> Self {
        assert!(!views.is_empty(), "simulation needs at least one node");
        let s = config.view_size();
        let n = views.len();
        let ids: Vec<NodeId> = views.iter().map(|(id, _)| *id).collect();
        let next_id = ids.iter().map(|id| id.as_u64() + 1).max().unwrap_or(0);
        let max_raw = ids.iter().map(|id| id.index()).max().unwrap_or(0);
        assert!(
            (max_raw as u64) < ARENA_ID_LIMIT,
            "node id {max_raw} exceeds the u32 arena id space (ids must stay below u32::MAX)"
        );
        let mut index = vec![DEAD; max_raw + 1];
        let mut slot_ids = vec![EMPTY; n * s];
        let slot_flags = vec![0u8; n * s];
        let mut degree = vec![0u32; n];
        let mut live = Vec::with_capacity(n);
        for (k, (id, view)) in views.iter().enumerate() {
            assert!(index[id.index()] == DEAD, "duplicate node ids");
            assert!(view.len() <= s, "initial view exceeds the view size");
            let dense = u32::try_from(k).expect("node count exceeds the dense index space");
            index[id.index()] = dense;
            live.push(LiveRef { id: slot_word(*id), dense });
            let base = k * s;
            for (off, entry) in view.iter().enumerate() {
                slot_ids[base + off] = slot_word(*entry);
            }
            degree[k] = u32::try_from(view.len()).expect("view size exceeds u32");
        }
        let degree_hist = DegreeStats::rebuild(s, degree.iter().copied());
        Self {
            config,
            s,
            behavior,
            slot_ids,
            slot_flags,
            degree,
            degree_hist,
            node_stats: vec![NodeStats::new(); n],
            dense_id: ids,
            index,
            live,
            loss,
            delay: DelayModel::Immediate,
            now: 0,
            rounds: 0,
            ring: Vec::new(),
            in_flight_count: 0,
            drained_to: 0,
            rng: StdRng::seed_from_u64(seed),
            stats: SimStats::default(),
            next_id,
            subscribers: Vec::new(),
            profile: None,
        }
    }

    /// Installs a message-delay model on a freshly built simulation
    /// (builder-style, shared by all constructors).
    ///
    /// # Panics
    ///
    /// Panics when called after stepping began, or when the delay bound
    /// is zero.
    #[must_use]
    pub fn delayed(mut self, delay: DelayModel) -> Self {
        assert!(self.now == 0, "the delay model must be installed before stepping");
        if let DelayModel::UniformSteps { max } = delay {
            assert!(max > 0, "delay bound must be positive");
            let buckets = usize::try_from(max + 1).expect("delay bound exceeds address space");
            self.ring = vec![Vec::new(); buckets];
        }
        self.delay = delay;
        self
    }

    /// Registers a step-event observer; semantics identical to
    /// [`Simulation::subscribe`](crate::Simulation::subscribe).
    pub fn subscribe(&mut self, subscriber: Box<dyn StepSubscriber<B::Msg>>) {
        self.subscribers.push(subscriber);
    }

    /// Number of registered step-event observers.
    #[must_use]
    pub fn subscriber_count(&self) -> usize {
        self.subscribers.len()
    }

    /// Attaches hot-path profiling under the same `sim.profile.*` span
    /// names as the classic engine.
    pub fn attach_profiler(&mut self, registry: &MetricsRegistry) {
        self.profile = Some(FlatProfile {
            step: registry.histogram("sim.profile.step_ns", duration_buckets()),
            deliver: registry.histogram("sim.profile.deliver_ns", duration_buckets()),
        });
    }

    /// Reports `report` to every subscriber; out of line so the
    /// subscriber-free stepping path stays compact.
    #[cold]
    #[inline(never)]
    fn notify(&mut self, report: &StepReport<B::Msg>) {
        let mut subs = std::mem::take(&mut self.subscribers);
        for sub in &mut subs {
            sub.on_step(report);
        }
        subs.append(&mut self.subscribers);
        self.subscribers = subs;
    }

    /// The shared protocol configuration.
    #[must_use]
    pub fn config(&self) -> SfConfig {
        self.config
    }

    /// The behavior executing over the arena.
    #[must_use]
    pub fn behavior(&self) -> &B {
        &self.behavior
    }

    /// Number of live nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.live.len()
    }

    /// Whether no node is live.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.live.is_empty()
    }

    /// The ids of the live nodes (unspecified order). Owned: the live
    /// list internally packs ids next to their dense arena indices.
    #[must_use]
    pub fn live_ids(&self) -> Vec<NodeId> {
        self.live.iter().map(|entry| entry.node_id()).collect()
    }

    /// Number of messages currently in flight (always 0 under
    /// [`DelayModel::Immediate`]).
    #[must_use]
    pub fn in_flight(&self) -> usize {
        self.in_flight_count
    }

    /// Accumulated system-wide counters.
    #[must_use]
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// Resets system-wide and per-node counters (e.g. after burn-in).
    pub fn reset_stats(&mut self) {
        self.stats = SimStats::default();
        for &entry in &self.live {
            self.node_stats[entry.dense as usize].reset();
        }
    }

    /// Sum of all live nodes' per-node counters.
    #[must_use]
    pub fn aggregate_node_stats(&self) -> NodeStats {
        let mut total = NodeStats::new();
        for &entry in &self.live {
            total.merge(&self.node_stats[entry.dense as usize]);
        }
        total
    }

    /// The dense arena index of a live node, or `None` when departed.
    #[inline]
    fn dense_of(&self, id: NodeId) -> Option<usize> {
        match self.index.get(id.index()) {
            Some(&k) if k != DEAD => Some(k as usize),
            _ => None,
        }
    }

    /// Splits the engine into the disjoint parts a behavior callback
    /// needs: node `k`'s slot window, the behavior, and the RNG.
    #[inline]
    fn parts(&mut self, k: usize) -> (SlotView<'_>, &B, &mut StdRng) {
        let base = k * self.s;
        let view = SlotView {
            id: self.dense_id[k],
            ids: &mut self.slot_ids[base..base + self.s],
            flags: &mut self.slot_flags[base..base + self.s],
            degree: &mut self.degree[k],
            stats: &mut self.node_stats[k],
        };
        (view, &self.behavior, &mut self.rng)
    }

    /// A live node's outdegree, or `None` when departed.
    #[must_use]
    pub fn out_degree_of(&self, id: NodeId) -> Option<usize> {
        self.dense_of(id).map(|k| self.degree[k] as usize)
    }

    /// Reconstitutes a live node's [`LocalView`] from the arena (slot
    /// positions, ids, and dependence tags all preserved), or `None` when
    /// departed. Intended for snapshots and tests, not hot paths.
    #[must_use]
    pub fn node_view(&self, id: NodeId) -> Option<LocalView> {
        let k = self.dense_of(id)?;
        Some(self.view_at(k))
    }

    fn view_at(&self, k: usize) -> LocalView {
        let base = k * self.s;
        LocalView::from_slots(
            (base..base + self.s)
                .map(|i| {
                    (self.slot_ids[i] != EMPTY).then(|| Entry {
                        id: NodeId::new(u64::from(self.slot_ids[i])),
                        dependent: self.slot_flags[i] & FLAG_DEPENDENT != 0,
                    })
                })
                .collect(),
        )
    }

    /// Reconstitutes every live node as an [`SfNode`], in live order.
    /// Views carry over exactly; the per-node *counters* do not (the
    /// rebuilt nodes start with zeroed [`NodeStats`] — read
    /// [`aggregate_node_stats`](Self::aggregate_node_stats) from the
    /// engine instead).
    #[must_use]
    pub fn to_nodes(&self) -> Vec<SfNode> {
        self.live
            .iter()
            .map(|&entry| {
                SfNode::from_view(entry.node_id(), self.config, self.view_at(entry.dense as usize))
            })
            .collect()
    }

    /// Executes one step by a uniformly random live node (the paper's
    /// central-entity model); RNG-equivalent to
    /// [`Simulation::step`](crate::Simulation::step).
    pub fn step(&mut self) -> StepReport<B::Msg> {
        let entry = self.live[self.rng.gen_range(0..self.live.len())];
        self.step_impl(entry.node_id(), Some(entry.dense as usize))
    }

    /// Executes one step by a specific node.
    ///
    /// # Panics
    ///
    /// Panics if `initiator` is not live.
    pub fn step_node(&mut self, initiator: NodeId) -> StepReport<B::Msg> {
        self.step_impl(initiator, None)
    }

    /// The stepping core. `dense` carries the initiator's arena index
    /// when the caller already holds it (the random-initiator path reads
    /// it straight off the packed live list).
    #[inline]
    fn step_impl(&mut self, initiator: NodeId, dense: Option<usize>) -> StepReport<B::Msg> {
        let _span = self.profile.as_ref().map(|p| SpanTimer::start(&p.step));
        self.now += 1;
        if self.subscribers.is_empty() {
            self.deliver_due(None);
        } else {
            self.deliver_due_observed();
        }
        if !self.loss.node_acts(initiator, self.rounds) {
            self.stats.skipped += 1;
            let report = StepReport {
                initiator,
                event: StepEvent::Skipped,
                phase: StepPhase::Action,
                step: self.now,
            };
            if !self.subscribers.is_empty() {
                self.notify(&report);
            }
            return report;
        }
        self.stats.actions += 1;
        let k = match dense {
            Some(k) => k,
            None => self.dense_of(initiator).expect("initiator must be live"),
        };
        let config = self.config;
        let observed = !self.subscribers.is_empty();
        // Reports for reply hops triggered by an immediate delivery; they
        // causally follow the action report, so they are notified after
        // it. Empty (and unallocated) for non-replying protocols.
        let mut chained: Vec<StepReport<B::Msg>> = Vec::new();
        let deg_before = self.degree[k];
        let out = {
            let (view, behavior, rng) = self.parts(k);
            behavior.initiate(config, view, rng)
        };
        self.degree_hist.shift(deg_before, self.degree[k]);
        let event = match out {
            None => {
                self.stats.self_loops += 1;
                StepEvent::SelfLoop
            }
            Some((to, message)) => {
                let duplicated = B::duplicated(&message);
                self.stats.sent += 1;
                if duplicated {
                    self.stats.duplications += 1;
                }
                let ctx = FaultCtx { from: initiator, to, round: self.rounds };
                if self.loss.drops(ctx, &mut self.rng) {
                    self.stats.lost += 1;
                    StepEvent::Lost { to, message, duplicated }
                } else {
                    match self.delay {
                        DelayModel::Immediate => {
                            let (event, reply) = self.deliver_hop(to, message);
                            if reply.is_some() {
                                let sink = if observed { Some(&mut chained) } else { None };
                                self.process_replies(reply, sink);
                            }
                            event
                        }
                        DelayModel::UniformSteps { max } => {
                            let deliver_at = self.now + self.rng.gen_range(1..=max);
                            let bucket = (deliver_at % (max + 1)) as usize;
                            self.ring[bucket].push((deliver_at, to, message));
                            self.in_flight_count += 1;
                            StepEvent::InFlight { to, message, duplicated, deliver_at }
                        }
                    }
                }
            }
        };
        let report = StepReport { initiator, event, phase: StepPhase::Action, step: self.now };
        if observed {
            self.notify(&report);
            for chained_report in &chained {
                self.notify(chained_report);
            }
        }
        report
    }

    /// Delivers one message hop at `to` (or counts a dead letter),
    /// returning the step event and the receiver's reply, if any.
    fn deliver_hop(&mut self, to: NodeId, message: B::Msg) -> HopOutcome<B::Msg> {
        let _span = self.profile.as_ref().map(|p| SpanTimer::start(&p.deliver));
        let duplicated = B::duplicated(&message);
        match self.dense_of(to) {
            None => {
                self.stats.dead_letters += 1;
                (StepEvent::DeadLetter { to, message, duplicated }, None)
            }
            Some(k) => {
                let config = self.config;
                let deg_before = self.degree[k];
                let receipt = {
                    let (view, behavior, rng) = self.parts(k);
                    behavior.receive(config, view, message, rng)
                };
                self.degree_hist.shift(deg_before, self.degree[k]);
                if receipt.deleted {
                    self.stats.deleted += 1;
                } else {
                    self.stats.stored += 1;
                }
                (
                    StepEvent::Delivered { to, message, duplicated, deleted: receipt.deleted },
                    receipt.reply,
                )
            }
        }
    }

    /// Routes a reply chain back through the channel: a loss draw per
    /// hop, delay-model scheduling, [`MAX_REPLY_CHAIN`] hops max (excess
    /// replies are dropped uncounted). Out of line — S&F never replies.
    #[cold]
    #[inline(never)]
    fn process_replies(
        &mut self,
        mut reply: Option<(NodeId, B::Msg)>,
        mut reports: Option<&mut Vec<StepReport<B::Msg>>>,
    ) {
        let mut hops = 0;
        while let Some((to, message)) = reply.take() {
            hops += 1;
            if hops > MAX_REPLY_CHAIN {
                break;
            }
            let from = B::sender(&message);
            let duplicated = B::duplicated(&message);
            self.stats.sent += 1;
            self.stats.replies += 1;
            if duplicated {
                self.stats.duplications += 1;
            }
            let ctx = FaultCtx { from, to, round: self.rounds };
            let event = if self.loss.drops(ctx, &mut self.rng) {
                self.stats.lost += 1;
                StepEvent::Lost { to, message, duplicated }
            } else {
                match self.delay {
                    DelayModel::Immediate => {
                        let (event, next) = self.deliver_hop(to, message);
                        reply = next;
                        event
                    }
                    DelayModel::UniformSteps { max } => {
                        let deliver_at = self.now + self.rng.gen_range(1..=max);
                        let bucket = (deliver_at % (max + 1)) as usize;
                        self.ring[bucket].push((deliver_at, to, message));
                        self.in_flight_count += 1;
                        StepEvent::InFlight { to, message, duplicated, deliver_at }
                    }
                }
            };
            if let Some(out) = reports.as_deref_mut() {
                out.push(StepReport {
                    initiator: from,
                    event,
                    phase: StepPhase::Delivery,
                    step: self.now,
                });
            }
        }
    }

    /// Drains every ring bucket whose delivery time has arrived, in
    /// increasing time order (matching the classic engine's
    /// `BTreeMap::pop_first` drain). The subscriber-free path costs one
    /// counter check when nothing is in flight.
    fn deliver_due(&mut self, mut reports: Option<&mut Vec<StepReport<B::Msg>>>) {
        if self.in_flight_count == 0 {
            self.drained_to = self.now;
            return;
        }
        let len = self.ring.len() as u64;
        for t in self.drained_to + 1..=self.now {
            let bucket = (t % len) as usize;
            if self.ring[bucket].is_empty() {
                continue;
            }
            // Swap the bucket out so deliveries can mutate the engine;
            // restore the (cleared) allocation afterward for reuse.
            let mut batch = std::mem::take(&mut self.ring[bucket]);
            // Replies scheduled mid-drain can alias this residue to a
            // later lap of the ring; only entries due exactly at `t`
            // fire now (never the case for non-replying protocols).
            if batch.iter().any(|&(at, _, _)| at != t) {
                for &entry in batch.iter().filter(|&&(at, _, _)| at != t) {
                    self.ring[bucket].push(entry);
                }
                batch.retain(|&(at, _, _)| at == t);
            }
            self.in_flight_count -= batch.len();
            for &(_, to, message) in &batch {
                let (event, reply) = self.deliver_hop(to, message);
                if let Some(out) = reports.as_deref_mut() {
                    out.push(StepReport {
                        initiator: B::sender(&message),
                        event,
                        phase: StepPhase::Delivery,
                        step: self.now,
                    });
                }
                if reply.is_some() {
                    self.process_replies(reply, reports.as_deref_mut());
                }
            }
            // Keep anything scheduled into this residue while the bucket
            // was swapped out (delayed replies).
            batch.clear();
            let late = std::mem::replace(&mut self.ring[bucket], batch);
            self.ring[bucket].extend(late);
        }
        self.drained_to = self.now;
    }

    /// The subscriber path of due-message delivery; out of line like the
    /// classic engine's.
    #[cold]
    #[inline(never)]
    fn deliver_due_observed(&mut self) {
        let mut delivered = Vec::new();
        self.deliver_due(Some(&mut delivered));
        for report in &delivered {
            self.notify(report);
        }
    }

    /// Delivers every message still in flight (advancing virtual time past
    /// the last scheduled delivery), like
    /// [`Simulation::settle`](crate::Simulation::settle). Delivered
    /// messages may themselves schedule delayed replies, so the drain
    /// loops until the queue is dry (one pass for non-replying
    /// protocols).
    pub fn settle(&mut self) {
        while self.in_flight_count > 0 {
            let len = self.ring.len() as u64;
            // At rest each residue holds at most one distinct scheduled
            // time, all in `(drained_to, drained_to + len]`; find the
            // latest occupied one.
            let mut last = self.now;
            for t in self.drained_to + 1..=self.drained_to + len {
                if !self.ring[(t % len) as usize].is_empty() {
                    last = last.max(t);
                }
            }
            self.now = self.now.max(last);
            if self.subscribers.is_empty() {
                self.deliver_due(None);
            } else {
                self.deliver_due_observed();
            }
        }
    }

    /// Executes one round: `n` steps by uniformly random nodes.
    pub fn round(&mut self) {
        for _ in 0..self.live.len() {
            self.step();
        }
        self.rounds += 1;
    }

    /// Executes one round in which every live node initiates exactly once,
    /// in a fresh random order.
    pub fn round_permuted(&mut self) {
        let mut order = self.live.clone();
        order.shuffle(&mut self.rng);
        for entry in order {
            let id = entry.node_id();
            if self.dense_of(id).is_some() {
                self.step_impl(id, Some(entry.dense as usize));
            }
        }
        self.rounds += 1;
    }

    /// Completed rounds — the time base round-indexed fault models see in
    /// [`FaultCtx::round`]; mirrors
    /// [`Simulation::rounds_run`](crate::Simulation::rounds_run).
    #[must_use]
    pub fn rounds_run(&self) -> u64 {
        self.rounds
    }

    /// The fault model, for measurement-time inspection.
    #[must_use]
    pub fn fault(&self) -> &L {
        &self.loss
    }

    /// Applies `f` to the fault model; mirrors
    /// [`Simulation::update_fault`](crate::Simulation::update_fault).
    pub fn update_fault(&mut self, mut f: impl FnMut(&mut L)) {
        f(&mut self.loss);
    }

    /// Runs `rounds` central-entity rounds.
    pub fn run_rounds(&mut self, rounds: usize) {
        for _ in 0..rounds {
            self.round();
        }
    }

    /// Runs one measurement replicate: burn-in, stats reset, measurement;
    /// see [`Simulation::run_replicate`](crate::Simulation::run_replicate).
    #[must_use]
    pub fn run_replicate(mut self, burn_in: usize, measure: usize) -> Self {
        self.run_rounds(burn_in);
        self.reset_stats();
        self.run_rounds(measure);
        self
    }

    /// Adds a new node bootstrapped with ids copied from a random
    /// position in `sponsor`'s view — the sample size and the eligible
    /// (visible) slots are the behavior's choice; RNG-equivalent to
    /// [`Simulation::join_via`](crate::Simulation::join_via) under the
    /// default behavior.
    ///
    /// # Errors
    ///
    /// Returns [`JoinError::TooFewIds`] if the sponsor's view holds fewer
    /// visible ids than the behavior's seed size.
    ///
    /// # Panics
    ///
    /// Panics if `sponsor` is not live.
    pub fn join_via(&mut self, sponsor: NodeId) -> Result<NodeId, JoinError> {
        let want = self.behavior.join_seed_size(self.config);
        let k = self.dense_of(sponsor).expect("sponsor must be live");
        let base = k * self.s;
        let mut pool: Vec<NodeId> = (0..self.s)
            .filter(|&off| {
                self.slot_ids[base + off] != EMPTY && B::slot_visible(self.slot_flags[base + off])
            })
            .map(|off| NodeId::new(u64::from(self.slot_ids[base + off])))
            .collect();
        if pool.len() < want {
            return Err(JoinError::TooFewIds { supplied: pool.len(), d_l: want });
        }
        pool.shuffle(&mut self.rng);
        let bootstrap: Vec<NodeId> = pool.into_iter().take(want).collect();
        self.join_with(&bootstrap)
    }

    /// Adds a new node bootstrapped with the given ids (tagged dependent,
    /// filled in slot order — exactly like [`SfNode::with_view`] under
    /// the default behavior; other behaviors validate through
    /// [`ProtocolBehavior::validate_bootstrap`]).
    ///
    /// # Errors
    ///
    /// Returns the behavior's [`JoinError`]s, or
    /// [`JoinError::IdSpaceExhausted`] when the id allocator has reached
    /// the arena's `u32` id limit.
    pub fn join_with(&mut self, bootstrap: &[NodeId]) -> Result<NodeId, JoinError> {
        self.behavior.validate_bootstrap(self.config, bootstrap.len())?;
        if self.next_id >= ARENA_ID_LIMIT {
            return Err(JoinError::IdSpaceExhausted { next: self.next_id, limit: ARENA_ID_LIMIT });
        }
        let id = NodeId::new(self.next_id);
        self.next_id += 1;
        let k = self.dense_id.len();
        let dense = u32::try_from(k).expect("node count exceeds the dense index space");
        assert!(dense != DEAD, "dense index space exhausted");
        let base = self.slot_ids.len();
        self.slot_ids.resize(base + self.s, EMPTY);
        self.slot_flags.resize(base + self.s, 0);
        for (off, b) in bootstrap.iter().enumerate() {
            self.slot_ids[base + off] = slot_word(*b);
            self.slot_flags[base + off] = FLAG_DEPENDENT;
        }
        let deg = u32::try_from(bootstrap.len()).expect("bootstrap exceeds u32");
        self.degree.push(deg);
        self.degree_hist.add(deg);
        self.node_stats.push(NodeStats::new());
        self.dense_id.push(id);
        let raw = id.index();
        if raw >= self.index.len() {
            self.index.resize(raw + 1, DEAD);
        }
        self.index[raw] = dense;
        self.live.push(LiveRef { id: slot_word(id), dense });
        Ok(id)
    }

    /// Removes a node (leave/crash). Returns the departed node rebuilt
    /// from the arena — its view is exact, but (unlike the classic
    /// engine's return value) its per-node counters are zeroed; the
    /// engine-level [`stats`](Self::stats) are unaffected either way.
    pub fn leave(&mut self, id: NodeId) -> Option<SfNode> {
        let k = self.dense_of(id)?;
        let node = SfNode::from_view(id, self.config, self.view_at(k));
        self.index[id.index()] = DEAD;
        self.degree_hist.remove(self.degree[k]);
        let needle = slot_word(id);
        let pos = self.live.iter().position(|e| e.id == needle).expect("live list out of sync");
        self.live.swap_remove(pos);
        Some(node)
    }

    /// Total multiplicity of `id` across all live, visible slots. Ids at
    /// or above the arena's `u32` limit cannot be stored, so they count
    /// zero (the widening boundary never aliases them onto arena words).
    ///
    /// Windows are scanned two slots per u64 word; the per-slot
    /// visibility check only runs on the rare windows with a raw match.
    #[must_use]
    pub fn count_id_instances(&self, id: NodeId) -> usize {
        if id.as_u64() >= ARENA_ID_LIMIT {
            return 0;
        }
        let needle = slot_word(id);
        self.live
            .iter()
            .map(|&entry| {
                let base = (entry.dense as usize) * self.s;
                let window = &self.slot_ids[base..base + self.s];
                let raw = crate::scan::count_matches(window, needle);
                if raw == 0 {
                    return 0;
                }
                window
                    .iter()
                    .enumerate()
                    .filter(|&(off, &slot)| {
                        slot == needle && B::slot_visible(self.slot_flags[base + off])
                    })
                    .count()
            })
            .sum()
    }

    /// Streaming degree statistics — the live outdegree histogram,
    /// maintained incrementally at store/delete time (`O(s)` snapshot, no
    /// arena scan; equal to a from-scratch rebuild over the live degree
    /// ledgers at all times).
    #[must_use]
    pub fn degree_stats(&self) -> &DegreeStats {
        &self.degree_hist
    }

    /// Snapshots the membership graph (live order, like the classic
    /// engine's snapshot; tombstoned slots are invisible).
    #[must_use]
    pub fn graph(&self) -> MembershipGraph {
        MembershipGraph::from_views(self.live.iter().map(|&entry| {
            let base = (entry.dense as usize) * self.s;
            let targets: Vec<NodeId> = (0..self.s)
                .filter(|&off| {
                    self.slot_ids[base + off] != EMPTY
                        && B::slot_visible(self.slot_flags[base + off])
                })
                .map(|off| NodeId::new(u64::from(self.slot_ids[base + off])))
                .collect();
            (entry.node_id(), targets)
        }))
    }

    /// Measures spatial dependence across all live views (Property M4).
    /// Reconstitutes the nodes first, so this is a measurement-time
    /// convenience, not a hot path.
    #[must_use]
    pub fn dependence(&self) -> DependenceReport {
        let nodes = self.to_nodes();
        DependenceReport::measure(nodes.iter())
    }
}

impl<L: FaultModel, B: ProtocolBehavior> crate::traits::Engine for FlatSimulation<L, B> {
    type Msg = B::Msg;
    type Fault = L;

    fn len(&self) -> usize {
        Self::len(self)
    }

    fn live_ids(&self) -> Vec<NodeId> {
        Self::live_ids(self)
    }

    fn config(&self) -> SfConfig {
        Self::config(self)
    }

    fn stats(&self) -> SimStats {
        *Self::stats(self)
    }

    fn reset_stats(&mut self) {
        Self::reset_stats(self);
    }

    fn aggregate_node_stats(&self) -> NodeStats {
        Self::aggregate_node_stats(self)
    }

    fn round(&mut self) {
        Self::round(self);
    }

    fn rounds_run(&self) -> u64 {
        Self::rounds_run(self)
    }

    fn in_flight(&self) -> usize {
        Self::in_flight(self)
    }

    fn settle(&mut self) {
        Self::settle(self);
    }

    fn join_via(&mut self, sponsor: NodeId) -> Result<NodeId, JoinError> {
        Self::join_via(self, sponsor)
    }

    fn leave(&mut self, id: NodeId) -> bool {
        Self::leave(self, id).is_some()
    }

    fn out_degree_of(&self, id: NodeId) -> Option<usize> {
        Self::out_degree_of(self, id)
    }

    fn count_id_instances(&self, id: NodeId) -> usize {
        Self::count_id_instances(self, id)
    }

    fn degree_stats(&self) -> DegreeStats {
        Self::degree_stats(self).clone()
    }

    fn graph(&self) -> MembershipGraph {
        Self::graph(self)
    }

    fn for_each_live_view(&self, visit: &mut dyn FnMut(NodeId, &[NodeId])) {
        let mut buf: Vec<NodeId> = Vec::with_capacity(self.s);
        for &entry in &self.live {
            let base = (entry.dense as usize) * self.s;
            buf.clear();
            for off in 0..self.s {
                let id = self.slot_ids[base + off];
                if id != EMPTY && B::slot_visible(self.slot_flags[base + off]) {
                    buf.push(NodeId::new(u64::from(id)));
                }
            }
            visit(entry.node_id(), &buf);
        }
    }

    fn update_fault(&mut self, f: impl FnMut(&mut L)) {
        Self::update_fault(self, f);
    }

    fn subscribe(&mut self, subscriber: Box<dyn StepSubscriber<B::Msg>>) {
        Self::subscribe(self, subscriber);
    }
}

#[cfg(test)]
mod tests {
    use crate::engine::Simulation;
    use crate::loss::{GilbertElliott, UniformLoss};
    use crate::topology;

    use super::*;

    fn config() -> SfConfig {
        SfConfig::new(12, 4).unwrap()
    }

    fn nodes() -> Vec<SfNode> {
        topology::circulant(24, config(), 4)
    }

    /// Asserts full observable equality of the two engines: stats, live
    /// set, per-node views (slots, ids, dependence tags), aggregates.
    fn assert_engines_equal<L: FaultModel + fmt::Debug>(
        classic: &Simulation<L>,
        flat: &FlatSimulation<L>,
    ) {
        assert_eq!(classic.stats(), flat.stats(), "SimStats diverged");
        assert_eq!(classic.len(), flat.len(), "live count diverged");
        assert_eq!(classic.in_flight(), flat.in_flight(), "in-flight count diverged");
        assert_eq!(
            classic.aggregate_node_stats(),
            flat.aggregate_node_stats(),
            "aggregate NodeStats diverged"
        );
        let mut classic_live: Vec<NodeId> = classic.live_ids().to_vec();
        let mut flat_live: Vec<NodeId> = flat.live_ids().to_vec();
        assert_eq!(classic_live, flat_live, "live order diverged");
        classic_live.sort_unstable();
        flat_live.sort_unstable();
        for &id in &classic_live {
            let classic_view = classic.node(id).expect("live in classic").view().clone();
            let flat_view = flat.node_view(id).expect("live in flat");
            assert_eq!(classic_view, flat_view, "view of {id} diverged");
            assert_eq!(classic.node(id).unwrap().stats(), {
                let agg = flat.node_stats[flat.dense_of(id).unwrap()];
                &agg.clone()
            });
        }
    }

    #[test]
    fn flat_equals_classic_over_uniform_loss() {
        for seed in [1u64, 33, 2009] {
            let mut classic = Simulation::new(nodes(), UniformLoss::new(0.1).unwrap(), seed);
            let mut flat = FlatSimulation::new(nodes(), UniformLoss::new(0.1).unwrap(), seed);
            for _ in 0..40 {
                classic.round();
                flat.round();
                assert_engines_equal(&classic, &flat);
            }
        }
    }

    #[test]
    fn flat_equals_classic_over_bursty_loss() {
        let loss = || GilbertElliott::new(0.05, 0.2, 0.01, 0.5).unwrap();
        for seed in [7u64, 21] {
            let mut classic = Simulation::new(nodes(), loss(), seed);
            let mut flat = FlatSimulation::new(nodes(), loss(), seed);
            classic.run_rounds(60);
            flat.run_rounds(60);
            assert_engines_equal(&classic, &flat);
        }
    }

    #[test]
    fn flat_equals_classic_under_delay_and_settle() {
        let delay = DelayModel::UniformSteps { max: 40 };
        for seed in [3u64, 17] {
            let mut classic =
                Simulation::with_delay(nodes(), UniformLoss::new(0.05).unwrap(), delay, seed);
            let mut flat =
                FlatSimulation::with_delay(nodes(), UniformLoss::new(0.05).unwrap(), delay, seed);
            for _ in 0..1_500 {
                assert_eq!(classic.step(), flat.step(), "step reports diverged");
            }
            assert!(flat.in_flight() > 0, "no message was ever in flight");
            assert_engines_equal(&classic, &flat);
            classic.settle();
            flat.settle();
            assert_eq!(flat.in_flight(), 0);
            assert_engines_equal(&classic, &flat);
        }
    }

    #[test]
    fn flat_equals_classic_under_churn() {
        let mut classic = Simulation::new(nodes(), UniformLoss::new(0.02).unwrap(), 11);
        let mut flat = FlatSimulation::new(nodes(), UniformLoss::new(0.02).unwrap(), 11);
        classic.run_rounds(10);
        flat.run_rounds(10);
        for round in 0..30 {
            let victim = classic.live_ids()[round % classic.len()];
            assert!(classic.leave(victim).is_some());
            assert!(flat.leave(victim).is_some());
            let sponsor = classic.live_ids()[0];
            let a = classic.join_via(sponsor).unwrap();
            let b = flat.join_via(sponsor).unwrap();
            assert_eq!(a, b, "joiner ids diverged");
            classic.round();
            flat.round();
            assert_engines_equal(&classic, &flat);
        }
        assert!(classic.stats().dead_letters > 0, "churn should produce dead letters");
    }

    #[test]
    fn flat_equals_classic_in_permuted_rounds() {
        let mut classic = Simulation::new(nodes(), UniformLoss::new(0.05).unwrap(), 13);
        let mut flat = FlatSimulation::new(nodes(), UniformLoss::new(0.05).unwrap(), 13);
        for _ in 0..20 {
            classic.round_permuted();
            flat.round_permuted();
        }
        assert_engines_equal(&classic, &flat);
        assert_eq!(flat.aggregate_node_stats().initiated, 20 * 24);
    }

    #[test]
    fn flat_report_stream_matches_classic() {
        let mut classic = Simulation::new(nodes(), UniformLoss::new(0.1).unwrap(), 5);
        let mut flat = FlatSimulation::new(nodes(), UniformLoss::new(0.1).unwrap(), 5);
        for _ in 0..600 {
            assert_eq!(classic.step(), flat.step());
        }
    }

    #[test]
    fn flat_subscriber_sees_identical_reports() {
        use std::sync::{Arc, Mutex};
        let collect = |steps: usize| {
            let log: Arc<Mutex<Vec<StepReport>>> = Arc::new(Mutex::new(Vec::new()));
            let sink = Arc::clone(&log);
            let mut sim = FlatSimulation::with_delay(
                nodes(),
                UniformLoss::new(0.05).unwrap(),
                DelayModel::UniformSteps { max: 20 },
                23,
            );
            sim.subscribe(Box::new(move |r: &StepReport| sink.lock().unwrap().push(*r)));
            for _ in 0..steps {
                sim.step();
            }
            sim.settle();
            drop(sim);
            Arc::try_unwrap(log).map_err(|_| ()).unwrap().into_inner().unwrap()
        };
        let classic_log = {
            let log: Arc<Mutex<Vec<StepReport>>> = Arc::new(Mutex::new(Vec::new()));
            let sink = Arc::clone(&log);
            let mut sim = Simulation::with_delay(
                nodes(),
                UniformLoss::new(0.05).unwrap(),
                DelayModel::UniformSteps { max: 20 },
                23,
            );
            sim.subscribe(Box::new(move |r: &StepReport| sink.lock().unwrap().push(*r)));
            for _ in 0..400 {
                sim.step();
            }
            sim.settle();
            drop(sim);
            Arc::try_unwrap(log).map_err(|_| ()).unwrap().into_inner().unwrap()
        };
        assert_eq!(collect(400), classic_log, "observed report streams diverged");
    }

    #[test]
    fn delayed_messages_conserve_the_ledger() {
        let mut sim = FlatSimulation::with_delay(
            nodes(),
            UniformLoss::new(0.05).unwrap(),
            DelayModel::UniformSteps { max: 40 },
            3,
        );
        for _ in 0..2_000 {
            sim.step();
        }
        let s = sim.stats();
        assert_eq!(
            s.sent,
            s.lost + s.dead_letters + s.stored + s.deleted + sim.in_flight() as u64,
            "message ledger out of balance"
        );
        sim.settle();
        assert_eq!(sim.in_flight(), 0);
        let s = sim.stats();
        assert_eq!(s.sent, s.lost + s.dead_letters + s.stored + s.deleted);
    }

    #[test]
    fn flat_simulation_is_send_and_replicates() {
        fn assert_send<T: Send>(_: &T) {}
        let sim = FlatSimulation::new(nodes(), UniformLoss::none(), 1);
        assert_send(&sim);
        let sim = sim.run_replicate(5, 5);
        assert_eq!(sim.stats().actions, 5 * 24);
    }

    #[test]
    fn clones_do_not_carry_subscribers() {
        let mut sim = FlatSimulation::new(nodes(), UniformLoss::none(), 1);
        sim.subscribe(Box::new(|_: &StepReport| {}));
        assert_eq!(sim.subscriber_count(), 1);
        assert_eq!(sim.clone().subscriber_count(), 0);
    }

    #[test]
    fn attached_profiler_records_spans() {
        let registry = MetricsRegistry::new();
        let mut sim = FlatSimulation::new(nodes(), UniformLoss::none(), 31);
        sim.attach_profiler(&registry);
        sim.run_rounds(2);
        let hist = registry.histogram("sim.profile.step_ns", duration_buckets());
        assert_eq!(hist.count(), sim.stats().actions);
    }

    #[test]
    fn to_nodes_roundtrips_through_the_classic_engine() {
        let mut flat = FlatSimulation::new(nodes(), UniformLoss::new(0.1).unwrap(), 77);
        flat.run_rounds(25);
        // A classic engine rebuilt from the arena continues in lockstep
        // with a flat engine given the same continuation seed.
        let mut classic = Simulation::new(flat.to_nodes(), UniformLoss::new(0.1).unwrap(), 99);
        let mut flat2 = FlatSimulation::new(flat.to_nodes(), UniformLoss::new(0.1).unwrap(), 99);
        for _ in 0..200 {
            assert_eq!(classic.step(), flat2.step());
        }
        assert_engines_equal(&classic, &flat2);
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn rejects_empty_node_set() {
        let _ = FlatSimulation::new(Vec::new(), UniformLoss::none(), 0);
    }

    #[test]
    #[should_panic(expected = "delay bound")]
    fn zero_delay_bound_is_rejected() {
        let _ = FlatSimulation::with_delay(
            nodes(),
            UniformLoss::none(),
            DelayModel::UniformSteps { max: 0 },
            0,
        );
    }

    #[test]
    fn flat_equals_classic_under_scheduled_faults() {
        use crate::fault::{
            NodeCapacity, PerLinkLoss, PhaseFault, RegionalPartition, ScheduledFault, VictimLoss,
        };
        let schedule = || {
            let mut victims = VictimLoss::new(0.9, 0.01).unwrap();
            victims.set_victims(&[NodeId::new(1), NodeId::new(2)]);
            ScheduledFault::new(vec![
                (8, PhaseFault::Uniform(UniformLoss::new(0.05).unwrap())),
                (16, PhaseFault::Partition(RegionalPartition::new(2, 8, 8, 1.0, 0.05).unwrap())),
                (24, PhaseFault::Capacity(NodeCapacity::new(5, 0.4, 3, 0.02).unwrap())),
                (32, PhaseFault::PerLink(PerLinkLoss::new(9, 0.3, 0.0, 1.0).unwrap())),
                (u64::MAX, PhaseFault::Victims(victims)),
            ])
        };
        for seed in [3u64, 2009] {
            let mut classic = Simulation::new(nodes(), schedule(), seed);
            let mut flat = FlatSimulation::new(nodes(), schedule(), seed);
            for _ in 0..40 {
                classic.round();
                flat.round();
                assert_engines_equal(&classic, &flat);
            }
            let s = *flat.stats();
            assert!(s.skipped > 0, "capacity phase never skipped a step");
            assert!(s.lost > 0, "schedule never lost a message");
            assert_eq!(classic.rounds_run(), flat.rounds_run());
        }
    }

    #[test]
    fn join_with_validates_like_the_protocol() {
        let mut sim = FlatSimulation::new(nodes(), UniformLoss::none(), 1);
        // Same checks, same order, same payloads as `SfNode::with_view`.
        let two: Vec<NodeId> = (0..2).map(NodeId::new).collect();
        assert_eq!(sim.join_with(&two), Err(JoinError::TooFewIds { supplied: 2, d_l: 4 }));
        let five: Vec<NodeId> = (0..5).map(NodeId::new).collect();
        assert_eq!(sim.join_with(&five), Err(JoinError::OddIdCount { supplied: 5 }));
        let too_many: Vec<NodeId> = (0..14).map(NodeId::new).collect();
        assert_eq!(sim.join_with(&too_many), Err(JoinError::TooManyIds { supplied: 14, s: 12 }));
        assert!(sim.join_with(&(0..4).map(NodeId::new).collect::<Vec<_>>()).is_ok());
    }

    #[test]
    fn from_views_builds_a_runnable_zoo_arena() {
        let n = 12u64;
        let views: Vec<(NodeId, Vec<NodeId>)> = (0..n)
            .map(|i| (NodeId::new(i), vec![NodeId::new((i + 1) % n), NodeId::new((i + 2) % n)]))
            .collect();
        // S&F itself through the generic constructor: d_l = 4 > initial
        // degree 2, so every node starts in the duplication regime.
        let mut sim =
            FlatSimulation::from_views(SfBehavior, config(), views, UniformLoss::none(), 9);
        assert_eq!(sim.len(), 12);
        assert_eq!(sim.out_degree_of(NodeId::new(0)), Some(2));
        sim.run_rounds(20);
        let s = sim.stats();
        assert_eq!(s.sent, s.lost + s.dead_letters + s.stored + s.deleted);
        assert_eq!(s.replies, 0, "S&F never replies");
        assert!(sim.graph().is_weakly_connected());
    }

    #[test]
    fn join_is_rejected_once_the_u32_id_space_is_exhausted() {
        let mut sim = FlatSimulation::new(nodes(), UniformLoss::none(), 1);
        // Reaching the limit organically needs ~4.3 billion joins (and a
        // 17 GB id → dense table); the guard only reads the counter, so
        // pin it at the boundary directly.
        sim.next_id = ARENA_ID_LIMIT;
        let bootstrap: Vec<NodeId> = (0..4).map(NodeId::new).collect();
        assert_eq!(
            sim.join_with(&bootstrap),
            Err(JoinError::IdSpaceExhausted { next: ARENA_ID_LIMIT, limit: ARENA_ID_LIMIT })
        );
        assert_eq!(sim.len(), 24, "a rejected join must not touch the arena");
        assert_eq!(sim.degree_stats().live_nodes(), 24);
    }

    #[test]
    #[should_panic(expected = "exceeds the u32 arena id space")]
    fn construction_rejects_ids_at_the_slot_sentinel() {
        // `u32::MAX` is the empty-slot sentinel; a node with that id
        // would be indistinguishable from an empty slot.
        let node = SfNode::new(NodeId::new(u64::from(u32::MAX)), config());
        let _ = FlatSimulation::new(vec![node], UniformLoss::none(), 1);
    }

    #[test]
    fn queries_beyond_the_widening_boundary_never_alias() {
        let sim = FlatSimulation::new(nodes(), UniformLoss::none(), 1);
        // Congruent to a live id modulo 2^32 — a truncating comparison
        // would alias it onto node 3.
        let wide = NodeId::new((1u64 << 32) + 3);
        assert_eq!(sim.count_id_instances(wide), 0);
        assert_eq!(sim.out_degree_of(wide), None);
        assert!(sim.count_id_instances(NodeId::new(3)) > 0, "node 3 is referenced in the ring");
        assert_eq!(sim.out_degree_of(NodeId::new(3)), Some(4));
    }
}
