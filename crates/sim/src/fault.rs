//! Adversarial fault models beyond i.i.d. loss.
//!
//! The paper's analysis assumes *uniform i.i.d. message loss*
//! (Section 4.1); [`LossModel`] captures exactly that surface plus the two
//! mild nonuniform ablations ([`GilbertElliott`] and
//! [`TargetedLoss`](crate::TargetedLoss)). This module generalizes the
//! surface to **correlated, time-varying, and structural** faults — the
//! regimes where Obs 5.1 and the Lemma 6.10 decay bounds were never
//! proven to hold, and where the scenario harness in `sandf-bench` probes
//! whether they survive anyway:
//!
//! * [`RegionalPartition`] — the overlay splits into `r` regions for a
//!   window of rounds; cross-region messages are severed, then the
//!   partition heals;
//! * [`PerLinkLoss`] — loss is correlated *per directed link*: a fixed
//!   fraction of links is persistently bad, the rest persistently good
//!   (spatial correlation, unlike the temporal bursts of Gilbert–Elliott);
//! * [`NodeCapacity`] — heterogeneous node speeds: a fraction of nodes is
//!   slow and initiates only every `k`-th round (the fault is on *actions*,
//!   not messages);
//! * [`VictimLoss`] — targeted inbound loss on an explicit victim set
//!   (the harness points it at the highest-indegree nodes, the overlay's
//!   hubs).
//!
//! All of them implement the [`FaultModel`] trait, which every simulation
//! engine ([`Simulation`](crate::Simulation),
//! [`FlatSimulation`](crate::FlatSimulation),
//! [`ParSimulation`](crate::ParSimulation)) is now bound by. A blanket
//! impl lifts every [`LossModel`] into a [`FaultModel`], so existing code
//! and seeds are unchanged: a lifted model consumes the exact same RNG
//! draws as before.
//!
//! [`ScheduledFault`] composes per-phase models ([`PhaseFault`]) into a
//! round-indexed schedule — the compiled form of the declarative scenario
//! specs in `sandf_bench::scenario`.
//!
//! # Determinism
//!
//! Models that need per-link or per-node randomness (`PerLinkLoss`,
//! `NodeCapacity`) derive it *statelessly* by hashing `(salt, ids)` with
//! FNV-1a instead of drawing from the engine RNG, so a decision depends
//! only on the identities involved — never on evaluation order. That is
//! what keeps the par engine's sharded execution byte-identical for any
//! thread count under every model here.

use rand::Rng;
use sandf_core::NodeId;

use crate::loss::{GilbertElliott, LossModel, LossRateError, UniformLoss};

/// 64-bit FNV-1a offset basis (the same constants as the par engine's
/// stream derivation and the sweep executor's replicate seeds).
const FNV_OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;

/// 64-bit FNV-1a prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over a fixed little-endian layout of up to three words.
#[inline]
fn fnv1a64_words(words: &[u64]) -> u64 {
    let mut hash = FNV_OFFSET_BASIS;
    for word in words {
        for byte in word.to_le_bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(FNV_PRIME);
        }
    }
    hash
}

/// Maps a hash to a uniform `[0, 1)` fraction (53-bit mantissa).
#[inline]
fn hash_fraction(hash: u64) -> f64 {
    (hash >> 11) as f64 / (1u64 << 53) as f64
}

/// Validates a probability, mirroring the [`LossModel`] constructors.
fn check_rate(rate: f64) -> Result<f64, LossRateError> {
    if !(0.0..=1.0).contains(&rate) || !rate.is_finite() {
        return Err(LossRateError { rate });
    }
    Ok(rate)
}

/// The identities of one message send, as seen by a [`FaultModel`].
///
/// `round` is the number of *completed* rounds when the send happens (the
/// classic and flat engines count [`round`](crate::Simulation::round) /
/// [`round_permuted`](crate::Simulation::round_permuted) calls; the par
/// engine counts its three-phase rounds), so schedules expressed in rounds
/// mean the same thing on all three engines.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct FaultCtx {
    /// The sending node.
    pub from: NodeId,
    /// The intended receiver.
    pub to: NodeId,
    /// Rounds completed when the message was sent.
    pub round: u64,
}

/// The fault surface shared by all three simulation engines.
///
/// A fault model decides, per message, whether the network [`drops`] it —
/// given the full send context ([`FaultCtx`]: sender, receiver, round) —
/// and, per `(node, round)`, whether a node gets to act at all
/// ([`node_acts`], the capacity gate). Every [`LossModel`] is a
/// `FaultModel` via the blanket impl (destination-only loss, every node
/// always acts), so the trait is a strict generalization.
///
/// Implementations may keep state, but models intended for the par engine
/// should derive per-link/per-node decisions statelessly from the context
/// (see the module docs) — the engine clones one channel per sender, so
/// order-dependent state is only locally consistent.
///
/// [`drops`]: FaultModel::drops
/// [`node_acts`]: FaultModel::node_acts
pub trait FaultModel {
    /// Returns `true` if the message described by `ctx` is lost.
    fn drops<R: Rng + ?Sized>(&mut self, ctx: FaultCtx, rng: &mut R) -> bool;

    /// Whether `node` initiates an action in `round`. A `false` makes the
    /// engine skip the node's step entirely (counted in
    /// [`SimStats::skipped`](crate::SimStats::skipped), reported as
    /// [`StepEvent::Skipped`](crate::StepEvent::Skipped)); the default
    /// capacity gate is always open.
    fn node_acts(&self, _node: NodeId, _round: u64) -> bool {
        true
    }

    /// The long-run average message-loss rate, for analyses needing a
    /// scalar `ℓ` (e.g. the §6.2 degree-MC prediction). Time-varying
    /// models report their *final* (open-ended) regime.
    fn average_rate(&self) -> f64;
}

/// Every [`LossModel`] is a [`FaultModel`]: loss depends only on the
/// destination and the capacity gate is always open. Lifted models consume
/// exactly the RNG draws of the underlying `is_lost_to`, which is what
/// keeps pre-fault seeds byte-identical.
impl<T: LossModel> FaultModel for T {
    fn drops<R: Rng + ?Sized>(&mut self, ctx: FaultCtx, rng: &mut R) -> bool {
        self.is_lost_to(ctx.to, rng)
    }

    fn average_rate(&self) -> f64 {
        LossModel::average_rate(self)
    }
}

/// A regional partition for a window of rounds, then healing.
///
/// Nodes are split into `regions` regions by id (`id mod regions` — the
/// in-repo topologies assign contiguous ids, so regions are balanced).
/// During rounds `[start, start + duration)` every cross-region message is
/// lost with probability `sever` (1.0 = a hard partition); within a region
/// — and in every round outside the window — messages see the `base`
/// rate. This is the classic correlated failure the paper's i.i.d.
/// assumption excludes: losses are perfectly correlated with overlay
/// structure for the whole window.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct RegionalPartition {
    regions: u64,
    start: u64,
    duration: u64,
    sever: f64,
    base: f64,
}

impl RegionalPartition {
    /// Creates a partition of `regions` regions severed at rate `sever`
    /// during rounds `[start, start + duration)`, over a `base` uniform
    /// rate.
    ///
    /// # Errors
    ///
    /// Returns [`LossRateError`] for `sever` or `base` outside `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `regions < 2` (a one-region partition severs nothing).
    pub fn new(
        regions: u64,
        start: u64,
        duration: u64,
        sever: f64,
        base: f64,
    ) -> Result<Self, LossRateError> {
        assert!(regions >= 2, "a partition needs at least two regions");
        Ok(Self { regions, start, duration, sever: check_rate(sever)?, base: check_rate(base)? })
    }

    /// The region of a node.
    #[must_use]
    pub fn region_of(&self, node: NodeId) -> u64 {
        node.as_u64() % self.regions
    }

    /// Whether the partition window covers `round`.
    #[must_use]
    pub fn active_in(&self, round: u64) -> bool {
        round >= self.start && round - self.start < self.duration
    }
}

impl FaultModel for RegionalPartition {
    fn drops<R: Rng + ?Sized>(&mut self, ctx: FaultCtx, rng: &mut R) -> bool {
        let rate =
            if self.active_in(ctx.round) && self.region_of(ctx.from) != self.region_of(ctx.to) {
                self.sever
            } else {
                self.base
            };
        rate > 0.0 && rng.gen_bool(rate)
    }

    fn average_rate(&self) -> f64 {
        // The healed (open-ended) regime.
        self.base
    }
}

/// Spatially correlated loss: every *directed link* has a persistent
/// quality, drawn once from a hash of `(salt, from, to)`. A `bad_fraction`
/// of links loses at `bad_rate`; the rest at `good_rate`.
///
/// Unlike [`GilbertElliott`] (temporal correlation on a sender's channel),
/// the correlation here is spatial and permanent — the same pair of nodes
/// always sees the same link quality, independent of evaluation order,
/// which keeps the par engine thread-count-independent.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct PerLinkLoss {
    salt: u64,
    bad_fraction: f64,
    good_rate: f64,
    bad_rate: f64,
}

impl PerLinkLoss {
    /// Creates a per-link model; `salt` decorrelates the link map across
    /// replicates (pass the replicate seed).
    ///
    /// # Errors
    ///
    /// Returns [`LossRateError`] for any probability outside `[0, 1]`.
    pub fn new(
        salt: u64,
        bad_fraction: f64,
        good_rate: f64,
        bad_rate: f64,
    ) -> Result<Self, LossRateError> {
        Ok(Self {
            salt,
            bad_fraction: check_rate(bad_fraction)?,
            good_rate: check_rate(good_rate)?,
            bad_rate: check_rate(bad_rate)?,
        })
    }

    /// Whether the directed link `from → to` is a bad one.
    #[must_use]
    pub fn link_is_bad(&self, from: NodeId, to: NodeId) -> bool {
        hash_fraction(fnv1a64_words(&[self.salt, from.as_u64(), to.as_u64()])) < self.bad_fraction
    }
}

impl FaultModel for PerLinkLoss {
    fn drops<R: Rng + ?Sized>(&mut self, ctx: FaultCtx, rng: &mut R) -> bool {
        let rate = if self.link_is_bad(ctx.from, ctx.to) { self.bad_rate } else { self.good_rate };
        rate > 0.0 && rng.gen_bool(rate)
    }

    fn average_rate(&self) -> f64 {
        self.bad_fraction * self.bad_rate + (1.0 - self.bad_fraction) * self.good_rate
    }
}

/// Heterogeneous node capacities: a `slow_fraction` of nodes (chosen by a
/// hash of `(salt, id)`) initiates only every `period`-th round, at a
/// per-node phase offset so the slow cohort doesn't fire in lockstep.
/// Messages additionally see a `base` uniform loss rate.
///
/// This faults the paper's *round* assumption itself — Section 6.5 defines
/// a round as every node initiating once — rather than the message
/// channel: slow nodes still receive at full speed, so their indegree
/// keeps growing while their outdegree refresh slows down.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct NodeCapacity {
    salt: u64,
    slow_fraction: f64,
    period: u64,
    base: f64,
}

impl NodeCapacity {
    /// Creates a capacity model: a `slow_fraction` of nodes acts once per
    /// `period` rounds, over a `base` uniform loss rate.
    ///
    /// # Errors
    ///
    /// Returns [`LossRateError`] for `slow_fraction` or `base` outside
    /// `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `period < 2` (slow nodes with period 1 are not slow).
    pub fn new(
        salt: u64,
        slow_fraction: f64,
        period: u64,
        base: f64,
    ) -> Result<Self, LossRateError> {
        assert!(period >= 2, "capacity period must be at least 2");
        Ok(Self {
            salt,
            slow_fraction: check_rate(slow_fraction)?,
            period,
            base: check_rate(base)?,
        })
    }

    /// Whether `node` belongs to the slow cohort.
    #[must_use]
    pub fn is_slow(&self, node: NodeId) -> bool {
        hash_fraction(fnv1a64_words(&[self.salt, node.as_u64()])) < self.slow_fraction
    }
}

impl FaultModel for NodeCapacity {
    fn drops<R: Rng + ?Sized>(&mut self, ctx: FaultCtx, rng: &mut R) -> bool {
        let _ = ctx;
        self.base > 0.0 && rng.gen_bool(self.base)
    }

    fn node_acts(&self, node: NodeId, round: u64) -> bool {
        if !self.is_slow(node) {
            return true;
        }
        // A per-node phase offset, so slow nodes don't all act in the same
        // round.
        let phase = fnv1a64_words(&[self.salt, node.as_u64(), 1]) % self.period;
        round % self.period == phase
    }

    fn average_rate(&self) -> f64 {
        self.base
    }
}

/// Targeted inbound loss on an explicit victim set, over a `base` rate.
///
/// The scenario harness aims this at the overlay's highest-indegree nodes
/// — the hubs whose loss the degree-MC prediction is least equipped to
/// absorb. Unlike [`TargetedLoss`](crate::TargetedLoss) (one off-rate per
/// node, linear scan), the victim set is a sorted slab checked by binary
/// search and replaceable wholesale mid-run via
/// [`set_victims`](Self::set_victims) — the shape the engines'
/// `update_fault` hook needs.
#[derive(Clone, PartialEq, Debug)]
pub struct VictimLoss {
    /// Sorted, deduplicated victim ids.
    victims: Vec<NodeId>,
    victim_rate: f64,
    base: f64,
}

impl VictimLoss {
    /// Creates a targeted model with an empty victim set.
    ///
    /// # Errors
    ///
    /// Returns [`LossRateError`] for a rate outside `[0, 1]`.
    pub fn new(victim_rate: f64, base: f64) -> Result<Self, LossRateError> {
        Ok(Self {
            victims: Vec::new(),
            victim_rate: check_rate(victim_rate)?,
            base: check_rate(base)?,
        })
    }

    /// Replaces the victim set (sorted and deduplicated internally, so the
    /// caller's ordering does not affect determinism).
    pub fn set_victims(&mut self, victims: &[NodeId]) {
        self.victims = victims.to_vec();
        self.victims.sort_unstable();
        self.victims.dedup();
    }

    /// The current victim set, sorted.
    #[must_use]
    pub fn victims(&self) -> &[NodeId] {
        &self.victims
    }

    /// Whether messages to `node` see the victim rate.
    #[must_use]
    pub fn is_victim(&self, node: NodeId) -> bool {
        self.victims.binary_search(&node).is_ok()
    }
}

impl FaultModel for VictimLoss {
    fn drops<R: Rng + ?Sized>(&mut self, ctx: FaultCtx, rng: &mut R) -> bool {
        let rate = if self.is_victim(ctx.to) { self.victim_rate } else { self.base };
        rate > 0.0 && rng.gen_bool(rate)
    }

    fn average_rate(&self) -> f64 {
        self.base
    }
}

/// One phase's fault model — the closed sum of every model a scenario
/// phase can name, so a compiled schedule is a plain `Clone + Send` value
/// usable as any engine's `L` parameter.
#[derive(Clone, PartialEq, Debug)]
pub enum PhaseFault {
    /// Uniform i.i.d. loss (the paper's model).
    Uniform(UniformLoss),
    /// Bursty per-sender loss.
    Bursty(GilbertElliott),
    /// Regional partition-then-heal.
    Partition(RegionalPartition),
    /// Persistent per-link loss.
    PerLink(PerLinkLoss),
    /// Heterogeneous node capacities.
    Capacity(NodeCapacity),
    /// Targeted inbound loss on a victim set.
    Victims(VictimLoss),
}

impl FaultModel for PhaseFault {
    fn drops<R: Rng + ?Sized>(&mut self, ctx: FaultCtx, rng: &mut R) -> bool {
        match self {
            Self::Uniform(m) => m.drops(ctx, rng),
            Self::Bursty(m) => m.drops(ctx, rng),
            Self::Partition(m) => m.drops(ctx, rng),
            Self::PerLink(m) => m.drops(ctx, rng),
            Self::Capacity(m) => m.drops(ctx, rng),
            Self::Victims(m) => m.drops(ctx, rng),
        }
    }

    fn node_acts(&self, node: NodeId, round: u64) -> bool {
        match self {
            Self::Capacity(m) => m.node_acts(node, round),
            _ => true,
        }
    }

    fn average_rate(&self) -> f64 {
        match self {
            Self::Uniform(m) => FaultModel::average_rate(m),
            Self::Bursty(m) => FaultModel::average_rate(m),
            Self::Partition(m) => m.average_rate(),
            Self::PerLink(m) => m.average_rate(),
            Self::Capacity(m) => m.average_rate(),
            Self::Victims(m) => m.average_rate(),
        }
    }
}

/// A round-indexed schedule of [`PhaseFault`]s — the compiled form of a
/// declarative scenario: phase `i` governs rounds
/// `[end[i-1], end[i])`, and the last phase is open-ended.
///
/// The schedule itself is a [`FaultModel`], so it plugs into any engine
/// unchanged; per-message dispatch is a linear scan over a handful of
/// phases.
#[derive(Clone, PartialEq, Debug)]
pub struct ScheduledFault {
    /// `(end_round_exclusive, fault)`, with strictly increasing ends; the
    /// final entry's end is ignored (open-ended).
    phases: Vec<(u64, PhaseFault)>,
}

impl ScheduledFault {
    /// Builds a schedule from `(end_round_exclusive, fault)` phases.
    ///
    /// # Panics
    ///
    /// Panics if `phases` is empty or the ends are not strictly
    /// increasing.
    #[must_use]
    pub fn new(phases: Vec<(u64, PhaseFault)>) -> Self {
        assert!(!phases.is_empty(), "a schedule needs at least one phase");
        assert!(
            phases.windows(2).all(|w| w[0].0 < w[1].0),
            "phase end rounds must be strictly increasing"
        );
        Self { phases }
    }

    /// A single-phase schedule.
    #[must_use]
    pub fn constant(fault: PhaseFault) -> Self {
        Self { phases: vec![(u64::MAX, fault)] }
    }

    /// The phase index governing `round` (the last phase is open-ended).
    #[must_use]
    pub fn phase_index(&self, round: u64) -> usize {
        self.phases.iter().position(|&(end, _)| round < end).unwrap_or(self.phases.len() - 1)
    }

    /// The phases as `(end_round_exclusive, fault)` slices.
    #[must_use]
    pub fn phases(&self) -> &[(u64, PhaseFault)] {
        &self.phases
    }

    /// Mutable access to one phase's fault (e.g. to aim a
    /// [`VictimLoss`] mid-run).
    pub fn phase_mut(&mut self, index: usize) -> &mut PhaseFault {
        &mut self.phases[index].1
    }

    /// The long-run loss rate at `round` — the governing phase's rate.
    #[must_use]
    pub fn rate_at(&self, round: u64) -> f64 {
        self.phases[self.phase_index(round)].1.average_rate()
    }
}

impl FaultModel for ScheduledFault {
    fn drops<R: Rng + ?Sized>(&mut self, ctx: FaultCtx, rng: &mut R) -> bool {
        let idx = self.phase_index(ctx.round);
        self.phases[idx].1.drops(ctx, rng)
    }

    fn node_acts(&self, node: NodeId, round: u64) -> bool {
        self.phases[self.phase_index(round)].1.node_acts(node, round)
    }

    fn average_rate(&self) -> f64 {
        // The open-ended final regime, matching RegionalPartition's
        // convention.
        self.phases.last().expect("schedule is nonempty").1.average_rate()
    }
}

#[cfg(test)]
mod tests {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    use super::*;

    fn ctx(from: u64, to: u64, round: u64) -> FaultCtx {
        FaultCtx { from: NodeId::new(from), to: NodeId::new(to), round }
    }

    #[test]
    fn lifted_loss_model_matches_is_lost_to() {
        let mut lifted = UniformLoss::new(0.3).unwrap();
        let mut raw = UniformLoss::new(0.3).unwrap();
        let mut ra = StdRng::seed_from_u64(5);
        let mut rb = StdRng::seed_from_u64(5);
        for k in 0..2_000 {
            assert_eq!(
                lifted.drops(ctx(1, k, 0), &mut ra),
                raw.is_lost_to(NodeId::new(k), &mut rb),
                "blanket impl must consume identical draws"
            );
        }
        assert!(lifted.node_acts(NodeId::new(0), 0));
    }

    #[test]
    fn partition_severs_only_cross_region_in_window() {
        let mut p = RegionalPartition::new(2, 10, 5, 1.0, 0.0).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        // In-window, cross-region (even → odd): always lost.
        assert!((0..50).all(|_| p.drops(ctx(0, 1, 12), &mut rng)));
        // In-window, same region: never lost.
        assert!((0..50).all(|_| !p.drops(ctx(0, 2, 12), &mut rng)));
        // Before and after the window: healed.
        assert!((0..50).all(|_| !p.drops(ctx(0, 1, 9), &mut rng)));
        assert!((0..50).all(|_| !p.drops(ctx(0, 1, 15), &mut rng)));
        assert!(p.active_in(10) && p.active_in(14) && !p.active_in(15));
        assert_eq!(p.average_rate(), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least two regions")]
    fn partition_rejects_one_region() {
        let _ = RegionalPartition::new(1, 0, 1, 1.0, 0.0);
    }

    #[test]
    fn per_link_quality_is_persistent_and_salted() {
        let model = PerLinkLoss::new(42, 0.3, 0.0, 1.0).unwrap();
        // Persistence: the same link always answers the same.
        for from in 0..20 {
            for to in 0..20 {
                let a = model.link_is_bad(NodeId::new(from), NodeId::new(to));
                let b = model.link_is_bad(NodeId::new(from), NodeId::new(to));
                assert_eq!(a, b);
            }
        }
        // Roughly the configured fraction of links is bad.
        let bad = (0..100u64)
            .flat_map(|f| (0..100u64).map(move |t| (f, t)))
            .filter(|&(f, t)| model.link_is_bad(NodeId::new(f), NodeId::new(t)))
            .count();
        let frac = bad as f64 / 10_000.0;
        assert!((frac - 0.3).abs() < 0.03, "bad-link fraction {frac}");
        // A different salt yields a different link map.
        let other = PerLinkLoss::new(43, 0.3, 0.0, 1.0).unwrap();
        let differs = (0..100u64).any(|t| {
            model.link_is_bad(NodeId::new(0), NodeId::new(t))
                != other.link_is_bad(NodeId::new(0), NodeId::new(t))
        });
        assert!(differs, "salt must decorrelate link maps");
    }

    #[test]
    fn per_link_drops_follow_link_quality() {
        let mut model = PerLinkLoss::new(7, 0.5, 0.0, 1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        for from in 0..30u64 {
            for to in 0..30u64 {
                let lost = model.drops(ctx(from, to, 0), &mut rng);
                assert_eq!(lost, model.link_is_bad(NodeId::new(from), NodeId::new(to)));
            }
        }
        let expected = 0.5;
        assert!((FaultModel::average_rate(&model) - expected).abs() < 1e-12);
    }

    #[test]
    fn capacity_gates_slow_nodes_once_per_period() {
        let model = NodeCapacity::new(11, 0.5, 4, 0.0).unwrap();
        let slow: Vec<NodeId> = (0..200).map(NodeId::new).filter(|&n| model.is_slow(n)).collect();
        let fast: Vec<NodeId> = (0..200).map(NodeId::new).filter(|&n| !model.is_slow(n)).collect();
        assert!(slow.len() > 50 && fast.len() > 50, "both cohorts populated");
        for &node in fast.iter().take(20) {
            assert!((0..16).all(|r| model.node_acts(node, r)));
        }
        for &node in slow.iter().take(20) {
            let acting: Vec<u64> = (0..16).filter(|&r| model.node_acts(node, r)).collect();
            assert_eq!(acting.len(), 4, "slow node must act once per period");
            assert!(acting.windows(2).all(|w| w[1] - w[0] == 4));
        }
        // Phases are spread: not every slow node acts in the same round.
        let phases: std::collections::HashSet<u64> = slow
            .iter()
            .take(50)
            .map(|&n| (0..4).find(|&r| model.node_acts(n, r)).unwrap())
            .collect();
        assert!(phases.len() > 1, "slow phases must be spread");
    }

    #[test]
    #[should_panic(expected = "period must be at least 2")]
    fn capacity_rejects_period_one() {
        let _ = NodeCapacity::new(0, 0.5, 1, 0.0);
    }

    #[test]
    fn victim_loss_targets_only_the_set() {
        let mut model = VictimLoss::new(1.0, 0.0).unwrap();
        model.set_victims(&[NodeId::new(9), NodeId::new(3), NodeId::new(9)]);
        assert_eq!(model.victims(), &[NodeId::new(3), NodeId::new(9)]);
        let mut rng = StdRng::seed_from_u64(2);
        assert!((0..50).all(|_| model.drops(ctx(0, 3, 0), &mut rng)));
        assert!((0..50).all(|_| !model.drops(ctx(0, 4, 0), &mut rng)));
        // Replacing the set retargets instantly.
        model.set_victims(&[NodeId::new(4)]);
        assert!((0..50).all(|_| !model.drops(ctx(0, 3, 0), &mut rng)));
        assert!((0..50).all(|_| model.drops(ctx(0, 4, 0), &mut rng)));
    }

    #[test]
    fn schedule_dispatches_by_round() {
        let schedule = ScheduledFault::new(vec![
            (10, PhaseFault::Uniform(UniformLoss::none())),
            (20, PhaseFault::Uniform(UniformLoss::new(1.0).unwrap())),
            (30, PhaseFault::Uniform(UniformLoss::new(0.25).unwrap())),
        ]);
        assert_eq!(schedule.phase_index(0), 0);
        assert_eq!(schedule.phase_index(9), 0);
        assert_eq!(schedule.phase_index(10), 1);
        assert_eq!(schedule.phase_index(29), 2);
        // Rounds past the last end stay in the final phase.
        assert_eq!(schedule.phase_index(1_000), 2);
        assert_eq!(schedule.rate_at(5), 0.0);
        assert_eq!(schedule.rate_at(15), 1.0);
        assert_eq!(schedule.rate_at(99), 0.25);
        assert_eq!(FaultModel::average_rate(&schedule), 0.25);

        let mut s = schedule;
        let mut rng = StdRng::seed_from_u64(9);
        assert!(!s.drops(ctx(0, 1, 5), &mut rng));
        assert!(s.drops(ctx(0, 1, 15), &mut rng));
    }

    #[test]
    fn schedule_capacity_gate_follows_the_phase() {
        let cap = NodeCapacity::new(3, 1.0, 2, 0.0).unwrap();
        let schedule = ScheduledFault::new(vec![
            (5, PhaseFault::Uniform(UniformLoss::none())),
            (u64::MAX, PhaseFault::Capacity(cap)),
        ]);
        let node = NodeId::new(0);
        // Phase 0: everyone acts.
        assert!((0..5).all(|r| schedule.node_acts(node, r)));
        // Phase 1: the all-slow cohort acts every other round.
        let acting = (5..15).filter(|&r| schedule.node_acts(node, r)).count();
        assert_eq!(acting, 5);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn schedule_rejects_unordered_phases() {
        let _ = ScheduledFault::new(vec![
            (10, PhaseFault::Uniform(UniformLoss::none())),
            (10, PhaseFault::Uniform(UniformLoss::none())),
        ]);
    }

    #[test]
    fn rate_validation_is_enforced_everywhere() {
        assert!(RegionalPartition::new(2, 0, 1, 1.5, 0.0).is_err());
        assert!(RegionalPartition::new(2, 0, 1, 0.5, -0.1).is_err());
        assert!(PerLinkLoss::new(0, 2.0, 0.0, 0.0).is_err());
        assert!(PerLinkLoss::new(0, 0.5, f64::NAN, 0.0).is_err());
        assert!(NodeCapacity::new(0, 1.1, 2, 0.0).is_err());
        assert!(VictimLoss::new(0.5, 7.0).is_err());
    }
}
