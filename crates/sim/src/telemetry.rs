//! Bridges the engine's step-event stream into `sandf-obs`.
//!
//! [`SimRecorder`] is a [`StepSubscriber`] that mirrors every
//! [`StepReport`] into `sim.step.*` counters and (optionally) a structured
//! [`EventJournal`]. Its counters are defined to track [`SimStats`](crate::SimStats) exactly
//! — see the `recorder_matches_sim_stats` test — so an external scraper
//! reading the metrics registry sees the same ledger the simulation keeps
//! internally.
//!
//! Counter names:
//!
//! | metric                  | meaning                                      |
//! |-------------------------|----------------------------------------------|
//! | `sim.step.actions`      | initiate steps executed                      |
//! | `sim.step.self_loops`   | actions that were self-loop transformations  |
//! | `sim.step.sent`         | messages produced                            |
//! | `sim.step.lost`         | messages dropped by the loss model           |
//! | `sim.step.dead_letters` | messages addressed to departed nodes         |
//! | `sim.step.stored`       | messages delivered and stored                |
//! | `sim.step.deleted`      | messages delivered but deleted (full view)   |
//! | `sim.step.duplications` | sends that duplicated (`d(u) = d_L`)         |
//! | `sim.step.in_flight`    | messages queued for delayed delivery         |
//! | `sim.step.skipped`      | steps skipped by a closed capacity gate      |

use sandf_obs::{CounterHandle, EventJournal, JournalEvent, MetricsRegistry};

use crate::engine::{StepEvent, StepPhase, StepReport, StepSubscriber};

/// A step subscriber recording `sim.step.*` counters and, optionally, a
/// structured event journal.
#[derive(Clone, Debug)]
pub struct SimRecorder {
    journal: Option<EventJournal>,
    actions: CounterHandle,
    self_loops: CounterHandle,
    sent: CounterHandle,
    lost: CounterHandle,
    dead_letters: CounterHandle,
    stored: CounterHandle,
    deleted: CounterHandle,
    duplications: CounterHandle,
    in_flight: CounterHandle,
    skipped: CounterHandle,
}

impl SimRecorder {
    /// Creates a recorder registering its counters in `registry`, with no
    /// journal.
    #[must_use]
    pub fn new(registry: &MetricsRegistry) -> Self {
        Self {
            journal: None,
            actions: registry.counter("sim.step.actions"),
            self_loops: registry.counter("sim.step.self_loops"),
            sent: registry.counter("sim.step.sent"),
            lost: registry.counter("sim.step.lost"),
            dead_letters: registry.counter("sim.step.dead_letters"),
            stored: registry.counter("sim.step.stored"),
            deleted: registry.counter("sim.step.deleted"),
            duplications: registry.counter("sim.step.duplications"),
            in_flight: registry.counter("sim.step.in_flight"),
            skipped: registry.counter("sim.step.skipped"),
        }
    }

    /// Creates a recorder that additionally mirrors every report into
    /// `journal`, stamped with the simulation's global step counter as the
    /// logical time.
    #[must_use]
    pub fn with_journal(registry: &MetricsRegistry, journal: EventJournal) -> Self {
        let mut recorder = Self::new(registry);
        recorder.journal = Some(journal);
        recorder
    }

    /// The attached journal, if any.
    #[must_use]
    pub fn journal(&self) -> Option<&EventJournal> {
        self.journal.as_ref()
    }

    fn to_journal_event(report: &StepReport) -> JournalEvent {
        let initiator = report.initiator;
        match report.event {
            StepEvent::SelfLoop => JournalEvent::SelfLoop { initiator },
            StepEvent::Skipped => JournalEvent::Skipped { initiator },
            StepEvent::Lost { to, message, duplicated } => {
                JournalEvent::Lost { initiator, to, payload: message.payload, duplicated }
            }
            StepEvent::DeadLetter { to, message, duplicated } => {
                JournalEvent::DeadLetter { initiator, to, payload: message.payload, duplicated }
            }
            StepEvent::Delivered { to, message, duplicated, deleted } => JournalEvent::Delivered {
                initiator,
                to,
                payload: message.payload,
                duplicated,
                deleted,
            },
            StepEvent::InFlight { to, message, duplicated, deliver_at } => JournalEvent::InFlight {
                initiator,
                to,
                payload: message.payload,
                duplicated,
                deliver_at,
            },
        }
    }
}

impl StepSubscriber for SimRecorder {
    fn on_step(&mut self, report: &StepReport) {
        match report.phase {
            StepPhase::Action if matches!(report.event, StepEvent::Skipped) => {
                // A closed capacity gate: no action ran, so only the
                // skipped counter moves (mirroring SimStats).
                self.skipped.inc();
            }
            StepPhase::Action => {
                self.actions.inc();
                match report.event {
                    StepEvent::SelfLoop => self.self_loops.inc(),
                    StepEvent::Skipped => unreachable!("handled by the guard arm above"),
                    StepEvent::Lost { duplicated, .. } => {
                        self.sent.inc();
                        self.lost.inc();
                        if duplicated {
                            self.duplications.inc();
                        }
                    }
                    StepEvent::DeadLetter { duplicated, .. } => {
                        self.sent.inc();
                        self.dead_letters.inc();
                        if duplicated {
                            self.duplications.inc();
                        }
                    }
                    StepEvent::Delivered { duplicated, deleted, .. } => {
                        self.sent.inc();
                        if duplicated {
                            self.duplications.inc();
                        }
                        if deleted {
                            self.deleted.inc();
                        } else {
                            self.stored.inc();
                        }
                    }
                    StepEvent::InFlight { duplicated, .. } => {
                        self.sent.inc();
                        self.in_flight.inc();
                        if duplicated {
                            self.duplications.inc();
                        }
                    }
                }
            }
            // Delivery-phase reports complete an earlier InFlight send: only
            // the receive-side counters move (the send was already counted).
            StepPhase::Delivery => match report.event {
                StepEvent::Delivered { deleted, .. } => {
                    if deleted {
                        self.deleted.inc();
                    } else {
                        self.stored.inc();
                    }
                }
                StepEvent::DeadLetter { .. } => self.dead_letters.inc(),
                _ => {}
            },
        }
        if let Some(journal) = &self.journal {
            journal.record(report.step, Self::to_journal_event(report));
        }
    }
}

#[cfg(test)]
mod tests {
    use sandf_obs::MetricsRegistry;

    use crate::engine::{DelayModel, Simulation};
    use crate::loss::UniformLoss;
    use crate::topology;

    use super::*;

    fn config() -> sandf_core::SfConfig {
        sandf_core::SfConfig::new(12, 4).unwrap()
    }

    fn counter(registry: &MetricsRegistry, name: &str) -> u64 {
        registry.counter_value(name).unwrap()
    }

    #[test]
    fn recorder_matches_sim_stats() {
        let registry = MetricsRegistry::new();
        let nodes = topology::circulant(24, config(), 4);
        let mut sim = Simulation::new(nodes, UniformLoss::new(0.1).unwrap(), 41);
        sim.subscribe(Box::new(SimRecorder::new(&registry)));
        for _ in 0..800 {
            sim.step();
        }
        let s = sim.stats();
        assert_eq!(counter(&registry, "sim.step.actions"), s.actions);
        assert_eq!(counter(&registry, "sim.step.self_loops"), s.self_loops);
        assert_eq!(counter(&registry, "sim.step.sent"), s.sent);
        assert_eq!(counter(&registry, "sim.step.lost"), s.lost);
        assert_eq!(counter(&registry, "sim.step.dead_letters"), s.dead_letters);
        assert_eq!(counter(&registry, "sim.step.stored"), s.stored);
        assert_eq!(counter(&registry, "sim.step.deleted"), s.deleted);
        assert_eq!(counter(&registry, "sim.step.duplications"), s.duplications);
    }

    #[test]
    fn recorder_matches_sim_stats_under_delay() {
        // Delivery-phase reports must not double-count sends, and delayed
        // deliveries must land in stored/deleted once they complete.
        let registry = MetricsRegistry::new();
        let nodes = topology::circulant(24, config(), 4);
        let mut sim = Simulation::with_delay(
            nodes,
            UniformLoss::new(0.05).unwrap(),
            DelayModel::UniformSteps { max: 40 },
            43,
        );
        sim.subscribe(Box::new(SimRecorder::new(&registry)));
        for _ in 0..1_000 {
            sim.step();
        }
        sim.settle();
        let s = sim.stats();
        assert_eq!(counter(&registry, "sim.step.actions"), s.actions);
        assert_eq!(counter(&registry, "sim.step.sent"), s.sent);
        assert_eq!(counter(&registry, "sim.step.stored"), s.stored);
        assert_eq!(counter(&registry, "sim.step.deleted"), s.deleted);
        assert_eq!(counter(&registry, "sim.step.dead_letters"), s.dead_letters);
        assert_eq!(
            counter(&registry, "sim.step.sent"),
            counter(&registry, "sim.step.lost")
                + counter(&registry, "sim.step.dead_letters")
                + counter(&registry, "sim.step.stored")
                + counter(&registry, "sim.step.deleted"),
            "ledger must balance after settle"
        );
    }

    #[test]
    fn journal_is_seed_stable() {
        let run = || {
            let registry = MetricsRegistry::new();
            let journal = sandf_obs::EventJournal::new(4_096);
            let nodes = topology::circulant(24, config(), 4);
            let mut sim = Simulation::new(nodes, UniformLoss::new(0.1).unwrap(), 47);
            sim.subscribe(Box::new(SimRecorder::with_journal(&registry, journal.clone())));
            for _ in 0..300 {
                sim.step();
            }
            journal.to_jsonl()
        };
        assert_eq!(run(), run(), "same seed must produce a byte-identical journal");
    }
}
