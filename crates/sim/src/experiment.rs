//! High-level experiment runners used by the bench harness and the
//! integration tests. Every runner is deterministic given its seed.

use sandf_core::{NodeId, SfConfig, SfNode};
use sandf_graph::{edge_jaccard, Histogram, MembershipGraph};

use crate::engine::Simulation;
use crate::flat::FlatSimulation;
use crate::loss::UniformLoss;
use crate::observer::{DegreeSampler, OccupancyCounter};
use crate::par::ParSimulation;
use crate::topology;

/// Common experiment parameters.
#[derive(Clone, Copy, Debug)]
pub struct ExperimentParams {
    /// System size `n`.
    pub n: usize,
    /// Protocol configuration (`s`, `d_L`).
    pub config: SfConfig,
    /// Uniform message-loss rate `ℓ`.
    pub loss: f64,
    /// Rounds to run before measuring (reaching the steady state).
    pub burn_in: usize,
    /// RNG seed.
    pub seed: u64,
}

impl ExperimentParams {
    fn build(&self, initial_out_degree: usize) -> Simulation<UniformLoss> {
        let nodes = topology::circulant(self.n, self.config, initial_out_degree);
        let loss = UniformLoss::new(self.loss).expect("loss rate validated by caller");
        Simulation::new(nodes, loss, self.seed)
    }

    /// Returns a copy with the seed replaced — the hook sweep executors use
    /// to give each replicate of one parameter cell its own stream.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builds the simulation these parameters describe (circulant bootstrap
    /// at the default initial degree, uniform loss, seeded RNG), without
    /// running it. The result is owned and `Send`, so callers may move it
    /// onto a worker thread and drive it there — e.g. via
    /// [`Simulation::run_replicate`].
    #[must_use]
    pub fn build_simulation(&self) -> Simulation<UniformLoss> {
        self.build(self.default_initial_degree())
    }

    /// Builds just the bootstrap topology these parameters describe (the
    /// circulant at the default initial degree). Topology construction is
    /// deterministic and seed-independent, so sweep executors can build it
    /// **once per parameter cell** and clone it into each replicate instead
    /// of re-deriving it per replicate — see
    /// [`build_simulation_from`](Self::build_simulation_from).
    #[must_use]
    pub fn prepare_topology(&self) -> Vec<SfNode> {
        topology::circulant(self.n, self.config, self.default_initial_degree())
    }

    /// Builds the simulation from an already-constructed topology (cloned
    /// from a cell-level [`prepare_topology`](Self::prepare_topology) call).
    /// Equivalent to [`build_simulation`](Self::build_simulation) when the
    /// nodes came from the same parameters: the RNG stream depends only on
    /// the seed, so hoisting construction cannot change results.
    #[must_use]
    pub fn build_simulation_from(&self, nodes: Vec<SfNode>) -> Simulation<UniformLoss> {
        let loss = UniformLoss::new(self.loss).expect("loss rate validated by caller");
        Simulation::new(nodes, loss, self.seed)
    }

    /// Builds the struct-of-arrays fast path over the same topology, loss,
    /// and seed as [`build_simulation`](Self::build_simulation). The two
    /// engines are seed-for-seed equivalent; prefer this one at large `n`.
    #[must_use]
    pub fn build_flat_simulation(&self) -> FlatSimulation<UniformLoss> {
        let loss = UniformLoss::new(self.loss).expect("loss rate validated by caller");
        FlatSimulation::new(self.prepare_topology(), loss, self.seed)
    }

    /// Builds the sharded multi-threaded engine over the same topology,
    /// loss, and seed. Results are byte-identical for any `threads`; the
    /// engine is a round-based statistical mode distinct from (but
    /// statistically equivalent to) the sequential engines — see the
    /// [`ParSimulation`] docs.
    #[must_use]
    pub fn build_par_simulation(&self, threads: usize) -> ParSimulation<UniformLoss> {
        let loss = UniformLoss::new(self.loss).expect("loss rate validated by caller");
        ParSimulation::new(self.prepare_topology(), loss, self.seed, threads)
    }

    /// A sensible initial outdegree: two thirds of the way from `d_L` to `s`
    /// (even), so the system starts inside the legal band.
    fn default_initial_degree(&self) -> usize {
        let s = self.config.view_size();
        let d_l = self.config.lower_threshold();
        let mid = d_l + (s - d_l) * 2 / 3;
        let mid = mid.min(self.n.saturating_sub(2)).max(2);
        mid & !1
    }
}

/// Pooled steady-state degree histograms (empirical counterpart of the
/// degree MC of Section 6.2; overlaid on Figures 6.1/6.3).
#[derive(Clone, Debug)]
pub struct DegreeDistributions {
    /// Pooled outdegree histogram.
    pub out_degrees: Histogram,
    /// Pooled indegree histogram.
    pub in_degrees: Histogram,
}

/// Runs to the steady state and samples degree distributions every
/// `sample_every` rounds, `samples` times.
#[must_use]
pub fn steady_state_degrees(
    params: &ExperimentParams,
    samples: usize,
    sample_every: usize,
) -> DegreeDistributions {
    let mut sim = params.build(params.default_initial_degree());
    sim.run_rounds(params.burn_in);
    let mut sampler = DegreeSampler::new();
    for _ in 0..samples {
        sim.run_rounds(sample_every);
        sampler.sample(&sim);
    }
    DegreeDistributions {
        out_degrees: sampler.out_degrees().clone(),
        in_degrees: sampler.in_degrees().clone(),
    }
}

/// Measured protocol event rates in the steady state, for checking the
/// loss-compensation identities of Lemmas 6.6 and 6.7.
#[derive(Clone, Copy, Debug)]
pub struct EventRates {
    /// Empirical duplication probability per non-self-loop action.
    pub duplication: f64,
    /// Empirical deletion probability per non-self-loop action.
    pub deletion: f64,
    /// Empirical loss rate (including dead letters).
    pub loss: f64,
}

/// Measures duplication/deletion/loss rates over `measure_rounds` rounds
/// after burn-in.
#[must_use]
pub fn steady_state_event_rates(params: &ExperimentParams, measure_rounds: usize) -> EventRates {
    let mut sim = params.build(params.default_initial_degree());
    sim.run_rounds(params.burn_in);
    sim.reset_stats();
    sim.run_rounds(measure_rounds);
    let stats = sim.stats();
    EventRates {
        duplication: stats.duplication_rate().unwrap_or(0.0),
        deletion: stats.deletion_rate().unwrap_or(0.0),
        loss: stats.loss_rate().unwrap_or(0.0),
    }
}

/// Tracks the decay of a departed node's id instances (Lemma 6.10 /
/// Figure 6.4): returns, for each round after the leave, the fraction of the
/// original instance count still present in live views.
#[must_use]
pub fn leave_decay(params: &ExperimentParams, track_rounds: usize) -> Vec<f64> {
    let mut sim = params.build(params.default_initial_degree());
    sim.run_rounds(params.burn_in);
    let victim = sim.live_ids()[0];
    sim.leave(victim);
    let initial = sim.count_id_instances(victim).max(1) as f64;
    let mut fractions = Vec::with_capacity(track_rounds);
    for _ in 0..track_rounds {
        sim.round();
        fractions.push(sim.count_id_instances(victim) as f64 / initial);
    }
    fractions
}

/// Result of the join-integration experiment (Lemma 6.13 / Corollary 6.14).
#[derive(Clone, Debug)]
pub struct JoinIntegration {
    /// Average indegree `D_in` of the steady-state system at join time.
    pub d_in_at_join: f64,
    /// Number of instances of the joiner's id after each round since joining.
    pub instances_per_round: Vec<usize>,
}

/// Lets a steady-state system absorb one joiner and tracks how many
/// instances of its id exist after each round. Corollary 6.14: with
/// `ℓ + δ ≪ 1` and `s / d_L = 2`, after `2s` rounds the joiner is expected
/// to have created at least `D_in / 4` instances.
#[must_use]
pub fn join_integration(params: &ExperimentParams, track_rounds: usize) -> JoinIntegration {
    let mut sim = params.build(params.default_initial_degree());
    sim.run_rounds(params.burn_in);
    let graph = sim.graph();
    let d_in_at_join = graph.in_degrees().iter().sum::<usize>() as f64 / graph.node_count() as f64;
    let sponsor = sim.live_ids()[0];
    let joiner = sim.join_via(sponsor).expect("steady-state sponsor has a full enough view");
    let mut instances_per_round = Vec::with_capacity(track_rounds);
    for _ in 0..track_rounds {
        sim.round();
        instances_per_round.push(sim.count_id_instances(joiner));
    }
    JoinIntegration { d_in_at_join, instances_per_round }
}

/// One point of the temporal-independence decay curve (Section 7.5).
#[derive(Clone, Copy, Debug)]
pub struct OverlapPoint {
    /// Actions initiated per node since the reference snapshot.
    pub actions_per_node: f64,
    /// Edge-multiset Jaccard similarity with the reference snapshot.
    pub jaccard: f64,
}

/// Measures how fast the membership graph forgets a steady-state snapshot:
/// records the edge-overlap with the initial graph after every
/// `measure_every` rounds, `points` times. Property M5 predicts decay to the
/// independent-graph baseline after `O(s log n)` actions per node.
#[must_use]
pub fn temporal_overlap(
    params: &ExperimentParams,
    points: usize,
    measure_every: usize,
) -> Vec<OverlapPoint> {
    let mut sim = params.build(params.default_initial_degree());
    sim.run_rounds(params.burn_in);
    let reference: MembershipGraph = sim.graph();
    let mut curve = Vec::with_capacity(points + 1);
    curve.push(OverlapPoint { actions_per_node: 0.0, jaccard: 1.0 });
    for k in 1..=points {
        sim.run_rounds(measure_every);
        curve.push(OverlapPoint {
            actions_per_node: (k * measure_every) as f64,
            jaccard: edge_jaccard(&reference, &sim.graph()),
        });
    }
    curve
}

/// Result of the uniformity experiment (Lemma 7.6 / Property M3).
#[derive(Clone, Copy, Debug)]
pub struct UniformityReport {
    /// Pearson χ² of per-id appearance counts against uniformity.
    pub chi_square: f64,
    /// Degrees of freedom (`ids − 1`).
    pub degrees_of_freedom: usize,
    /// Ratio of the most- to the least-represented id.
    pub max_min_ratio: f64,
}

/// Samples id-appearance counts over a long steady-state run and tests them
/// against uniformity.
#[must_use]
pub fn uniformity(
    params: &ExperimentParams,
    samples: usize,
    sample_every: usize,
) -> UniformityReport {
    let mut sim = params.build(params.default_initial_degree());
    sim.run_rounds(params.burn_in);
    let mut counter = OccupancyCounter::new();
    for _ in 0..samples {
        sim.run_rounds(sample_every);
        counter.sample(&sim);
    }
    let counts = counter.counts();
    UniformityReport {
        chi_square: counter.chi_square().unwrap_or(0.0),
        degrees_of_freedom: counts.len().saturating_sub(1),
        max_min_ratio: counter.max_min_ratio().unwrap_or(1.0),
    }
}

/// Convenience: the ids a fresh circulant system assigns — useful for tests
/// that need a known victim/sponsor.
#[must_use]
pub fn first_id() -> NodeId {
    NodeId::new(0)
}

/// One checkpoint of a continuous-churn run.
#[derive(Clone, Copy, Debug)]
pub struct ChurnPoint {
    /// Rounds elapsed.
    pub round: usize,
    /// Live node count (constant: each leave is paired with a join).
    pub n: usize,
    /// Weakly connected components of the live subgraph.
    pub components: usize,
    /// Mean live indegree.
    pub mean_in_degree: f64,
    /// Standard deviation of live indegrees.
    pub in_degree_std: f64,
    /// Fraction of view entries pointing at departed nodes (staleness).
    pub stale_fraction: f64,
}

/// Runs the system under *continuous churn*: every `churn_interval` rounds
/// one random node leaves (crashes) and one joins via a random sponsor
/// (Section 5's joining rule). Checkpoints every `checkpoint_every` rounds.
///
/// The paper requires churn to "cease from some point onward" for its
/// steady-state properties; this runner measures how far the system stays
/// from that ideal while churn is *ongoing* — connectivity, load balance,
/// and the stale-id fraction (Section 6.5's decaying instances, in
/// flight). Dead ids decay with a per-round rate of roughly
/// `(1−ℓ−δ)·d_L/s²` (Lemma 6.9), so churn intervals short relative to
/// `s²/d_L` rounds let stale entries accumulate and eventually shred the
/// overlay — the `churn_sweep` bench maps that boundary.
///
/// # Panics
///
/// Panics if `churn_interval` is zero.
#[must_use]
pub fn continuous_churn(
    params: &ExperimentParams,
    churn_interval: usize,
    rounds: usize,
    checkpoint_every: usize,
) -> Vec<ChurnPoint> {
    assert!(churn_interval > 0, "churn interval must be positive");
    let mut sim = params.build(params.default_initial_degree());
    sim.run_rounds(params.burn_in);
    let mut points = Vec::new();
    for round in 1..=rounds {
        if round % churn_interval == 0 {
            // Crash a random live node, then admit a replacement through a
            // random sponsor.
            let victim = sim.live_ids()[round % sim.len()];
            sim.leave(victim);
            let sponsor = sim.live_ids()[(round / 2) % sim.len()];
            let _ = sim.join_via(sponsor);
        }
        sim.round();
        if round % checkpoint_every == 0 {
            let graph = sim.graph();
            let in_stats = sandf_graph::DegreeStats::from_samples(&graph.in_degrees());
            let total_edges = graph.edge_count();
            let stale = graph.dangling_edge_count();
            points.push(ChurnPoint {
                round,
                n: graph.node_count(),
                components: graph.weakly_connected_components(),
                mean_in_degree: in_stats.mean,
                in_degree_std: in_stats.std_dev(),
                stale_fraction: if total_edges == 0 {
                    0.0
                } else {
                    stale as f64 / total_edges as f64
                },
            });
        }
    }
    points
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(loss: f64, seed: u64) -> ExperimentParams {
        ExperimentParams { n: 64, config: SfConfig::new(16, 6).unwrap(), loss, burn_in: 60, seed }
    }

    #[test]
    fn steady_state_degrees_have_sane_support() {
        let dist = steady_state_degrees(&params(0.01, 1), 10, 2);
        assert_eq!(dist.out_degrees.total(), 64 * 10);
        let mean_out = dist.out_degrees.mean();
        assert!((6.0..=16.0).contains(&mean_out), "mean outdegree {mean_out}");
        // Mean in == mean out only up to dangling edges; without churn they
        // must agree exactly.
        assert!((dist.in_degrees.mean() - mean_out).abs() < 1e-9);
    }

    #[test]
    fn event_rates_satisfy_loss_compensation() {
        // Lemma 6.6: dup = ℓ + del in the steady state.
        let rates = steady_state_event_rates(&params(0.05, 2), 400);
        assert!((rates.loss - 0.05).abs() < 0.01, "loss {}", rates.loss);
        let lhs = rates.duplication;
        let rhs = rates.loss + rates.deletion;
        assert!((lhs - rhs).abs() < 0.02, "dup {lhs} vs loss+del {rhs}");
    }

    #[test]
    fn leave_decay_is_monotonically_shrinking_overall() {
        let fractions = leave_decay(&params(0.01, 3), 300);
        assert!(fractions[0] <= 1.2);
        let last = *fractions.last().unwrap();
        assert!(last < 0.3, "dead id should mostly vanish, still {last}");
    }

    #[test]
    fn join_integration_creates_instances() {
        let result = join_integration(&params(0.01, 4), 40);
        assert!(result.d_in_at_join > 0.0);
        let last = *result.instances_per_round.last().unwrap();
        assert!(last >= 2, "joiner should gain representation, has {last}");
    }

    #[test]
    fn temporal_overlap_decays() {
        let curve = temporal_overlap(&params(0.0, 5), 8, 10);
        assert_eq!(curve.len(), 9);
        assert_eq!(curve[0].jaccard, 1.0);
        let last = curve.last().unwrap().jaccard;
        assert!(last < 0.5, "overlap should decay, still {last}");
    }

    #[test]
    fn continuous_churn_keeps_the_system_healthy() {
        let points = continuous_churn(&params(0.01, 8), 8, 240, 60);
        assert_eq!(points.len(), 4);
        for p in &points {
            assert_eq!(p.n, 64, "leave/join pairing broke the population");
            assert!(p.components <= 2, "churn partitioned the overlay: {p:?}");
            assert!(p.mean_in_degree > 4.0, "views collapsed: {p:?}");
            assert!(p.stale_fraction < 0.5, "stale ids dominate: {p:?}");
        }
    }

    #[test]
    fn uniformity_report_is_reasonable() {
        // Samples of Pr(v ∈ u.lv) are correlated across nearby rounds, so
        // the bands here are loose; the dedicated uniformity bench runs far
        // longer for the Lemma 7.6 check.
        // Spacing samples ~2·s rounds apart keeps them roughly independent
        // (temporal independence needs O(s log n) actions per node).
        let report = uniformity(&params(0.01, 6), 40, 30);
        assert_eq!(report.degrees_of_freedom, 63);
        assert!(report.max_min_ratio < 2.5, "ratio {}", report.max_min_ratio);
        // Residual cross-sample correlation inflates χ² well beyond its dof
        // even under perfect uniformity; the band below still rejects gross
        // bias (a star topology scores two orders of magnitude higher).
        assert!(report.chi_square < 63.0 * 10.0, "chi2 {}", report.chi_square);
    }
}
