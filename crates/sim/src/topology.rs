//! Initial-topology builders.
//!
//! The paper's convergence properties (M2–M4) must hold "starting from any
//! [sufficiently connected] initial state", so experiments exercise several
//! shapes. Section 6.1's analysis additionally assumes an initial state where
//! every node has the same sum degree `d_s(u) = d_m` — provided here by the
//! circulant builder.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use sandf_core::{NodeId, SfConfig, SfNode};

fn node_from_targets(id: u64, config: SfConfig, targets: &[NodeId]) -> SfNode {
    let mut node = SfNode::new(NodeId::new(id), config);
    for &t in targets {
        node.view_mut().insert_at_first_empty(t).expect("topology builder exceeded view capacity");
    }
    node
}

/// A circulant topology: node `i` points at `i+1, …, i+d0 (mod n)`.
///
/// Every node has outdegree and indegree exactly `d0`, hence sum degree
/// `d_s(u) = 3·d0` for all `u` — the regular initial state of Section 6.1
/// (use `d0 = d_m / 3`). The graph is weakly (indeed strongly) connected.
///
/// # Panics
///
/// Panics if `d0` is odd or exceeds the view size, or if `d0 ≥ n`.
#[must_use]
pub fn circulant(n: usize, config: SfConfig, d0: usize) -> Vec<SfNode> {
    circulant_iter(n, config, d0).collect()
}

/// The lazy form of [`circulant`]: yields the same nodes in the same order
/// without materializing them. Feed it straight into the arena engines'
/// streaming constructors so building an `n = 10⁷` simulation never holds
/// more than one boxed node at a time.
///
/// # Panics
///
/// Panics if `d0` is odd or exceeds the view size, or if `d0 ≥ n`.
pub fn circulant_iter(n: usize, config: SfConfig, d0: usize) -> impl Iterator<Item = SfNode> {
    assert!(d0.is_multiple_of(2), "initial outdegree must be even (Observation 5.1)");
    assert!(d0 <= config.view_size(), "initial outdegree exceeds view size");
    assert!(d0 < n, "circulant requires d0 < n");
    (0..n as u64).map(move |i| {
        let targets: Vec<NodeId> =
            (1..=d0 as u64).map(|k| NodeId::new((i + k) % n as u64)).collect();
        node_from_targets(i, config, &targets)
    })
}

/// A random topology: each node selects `d0` out-neighbors uniformly at
/// random without replacement from the other nodes (indegrees come out
/// roughly binomial).
///
/// # Panics
///
/// Panics if `d0` is odd, exceeds the view size, or `d0 ≥ n`.
#[must_use]
pub fn random<R: Rng + ?Sized>(n: usize, config: SfConfig, d0: usize, rng: &mut R) -> Vec<SfNode> {
    assert!(d0.is_multiple_of(2), "initial outdegree must be even (Observation 5.1)");
    assert!(d0 <= config.view_size(), "initial outdegree exceeds view size");
    assert!(d0 < n, "random topology requires d0 < n");
    let everyone: Vec<u64> = (0..n as u64).collect();
    (0..n as u64)
        .map(|i| {
            let mut others: Vec<u64> = everyone.iter().copied().filter(|&x| x != i).collect();
            others.shuffle(rng);
            let targets: Vec<NodeId> = others[..d0].iter().map(|&x| NodeId::new(x)).collect();
            node_from_targets(i, config, &targets)
        })
        .collect()
}

/// Stream tag for the per-node bootstrap draws of [`random_iter`].
const TOPOLOGY_TAG: u8 = b't';

/// The streaming, seeded form of [`random`]: node `i` draws its `d0`
/// distinct targets from its own counter-based stream (the engines'
/// FNV-1a `seed ‖ tag ‖ node ‖ 0` layout with tag `b't'`), so the same
/// seed yields the same topology without materializing `O(n)` scratch per
/// node — [`random`] shuffles a full id vector per node and is `O(n²)`,
/// unusable past `n ≈ 10⁴`. Feed this into the arena engines' streaming
/// constructors for expander-like bootstraps at `n = 10⁶⁺`.
///
/// # Panics
///
/// The returned iterator panics lazily if `d0` is odd, exceeds the view
/// size, or `d0 ≥ n`.
pub fn random_iter(
    n: usize,
    config: SfConfig,
    d0: usize,
    seed: u64,
) -> impl Iterator<Item = SfNode> {
    assert!(d0.is_multiple_of(2), "initial outdegree must be even (Observation 5.1)");
    assert!(d0 <= config.view_size(), "initial outdegree exceeds view size");
    assert!(d0 < n, "random topology requires d0 < n");
    (0..n as u64).map(move |i| {
        let mut rng = StdRng::seed_from_u64(crate::par::stream_seed(seed, TOPOLOGY_TAG, i, 0));
        let mut targets: Vec<NodeId> = Vec::with_capacity(d0);
        while targets.len() < d0 {
            let x = NodeId::new(rng.gen_range(0..n as u64));
            if x.as_u64() != i && !targets.contains(&x) {
                targets.push(x);
            }
        }
        node_from_targets(i, config, &targets)
    })
}

/// A directed ring with `d0 = 2`: node `i` points at `i±1 (mod n)` — the
/// most fragile connected initial state, used to test convergence from poor
/// topologies.
///
/// # Panics
///
/// Panics if `n < 3`.
#[must_use]
pub fn ring(n: usize, config: SfConfig) -> Vec<SfNode> {
    assert!(n >= 3, "ring requires at least 3 nodes");
    (0..n as u64)
        .map(|i| {
            let prev = NodeId::new((i + n as u64 - 1) % n as u64);
            let next = NodeId::new((i + 1) % n as u64);
            node_from_targets(i, config, &[prev, next])
        })
        .collect()
}

/// A star: every spoke points at the hub (twice, to keep outdegrees even),
/// and the hub points at the first two spokes. Extremely unbalanced.
///
/// **Caveat**: with outdegree 2 this start violates the paper's joining
/// precondition (a node must know at least `d_L` ids, Section 5) whenever
/// `d_L > 2`; integration is then extremely slow (spokes' non-self-loop
/// probability is only `2/(s(s−1))` per action) and small components can
/// split off while the hub's full view deletes spoke ids. Use
/// [`hub_cluster`] for a *legal* maximally skewed start. Keeping this
/// builder documents the failure mode.
///
/// # Panics
///
/// Panics if `n < 3`.
#[must_use]
pub fn star(n: usize, config: SfConfig) -> Vec<SfNode> {
    assert!(n >= 3, "star requires at least 3 nodes");
    let hub = NodeId::new(0);
    (0..n as u64)
        .map(|i| {
            if i == 0 {
                node_from_targets(i, config, &[NodeId::new(1), NodeId::new(2)])
            } else {
                node_from_targets(i, config, &[hub, hub])
            }
        })
        .collect()
}

/// A hub cluster: every node's view is `{0, 1, …, d0−1}` (the hubs), with
/// self-entries skipped and wrapped. All indegree mass concentrates on `d0`
/// hubs while every outdegree is a legal `d0 ≥ d_L` — the harshest initial
/// imbalance that still satisfies the paper's joining rule.
///
/// # Panics
///
/// Panics if `d0` is odd, exceeds the view size, or `d0 + 1 ≥ n`.
#[must_use]
pub fn hub_cluster(n: usize, config: SfConfig, d0: usize) -> Vec<SfNode> {
    assert!(d0.is_multiple_of(2), "initial outdegree must be even (Observation 5.1)");
    assert!(d0 <= config.view_size(), "initial outdegree exceeds view size");
    assert!(d0 + 1 < n, "hub cluster requires d0 + 1 < n");
    (0..n as u64)
        .map(|i| {
            let targets: Vec<NodeId> =
                (0..=d0 as u64).filter(|&h| h != i).take(d0).map(NodeId::new).collect();
            node_from_targets(i, config, &targets)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sandf_graph::MembershipGraph;

    use super::*;

    fn config() -> SfConfig {
        SfConfig::new(10, 2).unwrap()
    }

    #[test]
    fn circulant_is_regular_and_connected() {
        let nodes = circulant(20, config(), 4);
        let g = MembershipGraph::from_nodes(&nodes);
        assert!(g.is_weakly_connected());
        assert!(g.out_degrees().iter().all(|&d| d == 4));
        assert!(g.in_degrees().iter().all(|&d| d == 4));
        assert!(g.sum_degrees().iter().all(|&ds| ds == 12));
    }

    #[test]
    #[should_panic(expected = "even")]
    fn circulant_rejects_odd_degree() {
        let _ = circulant(20, config(), 3);
    }

    #[test]
    fn random_has_exact_outdegrees_and_no_self_edges() {
        let mut rng = StdRng::seed_from_u64(3);
        let nodes = random(30, config(), 6, &mut rng);
        let g = MembershipGraph::from_nodes(&nodes);
        assert!(g.out_degrees().iter().all(|&d| d == 6));
        assert_eq!(g.self_edge_count(), 0);
        assert_eq!(g.parallel_edge_count(), 0);
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let a = random(16, config(), 4, &mut StdRng::seed_from_u64(9));
        let b = random(16, config(), 4, &mut StdRng::seed_from_u64(9));
        for (x, y) in a.iter().zip(&b) {
            let vx: Vec<_> = x.view().ids().collect();
            let vy: Vec<_> = y.view().ids().collect();
            assert_eq!(vx, vy);
        }
    }

    #[test]
    fn ring_is_connected_with_degree_two() {
        let nodes = ring(12, config());
        let g = MembershipGraph::from_nodes(&nodes);
        assert!(g.is_weakly_connected());
        assert!(g.out_degrees().iter().all(|&d| d == 2));
    }

    #[test]
    fn star_concentrates_indegree_at_hub() {
        let nodes = star(10, config());
        let g = MembershipGraph::from_nodes(&nodes);
        assert!(g.is_weakly_connected());
        assert_eq!(g.in_degree(NodeId::new(0)), Some(18));
        assert!(g.out_degrees().iter().all(|&d| d == 2));
    }

    #[test]
    fn hub_cluster_is_legal_and_skewed() {
        let nodes = hub_cluster(20, config(), 4);
        let g = MembershipGraph::from_nodes(&nodes);
        assert!(g.is_weakly_connected());
        assert!(g.out_degrees().iter().all(|&d| d == 4));
        assert_eq!(g.self_edge_count(), 0);
        // Hubs absorb all indegree.
        assert!(g.in_degree(NodeId::new(0)).unwrap() >= 15);
        assert_eq!(g.in_degree(NodeId::new(10)), Some(0));
    }
}
