//! Chunked (u64-word SWAR) scans over the `u32` slot arenas.
//!
//! The arenas store slot ids as `u32` words ([`EMPTY_SLOT`] = `u32::MAX`
//! marks an empty slot), so two slots pack into one `u64`. These helpers
//! process the arena two lanes at a time with branch-free lane tests:
//! a slot window of `s = 16` is eight u64 words — one cache line — and
//! the empty-slot and id-multiplicity passes touch each word once.
//!
//! The lane-zero test is the exact form: for each 32-bit lane `x`,
//! `(x & 0x7fffffff) + 0x7fffffff` sets bit 31 iff the low 31 bits are
//! non-zero, and OR-ing `x` back in folds in bit 31 itself, so the lane's
//! high bit ends up set iff `x != 0` — with no cross-lane carry (the
//! masked add of two 31-bit values cannot overflow a lane). Unlike the
//! classic `(v - 0x…01) & !v & 0x…80` trick, this has no false positives
//! from borrow propagation, which matters because these scans *count*
//! lanes rather than just testing for existence.
//!
//! Everything here is safe code (`sandf-sim` forbids `unsafe`): words are
//! assembled from adjacent `u32` pairs arithmetically, which the compiler
//! lowers to single wide loads.
//!
//! [`EMPTY_SLOT`]: crate::traits::EMPTY_SLOT

/// Low 31 bits of each lane.
const LANE_LOW31: u64 = 0x7fff_ffff_7fff_ffff;
/// Bit 31 of each lane.
const LANE_HIGH: u64 = 0x8000_0000_8000_0000;

/// Packs two adjacent slots into one word (`lo` in bits 0..32).
#[inline]
fn pack(lo: u32, hi: u32) -> u64 {
    u64::from(lo) | (u64::from(hi) << 32)
}

/// Per-lane zero markers: bit 31 of each lane is set iff that lane is
/// zero. Exact — no borrow/carry crosses lanes.
#[inline]
fn zero_lane_markers(word: u64) -> u64 {
    let nonzero = ((word & LANE_LOW31) + LANE_LOW31) | word;
    !nonzero & LANE_HIGH
}

/// Counts slots equal to `needle`, two lanes per step.
#[must_use]
pub fn count_matches(slots: &[u32], needle: u32) -> usize {
    let broadcast = pack(needle, needle);
    let mut chunks = slots.chunks_exact(2);
    let mut count = 0usize;
    for pair in &mut chunks {
        count += zero_lane_markers(pack(pair[0], pair[1]) ^ broadcast).count_ones() as usize;
    }
    count + chunks.remainder().iter().filter(|&&slot| slot == needle).count()
}

/// Offset of the `nth` (0-based) slot equal to `needle`, scanning in slot
/// order — the exact semantics the nth-empty-slot placement draw pins.
/// Words with no matching lane are skipped by popcount.
#[must_use]
pub fn nth_match(slots: &[u32], needle: u32, mut nth: usize) -> Option<usize> {
    let broadcast = pack(needle, needle);
    let mut chunks = slots.chunks_exact(2);
    let mut base = 0usize;
    for pair in &mut chunks {
        let markers = zero_lane_markers(pack(pair[0], pair[1]) ^ broadcast);
        let here = markers.count_ones() as usize;
        if nth < here {
            // Lane 0 (bits 0..32) is the earlier slot.
            let lane0_matches = markers & (1 << 31) != 0;
            return Some(base + usize::from(!(lane0_matches && nth == 0)));
        }
        nth -= here;
        base += 2;
    }
    for (off, &slot) in chunks.remainder().iter().enumerate() {
        if slot == needle {
            if nth == 0 {
                return Some(base + off);
            }
            nth -= 1;
        }
    }
    None
}

/// Chunked summation of a `u32` ledger (two lanes per step) into `u64`.
#[must_use]
pub fn sum_u32(ledger: &[u32]) -> u64 {
    let mut chunks = ledger.chunks_exact(2);
    let mut acc = 0u64;
    for pair in &mut chunks {
        acc += u64::from(pair[0]) + u64::from(pair[1]);
    }
    acc + chunks.remainder().iter().map(|&x| u64::from(x)).sum::<u64>()
}

#[cfg(test)]
mod tests {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    use super::*;

    fn scalar_count(slots: &[u32], needle: u32) -> usize {
        slots.iter().filter(|&&slot| slot == needle).count()
    }

    fn scalar_nth(slots: &[u32], needle: u32, mut nth: usize) -> Option<usize> {
        for (off, &slot) in slots.iter().enumerate() {
            if slot == needle {
                if nth == 0 {
                    return Some(off);
                }
                nth -= 1;
            }
        }
        None
    }

    #[test]
    fn zero_lane_markers_are_exact_at_the_borrow_hazard() {
        // lo == 0 with hi == 1 is the classic trick's false positive.
        assert_eq!(zero_lane_markers(pack(0, 1)), 1 << 31);
        assert_eq!(zero_lane_markers(pack(1, 0)), 1 << 63);
        assert_eq!(zero_lane_markers(pack(0, 0)), LANE_HIGH);
        assert_eq!(zero_lane_markers(pack(u32::MAX, 0x8000_0000)), 0);
    }

    #[test]
    fn swar_scans_match_scalar_references() {
        let mut rng = StdRng::seed_from_u64(7);
        for len in 0..=33 {
            for _ in 0..64 {
                let slots: Vec<u32> = (0..len)
                    .map(|_| [0, 1, 3, u32::MAX, 0x8000_0000][rng.gen_range(0..5usize)])
                    .collect();
                for needle in [0, 1, 3, u32::MAX, 0x8000_0000, 17] {
                    assert_eq!(count_matches(&slots, needle), scalar_count(&slots, needle));
                    for nth in 0..=slots.len() {
                        assert_eq!(
                            nth_match(&slots, needle, nth),
                            scalar_nth(&slots, needle, nth),
                            "len={len} needle={needle} nth={nth} slots={slots:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn chunked_sum_matches_scalar() {
        let mut rng = StdRng::seed_from_u64(11);
        for len in 0..=17 {
            let ledger: Vec<u32> = (0..len).map(|_| rng.gen_range(0..=u32::MAX)).collect();
            assert_eq!(sum_u32(&ledger), ledger.iter().map(|&x| u64::from(x)).sum::<u64>());
        }
    }
}
