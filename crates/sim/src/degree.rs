//! Streaming (incremental) degree statistics.
//!
//! The engines' original `measure` paths rebuilt a [`MembershipGraph`]
//! (`O(n·s)`) whenever a sweep wanted a degree distribution, which at
//! n=10⁷ costs more than the rounds being measured. This module keeps a
//! live outdegree histogram that the engines maintain at store/delete
//! time — every path that moves a node's degree ledger (initiate,
//! receive, join, leave) shifts one histogram bucket — so the common
//! degree readers (live count, edge count, min/max/mean degree) become
//! `O(s)` snapshots with no arena scan.
//!
//! The invariant, pinned by `streaming_stats` property tests on all three
//! engines: after any schedule of rounds, joins, leaves, and fault
//! updates, the streaming histogram equals a from-scratch rebuild over
//! the live nodes' degree ledgers.
//!
//! [`MembershipGraph`]: sandf_graph::MembershipGraph

/// A live histogram of node outdegrees: `histogram()[d]` counts the live
/// nodes whose outdegree ledger reads `d`, for `0 ≤ d ≤ s`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DegreeStats {
    hist: Vec<u64>,
}

impl DegreeStats {
    /// An empty histogram for view size `s` (buckets `0..=s`).
    #[must_use]
    pub fn new(s: usize) -> Self {
        Self { hist: vec![0; s + 1] }
    }

    /// A from-scratch rebuild over a degree ledger — the `O(n)` reference
    /// the streaming invariant is checked against.
    pub fn rebuild(s: usize, degrees: impl IntoIterator<Item = u32>) -> Self {
        let mut stats = Self::new(s);
        for d in degrees {
            stats.add(d);
        }
        stats
    }

    /// Records a node entering the live set with outdegree `d`.
    pub(crate) fn add(&mut self, d: u32) {
        self.hist[d as usize] += 1;
    }

    /// Records a node leaving the live set with outdegree `d`.
    pub(crate) fn remove(&mut self, d: u32) {
        debug_assert!(self.hist[d as usize] > 0, "degree histogram underflow");
        self.hist[d as usize] -= 1;
    }

    /// Records one node's degree moving from `before` to `after`.
    #[inline]
    pub(crate) fn shift(&mut self, before: u32, after: u32) {
        if before != after {
            self.remove(before);
            self.add(after);
        }
    }

    /// Applies a signed per-bucket delta (the par engine's shards report
    /// their histogram movement this way; addition commutes, so the merge
    /// is shard-order independent).
    ///
    /// # Panics
    ///
    /// Panics (debug) when a bucket would underflow.
    pub(crate) fn apply_deltas(&mut self, deltas: &[i64]) {
        debug_assert_eq!(deltas.len(), self.hist.len());
        for (bucket, delta) in self.hist.iter_mut().zip(deltas) {
            if *delta >= 0 {
                *bucket += delta.unsigned_abs();
            } else {
                debug_assert!(*bucket >= delta.unsigned_abs(), "degree histogram underflow");
                *bucket -= delta.unsigned_abs();
            }
        }
    }

    /// The histogram buckets (`0..=s`).
    #[must_use]
    pub fn histogram(&self) -> &[u64] {
        &self.hist
    }

    /// Number of live nodes (the histogram's mass).
    #[must_use]
    pub fn live_nodes(&self) -> u64 {
        self.hist.iter().sum()
    }

    /// Total directed edges — the sum of live outdegrees, equal to the
    /// membership graph's visible edge count.
    #[must_use]
    pub fn edges(&self) -> u64 {
        self.hist.iter().enumerate().map(|(d, &count)| d as u64 * count).sum()
    }

    /// The smallest live outdegree, or `None` with no live nodes.
    #[must_use]
    pub fn min_degree(&self) -> Option<usize> {
        self.hist.iter().position(|&count| count > 0)
    }

    /// The largest live outdegree, or `None` with no live nodes.
    #[must_use]
    pub fn max_degree(&self) -> Option<usize> {
        self.hist.iter().rposition(|&count| count > 0)
    }

    /// Mean live outdegree (0.0 with no live nodes).
    #[must_use]
    pub fn mean_degree(&self) -> f64 {
        let live = self.live_nodes();
        if live == 0 {
            return 0.0;
        }
        #[allow(clippy::cast_precision_loss)]
        {
            self.edges() as f64 / live as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rebuild_matches_incremental_maintenance() {
        let mut streaming = DegreeStats::new(8);
        streaming.add(4);
        streaming.add(6);
        streaming.add(4);
        streaming.shift(4, 2);
        streaming.remove(6);
        let reference = DegreeStats::rebuild(8, [4u32, 2]);
        assert_eq!(streaming, reference);
    }

    #[test]
    fn readers_agree_with_the_histogram() {
        let stats = DegreeStats::rebuild(6, [2u32, 4, 4, 6]);
        assert_eq!(stats.live_nodes(), 4);
        assert_eq!(stats.edges(), 16);
        assert_eq!(stats.min_degree(), Some(2));
        assert_eq!(stats.max_degree(), Some(6));
        assert!((stats.mean_degree() - 4.0).abs() < 1e-12);
        assert_eq!(stats.histogram(), &[0, 0, 1, 0, 2, 0, 1]);
    }

    #[test]
    fn empty_histogram_has_no_extremes() {
        let stats = DegreeStats::new(4);
        assert_eq!(stats.live_nodes(), 0);
        assert_eq!(stats.min_degree(), None);
        assert_eq!(stats.max_degree(), None);
        assert!(stats.mean_degree().abs() < 1e-12);
    }

    #[test]
    fn signed_deltas_merge_commutatively() {
        let mut a = DegreeStats::rebuild(4, [2u32, 2, 4]);
        let mut b = a.clone();
        let first = [0i64, 0, -1, 1, 0];
        let second = [1i64, 0, -1, 0, 0];
        a.apply_deltas(&first);
        a.apply_deltas(&second);
        b.apply_deltas(&second);
        b.apply_deltas(&first);
        assert_eq!(a, b);
        assert_eq!(a.live_nodes(), 3);
    }
}
