//! The discrete-event simulation engine.
//!
//! The engine implements the paper's execution model (Section 5): "a central
//! entity repeatedly selects a random node, invokes its
//! `S&F-InitiateAction()` method, and waits for the completion of
//! `S&F-Receive` by the receiving node (in case a message was sent)". A
//! *round* is the period during which each node is expected to initiate
//! exactly one action — i.e. `n` random steps. The practical variant where
//! every node fires once per round in a random permutation is also provided
//! ([`Simulation::round_permuted`]).

use std::collections::{BTreeMap, HashMap};
use std::fmt;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use sandf_core::{
    InitiateOutcome, JoinError, Message, NodeId, NodeStats, ReceiveOutcome, SfConfig, SfNode,
};
use sandf_graph::{DependenceReport, MembershipGraph};
use sandf_obs::{duration_buckets, HistogramHandle, MetricsRegistry, SpanTimer};

use crate::degree::DegreeStats;
use crate::fault::{FaultCtx, FaultModel};

/// System-wide event counters, the simulator-side complement of
/// [`NodeStats`].
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct SimStats {
    /// Total initiate steps executed.
    pub actions: u64,
    /// Actions that were self-loop transformations.
    pub self_loops: u64,
    /// Messages produced.
    pub sent: u64,
    /// Messages dropped by the loss model.
    pub lost: u64,
    /// Messages addressed to a node that already left or failed.
    pub dead_letters: u64,
    /// Messages delivered and stored by the receiver.
    pub stored: u64,
    /// Messages delivered but deleted (receiver's view was full).
    pub deleted: u64,
    /// Sends that duplicated instead of clearing (`d(u) = d_L`).
    pub duplications: u64,
    /// Action steps skipped because the fault model's capacity gate was
    /// closed ([`FaultModel::node_acts`](crate::FaultModel::node_acts)
    /// returned `false`). Not counted in `actions`, so the
    /// `actions = self_loops + sent` ledger is unaffected.
    pub skipped: u64,
    /// Messages sent as replies to a delivered message (request/reply
    /// protocols on the generic engines; always 0 for S&F, which never
    /// replies). Replies are also counted in `sent`, so the ledgers read
    /// `sent = lost + dead_letters + stored + deleted (+ in_flight)` and
    /// `actions = self_loops + (sent − replies)`.
    pub replies: u64,
}

impl SimStats {
    /// Empirical duplication probability over non-self-loop actions, the
    /// quantity bounded by Lemma 6.7 (`ℓ ≤ dup ≤ ℓ + δ`).
    #[must_use]
    pub fn duplication_rate(&self) -> Option<f64> {
        (self.sent > 0).then(|| self.duplications as f64 / self.sent as f64)
    }

    /// Empirical deletion probability over non-self-loop actions.
    #[must_use]
    pub fn deletion_rate(&self) -> Option<f64> {
        (self.sent > 0).then(|| self.deleted as f64 / self.sent as f64)
    }

    /// Empirical loss rate over sent messages (includes dead letters, which
    /// are losses from the protocol's perspective).
    #[must_use]
    pub fn loss_rate(&self) -> Option<f64> {
        (self.sent > 0).then(|| (self.lost + self.dead_letters) as f64 / self.sent as f64)
    }
}

/// What happened during one simulation step, for observers.
///
/// Generic over the wire message `M` so the protocol-generic engines can
/// report their own message types; plain S&F engines use the default.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StepEvent<M = Message> {
    /// The initiator selected an empty slot; nothing was sent.
    SelfLoop,
    /// The initiator's step was skipped: the fault model's capacity gate
    /// was closed for this `(node, round)` pair, so no action ran and no
    /// RNG was consumed.
    Skipped,
    /// A message was produced but dropped by the loss model.
    Lost {
        /// The intended receiver.
        to: NodeId,
        /// The dropped message.
        message: M,
        /// Whether the send duplicated.
        duplicated: bool,
    },
    /// A message was addressed to a node that is no longer live.
    DeadLetter {
        /// The departed receiver.
        to: NodeId,
        /// The undeliverable message.
        message: M,
        /// Whether the send duplicated.
        duplicated: bool,
    },
    /// A message was delivered.
    Delivered {
        /// The receiver.
        to: NodeId,
        /// The delivered message.
        message: M,
        /// Whether the send duplicated.
        duplicated: bool,
        /// Whether the receiver deleted the ids (full view).
        deleted: bool,
    },
    /// A message was queued for later delivery (delayed simulations only).
    InFlight {
        /// The receiver.
        to: NodeId,
        /// The queued message.
        message: M,
        /// Whether the send duplicated.
        duplicated: bool,
        /// The global step at which delivery is scheduled.
        deliver_at: u64,
    },
}

/// Which part of the step machinery produced a [`StepReport`].
///
/// Under [`DelayModel::Immediate`] every report is an [`Action`]
/// (send and receive happen in one step). Under
/// [`DelayModel::UniformSteps`] a sent message first yields an `Action`
/// report with [`StepEvent::InFlight`], then — steps later — a separate
/// [`Delivery`] report with [`StepEvent::Delivered`] or
/// [`StepEvent::DeadLetter`]. Accounting consumers must key off this phase
/// to avoid double-counting sends.
///
/// [`Action`]: StepPhase::Action
/// [`Delivery`]: StepPhase::Delivery
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StepPhase {
    /// An initiate action by the reported node.
    Action,
    /// A delayed message reaching its receiver; the reported initiator is
    /// the original sender.
    Delivery,
}

/// A report of one step: who initiated and what happened.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct StepReport<M = Message> {
    /// The initiating node (for [`StepPhase::Delivery`] reports, the
    /// original sender of the delivered message).
    pub initiator: NodeId,
    /// The step's outcome.
    pub event: StepEvent<M>,
    /// Whether this report is an action or a delayed delivery.
    pub phase: StepPhase,
    /// The global step counter when the report was produced.
    pub step: u64,
}

/// An observer of the simulation's step-event stream.
///
/// Register with [`Simulation::subscribe`]; the callback fires once per
/// [`StepReport`], including the delayed-delivery reports that
/// [`Simulation::step_node`] does not return. Subscribers run inline on the
/// stepping thread, so keep callbacks cheap; they must be `Send` because
/// simulations migrate across sweep worker threads.
pub trait StepSubscriber<M = Message>: Send {
    /// Called after each step (and each delayed delivery) with its report.
    fn on_step(&mut self, report: &StepReport<M>);
}

impl<M, F: FnMut(&StepReport<M>) + Send> StepSubscriber<M> for F {
    fn on_step(&mut self, report: &StepReport<M>) {
        self(report);
    }
}

/// Message-delay model: how long a sent message stays in flight.
///
/// The paper's model breaks actions into single-node *steps* precisely so
/// that messages may be delayed and actions may overlap in time
/// (Section 4.1: "we allow communication to be asynchronous"). With
/// [`DelayModel::Immediate`] the receive step executes right after the send
/// (the central-entity execution of Section 5); with
/// [`DelayModel::UniformSteps`] each message is delivered a uniformly
/// random number of *global steps* later, so arbitrary actions interleave
/// with in-flight messages — the asynchrony the protocol claims to
/// tolerate, and the `delay` tests verify it does.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DelayModel {
    /// The receive step runs immediately after the send step.
    Immediate,
    /// Each delivered message arrives `1..=max` global steps after the
    /// send, sampled uniformly.
    UniformSteps {
        /// The largest possible delay, in steps.
        max: u64,
    },
}

/// A deterministic, seeded simulation of an S&F system under message loss.
///
/// # Examples
///
/// ```
/// use sandf_core::SfConfig;
/// use sandf_sim::{topology, Simulation, UniformLoss};
///
/// let config = SfConfig::new(16, 6)?;
/// let nodes = topology::circulant(64, config, 8);
/// let mut sim = Simulation::new(nodes, UniformLoss::new(0.01)?, 42);
/// sim.run_rounds(50);
/// assert!(sim.graph().is_weakly_connected());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct Simulation<L> {
    config: SfConfig,
    nodes: HashMap<NodeId, SfNode>,
    live: Vec<NodeId>,
    /// Streaming live-outdegree histogram, maintained around every
    /// initiate/receive and at join/leave.
    degree_hist: DegreeStats,
    loss: L,
    delay: DelayModel,
    /// Global step counter (drives in-flight delivery times).
    now: u64,
    /// Completed rounds — the time base for round-indexed fault models.
    rounds: u64,
    /// Messages in flight, keyed by delivery step.
    in_flight: BTreeMap<u64, Vec<(NodeId, Message)>>,
    rng: StdRng,
    stats: SimStats,
    next_id: u64,
    /// Registered step-event observers (not carried across clones).
    subscribers: Vec<Box<dyn StepSubscriber>>,
    /// Hot-path span histograms, when a profiler is attached.
    profile: Option<SimProfile>,
}

/// Span histograms for the engine's hot paths.
#[derive(Clone, Debug)]
struct SimProfile {
    step: HistogramHandle,
    deliver: HistogramHandle,
}

impl<L: Clone> Clone for Simulation<L> {
    /// Clones the simulation state. Subscribers are **not** cloned (boxed
    /// observers are not clonable); the clone starts with none. An attached
    /// profiler is shared: both simulations record into the same
    /// histograms.
    fn clone(&self) -> Self {
        Self {
            config: self.config,
            nodes: self.nodes.clone(),
            live: self.live.clone(),
            degree_hist: self.degree_hist.clone(),
            loss: self.loss.clone(),
            delay: self.delay,
            now: self.now,
            rounds: self.rounds,
            in_flight: self.in_flight.clone(),
            rng: self.rng.clone(),
            stats: self.stats,
            next_id: self.next_id,
            subscribers: Vec::new(),
            profile: self.profile.clone(),
        }
    }
}

impl<L: fmt::Debug> fmt::Debug for Simulation<L> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Simulation")
            .field("config", &self.config)
            .field("live", &self.live.len())
            .field("loss", &self.loss)
            .field("delay", &self.delay)
            .field("now", &self.now)
            .field("in_flight", &self.in_flight.values().map(Vec::len).sum::<usize>())
            .field("stats", &self.stats)
            .field("subscribers", &self.subscribers.len())
            .field("profiled", &self.profile.is_some())
            .finish_non_exhaustive()
    }
}

/// A node's outdegree as the histogram's bucket type.
fn deg_of(node: &SfNode) -> u32 {
    u32::try_from(node.out_degree()).expect("outdegree exceeds u32")
}

impl<L: FaultModel> Simulation<L> {
    /// Creates a simulation over the given nodes with a seeded RNG.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is empty, contains duplicate ids, or mixes
    /// configurations.
    #[must_use]
    pub fn new(nodes: Vec<SfNode>, loss: L, seed: u64) -> Self {
        assert!(!nodes.is_empty(), "simulation needs at least one node");
        let config = nodes[0].config();
        assert!(
            nodes.iter().all(|n| n.config() == config),
            "all nodes must share one configuration"
        );
        let live: Vec<NodeId> = nodes.iter().map(SfNode::id).collect();
        let next_id = live.iter().map(|id| id.as_u64() + 1).max().unwrap_or(0);
        let map: HashMap<NodeId, SfNode> = nodes.into_iter().map(|n| (n.id(), n)).collect();
        assert_eq!(map.len(), live.len(), "duplicate node ids");
        let degree_hist = DegreeStats::rebuild(config.view_size(), map.values().map(deg_of));
        Self {
            config,
            nodes: map,
            live,
            degree_hist,
            loss,
            delay: DelayModel::Immediate,
            now: 0,
            rounds: 0,
            in_flight: BTreeMap::new(),
            rng: StdRng::seed_from_u64(seed),
            stats: SimStats::default(),
            next_id,
            subscribers: Vec::new(),
            profile: None,
        }
    }

    /// Registers a step-event observer. All subsequent steps (and delayed
    /// deliveries) are reported to it, in registration order, after the
    /// engine's own counters update. See [`StepSubscriber`].
    pub fn subscribe(&mut self, subscriber: Box<dyn StepSubscriber>) {
        self.subscribers.push(subscriber);
    }

    /// Number of registered step-event observers.
    #[must_use]
    pub fn subscriber_count(&self) -> usize {
        self.subscribers.len()
    }

    /// Attaches hot-path profiling: `sim.profile.step_ns` and
    /// `sim.profile.deliver_ns` span histograms in `registry`. With a
    /// disabled registry the spans never read the clock.
    pub fn attach_profiler(&mut self, registry: &MetricsRegistry) {
        self.profile = Some(SimProfile {
            step: registry.histogram("sim.profile.step_ns", duration_buckets()),
            deliver: registry.histogram("sim.profile.deliver_ns", duration_buckets()),
        });
    }

    /// Reports `report` to every subscriber. Subscribers are moved out for
    /// the duration of the callbacks so they may call back into `self`.
    /// Kept out of line so the subscriber-free stepping path stays compact.
    #[cold]
    #[inline(never)]
    fn notify(&mut self, report: &StepReport) {
        let mut subs = std::mem::take(&mut self.subscribers);
        for sub in &mut subs {
            sub.on_step(report);
        }
        // A subscriber may itself have registered new subscribers.
        subs.append(&mut self.subscribers);
        self.subscribers = subs;
    }

    /// Creates a simulation with a message-delay model, so actions overlap
    /// in time (the asynchronous regime of Section 4.1).
    ///
    /// # Panics
    ///
    /// Panics on the same conditions as [`new`](Self::new), or when the
    /// delay bound is zero.
    #[must_use]
    pub fn with_delay(nodes: Vec<SfNode>, loss: L, delay: DelayModel, seed: u64) -> Self {
        if let DelayModel::UniformSteps { max } = delay {
            assert!(max > 0, "delay bound must be positive");
        }
        let mut sim = Self::new(nodes, loss, seed);
        sim.delay = delay;
        sim
    }

    /// Number of messages currently in flight (always 0 under
    /// [`DelayModel::Immediate`]).
    #[must_use]
    pub fn in_flight(&self) -> usize {
        self.in_flight.values().map(Vec::len).sum()
    }

    /// Delivers every in-flight message whose delivery time has arrived.
    /// When `reports` is given, each delivery appends a
    /// [`StepPhase::Delivery`] report (the subscriber path); `None` skips
    /// report assembly on the subscriber-free fast path.
    fn deliver_due(&mut self, mut reports: Option<&mut Vec<StepReport>>) {
        while let Some((&at, _)) = self.in_flight.first_key_value() {
            if at > self.now {
                break;
            }
            let (_, batch) = self.in_flight.pop_first().expect("checked nonempty");
            for (to, message) in batch {
                let event = self.deliver(to, message);
                if let Some(out) = reports.as_deref_mut() {
                    out.push(StepReport {
                        initiator: message.sender,
                        event,
                        phase: StepPhase::Delivery,
                        step: self.now,
                    });
                }
            }
        }
    }

    /// Executes the receive step at `to` (or counts a dead letter).
    fn deliver(&mut self, to: NodeId, message: Message) -> StepEvent {
        let _span = self.profile.as_ref().map(|p| SpanTimer::start(&p.deliver));
        match self.nodes.get_mut(&to) {
            None => {
                self.stats.dead_letters += 1;
                StepEvent::DeadLetter { to, message, duplicated: message.dependent }
            }
            Some(receiver) => {
                let deg_before = deg_of(receiver);
                let deleted =
                    matches!(receiver.receive(message, &mut self.rng), ReceiveOutcome::Deleted);
                self.degree_hist.shift(deg_before, deg_of(receiver));
                if deleted {
                    self.stats.deleted += 1;
                } else {
                    self.stats.stored += 1;
                }
                StepEvent::Delivered { to, message, duplicated: message.dependent, deleted }
            }
        }
    }

    /// The shared protocol configuration.
    #[must_use]
    pub fn config(&self) -> SfConfig {
        self.config
    }

    /// Number of live nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.live.len()
    }

    /// Whether no node is live.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.live.is_empty()
    }

    /// The ids of the live nodes (unspecified order).
    #[must_use]
    pub fn live_ids(&self) -> &[NodeId] {
        &self.live
    }

    /// A live node by id.
    #[must_use]
    pub fn node(&self, id: NodeId) -> Option<&SfNode> {
        self.nodes.get(&id)
    }

    /// Iterates over the live nodes (unspecified order).
    pub fn nodes(&self) -> impl Iterator<Item = &SfNode> {
        self.nodes.values()
    }

    /// Accumulated system-wide counters.
    #[must_use]
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// Resets system-wide and per-node counters (e.g. after burn-in).
    pub fn reset_stats(&mut self) {
        self.stats = SimStats::default();
        for node in self.nodes.values_mut() {
            node.reset_stats();
        }
    }

    /// Sum of all per-node counters.
    #[must_use]
    pub fn aggregate_node_stats(&self) -> NodeStats {
        let mut total = NodeStats::new();
        for node in self.nodes.values() {
            total.merge(node.stats());
        }
        total
    }

    /// Executes one step by a uniformly random live node (the paper's
    /// central-entity model).
    pub fn step(&mut self) -> StepReport {
        let initiator = self.live[self.rng.gen_range(0..self.live.len())];
        self.step_node(initiator)
    }

    /// Executes one step by a specific node.
    ///
    /// # Panics
    ///
    /// Panics if `initiator` is not live.
    pub fn step_node(&mut self, initiator: NodeId) -> StepReport {
        let _span = self.profile.as_ref().map(|p| SpanTimer::start(&p.step));
        self.now += 1;
        if self.subscribers.is_empty() {
            self.deliver_due(None);
        } else {
            self.deliver_due_observed();
        }
        if !self.loss.node_acts(initiator, self.rounds) {
            self.stats.skipped += 1;
            let report = StepReport {
                initiator,
                event: StepEvent::Skipped,
                phase: StepPhase::Action,
                step: self.now,
            };
            if !self.subscribers.is_empty() {
                self.notify(&report);
            }
            return report;
        }
        self.stats.actions += 1;
        let node = self.nodes.get_mut(&initiator).expect("initiator must be live");
        let deg_before = deg_of(node);
        let outcome = node.initiate(&mut self.rng);
        self.degree_hist.shift(deg_before, deg_of(node));
        let event = match outcome {
            InitiateOutcome::SelfLoop => {
                self.stats.self_loops += 1;
                StepEvent::SelfLoop
            }
            InitiateOutcome::Sent { to, message, duplicated, .. } => {
                self.stats.sent += 1;
                if duplicated {
                    self.stats.duplications += 1;
                }
                let ctx = FaultCtx { from: initiator, to, round: self.rounds };
                if self.loss.drops(ctx, &mut self.rng) {
                    self.stats.lost += 1;
                    StepEvent::Lost { to, message, duplicated }
                } else {
                    match self.delay {
                        DelayModel::Immediate => self.deliver(to, message),
                        DelayModel::UniformSteps { max } => {
                            let deliver_at = self.now + self.rng.gen_range(1..=max);
                            self.in_flight.entry(deliver_at).or_default().push((to, message));
                            StepEvent::InFlight { to, message, duplicated, deliver_at }
                        }
                    }
                }
            }
        };
        let report = StepReport { initiator, event, phase: StepPhase::Action, step: self.now };
        if !self.subscribers.is_empty() {
            self.notify(&report);
        }
        report
    }

    /// Delivers every message still in flight (advancing virtual time past
    /// the last scheduled delivery) — call before taking an
    /// end-of-experiment snapshot of a delayed simulation.
    pub fn settle(&mut self) {
        if let Some((&last, _)) = self.in_flight.last_key_value() {
            self.now = self.now.max(last);
            if self.subscribers.is_empty() {
                self.deliver_due(None);
            } else {
                self.deliver_due_observed();
            }
        }
    }

    /// The subscriber path of due-message delivery: collect the delivery
    /// reports, then notify. Out of line so it costs nothing when no
    /// subscriber is registered.
    #[cold]
    #[inline(never)]
    fn deliver_due_observed(&mut self) {
        let mut delivered = Vec::new();
        self.deliver_due(Some(&mut delivered));
        for report in &delivered {
            self.notify(report);
        }
    }

    /// Executes one round: `n` steps by uniformly random nodes, so that each
    /// node initiates once in expectation (Section 6.5's round definition).
    pub fn round(&mut self) {
        for _ in 0..self.live.len() {
            self.step();
        }
        self.rounds += 1;
    }

    /// Executes one round in which every live node initiates exactly once,
    /// in a fresh random order — the practical deployment pattern where
    /// every node runs a periodic timer.
    pub fn round_permuted(&mut self) {
        let mut order = self.live.clone();
        order.shuffle(&mut self.rng);
        for id in order {
            if self.nodes.contains_key(&id) {
                self.step_node(id);
            }
        }
        self.rounds += 1;
    }

    /// Completed rounds ([`round`](Self::round) /
    /// [`round_permuted`](Self::round_permuted) calls) — the time base
    /// round-indexed fault models see in [`FaultCtx::round`].
    #[must_use]
    pub fn rounds_run(&self) -> u64 {
        self.rounds
    }

    /// The fault model, for measurement-time inspection.
    #[must_use]
    pub fn fault(&self) -> &L {
        &self.loss
    }

    /// Applies `f` to the fault model — e.g. to aim a
    /// [`VictimLoss`](crate::VictimLoss) at the current high-indegree
    /// nodes at a phase boundary. The same hook exists on all three
    /// engines (the par engine applies it to every per-sender channel).
    pub fn update_fault(&mut self, mut f: impl FnMut(&mut L)) {
        f(&mut self.loss);
    }

    /// Runs `rounds` central-entity rounds.
    pub fn run_rounds(&mut self, rounds: usize) {
        for _ in 0..rounds {
            self.round();
        }
    }

    /// Runs one measurement replicate: `burn_in` rounds to reach the steady
    /// state, a stats reset, then `measure` measured rounds. Returns the
    /// simulation for inspection, so a worker thread can do
    /// `sim.run_replicate(b, m)` and read graphs/stats off the result.
    ///
    /// `Simulation` owns all of its state (no interior sharing), so this is
    /// safe to call from sweep worker threads — see the `simulation_is_send`
    /// test.
    #[must_use]
    pub fn run_replicate(mut self, burn_in: usize, measure: usize) -> Self {
        self.run_rounds(burn_in);
        self.reset_stats();
        self.run_rounds(measure);
        self
    }

    /// Adds a new node bootstrapped with `d_L` ids copied from a random
    /// position in `sponsor`'s view (the paper's joining rule, Section 5;
    /// the joiner starts with "the minimal possible outdegree `d_L` and
    /// indegree 0", Section 6.5). Returns the joiner's fresh id.
    ///
    /// # Errors
    ///
    /// Returns [`JoinError::TooFewIds`] if the sponsor's view holds fewer
    /// than `d_L` ids.
    ///
    /// # Panics
    ///
    /// Panics if `sponsor` is not live.
    pub fn join_via(&mut self, sponsor: NodeId) -> Result<NodeId, JoinError> {
        let d_l = self.config.lower_threshold();
        let sponsor_node = self.nodes.get(&sponsor).expect("sponsor must be live");
        let mut pool: Vec<NodeId> = sponsor_node.view().ids().collect();
        if pool.len() < d_l {
            return Err(JoinError::TooFewIds { supplied: pool.len(), d_l });
        }
        pool.shuffle(&mut self.rng);
        // An even bootstrap of exactly d_L ids (d_L is even by construction);
        // with d_L = 0 the joiner starts empty and integrates via receives.
        let bootstrap: Vec<NodeId> = pool.into_iter().take(d_l).collect();
        self.join_with(&bootstrap)
    }

    /// Adds a new node bootstrapped with the given ids.
    ///
    /// # Errors
    ///
    /// Propagates [`JoinError`] from [`SfNode::with_view`].
    pub fn join_with(&mut self, bootstrap: &[NodeId]) -> Result<NodeId, JoinError> {
        let id = NodeId::new(self.next_id);
        let node = SfNode::with_view(id, self.config, bootstrap)?;
        self.next_id += 1;
        self.degree_hist.add(deg_of(&node));
        self.nodes.insert(id, node);
        self.live.push(id);
        Ok(id)
    }

    /// Removes a node (a *leave* or *crash* — the paper treats them alike:
    /// the node simply stops participating, Section 5). Its id lingers in
    /// other views until the normal course of the protocol purges it
    /// (Section 6.5.2). Returns the removed node.
    pub fn leave(&mut self, id: NodeId) -> Option<SfNode> {
        let node = self.nodes.remove(&id)?;
        self.degree_hist.remove(deg_of(&node));
        let pos = self.live.iter().position(|&x| x == id).expect("live list out of sync");
        self.live.swap_remove(pos);
        Some(node)
    }

    /// Total multiplicity of `id` across all live views — the number of "id
    /// instances" tracked by the Section 6.5 decay analysis.
    #[must_use]
    pub fn count_id_instances(&self, id: NodeId) -> usize {
        self.nodes.values().map(|n| n.view().multiplicity(id)).sum()
    }

    /// Streaming degree statistics — the live outdegree histogram,
    /// maintained incrementally around every initiate/receive and at
    /// join/leave (`O(s)` snapshot, no per-node scan; equal to a
    /// from-scratch rebuild over the live nodes at all times).
    #[must_use]
    pub fn degree_stats(&self) -> &DegreeStats {
        &self.degree_hist
    }

    /// Snapshots the membership graph.
    #[must_use]
    pub fn graph(&self) -> MembershipGraph {
        // Iterate in live order for a deterministic snapshot.
        MembershipGraph::from_views(self.live.iter().map(|id| {
            let node = &self.nodes[id];
            (*id, node.view().ids().collect())
        }))
    }

    /// Measures spatial dependence across all live views (Property M4).
    #[must_use]
    pub fn dependence(&self) -> DependenceReport {
        DependenceReport::measure(self.nodes.values())
    }
}

#[cfg(test)]
mod tests {
    use crate::loss::UniformLoss;
    use crate::topology;

    use super::*;

    fn config() -> SfConfig {
        SfConfig::new(12, 4).unwrap()
    }

    fn small_sim(seed: u64) -> Simulation<UniformLoss> {
        let nodes = topology::circulant(24, config(), 4);
        Simulation::new(nodes, UniformLoss::none(), seed)
    }

    #[test]
    fn simulation_is_send() {
        // Sweep workers move simulations across threads; a non-Send field
        // sneaking in (an Rc, a raw pointer) should fail this at compile
        // time rather than at the executor.
        fn assert_send<T: Send>(_: &T) {}
        let sim = small_sim(1);
        assert_send(&sim);
        let sim = sim.run_replicate(5, 5);
        assert!(sim.stats().actions > 0);
    }

    #[test]
    fn steps_preserve_total_counts() {
        let mut sim = small_sim(1);
        for _ in 0..500 {
            sim.step();
        }
        let s = sim.stats();
        assert_eq!(s.actions, 500);
        assert_eq!(s.actions, s.self_loops + s.sent);
        assert_eq!(s.sent, s.lost + s.dead_letters + s.stored + s.deleted);
    }

    #[test]
    fn lossless_run_conserves_edges_with_dl_zero() {
        // Lemma 6.2: with ℓ = 0 and d_L = 0, sum degrees (hence total edge
        // count) are invariant.
        let config = SfConfig::lossless(12).unwrap();
        let nodes = topology::circulant(24, config, 4);
        let mut sim = Simulation::new(nodes, UniformLoss::none(), 5);
        let before = sim.graph().edge_count();
        sim.run_rounds(50);
        assert_eq!(sim.graph().edge_count(), before);
    }

    #[test]
    fn loss_shrinks_edges_without_duplication_floor() {
        // Without duplications (d_L = 0) and positive loss, ids drain away —
        // the failure mode S&F's threshold exists to prevent (Section 5).
        let config = SfConfig::lossless(12).unwrap();
        let nodes = topology::circulant(24, config, 4);
        let mut sim = Simulation::new(nodes, UniformLoss::new(0.2).unwrap(), 5);
        let before = sim.graph().edge_count();
        sim.run_rounds(100);
        let mid = sim.graph().edge_count();
        assert!(mid < before, "drain must start: {before} -> {mid}");
        sim.run_rounds(200);
        let after = sim.graph().edge_count();
        assert!(after < before / 2, "drain must continue: {before} -> {after}");
    }

    #[test]
    fn duplication_floor_keeps_system_alive_under_loss() {
        let nodes = topology::circulant(24, config(), 6);
        let mut sim = Simulation::new(nodes, UniformLoss::new(0.2).unwrap(), 5);
        sim.run_rounds(200);
        let g = sim.graph();
        let d_l = config().lower_threshold();
        assert!(g.out_degrees().iter().all(|&d| d >= d_l));
        assert!(sim.stats().duplications > 0);
    }

    #[test]
    fn same_seed_same_run() {
        let mut a = small_sim(33);
        let mut b = small_sim(33);
        a.run_rounds(20);
        b.run_rounds(20);
        assert_eq!(a.stats(), b.stats());
        let ga = a.graph();
        let gb = b.graph();
        for &id in ga.ids() {
            assert_eq!(ga.out_degree(id), gb.out_degree(id));
            assert_eq!(ga.in_degree(id), gb.in_degree(id));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = small_sim(1);
        let mut b = small_sim(2);
        a.run_rounds(20);
        b.run_rounds(20);
        assert_ne!(a.stats(), b.stats());
    }

    #[test]
    fn join_via_copies_dl_ids() {
        let mut sim = small_sim(7);
        sim.run_rounds(10);
        let sponsor = sim.live_ids()[0];
        let joiner = sim.join_via(sponsor).unwrap();
        let node = sim.node(joiner).unwrap();
        assert_eq!(node.out_degree(), config().lower_threshold());
        assert_eq!(sim.len(), 25);
        // The joiner's ids all point at previously existing nodes.
        assert!(node.view().ids().all(|id| id != joiner));
    }

    #[test]
    fn leave_makes_id_decay() {
        let mut sim = small_sim(9);
        sim.run_rounds(20);
        let victim = sim.live_ids()[3];
        let instances_before = sim.count_id_instances(victim);
        assert!(instances_before > 0);
        sim.leave(victim);
        assert_eq!(sim.len(), 23);
        sim.run_rounds(400);
        let instances_after = sim.count_id_instances(victim);
        assert!(
            instances_after < instances_before,
            "dead id should decay: {instances_before} -> {instances_after}"
        );
    }

    #[test]
    fn permuted_round_touches_every_node() {
        let mut sim = small_sim(11);
        sim.round_permuted();
        for node in sim.nodes() {
            assert_eq!(node.stats().initiated, 1);
        }
    }

    #[test]
    fn dead_letters_are_counted() {
        let mut sim = small_sim(13);
        let victim = sim.live_ids()[0];
        sim.leave(victim);
        sim.run_rounds(50);
        assert!(sim.stats().dead_letters > 0);
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn rejects_empty_node_set() {
        let _ = Simulation::new(Vec::new(), UniformLoss::none(), 0);
    }

    #[test]
    fn delayed_messages_conserve_the_ledger() {
        let nodes = topology::circulant(24, config(), 4);
        let mut sim = Simulation::with_delay(
            nodes,
            UniformLoss::new(0.05).unwrap(),
            DelayModel::UniformSteps { max: 40 },
            3,
        );
        for _ in 0..2_000 {
            sim.step();
        }
        let s = sim.stats();
        assert_eq!(
            s.sent,
            s.lost + s.dead_letters + s.stored + s.deleted + sim.in_flight() as u64,
            "message ledger out of balance"
        );
        assert!(sim.in_flight() > 0, "no message was ever in flight");
        sim.settle();
        assert_eq!(sim.in_flight(), 0);
        let s = sim.stats();
        assert_eq!(s.sent, s.lost + s.dead_letters + s.stored + s.deleted);
    }

    #[test]
    fn invariants_hold_under_heavy_delay() {
        // Observation 5.1 must survive arbitrarily interleaved actions —
        // the non-atomicity claim of Section 4.
        let nodes = topology::circulant(24, config(), 4);
        let mut sim = Simulation::with_delay(
            nodes,
            UniformLoss::new(0.1).unwrap(),
            DelayModel::UniformSteps { max: 200 },
            7,
        );
        for _ in 0..5_000 {
            sim.step();
            for node in sim.nodes() {
                let d = node.out_degree();
                assert_eq!(d % 2, 0);
                assert!((4..=12).contains(&d));
            }
        }
    }

    #[test]
    fn delayed_and_immediate_steady_states_agree() {
        // The asynchrony claim, quantitatively: delays must not move the
        // steady-state degree statistics.
        let mean_out = |delay: DelayModel| {
            let nodes = topology::circulant(128, config(), 8);
            let mut sim = Simulation::with_delay(nodes, UniformLoss::new(0.02).unwrap(), delay, 11);
            for _ in 0..128 * 400 {
                sim.step();
            }
            sim.settle();
            let graph = sim.graph();
            graph.out_degrees().iter().sum::<usize>() as f64 / 128.0
        };
        let immediate = mean_out(DelayModel::Immediate);
        let delayed = mean_out(DelayModel::UniformSteps { max: 64 });
        assert!(
            (immediate - delayed).abs() < 0.6,
            "asynchrony shifted the steady state: {immediate} vs {delayed}"
        );
    }

    #[test]
    #[should_panic(expected = "delay bound")]
    fn zero_delay_bound_is_rejected() {
        let nodes = topology::circulant(8, config(), 4);
        let _ = Simulation::with_delay(
            nodes,
            UniformLoss::none(),
            DelayModel::UniformSteps { max: 0 },
            0,
        );
    }

    #[test]
    fn targeted_loss_starves_only_the_victim() {
        use crate::loss::TargetedLoss;
        let victim = NodeId::new(0);
        let mut loss = TargetedLoss::new(0.0).unwrap();
        loss.set_target(victim, 0.95).unwrap();
        let nodes = topology::circulant(64, SfConfig::new(16, 6).unwrap(), 8);
        let mut sim = Simulation::new(nodes, loss, 17);
        sim.run_rounds(300);
        let graph = sim.graph();
        // The duplication floor keeps the victim alive and the overlay whole.
        assert!(graph.is_weakly_connected());
        let victim_out = graph.out_degree(victim).unwrap();
        assert!(victim_out >= 6, "victim fell below d_L: {victim_out}");
        // Everyone else is essentially loss-free.
        let mean: f64 = graph.out_degrees().iter().sum::<usize>() as f64 / 64.0;
        assert!(victim_out as f64 <= mean, "starved victim should not exceed the population mean");
    }

    #[test]
    fn subscriber_counts_match_sim_stats() {
        use std::sync::{Arc, Mutex};
        #[derive(Default)]
        struct Counts {
            actions: u64,
            deliveries: u64,
            self_loops: u64,
            lost: u64,
            delivered: u64,
        }
        let counts = Arc::new(Mutex::new(Counts::default()));
        let sink = Arc::clone(&counts);
        let nodes = topology::circulant(24, config(), 4);
        let mut sim = Simulation::new(nodes, UniformLoss::new(0.1).unwrap(), 21);
        sim.subscribe(Box::new(move |report: &StepReport| {
            let mut c = sink.lock().unwrap();
            match report.phase {
                StepPhase::Action => c.actions += 1,
                StepPhase::Delivery => c.deliveries += 1,
            }
            match report.event {
                StepEvent::SelfLoop => c.self_loops += 1,
                StepEvent::Lost { .. } => c.lost += 1,
                StepEvent::Delivered { .. } => c.delivered += 1,
                _ => {}
            }
        }));
        for _ in 0..600 {
            sim.step();
        }
        let c = counts.lock().unwrap();
        let s = sim.stats();
        assert_eq!(c.actions, s.actions);
        assert_eq!(c.self_loops, s.self_loops);
        assert_eq!(c.lost, s.lost);
        assert_eq!(c.delivered, s.stored + s.deleted);
        assert_eq!(c.deliveries, 0, "immediate mode never emits delivery-phase reports");
    }

    #[test]
    fn subscriber_sees_delayed_deliveries() {
        use std::sync::{Arc, Mutex};
        let log: Arc<Mutex<Vec<(StepPhase, StepEvent)>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&log);
        let nodes = topology::circulant(24, config(), 4);
        let mut sim = Simulation::with_delay(
            nodes,
            UniformLoss::none(),
            DelayModel::UniformSteps { max: 30 },
            23,
        );
        sim.subscribe(Box::new(move |r: &StepReport| {
            sink.lock().unwrap().push((r.phase, r.event))
        }));
        for _ in 0..500 {
            sim.step();
        }
        sim.settle();
        let log = log.lock().unwrap();
        let queued = log.iter().filter(|(_, e)| matches!(e, StepEvent::InFlight { .. })).count();
        let delivered = log
            .iter()
            .filter(|(p, e)| {
                *p == StepPhase::Delivery
                    && matches!(e, StepEvent::Delivered { .. } | StepEvent::DeadLetter { .. })
            })
            .count();
        assert!(queued > 0, "delayed mode must queue messages");
        assert_eq!(queued, delivered, "every queued message must produce a delivery report");
        let s = sim.stats();
        assert_eq!(delivered as u64, s.stored + s.deleted + s.dead_letters);
    }

    #[test]
    fn clones_do_not_carry_subscribers() {
        let mut sim = small_sim(1);
        sim.subscribe(Box::new(|_: &StepReport| {}));
        assert_eq!(sim.subscriber_count(), 1);
        assert_eq!(sim.clone().subscriber_count(), 0);
    }

    #[test]
    fn attached_profiler_records_spans() {
        let registry = MetricsRegistry::new();
        let mut sim = small_sim(31);
        sim.attach_profiler(&registry);
        sim.run_rounds(2);
        let hist = registry.histogram("sim.profile.step_ns", duration_buckets());
        assert_eq!(hist.count(), sim.stats().actions);
        assert!(registry.metric_names().contains(&"sim.profile.deliver_ns".to_string()));
    }

    #[test]
    fn capacity_gate_skips_steps_and_preserves_the_ledger() {
        use crate::fault::NodeCapacity;
        // Everyone slow with period 2: roughly half of all central-entity
        // steps are skipped, and both ledgers still balance.
        let model = NodeCapacity::new(7, 1.0, 2, 0.1).unwrap();
        let nodes = topology::circulant(24, config(), 4);
        let mut sim = Simulation::new(nodes, model, 19);
        sim.run_rounds(40);
        let s = *sim.stats();
        assert!(s.skipped > 0, "slow cohort never skipped");
        assert_eq!(s.actions + s.skipped, 40 * 24, "every step acts or skips");
        assert_eq!(s.actions, s.self_loops + s.sent);
        assert_eq!(s.sent, s.lost + s.dead_letters + s.stored + s.deleted);
        assert_eq!(sim.rounds_run(), 40);
        // Obs 5.1 still holds under the capacity fault.
        for node in sim.nodes() {
            let d = node.out_degree();
            assert_eq!(d % 2, 0);
            assert!((4..=12).contains(&d));
        }
    }

    #[test]
    fn update_fault_retargets_mid_run() {
        use crate::fault::VictimLoss;
        let victim = NodeId::new(5);
        let nodes = topology::circulant(24, config(), 4);
        let mut sim = Simulation::new(nodes, VictimLoss::new(1.0, 0.0).unwrap(), 23);
        sim.run_rounds(10);
        assert_eq!(sim.stats().lost, 0, "empty victim set must lose nothing");
        sim.update_fault(|f| f.set_victims(&[victim]));
        assert!(sim.fault().is_victim(victim));
        sim.run_rounds(30);
        assert!(sim.stats().lost > 0, "victim loss never fired after retarget");
    }

    #[test]
    fn reset_stats_zeroes_counters() {
        let mut sim = small_sim(15);
        sim.run_rounds(5);
        sim.reset_stats();
        assert_eq!(sim.stats(), &SimStats::default());
        assert_eq!(sim.aggregate_node_stats().initiated, 0);
    }
}
