//! Measurement hooks that accumulate statistics across simulation rounds.

use std::collections::HashMap;

use sandf_core::NodeId;
use sandf_graph::{chi_square_uniform, Histogram};

use crate::engine::Simulation;
use crate::loss::LossModel;

/// Accumulates in/outdegree histograms across snapshots, pooling all nodes —
/// the empirical counterpart of the degree-MC stationary distributions of
/// Figures 6.1 and 6.3.
#[derive(Clone, Debug, Default)]
pub struct DegreeSampler {
    out_degrees: Histogram,
    in_degrees: Histogram,
    samples: u64,
}

impl DegreeSampler {
    /// Creates an empty sampler.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records the degrees of every live node in the simulation.
    pub fn sample<L: LossModel>(&mut self, sim: &Simulation<L>) {
        let graph = sim.graph();
        for d in graph.out_degrees() {
            self.out_degrees.record(d);
        }
        for d in graph.in_degrees() {
            self.in_degrees.record(d);
        }
        self.samples += 1;
    }

    /// The pooled outdegree histogram.
    #[must_use]
    pub fn out_degrees(&self) -> &Histogram {
        &self.out_degrees
    }

    /// The pooled indegree histogram.
    #[must_use]
    pub fn in_degrees(&self) -> &Histogram {
        &self.in_degrees
    }

    /// Number of snapshots recorded.
    #[must_use]
    pub fn samples(&self) -> u64 {
        self.samples
    }
}

/// Counts, per node id, how often it appears in other nodes' views —
/// the empirical side of Property M3 / Lemma 7.6: in the steady state every
/// `v ≠ u` has the same probability of appearing in `u`'s view.
#[derive(Clone, Debug, Default)]
pub struct OccupancyCounter {
    appearances: HashMap<NodeId, u64>,
    snapshots: u64,
}

impl OccupancyCounter {
    /// Creates an empty counter.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records, for every live node `v`, the number of *other* views that
    /// currently contain `v` (presence, not multiplicity — matching the
    /// event `v ∈ u.lv`).
    pub fn sample<L: LossModel>(&mut self, sim: &Simulation<L>) {
        for viewer in sim.nodes() {
            let mut seen: Vec<NodeId> = viewer.view().ids().collect();
            seen.sort_unstable();
            seen.dedup();
            for v in seen {
                if v != viewer.id() {
                    *self.appearances.entry(v).or_insert(0) += 1;
                }
            }
        }
        self.snapshots += 1;
    }

    /// Appearance counts in an unspecified order (one entry per id seen).
    #[must_use]
    pub fn counts(&self) -> Vec<u64> {
        self.appearances.values().copied().collect()
    }

    /// Appearance count for a specific id.
    #[must_use]
    pub fn count(&self, id: NodeId) -> u64 {
        self.appearances.get(&id).copied().unwrap_or(0)
    }

    /// Number of snapshots recorded.
    #[must_use]
    pub fn snapshots(&self) -> u64 {
        self.snapshots
    }

    /// Pearson χ² statistic of the appearance counts against uniformity
    /// (`None` with fewer than two ids observed). Under Lemma 7.6 this
    /// should stay near its degrees of freedom (`ids − 1`) over long runs.
    #[must_use]
    pub fn chi_square(&self) -> Option<f64> {
        let counts = self.counts();
        chi_square_uniform(&counts)
    }

    /// The ratio between the most- and least-represented ids (`None` when
    /// degenerate). Close to 1 under uniformity.
    #[must_use]
    pub fn max_min_ratio(&self) -> Option<f64> {
        let counts = self.counts();
        let max = counts.iter().max()?;
        let min = counts.iter().min()?;
        (*min > 0).then(|| *max as f64 / *min as f64)
    }
}

#[cfg(test)]
mod tests {
    use sandf_core::SfConfig;

    use crate::loss::UniformLoss;
    use crate::topology;

    use super::*;

    fn sim() -> Simulation<UniformLoss> {
        let config = SfConfig::new(12, 4).unwrap();
        let nodes = topology::circulant(16, config, 4);
        Simulation::new(nodes, UniformLoss::none(), 3)
    }

    #[test]
    fn degree_sampler_pools_all_nodes() {
        let sim = sim();
        let mut sampler = DegreeSampler::new();
        sampler.sample(&sim);
        sampler.sample(&sim);
        assert_eq!(sampler.samples(), 2);
        assert_eq!(sampler.out_degrees().total(), 32);
        // Circulant: every outdegree is 4.
        assert_eq!(sampler.out_degrees().count(4), 32);
        assert_eq!(sampler.in_degrees().count(4), 32);
    }

    #[test]
    fn occupancy_counts_presence_not_multiplicity() {
        let sim = sim();
        // Duplicate an id inside one view: presence must count once.
        let viewer = sim.live_ids()[0];
        let seen = sim.node(viewer).unwrap().view().ids().next().unwrap();
        let mut counter = OccupancyCounter::new();
        counter.sample(&sim);
        let baseline = counter.count(seen);
        // Circulant(16, d0=4): each id appears in exactly 4 views.
        assert_eq!(baseline, 4);
        let _ = sim; // snapshot taken; nothing else to assert on sim
    }

    #[test]
    fn occupancy_chi_square_is_zero_for_regular_topology() {
        let sim = sim();
        let mut counter = OccupancyCounter::new();
        counter.sample(&sim);
        assert_eq!(counter.chi_square(), Some(0.0));
        assert_eq!(counter.max_min_ratio(), Some(1.0));
        assert_eq!(counter.snapshots(), 1);
    }
}
