//! Criterion micro-benchmarks of membership-graph analytics.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sandf_core::SfConfig;
use sandf_graph::{DegreeStats, DependenceReport, MembershipGraph};
use sandf_sim::topology;
use std::hint::black_box;

fn nodes() -> Vec<sandf_core::SfNode> {
    let config = SfConfig::new(40, 18).expect("paper parameters");
    let mut rng = StdRng::seed_from_u64(3);
    topology::random(1000, config, 30, &mut rng)
}

fn bench_snapshot(c: &mut Criterion) {
    let nodes = nodes();
    c.bench_function("graph/snapshot_n1000", |b| {
        b.iter(|| black_box(MembershipGraph::from_nodes(&nodes)));
    });
}

fn bench_connectivity(c: &mut Criterion) {
    let graph = MembershipGraph::from_nodes(&nodes());
    c.bench_function("graph/weak_connectivity_n1000", |b| {
        b.iter(|| black_box(graph.is_weakly_connected()));
    });
}

fn bench_degree_stats(c: &mut Criterion) {
    let graph = MembershipGraph::from_nodes(&nodes());
    let in_degrees = graph.in_degrees();
    c.bench_function("graph/degree_stats_n1000", |b| {
        b.iter(|| black_box(DegreeStats::from_samples(&in_degrees)));
    });
}

fn bench_dependence(c: &mut Criterion) {
    let nodes = nodes();
    c.bench_function("graph/dependence_report_n1000", |b| {
        b.iter(|| black_box(DependenceReport::measure(&nodes)));
    });
}

criterion_group!(benches, bench_snapshot, bench_connectivity, bench_degree_stats, bench_dependence);
criterion_main!(benches);
