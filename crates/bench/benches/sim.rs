//! Criterion micro-benchmarks of the simulator (actions per second at
//! various scales).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sandf_core::SfConfig;
use sandf_sim::{topology, Simulation, UniformLoss};
use std::hint::black_box;

fn bench_rounds(c: &mut Criterion) {
    let config = SfConfig::new(40, 18).expect("paper parameters");
    let mut group = c.benchmark_group("sim/round");
    for &n in &[100usize, 1000] {
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let nodes = topology::circulant(n, config, 30);
            let mut sim = Simulation::new(nodes, UniformLoss::new(0.01).expect("valid"), 1);
            sim.run_rounds(20); // warm into the steady state
            b.iter(|| {
                sim.round();
                black_box(sim.stats().actions)
            });
        });
    }
    group.finish();
}

fn bench_graph_snapshot(c: &mut Criterion) {
    let config = SfConfig::new(40, 18).expect("paper parameters");
    let nodes = topology::circulant(1000, config, 30);
    let mut sim = Simulation::new(nodes, UniformLoss::none(), 2);
    sim.run_rounds(50);
    c.bench_function("sim/graph_snapshot_n1000", |b| {
        b.iter(|| black_box(sim.graph().edge_count()));
    });
}

criterion_group!(benches, bench_rounds, bench_graph_snapshot);
criterion_main!(benches);
