//! Criterion micro-benchmarks of the core protocol steps.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sandf_core::{Message, NodeId, SfConfig, SfNode};
use std::hint::black_box;

fn bench_initiate(c: &mut Criterion) {
    let config = SfConfig::new(40, 18).expect("paper parameters");
    let bootstrap: Vec<NodeId> = (1..=30).map(NodeId::new).collect();
    let mut rng = StdRng::seed_from_u64(1);
    c.bench_function("protocol/initiate", |b| {
        let mut node =
            SfNode::with_view(NodeId::new(0), config, &bootstrap).expect("legal bootstrap");
        b.iter(|| {
            // Re-fill when the view drains so the bench stays in the steady
            // regime rather than measuring self-loops.
            if node.out_degree() <= config.lower_threshold() {
                node =
                    SfNode::with_view(NodeId::new(0), config, &bootstrap).expect("legal bootstrap");
            }
            black_box(node.initiate(&mut rng))
        });
    });
}

fn bench_receive(c: &mut Criterion) {
    let config = SfConfig::new(40, 18).expect("paper parameters");
    let bootstrap: Vec<NodeId> = (1..=18).map(NodeId::new).collect();
    let mut rng = StdRng::seed_from_u64(2);
    let message = Message::new(NodeId::new(99), NodeId::new(98), false);
    c.bench_function("protocol/receive", |b| {
        let mut node =
            SfNode::with_view(NodeId::new(0), config, &bootstrap).expect("legal bootstrap");
        b.iter(|| {
            if node.out_degree() >= config.view_size() {
                node =
                    SfNode::with_view(NodeId::new(0), config, &bootstrap).expect("legal bootstrap");
            }
            black_box(node.receive(message, &mut rng))
        });
    });
}

fn bench_codec(c: &mut Criterion) {
    let message = Message::new(NodeId::new(7), NodeId::new(9), true);
    c.bench_function("protocol/codec_roundtrip", |b| {
        b.iter(|| {
            let bytes = sandf_net::codec::encode(black_box(message));
            black_box(sandf_net::codec::decode(&bytes).expect("roundtrip"))
        });
    });
}

criterion_group!(benches, bench_initiate, bench_receive, bench_codec);
criterion_main!(benches);
