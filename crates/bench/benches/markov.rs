//! Criterion micro-benchmarks of the Markov-chain numerics.

use criterion::{criterion_group, criterion_main, Criterion};
use sandf_core::SfConfig;
use sandf_markov::{AnalyticalDegrees, DegreeMc, DegreeMcParams, ExactGlobalMc};
use std::hint::black_box;

fn bench_analytical(c: &mut Criterion) {
    c.bench_function("markov/analytical_law_dm90", |b| {
        b.iter(|| black_box(AnalyticalDegrees::new(90).expect("even")));
    });
}

fn bench_degree_mc_small(c: &mut Criterion) {
    let config = SfConfig::new(16, 6).expect("legal");
    c.bench_function("markov/degree_mc_solve_s16", |b| {
        b.iter(|| {
            black_box(DegreeMc::solve(DegreeMcParams::new(config, 0.01)).expect("converges"))
        });
    });
}

fn bench_exact_enumeration(c: &mut Criterion) {
    let initial = vec![vec![1, 2], vec![0, 2], vec![0, 1]];
    c.bench_function("markov/exact_global_n3", |b| {
        b.iter(|| {
            black_box(
                ExactGlobalMc::build(initial.clone(), 6, 0, 0.0, 100_000).expect("enumerable"),
            )
        });
    });
}

criterion_group!(benches, bench_analytical, bench_degree_mc_small, bench_exact_enumeration);
criterion_main!(benches);
