//! PR 4 determinism regression: the struct-of-arrays fast path must be
//! **byte-identical** to the classic engine, pinned against recorded
//! golden outputs.
//!
//! For 3 seeds × {`UniformLoss`, `GilbertElliott`} the goldens record,
//! from the classic engine (whose behavior this PR does not touch — so
//! they are the pre-PR outputs by construction):
//!
//! * the `SimStats` debug rendering after a delayed, settled run,
//! * the full `SimRecorder` obs exposition (`render_prometheus`), and
//! * the loss-ablation sweep TSV (which also pins the hoisted-topology
//!   sweep path: building the circulant once per cell and cloning it per
//!   replicate must not move a byte).
//!
//! Every golden is then asserted twice: the classic engine must still
//! reproduce it (guarding the goldens themselves against drift), and the
//! flat engine must reproduce it byte-for-byte (the equivalence claim).
//!
//! To regenerate after an *intentional* RNG/format change:
//!
//! ```text
//! UPDATE_GOLDENS=1 cargo test -p sandf-bench --test flat_equivalence
//! ```

use std::path::PathBuf;

use sandf_bench::sweeps::loss_ablation_table;
use sandf_core::{NodeId, SfConfig, SfNode};
use sandf_obs::MetricsRegistry;
use sandf_sim::{
    topology, DelayModel, FlatSimulation, GilbertElliott, LossModel, SimRecorder, Simulation,
    UniformLoss,
};

const SEEDS: [u64; 3] = [11, 42, 2009];
const ROUNDS: usize = 30;

fn config() -> SfConfig {
    SfConfig::new(16, 6).expect("legal config")
}

fn nodes() -> Vec<SfNode> {
    topology::circulant(64, config(), 10)
}

fn uniform() -> UniformLoss {
    UniformLoss::new(0.05).expect("valid rate")
}

fn bursty() -> GilbertElliott {
    GilbertElliott::new(0.05, 0.2, 0.01, 0.5).expect("valid channel")
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden").join(name)
}

/// One scenario's artifact: final `SimStats` plus the recorder's full
/// Prometheus exposition. Both are deterministic (counter metrics only —
/// no wall-clock spans), so byte equality is the right bar.
fn classic_artifact<L: LossModel>(loss: L, seed: u64) -> String {
    let registry = MetricsRegistry::new();
    let mut sim = Simulation::with_delay(nodes(), loss, DelayModel::UniformSteps { max: 8 }, seed);
    sim.subscribe(Box::new(SimRecorder::new(&registry)));
    sim.run_rounds(ROUNDS);
    sim.settle();
    format!("{:?}\n{}", sim.stats(), registry.render_prometheus())
}

fn flat_artifact<L: LossModel>(loss: L, seed: u64) -> String {
    let registry = MetricsRegistry::new();
    let mut sim =
        FlatSimulation::with_delay(nodes(), loss, DelayModel::UniformSteps { max: 8 }, seed);
    sim.subscribe(Box::new(SimRecorder::new(&registry)));
    sim.run_rounds(ROUNDS);
    sim.settle();
    format!("{:?}\n{}", sim.stats(), registry.render_prometheus())
}

fn sweep_artifact() -> String {
    loss_ablation_table(60, 10, 10, 2, 99)
}

/// The combined scenario the isolated tests above do not cover: churn
/// (`leave` + `join_via`) **and** a bursty Gilbert–Elliott channel
/// **and** `round_permuted` scheduling, all under delayed delivery. Every
/// epoch runs five permuted rounds, removes one of the original nodes
/// (stranding its in-flight traffic as dead letters), and joins a
/// replacement via a still-live sponsor; the run then settles. The two
/// engines must stay in lockstep through all of it — same RNG draw
/// sequence, same joiner ids, same dead letters, byte-identical artifact.
macro_rules! churn_artifact {
    ($engine:ident, $loss:expr, $seed:expr) => {{
        let registry = MetricsRegistry::new();
        let mut sim =
            $engine::with_delay(nodes(), $loss, DelayModel::UniformSteps { max: 8 }, $seed);
        sim.subscribe(Box::new(SimRecorder::new(&registry)));
        for epoch in 0..4u64 {
            for _ in 0..5 {
                sim.round_permuted();
            }
            sim.leave(NodeId::new(epoch)).expect("original node is live");
            sim.join_via(NodeId::new(epoch + 10)).expect("sponsor has enough neighbours");
        }
        sim.settle();
        format!("{:?}\n{}", sim.stats(), registry.render_prometheus())
    }};
}

/// The scenario grid: golden file name → classic/flat artifact producers.
fn scenarios() -> Vec<(String, String, String)> {
    let mut all = Vec::new();
    for seed in SEEDS {
        all.push((
            format!("pr4_uniform_{seed}.txt"),
            classic_artifact(uniform(), seed),
            flat_artifact(uniform(), seed),
        ));
        all.push((
            format!("pr4_gilbert_elliott_{seed}.txt"),
            classic_artifact(bursty(), seed),
            flat_artifact(bursty(), seed),
        ));
    }
    all
}

#[test]
fn flat_engine_matches_recorded_goldens() {
    let update = std::env::var("UPDATE_GOLDENS").is_ok();
    if update {
        std::fs::create_dir_all(golden_path("")).expect("golden dir");
    }
    for (name, classic, flat) in scenarios() {
        let path = golden_path(&name);
        if update {
            // Goldens are always written from the classic engine.
            std::fs::write(&path, &classic).expect("write golden");
        }
        let golden = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("missing golden {name} ({e}); run with UPDATE_GOLDENS=1"));
        assert_eq!(classic, golden, "{name}: classic engine drifted from its own golden");
        assert_eq!(flat, golden, "{name}: flat engine is not byte-identical to the golden");
    }
}

#[test]
fn combined_churn_bursty_permuted_scenario_stays_in_lockstep() {
    let update = std::env::var("UPDATE_GOLDENS").is_ok();
    if update {
        std::fs::create_dir_all(golden_path("")).expect("golden dir");
    }
    for seed in SEEDS {
        let name = format!("pr5_churn_ge_permuted_{seed}.txt");
        let path = golden_path(&name);
        let classic = churn_artifact!(Simulation, bursty(), seed);
        let flat = churn_artifact!(FlatSimulation, bursty(), seed);
        if update {
            // Goldens are always written from the classic engine.
            std::fs::write(&path, &classic).expect("write golden");
        }
        let golden = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("missing golden {name} ({e}); run with UPDATE_GOLDENS=1"));
        assert_eq!(classic, golden, "{name}: classic engine drifted from its own golden");
        assert_eq!(flat, golden, "{name}: flat engine fell out of lockstep under combined churn");
        // The scenario only earns its keep if churn actually strands
        // traffic: the settled run must have seen dead letters.
        assert!(
            golden.contains("dead_letters: "),
            "{name}: artifact lost the stats debug rendering"
        );
    }
}

#[test]
fn hoisted_sweep_tsv_matches_recorded_golden() {
    let name = "pr4_loss_ablation.tsv";
    let path = golden_path(name);
    let actual = sweep_artifact();
    if std::env::var("UPDATE_GOLDENS").is_ok() {
        std::fs::create_dir_all(golden_path("")).expect("golden dir");
        std::fs::write(&path, &actual).expect("write golden");
    }
    let golden = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden {name} ({e}); run with UPDATE_GOLDENS=1"));
    assert_eq!(actual, golden, "{name}: sweep TSV drifted (topology hoist must not move a byte)");
}
