//! Determinism regression test for the sweep executor: one spec, executed
//! serially and on thread pools of several sizes, must produce
//! byte-identical summary tables. This is the executor's core contract —
//! seeds derive from `(base_seed, cell key, replicate)` alone, and
//! aggregation reassembles results in task order, so neither thread count
//! nor completion order can leak into the output.

use rand::rngs::StdRng;
use rand::RngCore;
use sandf_bench::sweep::{default_threads, SweepCell, SweepSpec};
use sandf_core::SfConfig;
use sandf_sim::experiment::ExperimentParams;
use sandf_sim::Simulation;

struct LossCell {
    loss: f64,
}

impl SweepCell for LossCell {
    fn key(&self) -> String {
        format!("loss={}", self.loss)
    }
}

/// A real simulation workload (not a toy arithmetic closure): builds an
/// S&F system per replicate and measures steady-state statistics, exactly
/// the way the bench sweeps do.
fn simulate(cell: &LossCell, rng: &mut StdRng) -> Vec<f64> {
    let config = SfConfig::new(16, 6).expect("legal config");
    let params =
        ExperimentParams { n: 48, config, loss: cell.loss, burn_in: 0, seed: rng.next_u64() };
    let sim: Simulation<_> = params.build_simulation().run_replicate(30, 30);
    let graph = sim.graph();
    let out = graph.out_degrees();
    let mean_out = out.iter().sum::<usize>() as f64 / out.len() as f64;
    vec![mean_out, sim.stats().duplications as f64, sim.stats().lost as f64]
}

const METRICS: &[&str] = &["mean_out", "duplications", "lost"];

#[test]
fn serial_and_parallel_sweeps_are_byte_identical() {
    let spec = SweepSpec::new(
        vec![LossCell { loss: 0.0 }, LossCell { loss: 0.05 }, LossCell { loss: 0.1 }],
        6,
        2026,
    );
    let serial = spec.run_with_threads(1, METRICS, simulate);
    let serial_tsv = serial.to_tsv(&["loss"], |c| vec![format!("{}", c.loss)]);

    // The default pool (whatever width this machine gives it) and two
    // fixed widths straddling typical core counts.
    let default_pool = spec.run(METRICS, simulate);
    assert_eq!(
        serial_tsv,
        default_pool.to_tsv(&["loss"], |c| vec![format!("{}", c.loss)]),
        "default pool ({} threads) diverged from serial execution",
        default_threads()
    );
    for threads in [2, 5, 16] {
        let pooled = spec.run_with_threads(threads, METRICS, simulate);
        assert_eq!(
            serial_tsv,
            pooled.to_tsv(&["loss"], |c| vec![format!("{}", c.loss)]),
            "{threads}-thread pool diverged from serial execution"
        );
    }
}

#[test]
fn base_seed_changes_results_but_reruns_do_not() {
    let spec_a = SweepSpec::new(vec![LossCell { loss: 0.05 }], 4, 1);
    let spec_b = SweepSpec::new(vec![LossCell { loss: 0.05 }], 4, 2);
    let a1 = spec_a.run(METRICS, simulate).to_tsv(&["loss"], |c| vec![format!("{}", c.loss)]);
    let a2 = spec_a.run(METRICS, simulate).to_tsv(&["loss"], |c| vec![format!("{}", c.loss)]);
    let b = spec_b.run(METRICS, simulate).to_tsv(&["loss"], |c| vec![format!("{}", c.loss)]);
    assert_eq!(a1, a2, "identical specs must reproduce identical tables");
    assert_ne!(a1, b, "a different base seed must give different replicate streams");
}
