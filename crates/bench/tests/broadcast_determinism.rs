//! PR 10 determinism regression: the rumor layer must be **bit-identical
//! across engines and thread counts**, pinned against recorded goldens.
//!
//! For 3 seeds × {`UniformLoss`, `GilbertElliott`} membership loss (the
//! rumor channel mirrors the pairing: `Uniform` / `Bursty`), the goldens
//! record a per-round [`BroadcastLayer::fingerprint`] trail plus the final
//! [`SpreadReport`] debug rendering:
//!
//! * `pr10_broadcast_*` — produced by the classic engine and asserted
//!   against the classic *and* flat engines in lockstep: per-round equal
//!   fingerprints mean the broadcast state never diverges by a bit.
//! * `pr10_broadcast_par_*` — produced by the 1-thread par engine and
//!   asserted for threads ∈ {1, 2, 8}: thread count may change
//!   wall-clock, never a byte of rumor state.
//!
//! The goldens also freeze the rumor RNG-stream derivation (tags `b'g'` /
//! `b'h'` over the FNV layout) — a change shows up here as a diff, not as
//! silent drift.
//!
//! To regenerate after an *intentional* RNG/format change:
//!
//! ```text
//! UPDATE_GOLDENS=1 cargo test -p sandf-bench --test broadcast_determinism
//! ```

use std::fmt::Write as _;
use std::path::PathBuf;

use sandf_core::{NodeId, SfConfig, SfNode};
use sandf_sim::{
    topology, BroadcastConfig, BroadcastLayer, Engine, FlatSimulation, GilbertElliott, LossModel,
    ParSimulation, RumorChannel, Simulation, UniformLoss,
};

const SEEDS: [u64; 3] = [11, 42, 2009];
const THREADS: [usize; 3] = [1, 2, 8];
const ROUNDS: usize = 30;

fn config() -> SfConfig {
    SfConfig::new(16, 6).expect("legal config")
}

fn nodes() -> Vec<SfNode> {
    topology::circulant(64, config(), 10)
}

fn uniform() -> UniformLoss {
    UniformLoss::new(0.05).expect("valid rate")
}

fn bursty() -> GilbertElliott {
    GilbertElliott::new(0.05, 0.2, 0.01, 0.5).expect("valid channel")
}

/// The rumor channel paired with each membership-loss scenario.
fn rumor_channel(scenario: &str) -> RumorChannel {
    match scenario {
        "uniform" => RumorChannel::Uniform { rate: 0.1 },
        _ => RumorChannel::Bursty { to_bad: 0.1, to_good: 0.3, loss_good: 0.02, loss_bad: 0.7 },
    }
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden").join(name)
}

/// One scenario's artifact: the per-round broadcast fingerprint trail
/// plus the final spread report. Fingerprints are order-independent
/// digests of the full rumor state, so byte equality of the artifact is
/// bit equality of the layer.
fn broadcast_artifact<E: Engine>(mut sim: E, seed: u64, rumor: RumorChannel) -> String {
    let mut layer =
        BroadcastLayer::with_channel(seed, BroadcastConfig::push_pull(1, u8::MAX), rumor);
    layer.seed_rumor_at(NodeId::new(0));
    let mut out = String::new();
    for round in 1..=ROUNDS {
        sim.round();
        layer.step(&sim);
        writeln!(out, "round {round:02} fingerprint {:016x}", layer.fingerprint())
            .expect("write to string");
    }
    writeln!(out, "{:?}", layer.report()).expect("write to string");
    out
}

fn check_golden(name: &str, reference: &str, others: &[(String, String)]) {
    let path = golden_path(name);
    if std::env::var("UPDATE_GOLDENS").is_ok() {
        std::fs::create_dir_all(golden_path("")).expect("golden dir");
        std::fs::write(&path, reference).expect("write golden");
    }
    let golden = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden {name} ({e}); run with UPDATE_GOLDENS=1"));
    assert_eq!(reference, golden, "{name}: reference run is not byte-identical to the golden");
    for (label, artifact) in others {
        assert_eq!(artifact, &golden, "{name}: {label} run is not byte-identical to the golden");
    }
}

/// Classic ↔ flat lockstep: the same seeds, loss, and rumor channel must
/// yield bit-identical broadcast state on both engines, round by round.
#[test]
fn classic_and_flat_broadcast_match_recorded_goldens() {
    fn scenario<L: LossModel + Clone + Send + 'static>(loss: L, name: &str, seed: u64) {
        let classic = broadcast_artifact(
            Simulation::new(nodes(), loss.clone(), seed),
            seed,
            rumor_channel(name),
        );
        let flat =
            broadcast_artifact(FlatSimulation::new(nodes(), loss, seed), seed, rumor_channel(name));
        check_golden(
            &format!("pr10_broadcast_{name}_{seed}.txt"),
            &classic,
            &[("flat-engine".to_string(), flat)],
        );
    }
    for seed in SEEDS {
        scenario(uniform(), "uniform", seed);
        scenario(bursty(), "gilbert_elliott", seed);
    }
}

/// Par byte-identity: the broadcast state over `ParSimulation` must not
/// depend on the thread count.
#[test]
fn par_broadcast_is_byte_identical_for_every_thread_count() {
    fn scenario<L: LossModel + Clone + Send + 'static>(loss: L, name: &str, seed: u64) {
        let artifacts: Vec<(String, String)> = THREADS
            .iter()
            .map(|&t| {
                let sim = ParSimulation::new(nodes(), loss.clone(), seed, t);
                (format!("{t}-thread"), broadcast_artifact(sim, seed, rumor_channel(name)))
            })
            .collect();
        check_golden(
            &format!("pr10_broadcast_par_{name}_{seed}.txt"),
            &artifacts[0].1.clone(),
            &artifacts[1..],
        );
    }
    for seed in SEEDS {
        scenario(uniform(), "uniform", seed);
        scenario(bursty(), "gilbert_elliott", seed);
    }
}
