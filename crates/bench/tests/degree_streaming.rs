//! PR 9 streaming-statistics invariant, on all three engines.
//!
//! The engines maintain a live outdegree histogram ([`DegreeStats`])
//! incrementally — every store/delete shifts one bucket — so measure
//! paths no longer rebuild an `O(n·s)` graph snapshot. The invariant
//! pinned here: after **any** schedule of rounds, joins, leaves, fault
//! swings, and settles, the streaming histogram equals a from-scratch
//! rebuild over the live nodes' degree ledgers.
//!
//! A second suite pins the u32 slot arena against the classic engine on
//! *sparse, large* node ids (well past 2¹⁶, non-contiguous): any narrow
//! truncation inside the arena would alias ids and break lockstep.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sandf_core::{NodeId, SfConfig, SfNode};
use sandf_sim::{
    topology, DegreeStats, DelayModel, Engine, FlatSimulation, ParSimulation, Simulation,
    UniformLoss,
};

const SEEDS: [u64; 3] = [11, 42, 2009];

fn config() -> SfConfig {
    SfConfig::new(16, 6).expect("legal config")
}

fn nodes() -> Vec<SfNode> {
    topology::circulant(48, config(), 6)
}

/// The invariant: streaming histogram == rebuild over the live ledgers.
fn assert_streaming_matches_rebuild<E: Engine>(sim: &E, ctx: &str) {
    let streaming = sim.degree_stats();
    let s = sim.config().view_size();
    let live = sim.live_ids();
    let rebuild = DegreeStats::rebuild(
        s,
        live.iter().map(|&id| {
            let d = sim.out_degree_of(id).expect("live node has a degree ledger");
            u32::try_from(d).expect("degree fits u32")
        }),
    );
    assert_eq!(streaming, rebuild, "{ctx}: streaming histogram diverged from rebuild");
    assert_eq!(
        usize::try_from(streaming.live_nodes()).expect("live count fits usize"),
        live.len(),
        "{ctx}: histogram mass diverged from the live set"
    );
}

/// Drives a random schedule (rounds, joins, leaves, loss swings, settles)
/// and checks the invariant after every operation.
fn random_schedule<E: Engine<Fault = UniformLoss>>(mut sim: E, seed: u64, label: &str) {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5f5f);
    assert_streaming_matches_rebuild(&sim, &format!("{label} initial"));
    for step in 0..60 {
        match rng.gen_range(0..10u32) {
            0..=4 => sim.round(),
            5 => {
                // Fault swing mid-run: the histogram must track through
                // the new loss regime.
                let rate = f64::from(rng.gen_range(0u32..500)) / 1000.0;
                sim.update_fault(|f| *f = UniformLoss::new(rate).expect("legal rate"));
                sim.round();
            }
            6 | 7 => {
                let live = sim.live_ids();
                let sponsor = live[rng.gen_range(0..live.len())];
                // A sponsor thinned below d_L legitimately refuses.
                let _ = sim.join_via(sponsor);
            }
            8 => {
                let live = sim.live_ids();
                if live.len() > 8 {
                    let target = live[rng.gen_range(0..live.len())];
                    assert!(sim.leave(target), "{label}: live node refused to leave");
                }
            }
            _ => sim.settle(),
        }
        assert_streaming_matches_rebuild(&sim, &format!("{label} step {step}"));
    }
    sim.settle();
    assert_streaming_matches_rebuild(&sim, &format!("{label} settled"));
}

#[test]
fn classic_streaming_stats_survive_random_schedules() {
    for seed in SEEDS {
        let sim = Simulation::with_delay(
            nodes(),
            UniformLoss::new(0.05).expect("legal rate"),
            DelayModel::UniformSteps { max: 8 },
            seed,
        );
        random_schedule(sim, seed, "classic");
    }
}

#[test]
fn flat_streaming_stats_survive_random_schedules() {
    for seed in SEEDS {
        let sim = FlatSimulation::with_delay(
            nodes(),
            UniformLoss::new(0.05).expect("legal rate"),
            DelayModel::UniformSteps { max: 8 },
            seed,
        );
        random_schedule(sim, seed, "flat");
    }
}

#[test]
fn par_streaming_stats_survive_random_schedules() {
    for seed in SEEDS {
        for threads in [1usize, 3] {
            let sim = ParSimulation::with_delay(
                nodes(),
                UniformLoss::new(0.05).expect("legal rate"),
                DelayModel::UniformSteps { max: 8 },
                seed,
                threads,
            );
            random_schedule(sim, seed, &format!("par/{threads}"));
        }
    }
}

/// Sparse, large ids: a ring whose ids stride by 99 991 starting at one
/// million. Any 16-bit (or narrower) truncation in the arena aliases
/// distinct ids; the id → dense table stays a modest ~17 MB.
fn sparse_nodes() -> Vec<SfNode> {
    let ids: Vec<u64> = (0..32u64).map(|i| 1_000_000 + i * 99_991).collect();
    let n = ids.len();
    ids.iter()
        .enumerate()
        .map(|(i, &id)| {
            let targets: Vec<NodeId> = (1..=6).map(|k| NodeId::new(ids[(i + k) % n])).collect();
            SfNode::with_view(NodeId::new(id), config(), &targets).expect("legal bootstrap")
        })
        .collect()
}

/// Every observable the Engine trait exposes, for cross-engine lockstep
/// comparison on the sparse-id arena.
fn engine_observables<E: Engine>(sim: &E) -> String {
    let mut out = format!("{:?}\nin_flight={}\n", sim.stats(), sim.in_flight());
    let mut live = sim.live_ids();
    live.sort_unstable();
    for id in live {
        out.push_str(&format!(
            "{id}: deg={:?} refs={}\n",
            sim.out_degree_of(id),
            sim.count_id_instances(id)
        ));
    }
    out.push_str(&format!("hist={:?}\n", sim.degree_stats().histogram()));
    out
}

#[test]
fn u32_arena_stays_in_lockstep_with_classic_on_sparse_large_ids() {
    for seed in SEEDS {
        let loss = || UniformLoss::new(0.05).expect("legal rate");
        let mut classic = Simulation::new(sparse_nodes(), loss(), seed);
        let mut flat = FlatSimulation::new(sparse_nodes(), loss(), seed);
        for round in 0..30 {
            classic.round();
            flat.round();
            assert_eq!(
                engine_observables(&classic),
                engine_observables(&flat),
                "seed {seed} round {round}: flat fell out of lockstep on sparse ids"
            );
        }
        // Churn with freshly minted ids (max sparse id + 1 onward): the
        // widening boundary at join must hand both engines the same ids.
        for epoch in 0..4 {
            let sponsor = classic.live_ids()[0];
            assert_eq!(classic.join_via(sponsor), flat.join_via(sponsor));
            let victim = classic.live_ids()[epoch * 3];
            // The inherent `leave` returns the departed node.
            assert!(classic.leave(victim).is_some());
            assert!(flat.leave(victim).is_some());
            classic.round();
            flat.round();
            assert_eq!(
                engine_observables(&classic),
                engine_observables(&flat),
                "seed {seed} epoch {epoch}: flat diverged under sparse-id churn"
            );
        }
        classic.settle();
        flat.settle();
        assert_eq!(engine_observables(&classic), engine_observables(&flat));
    }
}

#[test]
fn par_on_sparse_large_ids_is_thread_count_independent() {
    for seed in SEEDS {
        let build = |threads| {
            ParSimulation::new(
                sparse_nodes(),
                UniformLoss::new(0.05).expect("legal rate"),
                seed,
                threads,
            )
        };
        let mut one = build(1);
        one.run_rounds(30);
        for threads in [2usize, 7] {
            let mut other = build(threads);
            other.run_rounds(30);
            assert_eq!(
                engine_observables(&one),
                engine_observables(&other),
                "seed {seed}: par/{threads} diverged from par/1 on sparse ids"
            );
        }
    }
}
