//! Property tests of the sweep executor's `Summary` aggregation layer.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use sandf_bench::sweep::Summary;

/// Sample values in a tame range: large enough to exercise signs and
/// magnitudes, small enough that permutation-summation error stays within
/// the tolerance below.
fn arb_samples() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec((-1_000_000i64..1_000_000).prop_map(|k| k as f64 / 1000.0), 1..64)
}

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-9 * (1.0 + a.abs().max(b.abs()))
}

proptest! {
    /// Summaries are permutation-invariant up to floating-point summation
    /// error: the statistics describe the sample *set*, not its order.
    #[test]
    fn permutation_invariant(samples in arb_samples(), seed in any::<u64>()) {
        let reference = Summary::from_samples(&samples);
        let mut shuffled = samples;
        shuffled.shuffle(&mut StdRng::seed_from_u64(seed));
        let permuted = Summary::from_samples(&shuffled);
        prop_assert_eq!(reference.count, permuted.count);
        prop_assert!(close(reference.mean, permuted.mean));
        prop_assert!(close(reference.std_dev, permuted.std_dev));
        prop_assert!(close(reference.ci95, permuted.ci95));
        prop_assert_eq!(reference.min, permuted.min);
        prop_assert_eq!(reference.max, permuted.max);
    }

    /// A singleton sample IS its summary: mean = min = max = the sample,
    /// and there is no spread to report.
    #[test]
    fn singleton_is_exact(x in -1_000_000i64..1_000_000) {
        let x = x as f64 / 1000.0;
        let s = Summary::from_samples(&[x]);
        prop_assert_eq!(s.count, 1);
        prop_assert_eq!(s.mean, x);
        prop_assert_eq!(s.min, x);
        prop_assert_eq!(s.max, x);
        prop_assert_eq!(s.std_dev, 0.0);
        prop_assert_eq!(s.ci95, 0.0);
    }

    /// Constant samples have zero spread regardless of count, and the mean
    /// reproduces the constant exactly (no accumulation drift).
    #[test]
    fn constant_samples_have_zero_spread(x in -1_000_000i64..1_000_000, count in 1usize..64) {
        let x = x as f64 / 1000.0;
        let samples = vec![x; count];
        let s = Summary::from_samples(&samples);
        prop_assert_eq!(s.count, count);
        prop_assert!(close(s.mean, x));
        prop_assert!(close(s.std_dev, 0.0));
        prop_assert!(close(s.ci95, 0.0));
        prop_assert_eq!(s.min, x);
        prop_assert_eq!(s.max, x);
    }

    /// Structural invariants on arbitrary samples: min ≤ mean ≤ max, the
    /// spread statistics are non-negative, and ci95 < std for n ≥ 2 (the
    /// 1.96/√n factor shrinks below 1 from n = 4 on; for n ∈ {2, 3} it
    /// stays below 1.96/√2).
    #[test]
    fn ordering_invariants(samples in arb_samples()) {
        let s = Summary::from_samples(&samples);
        prop_assert_eq!(s.count, samples.len());
        prop_assert!(s.min <= s.max);
        prop_assert!(s.min <= s.mean + 1e-9 && s.mean <= s.max + 1e-9);
        prop_assert!(s.std_dev >= 0.0);
        prop_assert!(s.ci95 >= 0.0);
        prop_assert!(close(s.ci95, 1.96 * s.std_dev / (s.count as f64).sqrt()) || s.count < 2);
    }
}
