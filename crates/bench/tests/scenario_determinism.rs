//! PR 6 determinism regression: the scenario runner is **byte-identical
//! for any thread count**, pinned against recorded golden outputs.
//!
//! For 3 seeds × {partition-heal, weak-links (per-link), hub-loss
//! (targeted victims + churn)} the goldens record the full envelope TSV
//! plus the `sim.fault.*` counter exposition from a run with 1 engine
//! thread. Every golden is then asserted for engine threads ∈ {1, 2, 8}
//! — following the `par_determinism.rs` pattern: thread count may change
//! wall-clock, never a byte of output. The goldens also freeze the
//! scenario → `ScheduledFault` compilation and the per-replicate salt
//! derivation; a change to either shows up here as a diff, not as silent
//! drift.
//!
//! To regenerate after an *intentional* change:
//!
//! ```text
//! UPDATE_GOLDENS=1 cargo test -p sandf-bench --test scenario_determinism
//! ```

use std::path::PathBuf;

use sandf_bench::scenario::{builtin_specs, run_scenario, with_seed, MC_MEAN_TOLERANCE};
use sandf_obs::MetricsRegistry;

const SEEDS: [u64; 3] = [11, 42, 2009];
const THREADS: [usize; 3] = [1, 2, 8];
const SCENARIOS: [&str; 3] = ["partition-heal", "weak-links", "hub-loss"];

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden").join(name)
}

/// One scenario's artifact at a seed: envelope TSV + `sim.fault.*`
/// counters. Counters are order-independent sums, so they are as
/// thread-count-invariant as the table itself.
fn artifact(scenario_name: &str, seed: u64, threads: usize) -> String {
    let spec = builtin_specs()
        .iter()
        .find(|&&(name, _)| name == scenario_name)
        .unwrap_or_else(|| panic!("unknown builtin {scenario_name}"))
        .1;
    let mut scenario = with_seed(spec, seed);
    // Toy scale: the builtins' structure (phases, fault families, churn)
    // at a fraction of the cost — determinism is scale-independent.
    scenario.n = 48;
    scenario.replicates = 2;
    let registry = MetricsRegistry::new();
    let report = run_scenario(&scenario, threads, &registry);
    let counters: String = registry
        .render_prometheus()
        .lines()
        .filter(|line| line.contains("sim_fault"))
        .map(|line| format!("{line}\n"))
        .collect();
    format!("{}{counters}", report.to_tsv(MC_MEAN_TOLERANCE))
}

#[test]
fn scenario_runner_matches_recorded_goldens_for_every_thread_count() {
    let update = std::env::var("UPDATE_GOLDENS").is_ok();
    if update {
        std::fs::create_dir_all(golden_path("")).expect("golden dir");
    }
    for scenario in SCENARIOS {
        for seed in SEEDS {
            let name = format!("pr6_scenario_{}_{seed}.txt", scenario.replace('-', "_"));
            let path = golden_path(&name);
            if update {
                // Goldens are always written from the 1-thread run.
                std::fs::write(&path, artifact(scenario, seed, 1)).expect("write golden");
            }
            let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
                panic!("missing golden {name} ({e}); run with UPDATE_GOLDENS=1")
            });
            for threads in THREADS {
                assert_eq!(
                    artifact(scenario, seed, threads),
                    golden,
                    "{name}: {threads}-thread run is not byte-identical to the golden"
                );
            }
        }
    }
}

#[test]
fn sweep_worker_count_does_not_leak_into_the_report() {
    // The executor's own thread pool (SANDF_SWEEP_THREADS) is the second
    // axis of parallelism; pin it per-process here by running the same
    // scenario twice in-process — the sweep uses the same default both
    // times — and asserting the seeds-only contract: same spec + same
    // seed → same bytes, different seed → different bytes.
    let a = artifact("partition-heal", 11, 2);
    let b = artifact("partition-heal", 11, 2);
    assert_eq!(a, b, "same spec and seed must reproduce byte-identically");
    let c = artifact("partition-heal", 42, 2);
    assert_ne!(a, c, "distinct base seeds should give distinct replicate draws");
}
