//! PR 6 statistical envelope: the scenario runner's measurements must
//! *agree* with the references where agreement is the correct answer, and
//! must *disagree* where it is not — both directions are load-bearing.
//!
//! **Agreement** — a pure uniform-loss scenario is the paper's own model,
//! so its measured mean indegree must sit inside the CI band around
//! the §6.2 degree-MC prediction (the `par_statistics.rs` anchor), and
//! within the combined ci95 of a scheduling-matched classic-engine
//! baseline (`round_permuted`), plus the pinned phase-split allowance the
//! par engine is known to carry.
//!
//! **Divergence** — a long hard 2-region partition has the *same marginal
//! loss rate* (0.5) as a uniform channel, but utterly different dynamics:
//! cross-region entries are destroyed on every send attempt while
//! in-region gossip keeps succeeding, so views purify regionally, the
//! realized loss rate decays far below the marginal, and the indegree
//! recovers toward the lossless value — which the degree MC at ℓ = 0.5
//! cannot predict. The envelope must flag this `OUT`; if it ever stops
//! doing so, the harness has lost its detection power and a correlated
//! fault could masquerade as uniform loss.

use sandf_bench::scenario::{run_scenario, Scenario, MC_MEAN_TOLERANCE};
use sandf_bench::sweep::Summary;
use sandf_core::SfConfig;
use sandf_graph::DegreeStats;
use sandf_obs::MetricsRegistry;
use sandf_sim::{topology, Simulation, UniformLoss};

/// Measured phase-split bias allowance, as pinned by `par_statistics.rs`.
const PHASE_SPLIT_MEAN_ALLOWANCE: f64 = 0.75;

const CLASSIC_SEEDS: [u64; 5] = [3, 11, 42, 271, 2009];
const ROUNDS: usize = 100;
const LOSS: f64 = 0.01;

const UNIFORM_SPEC: &str = "\
scenario uniform-envelope
n 192
view 16 6
degree 12
replicates 5
seed 2009
burn_in 0

phase 100 uniform 0.01
";

const PARTITION_SPEC: &str = "\
scenario hard-partition
n 96
view 16 6
degree 10
replicates 5
seed 2009
burn_in 10

phase 200 partition 2 1 0
";

fn classic_mean_indegree() -> Summary {
    let config = SfConfig::new(16, 6).expect("legal config");
    let samples: Vec<f64> = CLASSIC_SEEDS
        .iter()
        .map(|&seed| {
            let nodes = topology::circulant(192, config, 12);
            let loss = UniformLoss::new(LOSS).expect("valid rate");
            let mut sim = Simulation::new(nodes, loss, seed);
            for _ in 0..ROUNDS {
                sim.round_permuted();
            }
            DegreeStats::from_samples(&sim.graph().in_degrees()).mean
        })
        .collect();
    Summary::from_samples(&samples)
}

#[test]
fn uniform_scenario_agrees_with_the_degree_mc_prediction() {
    let scenario = Scenario::parse(UNIFORM_SPEC).expect("spec parses");
    let report = run_scenario(&scenario, 2, &MetricsRegistry::new());
    let row = &report.outcomes[0];
    assert_eq!(
        row.within_envelope(MC_MEAN_TOLERANCE),
        Some(true),
        "uniform loss is the paper's model; measured {:.4}±{:.4} must sit within \
         {MC_MEAN_TOLERANCE} + ci95 of the degree-MC prediction {:?}",
        row.mean_in.mean,
        row.mean_in.ci95,
        row.mc_mean,
    );
    // The realized per-send loss rate must track the configured rate.
    assert!(
        (row.loss_rate.mean - LOSS).abs() <= 3.0 * row.loss_rate.ci95.max(0.003),
        "realized loss rate {:.4} strays from the configured {LOSS}",
        row.loss_rate.mean
    );
}

#[test]
fn uniform_scenario_agrees_with_the_classic_engine_within_ci95() {
    let scenario = Scenario::parse(UNIFORM_SPEC).expect("spec parses");
    let report = run_scenario(&scenario, 2, &MetricsRegistry::new());
    let measured = &report.outcomes[0].mean_in;
    let classic = classic_mean_indegree();
    let gap = (measured.mean - classic.mean).abs();
    let band = measured.ci95 + classic.ci95 + PHASE_SPLIT_MEAN_ALLOWANCE;
    assert!(
        gap <= band,
        "scenario runner {:.4}±{:.4} vs classic baseline {:.4}±{:.4} — gap {gap:.4} \
         exceeds the combined ci95 + phase-split allowance ({band:.4})",
        measured.mean,
        measured.ci95,
        classic.mean,
        classic.ci95,
    );
}

#[test]
fn hard_partition_fails_the_envelope_proving_detection_power() {
    let scenario = Scenario::parse(PARTITION_SPEC).expect("spec parses");
    let report = run_scenario(&scenario, 2, &MetricsRegistry::new());
    let row = &report.outcomes[0];
    assert_eq!(
        row.within_envelope(MC_MEAN_TOLERANCE),
        Some(false),
        "a 200-round hard partition must escape the uniform envelope: measured \
         {:.4}±{:.4} vs predicted {:?} — if this is now inside the band, the \
         envelope has lost its detection power",
        row.mean_in.mean,
        row.mean_in.ci95,
        row.mc_mean,
    );
    // The gap should be decisive, not marginal.
    let gap = row.mc_gap().expect("the degree MC converges at 0.5");
    assert!(gap >= 2.0, "divergence gap {gap:.4} has become marginal");
    // And the mechanism must be the predicted one: regional view
    // purification collapses the realized loss rate far below the 0.5
    // marginal rate a uniform channel would hold.
    assert!(
        row.loss_rate.mean < row.effective_rate - 0.1,
        "realized loss {:.4} no longer decays below the marginal {:.4} — the \
         purification dynamic changed",
        row.loss_rate.mean,
        row.effective_rate,
    );
}
