//! Golden-output smoke test of the refactored `indegree_stats` path.
//!
//! Runs the §6.4 indegree sweep at toy scale (n = 32, s = 16, d_L = 6,
//! 2 replicates — the paper-scale degree MC is too slow for a debug-mode
//! test) and compares the TSV byte-for-byte against a recorded snapshot.
//! This pins three things at once: the sweep executor's seeding scheme
//! (`FNV1a64("<base>/<cell key>/<replicate>")`), the vendored RNG's
//! streams, and the table-emission format. Any intentional change to one
//! of those shows up as a readable TSV diff here rather than as silent
//! drift in every experiment.

use sandf_bench::sweeps::{indegree_table_for, SampleScale};
use sandf_core::SfConfig;

const GOLDEN: &str = "\
loss\tpaper_mean\tpaper_std\tmc_mean\tmc_std\tsim_in_mean_mean\tsim_in_mean_ci95\tsim_in_std_mean\tsim_in_std_ci95
0\t-\t-\t10.163279\t2.642995\t10.484375\t0.061250\t1.966430\t0.237989
0.050000\t-\t-\t9.350590\t2.983136\t9.843750\t0.612500\t2.475867\t0.449937
0.100000\t-\t-\t8.745782\t3.190417\t8.789062\t0.076563\t2.501988\t0.339333
";

#[test]
fn indegree_table_matches_golden_snapshot() {
    let config = SfConfig::new(16, 6).expect("legal config");
    let scale = SampleScale { n: 32, burn_in: 50, samples: 4, sample_every: 2 };
    let actual = indegree_table_for(config, &[0.0, 0.05, 0.1], &[None, None, None], scale, 2, 7);
    assert_eq!(
        actual, GOLDEN,
        "indegree TSV drifted from the snapshot; if the change is intentional \
         (new seeding scheme, RNG, or format), update GOLDEN from the actual \
         output above"
    );
}
