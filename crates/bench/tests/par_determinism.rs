//! PR 5 determinism regression: `ParSimulation` must be **byte-identical
//! for any thread count**, pinned against recorded golden outputs.
//!
//! For 3 seeds × {`UniformLoss`, `GilbertElliott`} the goldens record,
//! from a single-threaded par run (threads = 1 exercises the same
//! shard/merge code path without spawning — it *is* the parallel
//! semantics, serialized):
//!
//! * the `SimStats` debug rendering after a delayed, settled run,
//! * the full `SimRecorder` obs exposition (`render_prometheus`), and
//! * the `par_degree_table` sweep TSV (pinning the engine end to end
//!   through the replicated-sweep executor).
//!
//! Every golden is then asserted for threads ∈ {1, 2, 8}: thread count
//! may change wall-clock, never a byte of output. The goldens also freeze
//! the par RNG-stream derivation itself — a change to the FNV layout or
//! the merge ordering shows up here as a diff, not as silent drift.
//!
//! To regenerate after an *intentional* RNG/format change:
//!
//! ```text
//! UPDATE_GOLDENS=1 cargo test -p sandf-bench --test par_determinism
//! ```

use std::path::PathBuf;

use sandf_bench::sweeps::par_degree_table;
use sandf_core::{SfConfig, SfNode};
use sandf_obs::MetricsRegistry;
use sandf_sim::{
    topology, DelayModel, GilbertElliott, LossModel, ParSimulation, SimRecorder, UniformLoss,
};

const SEEDS: [u64; 3] = [11, 42, 2009];
const THREADS: [usize; 3] = [1, 2, 8];
const ROUNDS: usize = 30;

fn config() -> SfConfig {
    SfConfig::new(16, 6).expect("legal config")
}

fn nodes() -> Vec<SfNode> {
    topology::circulant(64, config(), 10)
}

fn uniform() -> UniformLoss {
    UniformLoss::new(0.05).expect("valid rate")
}

fn bursty() -> GilbertElliott {
    GilbertElliott::new(0.05, 0.2, 0.01, 0.5).expect("valid channel")
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden").join(name)
}

/// One scenario's artifact: final `SimStats` plus the recorder's full
/// Prometheus exposition after a delayed, settled run. Counter metrics
/// only — no wall-clock spans — so byte equality is the right bar.
fn par_artifact<L: LossModel + Clone + Send>(loss: L, seed: u64, threads: usize) -> String {
    let registry = MetricsRegistry::new();
    let mut sim = ParSimulation::with_delay(
        nodes(),
        loss,
        DelayModel::UniformSteps { max: 6 },
        seed,
        threads,
    );
    sim.subscribe(Box::new(SimRecorder::new(&registry)));
    sim.run_rounds(ROUNDS);
    sim.settle();
    format!("{:?}\n{}", sim.stats(), registry.render_prometheus())
}

/// The scenario grid: golden file name → artifact producer per thread
/// count.
fn scenarios() -> Vec<(String, Vec<String>)> {
    let mut all = Vec::new();
    for seed in SEEDS {
        all.push((
            format!("pr5_par_uniform_{seed}.txt"),
            THREADS.iter().map(|&t| par_artifact(uniform(), seed, t)).collect(),
        ));
        all.push((
            format!("pr5_par_gilbert_elliott_{seed}.txt"),
            THREADS.iter().map(|&t| par_artifact(bursty(), seed, t)).collect(),
        ));
    }
    all
}

#[test]
fn par_engine_matches_recorded_goldens_for_every_thread_count() {
    let update = std::env::var("UPDATE_GOLDENS").is_ok();
    if update {
        std::fs::create_dir_all(golden_path("")).expect("golden dir");
    }
    for (name, artifacts) in scenarios() {
        let path = golden_path(&name);
        if update {
            // Goldens are always written from the single-threaded run.
            std::fs::write(&path, &artifacts[0]).expect("write golden");
        }
        let golden = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("missing golden {name} ({e}); run with UPDATE_GOLDENS=1"));
        for (&threads, artifact) in THREADS.iter().zip(&artifacts) {
            assert_eq!(
                *artifact, golden,
                "{name}: {threads}-thread run is not byte-identical to the golden"
            );
        }
    }
}

#[test]
fn par_sweep_tsv_matches_recorded_golden_for_every_thread_count() {
    let name = "pr5_par_degree.tsv";
    let path = golden_path(name);
    let artifacts: Vec<String> =
        THREADS.iter().map(|&t| par_degree_table(48, 10, 10, t, 2, 99)).collect();
    if std::env::var("UPDATE_GOLDENS").is_ok() {
        std::fs::create_dir_all(golden_path("")).expect("golden dir");
        std::fs::write(&path, &artifacts[0]).expect("write golden");
    }
    let golden = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden {name} ({e}); run with UPDATE_GOLDENS=1"));
    for (&threads, artifact) in THREADS.iter().zip(&artifacts) {
        assert_eq!(
            *artifact, golden,
            "{name}: {threads}-thread sweep TSV is not byte-identical to the golden"
        );
    }
}
