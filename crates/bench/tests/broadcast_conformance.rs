//! PR 10 statistical conformance: rumor spread time must *agree* with the
//! Doerr et al. `log₂ n + ln n` yardstick where agreement is the correct
//! answer, and must *disagree* where it is not — both directions are
//! load-bearing, mirroring the PR 6 scenario envelope.
//!
//! **Agreement** — fanout-1 push over live S&F views bootstrapped from a
//! seeded random topology is (approximately) the random phone-call model
//! the bound is stated for: the measured rounds-to-99 % must sit within
//! `ci95 + DOERR_TOLERANCE_ROUNDS` of `log₂ n + ln n`, at n = 10³ and
//! n = 10⁴. The tolerance absorbs what the model idealizes away — views
//! of size ~16 instead of fresh uniform samples, 1 % membership-channel
//! loss, and the 99 % milestone sitting slightly off the bound's
//! `n − o(n)` regime. It is pinned tight: calibration runs put the gap at
//! ~0.7 rounds (n = 10³) and ~1.3 rounds (n = 10⁴).
//!
//! **Divergence** — a hard 2-region partition of the *rumor* channel
//! must leave the prediction band decisively: coverage saturates near the
//! origin region's share and the 99 % milestone is never reached. If the
//! gap ever becomes marginal, the conformance harness has lost its
//! detection power and a partitioned dissemination could masquerade as
//! healthy spread.

use sandf_bench::sweep::Summary;
use sandf_core::SfConfig;
use sandf_sim::{
    doerr_spread_prediction, topology, BroadcastConfig, BroadcastLayer, Engine, FlatSimulation,
    RumorChannel, SpreadReport, UniformLoss,
};

/// Additive slack (in rounds) around the `log₂ n + ln n` prediction; see
/// the module docs for what it absorbs and the calibrated gaps.
const DOERR_TOLERANCE_ROUNDS: f64 = 2.5;

/// Pinned minimum relative gap for the divergence direction: the
/// partition run's (sentinel) spread time must exceed the prediction by
/// at least this factor.
const PARTITION_MIN_GAP: f64 = 2.0;

const SEEDS: [u64; 5] = [3, 11, 42, 271, 2009];
const BURN_IN: usize = 20;
const ROUNDS: usize = 60;

/// One lossless-rumor spread over live S&F views (1 % membership loss —
/// the rumor channel, not the membership channel, is the lossless part).
fn spread(n: usize, seed: u64, channel: RumorChannel) -> SpreadReport {
    let config = SfConfig::new(16, 6).expect("legal config");
    let mut sim = FlatSimulation::new(
        topology::random_iter(n, config, 8, seed),
        UniformLoss::new(0.01).expect("valid rate"),
        seed,
    );
    sim.run_rounds(BURN_IN);
    let mut layer = BroadcastLayer::with_channel(seed, BroadcastConfig::default(), channel);
    let origin = Engine::live_ids(&sim).into_iter().min().expect("non-empty sim");
    layer.seed_rumor_at(origin);
    layer.run(&mut sim, ROUNDS);
    layer.report()
}

/// `to_99` with the `rounds + 1` sentinel for never-reached, as a sample.
fn to_99_sample(report: &SpreadReport) -> f64 {
    report.to_99.map_or((ROUNDS + 1) as f64, |r| r as f64)
}

fn to_99_summary(n: usize, channel: &RumorChannel) -> Summary {
    let samples: Vec<f64> =
        SEEDS.iter().map(|&seed| to_99_sample(&spread(n, seed, channel.clone()))).collect();
    Summary::from_samples(&samples)
}

#[test]
fn lossless_spread_time_tracks_the_doerr_prediction() {
    for n in [1_000usize, 10_000] {
        let measured = to_99_summary(n, &RumorChannel::Lossless);
        let predicted = doerr_spread_prediction(n);
        let gap = (measured.mean - predicted).abs();
        let band = measured.ci95 + DOERR_TOLERANCE_ROUNDS;
        assert!(
            gap <= band,
            "n = {n}: rounds-to-99% {:.2}±{:.2} strays {gap:.2} rounds from the \
             log₂n+ln n prediction {predicted:.2} (band {band:.2})",
            measured.mean,
            measured.ci95,
        );
    }
}

#[test]
fn hard_partition_leaves_the_doerr_band_proving_detection_power() {
    let n = 1_000usize;
    let channel = RumorChannel::Partition { regions: 2, sever: 1.0, base: 0.0 };
    let measured = to_99_summary(n, &channel);
    let predicted = doerr_spread_prediction(n);
    // The sentinel must dominate: 99 % is unreachable when half the
    // system is unreachable, so the gap is decisive, not marginal.
    let gap = (measured.mean - predicted) / predicted;
    assert!(
        gap >= PARTITION_MIN_GAP,
        "hard-partition spread time {:.2} is only {gap:.2}× beyond the prediction \
         {predicted:.2} — the conformance check has lost its detection power",
        measured.mean,
    );
    // And the mechanism must be the predicted one: the rumor saturates
    // the origin's region and never crosses.
    let report = spread(n, SEEDS[0], channel);
    assert!(
        report.coverage <= 0.5 + 0.01,
        "partition coverage {:.4} exceeds the origin region's share",
        report.coverage
    );
    assert!(report.to_99.is_none(), "99 % coverage should be unreachable under a hard partition");
}
