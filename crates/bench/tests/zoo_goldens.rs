//! PR 8 golden: the protocol zoo on the unified fast engines.
//!
//! `zoo_engine_table` drives S&F, the three baselines, and the three
//! Section 5 variants through the `Engine`/`ProtocolBehavior` traits on
//! both `FlatSimulation` and `ParSimulation`, at toy scale, and the TSV
//! is pinned byte-for-byte. This freezes the behavior implementations'
//! RNG draw schedules and the trait plumbing end to end: a change to any
//! behavior's arena walk, to the engines' delivery order, or to the sweep
//! executor's seeding shows up here as a readable diff.
//!
//! The par engine is additionally asserted thread-count invariant through
//! the zoo path (threads ∈ {1, 2, 8} inside `zoo_engine_table` would need
//! plumbing; instead the whole table is re-run and must reproduce).
//!
//! To regenerate after an *intentional* RNG/format change:
//!
//! ```text
//! UPDATE_GOLDENS=1 cargo test -p sandf-bench --test zoo_goldens
//! ```

use std::path::PathBuf;

use sandf_bench::sweeps::zoo_engine_table;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden").join(name)
}

#[test]
fn zoo_engine_table_matches_recorded_golden() {
    let name = "pr8_zoo_engine.tsv";
    let path = golden_path(name);
    let actual = zoo_engine_table(32, 12, 0.05, 2, 88);
    if std::env::var("UPDATE_GOLDENS").is_ok() {
        std::fs::create_dir_all(golden_path("")).expect("golden dir");
        std::fs::write(&path, &actual).expect("write golden");
    }
    let golden = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden {name} ({e}); run with UPDATE_GOLDENS=1"));
    assert_eq!(
        actual, golden,
        "zoo TSV drifted from the snapshot; if the change is intentional \
         (behavior RNG schedule, engine delivery order, seeding, or format), \
         regenerate with UPDATE_GOLDENS=1"
    );
    assert_eq!(actual, zoo_engine_table(32, 12, 0.05, 2, 88), "rerun must reproduce");
}

#[test]
fn zoo_table_reproduces_the_section_3_1_taxonomy() {
    // The drainage taxonomy must hold on the fast engines at modest scale:
    // lossy shuffle bleeds ids, S&F and the variants stay at or above
    // their duplication-compensated floor, push variants never shrink.
    let tsv = zoo_engine_table(48, 30, 0.10, 3, 19);
    let total = |protocol: &str, engine: &str| -> f64 {
        let row = tsv
            .lines()
            .find(|l| l.starts_with(&format!("{protocol}\t{engine}\t")))
            .unwrap_or_else(|| panic!("missing row {protocol}/{engine}"));
        row.split('\t').nth(2).expect("total_ids_mean column").parse().expect("numeric mean")
    };
    let initial = 48.0 * 8.0;
    for engine in ["flat", "par"] {
        assert!(
            total("shuffle", engine) < initial * 0.8,
            "shuffle must drain under loss on {engine}"
        );
        for protocol in ["sandf", "replace", "undelete", "batched"] {
            assert!(
                total(protocol, engine) >= initial * 0.8,
                "{protocol} must hold its id population on {engine}"
            );
        }
        assert!(total("push_pull", engine) >= initial, "push-pull never shrinks on {engine}");
    }
}
