//! PR 6 scenario-spec contract: the declarative grammar round-trips
//! through its canonical printer (`parse ∘ print = id` on ASTs), and
//! malformed specs are rejected with errors that name the offending line
//! and say what was expected there.

use sandf_bench::scenario::{builtin_specs, ChurnSpec, FaultSpec, Scenario};

/// A spec exercising every fault model, churn, and every header directive.
const KITCHEN_SINK: &str = "\
# full-grammar fixture
scenario kitchen_sink
n 48
view 12 4
degree 8
replicates 2
seed 7
burn_in 5

phase 4 uniform 0.05
phase 3 bursty 0.05 0.2 0.01 0.5
phase 6 partition 3 0.9 0.01   # heals when the phase ends
phase 4 perlink 11 0.25 0.005 0.8
phase 5 capacity 3 0.4 3 0.02
churn 2 1
phase 4 victims 4 0.9 0.01
";

#[test]
fn kitchen_sink_parses_and_round_trips() {
    let parsed = Scenario::parse(KITCHEN_SINK).expect("full-grammar spec parses");
    assert_eq!(parsed.name, "kitchen_sink");
    assert_eq!(parsed.phases.len(), 6);
    assert_eq!(parsed.phases[4].churn, Some(ChurnSpec { leaves: 2, joins: 1 }));
    assert_eq!(
        parsed.phases[5].fault,
        FaultSpec::Victims { count: 4, victim_rate: 0.9, base: 0.01 }
    );
    let printed = parsed.to_string();
    let reparsed = Scenario::parse(&printed).expect("canonical printing parses");
    assert_eq!(parsed, reparsed, "parse ∘ print is not the identity");
    // And printing is a fixed point: print ∘ parse ∘ print = print.
    assert_eq!(reparsed.to_string(), printed);
}

#[test]
fn builtins_round_trip() {
    for (name, spec) in builtin_specs() {
        let parsed = Scenario::parse(spec).unwrap_or_else(|e| panic!("{name}: {e}"));
        let reparsed = Scenario::parse(&parsed.to_string()).expect("round-trips");
        assert_eq!(parsed, reparsed, "{name}: round-trip changed the AST");
    }
}

#[test]
fn defaults_are_filled_and_printed() {
    let minimal = "scenario min\nn 24\nview 12 4\nphase 3 uniform 0.1\n";
    let parsed = Scenario::parse(minimal).expect("minimal spec parses");
    assert_eq!(parsed.replicates, 3);
    assert_eq!(parsed.seed, 42);
    assert_eq!(parsed.burn_in, 0);
    assert!(parsed.degree >= 2 && parsed.degree.is_multiple_of(2));
    // The canonical printing makes the defaults explicit, and still
    // round-trips to the same AST.
    let printed = parsed.to_string();
    assert!(printed.contains("replicates 3"));
    assert_eq!(Scenario::parse(&printed).expect("parses"), parsed);
}

/// Asserts that `spec` is rejected, that the error points at `line`, and
/// that the message contains every fragment in `expect` — the fragments
/// are what make the error actionable.
fn rejects(spec: &str, line: usize, expect: &[&str]) {
    let error = Scenario::parse(spec).expect_err("malformed spec must be rejected");
    assert_eq!(error.line, line, "wrong line in: {error}");
    for fragment in expect {
        assert!(
            error.message.contains(fragment),
            "error {:?} does not mention {fragment:?}",
            error.message
        );
    }
}

#[test]
fn rejects_unknown_directive() {
    rejects(
        "scenario x\nn 24\nview 12 4\nfrobnicate 3\nphase 1 uniform 0\n",
        4,
        &["unknown directive", "frobnicate", "phase"],
    );
}

#[test]
fn rejects_unknown_fault_model() {
    rejects(
        "scenario x\nn 24\nview 12 4\nphase 5 gauss 0.3\n",
        4,
        &["unknown fault model", "gauss", "partition"],
    );
}

#[test]
fn rejects_out_of_range_rate() {
    rejects("scenario x\nn 24\nview 12 4\nphase 5 uniform 1.5\n", 4, &["outside [0, 1]"]);
}

#[test]
fn rejects_wrong_arity_with_usage() {
    rejects("scenario x\nn 24\nview 12\nphase 1 uniform 0\n", 3, &["view <s> <d_L>"]);
    rejects(
        "scenario x\nn 24\nview 12 4\nphase 5 partition 2\n",
        4,
        &["partition <regions> <sever> <base>"],
    );
}

#[test]
fn rejects_non_numeric_argument() {
    rejects("scenario x\nn lots\nview 12 4\nphase 1 uniform 0\n", 2, &["integer", "lots"]);
}

#[test]
fn rejects_duplicate_directive() {
    rejects("scenario x\nn 24\nn 32\nview 12 4\nphase 1 uniform 0\n", 3, &["duplicate", "n"]);
}

#[test]
fn rejects_orphan_churn() {
    rejects(
        "scenario x\nn 24\nview 12 4\nchurn 1 1\nphase 1 uniform 0\n",
        4,
        &["must follow a `phase`"],
    );
}

#[test]
fn rejects_illegal_config() {
    // d_L too close to s: SfConfig's own validation, surfaced with the line.
    rejects("scenario x\nn 24\nview 12 11\nphase 1 uniform 0\n", 3, &["not a legal config"]);
}

#[test]
fn rejects_degenerate_models() {
    rejects("scenario x\nn 24\nview 12 4\nphase 5 partition 1 0.5 0\n", 4, &["at least 2 regions"]);
    rejects("scenario x\nn 24\nview 12 4\nphase 5 capacity 1 0.5 1 0\n", 4, &["period"]);
    rejects("scenario x\nn 24\nview 12 4\nphase 5 victims 0 0.5 0\n", 4, &["at least one victim"]);
    rejects("scenario x\nn 24\nview 12 4\nphase 0 uniform 0\n", 4, &["at least 1 round"]);
}

#[test]
fn rejects_missing_header_and_empty_schedule() {
    rejects("n 24\nview 12 4\nphase 1 uniform 0\n", 0, &["scenario <name>"]);
    rejects("scenario x\nview 12 4\nphase 1 uniform 0\n", 0, &["`n <nodes>`"]);
    rejects("scenario x\nn 24\nphase 1 uniform 0\n", 0, &["view <s> <d_L>"]);
    rejects("scenario x\nn 24\nview 12 4\n", 0, &["at least one `phase`"]);
}

#[test]
fn rejects_whole_spec_inconsistencies() {
    rejects("scenario x\nn 8\nview 12 4\nphase 1 victims 9 0.5 0\n", 0, &["victims", "fewer"]);
    rejects("scenario x\nn 6\nview 12 4\nphase 1 uniform 0\nchurn 4 0\n", 0, &["fewer than 4"]);
    rejects("scenario x\nn 24\nview 12 4\ndegree 30\nphase 1 uniform 0\n", 0, &["does not fit"]);
}

#[test]
fn error_display_names_the_line() {
    let error = Scenario::parse("scenario x\nn 24\nview 12 4\nphase 5 gauss 1\n").unwrap_err();
    let shown = error.to_string();
    assert!(shown.contains("line 4"), "display {shown:?} should name the line");
}
