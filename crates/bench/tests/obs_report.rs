//! Golden tests for the observability report (toy scale).
//!
//! Two pins with different determinism budgets:
//!
//! * the **metric-name list** is pinned for the full report (profiler and
//!   observed cluster on) — names must be stable even though span values
//!   and thread-raced counters are not;
//! * the **rendered values** (exposition, TSV, journal JSONL) are pinned
//!   only as run-to-run identical for the deterministic subset (profiler
//!   and cluster off), which is the documented determinism contract.

use sandf_bench::obsrep::{obs_report, ObsReportConfig};

fn toy(profile: bool, cluster: bool) -> ObsReportConfig {
    ObsReportConfig { profile, cluster, ..ObsReportConfig::toy() }
}

#[test]
fn metric_names_are_pinned() {
    let report = obs_report(&toy(true, true));
    let expected = [
        "net.memory.delivered",
        "net.memory.dropped",
        "net.memory.sent",
        "runtime.node.deletions",
        "runtime.node.duplications",
        "runtime.node.initiated",
        "runtime.node.self_loops",
        "runtime.node.sent",
        "runtime.node.stored",
        "sim.profile.deliver_ns",
        "sim.profile.step_ns",
        "sim.step.actions",
        "sim.step.dead_letters",
        "sim.step.deleted",
        "sim.step.duplications",
        "sim.step.in_flight",
        "sim.step.lost",
        "sim.step.self_loops",
        "sim.step.sent",
        "sim.step.skipped",
        "sim.step.stored",
    ];
    assert_eq!(report.metric_names, expected, "metric names drifted — update docs and this pin");
}

#[test]
fn deterministic_subset_is_byte_identical_across_runs() {
    let run = || {
        let report = obs_report(&toy(false, false));
        (report.prometheus, report.tsv, report.journal_jsonl)
    };
    let (prom_a, tsv_a, journal_a) = run();
    let (prom_b, tsv_b, journal_b) = run();
    assert_eq!(prom_a, prom_b, "exposition must be seed-stable");
    assert_eq!(tsv_a, tsv_b, "TSV dump must be seed-stable");
    assert_eq!(journal_a, journal_b, "journal must be seed-stable");
    assert!(!journal_a.is_empty(), "journal must retain events");
}

#[test]
fn exposition_covers_every_pillar_and_matches_the_sim_ledger() {
    let report = obs_report(&toy(true, true));
    for family in [
        "sandf_sim_step_sent",
        "sandf_sim_profile_step_ns",
        "sandf_runtime_node_initiated",
        "sandf_net_memory_sent",
    ] {
        assert!(report.prometheus.contains(family), "exposition missing {family}");
    }
    // The sim.step.* counters are defined to equal the engine's ledger.
    let line = report
        .prometheus
        .lines()
        .find(|l| l.starts_with("sandf_sim_step_sent "))
        .expect("sent sample present");
    assert_eq!(line, format!("sandf_sim_step_sent {}", report.stats.sent));
}
