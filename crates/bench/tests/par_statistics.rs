//! PR 5 statistical equivalence: `ParSimulation` is a *distinct
//! statistical mode* of the protocol — per-`(node, round)` RNG streams and
//! a phase-split round (all actions, then all deliveries) — so lockstep
//! equality against the sequential engines is the wrong bar. The right bar
//! is the one the sweep harness already uses: replicated steady-state
//! statistics must agree within 95% confidence intervals.
//!
//! The scheduling-matched classic baseline is `round_permuted` (every live
//! node initiates exactly once per round), not `round` (uniform draws
//! *with replacement*): with-replacement scheduling has Binomial per-round
//! action counts whose heavier tails inflate boundary events (duplications
//! at `d_L`, deletions at `s`) and degree variance — a scheduling
//! difference, not an engine difference. Against the matched baseline, at
//! a fixed `ExperimentParams` point over 5 seeded replicates, we require
//! (via [`Summary::from_samples`]):
//!
//! * duplication rate, drain rate (deletions per send), and indegree
//!   variance within the combined ci95 half-widths, and
//! * indegree mean within ci95 **plus a pinned phase-split allowance**:
//!   because all of a round's actions clear view slots before any of its
//!   deliveries land, receivers are systematically less full at delivery
//!   time, so par deletes slightly less and settles ≈0.5 ids higher at
//!   this scale. The allowance pins that measured bias so it cannot
//!   silently grow.
//!
//! As the absolute anchor, both engines' indegree means must stay within
//! 1.0 of the paper's degree-Markov-chain prediction (`DegreeMc`), so
//! neither mode can drift away from the analysis while staying close to
//! the other. Everything is seeded, so a pass here is a pass in CI.

use sandf_bench::sweep::Summary;
use sandf_core::SfConfig;
use sandf_graph::DegreeStats;
use sandf_markov::{DegreeMc, DegreeMcParams};
use sandf_sim::experiment::ExperimentParams;
use sandf_sim::SimStats;

const SEEDS: [u64; 5] = [3, 11, 42, 271, 2009];
const BURN_IN: usize = 60;
const MEASURE: usize = 40;
const LOSS: f64 = 0.01;

/// Measured phase-split bias on the mean indegree at this scale (≈0.52),
/// pinned with headroom but tight enough to catch a real regression.
const PHASE_SPLIT_MEAN_ALLOWANCE: f64 = 0.75;

/// Both engines must land this close to the degree-MC predicted mean.
const MC_MEAN_TOLERANCE: f64 = 1.0;

fn config() -> SfConfig {
    SfConfig::new(16, 6).expect("legal config")
}

fn params(seed: u64) -> ExperimentParams {
    ExperimentParams { n: 192, config: config(), loss: LOSS, burn_in: BURN_IN, seed }
}

/// The per-replicate metric vector: indegree mean, indegree variance,
/// drain (deletion) rate, duplication rate.
fn metrics(stats: &SimStats, in_degrees: &[usize]) -> [f64; 4] {
    let degrees = DegreeStats::from_samples(in_degrees);
    [
        degrees.mean,
        degrees.std_dev().powi(2),
        stats.deletion_rate().unwrap_or(0.0),
        stats.duplication_rate().unwrap_or(0.0),
    ]
}

/// Classic engine under the scheduling-matched `round_permuted` regime.
fn classic_samples() -> Vec<[f64; 4]> {
    SEEDS
        .iter()
        .map(|&seed| {
            let mut sim = params(seed).build_simulation();
            for _ in 0..BURN_IN {
                sim.round_permuted();
            }
            sim.reset_stats();
            for _ in 0..MEASURE {
                sim.round_permuted();
            }
            metrics(sim.stats(), &sim.graph().in_degrees())
        })
        .collect()
}

fn par_samples(threads: usize) -> Vec<[f64; 4]> {
    SEEDS
        .iter()
        .map(|&seed| {
            let sim = params(seed).build_par_simulation(threads).run_replicate(BURN_IN, MEASURE);
            metrics(sim.stats(), &sim.graph().in_degrees())
        })
        .collect()
}

fn summary(samples: &[[f64; 4]], i: usize) -> Summary {
    let column: Vec<f64> = samples.iter().map(|s| s[i]).collect();
    Summary::from_samples(&column)
}

#[test]
fn par_statistics_agree_with_classic_within_ci95() {
    let classic = classic_samples();
    let par = par_samples(2);
    for (i, name) in [(1, "indegree_variance"), (2, "drain_rate"), (3, "duplication_rate")] {
        let c = summary(&classic, i);
        let p = summary(&par, i);
        let gap = (c.mean - p.mean).abs();
        let band = c.ci95 + p.ci95;
        assert!(
            gap <= band,
            "{name}: par {:.4}±{:.4} vs classic {:.4}±{:.4} — gap {gap:.4} exceeds the \
             combined ci95 band {band:.4}",
            p.mean,
            p.ci95,
            c.mean,
            c.ci95,
        );
    }
}

#[test]
fn par_indegree_mean_is_within_the_pinned_phase_split_band() {
    let c = summary(&classic_samples(), 0);
    let p = summary(&par_samples(2), 0);
    let gap = (c.mean - p.mean).abs();
    let band = c.ci95 + p.ci95 + PHASE_SPLIT_MEAN_ALLOWANCE;
    assert!(
        gap <= band,
        "indegree mean: par {:.4}±{:.4} vs classic {:.4}±{:.4} — gap {gap:.4} exceeds \
         ci95 + the pinned phase-split allowance ({band:.4})",
        p.mean,
        p.ci95,
        c.mean,
        c.ci95,
    );
}

#[test]
fn both_engines_track_the_degree_mc_prediction() {
    let mc = DegreeMc::solve(DegreeMcParams::new(config(), LOSS)).expect("chain converges");
    let predicted = mc.mean_in();
    for (name, samples) in [("classic", classic_samples()), ("par", par_samples(2))] {
        let measured = summary(&samples, 0).mean;
        assert!(
            (measured - predicted).abs() <= MC_MEAN_TOLERANCE,
            "{name}: measured mean indegree {measured:.4} is more than \
             {MC_MEAN_TOLERANCE} from the degree-MC prediction {predicted:.4}"
        );
    }
}
