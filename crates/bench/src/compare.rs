//! Perf-trend comparison — the CI regression gate behind `bench_compare`.
//!
//! CI runs `perf_smoke` per matrix cell and uploads the
//! `sandf-perf-smoke/v1` JSON as an artifact; the `perf-trend` job then
//! compares each fresh report against the **best committed same-config
//! point** across the repo's `BENCH_PR*.json` trajectory and fails on a
//! regression beyond the tolerance (30 % by default — hosted runners are
//! noisy, real regressions from an arena or RNG change are far larger).
//!
//! Two baseline file shapes are accepted: a single `sandf-perf-smoke/v1`
//! report (`BENCH_PR4.json`, `BENCH_PR5.json`) and a
//! `sandf-perf-trend/v1` bundle carrying a `"reports"` array
//! (`BENCH_PR9.json` and later). Other schemas in the baseline directory
//! (e.g. `sandf-engine-speedup/v1`) are skipped, not errors.
//!
//! The workspace vendors no serde, so this module carries a minimal JSON
//! reader: just enough for the report grammar (objects, arrays, strings
//! without exotic escapes, f64 numbers, booleans, null), kept private and
//! pinned by unit tests.

use std::fmt::Write as _;

/// Default regression tolerance: fail when a cell falls more than 30 %
/// below the best committed same-config baseline.
pub const DEFAULT_TOLERANCE: f64 = 0.30;

/// A minimal JSON value — the subset the perf report grammar uses.
#[derive(Clone, Debug, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    fn as_u64(&self) -> Option<u64> {
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        self.as_f64().filter(|x| x.fract() == 0.0 && *x >= 0.0).map(|x| x as u64)
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Recursive-descent reader for the subset above.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(text: &'a str) -> Self {
        Self { bytes: text.as_bytes(), pos: 0 }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Result<u8, String> {
        self.skip_ws();
        self.bytes.get(self.pos).copied().ok_or_else(|| "unexpected end of input".to_string())
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        let got = self.peek()?;
        if got != byte {
            return Err(format!("expected {:?}, got {:?}", byte as char, got as char));
        }
        self.pos += 1;
        Ok(())
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek()? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(Json::Str(self.string()?)),
            b't' => self.literal("true", Json::Bool(true)),
            b'f' => self.literal("false", Json::Bool(false)),
            b'n' => self.literal("null", Json::Null),
            _ => self.number(),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("expected {word:?}"))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii slice");
        text.parse().map(Json::Num).map_err(|_| format!("bad number {text:?}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let byte =
                *self.bytes.get(self.pos).ok_or_else(|| "unterminated string".to_string())?;
            self.pos += 1;
            match byte {
                b'"' => return Ok(out),
                b'\\' => {
                    let escaped = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| "unterminated escape".to_string())?;
                    self.pos += 1;
                    out.push(match escaped {
                        b'n' => '\n',
                        b't' => '\t',
                        other => other as char,
                    });
                }
                other => out.push(other as char),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            fields.push((key, self.value()?));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                other => return Err(format!("expected ',' or '}}', got {:?}", other as char)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                other => return Err(format!("expected ',' or ']', got {:?}", other as char)),
            }
        }
    }
}

fn parse_json(text: &str) -> Result<Json, String> {
    let mut reader = Reader::new(text);
    let value = reader.value()?;
    reader.skip_ws();
    if reader.pos != reader.bytes.len() {
        return Err(format!("trailing garbage at byte {}", reader.pos));
    }
    Ok(value)
}

/// One measured perf point: the run configuration plus its throughput.
#[derive(Clone, Debug, PartialEq)]
pub struct PerfPoint {
    /// Engine name (`flat` | `classic` | `par`).
    pub engine: String,
    /// Protocol name (`sandf` | `shuffle`).
    pub protocol: String,
    /// Node count of the run.
    pub nodes: u64,
    /// Rounds simulated.
    pub rounds: u64,
    /// Worker threads (1 for the sequential engines).
    pub threads: u64,
    /// Measured throughput.
    pub steps_per_sec: f64,
    /// Where the point came from (file name), for the delta table.
    pub source: String,
}

impl PerfPoint {
    /// The identity CI matches on: a current cell is compared only
    /// against baselines with the same engine, protocol, scale, and
    /// thread count.
    #[must_use]
    pub fn config_key(&self) -> String {
        format!(
            "{}/{} n={} rounds={} threads={}",
            self.engine, self.protocol, self.nodes, self.rounds, self.threads
        )
    }
}

fn report_to_point(report: &Json, source: &str) -> Option<PerfPoint> {
    if report.get("schema")?.as_str()? != "sandf-perf-smoke/v1" {
        return None;
    }
    Some(PerfPoint {
        engine: report.get("engine")?.as_str()?.to_string(),
        // Reports predating the protocol zoo (PR ≤ 7) are all S&F.
        protocol: report.get("protocol").and_then(Json::as_str).unwrap_or("sandf").to_string(),
        nodes: report.get("nodes")?.as_u64()?,
        rounds: report.get("rounds")?.as_u64()?,
        threads: report.get("threads").and_then(Json::as_u64).unwrap_or(1),
        steps_per_sec: report.get("steps_per_sec")?.as_f64()?,
        source: source.to_string(),
    })
}

/// Extracts every `sandf-perf-smoke/v1` report from a JSON document: a
/// bare report, a `sandf-perf-trend/v1` bundle (`"reports": [...]`), or
/// a plain array of reports. Unknown schemas yield nothing.
///
/// # Errors
///
/// Fails when `text` is not parseable JSON at all.
pub fn parse_reports(text: &str, source: &str) -> Result<Vec<PerfPoint>, String> {
    let root = parse_json(text)?;
    let candidates: Vec<&Json> = match &root {
        Json::Arr(items) => items.iter().collect(),
        obj @ Json::Obj(_) => match obj.get("reports") {
            Some(Json::Arr(items)) => items.iter().collect(),
            _ => vec![obj],
        },
        _ => Vec::new(),
    };
    Ok(candidates.iter().filter_map(|report| report_to_point(report, source)).collect())
}

/// One row of the trend gate's verdict.
#[derive(Clone, Debug)]
pub struct Comparison {
    /// The cell's [`PerfPoint::config_key`].
    pub config: String,
    /// The fresh measurement's throughput.
    pub current: f64,
    /// Best committed same-config point, if any exists yet.
    pub baseline: Option<PerfPoint>,
    /// Throughput change vs the baseline (`+0.10` = 10 % faster).
    pub delta: Option<f64>,
    /// Whether the cell fell beyond the tolerance.
    pub regressed: bool,
}

/// Compares each current point against the best committed same-config
/// baseline. Cells with no baseline are reported but never fail — a new
/// matrix cell must be able to land before its first pin.
#[must_use]
pub fn compare(current: &[PerfPoint], baselines: &[PerfPoint], tolerance: f64) -> Vec<Comparison> {
    current
        .iter()
        .map(|point| {
            let best = baselines
                .iter()
                .filter(|b| b.config_key() == point.config_key())
                .max_by(|a, b| a.steps_per_sec.total_cmp(&b.steps_per_sec));
            let delta = best.map(|b| point.steps_per_sec / b.steps_per_sec - 1.0);
            Comparison {
                config: point.config_key(),
                current: point.steps_per_sec,
                baseline: best.cloned(),
                delta,
                regressed: delta.is_some_and(|d| d < -tolerance),
            }
        })
        .collect()
}

/// `true` when any cell fell beyond the tolerance — the job's exit code.
#[must_use]
pub fn any_regressed(rows: &[Comparison]) -> bool {
    rows.iter().any(|row| row.regressed)
}

fn fmt_rate(rate: f64) -> String {
    format!("{:.2}M steps/s", rate / 1_000_000.0)
}

/// Renders the delta table as GitHub-flavoured markdown (the `perf-trend`
/// job appends it to `$GITHUB_STEP_SUMMARY`).
#[must_use]
pub fn markdown_table(rows: &[Comparison], tolerance: f64) -> String {
    let mut out = String::from("## Perf trend\n\n");
    let _ = writeln!(
        out,
        "Gate: fail below {:.0} % of the best committed same-config baseline.\n",
        (1.0 - tolerance) * 100.0
    );
    out.push_str("| config | baseline | current | delta | verdict |\n");
    out.push_str("|---|---|---|---|---|\n");
    for row in rows {
        let (baseline, delta, verdict) = match (&row.baseline, row.delta) {
            (Some(best), Some(delta)) => (
                format!("{} ({})", fmt_rate(best.steps_per_sec), best.source),
                format!("{:+.1} %", delta * 100.0),
                if row.regressed { "❌ regression" } else { "✅ ok" },
            ),
            _ => ("—".to_string(), "—".to_string(), "🆕 no baseline"),
        };
        let _ = writeln!(
            out,
            "| `{}` | {} | {} | {} | {} |",
            row.config,
            baseline,
            fmt_rate(row.current),
            delta,
            verdict
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smoke_report(engine: &str, threads: Option<u64>, rate: f64) -> String {
        let threads = threads.map_or(String::new(), |t| format!("\n  \"threads\": {t},"));
        format!(
            r#"{{
  "schema": "sandf-perf-smoke/v1",
  "nodes": 1000000,
  "rounds": 50,
  "config": {{ "s": 16, "d_l": 6 }},
  "loss": 0.01,
  "seed": 42,
  "engine": "{engine}",{threads}
  "phases_ms": {{ "build": 1.0, "run": 2.0, "measure": 0.5 }},
  "steps": 50000000,
  "steps_per_sec": {rate},
  "peak_rss_bytes": 594030592,
  "stats": {{ "actions": 50000000, "self_loops": 1, "sent": 2, "lost": 3, "dead_letters": 0, "stored": 4, "deleted": 5, "duplications": 6 }}
}}"#
        )
    }

    #[test]
    fn parses_a_bare_smoke_report_with_legacy_defaults() {
        // BENCH_PR4-era reports carry neither protocol nor threads.
        let points = parse_reports(&smoke_report("flat", None, 1655324.4), "BENCH_PR4.json")
            .expect("parses");
        assert_eq!(points.len(), 1);
        assert_eq!(points[0].protocol, "sandf");
        assert_eq!(points[0].threads, 1);
        assert_eq!(points[0].config_key(), "flat/sandf n=1000000 rounds=50 threads=1");
        assert!((points[0].steps_per_sec - 1655324.4).abs() < 1e-6);
    }

    #[test]
    fn parses_a_trend_bundle_and_skips_foreign_schemas() {
        let bundle = format!(
            r#"{{ "schema": "sandf-perf-trend/v1", "reports": [{}, {}, {{ "schema": "sandf-engine-speedup/v1", "speedup": 163.5 }}] }}"#,
            smoke_report("flat", None, 3000000.0),
            smoke_report("par", Some(4), 6000000.0)
        );
        let points = parse_reports(&bundle, "BENCH_PR9.json").expect("parses");
        assert_eq!(points.len(), 2, "the speedup report is skipped, not an error");
        assert_eq!(points[1].config_key(), "par/sandf n=1000000 rounds=50 threads=4");
    }

    #[test]
    fn malformed_json_is_an_error_not_a_silent_skip() {
        assert!(parse_reports("{ \"schema\": ", "broken.json").is_err());
        assert!(parse_reports("{} trailing", "broken.json").is_err());
    }

    fn point(engine: &str, threads: u64, rate: f64, source: &str) -> PerfPoint {
        PerfPoint {
            engine: engine.to_string(),
            protocol: "sandf".to_string(),
            nodes: 100_000,
            rounds: 50,
            threads,
            steps_per_sec: rate,
            source: source.to_string(),
        }
    }

    #[test]
    fn gate_matches_against_the_best_same_config_baseline() {
        let baselines = [
            point("flat", 1, 2_000_000.0, "BENCH_PR4.json"),
            point("flat", 1, 3_000_000.0, "BENCH_PR9.json"),
            point("par", 4, 6_000_000.0, "BENCH_PR5.json"),
        ];
        // 2.2M vs best 3.0M = -26.7 %: inside the 30 % band.
        let rows = compare(&[point("flat", 1, 2_200_000.0, "ci")], &baselines, 0.30);
        assert_eq!(rows[0].baseline.as_ref().unwrap().source, "BENCH_PR9.json");
        assert!(!rows[0].regressed);
        assert!(!any_regressed(&rows));
        // 2.0M vs 3.0M = -33 %: beyond it.
        let rows = compare(&[point("flat", 1, 2_000_000.0, "ci")], &baselines, 0.30);
        assert!(rows[0].regressed);
        assert!(any_regressed(&rows));
    }

    #[test]
    fn unknown_configs_report_without_failing() {
        let rows = compare(&[point("classic", 1, 500_000.0, "ci")], &[], 0.30);
        assert!(rows[0].baseline.is_none());
        assert!(!any_regressed(&rows));
        let table = markdown_table(&rows, 0.30);
        assert!(table.contains("no baseline"), "table:\n{table}");
    }

    #[test]
    fn markdown_table_carries_config_delta_and_verdict() {
        let baselines = [point("flat", 1, 3_000_000.0, "BENCH_PR9.json")];
        let rows = compare(
            &[point("flat", 1, 1_500_000.0, "ci"), point("par", 8, 9_000_000.0, "ci")],
            &baselines,
            0.30,
        );
        let table = markdown_table(&rows, 0.30);
        assert!(table.contains("| `flat/sandf n=100000 rounds=50 threads=1` |"));
        assert!(table.contains("-50.0 %"));
        assert!(table.contains("❌ regression"));
        assert!(table.contains("🆕 no baseline"));
        assert!(table.starts_with("## Perf trend"));
    }

    #[test]
    fn json_reader_handles_the_report_grammar() {
        let value = parse_json(
            r#"{ "a": [1, 2.5, -3e2], "b": { "c": "x\n\"y\"" }, "d": true, "e": null }"#,
        )
        .expect("parses");
        assert_eq!(
            value.get("a"),
            Some(&Json::Arr(vec![Json::Num(1.0), Json::Num(2.5), Json::Num(-300.0)]))
        );
        assert_eq!(value.get("b").unwrap().get("c").unwrap().as_str(), Some("x\n\"y\""));
        assert_eq!(value.get("d"), Some(&Json::Bool(true)));
        assert_eq!(value.get("e"), Some(&Json::Null));
    }
}
