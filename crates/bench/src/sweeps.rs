//! The paper-evaluation sweeps as library functions.
//!
//! Each function here is the measurement core of one bench binary, hoisted
//! out of `src/bin/` and rebuilt on the [`crate::sweep`] executor: a
//! parameter grid becomes a [`SweepSpec`], every cell runs `replicates`
//! independent replicates (each seeded from the stable cell/replicate
//! hash), and the returned TSV gains `<metric>_mean` / `<metric>_ci95`
//! columns in place of the old single-run point estimates.
//!
//! Keeping the logic in the library has a second payoff: the integration
//! tests drive the *same* code paths as the binaries — the golden-output
//! smoke test and the determinism regression test call these functions at
//! reduced scale rather than re-implementing the experiments.
//!
//! All functions take an explicit scale (`n`, rounds, `replicates`,
//! `base_seed`) so tests can run them small while the binaries run them at
//! paper scale.

use rand::RngCore;
use sandf_baselines::{
    BaselineHarness, GossipProtocol, PushOnlyBehavior, PushOnlyNode, PushPullBehavior,
    PushPullNode, SfAdapter, ShuffleBehavior, ShuffleNode,
};
use sandf_core::{NodeId, SfConfig, SfNode};
use sandf_graph::DegreeStats;
use sandf_markov::{select_thresholds, DegreeMc, DegreeMcParams};
use sandf_sim::experiment::{continuous_churn, steady_state_degrees, uniformity, ExperimentParams};
use sandf_sim::{
    topology, BroadcastConfig, BroadcastLayer, DelayModel, Engine, FlatSimulation, GilbertElliott,
    LossModel, ParSimulation, ProtocolBehavior, RumorChannel, SfBehavior, Simulation, TargetedLoss,
    UniformLoss,
};
use sandf_variants::{BatchedBehavior, ReplaceBehavior, UndeleteBehavior};

use crate::fmt;
use crate::sweep::{SweepCell, SweepSpec};

/// The paper's running configuration (`s = 40`, `d_L = 18`; Section 6.4).
#[must_use]
pub fn paper_config() -> SfConfig {
    SfConfig::new(40, 18).expect("paper parameters are legal")
}

/// The initial outdegree the experiment runners use: two thirds of the way
/// from `d_L` to `s`, clamped to the system size, even.
#[must_use]
pub fn initial_degree(config: SfConfig, n: usize) -> usize {
    let s = config.view_size();
    let d_l = config.lower_threshold();
    let mid = d_l + (s - d_l) * 2 / 3;
    mid.min(n.saturating_sub(2)).max(2) & !1
}

// ---------------------------------------------------------------------------
// indegree_stats — §6.4 in-text table
// ---------------------------------------------------------------------------

/// Scale of a steady-state sampling experiment: system size, burn-in, and
/// the post-burn-in sampling schedule.
#[derive(Clone, Copy, Debug)]
pub struct SampleScale {
    /// System size `n`.
    pub n: usize,
    /// Rounds to run before the first sample.
    pub burn_in: usize,
    /// Number of samples per replicate.
    pub samples: usize,
    /// Rounds between samples.
    pub sample_every: usize,
}

/// One loss rate of the §6.4 indegree table, with the paper's reported
/// numbers (where available) and the degree-MC prediction carried along as
/// key columns.
pub struct IndegreeCell {
    /// Uniform loss rate `ℓ`.
    pub loss: f64,
    /// Paper-reported (mean, std) indegree, if the paper reports this cell.
    pub paper: Option<(f64, f64)>,
    /// Degree-MC predicted mean indegree.
    pub mc_mean: f64,
    /// Degree-MC predicted indegree standard deviation.
    pub mc_std: f64,
}

impl SweepCell for IndegreeCell {
    fn key(&self) -> String {
        format!("loss={}", self.loss)
    }
}

/// The indegree sweep for an arbitrary configuration: per loss rate, the
/// degree-MC prediction next to replicated simulation means with 95% CIs.
/// `paper` pairs up with `losses` positionally; cells the paper does not
/// report show `-` in the paper columns.
#[must_use]
pub fn indegree_table_for(
    config: SfConfig,
    losses: &[f64],
    paper: &[Option<(f64, f64)>],
    scale: SampleScale,
    replicates: usize,
    base_seed: u64,
) -> String {
    assert_eq!(losses.len(), paper.len(), "one paper entry (or None) per loss rate");
    let cells: Vec<IndegreeCell> = losses
        .iter()
        .zip(paper)
        .map(|(&loss, &paper)| {
            let mc = DegreeMc::solve(DegreeMcParams::new(config, loss)).expect("chain converges");
            IndegreeCell { loss, paper, mc_mean: mc.mean_in(), mc_std: mc.std_in() }
        })
        .collect();
    let spec = SweepSpec::new(cells, replicates, base_seed);
    let results = spec.run(&["sim_in_mean", "sim_in_std"], |cell, rng| {
        let params = ExperimentParams {
            n: scale.n,
            config,
            loss: cell.loss,
            burn_in: scale.burn_in,
            seed: rng.next_u64(),
        };
        let dist = steady_state_degrees(&params, scale.samples, scale.sample_every);
        vec![dist.in_degrees.mean(), dist.in_degrees.variance().sqrt()]
    });
    results.to_tsv(&["loss", "paper_mean", "paper_std", "mc_mean", "mc_std"], |c| {
        let (paper_mean, paper_std) = match c.paper {
            Some((mean, std)) => (fmt(mean), fmt(std)),
            None => ("-".to_string(), "-".to_string()),
        };
        vec![fmt(c.loss), paper_mean, paper_std, fmt(c.mc_mean), fmt(c.mc_std)]
    })
}

/// §6.4 — "The average indegrees and their standard deviations are
/// 28 ± 3.4, 27 ± 3.6, 24 ± 4.1, 23 ± 4.3 for ℓ = 0, 0.01, 0.05, 0.1"
/// (`d_L = 18`, `s = 40`). Replicated simulation means with 95% CIs, next
/// to the paper's numbers and the degree-MC prediction.
#[must_use]
pub fn indegree_table(scale: SampleScale, replicates: usize, base_seed: u64) -> String {
    indegree_table_for(
        paper_config(),
        &[0.0, 0.01, 0.05, 0.1],
        &[Some((28.0, 3.4)), Some((27.0, 3.6)), Some((24.0, 4.1)), Some((23.0, 4.3))],
        scale,
        replicates,
        base_seed,
    )
}

// ---------------------------------------------------------------------------
// loss_ablation — uniform vs bursty vs targeted loss
// ---------------------------------------------------------------------------

/// The loss process behind one ablation cell.
enum Channel {
    Uniform { rate: f64 },
    Bursty { to_bad: f64, to_good: f64, loss_bad: f64 },
}

/// One cell of the loss-model ablation: a channel at a long-run average
/// rate.
pub struct ChannelCell {
    /// Channel family name (`uniform` or `gilbert_elliott`).
    pub model: &'static str,
    /// Long-run average loss rate of the channel.
    pub avg_rate: f64,
    channel: Channel,
}

impl SweepCell for ChannelCell {
    fn key(&self) -> String {
        format!("{}/rate={}", self.model, self.avg_rate)
    }
}

fn channel_metrics<L: LossModel>(
    nodes: Vec<SfNode>,
    loss: L,
    burn_in: usize,
    measure: usize,
    seed: u64,
) -> Vec<f64> {
    let sim = Simulation::new(nodes, loss, seed).run_replicate(burn_in, measure);
    let graph = sim.graph();
    vec![
        DegreeStats::from_samples(&graph.out_degrees()).mean,
        DegreeStats::from_samples(&graph.in_degrees()).std_dev(),
        1.0 - sim.dependence().independent_fraction(),
        sim.stats().duplication_rate().unwrap_or(0.0),
        f64::from(u8::from(graph.is_weakly_connected())),
    ]
}

/// Loss-model ablation (DESIGN.md B4): a uniform channel vs a
/// Gilbert–Elliott bursty channel with the same long-run average rate, on
/// identical systems. If the replicated steady-state statistics agree, the
/// paper's i.i.d.-loss analysis transfers to bursty loss.
#[must_use]
pub fn loss_ablation_table(
    n: usize,
    burn_in: usize,
    measure: usize,
    replicates: usize,
    base_seed: u64,
) -> String {
    let config = paper_config();
    let mut cells = Vec::new();
    for &rate in &[0.01, 0.05, 0.1] {
        cells.push(ChannelCell {
            model: "uniform",
            avg_rate: rate,
            channel: Channel::Uniform { rate },
        });
        // Bursty channel: the bad state loses 50% of messages; dwell times
        // are tuned so the stationary average matches `rate`:
        // avg = p_bad · 0.5 with p_bad = to_bad/(to_bad + to_good).
        let to_good = 0.05;
        let p_bad = rate / 0.5;
        let to_bad = to_good * p_bad / (1.0 - p_bad);
        let ge = GilbertElliott::new(to_bad, to_good, 0.0, 0.5).expect("valid channel");
        cells.push(ChannelCell {
            model: "gilbert_elliott",
            avg_rate: ge.average_rate(),
            channel: Channel::Bursty { to_bad, to_good, loss_bad: 0.5 },
        });
    }
    let spec = SweepSpec::new(cells, replicates, base_seed);
    // The bootstrap topology is identical across cells and replicates;
    // build it once and clone it in, instead of re-deriving it per run.
    let nodes = topology::circulant(n, config, initial_degree(config, n));
    let results = spec.run(
        &["mean_out", "in_std", "dependent_frac", "dup_rate", "connected"],
        |cell, rng| {
            let seed = rng.next_u64();
            match cell.channel {
                Channel::Uniform { rate } => {
                    let loss = UniformLoss::new(rate).expect("valid rate");
                    channel_metrics(nodes.clone(), loss, burn_in, measure, seed)
                }
                Channel::Bursty { to_bad, to_good, loss_bad } => {
                    let loss =
                        GilbertElliott::new(to_bad, to_good, 0.0, loss_bad).expect("valid channel");
                    channel_metrics(nodes.clone(), loss, burn_in, measure, seed)
                }
            }
        },
    );
    results.to_tsv(&["model", "avg_rate"], |c| vec![c.model.to_string(), fmt(c.avg_rate)])
}

/// One victim-loss rate of the targeted-loss table.
pub struct TargetedCell {
    /// Inbound loss rate applied to the victim node.
    pub victim_rate: f64,
}

impl SweepCell for TargetedCell {
    fn key(&self) -> String {
        format!("victim={}", self.victim_rate)
    }
}

/// Spatially targeted loss: one victim node suffers heavy inbound loss over
/// a 1% base rate. The victim's outdegree erodes toward `d_L`, but the
/// duplication floor keeps it participating and the overlay whole.
#[must_use]
pub fn targeted_loss_table(n: usize, rounds: usize, replicates: usize, base_seed: u64) -> String {
    let config = paper_config();
    let cells: Vec<TargetedCell> =
        [0.01, 0.25, 0.5, 0.9].iter().map(|&victim_rate| TargetedCell { victim_rate }).collect();
    let spec = SweepSpec::new(cells, replicates, base_seed);
    // Same topology for every cell/replicate — construct once, clone in.
    let nodes = topology::circulant(n, config, initial_degree(config, n));
    let results =
        spec.run(&["victim_in", "victim_out", "pop_mean_in", "connected"], |cell, rng| {
            let victim = NodeId::new(0);
            let mut loss = TargetedLoss::new(0.01).expect("valid base");
            loss.set_target(victim, cell.victim_rate).expect("valid override");
            let mut sim = Simulation::new(nodes.clone(), loss, rng.next_u64());
            sim.run_rounds(rounds);
            let graph = sim.graph();
            vec![
                graph.in_degree(victim).unwrap_or(0) as f64,
                graph.out_degree(victim).unwrap_or(0) as f64,
                DegreeStats::from_samples(&graph.in_degrees()).mean,
                f64::from(u8::from(graph.is_weakly_connected())),
            ]
        });
    results.to_tsv(&["victim_inbound_loss"], |c| vec![fmt(c.victim_rate)])
}

// ---------------------------------------------------------------------------
// thresholds — §6.3 selection validated against replicated simulation
// ---------------------------------------------------------------------------

/// One threshold selection (`d̂ → (d_L, s)`) to validate by simulation.
pub struct ThresholdCell {
    /// The target expected outdegree `d̂`.
    pub d_hat: usize,
    /// The selected lower threshold `d_L`.
    pub d_l: usize,
    /// The selected view size `s`.
    pub s: usize,
    /// Analytic duplication-probability bound at selection time.
    pub p_dup: f64,
    /// Analytic deletion-probability bound at selection time.
    pub p_del: f64,
    config: SfConfig,
}

impl SweepCell for ThresholdCell {
    fn key(&self) -> String {
        format!("d_hat={}", self.d_hat)
    }
}

/// §6.3 validation: for each `d̂ → (d_L, s)` selection (δ = 1%), replicated
/// simulations at loss 1% measure the realized duplication/deletion rates
/// and mean outdegree next to the analytic bounds the selection promised.
#[must_use]
pub fn threshold_validation_table(
    n: usize,
    burn_in: usize,
    measure: usize,
    replicates: usize,
    base_seed: u64,
) -> String {
    let cells: Vec<ThresholdCell> = [10usize, 20, 30]
        .iter()
        .map(|&d_hat| {
            let sel = select_thresholds(d_hat, 0.01).expect("valid inputs");
            ThresholdCell {
                d_hat,
                d_l: sel.d_l,
                s: sel.s,
                p_dup: sel.duplication_probability,
                p_del: sel.deletion_probability,
                config: sel.to_config().expect("selection gap is wide enough"),
            }
        })
        .collect();
    // The topology differs per cell (each selection yields its own `s`),
    // but not per replicate: build each cell's bootstrap once up front and
    // look it up by configuration inside the replicate closure.
    let topologies: Vec<(SfConfig, Vec<SfNode>)> = cells
        .iter()
        .map(|cell| {
            (cell.config, topology::circulant(n, cell.config, initial_degree(cell.config, n)))
        })
        .collect();
    let spec = SweepSpec::new(cells, replicates, base_seed);
    let results = spec.run(&["dup_rate", "del_rate", "mean_out"], |cell, rng| {
        let nodes = topologies
            .iter()
            .find(|(config, _)| *config == cell.config)
            .expect("every cell's topology was prepared")
            .1
            .clone();
        let loss = UniformLoss::new(0.01).expect("valid rate");
        let sim = Simulation::new(nodes, loss, rng.next_u64()).run_replicate(burn_in, measure);
        let stats = sim.stats();
        vec![
            stats.duplication_rate().unwrap_or(0.0),
            stats.deletion_rate().unwrap_or(0.0),
            DegreeStats::from_samples(&sim.graph().out_degrees()).mean,
        ]
    });
    results.to_tsv(&["d_hat", "d_L", "s", "P_dup", "P_del"], |c| {
        vec![c.d_hat.to_string(), c.d_l.to_string(), c.s.to_string(), fmt(c.p_dup), fmt(c.p_del)]
    })
}

// ---------------------------------------------------------------------------
// baseline_compare — §3.1 protocol taxonomy under loss
// ---------------------------------------------------------------------------

/// One protocol × loss-rate cell of the §3.1 baseline contrast.
pub struct BaselineCell {
    /// Protocol family (`sandf`, `shuffle`, `push_pull`, `push_only`).
    pub protocol: &'static str,
    /// Uniform message-loss rate.
    pub loss: f64,
}

impl SweepCell for BaselineCell {
    fn key(&self) -> String {
        format!("{}/loss={}", self.protocol, self.loss)
    }
}

fn baseline_bootstrap(i: usize, k: usize, n: usize) -> Vec<NodeId> {
    (1..=k).map(|d| NodeId::new(((i + d) % n) as u64)).collect()
}

fn baseline_metrics<P: GossipProtocol>(mut harness: BaselineHarness<P>, rounds: usize) -> Vec<f64> {
    let quarter = (rounds / 4).max(1);
    let mut values = Vec::with_capacity(7);
    for _ in 0..4 {
        harness.run_rounds(quarter);
        values.push(harness.metrics().total_ids as f64);
    }
    let last = harness.metrics();
    values.push(last.empty_views as f64);
    values.push(last.mean_out_degree);
    values.push(last.in_degree_variance);
    values
}

/// §3.1 — S&F vs shuffle vs push-pull vs push-only under identical uniform
/// loss, replicated. `ids_q1..q4` track the id population at the quarter
/// marks of the run: shuffles drain, S&F compensates, push variants
/// saturate.
#[must_use]
pub fn baseline_table(n: usize, rounds: usize, replicates: usize, base_seed: u64) -> String {
    let config = SfConfig::new(16, 6).expect("legal config");
    let mut cells = Vec::new();
    for &loss in &[0.0, 0.05, 0.1] {
        for protocol in ["sandf", "shuffle", "push_pull", "push_only"] {
            cells.push(BaselineCell { protocol, loss });
        }
    }
    let spec = SweepSpec::new(cells, replicates, base_seed);
    let results = spec.run(
        &["ids_q1", "ids_q2", "ids_q3", "ids_q4", "empty_views", "mean_out", "in_var"],
        |cell, rng| {
            let seed = rng.next_u64();
            match cell.protocol {
                "sandf" => {
                    let nodes: Vec<SfAdapter> = (0..n)
                        .map(|i| {
                            SfAdapter::new(
                                SfNode::with_view(
                                    NodeId::new(i as u64),
                                    config,
                                    &baseline_bootstrap(i, 8, n),
                                )
                                .expect("bootstrap is legal"),
                            )
                        })
                        .collect();
                    baseline_metrics(BaselineHarness::new(nodes, cell.loss, seed), rounds)
                }
                "shuffle" => {
                    let nodes: Vec<ShuffleNode> = (0..n)
                        .map(|i| {
                            ShuffleNode::new(
                                NodeId::new(i as u64),
                                16,
                                3,
                                &baseline_bootstrap(i, 8, n),
                            )
                        })
                        .collect();
                    baseline_metrics(BaselineHarness::new(nodes, cell.loss, seed), rounds)
                }
                "push_pull" => {
                    let nodes: Vec<PushPullNode> = (0..n)
                        .map(|i| {
                            PushPullNode::new(
                                NodeId::new(i as u64),
                                16,
                                3,
                                &baseline_bootstrap(i, 8, n),
                            )
                        })
                        .collect();
                    baseline_metrics(BaselineHarness::new(nodes, cell.loss, seed), rounds)
                }
                _ => {
                    let nodes: Vec<PushOnlyNode> = (0..n)
                        .map(|i| {
                            PushOnlyNode::new(
                                NodeId::new(i as u64),
                                16,
                                &baseline_bootstrap(i, 8, n),
                            )
                        })
                        .collect();
                    baseline_metrics(BaselineHarness::new(nodes, cell.loss, seed), rounds)
                }
            }
        },
    );
    results.to_tsv(&["protocol", "loss"], |c| vec![c.protocol.to_string(), fmt(c.loss)])
}

// ---------------------------------------------------------------------------
// zoo_engine — the protocol zoo on the unified fast engines
// ---------------------------------------------------------------------------

/// One protocol × engine cell of the unified-trait sweep.
pub struct ZooCell {
    /// Protocol behavior (`sandf`, `push_only`, `push_pull`, `shuffle`,
    /// `replace`, `undelete`, `batched`).
    pub protocol: &'static str,
    /// Arena engine (`flat` or `par`).
    pub engine: &'static str,
}

impl SweepCell for ZooCell {
    fn key(&self) -> String {
        format!("{}/{}", self.protocol, self.engine)
    }
}

/// Every behavior the zoo sweep drives, in cell order.
const ZOO_PROTOCOLS: [&str; 7] =
    ["sandf", "push_only", "push_pull", "shuffle", "replace", "undelete", "batched"];

fn zoo_metrics<E: Engine>(mut sim: E, rounds: usize) -> Vec<f64> {
    sim.run_rounds(rounds);
    let graph = sim.graph();
    vec![
        graph.edge_count() as f64,
        DegreeStats::from_samples(&graph.out_degrees()).mean,
        DegreeStats::from_samples(&graph.in_degrees()).std_dev(),
        f64::from(u8::from(graph.is_weakly_connected())),
    ]
}

fn zoo_run<B: ProtocolBehavior>(
    behavior: B,
    engine: &str,
    config: SfConfig,
    views: Vec<(NodeId, Vec<NodeId>)>,
    loss: f64,
    seed: u64,
    rounds: usize,
) -> Vec<f64> {
    let loss = UniformLoss::new(loss).expect("valid rate");
    match engine {
        "flat" => {
            zoo_metrics(FlatSimulation::from_views(behavior, config, views, loss, seed), rounds)
        }
        _ => zoo_metrics(ParSimulation::from_views(behavior, config, views, loss, seed, 2), rounds),
    }
}

/// The whole protocol zoo — S&F, the three baselines, and the three
/// Section 5 variants — on both arena engines through the unified
/// [`Engine`]/[`ProtocolBehavior`] traits, under one uniform loss rate.
/// The id population (`total_ids`) reproduces the §3.1 taxonomy on the
/// fast engines: shuffle drains, S&F and the variants hold their band,
/// push variants saturate.
#[must_use]
pub fn zoo_engine_table(
    n: usize,
    rounds: usize,
    loss: f64,
    replicates: usize,
    base_seed: u64,
) -> String {
    let config = SfConfig::new(16, 6).expect("legal config");
    let mut cells = Vec::new();
    for protocol in ZOO_PROTOCOLS {
        for engine in ["flat", "par"] {
            cells.push(ZooCell { protocol, engine });
        }
    }
    let spec = SweepSpec::new(cells, replicates, base_seed);
    // Same bootstrap views for every cell/replicate — build once, clone in.
    let views: Vec<(NodeId, Vec<NodeId>)> =
        (0..n).map(|i| (NodeId::new(i as u64), baseline_bootstrap(i, 8, n))).collect();
    let results = spec.run(&["total_ids", "mean_out", "in_std", "connected"], |cell, rng| {
        let seed = rng.next_u64();
        let views = views.clone();
        match cell.protocol {
            "sandf" => zoo_run(SfBehavior, cell.engine, config, views, loss, seed, rounds),
            "push_only" => {
                zoo_run(PushOnlyBehavior, cell.engine, config, views, loss, seed, rounds)
            }
            "push_pull" => {
                zoo_run(PushPullBehavior::new(3), cell.engine, config, views, loss, seed, rounds)
            }
            "shuffle" => {
                zoo_run(ShuffleBehavior::new(3), cell.engine, config, views, loss, seed, rounds)
            }
            "replace" => zoo_run(ReplaceBehavior, cell.engine, config, views, loss, seed, rounds),
            "undelete" => zoo_run(UndeleteBehavior, cell.engine, config, views, loss, seed, rounds),
            _ => zoo_run(BatchedBehavior::new(3), cell.engine, config, views, loss, seed, rounds),
        }
    });
    results.to_tsv(&["protocol", "engine"], |c| vec![c.protocol.to_string(), c.engine.to_string()])
}

// ---------------------------------------------------------------------------
// broadcast_sweep — rumor spreading over live views (PR 10)
// ---------------------------------------------------------------------------

/// One cell of the dissemination grid: a view protocol × a rumor channel.
pub struct BroadcastCell {
    /// View-layer protocol feeding the rumor layer.
    pub protocol: &'static str,
    /// Rumor-channel fault applied to broadcast messages.
    pub channel: &'static str,
}

impl SweepCell for BroadcastCell {
    fn key(&self) -> String {
        format!("{}/{}", self.protocol, self.channel)
    }
}

/// View protocols the dissemination sweep rides on: S&F plus the §3.1
/// baselines whose views stay populated (push-only saturates into a
/// useless clique-of-stale-ids and is excluded from the headline grid).
const BROADCAST_PROTOCOLS: [&str; 3] = ["sandf", "push_pull", "shuffle"];

/// Rumor channels of the dissemination grid, mirroring the fault zoo.
const BROADCAST_CHANNELS: [&str; 5] = ["lossless", "uniform", "bursty", "partition", "victims"];

/// Metric columns of [`broadcast_table`] (spread-time milestones use the
/// `rounds + 1` sentinel when a run never reaches them).
pub const BROADCAST_METRICS: [&str; 5] =
    ["to_half", "to_99", "to_full", "coverage", "msgs_per_node"];

/// The named rumor channel at its grid-pinned rates. Victims are ids
/// `1..=10` (the origin, id 0, is seeded directly and stays informed).
fn broadcast_channel(name: &str) -> RumorChannel {
    match name {
        "lossless" => RumorChannel::Lossless,
        "uniform" => RumorChannel::Uniform { rate: 0.2 },
        "bursty" => {
            RumorChannel::Bursty { to_bad: 0.1, to_good: 0.3, loss_good: 0.02, loss_bad: 0.8 }
        }
        "partition" => RumorChannel::Partition { regions: 2, sever: 1.0, base: 0.0 },
        "victims" => RumorChannel::Victims {
            victim_rate: 1.0,
            base: 0.0,
            victims: (1..=10).map(NodeId::new).collect(),
        },
        other => panic!("unknown rumor channel {other:?}"),
    }
}

/// `Some(round)` → that round; `None` → the `rounds + 1` sentinel, so
/// unreached milestones stay finite (and visibly out of range) in means.
fn milestone(value: Option<u64>, rounds: usize) -> f64 {
    value.map_or_else(|| (rounds + 1) as f64, |v| v as f64)
}

fn broadcast_run<B: ProtocolBehavior>(
    behavior: B,
    config: SfConfig,
    views: Vec<(NodeId, Vec<NodeId>)>,
    channel: RumorChannel,
    seed: u64,
    burn_in: usize,
    rounds: usize,
) -> Vec<f64> {
    let loss = UniformLoss::new(0.01).expect("valid rate");
    let mut sim = FlatSimulation::from_views(behavior, config, views, loss, seed);
    sim.run_rounds(burn_in);
    let mut layer = BroadcastLayer::with_channel(seed, BroadcastConfig::default(), channel);
    let origin = Engine::live_ids(&sim).into_iter().min().expect("non-empty sim");
    layer.seed_rumor_at(origin);
    layer.run(&mut sim, rounds);
    let report = layer.report();
    vec![
        milestone(report.to_half, rounds),
        milestone(report.to_99, rounds),
        milestone(report.to_full, rounds),
        report.coverage,
        report.messages_per_node,
    ]
}

/// Dissemination grid (DESIGN.md PR 10): fanout-1 push rumor spreading
/// over the live views of S&F and the §3.1 baselines, under the rumor-
/// channel fault zoo, with 1 % uniform loss on the membership channel
/// throughout. Spread-time milestones compare against
/// [`sandf_sim::doerr_spread_prediction`] (`log₂ n + ln n`); message
/// complexity is per live node.
#[must_use]
pub fn broadcast_table(
    n: usize,
    burn_in: usize,
    rounds: usize,
    replicates: usize,
    base_seed: u64,
) -> String {
    let config = SfConfig::new(16, 6).expect("legal config");
    let mut cells = Vec::new();
    for protocol in BROADCAST_PROTOCOLS {
        for channel in BROADCAST_CHANNELS {
            cells.push(BroadcastCell { protocol, channel });
        }
    }
    let spec = SweepSpec::new(cells, replicates, base_seed);
    // Expander-like bootstrap: ring views take Θ(diameter²) S&F rounds to
    // mix, which at dissemination scales would swamp the rumor's own
    // spread time with membership warm-up (see EXPERIMENTS.md).
    let views: Vec<(NodeId, Vec<NodeId>)> = topology::random_iter(n, config, 8, base_seed)
        .map(|node| (node.id(), node.view().ids().collect()))
        .collect();
    let results = spec.run(&BROADCAST_METRICS, |cell, rng| {
        let seed = rng.next_u64();
        let views = views.clone();
        let channel = broadcast_channel(cell.channel);
        match cell.protocol {
            "sandf" => broadcast_run(SfBehavior, config, views, channel, seed, burn_in, rounds),
            "push_pull" => broadcast_run(
                PushPullBehavior::new(3),
                config,
                views,
                channel,
                seed,
                burn_in,
                rounds,
            ),
            _ => broadcast_run(
                ShuffleBehavior::new(3),
                config,
                views,
                channel,
                seed,
                burn_in,
                rounds,
            ),
        }
    });
    results
        .to_tsv(&["protocol", "channel"], |c| vec![c.protocol.to_string(), c.channel.to_string()])
}

// ---------------------------------------------------------------------------
// churn_sweep — sustainable-churn boundary
// ---------------------------------------------------------------------------

/// One replacement interval of the continuous-churn sweep.
pub struct ChurnCell {
    /// Rounds between leave/join replacement events.
    pub interval: usize,
}

impl SweepCell for ChurnCell {
    fn key(&self) -> String {
        format!("interval={}", self.interval)
    }
}

/// Sustainable-churn sweep (DESIGN.md B3): one node replaced every
/// `interval` rounds; after `rounds` rounds of ongoing churn the final
/// connectivity, load balance, and stale-id fraction are measured per
/// replicate.
#[must_use]
pub fn churn_table(
    n: usize,
    burn_in: usize,
    rounds: usize,
    replicates: usize,
    base_seed: u64,
) -> String {
    let config = SfConfig::new(16, 6).expect("legal config");
    let cells: Vec<ChurnCell> =
        [1usize, 2, 4, 8, 16].iter().map(|&interval| ChurnCell { interval }).collect();
    let spec = SweepSpec::new(cells, replicates, base_seed);
    let results = spec.run(
        &["components", "mean_in_degree", "in_degree_std", "stale_fraction"],
        |cell, rng| {
            let params = ExperimentParams { n, config, loss: 0.01, burn_in, seed: rng.next_u64() };
            // A single checkpoint at the end: the sweep aggregates final
            // state across replicates rather than one run's trajectory.
            let points = continuous_churn(&params, cell.interval, rounds, rounds);
            let p = points.last().expect("at least one checkpoint");
            vec![p.components as f64, p.mean_in_degree, p.in_degree_std, p.stale_fraction]
        },
    );
    results.to_tsv(&["churn_interval"], |c| vec![c.interval.to_string()])
}

// ---------------------------------------------------------------------------
// delay_ablation — §4 asynchrony / non-atomic actions
// ---------------------------------------------------------------------------

/// One message-delay bound of the asynchrony ablation (`0` = immediate
/// delivery).
pub struct DelayCell {
    /// Largest per-message delay, in global steps; `0` means the central
    /// entity's immediate-delivery execution.
    pub max_delay: u64,
}

impl DelayCell {
    fn model(&self) -> DelayModel {
        if self.max_delay == 0 {
            DelayModel::Immediate
        } else {
            DelayModel::UniformSteps { max: self.max_delay }
        }
    }
}

impl SweepCell for DelayCell {
    fn key(&self) -> String {
        format!("max_delay={}", self.max_delay)
    }
}

/// Asynchrony ablation (DESIGN.md B7): the paper's model breaks actions
/// into single-node steps so the analysis survives non-atomic, overlapping
/// actions (Section 4). Every message is delayed up to `max_delay` global
/// steps — by the largest setting, hundreds of other actions interleave
/// with each in-flight message — and the replicated steady-state statistics
/// must be flat in the delay bound.
#[must_use]
pub fn delay_table(n: usize, rounds: usize, replicates: usize, base_seed: u64) -> String {
    let config = paper_config();
    let cells: Vec<DelayCell> =
        [0u64, 16, 64, 256, 1024].iter().map(|&max_delay| DelayCell { max_delay }).collect();
    let spec = SweepSpec::new(cells, replicates, base_seed);
    // Same topology for every cell/replicate — construct once, clone in.
    let nodes = topology::circulant(n, config, initial_degree(config, n));
    let results = spec.run(&["mean_out", "in_std", "dependent_frac", "connected"], |cell, rng| {
        let loss = UniformLoss::new(0.02).expect("valid rate");
        let mut sim = Simulation::with_delay(nodes.clone(), loss, cell.model(), rng.next_u64());
        for _ in 0..n * rounds {
            sim.step();
        }
        sim.settle();
        let graph = sim.graph();
        vec![
            DegreeStats::from_samples(&graph.out_degrees()).mean,
            DegreeStats::from_samples(&graph.in_degrees()).std_dev(),
            1.0 - sim.dependence().independent_fraction(),
            f64::from(u8::from(graph.is_weakly_connected())),
        ]
    });
    results.to_tsv(&["max_delay_steps"], |c| vec![c.max_delay.to_string()])
}

// ---------------------------------------------------------------------------
// par_degree — the sharded engine on the §6.4 loss grid
// ---------------------------------------------------------------------------

/// One loss rate of the parallel-engine degree sweep.
pub struct ParDegreeCell {
    /// Uniform loss rate `ℓ`.
    pub loss: f64,
}

impl SweepCell for ParDegreeCell {
    fn key(&self) -> String {
        format!("loss={}", self.loss)
    }
}

/// The §6.4 degree grid driven by [`ParSimulation`]: steady-state degree
/// statistics and duplication rate per loss rate. `threads` changes
/// wall-clock only — the engine is byte-identical for any thread count, so
/// the returned TSV is too; the thread-count determinism regression test
/// pins it for `threads ∈ {1, 2, 8}`.
#[must_use]
pub fn par_degree_table(
    n: usize,
    burn_in: usize,
    measure: usize,
    threads: usize,
    replicates: usize,
    base_seed: u64,
) -> String {
    let config = paper_config();
    let cells: Vec<ParDegreeCell> =
        [0.0, 0.01, 0.05, 0.1].iter().map(|&loss| ParDegreeCell { loss }).collect();
    let spec = SweepSpec::new(cells, replicates, base_seed);
    // Same topology for every cell/replicate — construct once, clone in.
    let nodes = topology::circulant(n, config, initial_degree(config, n));
    let results = spec.run(&["mean_out", "in_std", "dup_rate", "connected"], |cell, rng| {
        let loss = UniformLoss::new(cell.loss).expect("valid rate");
        let sim = ParSimulation::new(nodes.clone(), loss, rng.next_u64(), threads)
            .run_replicate(burn_in, measure);
        let graph = sim.graph();
        vec![
            DegreeStats::from_samples(&graph.out_degrees()).mean,
            DegreeStats::from_samples(&graph.in_degrees()).std_dev(),
            sim.stats().duplication_rate().unwrap_or(0.0),
            f64::from(u8::from(graph.is_weakly_connected())),
        ]
    });
    results.to_tsv(&["loss"], |c| vec![fmt(c.loss)])
}

// ---------------------------------------------------------------------------
// uniformity — Lemma 7.6 / Property M3
// ---------------------------------------------------------------------------

/// One loss rate of the uniformity experiment.
pub struct UniformityCell {
    /// Uniform loss rate `ℓ`.
    pub loss: f64,
}

impl SweepCell for UniformityCell {
    fn key(&self) -> String {
        format!("loss={}", self.loss)
    }
}

/// Lemma 7.6 — uniform representation of ids in views over a long
/// steady-state run, replicated: χ², χ²/dof, and the max/min representation
/// ratio per loss rate.
#[must_use]
pub fn uniformity_table(scale: SampleScale, replicates: usize, base_seed: u64) -> String {
    let config = paper_config();
    let cells: Vec<UniformityCell> =
        [0.0, 0.01, 0.05].iter().map(|&loss| UniformityCell { loss }).collect();
    let spec = SweepSpec::new(cells, replicates, base_seed);
    let results = spec.run(&["chi_square", "chi2_over_dof", "max_min_ratio"], |cell, rng| {
        let params = ExperimentParams {
            n: scale.n,
            config,
            loss: cell.loss,
            burn_in: scale.burn_in,
            seed: rng.next_u64(),
        };
        let report = uniformity(&params, scale.samples, scale.sample_every);
        vec![
            report.chi_square,
            report.chi_square / report.degrees_of_freedom.max(1) as f64,
            report.max_min_ratio,
        ]
    });
    results.to_tsv(&["loss"], |c| vec![fmt(c.loss)])
}

#[cfg(test)]
mod tests {
    use super::*;

    // Tiny-scale smoke runs of each table: shape checks only — the golden
    // and determinism integration tests pin exact bytes.

    #[test]
    fn threshold_validation_has_one_row_per_d_hat() {
        let tsv = threshold_validation_table(48, 10, 10, 2, 1);
        assert_eq!(tsv.lines().count(), 4);
        assert!(tsv.starts_with("d_hat\td_L\ts\tP_dup\tP_del\tdup_rate_mean\t"));
    }

    #[test]
    fn baseline_table_covers_the_protocol_grid() {
        let tsv = baseline_table(24, 20, 2, 5);
        // Header + 4 protocols × 3 loss rates.
        assert_eq!(tsv.lines().count(), 13);
        for protocol in ["sandf", "shuffle", "push_pull", "push_only"] {
            assert_eq!(tsv.lines().filter(|l| l.starts_with(&format!("{protocol}\t"))).count(), 3);
        }
    }

    #[test]
    fn zoo_table_covers_every_protocol_on_both_engines() {
        let tsv = zoo_engine_table(24, 8, 0.05, 2, 3);
        // Header + 7 protocols × 2 engines.
        assert_eq!(tsv.lines().count(), 15);
        assert!(tsv.starts_with("protocol\tengine\ttotal_ids_mean\t"));
        for protocol in ZOO_PROTOCOLS {
            for engine in ["flat", "par"] {
                assert_eq!(
                    tsv.lines()
                        .filter(|l| l.starts_with(&format!("{protocol}\t{engine}\t")))
                        .count(),
                    1
                );
            }
        }
    }

    #[test]
    fn broadcast_table_covers_the_dissemination_grid() {
        let tsv = broadcast_table(32, 10, 25, 2, 17);
        // Header + 3 protocols × 5 channels.
        assert_eq!(tsv.lines().count(), 16);
        assert!(tsv.starts_with("protocol\tchannel\tto_half_mean\t"));
        for protocol in BROADCAST_PROTOCOLS {
            for channel in BROADCAST_CHANNELS {
                assert_eq!(
                    tsv.lines()
                        .filter(|l| l.starts_with(&format!("{protocol}\t{channel}\t")))
                        .count(),
                    1
                );
            }
        }
    }

    #[test]
    fn churn_table_has_one_row_per_interval() {
        let tsv = churn_table(32, 10, 20, 2, 9);
        assert_eq!(tsv.lines().count(), 6);
    }

    #[test]
    fn par_degree_table_is_thread_count_invariant() {
        let single = par_degree_table(48, 10, 10, 1, 2, 7);
        // Header + 4 loss rates.
        assert_eq!(single.lines().count(), 5);
        assert!(single.starts_with("loss\tmean_out_mean\tmean_out_ci95\t"));
        assert_eq!(par_degree_table(48, 10, 10, 3, 2, 7), single);
    }

    #[test]
    fn delay_table_has_one_row_per_bound() {
        let tsv = delay_table(32, 20, 2, 11);
        // Header + 5 delay bounds, immediate delivery first.
        assert_eq!(tsv.lines().count(), 6);
        assert!(tsv.starts_with("max_delay_steps\tmean_out_mean\tmean_out_ci95\t"));
        assert!(tsv.lines().nth(1).expect("first cell").starts_with("0\t"));
        assert!(tsv.lines().nth(5).expect("last cell").starts_with("1024\t"));
    }
}
