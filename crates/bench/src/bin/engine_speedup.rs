//! Old-harness vs unified-engine comparison: shuffle on the retired
//! `BaselineHarness` step loop vs `FlatSimulation` through the
//! `Engine`/`ProtocolBehavior` traits, same `n`, same loss rate.
//!
//! ```text
//! engine_speedup [--nodes N] [--harness-rounds R] [--engine-rounds R]
//!                [--loss F] [--seed S] [--out PATH] [--min-speedup F]
//! ```
//!
//! Defaults: `--nodes 100000 --harness-rounds 2 --engine-rounds 50
//! --loss 0.05 --seed 42`. The round counts differ deliberately: the
//! harness pays an `O(n)` receiver scan per delivery hop, so at
//! `n = 10⁵` a couple of its rounds already dominate the wall-clock,
//! while steps/sec stays comparable across round counts. The JSON report
//! goes to stdout and, with `--out`, to a file (the PR commits it as
//! `BENCH_PR<k>.json`); with `--min-speedup` the binary exits nonzero
//! when the engine fails to clear the floor, which is how CI pins the
//! ≥10× claim.

use std::process::ExitCode;

use sandf_bench::perf::shuffle_speedup;

fn parse_flag<T: std::str::FromStr>(args: &[String], flag: &str) -> Result<Option<T>, String> {
    match args.iter().position(|a| a == flag) {
        None => Ok(None),
        Some(i) => {
            let value = args.get(i + 1).ok_or_else(|| format!("{flag} needs a value"))?;
            value.parse().map(Some).map_err(|_| format!("bad value for {flag}: {value}"))
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match compare(&args) {
        Ok(code) => code,
        Err(message) => {
            eprintln!("engine_speedup: {message}");
            ExitCode::FAILURE
        }
    }
}

fn compare(args: &[String]) -> Result<ExitCode, String> {
    let nodes = parse_flag(args, "--nodes")?.unwrap_or(100_000);
    let harness_rounds = parse_flag(args, "--harness-rounds")?.unwrap_or(2);
    let engine_rounds = parse_flag(args, "--engine-rounds")?.unwrap_or(50);
    let loss = parse_flag(args, "--loss")?.unwrap_or(0.05);
    let seed = parse_flag(args, "--seed")?.unwrap_or(42);
    let out: Option<String> = parse_flag(args, "--out")?;
    let floor: Option<f64> = parse_flag(args, "--min-speedup")?;
    if nodes < 2 {
        return Err("--nodes must be at least 2".to_string());
    }

    let report = shuffle_speedup(nodes, harness_rounds, engine_rounds, loss, seed);
    let json = report.to_json();
    print!("{json}");
    if let Some(path) = out {
        std::fs::write(&path, &json).map_err(|e| format!("writing {path}: {e}"))?;
    }
    if let Some(floor) = floor {
        if report.speedup < floor {
            eprintln!(
                "engine_speedup: {:.1}x is below the pinned floor {floor:.1}x",
                report.speedup
            );
            return Ok(ExitCode::FAILURE);
        }
        eprintln!("engine_speedup: {:.1}x clears the floor {floor:.1}x", report.speedup);
    }
    Ok(ExitCode::SUCCESS)
}
