//! Adversarial fault scenarios on the replicated-sweep executor.
//!
//! With no arguments, runs the built-in scenario library — one scenario
//! per fault family (partition-then-heal, persistent weak links, targeted
//! hub loss with churn, a slow capacity cohort) — and prints each
//! envelope table: per phase, the measured indegree statistics with 95%
//! CIs next to the §6.2 degree-MC prediction at the phase's effective
//! loss rate and the Lemma 6.10 stale-entry ceiling, plus an `in`/`OUT`
//! verdict on the indegree envelope.
//!
//! Pass file paths to run scenario specs of your own (the grammar is
//! documented in `sandf_bench::scenario` and EXPERIMENTS.md). Output is
//! deterministic: seeds are fixed in the specs and both the sweep
//! executor and the par engine are thread-count-independent.

use sandf_bench::note;
use sandf_bench::scenario::{builtin_specs, render_scenario, Scenario};

/// Engine threads per replicate; the sweep already fans replicates out
/// across cores, so the inner engine stays narrow.
const ENGINE_THREADS: usize = 2;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let specs: Vec<(String, String)> = if args.is_empty() {
        builtin_specs().iter().map(|&(name, spec)| (name.to_string(), spec.to_string())).collect()
    } else {
        args.iter()
            .map(|path| {
                let text = std::fs::read_to_string(path)
                    .unwrap_or_else(|e| panic!("cannot read scenario spec {path}: {e}"));
                (path.clone(), text)
            })
            .collect()
    };

    note("adversarial fault scenarios: measured indegree vs the degree-MC prediction at each");
    note("phase's effective loss rate; verdict `OUT` = outside ci95 + 1.0 — structured loss");
    note("is *supposed* to escape the uniform envelope (detection power), uniform phases are not");
    for (origin, text) in specs {
        let scenario = Scenario::parse(&text)
            .unwrap_or_else(|e| panic!("invalid scenario spec from {origin}: {e}"));
        println!();
        print!("{}", render_scenario(&scenario, ENGINE_THREADS));
    }
}
