//! §3.1 — the protocol-taxonomy contrast: S&F vs. shuffle (deletes sent
//! ids) vs. push-pull and push-only (keep sent ids), all under identical
//! uniform loss. The paper's claim: shuffles drain ids under loss, while
//! S&F compensates with duplications and keeps dependence at `O(ℓ + δ)`.

use sandf_baselines::{
    BaselineHarness, GossipProtocol, PushOnlyNode, PushPullNode, SfAdapter, ShuffleNode,
};
use sandf_bench::{fmt, header, note};
use sandf_core::{NodeId, SfConfig, SfNode};

const N: usize = 256;
const ROUNDS: usize = 400;
const CHECKPOINT: usize = 40;

fn bootstrap(i: usize, k: usize) -> Vec<NodeId> {
    (1..=k).map(|d| NodeId::new(((i + d) % N) as u64)).collect()
}

fn run<P: GossipProtocol>(mut harness: BaselineHarness<P>, label: &str, loss: f64) {
    let mut checkpoints = Vec::new();
    for _ in 0..(ROUNDS / CHECKPOINT) {
        harness.run_rounds(CHECKPOINT);
        checkpoints.push(harness.metrics());
    }
    let last = checkpoints.last().expect("at least one checkpoint");
    print!("{label}\t{}", fmt(loss));
    for m in &checkpoints {
        print!("\t{}", m.total_ids);
    }
    println!(
        "\t{}\t{}\t{}",
        last.empty_views,
        fmt(last.mean_out_degree),
        fmt(last.in_degree_variance)
    );
}

fn main() {
    note("Section 3.1 baseline contrast, n=256, 400 rounds, checkpoints every 40 rounds");
    let mut cols = vec!["protocol".to_string(), "loss".to_string()];
    for k in 1..=(ROUNDS / CHECKPOINT) {
        cols.push(format!("ids@r{}", k * CHECKPOINT));
    }
    cols.extend(["empty_views".into(), "mean_out".into(), "in_var".into()]);
    header(&cols.iter().map(String::as_str).collect::<Vec<_>>());

    let config = SfConfig::new(16, 6).expect("legal config");
    for &loss in &[0.0, 0.05, 0.1] {
        let sf: Vec<SfAdapter> = (0..N)
            .map(|i| {
                SfAdapter::new(
                    SfNode::with_view(NodeId::new(i as u64), config, &bootstrap(i, 8))
                        .expect("bootstrap is legal"),
                )
            })
            .collect();
        run(BaselineHarness::new(sf, loss, 1), "sandf", loss);

        let shuffle: Vec<ShuffleNode> = (0..N)
            .map(|i| ShuffleNode::new(NodeId::new(i as u64), 16, 3, &bootstrap(i, 8)))
            .collect();
        run(BaselineHarness::new(shuffle, loss, 2), "shuffle", loss);

        let push_pull: Vec<PushPullNode> = (0..N)
            .map(|i| PushPullNode::new(NodeId::new(i as u64), 16, 3, &bootstrap(i, 8)))
            .collect();
        run(BaselineHarness::new(push_pull, loss, 3), "push_pull", loss);

        let push_only: Vec<PushOnlyNode> = (0..N)
            .map(|i| PushOnlyNode::new(NodeId::new(i as u64), 16, &bootstrap(i, 8)))
            .collect();
        run(BaselineHarness::new(push_only, loss, 4), "push_only", loss);
    }

    println!();
    note("expected shape: shuffle's id population collapses under loss (empty views appear);");
    note("sandf holds its population via duplications; push_pull/push_only saturate at capacity");
}
