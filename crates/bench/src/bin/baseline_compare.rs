//! §3.1 — the protocol-taxonomy contrast: S&F vs. shuffle (deletes sent
//! ids) vs. push-pull and push-only (keep sent ids), all under identical
//! uniform loss. The paper's claim: shuffles drain ids under loss, while
//! S&F compensates with duplications and keeps dependence at `O(ℓ + δ)`.
//!
//! Runs on the replicated-sweep executor: each protocol × loss cell is
//! replicated with independent deterministic seeds, and the `ids_q1..q4`
//! columns track the id population at the quarter marks of the run with
//! 95% CIs.

use sandf_bench::{note, sweeps};

const REPLICATES: usize = 4;

fn main() {
    note(&format!(
        "Section 3.1 baseline contrast, n=256, 400 rounds, id population at quarter marks, \
         {REPLICATES} replicates"
    ));
    print!("{}", sweeps::baseline_table(256, 400, REPLICATES, 1));
    println!();
    note("expected shape: shuffle's id population collapses under loss (empty views appear);");
    note("sandf holds its population via duplications; push_pull/push_only saturate at capacity");
    println!();
    note(&format!(
        "same taxonomy on the unified engines: the whole zoo (S&F, baselines, Section 5 \
         variants) through the Engine/ProtocolBehavior traits on flat and par, n=256, \
         200 rounds, loss 0.05, {REPLICATES} replicates"
    ));
    print!("{}", sweeps::zoo_engine_table(256, 200, 0.05, REPLICATES, 1));
}
