//! §6.5 — join/leave dynamics: Lemma 6.10's decay (simulated vs. bound)
//! and Corollary 6.14's join integration (after `2s` rounds a joiner has
//! created at least `D_in/4` id instances, for `s/d_L = 2`).

use sandf_bench::{fmt, header, note};
use sandf_core::SfConfig;
use sandf_markov::decay::join_integration_bound;
use sandf_sim::experiment::{join_integration, leave_decay, ExperimentParams};

fn main() {
    note("Section 6.5: join and leave dynamics");

    // Corollary 6.14 wants s/d_L = 2: use s = 40, d_L = 20.
    let config = SfConfig::new(40, 20).expect("s/d_L = 2");
    let loss = 0.01;
    let params = ExperimentParams { n: 500, config, loss, burn_in: 300, seed: 9 };

    note("join integration: joiner bootstrapped with d_L=20 ids, tracked for 2s = 80 rounds");
    let result = join_integration(&params, 80);
    let bound = join_integration_bound(loss, 0.01, 20, 40, result.d_in_at_join);
    note(&format!(
        "steady-state D_in = {:.2}; Cor 6.14 expects >= D_in/4 = {:.2} instances within ~{:.0} rounds",
        result.d_in_at_join, bound.expected_instances, bound.rounds
    ));
    header(&["round", "joiner_id_instances"]);
    for (i, &count) in result.instances_per_round.iter().enumerate() {
        if (i + 1) % 5 == 0 {
            println!("{}\t{count}", i + 1);
        }
    }
    let at_horizon = *result.instances_per_round.last().expect("tracked rounds");
    note(&format!(
        "at round 80: {at_horizon} instances vs Cor 6.14 floor {:.1} -> {}",
        bound.expected_instances,
        if at_horizon as f64 >= bound.expected_instances { "bound met" } else { "BOUND MISSED" }
    ));

    println!();
    note("leave decay (d_L=18, s=40): simulated survival fraction vs Lemma 6.10 bound");
    let config = SfConfig::new(40, 18).expect("paper parameters");
    header(&["round", "simulated_l01", "bound_l01"]);
    let sim =
        leave_decay(&ExperimentParams { n: 500, config, loss: 0.01, burn_in: 300, seed: 10 }, 300);
    let bound = sandf_markov::decay::leave_survival_bound(0.01, 0.01, 18, 40, 300);
    for i in (0..300).step_by(15) {
        println!("{}\t{}\t{}", i + 1, fmt(sim[i]), fmt(bound[i]));
    }
    let violations = sim.iter().zip(&bound).filter(|(s, b)| **s > **b * 1.25 + 0.05).count();
    note(&format!(
        "rounds where the simulation exceeds 1.25x the bound: {violations} / 300 (expect ~0; the bound is an upper bound in expectation)"
    ));
}
