//! Sustainable-churn sweep (extension experiment; DESIGN.md B3).
//!
//! The paper's steady-state guarantees assume churn eventually ceases; this
//! sweep maps how much *ongoing* churn the protocol absorbs before stale
//! ids (Lemma 6.9's decaying instances, continuously replenished) shred the
//! overlay. Dead ids decay at `≈ (1−ℓ−δ)·d_L/s²` per round, so the
//! sustainable replacement interval should scale like `s²/d_L` divided by
//! the per-leave stale influx — the sweep exposes exactly that boundary.

use sandf_bench::{fmt, header, note};
use sandf_core::SfConfig;
use sandf_sim::experiment::{continuous_churn, ExperimentParams};

fn main() {
    note("continuous churn sweep: one node replaced every k rounds, n=256, s=16, d_L=6, l=1%");
    header(&[
        "churn_interval",
        "round",
        "components",
        "mean_in_degree",
        "in_degree_std",
        "stale_fraction",
    ]);
    let config = SfConfig::new(16, 6).expect("legal");
    for (k, &interval) in [1usize, 2, 4, 8, 16].iter().enumerate() {
        let params = ExperimentParams {
            n: 256,
            config,
            loss: 0.01,
            burn_in: 200,
            seed: 90 + k as u64,
        };
        let points = continuous_churn(&params, interval, 400, 100);
        for p in &points {
            println!(
                "{interval}\t{}\t{}\t{}\t{}\t{}",
                p.round,
                p.components,
                fmt(p.mean_in_degree),
                fmt(p.in_degree_std),
                fmt(p.stale_fraction),
            );
        }
    }
    println!();
    note("expected shape: long intervals (>= 8 rounds) hold stale fractions low and stay whole;");
    note("per-round churn at n=256 accumulates stale entries faster than d_L/s^2 decay clears them");
}
