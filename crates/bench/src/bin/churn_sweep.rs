//! Sustainable-churn sweep (extension experiment; DESIGN.md B3).
//!
//! The paper's steady-state guarantees assume churn eventually ceases; this
//! sweep maps how much *ongoing* churn the protocol absorbs before stale
//! ids (Lemma 6.9's decaying instances, continuously replenished) shred the
//! overlay. Dead ids decay at `≈ (1−ℓ−δ)·d_L/s²` per round, so the
//! sustainable replacement interval should scale like `s²/d_L` divided by
//! the per-leave stale influx — the sweep exposes exactly that boundary.
//!
//! Each interval is replicated on the sweep executor; the columns report
//! the end-state mean ± 95% CI across replicates.

use sandf_bench::{note, sweeps};

const REPLICATES: usize = 4;

fn main() {
    note(&format!(
        "continuous churn sweep: one node replaced every k rounds, n=256, s=16, d_L=6, l=1%, \
         400 rounds, {REPLICATES} replicates"
    ));
    print!("{}", sweeps::churn_table(256, 200, 400, REPLICATES, 90));
    println!();
    note("expected shape: long intervals (>= 8 rounds) hold stale fractions low and stay whole;");
    note(
        "per-round churn at n=256 accumulates stale entries faster than d_L/s^2 decay clears them",
    );
}
