//! §6.3 — threshold selection sweep (`d̂ × δ → (d_L, s)`), the paper's
//! running example, the §7.4 connectivity condition, and a replicated
//! simulation validation of the selected thresholds (on the sweep
//! executor, with 95% CIs on the realized rates).

use sandf_bench::{fmt, header, note, sweeps};
use sandf_markov::{
    alpha_lower_bound, min_dl_for_connectivity, select_thresholds, AnalyticalDegrees,
};

const REPLICATES: usize = 4;

fn main() {
    note("Section 6.3: threshold selection from the Eq. (6.1) law (d_m = 3 d_hat)");
    header(&["d_hat", "delta", "d_L", "s", "P_dup", "P_del", "E_out"]);
    for d_hat in [10usize, 20, 30, 40, 50] {
        for delta in [0.05, 0.01, 0.001] {
            let sel = select_thresholds(d_hat, delta).expect("valid inputs");
            println!(
                "{d_hat}\t{}\t{}\t{}\t{}\t{}\t{}",
                fmt(delta),
                sel.d_l,
                sel.s,
                fmt(sel.duplication_probability),
                fmt(sel.deletion_probability),
                fmt(sel.expected_out_degree),
            );
        }
    }

    println!();
    note("paper's running example: d_hat=30, delta=0.01 -> paper reports (18, 40)");
    let sel = select_thresholds(30, 0.01).expect("paper example");
    note(&format!(
        "faithful Eq. (6.1) rule gives (d_L, s) = ({}, {}); d_L matches, s differs",
        sel.d_l, sel.s
    ));
    let law = AnalyticalDegrees::new(90).expect("even");
    note(&format!(
        "tail under Eq. (6.1): P(d >= 40) = {} > delta; P(d >= 42) = {} <= delta",
        fmt(law.cdf_out_at_least(40)),
        fmt(law.cdf_out_at_least(42)),
    ));
    note("the paper's s = 40 is consistent with its (narrower) degree-MC law; see EXPERIMENTS.md");

    println!();
    note(&format!(
        "selected thresholds validated by simulation: n=400, l=1%, {REPLICATES} replicates"
    ));
    print!("{}", sweeps::threshold_validation_table(400, 300, 300, REPLICATES, 63));
    note("expected shape: realized dup/del rates below the analytic delta bounds (plus the");
    note("loss-compensation term of Lemma 6.6); mean_out tracks d_hat");

    println!();
    note("Section 7.4 connectivity condition: min d_L with P(Bin(d_L, alpha) < 3) <= eps");
    header(&["loss", "delta", "alpha", "eps", "min_d_L"]);
    for (loss, delta, eps) in
        [(0.01, 0.01, 1e-30), (0.01, 0.01, 1e-10), (0.05, 0.01, 1e-30), (0.1, 0.01, 1e-30)]
    {
        let alpha = alpha_lower_bound(loss, delta);
        let d_l = min_dl_for_connectivity(alpha, eps, 200)
            .map_or_else(|| "-".to_string(), |d| d.to_string());
        println!("{}\t{}\t{}\t{:e}\t{}", fmt(loss), fmt(delta), fmt(alpha), eps, d_l);
    }
    note("paper's example: l = delta = 1%, eps = 1e-30 -> d_L = 26");
}
