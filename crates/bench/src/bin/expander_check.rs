//! The Section 1 motivation, quantified: independent uniform views "result
//! in an expander graph, with good connectivity, robustness, and low
//! diameter". This binary measures clustering, distances, and assortativity
//! of converged S&F overlays against their (deliberately poor) initial
//! topologies, across system sizes.

use sandf_bench::{fmt, header, note};
use sandf_core::SfConfig;
use sandf_graph::{clustering_coefficient, degree_assortativity, distance_stats, MembershipGraph};
use sandf_sim::{topology, Simulation, UniformLoss};

fn report(label: &str, graph: &MembershipGraph) {
    let n = graph.node_count();
    let sources: Vec<usize> = (0..n).step_by((n / 32).max(1)).collect();
    let dist = distance_stats(graph, &sources);
    println!(
        "{label}\t{n}\t{}\t{}\t{}\t{}\t{}",
        fmt(clustering_coefficient(graph).unwrap_or(0.0)),
        fmt(dist.mean),
        dist.max,
        fmt(degree_assortativity(graph).unwrap_or(0.0)),
        graph.is_weakly_connected(),
    );
}

fn main() {
    note("expander metrics: initial topology vs converged S&F overlay (d_L=6, s=16, l=0.01)");
    header(&["graph", "n", "clustering", "mean_dist", "max_dist", "assortativity", "connected"]);
    let config = SfConfig::new(16, 6).expect("legal");

    for &n in &[128usize, 256, 512, 1024] {
        let nodes = topology::ring(n, config);
        report(&format!("ring_initial_n{n}"), &MembershipGraph::from_nodes(&nodes));
        let mut sim = Simulation::new(nodes, UniformLoss::new(0.01).expect("valid"), n as u64);
        sim.run_rounds(400);
        report(&format!("sandf_from_ring_n{n}"), &sim.graph());
    }

    let n = 256usize;
    let nodes = topology::hub_cluster(n, config, 6);
    report("hubs_initial_n256", &MembershipGraph::from_nodes(&nodes));
    let mut sim = Simulation::new(nodes, UniformLoss::new(0.01).expect("valid"), 7);
    sim.run_rounds(400);
    report("sandf_from_hubs_n256", &sim.graph());

    println!();
    note("expected shape: converged overlays have near-zero clustering, mean distance");
    note("growing ~log n (ring initials grow ~n), max distance small, assortativity ~0");
    note("(hub initials are strongly disassortative before convergence)");
}
