//! Figure 6.4 — the upper bound on the probability that an id instance of a
//! left/failed node remains in the system, as a function of rounds since
//! the departure (`δ = 0.01`, `d_L = 18`, `s = 40`), plus a simulated
//! overlay (`n = 500`).

use sandf_bench::{fmt, header, note};
use sandf_core::SfConfig;
use sandf_markov::decay::{leave_survival_bound, rounds_until_survival_below};
use sandf_sim::experiment::{leave_decay, ExperimentParams};

const LOSSES: [f64; 4] = [0.0, 0.01, 0.05, 0.1];
const DELTA: f64 = 0.01;
const D_L: usize = 18;
const S: usize = 40;
const ROUNDS: usize = 500;

fn main() {
    note("Figure 6.4: survival of a departed node's id instances, d_L=18, s=40, delta=0.01");
    let bounds: Vec<Vec<f64>> =
        LOSSES.iter().map(|&l| leave_survival_bound(l, DELTA, D_L, S, ROUNDS)).collect();

    note("simulating n=500 leavers for the empirical overlay ...");
    let config = SfConfig::new(S, D_L).expect("paper parameters");
    let sims: Vec<Vec<f64>> = LOSSES
        .iter()
        .enumerate()
        .map(|(k, &loss)| {
            leave_decay(
                &ExperimentParams { n: 500, config, loss, burn_in: 300, seed: 42 + k as u64 },
                ROUNDS,
            )
        })
        .collect();

    header(&[
        "round",
        "bound_l0",
        "bound_l01",
        "bound_l05",
        "bound_l10",
        "sim_l0",
        "sim_l01",
        "sim_l05",
        "sim_l10",
    ]);
    for i in (0..ROUNDS).step_by(10) {
        let mut row = vec![(i + 1).to_string()];
        for b in &bounds {
            row.push(fmt(b[i]));
        }
        for s in &sims {
            row.push(fmt(s[i]));
        }
        println!("{}", row.join("\t"));
    }

    println!();
    note("anchor: rounds until the bound first drops below 50% (paper: ~70 rounds, nearly loss-insensitive)");
    header(&["loss", "rounds_to_half_bound", "rounds_to_half_simulated"]);
    for (k, &loss) in LOSSES.iter().enumerate() {
        let analytic = rounds_until_survival_below(loss, DELTA, D_L, S, 0.5)
            .map_or_else(|| "-".to_string(), |r| r.to_string());
        let simulated = sims[k]
            .iter()
            .position(|&f| f < 0.5)
            .map_or_else(|| ">500".to_string(), |i| (i + 1).to_string());
        println!("{}\t{analytic}\t{simulated}", fmt(loss));
    }
    note("the simulated decay should be at or faster than the bound (it is an upper bound)");
}
