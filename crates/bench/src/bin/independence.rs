//! §7.4 — spatial independence: the measured fraction of dependent view
//! entries versus the Lemma 7.9 bounds, across loss rates; plus the
//! Lemma 6.6/6.7 loss-compensation identities.

use sandf_bench::{fmt, header, note};
use sandf_core::SfConfig;
use sandf_graph::DependenceReport;
use sandf_markov::{dependent_fraction_bound, DependenceChain};
use sandf_sim::experiment::{steady_state_event_rates, ExperimentParams};
use sandf_sim::{topology, Simulation, UniformLoss};

const LOSSES: [f64; 6] = [0.0, 0.005, 0.01, 0.02, 0.05, 0.1];
const DELTA: f64 = 0.01;

fn measured_dependence(loss: f64, seed: u64) -> (f64, DependenceReport) {
    let config = SfConfig::new(40, 18).expect("paper parameters");
    let nodes = topology::circulant(600, config, 30);
    let mut sim = Simulation::new(nodes, UniformLoss::new(loss).expect("valid rate"), seed);
    sim.run_rounds(500);
    // Average the dependent fraction over several spaced snapshots.
    let mut total = 0.0;
    let mut last = sim.dependence();
    for _ in 0..10 {
        sim.run_rounds(20);
        last = sim.dependence();
        total += 1.0 - last.independent_fraction();
    }
    (total / 10.0, last)
}

fn main() {
    note("Section 7.4: dependent-entry fraction vs loss (d_L=18, s=40, n=600)");
    header(&[
        "loss",
        "measured_dependent",
        "bound_2(l+delta)",
        "closed_form_bound",
        "dependence_mc",
        "self_edges",
        "tagged",
    ]);
    for (k, &loss) in LOSSES.iter().enumerate() {
        let (measured, report) = measured_dependence(loss, 300 + k as u64);
        let chain = DependenceChain::new(loss, DELTA).expect("valid rates");
        println!(
            "{}\t{}\t{}\t{}\t{}\t{}\t{}",
            fmt(loss),
            fmt(measured),
            fmt(2.0 * (loss + DELTA)),
            fmt(dependent_fraction_bound(loss, DELTA)),
            fmt(chain.stationary_dependent_fraction()),
            report.self_edges,
            report.tagged,
        );
    }
    note("expected shape: measured <= 2(l+delta), growing roughly linearly at slope ~2");

    println!();
    note("Lemmas 6.6/6.7: dup = l + del in steady state, and l <= dup <= l + delta");
    header(&["loss", "dup", "del", "l_plus_del", "dup_minus_(l+del)"]);
    let config = SfConfig::new(40, 18).expect("paper parameters");
    for (k, &loss) in LOSSES.iter().enumerate() {
        let rates = steady_state_event_rates(
            &ExperimentParams { n: 600, config, loss, burn_in: 400, seed: 500 + k as u64 },
            400,
        );
        println!(
            "{}\t{}\t{}\t{}\t{}",
            fmt(loss),
            fmt(rates.duplication),
            fmt(rates.deletion),
            fmt(rates.loss + rates.deletion),
            fmt(rates.duplication - rates.loss - rates.deletion),
        );
    }
}
