//! Loss-model ablation (extension experiment; DESIGN.md B4): how far does
//! the paper's uniform-i.i.d.-loss assumption (Section 4.1) carry when the
//! real loss process is *bursty*?
//!
//! A Gilbert–Elliott channel with the same long-run average rate as a
//! uniform channel is applied to identical systems; if the steady-state
//! degree statistics and dependence agree, the i.i.d. analysis transfers —
//! the paper conjectures as much when it notes nonuniform loss "is more
//! difficult to model and analyze".

use sandf_bench::{fmt, header, note};
use sandf_core::{NodeId, SfConfig};
use sandf_graph::DegreeStats;
use sandf_sim::{topology, GilbertElliott, LossModel, Simulation, TargetedLoss, UniformLoss};

struct Row {
    mean_out: f64,
    in_std: f64,
    dependent: f64,
    dup_rate: f64,
    connected: bool,
}

fn run<L: LossModel>(loss: L, seed: u64) -> Row {
    let config = SfConfig::new(40, 18).expect("paper parameters");
    let nodes = topology::circulant(600, config, 30);
    let mut sim = Simulation::new(nodes, loss, seed);
    sim.run_rounds(400);
    sim.reset_stats();
    sim.run_rounds(300);
    let graph = sim.graph();
    Row {
        mean_out: DegreeStats::from_samples(&graph.out_degrees()).mean,
        in_std: DegreeStats::from_samples(&graph.in_degrees()).std_dev(),
        dependent: 1.0 - sim.dependence().independent_fraction(),
        dup_rate: sim.stats().duplication_rate().unwrap_or(0.0),
        connected: graph.is_weakly_connected(),
    }
}

fn print_row(label: &str, avg_rate: f64, r: &Row) {
    println!(
        "{label}\t{}\t{}\t{}\t{}\t{}\t{}",
        fmt(avg_rate),
        fmt(r.mean_out),
        fmt(r.in_std),
        fmt(r.dependent),
        fmt(r.dup_rate),
        r.connected,
    );
}

fn main() {
    note("uniform vs Gilbert-Elliott loss at matched average rates, n=600, d_L=18, s=40");
    header(&[
        "model", "avg_rate", "mean_out", "in_std", "dependent_frac", "dup_rate", "connected",
    ]);
    for (k, &rate) in [0.01, 0.05, 0.1].iter().enumerate() {
        let seed = 400 + k as u64;
        let uniform = run(UniformLoss::new(rate).expect("valid"), seed);
        print_row("uniform", rate, &uniform);

        // Bursty channel: bad state loses 50% of messages; dwell times are
        // tuned so the stationary average matches `rate`.
        // avg = p_bad · 0.5 with p_bad = to_bad/(to_bad + to_good).
        let to_good = 0.05;
        let p_bad = rate / 0.5;
        let to_bad = to_good * p_bad / (1.0 - p_bad);
        let ge = GilbertElliott::new(to_bad, to_good, 0.0, 0.5).expect("valid");
        let measured_avg = ge.average_rate();
        let bursty = run(ge, seed + 10);
        print_row("gilbert_elliott", measured_avg, &bursty);
    }
    println!();
    note("expected shape: matched averages give closely matching steady-state statistics —");
    note("the i.i.d. analysis transfers to bursty loss at these burst scales");

    println!();
    note("spatially targeted loss: one victim node with heavy inbound loss, base 1%");
    header(&["victim_inbound_loss", "victim_in", "victim_out", "pop_mean_in", "connected"]);
    let config = SfConfig::new(40, 18).expect("paper parameters");
    for (k, &rate) in [0.01f64, 0.25, 0.5, 0.9].iter().enumerate() {
        let victim = NodeId::new(0);
        let mut loss = TargetedLoss::new(0.01).expect("valid base");
        loss.set_target(victim, rate).expect("valid override");
        let nodes = topology::circulant(600, config, 30);
        let mut sim = Simulation::new(nodes, loss, 700 + k as u64);
        sim.run_rounds(500);
        let graph = sim.graph();
        println!(
            "{}\t{}\t{}\t{}\t{}",
            fmt(rate),
            graph.in_degree(victim).unwrap_or(0),
            graph.out_degree(victim).unwrap_or(0),
            fmt(DegreeStats::from_samples(&graph.in_degrees()).mean),
            graph.is_weakly_connected(),
        );
    }
    note("expected shape: the victim's outdegree erodes toward d_L as its inbound refills are");
    note("lost, but its duplication floor keeps it participating and the overlay stays whole");
}
