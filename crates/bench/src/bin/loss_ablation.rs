//! Loss-model ablation (extension experiment; DESIGN.md B4): how far does
//! the paper's uniform-i.i.d.-loss assumption (Section 4.1) carry when the
//! real loss process is *bursty*?
//!
//! A Gilbert–Elliott channel with the same long-run average rate as a
//! uniform channel is applied to identical systems; if the steady-state
//! degree statistics and dependence agree, the i.i.d. analysis transfers —
//! the paper conjectures as much when it notes nonuniform loss "is more
//! difficult to model and analyze". Both sections run on the
//! replicated-sweep executor, so every column carries a 95% CI.

use sandf_bench::{note, sweeps};

const REPLICATES: usize = 4;

fn main() {
    note(&format!(
        "uniform vs Gilbert-Elliott loss at matched average rates, n=600, d_L=18, s=40, \
         {REPLICATES} replicates"
    ));
    print!("{}", sweeps::loss_ablation_table(600, 400, 300, REPLICATES, 400));
    println!();
    note("expected shape: matched averages give closely matching steady-state statistics —");
    note("the i.i.d. analysis transfers to bursty loss at these burst scales");

    println!();
    note("spatially targeted loss: one victim node with heavy inbound loss, base 1%");
    print!("{}", sweeps::targeted_loss_table(600, 500, REPLICATES, 700));
    note("expected shape: the victim's outdegree erodes toward d_L as its inbound refills are");
    note("lost, but its duplication floor keeps it participating and the overlay stays whole");
}
