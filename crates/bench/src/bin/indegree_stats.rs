//! §6.4 in-text table — "The average indegrees and their standard
//! deviations are 28 ± 3.4, 27 ± 3.6, 24 ± 4.1, 23 ± 4.3 for
//! ℓ = 0, 0.01, 0.05, 0.1" (`d_L = 18`, `s = 40`).

use sandf_bench::{fmt, header, note};
use sandf_core::SfConfig;
use sandf_markov::{DegreeMc, DegreeMcParams};
use sandf_sim::experiment::{steady_state_degrees, ExperimentParams};

const LOSSES: [f64; 4] = [0.0, 0.01, 0.05, 0.1];
const PAPER_MEAN: [f64; 4] = [28.0, 27.0, 24.0, 23.0];
const PAPER_STD: [f64; 4] = [3.4, 3.6, 4.1, 4.3];

fn main() {
    note("Section 6.4 indegree table, d_L=18, s=40");
    header(&[
        "loss",
        "paper_mean",
        "paper_std",
        "mc_mean",
        "mc_std",
        "sim_mean",
        "sim_std",
    ]);
    let config = SfConfig::new(40, 18).expect("paper parameters");
    for (k, &loss) in LOSSES.iter().enumerate() {
        let mc = DegreeMc::solve(DegreeMcParams::new(config, loss)).expect("chain converges");
        let sim = steady_state_degrees(
            &ExperimentParams { n: 1000, config, loss, burn_in: 400, seed: 77 + k as u64 },
            30,
            5,
        );
        println!(
            "{}\t{}\t{}\t{}\t{}\t{}\t{}",
            fmt(loss),
            fmt(PAPER_MEAN[k]),
            fmt(PAPER_STD[k]),
            fmt(mc.mean_in()),
            fmt(mc.std_in()),
            fmt(sim.in_degrees.mean()),
            fmt(sim.in_degrees.variance().sqrt()),
        );
    }
    note("expected shape: means decrease with loss; stds grow slightly");
}
