//! §6.4 in-text table — "The average indegrees and their standard
//! deviations are 28 ± 3.4, 27 ± 3.6, 24 ± 4.1, 23 ± 4.3 for
//! ℓ = 0, 0.01, 0.05, 0.1" (`d_L = 18`, `s = 40`).
//!
//! Runs on the replicated-sweep executor: every loss rate is simulated
//! `REPLICATES` times with independent deterministic seeds, so the
//! `sim_in_*` columns come with 95% confidence intervals.

use sandf_bench::sweeps::SampleScale;
use sandf_bench::{note, sweeps};

const REPLICATES: usize = 4;

fn main() {
    note(&format!("Section 6.4 indegree table, d_L=18, s=40, {REPLICATES} replicates"));
    let scale = SampleScale { n: 1000, burn_in: 400, samples: 30, sample_every: 5 };
    print!("{}", sweeps::indegree_table(scale, REPLICATES, 77));
    note("expected shape: means decrease with loss; stds grow slightly");
}
