//! §7.5 — temporal independence: how fast the membership graph forgets a
//! steady-state snapshot, versus system size; plus the analytic `τ_ε`
//! bound of Lemma 7.15.

use sandf_bench::{fmt, header, note};
use sandf_core::SfConfig;
use sandf_graph::baseline_jaccard;
use sandf_markov::conductance::{actions_per_node_bound, expected_conductance_bound};
use sandf_sim::experiment::{temporal_overlap, ExperimentParams};

const SIZES: [usize; 4] = [64, 128, 256, 512];

fn main() {
    note("Section 7.5: edge-overlap decay with the initial steady-state graph");
    let config = SfConfig::new(16, 6).expect("small views for visible decay");
    let s = config.view_size();

    let mut curves = Vec::new();
    for (k, &n) in SIZES.iter().enumerate() {
        let params = ExperimentParams { n, config, loss: 0.01, burn_in: 200, seed: 70 + k as u64 };
        curves.push(temporal_overlap(&params, 30, 2));
    }

    header(&["actions_per_node", "jac_n64", "jac_n128", "jac_n256", "jac_n512"]);
    for i in 0..curves[0].len() {
        let mut row = vec![fmt(curves[0][i].actions_per_node)];
        for curve in &curves {
            row.push(fmt(curve[i].jaccard));
        }
        println!("{}", row.join("\t"));
    }

    println!();
    note("independent-graph baselines (what the curves should decay to)");
    header(&[
        "n",
        "baseline_jaccard",
        "half_life_rounds (first point below (1+baseline)/2 of start)",
    ]);
    for (k, &n) in SIZES.iter().enumerate() {
        let edges = (n as f64 * 11.0) as usize; // ~mean outdegree for this config
        let base = baseline_jaccard(n, edges);
        let half = curves[k]
            .iter()
            .position(|p| p.jaccard < 0.5 + base / 2.0)
            .map_or_else(|| ">60".to_string(), |i| fmt(curves[k][i].actions_per_node));
        println!("{n}\t{}\t{half}", fmt(base));
    }
    note("expected shape: half-life grows ~ s log n (slowly with n), not with n itself");

    println!();
    note("Lemma 7.15 analytic bounds (deliberately conservative, as the paper notes vs mixing-time work)");
    header(&["n", "s", "d_E", "alpha", "phi_bound", "tau_eps_actions_per_node"]);
    for &n in &SIZES {
        let d_e = 11.0;
        let alpha = 0.96;
        let phi = expected_conductance_bound(d_e, alpha, s);
        let per_node = actions_per_node_bound(n, s, d_e, alpha, 0.01);
        println!("{n}\t{s}\t{}\t{}\t{}\t{}", fmt(d_e), fmt(alpha), fmt(phi), fmt(per_node));
    }
}
