//! Figure 6.3 — S&F node degree distributions from the degree MC for loss
//! rates `ℓ ∈ {0, 0.01, 0.05, 0.1}` (`d_L = 18`, `s = 40`), with a
//! simulator overlay (`n = 1000`) cross-validating the chain.

use sandf_bench::{fmt, header, note};
use sandf_core::SfConfig;
use sandf_markov::{DegreeMc, DegreeMcParams};
use sandf_sim::experiment::{steady_state_degrees, ExperimentParams};

const LOSSES: [f64; 4] = [0.0, 0.01, 0.05, 0.1];

fn main() {
    note("Figure 6.3: degree distributions under loss, d_L=18, s=40");
    let config = SfConfig::new(40, 18).expect("paper parameters");

    let mut chains = Vec::new();
    for &loss in &LOSSES {
        note(&format!("solving degree MC for l={loss} ..."));
        let mc = DegreeMc::solve(DegreeMcParams::new(config, loss)).expect("chain converges");
        chains.push(mc);
    }

    note("simulating n=1000 for the empirical overlay ...");
    let mut sims = Vec::new();
    for (k, &loss) in LOSSES.iter().enumerate() {
        let params =
            ExperimentParams { n: 1000, config, loss, burn_in: 400, seed: 1000 + k as u64 };
        sims.push(steady_state_degrees(&params, 30, 5));
    }

    println!();
    note("panel (a): node indegree pmf per loss rate (mc_* = degree MC, sim_* = simulator)");
    header(&[
        "indegree", "mc_l0", "mc_l01", "mc_l05", "mc_l10", "sim_l0", "sim_l01", "sim_l05",
        "sim_l10",
    ]);
    let mc_in: Vec<Vec<f64>> = chains.iter().map(DegreeMc::in_pmf).collect();
    let sim_in: Vec<Vec<f64>> = sims.iter().map(|d| d.in_degrees.pmf()).collect();
    for k in 0..=45usize {
        let mut row = vec![k.to_string()];
        for pmf in mc_in.iter().chain(sim_in.iter()) {
            row.push(fmt(pmf.get(k).copied().unwrap_or(0.0)));
        }
        println!("{}", row.join("\t"));
    }

    println!();
    note("panel (b): node outdegree pmf per loss rate");
    header(&[
        "outdegree",
        "mc_l0",
        "mc_l01",
        "mc_l05",
        "mc_l10",
        "sim_l0",
        "sim_l01",
        "sim_l05",
        "sim_l10",
    ]);
    let mc_out: Vec<Vec<f64>> = chains.iter().map(DegreeMc::out_pmf).collect();
    let sim_out: Vec<Vec<f64>> = sims.iter().map(|d| d.out_degrees.pmf()).collect();
    for d in 0..=40usize {
        let mut row = vec![d.to_string()];
        for pmf in mc_out.iter().chain(sim_out.iter()) {
            row.push(fmt(pmf.get(d).copied().unwrap_or(0.0)));
        }
        println!("{}", row.join("\t"));
    }

    println!();
    note("summary: expected outdegree decreases with loss but stays >> d_L=18 (Lemma 6.4)");
    header(&["loss", "mc_mean_out", "mc_mean_in", "sim_mean_out", "mc_dup", "mc_del"]);
    for (k, &loss) in LOSSES.iter().enumerate() {
        println!(
            "{}\t{}\t{}\t{}\t{}\t{}",
            fmt(loss),
            fmt(chains[k].mean_out()),
            fmt(chains[k].mean_in()),
            fmt(sims[k].out_degrees.mean()),
            fmt(chains[k].duplication_probability()),
            fmt(chains[k].deletion_probability()),
        );
    }
}
