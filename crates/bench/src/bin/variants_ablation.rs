//! Ablation of the Section 5 optimizations the paper deferred to future
//! work: vanilla S&F vs. undeletion, replace-when-full, and batched sends,
//! under identical loss schedules.
//!
//! The design questions this answers (DESIGN.md, experiment B2):
//!
//! * does *undeletion* reduce neighbor dependence compared to duplication,
//!   as the paper's motivation for avoiding in-view replication suggests?
//! * does *replace-when-full* change the degree balance (it trades
//!   deletion-loss for displacement churn)?
//! * how much does *batching* coarsen the degree distribution (moves of
//!   ±(b+1) instead of ±2)?

use sandf_bench::{fmt, header, note};
use sandf_core::{NodeId, SfConfig};
use sandf_variants::{
    BatchedNode, ReplaceNode, SfVariant, UndeleteNode, VanillaNode, VariantMetrics, VariantSim,
};

const N: usize = 256;
const ROUNDS: usize = 400;

fn bootstrap(i: usize, k: usize) -> Vec<NodeId> {
    (1..=k).map(|d| NodeId::new(((i + d) % N) as u64)).collect()
}

fn run<V: SfVariant>(nodes: Vec<V>, loss: f64, seed: u64) -> VariantMetrics {
    let mut sim = VariantSim::new(nodes, loss, seed);
    sim.run_rounds(ROUNDS);
    sim.metrics()
}

fn row(label: &str, loss: f64, m: &VariantMetrics) {
    let sent = m.stats.sent.max(1);
    println!(
        "{label}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}",
        fmt(loss),
        fmt(m.mean_out),
        fmt(m.in_std),
        fmt(m.dependent_fraction),
        m.total_ids,
        fmt(m.stats.compensations as f64 / sent as f64),
        fmt(m.stats.displaced as f64 / sent as f64),
        m.connected,
    );
}

fn main() {
    note("Section 5 optimization ablation, n=256, 400 rounds, s=16, d_L=6 (batched: s=24)");
    header(&[
        "variant",
        "loss",
        "mean_out",
        "in_std",
        "dependent_frac",
        "total_ids",
        "compensation_rate",
        "displacement_rate",
        "connected",
    ]);
    let config = SfConfig::new(16, 6).expect("legal");
    let batched_config = SfConfig::new(24, 6).expect("legal");
    for (k, &loss) in [0.0, 0.01, 0.05, 0.1].iter().enumerate() {
        let seed = 1000 + k as u64;
        let vanilla: Vec<VanillaNode> = (0..N)
            .map(|i| VanillaNode::new(NodeId::new(i as u64), config, &bootstrap(i, 10)))
            .collect();
        row("vanilla", loss, &run(vanilla, loss, seed));

        let undelete: Vec<UndeleteNode> = (0..N)
            .map(|i| UndeleteNode::new(NodeId::new(i as u64), config, &bootstrap(i, 10)))
            .collect();
        row("undelete", loss, &run(undelete, loss, seed + 10));

        let replace: Vec<ReplaceNode> = (0..N)
            .map(|i| ReplaceNode::new(NodeId::new(i as u64), config, &bootstrap(i, 10)))
            .collect();
        row("replace", loss, &run(replace, loss, seed + 20));

        let batched: Vec<BatchedNode> = (0..N)
            .map(|i| BatchedNode::new(NodeId::new(i as u64), batched_config, 3, &bootstrap(i, 12)))
            .collect();
        row("batched_b3", loss, &run(batched, loss, seed + 30));
    }
    println!();
    note("reading guide: dependent_frac includes the dependent bootstrap tags only until they");
    note("wash out; compare variants within a loss row, not against the Lemma 7.9 bound");
}
