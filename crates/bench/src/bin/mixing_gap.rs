//! How loose is the paper's conductance machinery? (extension experiment)
//!
//! For systems small enough to enumerate, we can compute the *exact*
//! spectral gap `1 − |λ₂|` of the global chain and compare it against the
//! route the paper takes in Section 7.5: an expected-conductance lower
//! bound (Lemma 7.14) fed through a Cheeger-style inequality
//! (`gap ≥ Φ²/2`). The ratio between the exact gap and `Φ²/2` measures how
//! conservative the `τ_ε` bound of Lemma 7.15 is, independently of its
//! worst-case `π_min` term.

use sandf_bench::{fmt, header, note};
use sandf_markov::conductance::expected_conductance_bound;
use sandf_markov::ExactGlobalMc;

fn main() {
    note("exact spectral gap of enumerated global chains vs the conductance-route bound");
    header(&[
        "system",
        "states",
        "lambda2",
        "exact_gap",
        "phi_bound",
        "cheeger_floor(phi^2/2)",
        "looseness(exact/cheeger)",
    ]);
    type System = (&'static str, Vec<Vec<u8>>, usize, usize, f64, f64);
    let systems: [System; 2] = [
        // d_E ≈ 4/3 per node (4 edges, 3 nodes); α = 1 (lossless simple
        // regime doesn't apply at tiny n — use the measured independent
        // fraction bound of 1 for an optimistic Φ).
        ("triangle_n3", vec![vec![1, 2], vec![0, 2], vec![0, 1]], 6, 0, 2.0, 1.0),
        ("square_n4", vec![vec![1, 2], vec![2, 3], vec![3, 0], vec![0, 1]], 6, 0, 2.0, 1.0),
    ];
    for (name, initial, s, d_l, d_e, alpha) in systems {
        let mc = ExactGlobalMc::build(initial, s, d_l, 0.0, 3_000_000).expect("enumerable");
        let lambda = mc.chain().second_eigenvalue_modulus(20_000).expect("nontrivial chain");
        let gap = 1.0 - lambda;
        let phi = expected_conductance_bound(d_e, alpha, s);
        let cheeger = phi * phi / 2.0;
        println!(
            "{name}\t{}\t{}\t{}\t{}\t{}\t{}",
            mc.state_count(),
            fmt(lambda),
            fmt(gap),
            fmt(phi),
            fmt(cheeger),
            fmt(gap / cheeger),
        );
    }
    println!();
    note("expected shape: the exact gap exceeds the Cheeger floor by 1-3 orders of magnitude,");
    note(
        "matching the paper's remark that its temporal-independence bounds are deliberately loose",
    );
}
