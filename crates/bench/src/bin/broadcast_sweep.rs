//! Dissemination workload driver: times a headline rumor broadcast over
//! live S&F views at scale, sweeps the protocol × rumor-channel grid, and
//! verifies the parallel engine's byte-identity for the broadcast layer.
//!
//! ```text
//! broadcast_sweep [--nodes N] [--burn-in B] [--rounds R] [--loss F]
//!                 [--seed S] [--fanout K] [--max-age A] [--pull]
//!                 [--table-nodes N] [--replicates K] [--par-check N]
//!                 [--out PATH] [--tsv PATH] [--max-rounds-to-99 R]
//! ```
//!
//! Defaults: `--nodes 1000000 --burn-in 30 --rounds 60 --loss 0.01
//! --seed 42 --fanout 1 --max-age 255 --table-nodes 2000 --replicates 3
//! --par-check 20000`. Pass `--table-nodes 0` / `--par-check 0` to skip
//! those sections.
//!
//! The JSON bundle goes to stdout and, with `--out`, to a file (the PR
//! commits it as `BENCH_PR10.json`). Its `"reports"` array carries one
//! `sandf-perf-smoke/v1` point (`engine: flat, protocol: broadcast`), so
//! `bench_compare` folds the combined membership + rumor loop into the
//! existing perf-trend gate. With `--max-rounds-to-99` the binary exits
//! nonzero when the headline spread misses the floor — the CI
//! broadcast-smoke gate. A par fingerprint mismatch always exits nonzero.

use std::process::ExitCode;
use std::time::Instant;

use sandf_bench::perf::peak_rss_bytes;
use sandf_bench::sweeps;
use sandf_core::{NodeId, SfConfig};
use sandf_sim::{
    doerr_spread_prediction, topology, BroadcastConfig, BroadcastLayer, Engine, FlatSimulation,
    ParSimulation, RumorChannel, SpreadReport, UniformLoss,
};

fn parse_flag<T: std::str::FromStr>(args: &[String], flag: &str) -> Result<Option<T>, String> {
    match args.iter().position(|a| a == flag) {
        None => Ok(None),
        Some(i) => {
            let value = args.get(i + 1).ok_or_else(|| format!("{flag} needs a value"))?;
            value.parse().map(Some).map_err(|_| format!("bad value for {flag}: {value}"))
        }
    }
}

struct SweepArgs {
    nodes: usize,
    burn_in: usize,
    rounds: usize,
    loss: f64,
    seed: u64,
    config: BroadcastConfig,
    table_nodes: usize,
    replicates: usize,
    par_nodes: usize,
}

/// One timed headline broadcast: burn the membership in, seed the rumor
/// at the smallest live id, interleave membership and rumor rounds.
fn headline(a: &SweepArgs) -> (SpreadReport, f64, f64) {
    let sf = SfConfig::new(16, 6).expect("legal config");
    let d0 = if a.nodes > 8 { 8 } else { 2 };
    let t0 = Instant::now();
    let mut sim = FlatSimulation::new(
        topology::random_iter(a.nodes, sf, d0, a.seed),
        UniformLoss::new(0.01).expect("legal loss"),
        a.seed,
    );
    sim.run_rounds(a.burn_in);
    let build_ms = t0.elapsed().as_secs_f64() * 1e3;

    let mut layer =
        BroadcastLayer::with_channel(a.seed, a.config, RumorChannel::Uniform { rate: a.loss });
    let origin = Engine::live_ids(&sim).into_iter().min().expect("live node");
    layer.seed_rumor_at(origin);
    let t1 = Instant::now();
    layer.run(&mut sim, a.rounds);
    let run_ms = t1.elapsed().as_secs_f64() * 1e3;
    (layer.report(), build_ms, run_ms)
}

/// Runs the same broadcast on the parallel engine at every thread count
/// and returns the per-count state fingerprints (they must all match).
fn par_fingerprints(a: &SweepArgs) -> Vec<(usize, u64)> {
    let sf = SfConfig::new(16, 6).expect("legal config");
    let d0 = if a.par_nodes > 8 { 8 } else { 2 };
    [1usize, 2, 8]
        .into_iter()
        .map(|threads| {
            let mut sim = ParSimulation::new(
                topology::random_iter(a.par_nodes, sf, d0, a.seed),
                UniformLoss::new(0.01).expect("legal loss"),
                a.seed,
                threads,
            );
            sim.run_rounds(10);
            let mut layer = BroadcastLayer::with_channel(
                a.seed,
                a.config,
                RumorChannel::Uniform { rate: a.loss },
            );
            layer.seed_rumor_at(NodeId::new(0));
            layer.run(&mut sim, 30);
            (threads, layer.fingerprint())
        })
        .collect()
}

fn opt_round(value: Option<u64>) -> String {
    value.map_or_else(|| "null".to_string(), |v| v.to_string())
}

#[allow(clippy::too_many_arguments, clippy::cast_precision_loss)]
fn bundle_json(
    a: &SweepArgs,
    report: &SpreadReport,
    build_ms: f64,
    run_ms: f64,
    par: &[(usize, u64)],
) -> String {
    let s = report.stats;
    let steps = (a.nodes as u64) * report.rounds;
    let steps_per_sec = if run_ms > 0.0 { steps as f64 / (run_ms / 1e3) } else { 0.0 };
    let rss = peak_rss_bytes().map_or_else(|| "null".to_string(), |b| b.to_string());
    let identical = par.windows(2).all(|w| w[0].1 == w[1].1);
    let threads: Vec<String> = par.iter().map(|(t, _)| t.to_string()).collect();
    let prints: Vec<String> = par.iter().map(|(_, f)| format!("\"{f:016x}\"")).collect();
    let par_json = if par.is_empty() {
        "null".to_string()
    } else {
        format!(
            concat!(
                "{{ \"nodes\": {nodes}, \"burn_in\": 10, \"rounds\": 30, ",
                "\"threads\": [{threads}], \"fingerprints\": [{prints}], ",
                "\"identical\": {identical} }}"
            ),
            nodes = a.par_nodes,
            threads = threads.join(", "),
            prints = prints.join(", "),
            identical = identical,
        )
    };
    format!(
        concat!(
            "{{\n",
            "  \"schema\": \"sandf-broadcast/v1\",\n",
            "  \"headline\": {{\n",
            "    \"nodes\": {nodes},\n",
            "    \"burn_in\": {burn_in},\n",
            "    \"rounds\": {rounds},\n",
            "    \"fanout\": {fanout},\n",
            "    \"max_age\": {max_age},\n",
            "    \"pull\": {pull},\n",
            "    \"rumor_loss\": {loss},\n",
            "    \"seed\": {seed},\n",
            "    \"coverage\": {coverage:.6},\n",
            "    \"to_half\": {to_half},\n",
            "    \"to_99\": {to_99},\n",
            "    \"to_full\": {to_full},\n",
            "    \"messages_per_node\": {mpn:.3},\n",
            "    \"predicted_rounds\": {predicted:.2},\n",
            "    \"phases_ms\": {{ \"build\": {build:.3}, \"run\": {run:.3} }},\n",
            "    \"stats\": {{ \"sent\": {sent}, \"lost\": {lost}, ",
            "\"dead_letters\": {dead_letters}, \"delivered\": {delivered}, ",
            "\"duplicates\": {duplicates}, \"pull_requests\": {pull_requests}, ",
            "\"pull_replies\": {pull_replies}, \"pull_hits\": {pull_hits} }}\n",
            "  }},\n",
            "  \"par_identity\": {par_identity},\n",
            "  \"reports\": [\n",
            "    {{\n",
            "      \"schema\": \"sandf-perf-smoke/v1\",\n",
            "      \"nodes\": {nodes},\n",
            "      \"rounds\": {rounds},\n",
            "      \"config\": {{ \"s\": 16, \"d_l\": 6 }},\n",
            "      \"loss\": {loss},\n",
            "      \"seed\": {seed},\n",
            "      \"engine\": \"flat\",\n",
            "      \"protocol\": \"broadcast\",\n",
            "      \"threads\": 1,\n",
            "      \"phases_ms\": {{ \"build\": {build:.3}, \"run\": {run:.3}, ",
            "\"measure\": 0.0 }},\n",
            "      \"steps\": {steps},\n",
            "      \"steps_per_sec\": {sps:.1},\n",
            "      \"peak_rss_bytes\": {rss}\n",
            "    }}\n",
            "  ]\n",
            "}}\n",
        ),
        nodes = a.nodes,
        burn_in = a.burn_in,
        rounds = report.rounds,
        fanout = a.config.fanout,
        max_age = a.config.max_age,
        pull = a.config.pull,
        loss = a.loss,
        seed = a.seed,
        coverage = report.coverage,
        to_half = opt_round(report.to_half),
        to_99 = opt_round(report.to_99),
        to_full = opt_round(report.to_full),
        mpn = report.messages_per_node,
        predicted = doerr_spread_prediction(a.nodes),
        build = build_ms,
        run = run_ms,
        sent = s.sent,
        lost = s.lost,
        dead_letters = s.dead_letters,
        delivered = s.delivered,
        duplicates = s.duplicates,
        pull_requests = s.pull_requests,
        pull_replies = s.pull_replies,
        pull_hits = s.pull_hits,
        par_identity = par_json,
        steps = steps,
        sps = steps_per_sec,
        rss = rss,
    )
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match sweep(&args) {
        Ok(code) => code,
        Err(message) => {
            eprintln!("broadcast_sweep: {message}");
            ExitCode::FAILURE
        }
    }
}

fn sweep(args: &[String]) -> Result<ExitCode, String> {
    let fanout: usize = parse_flag(args, "--fanout")?.unwrap_or(1);
    let max_age: u8 = parse_flag(args, "--max-age")?.unwrap_or(u8::MAX);
    if fanout == 0 {
        return Err("--fanout must be positive".to_string());
    }
    let config = if args.iter().any(|a| a == "--pull") {
        BroadcastConfig::push_pull(fanout, max_age)
    } else {
        BroadcastConfig::push(fanout, max_age)
    };
    let loss: f64 = parse_flag(args, "--loss")?.unwrap_or(0.01);
    if !(0.0..=1.0).contains(&loss) {
        return Err(format!("--loss {loss} not in [0,1]"));
    }
    let a = SweepArgs {
        nodes: parse_flag(args, "--nodes")?.unwrap_or(1_000_000),
        burn_in: parse_flag(args, "--burn-in")?.unwrap_or(30),
        rounds: parse_flag(args, "--rounds")?.unwrap_or(60),
        loss,
        seed: parse_flag(args, "--seed")?.unwrap_or(42),
        config,
        table_nodes: parse_flag(args, "--table-nodes")?.unwrap_or(2_000),
        replicates: parse_flag(args, "--replicates")?.unwrap_or(3),
        par_nodes: parse_flag(args, "--par-check")?.unwrap_or(20_000),
    };
    if a.nodes < 2 {
        return Err("--nodes must be at least 2".to_string());
    }
    let out: Option<String> = parse_flag(args, "--out")?;
    let tsv: Option<String> = parse_flag(args, "--tsv")?;
    let floor: Option<u64> = parse_flag(args, "--max-rounds-to-99")?;

    if a.table_nodes > 0 {
        eprintln!(
            "broadcast_sweep: sweeping the protocol × channel grid at n = {}…",
            a.table_nodes
        );
        let table = sweeps::broadcast_table(a.table_nodes, 20, a.rounds, a.replicates, a.seed);
        if let Some(path) = &tsv {
            std::fs::write(path, &table).map_err(|e| format!("writing {path}: {e}"))?;
        } else {
            eprint!("{table}");
        }
    }

    eprintln!(
        "broadcast_sweep: headline run at n = {} ({} burn-in + {} broadcast rounds)…",
        a.nodes, a.burn_in, a.rounds
    );
    let (report, build_ms, run_ms) = headline(&a);
    let par = if a.par_nodes > 0 {
        eprintln!("broadcast_sweep: par byte-identity at n = {} × threads 1/2/8…", a.par_nodes);
        par_fingerprints(&a)
    } else {
        Vec::new()
    };

    let json = bundle_json(&a, &report, build_ms, run_ms, &par);
    print!("{json}");
    if let Some(path) = out {
        std::fs::write(&path, &json).map_err(|e| format!("writing {path}: {e}"))?;
    }

    if !par.windows(2).all(|w| w[0].1 == w[1].1) {
        eprintln!("broadcast_sweep: par broadcast fingerprints diverge across thread counts");
        return Ok(ExitCode::FAILURE);
    }
    if let Some(floor) = floor {
        match report.to_99 {
            Some(rounds) if rounds <= floor => {
                eprintln!(
                    "broadcast_sweep: spread to 99 % in {rounds} rounds clears the floor {floor}"
                );
            }
            Some(rounds) => {
                eprintln!(
                    "broadcast_sweep: spread to 99 % took {rounds} rounds, beyond the floor {floor}"
                );
                return Ok(ExitCode::FAILURE);
            }
            None => {
                eprintln!(
                    "broadcast_sweep: never reached 99 % coverage (got {:.4})",
                    report.coverage
                );
                return Ok(ExitCode::FAILURE);
            }
        }
    }
    Ok(ExitCode::SUCCESS)
}
