//! Observability report: a 1000-node instrumented run rendering the full
//! `sandf-obs` surface — Prometheus exposition, TSV metric dump, hot-path
//! span summaries, and the structured event journal.
//!
//! Flags: `--toy` runs the CI-scale configuration; `--journal` prints the
//! whole journal instead of its tail.

use sandf_bench::note;
use sandf_bench::obsrep::{obs_report, ObsReportConfig};

const JOURNAL_TAIL: usize = 20;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let config = if args.iter().any(|a| a == "--toy") {
        ObsReportConfig::toy()
    } else {
        ObsReportConfig::paper()
    };
    let full_journal = args.iter().any(|a| a == "--journal");

    note(&format!(
        "observability report: n={}, rounds={}, loss={}, max_delay={}, seed={}",
        config.n, config.rounds, config.loss, config.max_delay, config.seed
    ));
    let report = obs_report(&config);

    note("---- prometheus exposition ----");
    print!("{}", report.prometheus);

    note("---- metrics tsv ----");
    print!("{}", report.tsv);

    let lines: Vec<&str> = report.journal_jsonl.lines().collect();
    if full_journal {
        note(&format!("---- event journal ({} events) ----", lines.len()));
        for line in &lines {
            println!("{line}");
        }
    } else {
        note(&format!(
            "---- event journal: last {} of {} retained events (--journal for all) ----",
            JOURNAL_TAIL.min(lines.len()),
            lines.len()
        ));
        for line in lines.iter().rev().take(JOURNAL_TAIL).rev() {
            println!("{line}");
        }
    }

    let s = report.stats;
    note(&format!(
        "sim ledger: actions={} sent={} lost={} dead_letters={} stored={} deleted={} dup={}",
        s.actions, s.sent, s.lost, s.dead_letters, s.stored, s.deleted, s.duplications
    ));
}
