//! Asynchrony ablation (extension experiment; DESIGN.md B7): the paper's
//! model breaks actions into single-node steps so that analysis survives
//! non-atomic, overlapping actions (Section 4). This sweep delays every
//! message by up to `max` global steps — so by the largest setting,
//! hundreds of other actions interleave with each in-flight message — and
//! checks that the steady state does not move.

use sandf_bench::{fmt, header, note};
use sandf_core::SfConfig;
use sandf_graph::{DegreeStats, DependenceReport};
use sandf_sim::{topology, DelayModel, Simulation, UniformLoss};

fn run(delay: DelayModel, seed: u64) -> (f64, f64, f64, bool) {
    let config = SfConfig::new(40, 18).expect("paper parameters");
    let nodes = topology::circulant(500, config, 30);
    let mut sim = Simulation::with_delay(
        nodes,
        UniformLoss::new(0.02).expect("valid"),
        delay,
        seed,
    );
    for _ in 0..500usize * 400 {
        sim.step();
    }
    sim.settle();
    let graph = sim.graph();
    let out = DegreeStats::from_samples(&graph.out_degrees());
    let inn = DegreeStats::from_samples(&graph.in_degrees());
    let dep = DependenceReport::measure(sim.nodes());
    (out.mean, inn.std_dev(), 1.0 - dep.independent_fraction(), graph.is_weakly_connected())
}

fn main() {
    note("asynchrony sweep: uniform message delays, n=500, d_L=18, s=40, loss=2%");
    header(&["max_delay_steps", "mean_out", "in_std", "dependent_frac", "connected"]);
    let (mean, in_std, dep, conn) = run(DelayModel::Immediate, 500);
    println!("0\t{}\t{}\t{}\t{conn}", fmt(mean), fmt(in_std), fmt(dep));
    for (k, &max) in [16u64, 64, 256, 1024].iter().enumerate() {
        let (mean, in_std, dep, conn) = run(DelayModel::UniformSteps { max }, 501 + k as u64);
        println!("{max}\t{}\t{}\t{}\t{conn}", fmt(mean), fmt(in_std), fmt(dep));
    }
    println!();
    note("expected shape: statistics are flat in the delay bound — the protocol's non-atomic");
    note("step decomposition really does make the analysis delay-insensitive");
}
