//! Asynchrony ablation (extension experiment; DESIGN.md B7): the paper's
//! model breaks actions into single-node steps so that analysis survives
//! non-atomic, overlapping actions (Section 4). This sweep delays every
//! message by up to `max` global steps — so by the largest setting,
//! hundreds of other actions interleave with each in-flight message — and
//! checks that the replicated steady state does not move.

use sandf_bench::{note, sweeps};

fn main() {
    note("asynchrony sweep: uniform message delays, n=500, d_L=18, s=40, loss=2%");
    note("5 replicates per delay bound; columns are mean ± 95% CI half-width");
    print!("{}", sweeps::delay_table(500, 400, 5, 500));
    println!();
    note("expected shape: statistics are flat in the delay bound — the protocol's non-atomic");
    note("step decomposition really does make the analysis delay-insensitive");
}
